package dvp_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dvp"
	"dvp/internal/harness"
	"dvp/internal/ident"
	"dvp/internal/recovery"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// --- experiment benches ------------------------------------------------------
//
// One benchmark per table/figure in DESIGN.md §3. Each iteration runs
// the experiment in Quick mode and reports its row count; the tables
// themselves are printed by `go run ./cmd/dvpsim -exp <id>`. These
// exist so `go test -bench=.` regenerates every result end to end.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(harness.Options{Quick: true, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows()) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		b.ReportMetric(float64(len(res.Table.Rows())), "rows")
	}
}

func BenchmarkT1NormalCaseScaling(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkT2PartitionAvailability(b *testing.B) { benchExperiment(b, "T2") }
func BenchmarkT3IndependentRecovery(b *testing.B)   { benchExperiment(b, "T3") }
func BenchmarkT4ReadCost(b *testing.B)              { benchExperiment(b, "T4") }
func BenchmarkT5ConcurrencyControl(b *testing.B)    { benchExperiment(b, "T5") }
func BenchmarkF1SkewVsAskPolicy(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2BlockingBound(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkF3HotSpot(b *testing.B)               { benchExperiment(b, "F3") }
func BenchmarkF4VmUnderLoss(b *testing.B)           { benchExperiment(b, "F4") }
func BenchmarkF5PartitionTimeline(b *testing.B)     { benchExperiment(b, "F5") }
func BenchmarkF6QuotaDynamics(b *testing.B)         { benchExperiment(b, "F6") }
func BenchmarkA1RebalancerAblation(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2DemandRebalancing(b *testing.B)     { benchExperiment(b, "A2") }
func BenchmarkA3GrantPolicyAblation(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkP1GroupCommit(b *testing.B)           { benchExperiment(b, "P1") }
func BenchmarkN1PeerOutage(b *testing.B)            { benchExperiment(b, "N1") }

// --- micro benches -----------------------------------------------------------

// BenchmarkLocalCommit measures the paper's common case: a write-only
// transaction touching only local quota (§5's "write-only transactions
// ... can be processed at the local site").
func BenchmarkLocalCommit(b *testing.B) {
	c, err := dvp.NewCluster(dvp.Config{Sites: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.CreateItem("bench", dvp.Value(b.N)+1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := c.At(1).Reserve("bench", 1); !res.Committed() {
			b.Fatalf("local reserve aborted: %v", res.Status)
		}
	}
}

// BenchmarkLocalCommitParallel measures the group-commit win: 8
// committers on disjoint items, each commit force-written to a real
// synced file log. Unbatched, every committer pays its own fsync in
// turn; grouped, the flusher folds concurrent commits into one
// write+fsync, so throughput scales with the batch instead of
// serializing on the disk. The grouped/unbatched ratio is the PR's
// headline number (recorded in BENCH_PR3.json).
func BenchmarkLocalCommitParallel(b *testing.B) {
	const committers = 8
	run := func(b *testing.B, group bool) {
		c, err := dvp.NewCluster(dvp.Config{
			Sites:       1,
			Seed:        1,
			FileLogDir:  b.TempDir(),
			FileLogSync: true,
			GroupCommit: group,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		items := make([]string, committers)
		for g := range items {
			items[g] = fmt.Sprintf("bench/%d", g)
			if err := c.CreateItem(items[g], dvp.Value(b.N)+1); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < b.N; i += committers {
					if res := c.At(1).Reserve(items[g], 1); !res.Committed() {
						b.Errorf("parallel reserve aborted: %v", res.Status)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.Run("unbatched", func(b *testing.B) { run(b, false) })
	b.Run("grouped", func(b *testing.B) { run(b, true) })
}

// BenchmarkLocalCommitFastPath measures the zero-allocation local
// commit: 8 committers on disjoint items over a memory-backed group-
// commit log, so the protocol's own CPU and allocation cost — not the
// disk — dominates. fastpath lets eligible write-only transactions
// take the pooled, map-free commit route; nofastpath forces the same
// workload through the full §5 run. The allocs/op gap is the PR's
// headline number (recorded in BENCH_PR8.json), and check.sh gates on
// the fastpath figure never regressing past its recorded ceiling.
func BenchmarkLocalCommitFastPath(b *testing.B) {
	const committers = 8
	run := func(b *testing.B, disable bool) {
		c, err := dvp.NewCluster(dvp.Config{
			Sites:           1,
			Seed:            1,
			GroupCommit:     true,
			DisableFastPath: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		items := make([]string, committers)
		for g := range items {
			items[g] = fmt.Sprintf("bench/%d", g)
			if err := c.CreateItem(items[g], dvp.Value(b.N)+1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < b.N; i += committers {
					if res := c.At(1).Reserve(items[g], 1); !res.Committed() {
						b.Errorf("parallel reserve aborted: %v", res.Status)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.Run("fastpath", func(b *testing.B) { run(b, false) })
	b.Run("nofastpath", func(b *testing.B) { run(b, true) })
}

// BenchmarkMixedCommitParallel measures the whole-site concurrency the
// layered commit engine exists for: committers at site 1 run a mix of
// local fast-path writes, shortfall writes that must pull quota from
// site 2 (waiter table + inbound Vm + request handling), and full
// reads that gather from the peer — while a background pump streams
// unsolicited Vm transfers into site 1, so the message router runs
// concurrently with every commit. Before the mutex-free layering, all
// of that serialized on one site mutex for stats, waiter lookups and
// liveness checks; the committers=8 row against the pre-refactor
// baseline is the PR's headline number (recorded in BENCH_PR10.json).
func BenchmarkMixedCommitParallel(b *testing.B) {
	run := func(b *testing.B, committers int) {
		c, err := dvp.NewCluster(dvp.Config{
			Sites:           2,
			Seed:            1,
			GroupCommit:     true,
			RetransmitEvery: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		items := make([]string, committers)
		pulls := make([]string, committers)
		for g := 0; g < committers; g++ {
			items[g] = fmt.Sprintf("mix/local/%d", g)
			pulls[g] = fmt.Sprintf("mix/pull/%d", g)
			// Local items live wholly at site 1, so the plain writes are
			// always fast-path eligible and never convert to pulls.
			if err := c.CreateItemShares(items[g], []dvp.Value{dvp.Value(b.N) + 1, 0}); err != nil {
				b.Fatal(err)
			}
			// Pull items live almost entirely at site 2: every 16th op is
			// a shortfall write that must ask, wait and accept a Vm.
			if err := c.CreateItemShares(pulls[g], []dvp.Value{1, dvp.Value(b.N) + 1}); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.CreateItemShares("mix/pump", []dvp.Value{0, dvp.Value(b.N) + 1_000_000}); err != nil {
			b.Fatal(err)
		}
		// Background Vm pump: site 2 ships single-unit transfers at
		// site 1 for the bench's whole life, so inbound Vm acceptance
		// contends with the committers.
		stopPump := make(chan struct{})
		pumpDone := make(chan struct{})
		go func() {
			defer close(pumpDone)
			for {
				select {
				case <-stopPump:
					return
				default:
				}
				_ = c.SendValue("mix/pump", 2, 1, 1)
				time.Sleep(100 * time.Microsecond)
			}
		}()
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < b.N; i += committers {
					var res *dvp.Result
					kind := "local"
					switch {
					case i%16 == 15:
						// Shortfall write: §5 steps 2–3 in full. Retried
						// like any real client (§5): a declined request
						// (granting side briefly locked) has no reply, so
						// only the timeout ends the attempt.
						kind = "pull"
						res = c.At(1).RunRetry(dvp.NewTxn().
							Sub(pulls[g], 1).Timeout(500*time.Millisecond), 10)
					case i%16 == 7:
						// Full read: gather from every peer. Retried for
						// the same reason — the previous read's reply Vm
						// may still be outstanding at the peer, which
						// declines the gather until it is acked.
						kind = "read"
						res = c.At(1).RunRetry(dvp.NewTxn().
							Read(items[g]).Timeout(500*time.Millisecond), 10)
					default:
						// Local write: fast-path eligible.
						res = c.At(1).Reserve(items[g], 1)
					}
					if !res.Committed() {
						b.Errorf("mixed %s txn aborted: %v", kind, res.Status)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		b.StopTimer()
		close(stopPump)
		<-pumpDone
	}
	for _, n := range []int{1, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("committers=%d", n), func(b *testing.B) { run(b, n) })
	}
}

// BenchmarkLocalCommitParallelTracing measures the observability tax:
// the same 8-committer grouped-commit workload with causal tracing and
// the flight recorder fully on versus fully off. The traced/untraced
// ratio is the PR's acceptance number (≤ 1.05, recorded in
// BENCH_PR6.json): spans are a handful of allocations and atomic
// stores per transaction, invisible next to the synced file log.
func BenchmarkLocalCommitParallelTracing(b *testing.B) {
	const committers = 8
	run := func(b *testing.B, traceBuf, flightBuf int) {
		c, err := dvp.NewCluster(dvp.Config{
			Sites:       1,
			Seed:        1,
			FileLogDir:  b.TempDir(),
			FileLogSync: true,
			GroupCommit: true,
			TraceBuf:    traceBuf,
			FlightBuf:   flightBuf,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		items := make([]string, committers)
		for g := range items {
			items[g] = fmt.Sprintf("bench/%d", g)
			if err := c.CreateItem(items[g], dvp.Value(b.N)+1); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < b.N; i += committers {
					if res := c.At(1).Reserve(items[g], 1); !res.Committed() {
						b.Errorf("parallel reserve aborted: %v", res.Status)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	b.Run("untraced", func(b *testing.B) { run(b, -1, 0) })
	b.Run("traced", func(b *testing.B) { run(b, 1024, 4096) })
}

// BenchmarkVmThroughput measures the Vm pipeline end to end: b.N
// single-unit Rds transfers from site 1 to site 2 (log create → send →
// accept → cumulative ack), timed until the receiver has accepted every
// one. Coalesced network writes and VmBatch piggybacking determine how
// many envelopes and syscalls that takes.
func BenchmarkVmThroughput(b *testing.B) {
	c, err := dvp.NewCluster(dvp.Config{
		Sites: 2, Seed: 1, RetransmitEvery: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateItemShares("bench", []dvp.Value{dvp.Value(b.N) + 1, 0}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendValue("bench", 1, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
	for deadline := time.Now().Add(time.Minute); c.Quota(2, "bench") < dvp.Value(b.N); {
		if time.Now().After(deadline) {
			b.Fatalf("receiver accepted %d of %d transfers within a minute",
				c.Quota(2, "bench"), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkRedistribution measures the §3 slow path: every transaction
// must pull quota from a peer first.
func BenchmarkRedistribution(b *testing.B) {
	c, err := dvp.NewCluster(dvp.Config{Sites: 2, Seed: 1, RetransmitEvery: 5 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.CreateItemShares("bench", []dvp.Value{0, dvp.Value(b.N) + 1_000_000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.At(1).Run(dvp.NewTxn().Sub("bench", 1).Timeout(time.Second))
		if !res.Committed() {
			b.Fatalf("redistribution reserve aborted: %v", res.Status)
		}
	}
}

// BenchmarkFullRead measures the expensive operation the paper
// concedes (§8): gathering all of Π⁻¹(d) before reading.
func BenchmarkFullRead(b *testing.B) {
	c, err := dvp.NewCluster(dvp.Config{Sites: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.CreateItem("bench", 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.At(i%4+1).RunRetry(dvp.NewTxn().Read("bench").Timeout(time.Second), 3)
		if !res.Committed() {
			b.Fatalf("read aborted: %v", res.Status)
		}
	}
}

// BenchmarkEnvelopeCodec measures the wire codec round trip.
func BenchmarkEnvelopeCodec(b *testing.B) {
	env := &wire.Envelope{
		From: 1, To: 2, Lamport: 12345, AckUpTo: 99,
		Msg: &wire.Vm{Seq: 7, Item: "flight/A", Amount: 5, ReqTxn: 42},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := env.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalAppend measures the in-memory stable log.
func BenchmarkWalAppend(b *testing.B) {
	l := wal.NewMemLog()
	rec := (&wal.CommitRec{Txn: 42, Actions: []wal.Action{{Item: "x", Delta: -1, SetTS: 42}}}).Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(wal.RecCommit, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileWalAppend measures the CRC-framed file log (no fsync).
func BenchmarkFileWalAppend(b *testing.B) {
	l, err := wal.OpenFileLog(b.TempDir()+"/bench.wal", wal.FileLogOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := (&wal.CommitRec{Txn: 42, Actions: []wal.Action{{Item: "x", Delta: -1, SetTS: 42}}}).Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(wal.RecCommit, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- recovery benches --------------------------------------------------------

// buildRecoveryLog writes n multi-action commit records across 64
// items. With ckptSuffix > 0 it embeds a consistent checkpoint record
// leaving exactly ckptSuffix records after it, so recovery replays a
// fixed-length suffix however long the total history is.
func buildRecoveryLog(b *testing.B, n, ckptSuffix int) *wal.MemLog {
	b.Helper()
	l := wal.NewMemLog()
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	const items = 64
	for i := 0; i < n; i++ {
		if ckptSuffix > 0 && i == n-ckptSuffix {
			cp := &wal.CheckpointRec{
				Items:    db.Snapshot(),
				Channels: vm.SnapshotChannels(),
				Clock:    clock.Current(),
			}
			if _, err := l.Append(wal.RecCheckpoint, cp.Encode()); err != nil {
				b.Fatal(err)
			}
		}
		ts := tstamp.Make(uint64(i)+1, 1)
		rec := &wal.CommitRec{Txn: ts, Actions: []wal.Action{
			{Item: ident.ItemID(fmt.Sprintf("item/%d", i%items)), Delta: 1, SetTS: ts},
			{Item: ident.ItemID(fmt.Sprintf("item/%d", (i+7)%items)), Delta: 2, SetTS: ts},
			{Item: ident.ItemID(fmt.Sprintf("item/%d", (i+13)%items)), Delta: 3, SetTS: ts},
		}}
		lsn, err := l.Append(wal.RecCommit, rec.Encode())
		if err != nil {
			b.Fatal(err)
		}
		// Maintain writer state only up to the checkpoint cut.
		if ckptSuffix > 0 && i < n-ckptSuffix {
			if _, err := db.ApplyAll(lsn, rec.Actions); err != nil {
				b.Fatal(err)
			}
			clock.Observe(ts)
		}
	}
	return l
}

// BenchmarkRecover measures restart time (the R1 experiment, recorded
// in BENCH_PR7.json). full/* replays the whole history serially, so
// restart time grows with the log; checkpointed/* starts from a
// checkpoint with a fixed 2000-record suffix, so restart time is flat
// in total history length. parallel/* replays a 100k-record suffix at
// increasing worker counts — the acceptance number is >=2x at 8
// workers over 1.
func BenchmarkRecover(b *testing.B) {
	recoverOnce := func(b *testing.B, l *wal.MemLog, workers int) {
		b.Helper()
		sum, err := recovery.RecoverOpts(l, store.New(), vmsg.NewManager(), tstamp.NewClock(1),
			recovery.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if sum.RecordsScanned == 0 {
			b.Fatal("recovery scanned nothing")
		}
	}
	for _, n := range []int{20_000, 50_000, 100_000} {
		n := n
		b.Run(fmt.Sprintf("full/records=%d", n), func(b *testing.B) {
			l := buildRecoveryLog(b, n, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recoverOnce(b, l, 1)
			}
		})
		b.Run(fmt.Sprintf("checkpointed/records=%d", n), func(b *testing.B) {
			l := buildRecoveryLog(b, n, 2000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recoverOnce(b, l, 1)
			}
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("parallel/records=100000/workers=%d", w), func(b *testing.B) {
			l := buildRecoveryLog(b, 100_000, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recoverOnce(b, l, w)
			}
		})
	}
}
