// Package store implements a site's local database: the durable
// per-item quota values d_i with their concurrency-control timestamps
// TS(d_i) (paper §6.1).
//
// Durability model: the store plays the role of the database pages on
// disk. A simulated site crash keeps the store (and the log) and
// discards everything else. Each item records the LSN of the last log
// record applied to it, updated atomically with the value — the
// page-LSN technique — which is what makes the §7 redo pass idempotent
// ("the redoing actions must be idempotent in view of the possibility
// of a failure during the recovery phase").
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
)

// Item is the durable state of one local data value.
type Item struct {
	// Val is the local quota d_i.
	Val core.Value
	// TS is the timestamp of the last transaction to have locked the
	// value (Conc1's TS(d_j)).
	TS tstamp.TS
	// AppliedLSN is the LSN of the last log record whose action was
	// applied to this item.
	AppliedLSN uint64
}

// Durable is a site's stable local database. All methods are safe for
// concurrent use.
type Durable struct {
	mu    sync.RWMutex
	items map[ident.ItemID]Item

	// hints caches each item's quota in an atomic (ItemID →
	// *atomic.Int64) so the local-commit fast path can test "enough
	// quota here?" without taking mu. Hints are advisory: every mutator
	// refreshes them under mu, but a reader may observe a stale value —
	// the fast path re-checks the authoritative Value under the item's
	// admission stripe before acting, and falls back to the full
	// protocol when the hint lied (see internal/site exec fast path).
	hints sync.Map
}

// New returns an empty durable store.
func New() *Durable {
	return &Durable{items: make(map[ident.ItemID]Item)}
}

// Create installs an item with its initial quota (the DvP initial
// distribution, e.g. 25 of 100 seats). Creating an existing item is an
// error: initial placement happens exactly once.
func (d *Durable) Create(item ident.ItemID, val core.Value) error {
	if val < 0 {
		return fmt.Errorf("store: %w: %d", core.ErrNegative, val)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.items[item]; ok {
		return fmt.Errorf("store: item %q already exists", item)
	}
	d.items[item] = Item{Val: val}
	d.hintFor(item).Store(int64(val))
	return nil
}

// hintFor returns item's hint cell, creating it on first use.
func (d *Durable) hintFor(item ident.ItemID) *atomic.Int64 {
	if h, ok := d.hints.Load(item); ok {
		return h.(*atomic.Int64)
	}
	h, _ := d.hints.LoadOrStore(item, new(atomic.Int64))
	return h.(*atomic.Int64)
}

// HintValue returns the cached quota hint for item without locking.
// The second result is false when the item has no hint cell yet (never
// created or mutated here). The value may be stale relative to the
// authoritative Value — callers must re-check under whatever excludes
// writers before relying on it.
func (d *Durable) HintValue(item ident.ItemID) (core.Value, bool) {
	h, ok := d.hints.Load(item)
	if !ok {
		return 0, false
	}
	return core.Value(h.(*atomic.Int64).Load()), true
}

// SkewHints adds delta to every hint cell, deliberately desynchronizing
// them from the authoritative values. A chaos/test knob: correctness
// must not depend on hint accuracy, and this proves it. Hints self-heal
// as items are next written (each Apply stores the true value).
func (d *Durable) SkewHints(delta int64) {
	d.hints.Range(func(_, v any) bool {
		v.(*atomic.Int64).Add(delta)
		return true
	})
}

// ResyncHints rewrites every hint cell from the authoritative values.
func (d *Durable) ResyncHints() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resyncHintsLocked()
}

func (d *Durable) resyncHintsLocked() {
	// Cells for items the store no longer knows go to zero (never
	// stale-high); then every current item gets its true value.
	d.hints.Range(func(k, v any) bool {
		v.(*atomic.Int64).Store(int64(d.items[k.(ident.ItemID)].Val))
		return true
	})
	for id, it := range d.items {
		d.hintFor(id).Store(int64(it.Val))
	}
}

// Get returns the durable state of item.
func (d *Durable) Get(item ident.ItemID) (Item, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	it, ok := d.items[item]
	return it, ok
}

// Value returns the local quota of item (zero if unknown; a site that
// has never held quota for an item holds zero of it).
func (d *Durable) Value(item ident.ItemID) core.Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.items[item].Val
}

// SetTS advances the concurrency-control timestamp of item (Conc1
// locks and stamps in one atomic step; the store write is the stamp).
// Unknown items are created with zero quota: a request for an item can
// reach a site before any value of it does.
func (d *Durable) SetTS(item ident.ItemID, ts tstamp.TS) {
	d.mu.Lock()
	defer d.mu.Unlock()
	it := d.items[item]
	if ts > it.TS {
		it.TS = ts
	}
	d.items[item] = it
}

// Apply applies one logged action at the given LSN. It is idempotent:
// actions at or below the item's AppliedLSN are skipped (reporting
// false). A delta that would drive the quota negative is a protocol
// violation and returns an error — the transaction layer must have
// checked effectiveness under the lock.
func (d *Durable) Apply(lsn uint64, a wal.Action) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	it := d.items[a.Item]
	if lsn <= it.AppliedLSN {
		return false, nil
	}
	nv := it.Val + a.Delta
	if nv < 0 {
		return false, fmt.Errorf("store: applying %+d to %q (=%d) would go negative", a.Delta, a.Item, it.Val)
	}
	it.Val = nv
	if a.SetTS > it.TS {
		it.TS = a.SetTS
	}
	it.AppliedLSN = lsn
	d.items[a.Item] = it
	d.hintFor(a.Item).Store(int64(nv))
	return true, nil
}

// ApplyAll applies a record's actions; the count of actions actually
// applied (not skipped) is returned.
func (d *Durable) ApplyAll(lsn uint64, actions []wal.Action) (int, error) {
	applied := 0
	for _, a := range actions {
		ok, err := d.Apply(lsn, a)
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// Items returns the ids of all known items (sorted, for deterministic
// iteration).
func (d *Durable) Items() []ident.ItemID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ident.ItemID, 0, len(d.items))
	for id := range d.items {
		out = append(out, id)
	}
	return ident.SortItems(out)
}

// Snapshot captures every item for a checkpoint record.
func (d *Durable) Snapshot() []wal.CheckpointItem {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]ident.ItemID, 0, len(d.items))
	for id := range d.items {
		ids = append(ids, id)
	}
	out := make([]wal.CheckpointItem, 0, len(ids))
	for _, id := range ident.SortItems(ids) {
		it := d.items[id]
		out = append(out, wal.CheckpointItem{
			Item: id, Value: it.Val, TS: it.TS, AppliedLSN: it.AppliedLSN,
		})
	}
	return out
}

// RestoreCheckpoint loads a checkpoint snapshot, replacing current
// contents. Used when recovery starts from a checkpoint record.
func (d *Durable) RestoreCheckpoint(items []wal.CheckpointItem) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.items = make(map[ident.ItemID]Item, len(items))
	for _, ci := range items {
		d.items[ci.Item] = Item{Val: ci.Value, TS: ci.TS, AppliedLSN: ci.AppliedLSN}
	}
	d.resyncHintsLocked()
}

// Scratch is a detached write buffer over the store, used by parallel
// log replay: Apply-equivalent simulation against private copies of
// the items, then a single Install writes the results back under one
// lock acquisition. Distinct scratches over the same store must touch
// disjoint item sets (parallel replay guarantees this by hashing each
// item onto exactly one stripe), and the store must not be written by
// anyone else between a scratch's first Apply and its Install.
type Scratch struct {
	d     *Durable
	items map[ident.ItemID]Item
}

// NewScratch returns an empty scratch over d.
func (d *Durable) NewScratch() *Scratch {
	return &Scratch{d: d, items: make(map[ident.ItemID]Item)}
}

// Apply mirrors Durable.Apply — same applied-LSN skip rule, same
// negative-quota check — against the scratch's private copy of the
// item, faulting the current durable state in on first touch.
func (s *Scratch) Apply(lsn uint64, a wal.Action) (bool, error) {
	it, ok := s.items[a.Item]
	if !ok {
		it, _ = s.d.Get(a.Item)
		s.items[a.Item] = it
	}
	if lsn <= it.AppliedLSN {
		return false, nil
	}
	nv := it.Val + a.Delta
	if nv < 0 {
		return false, fmt.Errorf("store: applying %+d to %q (=%d) would go negative", a.Delta, a.Item, it.Val)
	}
	it.Val = nv
	if a.SetTS > it.TS {
		it.TS = a.SetTS
	}
	it.AppliedLSN = lsn
	s.items[a.Item] = it
	return true, nil
}

// Install writes the scratch's items back into the store.
func (s *Scratch) Install() {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	for id, it := range s.items {
		s.d.items[id] = it
		s.d.hintFor(id).Store(int64(it.Val))
	}
}

// Total sums the local quotas of the given items — a convenience for
// conservation checks in tests and monitors.
func (d *Durable) Total(items ...ident.ItemID) core.Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var sum core.Value
	for _, id := range items {
		sum += d.items[id].Val
	}
	return sum
}
