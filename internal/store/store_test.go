package store

import (
	"sync"
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
)

func TestCreateAndGet(t *testing.T) {
	d := New()
	if err := d.Create("flight/A", 25); err != nil {
		t.Fatal(err)
	}
	it, ok := d.Get("flight/A")
	if !ok || it.Val != 25 || it.TS != 0 || it.AppliedLSN != 0 {
		t.Errorf("Get = %+v ok=%v", it, ok)
	}
	if err := d.Create("flight/A", 10); err == nil {
		t.Error("double create must fail")
	}
	if err := d.Create("bad", -1); err == nil {
		t.Error("negative initial quota must fail")
	}
}

func TestValueUnknownIsZero(t *testing.T) {
	d := New()
	if v := d.Value("nope"); v != 0 {
		t.Errorf("unknown item value = %d", v)
	}
}

func TestApplyAdvancesValueTSAndLSN(t *testing.T) {
	d := New()
	d.Create("a", 10)
	ts := tstamp.Make(5, 2)
	ok, err := d.Apply(3, wal.Action{Item: "a", Delta: -4, SetTS: ts})
	if err != nil || !ok {
		t.Fatalf("Apply: ok=%v err=%v", ok, err)
	}
	it, _ := d.Get("a")
	if it.Val != 6 || it.TS != ts || it.AppliedLSN != 3 {
		t.Errorf("after apply: %+v", it)
	}
}

func TestApplyIdempotentByLSN(t *testing.T) {
	d := New()
	d.Create("a", 10)
	a := wal.Action{Item: "a", Delta: -4}
	d.Apply(3, a)
	// Redo of the same record must be a no-op.
	ok, err := d.Apply(3, a)
	if err != nil || ok {
		t.Fatalf("redo applied twice: ok=%v err=%v", ok, err)
	}
	if d.Value("a") != 6 {
		t.Errorf("value = %d after redo, want 6", d.Value("a"))
	}
	// An older record must also be skipped.
	if ok, _ := d.Apply(2, wal.Action{Item: "a", Delta: -1}); ok {
		t.Error("older LSN applied")
	}
	// A newer record applies.
	if ok, _ := d.Apply(4, wal.Action{Item: "a", Delta: 1}); !ok {
		t.Error("newer LSN skipped")
	}
	if d.Value("a") != 7 {
		t.Errorf("value = %d, want 7", d.Value("a"))
	}
}

func TestApplyRejectsNegativeResult(t *testing.T) {
	d := New()
	d.Create("a", 3)
	if _, err := d.Apply(1, wal.Action{Item: "a", Delta: -5}); err == nil {
		t.Fatal("negative quota must be rejected")
	}
	if d.Value("a") != 3 {
		t.Error("failed apply must not change the value")
	}
}

func TestApplyCreatesUnknownItem(t *testing.T) {
	d := New()
	// A Vm can deliver quota for an item this site never held.
	ok, err := d.Apply(1, wal.Action{Item: "new", Delta: 7})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if d.Value("new") != 7 {
		t.Errorf("value = %d", d.Value("new"))
	}
}

func TestApplyAllCountsApplied(t *testing.T) {
	d := New()
	d.Create("a", 10)
	d.Create("b", 10)
	d.Apply(5, wal.Action{Item: "a", Delta: -1})
	// Record 5 replayed: a skipped, b applied.
	n, err := d.ApplyAll(5, []wal.Action{
		{Item: "a", Delta: -1},
		{Item: "b", Delta: -2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("applied %d, want 1", n)
	}
	if d.Value("a") != 9 || d.Value("b") != 8 {
		t.Errorf("a=%d b=%d", d.Value("a"), d.Value("b"))
	}
}

func TestApplyAllStopsOnError(t *testing.T) {
	d := New()
	d.Create("a", 1)
	_, err := d.ApplyAll(1, []wal.Action{
		{Item: "a", Delta: -5}, // would go negative
		{Item: "a", Delta: 100},
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if d.Value("a") != 1 {
		t.Error("store changed after failed ApplyAll action")
	}
}

func TestSetTSMonotone(t *testing.T) {
	d := New()
	d.Create("a", 5)
	hi := tstamp.Make(9, 1)
	lo := tstamp.Make(3, 1)
	d.SetTS("a", hi)
	d.SetTS("a", lo) // must not regress
	it, _ := d.Get("a")
	if it.TS != hi {
		t.Errorf("TS = %v, want %v", it.TS, hi)
	}
}

func TestSetTSCreatesItem(t *testing.T) {
	d := New()
	d.SetTS("ghost", tstamp.Make(1, 1))
	it, ok := d.Get("ghost")
	if !ok || it.Val != 0 {
		t.Errorf("ghost item: %+v ok=%v", it, ok)
	}
}

func TestItemsSorted(t *testing.T) {
	d := New()
	d.Create("z", 1)
	d.Create("a", 1)
	d.Create("m", 1)
	got := d.Items()
	want := []ident.ItemID{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v", got)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := New()
	d.Create("a", 10)
	d.Create("b", 20)
	d.Apply(7, wal.Action{Item: "a", Delta: -3, SetTS: tstamp.Make(2, 1)})
	snap := d.Snapshot()

	d2 := New()
	d2.RestoreCheckpoint(snap)
	for _, id := range []ident.ItemID{"a", "b"} {
		i1, _ := d.Get(id)
		i2, _ := d2.Get(id)
		if i1 != i2 {
			t.Errorf("%s: %+v vs %+v", id, i1, i2)
		}
	}
	// After restore, idempotence continues to hold.
	if ok, _ := d2.Apply(7, wal.Action{Item: "a", Delta: -3}); ok {
		t.Error("restored store re-applied an old record")
	}
}

func TestTotal(t *testing.T) {
	d := New()
	d.Create("a", 10)
	d.Create("b", 5)
	if got := d.Total("a", "b", "missing"); got != 15 {
		t.Errorf("Total = %d", got)
	}
}

func TestConcurrentAppliesConserve(t *testing.T) {
	d := New()
	d.Create("hot", 0)
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	// Each worker applies increments at distinct LSNs; the sum of all
	// applied deltas must land exactly.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn := uint64(w*per + i + 1)
				if _, err := d.Apply(lsn, wal.Action{Item: "hot", Delta: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// LSN ordering means some appliers were "skipped" if they ran
	// after a higher LSN; with increasing LSNs per worker but
	// interleaved workers, total applied is at least per (the max
	// contiguous) — conservation here means value equals the count of
	// applies that reported true.
	if v := d.Value("hot"); v < core.Value(per) || v > workers*per {
		t.Errorf("value = %d out of bounds", v)
	}
}

// TestScratchMirrorsApply replays the same action sequence through
// Durable.Apply and through a Scratch: skip rule, negative check, TS
// fold and applied-LSN must agree exactly, and Install must write the
// scratch image back verbatim.
func TestScratchMirrorsApply(t *testing.T) {
	direct, scratched := New(), New()
	direct.Create("x", 10)
	scratched.Create("x", 10)

	ops := []struct {
		lsn uint64
		a   wal.Action
	}{
		{1, wal.Action{Item: "x", Delta: 5, SetTS: tstamp.Make(1, 1)}},
		{1, wal.Action{Item: "x", Delta: 5, SetTS: tstamp.Make(1, 1)}}, // dup LSN: skipped
		{2, wal.Action{Item: "y", Delta: 3}},                           // unknown item: created
		{3, wal.Action{Item: "x", Delta: -4, SetTS: tstamp.Make(9, 2)}},
	}
	sc := scratched.NewScratch()
	for _, op := range ops {
		wantOK, wantErr := direct.Apply(op.lsn, op.a)
		gotOK, gotErr := sc.Apply(op.lsn, op.a)
		if wantOK != gotOK || (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("Apply(%d, %+v): scratch (%v,%v) != durable (%v,%v)",
				op.lsn, op.a, gotOK, gotErr, wantOK, wantErr)
		}
	}
	// Before Install the scratch writes are invisible.
	if got := scratched.Value("x"); got != 10 {
		t.Errorf("scratch leaked before Install: x = %d", got)
	}
	sc.Install()
	for _, item := range []ident.ItemID{"x", "y"} {
		want, _ := direct.Get(item)
		got, _ := scratched.Get(item)
		if got != want {
			t.Errorf("%s: scratch image %+v != durable %+v", item, got, want)
		}
	}
}

// TestScratchRejectsNegative keeps the scratch's negative-quota check
// aligned with Durable.Apply, including after a fault-in.
func TestScratchRejectsNegative(t *testing.T) {
	db := New()
	db.Create("x", core.Value(2))
	sc := db.NewScratch()
	if _, err := sc.Apply(1, wal.Action{Item: "x", Delta: -3}); err == nil {
		t.Fatal("scratch allowed negative quota")
	}
	if ok, err := sc.Apply(1, wal.Action{Item: "x", Delta: -2}); !ok || err != nil {
		t.Fatalf("scratch rejected legal drain: ok=%v err=%v", ok, err)
	}
	sc.Install()
	if got := db.Value("x"); got != 0 {
		t.Errorf("x = %d, want 0", got)
	}
}

// TestHintTracksMutations pins the hint-refresh contract: every durable
// mutation (create, apply, checkpoint restore, scratch install) leaves
// the item's lock-free hint equal to its authoritative value.
func TestHintTracksMutations(t *testing.T) {
	db := New()
	if _, ok := db.HintValue("x"); ok {
		t.Fatal("hint exists before the item does")
	}
	db.Create("x", core.Value(10))
	if hv, ok := db.HintValue("x"); !ok || hv != 10 {
		t.Fatalf("after Create: hint = %d,%v, want 10,true", hv, ok)
	}
	if _, err := db.Apply(1, wal.Action{Item: "x", Delta: -3}); err != nil {
		t.Fatal(err)
	}
	if hv, _ := db.HintValue("x"); hv != 7 {
		t.Fatalf("after Apply: hint = %d, want 7", hv)
	}
	sc := db.NewScratch()
	if _, err := sc.Apply(2, wal.Action{Item: "x", Delta: 5}); err != nil {
		t.Fatal(err)
	}
	if hv, _ := db.HintValue("x"); hv != 7 {
		t.Fatalf("scratch leaked into hint before Install: %d", hv)
	}
	sc.Install()
	if hv, _ := db.HintValue("x"); hv != 12 {
		t.Fatalf("after Install: hint = %d, want 12", hv)
	}
	db.RestoreCheckpoint([]wal.CheckpointItem{{Item: "x", Value: 42}})
	if hv, _ := db.HintValue("x"); hv != 42 {
		t.Fatalf("after RestoreCheckpoint: hint = %d, want 42", hv)
	}
}

// TestSkewAndResyncHints covers the chaos knob: SkewHints shifts every
// hint away from the truth without touching the authoritative values,
// the next mutation of an item self-heals its hint, and ResyncHints
// restores the rest wholesale.
func TestSkewAndResyncHints(t *testing.T) {
	db := New()
	db.Create("a", core.Value(10))
	db.Create("b", core.Value(20))
	db.SkewHints(+100)
	if hv, _ := db.HintValue("a"); hv != 110 {
		t.Fatalf("skewed hint a = %d, want 110", hv)
	}
	if got := db.Value("a"); got != 10 {
		t.Fatalf("skew touched the authoritative value: %d", got)
	}
	// Mutating an item resynchronizes its own hint.
	if _, err := db.Apply(1, wal.Action{Item: "a", Delta: -1}); err != nil {
		t.Fatal(err)
	}
	if hv, _ := db.HintValue("a"); hv != 9 {
		t.Fatalf("hint a after self-heal = %d, want 9", hv)
	}
	if hv, _ := db.HintValue("b"); hv != 120 {
		t.Fatalf("hint b should still be skewed: %d", hv)
	}
	db.ResyncHints()
	if hv, _ := db.HintValue("b"); hv != 20 {
		t.Fatalf("hint b after resync = %d, want 20", hv)
	}
	// Negative skew must never underflow into accepting bad commits —
	// it only makes the fast path decline (stale-low is the safe lie).
	db.SkewHints(-1000)
	if hv, _ := db.HintValue("a"); hv != -991 {
		t.Fatalf("hint a after negative skew = %d, want -991", hv)
	}
}
