// Package ctl implements dvpnode's line-oriented control protocol:
// the server side embedded in each node process, and the client side
// used by dvpctl — including the cross-site trace stitcher that fetches
// one transaction's spans from every node's ring and reassembles the
// causal tree.
package ctl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/site"
	"dvp/internal/store"
	"dvp/internal/txn"
)

// Server speaks a tiny line protocol for clients (dvpctl):
//
//	RESERVE <item> <n>      decrement (bounded at zero)
//	CANCEL  <item> <n>      increment
//	TRANSFER <from> <to> <n> move value between items
//	READ    <item>          full read (gathers all shares here)
//	QUOTA   <item>          this site's local share (no txn)
//	STATS                   site counters
//	RECOVERY                what the last recovery pass did
//	METRICS                 Prometheus text exposition (multi-line)
//	TRACE [n]               last n spans as JSON lines
//	TRACE TS <ts>           every retained span of transaction ts
//	FLIGHT [n]              last n flight-recorder events
//	PING                    liveness
//
// Replies are single lines — "OK ...", "ABORT <status>", "ERR <msg>" —
// except METRICS, TRACE and FLIGHT, whose replies are the payload
// lines followed by a lone "." terminator line.
type Server struct {
	Site    *site.Site
	DB      *store.Durable
	Metrics *obs.Registry
	Traces  *obs.Ring
	Flight  *obs.Flight

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// Listen starts accepting control connections on addr.
func (c *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go c.serve(conn)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (c *Server) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops the listener and waits for in-flight handlers.
func (c *Server) Close() {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.wg.Wait()
}

func (c *Server) serve(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		reply := c.handle(strings.Fields(sc.Text()))
		if _, err := fmt.Fprintln(conn, reply); err != nil {
			return
		}
	}
}

func (c *Server) handle(args []string) string {
	if len(args) == 0 {
		return "ERR empty command"
	}
	switch strings.ToUpper(args[0]) {
	case "PING":
		return "OK pong"
	case "QUOTA":
		if len(args) != 2 {
			return "ERR usage: QUOTA <item>"
		}
		return fmt.Sprintf("OK %d", c.DB.Value(ident.ItemID(args[1])))
	case "STATS":
		st := c.Site.Stats()
		// Abort reasons reported separately so partition experiments
		// can tell timeout aborts from CC rejections; aborts= keeps
		// the total for script compatibility.
		return fmt.Sprintf("OK committed=%d aborts=%d abort_lock=%d abort_cc=%d abort_timeout=%d abort_down=%d honored=%d vm-accepted=%d retransmits=%d",
			st.Committed,
			st.AbortLockConflict+st.AbortCCRejected+st.AbortTimeout+st.AbortSiteDown,
			st.AbortLockConflict, st.AbortCCRejected, st.AbortTimeout, st.AbortSiteDown,
			st.RequestsHonored, st.VmAccepted, st.Retransmissions)
	case "RECOVERY":
		r := c.Site.LastRecovery()
		return fmt.Sprintf("OK checkpoint_lsn=%d checkpoints_skipped=%d records_scanned=%d actions_redone=%d vm_restored=%d workers=%d elapsed_us=%d network_calls=%d",
			r.CheckpointLSN, r.CheckpointsSkipped, r.RecordsScanned,
			r.ActionsRedone, r.VmRestored, r.Workers,
			r.Elapsed.Microseconds(), r.NetworkCalls)
	case "METRICS":
		if c.Metrics == nil {
			return "ERR metrics disabled"
		}
		return strings.TrimRight(c.Metrics.Render(), "\n") + "\n."
	case "TRACE":
		if c.Traces == nil {
			return "ERR tracing disabled"
		}
		if len(args) == 3 && strings.EqualFold(args[1], "TS") {
			ts, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil || ts == 0 {
				return "ERR usage: TRACE TS <ts>"
			}
			spans := c.Traces.ByTS(ts)
			if len(spans) == 0 {
				return "."
			}
			var sb strings.Builder
			enc := json.NewEncoder(&sb)
			for _, t := range spans {
				if err := enc.Encode(t); err != nil {
					return "ERR " + err.Error()
				}
			}
			return strings.TrimRight(sb.String(), "\n") + "\n."
		}
		n := 10
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v <= 0 {
				return "ERR usage: TRACE [n] | TRACE TS <ts>"
			}
			n = v
		} else if len(args) > 2 {
			return "ERR usage: TRACE [n] | TRACE TS <ts>"
		}
		var sb strings.Builder
		if err := c.Traces.DumpJSON(&sb, n); err != nil {
			return "ERR " + err.Error()
		}
		if sb.Len() == 0 {
			return "."
		}
		return strings.TrimRight(sb.String(), "\n") + "\n."
	case "FLIGHT":
		if c.Flight == nil {
			return "ERR flight recorder disabled"
		}
		n := 100
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil || v <= 0 {
				return "ERR usage: FLIGHT [n]"
			}
			n = v
		} else if len(args) > 2 {
			return "ERR usage: FLIGHT [n]"
		}
		var sb strings.Builder
		if err := c.Flight.WriteText(&sb, n); err != nil {
			return "ERR " + err.Error()
		}
		if sb.Len() == 0 {
			return "."
		}
		return strings.TrimRight(sb.String(), "\n") + "\n."
	case "RESERVE", "CANCEL":
		if len(args) != 3 {
			return "ERR usage: " + args[0] + " <item> <n>"
		}
		n, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil || n < 0 {
			return "ERR bad amount"
		}
		var op core.Op = core.Decr{M: core.Value(n)}
		if strings.EqualFold(args[0], "CANCEL") {
			op = core.Incr{M: core.Value(n)}
		}
		res := c.runRetry(&txn.Txn{
			Ops:   []txn.ItemOp{{Item: ident.ItemID(args[1]), Op: op}},
			Ask:   txn.AskAll,
			Label: strings.ToLower(args[0]),
		})
		return txnReply(res, "")
	case "TRANSFER":
		if len(args) != 4 {
			return "ERR usage: TRANSFER <from> <to> <n>"
		}
		n, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil || n < 0 {
			return "ERR bad amount"
		}
		res := c.runRetry(&txn.Txn{
			Ops: []txn.ItemOp{
				{Item: ident.ItemID(args[1]), Op: core.Decr{M: core.Value(n)}},
				{Item: ident.ItemID(args[2]), Op: core.Incr{M: core.Value(n)}},
			},
			Ask:   txn.AskAll,
			Label: "transfer",
		})
		return txnReply(res, "")
	case "READ":
		if len(args) != 2 {
			return "ERR usage: READ <item>"
		}
		item := ident.ItemID(args[1])
		res := c.runRetry(&txn.Txn{Reads: []ident.ItemID{item}, Ask: txn.AskAll, Label: "read"})
		if res.Committed() {
			return fmt.Sprintf("OK %d ts=%d", res.Reads[item], uint64(res.TS))
		}
		return txnReply(res, "")
	default:
		return "ERR unknown command " + args[0]
	}
}

// runRetry is the application-level retry loop the paper assumes
// (§5): aborted transactions are simply resubmitted; each attempt
// draws a fresher timestamp, which also heals post-recovery and
// post-decline conditions.
func (c *Server) runRetry(t *txn.Txn) *txn.Result {
	var res *txn.Result
	for i := 0; i < 3; i++ {
		res = c.Site.Run(t)
		if res.Committed() {
			return res
		}
	}
	return res
}

func txnReply(res *txn.Result, extra string) string {
	if res.Committed() {
		return strings.TrimSpace(fmt.Sprintf("OK committed in %.2fms ts=%d %s",
			float64(res.Latency.Microseconds())/1000, uint64(res.TS), extra))
	}
	return "ABORT " + res.Status.String()
}
