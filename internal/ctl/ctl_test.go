package ctl

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/site"
	"dvp/internal/store"
	"dvp/internal/tcpnet"
	"dvp/internal/txn"
	"dvp/internal/wal"
)

const ctlTimeout = 2 * time.Second

// startServer listens a Server on loopback and arranges cleanup.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv.Addr()
}

func TestMetricsOutputSortedAndParseable(t *testing.T) {
	reg := obs.NewRegistry()
	// Register deliberately out of order: the exposition must come back
	// sorted by (name, labels) regardless.
	reg.Counter("zeta_total", "site", "s2").Add(7)
	reg.Counter("zeta_total", "site", "s1").Add(3)
	reg.Gauge("alpha_gauge", "site", "s9").Set(2)
	reg.Counter("mid_total").Add(11)
	reg.Histogram("dvp_step_seconds", "site", "s1", "step", "apply").Record(time.Millisecond)

	addr := startServer(t, &Server{Metrics: reg})
	lines, err := Do(addr, "METRICS", ctlTimeout)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ParseMetrics(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no samples parsed")
	}
	// Families must render in sorted order...
	var families []string
	kinds := make(map[string]string)
	for _, line := range lines {
		var name, kind string
		if _, err := fmt.Sscanf(line, "# TYPE %s %s", &name, &kind); err == nil {
			families = append(families, name)
			kinds[name] = kind
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Errorf("metric families not sorted: %v", families)
	}
	// ...and within counter/gauge families, samples sort by labels.
	// (Histogram expansion orders buckets numerically, not lexically.)
	scalar := ms[:0:0]
	for _, m := range ms {
		if k := kinds[m.Name]; k == "counter" || k == "gauge" {
			scalar = append(scalar, m)
		}
	}
	if !sort.SliceIsSorted(scalar, func(i, j int) bool {
		if scalar[i].Name != scalar[j].Name {
			return scalar[i].Name < scalar[j].Name
		}
		return scalar[i].Labels < scalar[j].Labels
	}) {
		t.Errorf("samples not sorted by (name, labels):\n%s", strings.Join(lines, "\n"))
	}
	want := map[string]float64{
		`zeta_total{site="s1"}`:  3,
		`zeta_total{site="s2"}`:  7,
		`alpha_gauge{site="s9"}`: 2,
		`mid_total`:              11,
	}
	got := make(map[string]float64, len(ms))
	for _, m := range ms {
		got[m.Key()] = m.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("sample %s = %v, want %v", k, got[k], v)
		}
	}
	// Two fetches must render identically: deterministic output is what
	// lets scripts diff scrapes.
	again, err := Do(addr, "METRICS", ctlTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(lines, "\n") != strings.Join(again, "\n") {
		t.Error("METRICS output changed between identical fetches")
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"noval", "x{y=\"z\" 1", "name notanumber"} {
		if _, err := ParseMetrics([]string{bad}); err == nil {
			t.Errorf("ParseMetrics(%q) did not fail", bad)
		}
	}
	// Comments and blank lines are skipped, not errors.
	ms, err := ParseMetrics([]string{"# HELP x y", "", "x 1"})
	if err != nil || len(ms) != 1 {
		t.Errorf("got %v, %v; want one sample", ms, err)
	}
}

// tnode is one in-process "node": a site over real TCP plus its own
// observability (per-node ring and flight, as in dvpnode) and control
// server.
type tnode struct {
	site   *site.Site
	ring   *obs.Ring
	flight *obs.Flight
	ctl    string
}

// cluster boots n sites on loopback TCP, each with its own registry,
// trace ring, flight recorder and control port — the same shape as n
// dvpnode processes.
func cluster(t *testing.T, n int) []*tnode {
	t.Helper()
	eps := make([]*tcpnet.Endpoint, n)
	addrs := make(map[ident.SiteID]string, n)
	var peers []ident.SiteID
	for i := 0; i < n; i++ {
		id := ident.SiteID(i + 1)
		ep, err := tcpnet.New(tcpnet.Config{Site: id, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
		addrs[id] = ep.Addr()
		peers = append(peers, id)
	}
	nodes := make([]*tnode, n)
	for i := 0; i < n; i++ {
		id := ident.SiteID(i + 1)
		eps[i].SetPeers(addrs)
		reg := obs.NewRegistry()
		ring := obs.NewRing(256)
		flight := obs.NewFlight(256)
		db := store.New()
		s, err := site.New(site.Config{
			ID: id, Peers: peers,
			Log: wal.NewMemLog(), DB: db,
			Endpoint:        eps[i],
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 10 * time.Millisecond,
			DefaultTimeout:  time.Second,
			Metrics:         reg,
			Trace:           ring,
			Flight:          flight,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{Site: s, DB: db, Metrics: reg, Traces: ring, Flight: flight}
		nodes[i] = &tnode{site: s, ring: ring, flight: flight, ctl: startServer(t, srv)}
	}
	for _, nd := range nodes {
		nd.site.Start()
		t.Cleanup(nd.site.Crash)
	}
	return nodes
}

// TestTraceStitchEndToEnd is the tentpole's acceptance test: commit a
// transfer that needs remote value, then stitch its spans from every
// node's control port and check the causal tree — origin txn root with
// its protocol steps, an rds-create hop on each granting site, and
// that hop's vm-accept (at the origin) and vm-ack (back at the
// granter) children, in causal order.
func TestTraceStitchEndToEnd(t *testing.T) {
	nodes := cluster(t, 3)
	nodes[0].site.DB().Create("flight/A", 2)
	nodes[1].site.DB().Create("flight/A", 20)
	nodes[2].site.DB().Create("flight/A", 20)

	res := nodes[0].site.Run(&txn.Txn{
		Ops:   []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 10}}},
		Ask:   txn.AskAll,
		Label: "e2e-transfer",
	})
	if !res.Committed() {
		t.Fatalf("transfer did not commit: %v", res.Status)
	}
	ts := uint64(res.TS)
	ctls := []string{nodes[0].ctl, nodes[1].ctl, nodes[2].ctl}

	// Acks ride piggybacks and retransmit ticks; poll until every hop's
	// full lifecycle (create → accept → ack) has been recorded.
	var spans []*obs.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		spans, err = FetchSpans(ctls, ts, ctlTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if complete(spans) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	roots := BuildTree(spans)
	if len(roots) != 1 {
		t.Fatalf("want one stitched root, got %d: %+v", len(roots), dumpKinds(spans))
	}
	root := roots[0]
	if root.Trace.Kind != "txn" || root.Trace.Site != "s1" || root.Trace.Outcome != "committed" {
		t.Fatalf("bad root: %+v", root.Trace)
	}
	stepNames := make(map[string]bool)
	for _, st := range root.Trace.Steps {
		stepNames[st.Name] = true
	}
	for _, want := range []string{"admit", "cc-check", "ask", "vm-accept", "lock", "wal-flush", "apply"} {
		if !stepNames[want] {
			t.Errorf("origin root missing protocol step %q (have %v)", want, root.Trace.Steps)
		}
	}

	creates := 0
	for _, hop := range root.Children {
		if hop.Trace.Kind != "rds-create" {
			t.Errorf("unexpected root child kind %q", hop.Trace.Kind)
			continue
		}
		creates++
		if hop.Trace.Site == "s1" {
			t.Errorf("rds-create recorded at origin, want a remote site")
		}
		if hop.Trace.Origin != "s1" || hop.Trace.TS != ts {
			t.Errorf("hop lost its causal identity: %+v", hop.Trace)
		}
		kinds := make(map[string]*SpanNode)
		for _, c := range hop.Children {
			kinds[c.Trace.Kind] = c
		}
		acc, ack := kinds["vm-accept"], kinds["vm-ack"]
		if acc == nil || ack == nil {
			t.Fatalf("hop at %s missing vm-accept/vm-ack children: have %v",
				hop.Trace.Site, dumpKinds(spans))
		}
		if acc.Trace.Site != "s1" {
			t.Errorf("vm-accept recorded at %s, want origin s1", acc.Trace.Site)
		}
		if ack.Trace.Site != hop.Trace.Site {
			t.Errorf("vm-ack recorded at %s, want granting site %s", ack.Trace.Site, hop.Trace.Site)
		}
		// Causal order: create starts after the origin asked, accept
		// after the create, ack after the accept was possible. All
		// clocks here are one process, so wall order is causal order.
		if hop.Trace.StartUnixNano < root.Trace.StartUnixNano {
			t.Errorf("hop starts before its root")
		}
		if acc.Trace.StartUnixNano < hop.Trace.StartUnixNano {
			t.Errorf("vm-accept starts before its rds-create")
		}
	}
	if creates == 0 {
		t.Fatalf("no rds-create hop stitched under root: %v", dumpKinds(spans))
	}

	// The rendered tree is the dvpctl-facing artifact: spot-check it
	// names every participant and carries hop latencies.
	var sb strings.Builder
	RenderTree(&sb, roots)
	out := sb.String()
	for _, want := range []string{"txn site=s1", "ts=", "rds-create", "vm-accept site=s1", "vm-ack", "hop=+", "outcome=committed"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}

	// The flight recorder on a granting site saw the hop too.
	for _, nd := range nodes[1:] {
		lines, err := Do(nd.ctl, "FLIGHT", ctlTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 0 {
			continue
		}
		joined := strings.Join(lines, "\n")
		if strings.Contains(joined, "rds-create") {
			return // at least one granter logged the create
		}
	}
	t.Error("no granting site's FLIGHT output mentions rds-create")
}

// complete reports whether the span set already contains the full hop
// lifecycle for EVERY fetched rds-create: each must have both a
// vm-accept and a vm-ack parented on it. (Waiting on all of them
// matters — the fetch visits rings one by one, so a second granter's
// ack span can land while its accept span was published after that
// ring's fetch.)
func complete(spans []*obs.Trace) bool {
	byParent := make(map[uint64]map[string]bool)
	var createSpans []uint64
	for _, t := range spans {
		if t.Kind == "rds-create" {
			createSpans = append(createSpans, t.Span)
		}
		if t.Parent != 0 {
			m := byParent[t.Parent]
			if m == nil {
				m = make(map[string]bool)
				byParent[t.Parent] = m
			}
			m[t.Kind] = true
		}
	}
	if len(createSpans) == 0 {
		return false
	}
	for _, id := range createSpans {
		if !byParent[id]["vm-accept"] || !byParent[id]["vm-ack"] {
			return false
		}
	}
	return true
}

func dumpKinds(spans []*obs.Trace) []string {
	var out []string
	for _, t := range spans {
		out = append(out, t.Site+"/"+t.Kind)
	}
	return out
}

func TestTraceTSCommandValidation(t *testing.T) {
	addr := startServer(t, &Server{Traces: obs.NewRing(16)})
	if _, err := Do(addr, "TRACE TS notanumber", ctlTimeout); err == nil {
		t.Error("bad ts accepted")
	}
	if lines, err := Do(addr, "TRACE TS 12345", ctlTimeout); err != nil || len(lines) != 0 {
		t.Errorf("unknown ts: got %v, %v; want empty reply", lines, err)
	}
	if _, err := Do(addr, "FLIGHT", ctlTimeout); err == nil {
		t.Error("FLIGHT with no recorder should ERR")
	}
}
