package ctl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"dvp/internal/obs"
)

// Do dials addr, sends one command line, and returns the reply lines.
// Single-line replies come back as one element; multi-line replies
// (METRICS, TRACE, FLIGHT) are returned without their "." terminator.
// An "ERR ..." or "ABORT ..." first line is returned as an error.
func Do(addr, cmd string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ctl %s: no reply", addr)
	}
	first := sc.Text()
	if strings.HasPrefix(first, "ERR") || strings.HasPrefix(first, "ABORT") {
		return nil, fmt.Errorf("ctl %s: %s", addr, first)
	}
	if !multiLine(cmd) {
		return []string{first}, nil
	}
	if first == "." {
		return nil, nil
	}
	lines := []string{first}
	for sc.Scan() {
		line := sc.Text()
		if line == "." {
			return lines, nil
		}
		lines = append(lines, line)
	}
	return nil, fmt.Errorf("ctl %s: reply truncated (no terminator)", addr)
}

// multiLine reports whether cmd's reply is "." terminated.
func multiLine(cmd string) bool {
	f := strings.Fields(cmd)
	if len(f) == 0 {
		return false
	}
	switch strings.ToUpper(f[0]) {
	case "METRICS", "TRACE", "FLIGHT":
		return true
	}
	return false
}

// Metric is one sample parsed from the Prometheus text exposition.
type Metric struct {
	// Name is the metric name (histogram series keep their _bucket/
	// _sum/_count suffix).
	Name string
	// Labels is the raw label block including braces ("" if none).
	Labels string
	// Value is the sample value.
	Value float64
}

// Key is the sample's identity: name plus label block.
func (m Metric) Key() string { return m.Name + m.Labels }

// ParseMetrics parses exposition-format lines (as returned by a
// METRICS command) into samples, skipping comments and blanks.
func ParseMetrics(lines []string) ([]Metric, error) {
	var out []Metric
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		series := line[:sp]
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
			if !strings.HasSuffix(labels, "}") {
				return nil, fmt.Errorf("unterminated label block in %q", line)
			}
		}
		out = append(out, Metric{Name: name, Labels: labels, Value: v})
	}
	return out, nil
}

// FetchSpans asks every control address for the spans of transaction
// ts and merges the answers, deduplicating spans served by more than
// one address (nodes sharing a process share a ring). It fails only
// when every address is unreachable; a partial view is still a view.
func FetchSpans(addrs []string, ts uint64, timeout time.Duration) ([]*obs.Trace, error) {
	var (
		spans    []*obs.Trace
		seen     = make(map[string]bool)
		firstErr error
		ok       bool
	)
	for _, addr := range addrs {
		lines, err := Do(addr, fmt.Sprintf("TRACE TS %d", ts), timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
		for _, line := range lines {
			t := new(obs.Trace)
			if err := json.Unmarshal([]byte(line), t); err != nil {
				return nil, fmt.Errorf("ctl %s: bad span line %q: %v", addr, line, err)
			}
			key := fmt.Sprintf("%s/%d/%s/%d", t.Site, t.Span, t.Kind, t.StartUnixNano)
			if seen[key] {
				continue
			}
			seen[key] = true
			spans = append(spans, t)
		}
	}
	if !ok {
		if firstErr == nil {
			firstErr = fmt.Errorf("no control addresses")
		}
		return nil, firstErr
	}
	return spans, nil
}

// SpanNode is one span in the stitched causal tree.
type SpanNode struct {
	Trace    *obs.Trace
	Children []*SpanNode
}

// BuildTree stitches spans (all sharing one transaction TS) into
// causal trees: a span whose Parent matches another span's id becomes
// its child; everything else — roots proper, and hops whose parent
// span fell out of a ring — surfaces as a root. Children sort by
// start time.
func BuildTree(spans []*obs.Trace) []*SpanNode {
	nodes := make([]*SpanNode, len(spans))
	byID := make(map[uint64]*SpanNode, len(spans))
	for i, t := range spans {
		nodes[i] = &SpanNode{Trace: t}
		if t.Span != 0 {
			byID[t.Span] = nodes[i]
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p := byID[n.Trace.Parent]; n.Trace.Parent != 0 && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			return ns[i].Trace.StartUnixNano < ns[j].Trace.StartUnixNano
		})
	}
	order(roots)
	for _, n := range nodes {
		order(n.Children)
	}
	return roots
}

// RenderTree prints the stitched span tree. Each span line shows its
// kind, recording site, outcome and duration; child spans additionally
// show their hop latency — wall-clock offset from the parent span's
// start (clock skew between sites and all, it is what the rings saw).
// Protocol steps print as leaf lines offset from their span's start.
func RenderTree(w io.Writer, roots []*SpanNode) {
	for i, r := range roots {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, spanHead(r.Trace, 0, true))
		renderChildren(w, r, "")
	}
}

func renderChildren(w io.Writer, n *SpanNode, prefix string) {
	total := len(n.Trace.Steps) + len(n.Children)
	i := 0
	connect := func() (string, string) {
		i++
		if i == total {
			return prefix + "└─ ", prefix + "   "
		}
		return prefix + "├─ ", prefix + "│  "
	}
	for _, st := range n.Trace.Steps {
		conn, _ := connect()
		line := fmt.Sprintf("%s%s +%s", conn, st.Name, fmtMicros(st.AtMicros))
		if st.Detail != "" {
			line += " " + st.Detail
		}
		fmt.Fprintln(w, line)
	}
	for _, c := range n.Children {
		conn, childPrefix := connect()
		hop := (c.Trace.StartUnixNano - n.Trace.StartUnixNano) / 1000
		fmt.Fprintln(w, conn+spanHead(c.Trace, hop, false))
		renderChildren(w, c, childPrefix)
	}
}

// spanHead renders one span's header line. hopMicros is the offset
// from the parent span's start (ignored for roots).
func spanHead(t *obs.Trace, hopMicros int64, root bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s site=%s", t.Kind, t.Site)
	if t.Label != "" {
		fmt.Fprintf(&sb, " label=%s", t.Label)
	}
	if root {
		fmt.Fprintf(&sb, " ts=%d", t.TS)
	} else {
		fmt.Fprintf(&sb, " hop=+%s", fmtMicros(hopMicros))
	}
	fmt.Fprintf(&sb, " outcome=%s (%s)", t.Outcome, fmtMicros(t.LatencyMicros))
	return sb.String()
}

// fmtMicros renders a microsecond count humanely.
func fmtMicros(us int64) string {
	switch {
	case us >= 1_000_000 || us <= -1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000 || us <= -1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
