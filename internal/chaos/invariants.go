package chaos

import (
	"fmt"
	"time"

	"dvp"
	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/recovery"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
)

// checkInvariants runs every global invariant family at a quiescent,
// fully-up, fully-connected barrier. Order matters: idempotence goes
// last because it crash-cycles sites, which re-registers
// already-accepted Vm for retransmission (acks are volatile between
// checkpoints) — conservation is re-verified after it precisely
// because of that perturbation.
func (r *runner) checkInvariants(round int) error {
	if err := r.checkDurability(); err != nil {
		return err
	}
	if err := r.checkConservation(); err != nil {
		return err
	}
	if err := r.checkNonNegative(); err != nil {
		return err
	}
	if err := r.checkExactlyOnce(); err != nil {
		return err
	}
	if err := r.checkDurability(); err != nil {
		return err
	}
	if err := r.checkSerializability(); err != nil {
		return err
	}
	if err := r.checkIdempotence(round); err != nil {
		return err
	}
	if err := r.checkConservation(); err != nil {
		return fmt.Errorf("after idempotence cycling: %w", err)
	}
	return nil
}

// checkRebalanceQuiet is the anti-thrash invariant on the demand
// rebalancer: at a healed, workload-free barrier, transfer volume must
// die down by itself — the quiescence threshold and per-item cooldown
// exist precisely so idle skew is left alone. A rebalancer that keeps
// shipping value between idle sites would burn Vm (and log space)
// forever in production. The check samples the cluster-wide transfer
// counter over short windows and insists some window stays (near)
// quiet; the bound allows a straggler per site pair for transfers
// already past their demand check when the workload stopped.
func (r *runner) checkRebalanceQuiet(round int) error {
	const (
		window     = 5 * rebalInterval // a few ticks per site per window
		maxWindows = 12
	)
	quiet := uint64(r.sched.Sites / 2)
	total := func() uint64 {
		return r.c.Metrics().SumCounters("dvp_rebalance_transfers_total")
	}
	last := total()
	for w := 1; w <= maxWindows; w++ {
		time.Sleep(window)
		cur := total()
		if cur-last <= quiet {
			r.tracef("r%d barrier: rebalancer quiet after %d window(s), %d transfers total",
				round, w, cur)
			r.count(func(rep *Report) { rep.RebalanceTransfers = int(cur) })
			return nil
		}
		last = cur
	}
	return fmt.Errorf(
		"anti-thrash: rebalancer still issued >%d transfers per %v window after %d windows at an idle barrier (%d total)",
		quiet, window, maxWindows, total())
}

// checkConservation verifies the paper's central invariant: for every
// item, Σⱼ dⱼ plus in-flight redistribution equals the initial Γ plus
// the net effect of committed transactions — whatever crashed, lost or
// duplicated along the way.
func (r *runner) checkConservation() error {
	r.mu.Lock()
	deltas := make(map[string]int64, len(r.items))
	for _, ci := range r.committed {
		for item, d := range ci.Deltas {
			deltas[item] += d
		}
	}
	r.mu.Unlock()
	for _, item := range r.items {
		want := r.initial[item] + deltas[item]
		got := int64(r.c.GlobalTotal(item))
		if got != want {
			return fmt.Errorf(
				"conservation: item %s global total %d, want %d (initial %d %+d committed) — value %s",
				item, got, want, r.initial[item], deltas[item],
				gainOrLoss(got-want))
		}
	}
	return nil
}

func gainOrLoss(d int64) string {
	if d > 0 {
		return fmt.Sprintf("duplicated (+%d)", d)
	}
	return fmt.Sprintf("lost (%d)", d)
}

// checkNonNegative verifies no partition dⱼ anywhere went negative —
// the bounded-decrement guarantee holds per site, not just globally.
func (r *runner) checkNonNegative() error {
	for i := 1; i <= r.sched.Sites; i++ {
		for _, item := range r.items {
			if v := r.c.Quota(i, item); v < 0 {
				return fmt.Errorf("non-negative: site %d holds %s=%d", i, item, v)
			}
		}
	}
	for i := 1; i <= r.sched.Sites; i++ {
		for _, v := range r.c.SiteEngine(i).VM().PendingAll() {
			if v.Amount < 0 {
				return fmt.Errorf("non-negative: site %d has in-flight Vm %s=%d", i, v.Item, v.Amount)
			}
		}
	}
	return nil
}

// checkExactlyOnce verifies every virtual message was applied exactly
// once, three ways:
//
//  1. Live counters: at quiescence with nothing pending, every created
//     Vm has been accepted by its receiver, and accepts equal creates
//     (duplicate deliveries were detected, counted and discarded).
//     Neither counter is bumped by recovery replay, so the identity
//     spans crashes.
//  2. WAL audit: no sender's log creates the same (to, seq) twice; no
//     receiver's log accepts the same (from, seq) twice. The stable
//     history itself contains no double-spend.
//  3. Channel cursors: no receiver has cumulatively acked past what
//     its sender ever allocated.
func (r *runner) checkExactlyOnce() error {
	var created, accepted, dups uint64
	for i := 1; i <= r.sched.Sites; i++ {
		st := r.c.SiteStats(i)
		created += st.VmCreated
		accepted += st.VmAccepted
		dups += st.VmDuplicates
	}
	if created != accepted {
		return fmt.Errorf(
			"exactly-once: ΣVmCreated=%d but ΣVmAccepted=%d (dups discarded: %d) at quiescence",
			created, accepted, dups)
	}

	type chanKey struct {
		peer ident.SiteID
		seq  uint64
	}
	for i := 1; i <= r.sched.Sites; i++ {
		log := r.c.SiteEngine(i).Log()
		sentOnce := make(map[chanKey]bool)
		acceptedOnce := make(map[chanKey]bool)
		err := log.Scan(1, func(rec wal.Record) error {
			switch rec.Kind {
			case wal.RecVmCreate:
				cr, err := wal.DecodeVmCreate(rec.Data)
				if err != nil {
					return fmt.Errorf("site %d LSN %d: %w", i, rec.LSN, err)
				}
				for _, m := range cr.Msgs {
					k := chanKey{m.To, m.Seq}
					if sentOnce[k] {
						return fmt.Errorf(
							"exactly-once: site %d log creates Vm (to=%v seq=%d) twice", i, m.To, m.Seq)
					}
					sentOnce[k] = true
				}
			case wal.RecVmAccept:
				ar, err := wal.DecodeVmAccept(rec.Data)
				if err != nil {
					return fmt.Errorf("site %d LSN %d: %w", i, rec.LSN, err)
				}
				k := chanKey{ar.From, ar.Seq}
				if acceptedOnce[k] {
					return fmt.Errorf(
						"exactly-once: site %d log accepts Vm (from=%v seq=%d) twice", i, ar.From, ar.Seq)
				}
				acceptedOnce[k] = true
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	for i := 1; i <= r.sched.Sites; i++ {
		for j := 1; j <= r.sched.Sites; j++ {
			if i == j {
				continue
			}
			send := r.c.SiteEngine(i).VM()
			recv := r.c.SiteEngine(j).VM()
			if ack, out := recv.AckFor(ident.SiteID(i)), send.OutSeq(ident.SiteID(j)); ack > out {
				return fmt.Errorf(
					"exactly-once: site %d acked %d from site %d, which only ever allocated %d",
					j, ack, i, out)
			}
		}
	}
	return nil
}

// checkDurability verifies the group-commit pipeline never lied about
// stability: every transaction the workload saw commit carries the LSN
// of the commit record that acknowledged it, and that record must
// still exist in the site's stable log — whatever crashes (including
// crash-in-flush, which kills the site with committers parked
// mid-batch) the schedule injected. Records older than the log's
// compaction horizon (a checkpoint subsumed them) are exempt. The
// pipeline itself must also be drained at a barrier: no parked
// committers, durable watermark caught up with the last assigned LSN.
func (r *runner) checkDurability() error {
	r.mu.Lock()
	ackedBySite := make(map[int][]uint64)
	for _, ci := range r.committed {
		if ci.CommitLSN > 0 {
			ackedBySite[ci.Site] = append(ackedBySite[ci.Site], ci.CommitLSN)
		}
	}
	r.mu.Unlock()

	for i := 1; i <= r.sched.Sites; i++ {
		if gl := r.c.GroupLog(i); gl != nil {
			if n := gl.Waiters(); n != 0 {
				return fmt.Errorf("durability: site %d has %d committers parked in the group-commit queue at a quiescent barrier", i, n)
			}
			if d, l := gl.DurableLSN(), gl.LastLSN(); d != l {
				return fmt.Errorf("durability: site %d durable watermark %d behind last LSN %d at a quiescent barrier", i, d, l)
			}
		}
		acked := ackedBySite[i]
		if len(acked) == 0 {
			continue
		}
		var horizon uint64 // first retained LSN
		commits := make(map[uint64]bool)
		err := r.c.SiteEngine(i).Log().Scan(1, func(rec wal.Record) error {
			if horizon == 0 || rec.LSN < horizon {
				horizon = rec.LSN
			}
			if rec.Kind == wal.RecCommit {
				commits[rec.LSN] = true
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("durability: site %d log scan: %w", i, err)
		}
		for _, lsn := range acked {
			if lsn >= horizon && !commits[lsn] {
				return fmt.Errorf(
					"durability: site %d acknowledged a commit at LSN %d but the record is gone from the stable log (retained from LSN %d) — an acked commit was lost",
					i, lsn, horizon)
			}
		}
	}
	return nil
}

// checkSerializability replays the full committed history serially in
// timestamp order (the §6.1 equivalence order) and verifies every full
// read observed exactly the serial value, plus conservation of the
// replayed state — across every crash, partition and loss surge the
// schedule injected.
func (r *runner) checkSerializability() error {
	r.mu.Lock()
	txns := make([]cc.CommittedTxn, len(r.committed))
	for k, ci := range r.committed {
		t := cc.CommittedTxn{
			TS:     tstamp.TS(ci.TS),
			Site:   ident.SiteID(ci.Site),
			Deltas: make(map[ident.ItemID]core.Value, len(ci.Deltas)),
			Reads:  make(map[ident.ItemID]core.Value, len(ci.Reads)),
		}
		for item, d := range ci.Deltas {
			t.Deltas[ident.ItemID(item)] = core.Value(d)
		}
		for item, v := range ci.Reads {
			t.Reads[ident.ItemID(item)] = core.Value(v)
		}
		txns[k] = t
	}
	rds := make([]dvp.RdsInfo, len(r.rds))
	copy(rds, r.rds)
	r.mu.Unlock()

	// Fold every redistribution half into the replay at its stamp.
	// Halves sharing a committed transaction's timestamp (request
	// grants consumed by the waiting transaction) merge into it and
	// cancel; unmatched halves — a rebalancer deduct, a credit accepted
	// into a free item after its requester aborted — become their own
	// serial positions, reproducing the window where the value is in
	// flight and correctly invisible to full reads.
	byTS := make(map[tstamp.TS]int, len(txns))
	for k := range txns {
		byTS[txns[k].TS] = k
	}
	for _, e := range rds {
		ts := tstamp.TS(e.TS)
		k, ok := byTS[ts]
		if !ok {
			txns = append(txns, cc.CommittedTxn{
				TS:     ts,
				Site:   ident.SiteID(e.Site),
				Deltas: make(map[ident.ItemID]core.Value, 1),
			})
			k = len(txns) - 1
			byTS[ts] = k
		}
		txns[k].Deltas[ident.ItemID(e.Item)] += core.Value(e.Delta)
	}

	initial := make(map[ident.ItemID]core.Value, len(r.items))
	final := make(map[ident.ItemID]core.Value, len(r.items))
	for _, item := range r.items {
		initial[ident.ItemID(item)] = core.Value(r.initial[item])
		final[ident.ItemID(item)] = r.c.GlobalTotal(item)
	}
	if err := cc.CheckSerializable(initial, final, txns); err != nil {
		return fmt.Errorf("serializability: %w", err)
	}
	return nil
}

// checkIdempotence verifies WAL-replay idempotence two ways on the
// chosen sites (one rotating site per round; every site at the final
// barrier):
//
//   - Crash-restart-recheck: a §7 recovery pass over the already-applied
//     log must change nothing — same item values, zero actions redone
//     (the store's applied-LSN skips every record), zero network calls.
//   - Rebuild-from-log-alone: replaying the stable log into a brand-new
//     store (as if the disk minus log had been replaced) must agree
//     with the live store on every item.
func (r *runner) checkIdempotence(round int) error {
	var sites []int
	if round == r.sched.Rounds {
		for i := 1; i <= r.sched.Sites; i++ {
			sites = append(sites, i)
		}
	} else {
		sites = []int{(round-1)%r.sched.Sites + 1}
	}
	for _, i := range sites {
		eng := r.c.SiteEngine(i)
		before := make(map[string]core.Value, len(r.items))
		for _, item := range r.items {
			before[item] = r.c.Quota(i, item)
		}
		r.c.Crash(i)
		if err := r.c.Restart(i); err != nil {
			return fmt.Errorf("idempotence: site %d restart: %w", i, err)
		}
		// The restarted site comes back with a fresh, unpaused
		// rebalancer; re-freeze it so the quota comparison below (and
		// the conservation re-check after) read a motionless cluster.
		r.c.SetRebalancePaused(true)
		r.tracef("r%d barrier: idempotence crash-cycle site %d", round, i)
		for _, item := range r.items {
			if after := r.c.Quota(i, item); after != before[item] {
				return fmt.Errorf(
					"idempotence: site %d %s changed %d→%d across crash+replay",
					i, item, before[item], after)
			}
		}
		sum := r.c.LastRecovery(i)
		if sum.NetworkCalls != 0 {
			return fmt.Errorf("idempotence: site %d recovery made %d network calls (§7 independence)",
				i, sum.NetworkCalls)
		}
		if sum.ActionsRedone != 0 {
			return fmt.Errorf(
				"idempotence: site %d recovery redid %d actions over an already-applied store",
				i, sum.ActionsRedone)
		}

		db, _, rsum, err := recovery.Rebuild(eng.Log(), eng.ID())
		if err != nil {
			return fmt.Errorf("idempotence: site %d rebuild: %w", i, err)
		}
		if rsum.NetworkCalls != 0 {
			return fmt.Errorf("idempotence: site %d rebuild made network calls", i)
		}
		for _, item := range r.items {
			if rebuilt, live := db.Value(ident.ItemID(item)), r.c.Quota(i, item); rebuilt != live {
				return fmt.Errorf(
					"idempotence: site %d %s rebuilt-from-log=%d live=%d",
					i, item, rebuilt, live)
			}
		}
	}
	return nil
}
