package chaos

import (
	"flag"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"dvp"
	"dvp/internal/wal"
)

// seedCount widens the corpus for long-running soak sessions:
//
//	go test ./internal/chaos -run Chaos -chaos.seeds=500
//
// The default (0) runs the short-mode corpus of 20 fixed seeds.
var seedCount = flag.Int("chaos.seeds", 0, "number of chaos seeds to run (0 = fixed corpus of 20)")

// TestChaosSeeds is the main gate: every seed builds a distinct
// crash/partition schedule, runs it against a concurrent randomized
// workload, and checks all five global invariants at every round
// barrier. A failure prints the seed, the exact replay commands, the
// full schedule and the event trace.
func TestChaosSeeds(t *testing.T) {
	n := 20
	if *seedCount > 0 {
		n = *seedCount
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := Build(seed)
			rep, err := Run(sched, Options{})
			if err != nil {
				t.Fatalf("%v\n\nreplay: go test ./internal/chaos -run 'TestChaosSeeds/seed=%d$' -count=1\n    or: dvpsim chaos -seed %d -v\n\nschedule:\n%s\ntrace:\n%s\nflight recorder:\n%s",
					err, seed, seed, sched.EncodeString(), rep.TraceString(), rep.FlightString())
			}
			// Every run must actually exercise the fault space the
			// schedule guarantees: at least one crash-recovery cycle
			// and at least one partition/heal cycle.
			if rep.Crashes < 1 {
				t.Errorf("no crash applied (schedule guarantees ≥1)")
			}
			if rep.Restarts < rep.Crashes {
				t.Errorf("crashes=%d but restarts=%d — some site never recovered",
					rep.Crashes, rep.Restarts)
			}
			if rep.Partitions < 1 {
				t.Errorf("no partition applied (schedule guarantees ≥1)")
			}
			if rep.Heals < rep.Partitions {
				t.Errorf("partitions=%d but heals=%d", rep.Partitions, rep.Heals)
			}
			// Barriers crossed mid-outage (a held-down site) check the
			// outage bounds instead of the invariant families; every
			// round still ends in exactly one of the two.
			if rep.InvariantChecks+rep.DegradedBarriers != sched.Rounds {
				t.Errorf("invariant checks = %d + degraded barriers = %d, want %d rounds total",
					rep.InvariantChecks, rep.DegradedBarriers, sched.Rounds)
			}
			if sched.has(EvPeerDown) && rep.PeerOutages < 1 {
				t.Errorf("schedule holds an EvPeerDown but no outage applied")
			}
			if rep.Committed == 0 {
				t.Errorf("workload committed nothing — cluster dead under chaos?")
			}
			t.Logf("%s", rep)
		})
	}
}

// TestSabotageProducesFlightDump forces an invariant violation —
// conjuring value out of thin air at one site right before the final
// barrier — and checks the failure artifacts: the run must fail the
// conservation check, and the report must carry a readable
// flight-recorder dump of what the cluster was doing beforehand.
func TestSabotageProducesFlightDump(t *testing.T) {
	sched := Build(7)
	rep, err := Run(sched, Options{
		Sabotage: func(c *dvp.Cluster) {
			s := c.SiteEngine(1)
			// Inject 7 phantom units of item/0 directly into site 1's
			// store, bypassing the WAL: no transaction explains them,
			// so Γ-conservation must fail at the barrier.
			if _, err := s.DB().ApplyAll(s.LogLastLSN()+1_000_000, []wal.Action{{Item: "item/0", Delta: 7}}); err != nil {
				t.Fatalf("sabotage apply: %v", err)
			}
		},
	})
	if err == nil {
		t.Fatal("sabotaged run passed its barriers — invariant checking is broken")
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Errorf("expected a conservation violation, got: %v", err)
	}
	if len(rep.FlightDump) == 0 {
		t.Fatal("violation produced no flight-recorder dump")
	}
	dump := rep.FlightString()
	// Readability: every line is "HH:MM:SS.micros site kind detail".
	for i, line := range rep.FlightDump {
		if !flightLineRE.MatchString(line) {
			t.Fatalf("flight line %d unreadable: %q", i, line)
		}
	}
	// The dump must show real cluster activity, not just be non-empty:
	// group-commit flushes and site lifecycle events are always present
	// in a chaos run.
	for _, kind := range []string{"wal-flush", "site-up"} {
		if !strings.Contains(dump, kind) {
			t.Errorf("flight dump missing %q events:\n%s", kind, clip(dump, 2000))
		}
	}
	t.Logf("flight dump: %d events captured", len(rep.FlightDump))
}

var flightLineRE = regexp.MustCompile(`^\d{2}:\d{2}:\d{2}\.\d{6} s\d+\s+[a-z-]+`)

// clip bounds a dump string for test logs.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestCrashInCheckpointFires runs a hand-built schedule whose only
// mid-round fault is a crash-in-checkpoint trap on an up site: the
// trap must actually fire (checkpoint written, compaction skipped,
// site killed), the barrier must recover the site through §7 replay —
// starting from that very checkpoint with the records it summarizes
// still in the log — and every invariant must hold.
func TestCrashInCheckpointFires(t *testing.T) {
	sched := &Schedule{
		Seed:    99,
		Sites:   3,
		Items:   2,
		Total:   180,
		Rounds:  2,
		RoundMS: 120,
		Events: []Event{
			{Round: 1, AtMS: 40, Kind: EvCrashInCheckpoint, Site: 2},
			{Round: 2, AtMS: 30, Kind: EvPartition, Groups: [][]int{{1}, {2, 3}}},
			{Round: 2, AtMS: 70, Kind: EvHeal},
		},
	}
	rep, err := Run(sched, Options{})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s\nflight recorder:\n%s",
			err, rep.TraceString(), rep.FlightString())
	}
	if rep.CheckpointCrashes != 1 {
		t.Fatalf("checkpoint crashes = %d, want 1 (trap on an up site must fire)\ntrace:\n%s",
			rep.CheckpointCrashes, rep.TraceString())
	}
	if rep.Restarts < rep.Crashes {
		t.Errorf("crashes=%d restarts=%d — the trapped site never recovered",
			rep.Crashes, rep.Restarts)
	}
	if rep.InvariantChecks != sched.Rounds {
		t.Errorf("invariant checks = %d, want %d", rep.InvariantChecks, sched.Rounds)
	}
}

// TestPeerDownLongOutage runs a hand-built schedule whose centerpiece
// is a long outage: site 2 dies in round 1 and stays dead through the
// round-1 barrier (degraded — outage bounds only) while the workload
// keeps running at the survivors, then recovers at the round-2 barrier
// and the remaining rounds' full barriers prove complete catch-up
// (drain to zero pending Vm plus every invariant family). The bounds
// checked at the degraded barrier are the PR's acceptance conditions
// in miniature: bounded retransmission-set memory and rate-bounded
// sweeps toward the dead peer.
func TestPeerDownLongOutage(t *testing.T) {
	sched := &Schedule{
		Seed:    123,
		Sites:   3,
		Items:   2,
		Total:   180,
		Rounds:  3,
		RoundMS: 120,
		Events: []Event{
			{Round: 1, AtMS: 30, Kind: EvPeerDown, Site: 2, A: 1},
		},
	}
	rep, err := Run(sched, Options{})
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s\nflight recorder:\n%s",
			err, rep.TraceString(), rep.FlightString())
	}
	if rep.PeerOutages != 1 {
		t.Fatalf("peer outages = %d, want 1\ntrace:\n%s", rep.PeerOutages, rep.TraceString())
	}
	if rep.DegradedBarriers != 1 {
		t.Errorf("degraded barriers = %d, want 1 (round 1 crossed mid-outage)", rep.DegradedBarriers)
	}
	if rep.InvariantChecks != sched.Rounds-1 {
		t.Errorf("invariant checks = %d, want %d (all but the degraded barrier)",
			rep.InvariantChecks, sched.Rounds-1)
	}
	if rep.Restarts < rep.Crashes {
		t.Errorf("crashes=%d restarts=%d — the held site never recovered",
			rep.Crashes, rep.Restarts)
	}
	if rep.Committed == 0 {
		t.Error("survivors committed nothing during the outage")
	}
}

// TestRunFromDecodedSchedule closes the replay loop: a schedule that
// round-tripped through the text encoding must drive a full run.
func TestRunFromDecodedSchedule(t *testing.T) {
	orig := Build(42)
	decoded, err := DecodeSchedule(stringsReader(orig.EncodeString()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(decoded, Options{})
	if err != nil {
		t.Fatalf("replayed schedule failed: %v\ntrace:\n%s", err, rep.TraceString())
	}
	if rep.Crashes < 1 || rep.Partitions < 1 {
		t.Errorf("replayed run crashes=%d partitions=%d, want ≥1 each", rep.Crashes, rep.Partitions)
	}
}
