package chaos

import (
	"flag"
	"fmt"
	"testing"
)

// seedCount widens the corpus for long-running soak sessions:
//
//	go test ./internal/chaos -run Chaos -chaos.seeds=500
//
// The default (0) runs the short-mode corpus of 20 fixed seeds.
var seedCount = flag.Int("chaos.seeds", 0, "number of chaos seeds to run (0 = fixed corpus of 20)")

// TestChaosSeeds is the main gate: every seed builds a distinct
// crash/partition schedule, runs it against a concurrent randomized
// workload, and checks all five global invariants at every round
// barrier. A failure prints the seed, the exact replay commands, the
// full schedule and the event trace.
func TestChaosSeeds(t *testing.T) {
	n := 20
	if *seedCount > 0 {
		n = *seedCount
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := Build(seed)
			rep, err := Run(sched, Options{})
			if err != nil {
				t.Fatalf("%v\n\nreplay: go test ./internal/chaos -run 'TestChaosSeeds/seed=%d$' -count=1\n    or: dvpsim chaos -seed %d -v\n\nschedule:\n%s\ntrace:\n%s",
					err, seed, seed, sched.EncodeString(), rep.TraceString())
			}
			// Every run must actually exercise the fault space the
			// schedule guarantees: at least one crash-recovery cycle
			// and at least one partition/heal cycle.
			if rep.Crashes < 1 {
				t.Errorf("no crash applied (schedule guarantees ≥1)")
			}
			if rep.Restarts < rep.Crashes {
				t.Errorf("crashes=%d but restarts=%d — some site never recovered",
					rep.Crashes, rep.Restarts)
			}
			if rep.Partitions < 1 {
				t.Errorf("no partition applied (schedule guarantees ≥1)")
			}
			if rep.Heals < rep.Partitions {
				t.Errorf("partitions=%d but heals=%d", rep.Partitions, rep.Heals)
			}
			if rep.InvariantChecks != sched.Rounds {
				t.Errorf("invariant checks = %d, want one per round (%d)",
					rep.InvariantChecks, sched.Rounds)
			}
			if rep.Committed == 0 {
				t.Errorf("workload committed nothing — cluster dead under chaos?")
			}
			t.Logf("%s", rep)
		})
	}
}

// TestRunFromDecodedSchedule closes the replay loop: a schedule that
// round-tripped through the text encoding must drive a full run.
func TestRunFromDecodedSchedule(t *testing.T) {
	orig := Build(42)
	decoded, err := DecodeSchedule(stringsReader(orig.EncodeString()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(decoded, Options{})
	if err != nil {
		t.Fatalf("replayed schedule failed: %v\ntrace:\n%s", err, rep.TraceString())
	}
	if rep.Crashes < 1 || rep.Partitions < 1 {
		t.Errorf("replayed run crashes=%d partitions=%d, want ≥1 each", rep.Crashes, rep.Partitions)
	}
}
