package chaos

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Main implements the `dvpsim chaos` subcommand: run seeded scenarios
// (or replay an encoded schedule) and report invariant coverage. It
// returns the process exit code.
//
//	dvpsim chaos                  # 20 seeds starting at 1
//	dvpsim chaos -seed 7 -seeds 1 -v
//	dvpsim chaos -replay failing.schedule
func Main(args []string) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "first scenario seed")
		seeds   = fs.Int("seeds", 20, "number of consecutive seeds to run")
		replay  = fs.String("replay", "", "replay an encoded schedule from this file ('-' for stdin) instead of building from seeds")
		verbose = fs.Bool("v", false, "stream the event trace live")
		showSch = fs.Bool("schedule", false, "print each schedule before running it")
		corpus  = fs.String("corpus", "", "capture fuzz seed corpus from a run into this internal/ directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *corpus != "" {
		if err := CaptureCorpus(*seed, *corpus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	scheds := make([]*Schedule, 0, *seeds)
	if *replay != "" {
		var r io.Reader = os.Stdin
		if *replay != "-" {
			f, err := os.Open(*replay)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			defer f.Close()
			r = f
		}
		s, err := DecodeSchedule(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		scheds = append(scheds, s)
	} else {
		for s := *seed; s < *seed+int64(*seeds); s++ {
			scheds = append(scheds, Build(s))
		}
	}

	var opt Options
	if *verbose {
		opt.Trace = os.Stdout
	}
	for _, sched := range scheds {
		if *showSch {
			fmt.Print(sched.EncodeString())
		}
		rep, err := Run(sched, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v\n\nschedule (replay with: dvpsim chaos -replay <file>):\n%s\ntrace:\n%s\n",
				err, sched.EncodeString(), rep.TraceString())
			return 1
		}
		fmt.Printf("ok  %s\n", rep)
	}
	return 0
}
