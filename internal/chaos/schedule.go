// Package chaos is a deterministic, seed-driven failure-scenario
// engine: it runs a DvP cluster on the simulated network while a
// fault scheduler interleaves site crashes, WAL-backed restarts,
// partitions and heals, link flaps, loss/duplication surges and
// checkpoints against a concurrent randomized workload — then checks
// the paper's global correctness conditions mechanically (see
// invariants.go).
//
// Everything a run does derives from one int64 seed: the cluster
// shape, the fault schedule (kinds, targets and intra-round offsets)
// and the per-site workload streams. A failing seed is therefore a
// complete reproduction recipe; the event trace the runner keeps
// shows what the schedule did, and Schedule.Encode/DecodeSchedule
// round-trip the schedule itself for replay and archival.
package chaos

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// EventKind names one fault action.
type EventKind uint8

// Fault kinds a schedule can contain.
const (
	// EvCrash kills a site (volatile state lost; log and store
	// survive). Any site not restarted mid-round is restarted —
	// through full §7 recovery — at the round barrier.
	EvCrash EventKind = iota + 1
	// EvRestart recovers a previously crashed site mid-round, under
	// live traffic.
	EvRestart
	// EvPartition splits the network into groups.
	EvPartition
	// EvHeal removes the partition mid-round.
	EvHeal
	// EvLinkDown fails both directions between two sites (flap down).
	EvLinkDown
	// EvLinkUp restores them (flap up).
	EvLinkUp
	// EvLoss sets the random message-loss probability.
	EvLoss
	// EvDup sets the message-duplication probability.
	EvDup
	// EvCheckpoint writes a checkpoint at a site, compacting its log
	// mid-history (recovery then starts from the checkpoint).
	EvCheckpoint
	// EvCrashInFlush arms a one-shot trap on the site's group-commit
	// pipeline: the site is killed the moment its NEXT flush window
	// opens, so the crash lands with committers parked mid-batch. The
	// durability invariant (no acknowledged commit lost) is exactly
	// what this schedule stresses. New kinds append here — the text
	// encoding names kinds, but keeping the enum stable keeps archived
	// numeric traces meaningful.
	EvCrashInFlush
	// EvCrashInCheckpoint arms a one-shot trap on the site's
	// checkpointer and then triggers a checkpoint: the site is killed
	// after the checkpoint record is stable but before the log is
	// compacted behind it, so recovery sees a fresh checkpoint with the
	// records it summarizes still present — the window where a restart
	// must not double-apply (page-LSN idempotence) or lose state.
	EvCrashInCheckpoint
	// EvHintSkew corrupts a site's advisory quota hints by a signed
	// amount (A). Hints gate only the local-commit fast path; a hint
	// lying HIGH steers ineligible transactions onto it and the
	// authoritative re-check under the stripes must turn every one of
	// them back, a hint lying LOW just sends eligible traffic down the
	// full protocol. Either way, every invariant must hold exactly as
	// if the hints were honest.
	EvHintSkew
	// EvPeerDown is the long-outage event: the site is crashed and
	// HELD down across the next A round barriers (clamped so the final
	// barrier always runs with everyone up). Barriers crossed while a
	// site is held are degraded — they heal links and restart other
	// crashed sites but skip the drain and the invariant families,
	// which need the full mesh — and instead check the outage bounds:
	// every survivor's retransmission set toward the dead peer stays
	// bounded, and its retransmission sweeps stay rate-bounded by the
	// adaptive backoff (one sweep per RetransmitMax once backed off,
	// not one per tick). The barrier that releases the site restarts
	// it through full §7 recovery and the run's remaining barriers
	// prove full catch-up.
	EvPeerDown
)

var kindNames = map[EventKind]string{
	EvCrash:             "crash",
	EvRestart:           "restart",
	EvPartition:         "partition",
	EvHeal:              "heal",
	EvLinkDown:          "link-down",
	EvLinkUp:            "link-up",
	EvLoss:              "loss",
	EvDup:               "dup",
	EvCheckpoint:        "checkpoint",
	EvCrashInFlush:      "crash-in-flush",
	EvCrashInCheckpoint: "crash-in-checkpoint",
	EvHintSkew:          "hint-skew",
	EvPeerDown:          "peer-down",
}

func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event?%d", uint8(k))
}

func kindFromName(s string) (EventKind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one scheduled fault action.
type Event struct {
	// Round is the 1-based round the event belongs to; AtMS its
	// offset from the round's start in milliseconds.
	Round int
	AtMS  int
	Kind  EventKind
	// Site is the target of crash/restart/checkpoint/hint-skew/
	// peer-down; A,B the link of link-down/link-up (A alone the signed
	// hint-skew amount, or the number of barriers a peer-down site
	// stays held); P the probability of loss/dup; Groups the partition
	// groups (1-based site indices).
	Site   int
	A, B   int
	P      float64
	Groups [][]int
}

// String renders the event the way the trace and Encode print it.
func (e Event) String() string {
	switch e.Kind {
	case EvCrash, EvRestart, EvCheckpoint, EvCrashInFlush, EvCrashInCheckpoint:
		return fmt.Sprintf("%s site=%d", e.Kind, e.Site)
	case EvHintSkew:
		return fmt.Sprintf("%s site=%d skew=%d", e.Kind, e.Site, e.A)
	case EvPeerDown:
		return fmt.Sprintf("%s site=%d rounds=%d", e.Kind, e.Site, e.A)
	case EvLinkDown, EvLinkUp:
		return fmt.Sprintf("%s link=%d-%d", e.Kind, e.A, e.B)
	case EvLoss, EvDup:
		return fmt.Sprintf("%s p=%.2f", e.Kind, e.P)
	case EvPartition:
		return fmt.Sprintf("%s groups=%s", e.Kind, encodeGroups(e.Groups))
	default:
		return e.Kind.String()
	}
}

// Schedule is a complete, replayable scenario description.
type Schedule struct {
	// Seed is the scenario seed; it also drives the workload streams
	// and the network's own fault sampling.
	Seed int64
	// Sites/Items shape the cluster; Total is the initial value of
	// every item (split evenly across sites, §3).
	Sites, Items int
	Total        int64
	// Rounds is the number of fault rounds; RoundMS each round's
	// wall-clock length in milliseconds.
	Rounds  int
	RoundMS int
	// Events holds every scheduled fault, ordered by (Round, AtMS).
	Events []Event
}

// eventsIn returns the round's events in offset order.
func (s *Schedule) eventsIn(round int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Round == round {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtMS < out[j].AtMS })
	return out
}

// Build derives a schedule from a seed. Every choice — cluster shape,
// how many faults per round, their kinds, targets and offsets — is
// sampled from a PRNG seeded with the scenario seed, so the same seed
// always yields the same schedule. Five guarantees are enforced after
// sampling, because the acceptance conditions require them: every
// schedule contains at least one crash (hence at least one
// crash-recovery cycle, since the round barrier restarts through §7
// recovery), at least one partition (healed mid-round or at the
// barrier), at least one crash-in-flush (a site killed inside a
// group-commit window), at least one hint-skew (a site running with
// deliberately corrupted fast-path quota hints), and at least one
// peer-down long outage (a site held dead across a round barrier
// while the survivors' retransmission backoff is bounds-checked).
func Build(seed int64) *Schedule {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{
		Seed:    seed,
		Sites:   3 + rng.Intn(3), // 3..5
		Items:   2 + rng.Intn(2), // 2..3
		Rounds:  3,
		RoundMS: 120,
	}
	s.Total = int64(s.Sites) * 60

	for r := 1; r <= s.Rounds; r++ {
		n := 1 + rng.Intn(3) // 1..3 primary faults this round
		for i := 0; i < n; i++ {
			at := 10 + rng.Intn(s.RoundMS-30)
			switch rng.Intn(10) {
			case 0, 1: // crash, maybe mid-round restart
				site := 1 + rng.Intn(s.Sites)
				s.add(Event{Round: r, AtMS: at, Kind: EvCrash, Site: site})
				if rng.Float64() < 0.5 {
					back := at + 20 + rng.Intn(s.RoundMS-at)
					s.add(Event{Round: r, AtMS: back, Kind: EvRestart, Site: site})
				}
			case 2: // partition, maybe mid-round heal
				s.add(Event{Round: r, AtMS: at, Kind: EvPartition, Groups: s.sampleGroups(rng)})
				if rng.Float64() < 0.5 {
					back := at + 20 + rng.Intn(s.RoundMS-at)
					s.add(Event{Round: r, AtMS: back, Kind: EvHeal})
				}
			case 3: // link flap (both directions), always restored
				a := 1 + rng.Intn(s.Sites)
				b := 1 + rng.Intn(s.Sites)
				for b == a {
					b = 1 + rng.Intn(s.Sites)
				}
				s.add(Event{Round: r, AtMS: at, Kind: EvLinkDown, A: a, B: b})
				back := at + 15 + rng.Intn(s.RoundMS-at)
				s.add(Event{Round: r, AtMS: back, Kind: EvLinkUp, A: a, B: b})
			case 4: // loss or duplication surge (reverted at barrier)
				p := 0.1 + 0.4*rng.Float64()
				kind := EvLoss
				if rng.Intn(2) == 0 {
					kind = EvDup
				}
				s.add(Event{Round: r, AtMS: at, Kind: kind, P: p})
			case 5: // checkpoint + log compaction under traffic
				s.add(Event{Round: r, AtMS: at, Kind: EvCheckpoint, Site: 1 + rng.Intn(s.Sites)})
			case 6: // crash inside the next group-commit window
				s.add(Event{Round: r, AtMS: at, Kind: EvCrashInFlush, Site: 1 + rng.Intn(s.Sites)})
			case 7: // crash between checkpoint write and compaction
				s.add(Event{Round: r, AtMS: at, Kind: EvCrashInCheckpoint, Site: 1 + rng.Intn(s.Sites)})
			case 8: // fast-path hint corruption (positive = lies high)
				amt := 8 + rng.Intn(56)
				if rng.Intn(3) == 0 {
					amt = -amt
				}
				s.add(Event{Round: r, AtMS: at, Kind: EvHintSkew, Site: 1 + rng.Intn(s.Sites), A: amt})
			case 9: // long outage: site held down across round barriers
				if r < s.Rounds {
					held := 1 + rng.Intn(s.Rounds-r)
					s.add(Event{Round: r, AtMS: at, Kind: EvPeerDown, Site: 1 + rng.Intn(s.Sites), A: held})
				} else {
					// Final round: a hold would be clamped to nothing,
					// so a plain crash carries the fault instead.
					s.add(Event{Round: r, AtMS: at, Kind: EvCrash, Site: 1 + rng.Intn(s.Sites)})
				}
			}
		}
	}

	// Enforce the per-run guarantees.
	if !s.has(EvCrash) {
		s.add(Event{Round: 1, AtMS: 30, Kind: EvCrash, Site: 1 + rng.Intn(s.Sites)})
	}
	if !s.has(EvPartition) {
		r := 1 + rng.Intn(s.Rounds)
		s.add(Event{Round: r, AtMS: 40, Kind: EvPartition, Groups: s.sampleGroups(rng)})
	}
	// Every schedule stresses the group-commit crash window at least
	// once: the mid-batch crash is where the durability invariant (no
	// acknowledged commit lost) earns its keep.
	if !s.has(EvCrashInFlush) {
		r := 1 + rng.Intn(s.Rounds)
		s.add(Event{Round: r, AtMS: 20 + rng.Intn(50), Kind: EvCrashInFlush, Site: 1 + rng.Intn(s.Sites)})
	}
	// And the fast-path hint discipline: at least one site runs part of
	// a round with deliberately skewed quota hints (biased toward lying
	// high — the dangerous direction, where the authoritative re-check
	// is all that stands between a stale hint and a lost invariant).
	if !s.has(EvHintSkew) {
		r := 1 + rng.Intn(s.Rounds)
		amt := 8 + rng.Intn(56)
		if rng.Intn(3) == 0 {
			amt = -amt
		}
		s.add(Event{Round: r, AtMS: 20 + rng.Intn(50), Kind: EvHintSkew, Site: 1 + rng.Intn(s.Sites), A: amt})
	}
	// And the long outage: at least one site spends a full round dead
	// while the survivors' retransmission backoff and the degraded
	// barriers' outage bounds get exercised. Scheduled before the final
	// round so the release barrier and a full-mesh barrier both run.
	if !s.has(EvPeerDown) && s.Rounds > 1 {
		r := 1 + rng.Intn(s.Rounds-1)
		s.add(Event{Round: r, AtMS: 20 + rng.Intn(50), Kind: EvPeerDown, Site: 1 + rng.Intn(s.Sites), A: 1})
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Round != s.Events[j].Round {
			return s.Events[i].Round < s.Events[j].Round
		}
		return s.Events[i].AtMS < s.Events[j].AtMS
	})
	return s
}

func (s *Schedule) add(e Event) { s.Events = append(s.Events, e) }

func (s *Schedule) has(k EventKind) bool {
	for _, e := range s.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// sampleGroups splits the sites into two non-empty groups.
func (s *Schedule) sampleGroups(rng *rand.Rand) [][]int {
	perm := rng.Perm(s.Sites)
	cut := 1 + rng.Intn(s.Sites-1)
	g1, g2 := []int{}, []int{}
	for i, p := range perm {
		if i < cut {
			g1 = append(g1, p+1)
		} else {
			g2 = append(g2, p+1)
		}
	}
	sort.Ints(g1)
	sort.Ints(g2)
	return [][]int{g1, g2}
}

// --- encoding ---------------------------------------------------------------

func encodeGroups(groups [][]int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		nums := make([]string, len(g))
		for j, s := range g {
			nums[j] = strconv.Itoa(s)
		}
		parts[i] = strings.Join(nums, ",")
	}
	return strings.Join(parts, "|")
}

func decodeGroups(s string) ([][]int, error) {
	var out [][]int
	for _, part := range strings.Split(s, "|") {
		var g []int
		for _, n := range strings.Split(part, ",") {
			v, err := strconv.Atoi(n)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad group element %q", n)
			}
			g = append(g, v)
		}
		out = append(out, g)
	}
	return out, nil
}

// Encode writes the schedule in a line-oriented text form that
// DecodeSchedule parses back — the "replayable event trace" a failing
// run prints.
func (s *Schedule) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "chaos-schedule v1")
	fmt.Fprintf(bw, "seed %d\n", s.Seed)
	fmt.Fprintf(bw, "sites %d\n", s.Sites)
	fmt.Fprintf(bw, "items %d\n", s.Items)
	fmt.Fprintf(bw, "total %d\n", s.Total)
	fmt.Fprintf(bw, "rounds %d\n", s.Rounds)
	fmt.Fprintf(bw, "roundms %d\n", s.RoundMS)
	for _, e := range s.Events {
		fmt.Fprintf(bw, "event r=%d at=%d kind=%s", e.Round, e.AtMS, e.Kind)
		switch e.Kind {
		case EvCrash, EvRestart, EvCheckpoint, EvCrashInFlush, EvCrashInCheckpoint:
			fmt.Fprintf(bw, " site=%d", e.Site)
		case EvHintSkew, EvPeerDown:
			fmt.Fprintf(bw, " site=%d a=%d", e.Site, e.A)
		case EvLinkDown, EvLinkUp:
			fmt.Fprintf(bw, " a=%d b=%d", e.A, e.B)
		case EvLoss, EvDup:
			fmt.Fprintf(bw, " p=%g", e.P)
		case EvPartition:
			fmt.Fprintf(bw, " groups=%s", encodeGroups(e.Groups))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// EncodeString is Encode into a string.
func (s *Schedule) EncodeString() string {
	var sb strings.Builder
	_ = s.Encode(&sb)
	return sb.String()
}

// DecodeSchedule parses the Encode format.
func DecodeSchedule(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "chaos-schedule v1" {
		return nil, fmt.Errorf("chaos: not a v1 schedule (missing header)")
	}
	s := &Schedule{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		key := fields[0]
		intVal := func() (int, error) {
			if len(fields) != 2 {
				return 0, fmt.Errorf("chaos: line %d: %q wants one value", line, key)
			}
			return strconv.Atoi(fields[1])
		}
		var err error
		switch key {
		case "seed":
			var v int64
			if len(fields) == 2 {
				v, err = strconv.ParseInt(fields[1], 10, 64)
			} else {
				err = fmt.Errorf("chaos: line %d: seed wants one value", line)
			}
			s.Seed = v
		case "sites":
			s.Sites, err = intVal()
		case "items":
			s.Items, err = intVal()
		case "total":
			var v int
			v, err = intVal()
			s.Total = int64(v)
		case "rounds":
			s.Rounds, err = intVal()
		case "roundms":
			s.RoundMS, err = intVal()
		case "event":
			var e Event
			e, err = decodeEvent(fields[1:], line)
			s.Events = append(s.Events, e)
		default:
			err = fmt.Errorf("chaos: line %d: unknown key %q", line, key)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Sites <= 0 || s.Items <= 0 || s.Rounds <= 0 || s.RoundMS <= 0 {
		return nil, fmt.Errorf("chaos: schedule missing sites/items/rounds/roundms")
	}
	return s, nil
}

func decodeEvent(kvs []string, line int) (Event, error) {
	var e Event
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return e, fmt.Errorf("chaos: line %d: bad field %q", line, kv)
		}
		var err error
		switch k {
		case "r":
			e.Round, err = strconv.Atoi(v)
		case "at":
			e.AtMS, err = strconv.Atoi(v)
		case "kind":
			kind, ok := kindFromName(v)
			if !ok {
				err = fmt.Errorf("chaos: line %d: unknown kind %q", line, v)
			}
			e.Kind = kind
		case "site":
			e.Site, err = strconv.Atoi(v)
		case "a":
			e.A, err = strconv.Atoi(v)
		case "b":
			e.B, err = strconv.Atoi(v)
		case "p":
			e.P, err = strconv.ParseFloat(v, 64)
		case "groups":
			e.Groups, err = decodeGroups(v)
		default:
			err = fmt.Errorf("chaos: line %d: unknown field %q", line, k)
		}
		if err != nil {
			return e, err
		}
	}
	if e.Kind == 0 || e.Round <= 0 {
		return e, fmt.Errorf("chaos: line %d: event needs kind and r", line)
	}
	return e, nil
}
