package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dvp"
	"dvp/internal/ident"
	"dvp/internal/wire"
)

// Base network conditions outside scheduled fault surges. Loss and
// duplication are always on a little — a chaos run should never see a
// clean network — and Vm retransmission is paced fast so rounds are
// short.
const (
	baseLoss        = 0.02
	baseDup         = 0.02
	maxDelay        = time.Millisecond
	retransmitEvery = 4 * time.Millisecond
	// retransmitMax caps the adaptive per-peer retransmission backoff;
	// the peer-down outage bound below is stated in terms of it (one
	// sweep per cap once backed off, against one per 4ms tick
	// unthrottled).
	retransmitMax = 32 * time.Millisecond
	txnTimeout    = 25 * time.Millisecond
	quiesceBound  = 5 * time.Second

	// Outage bounds checked at degraded barriers while a peer is held
	// down (EvPeerDown): each survivor's retransmission set toward the
	// dead peer must stay under maxOutagePending entries (nothing new
	// should be created toward a silent peer — its requests stopped and
	// its adverts go stale), and its sweep count toward the peer must
	// stay rate-bounded (see checkPeerOutageBounds).
	maxOutagePending = 128

	// The demand-driven rebalancer runs at every site through the whole
	// run — it is part of the system under test, not a lab fixture. The
	// clock is fast (intervals well under a round) and the demand
	// half-life short, so the barrier's anti-thrash check observes the
	// steady state the round's skew left behind, not a still-decaying
	// transient.
	rebalInterval = 5 * time.Millisecond
	rebalHalfLife = 30 * time.Millisecond
)

// Options tunes a run. The zero value is what the tests use.
type Options struct {
	// Trace, when set, receives trace lines live as the run executes
	// (the dvpsim chaos -v stream). The Report keeps the full trace
	// regardless.
	Trace io.Writer
	// Tap, when set, observes every frame the simulated network
	// transmits (corpus capture).
	Tap func(from, to ident.SiteID, kind wire.Kind, frame []byte)
	// OnQuiescent, when set, runs after the final barrier's invariant
	// checks while the cluster is still up and quiescent (corpus
	// capture scans the stable logs here).
	OnQuiescent func(c *dvp.Cluster)
	// Sabotage, when set, runs right before the final round's barrier
	// and may mutate cluster state directly to force an invariant
	// violation — it exists to test the violation artifacts themselves
	// (the flight-recorder dump, the replay trace).
	Sabotage func(c *dvp.Cluster)
}

// Report summarizes what a run did and checked. A report with a nil
// error from Run means every invariant held at every barrier.
type Report struct {
	Seed                 int64
	Sites, Items, Rounds int

	// Fault actions actually applied (a scheduled crash of an
	// already-down site, say, does not count). FlushCrashes counts
	// crash-in-flush traps that actually fired (armed traps whose site
	// never flushed again don't); CheckpointCrashes counts
	// crash-in-checkpoint traps that fired (site killed between the
	// checkpoint record and the compaction behind it). Fired traps of
	// either kind also count as Crashes. HintSkews counts hint-skew
	// events applied to up sites (fast-path quota hints deliberately
	// corrupted by a signed amount).
	Crashes, Restarts, Partitions, Heals, LinkFlaps, Checkpoints, FlushCrashes, CheckpointCrashes, HintSkews int

	// PeerOutages counts applied EvPeerDown events (each also counts
	// as a Crash); DegradedBarriers counts round barriers crossed with
	// a site still held down — those run the outage bounds instead of
	// the invariant families, so across a run InvariantChecks +
	// DegradedBarriers == Rounds.
	PeerOutages, DegradedBarriers int

	// Workload outcomes.
	Committed, Aborted int

	// RebalanceTransfers is the cumulative Rds transfer count the
	// demand rebalancers issued across the run (read at the final
	// barrier's anti-thrash check).
	RebalanceTransfers int

	// InvariantChecks counts completed barrier passes (each pass runs
	// all five invariant families).
	InvariantChecks int

	// Trace is the full event trace, replayable alongside the
	// schedule.
	Trace []string

	// FlightDump holds the flight recorder's most recent structured
	// events, captured at the moment a barrier's invariant check
	// failed (empty on clean runs). Where Trace records what the
	// harness did to the cluster, the flight dump records what the
	// cluster was doing to itself — lock conflicts, rebalancer
	// decisions, group-commit flushes, Vm deferrals — in the window
	// leading up to the violation.
	FlightDump []string
}

// String is a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"seed=%d sites=%d items=%d rounds=%d crashes=%d (in-flush=%d in-ckpt=%d) restarts=%d partitions=%d heals=%d flaps=%d ckpts=%d hintskews=%d outages=%d committed=%d aborted=%d rebal=%d checks=%d degraded=%d",
		r.Seed, r.Sites, r.Items, r.Rounds,
		r.Crashes, r.FlushCrashes, r.CheckpointCrashes, r.Restarts, r.Partitions, r.Heals, r.LinkFlaps, r.Checkpoints, r.HintSkews, r.PeerOutages,
		r.Committed, r.Aborted, r.RebalanceTransfers, r.InvariantChecks, r.DegradedBarriers)
}

// TraceString renders the event trace, one line per event.
func (r *Report) TraceString() string {
	return strings.Join(r.Trace, "\n")
}

// FlightString renders the captured flight-recorder dump, one event
// per line ("" when no violation occurred).
func (r *Report) FlightString() string {
	return strings.Join(r.FlightDump, "\n")
}

// runner carries one run's live state.
type runner struct {
	sched *Schedule
	opt   Options
	c     *dvp.Cluster
	items []string

	// initial holds the per-item starting totals (Γ per item).
	initial map[string]int64

	mu          sync.Mutex
	report      *Report
	committed   []dvp.CommitInfo
	rds         []dvp.RdsInfo
	downedLinks map[[2]int]bool
	start       time.Time

	// Long-outage state (EvPeerDown): heldDown maps a dead site to the
	// barrier round that releases it; outageStart remembers when it
	// went down and outageBase each survivor's retransmission-sweep
	// count toward it at that instant, so the degraded barriers can
	// bound the sweep *rate* over the outage window.
	heldDown    map[int]int
	outageStart map[int]time.Time
	outageBase  map[int]map[int]uint64

	// Crash-in-flush machinery: hooksLive gates armed flush traps (the
	// barrier clears it before disarming, so a trap firing during the
	// barrier is a no-op), crashWG tracks in-flight trap crashes so the
	// barrier can join them before restarting sites.
	hooksLive bool
	crashWG   sync.WaitGroup
}

// Run executes the schedule and checks the global invariants at every
// round barrier. The returned report is always non-nil; a non-nil
// error names the first invariant violation (the report's trace then
// reproduces the scenario together with the schedule).
func Run(sched *Schedule, opt Options) (*Report, error) {
	r := &runner{
		sched: sched,
		opt:   opt,
		report: &Report{
			Seed:  sched.Seed,
			Sites: sched.Sites,
			Items: sched.Items,
		},
		initial:     make(map[string]int64),
		downedLinks: make(map[[2]int]bool),
		heldDown:    make(map[int]int),
		outageStart: make(map[int]time.Time),
		outageBase:  make(map[int]map[int]uint64),
		start:       time.Now(),
	}
	c, err := dvp.NewCluster(dvp.Config{
		Sites:           sched.Sites,
		Seed:            sched.Seed,
		MaxDelay:        maxDelay,
		LossProb:        baseLoss,
		DupProb:         baseDup,
		RetransmitEvery: retransmitEvery,
		RetransmitMax:   retransmitMax,
		DefaultTimeout:  txnTimeout,
		// Group commit is always on under chaos: every schedule crashes
		// a site inside a flush window (EvCrashInFlush) and the
		// durability invariant audits the acked-commit/durable-LSN
		// boundary the pipeline introduces.
		GroupCommit: true,
		// The flight recorder runs through every chaos run; its dump is
		// the first artifact a violation produces (Report.FlightDump).
		FlightBuf: 4096,
		// Automatic checkpointing and parallel replay are part of the
		// system under test: the checkpointer compacts logs behind the
		// workload's back, and every crash-recovery cycle the schedule
		// forces replays its suffix with striped workers. The barrier
		// pauses the checkpointer only across its audits.
		CheckpointEveryRecords: 256,
		RecoveryWorkers:        4,
		// The demand rebalancer gossips adverts and ships surplus over
		// the same faulty network the workload runs on; the barrier's
		// anti-thrash invariant bounds its transfer volume once faults
		// heal and demand decays.
		Rebalance: dvp.RebalanceOptions{
			Enabled:     true,
			Interval:    rebalInterval,
			MinTransfer: 4,
			Cooldown:    2 * rebalInterval,
			HalfLife:    rebalHalfLife,
			AdvertStale: 5 * rebalInterval,
			Floor:       0.25,
		},
		OnCommit: func(ci dvp.CommitInfo) {
			r.mu.Lock()
			r.committed = append(r.committed, ci)
			r.mu.Unlock()
		},
		// Every redistribution half (Vm-create deduct, Vm-accept
		// credit) joins the serializability replay at its own stamp —
		// without them, a full read that correctly observes value in
		// flight between the halves looks like a violation.
		OnRds: func(ri dvp.RdsInfo) {
			r.mu.Lock()
			r.rds = append(r.rds, ri)
			r.mu.Unlock()
		},
	})
	if err != nil {
		return r.report, err
	}
	r.c = c
	defer c.Close()
	if opt.Tap != nil {
		c.Net().SetTap(opt.Tap)
	}

	for k := 0; k < sched.Items; k++ {
		item := fmt.Sprintf("item/%d", k)
		r.items = append(r.items, item)
		if err := c.CreateItem(item, dvp.Value(sched.Total)); err != nil {
			return r.report, err
		}
		r.initial[item] = sched.Total
	}
	// Initial checkpoint at every site: the checkpoint carries the
	// store snapshot, so rebuild-from-log-alone (the idempotence
	// invariant) covers the whole history. Also the first log
	// compaction.
	for i := 1; i <= sched.Sites; i++ {
		if err := c.Checkpoint(i); err != nil {
			return r.report, err
		}
	}

	for round := 1; round <= sched.Rounds; round++ {
		r.report.Rounds = round
		r.tracef("round %d: begin (%d events)", round, len(r.sched.eventsIn(round)))
		r.runRound(round)
		if opt.Sabotage != nil && round == sched.Rounds {
			opt.Sabotage(c)
			r.tracef("round %d: sabotage injected before final barrier", round)
		}
		if err := r.barrier(round); err != nil {
			r.captureFlight()
			return r.report, fmt.Errorf("chaos seed %d round %d: %w", sched.Seed, round, err)
		}
	}
	if opt.OnQuiescent != nil {
		opt.OnQuiescent(c)
	}
	r.tracef("run complete: %s", r.report)
	return r.report, nil
}

// captureFlight copies the flight recorder's recent events into the
// report — called exactly once, when a barrier's invariant check
// fails, so the dump shows the window leading up to the violation.
func (r *runner) captureFlight() {
	f := r.c.Flight()
	if f == nil {
		return
	}
	for _, ev := range f.Last(2048) {
		r.report.FlightDump = append(r.report.FlightDump, ev.String())
	}
}

// runRound schedules the round's fault events on the network clock and
// drives the concurrent workload until the round deadline, then joins
// both.
func (r *runner) runRound(round int) {
	deadline := time.Now().Add(time.Duration(r.sched.RoundMS) * time.Millisecond)

	r.mu.Lock()
	r.hooksLive = true
	r.mu.Unlock()

	var events sync.WaitGroup
	for _, e := range r.sched.eventsIn(round) {
		e := e
		events.Add(1)
		r.c.Net().ScheduleAfter(time.Duration(e.AtMS)*time.Millisecond, func() {
			defer events.Done()
			r.apply(round, e)
		})
	}

	var workers sync.WaitGroup
	for i := 1; i <= r.sched.Sites; i++ {
		workers.Add(1)
		go func(site int) {
			defer workers.Done()
			r.workload(round, site, deadline)
		}(i)
	}
	workers.Wait()
	events.Wait()
}

// workload issues randomized transactions at one site until the round
// deadline. The op stream is a pure function of (seed, round, site);
// how far into the stream the round gets depends on timing, which is
// fine — the schedule, not the workload prefix, is the reproduction
// contract.
func (r *runner) workload(round, site int, deadline time.Time) {
	rng := rand.New(rand.NewSource(
		r.sched.Seed*7919 + int64(round)*1000003 + int64(site)*104729))
	h := r.c.At(site)
	for time.Now().Before(deadline) {
		item := r.items[rng.Intn(len(r.items))]
		var res *dvp.Result
		p := rng.Float64()
		switch {
		case p < 0.06:
			res = h.Run(dvp.NewTxn().Read(item).Label("audit"))
		case p < 0.34:
			res = h.Run(dvp.NewTxn().Add(item, dvp.Value(1+rng.Intn(3))).Label("cancel"))
		case p < 0.44 && len(r.items) > 1:
			// Transfer between two distinct items.
			k := rng.Intn(len(r.items) - 1)
			other := r.items[(k+1)%len(r.items)]
			if other == item {
				other = r.items[k]
			}
			n := dvp.Value(1 + rng.Intn(3))
			res = h.Run(dvp.NewTxn().Sub(item, n).Add(other, n).Label("transfer"))
		default:
			// Reserves skew large enough to force redistribution.
			res = h.Run(dvp.NewTxn().Sub(item, dvp.Value(1+rng.Intn(8))).Label("reserve"))
		}
		r.mu.Lock()
		if res.Committed() {
			r.report.Committed++
		} else {
			r.report.Aborted++
		}
		r.mu.Unlock()
		// Pace: bounds the round's op count and keeps serializability
		// replay cheap.
		time.Sleep(time.Duration(400+rng.Intn(800)) * time.Microsecond)
	}
}

// apply executes one fault event against the live cluster.
func (r *runner) apply(round int, e Event) {
	applied := true
	switch e.Kind {
	case EvCrash:
		if r.c.SiteUp(e.Site) {
			r.c.Crash(e.Site)
			r.count(func(rep *Report) { rep.Crashes++ })
		} else {
			applied = false
		}
	case EvRestart:
		// A held-down site (EvPeerDown) must stay dead until its
		// release barrier; only ordinarily crashed sites restart here.
		if !r.c.SiteUp(e.Site) && !r.held(e.Site) {
			if err := r.c.Restart(e.Site); err != nil {
				r.tracef("r%d %s FAILED: %v", round, e, err)
				return
			}
			r.count(func(rep *Report) { rep.Restarts++ })
		} else {
			applied = false
		}
	case EvPartition:
		groups := make([][]int, len(e.Groups))
		copy(groups, e.Groups)
		r.c.PartitionGroups(groups...)
		r.count(func(rep *Report) { rep.Partitions++ })
	case EvHeal:
		r.c.Heal()
		r.count(func(rep *Report) { rep.Heals++ })
	case EvLinkDown:
		r.c.SetLink(e.A, e.B, false)
		r.c.SetLink(e.B, e.A, false)
		r.mu.Lock()
		r.downedLinks[[2]int{e.A, e.B}] = true
		r.report.LinkFlaps++
		r.mu.Unlock()
	case EvLinkUp:
		r.c.SetLink(e.A, e.B, true)
		r.c.SetLink(e.B, e.A, true)
		r.mu.Lock()
		delete(r.downedLinks, [2]int{e.A, e.B})
		r.mu.Unlock()
	case EvLoss:
		r.c.SetLoss(e.P)
	case EvDup:
		r.c.SetDup(e.P)
	case EvCheckpoint:
		if r.c.SiteUp(e.Site) {
			if err := r.c.Checkpoint(e.Site); err != nil {
				r.tracef("r%d %s FAILED: %v", round, e, err)
				return
			}
			r.count(func(rep *Report) { rep.Checkpoints++ })
		} else {
			applied = false
		}
	case EvCrashInFlush:
		gl := r.c.GroupLog(e.Site)
		if gl == nil || !r.c.SiteUp(e.Site) {
			applied = false
			break
		}
		site := e.Site
		var once sync.Once
		// The hook runs on the flusher goroutine at the start of a
		// flush window (before the force-write); the kill must come
		// from a fresh goroutine — Crash blocks on the lifecycle fence
		// until parked committers drain, which needs the flusher free.
		gl.SetFlushHook(func(batch int) {
			once.Do(func() {
				r.mu.Lock()
				live := r.hooksLive
				if live {
					r.crashWG.Add(1)
				}
				r.mu.Unlock()
				if !live {
					return
				}
				go func() {
					defer r.crashWG.Done()
					if !r.c.SiteUp(site) {
						return
					}
					r.c.Crash(site)
					r.count(func(rep *Report) {
						rep.Crashes++
						rep.FlushCrashes++
					})
					r.tracef("r%d crash-in-flush fired: site %d killed inside a %d-record flush window",
						round, site, batch)
				}()
			})
		})
	case EvHintSkew:
		// Corrupt the advisory fast-path hints at a live site. The skew
		// self-heals per item on its next durable apply (the store
		// refreshes a hint whenever it mutates the item), so the lie is
		// exactly as transient as a real lost-update race would be —
		// long enough to steer traffic wrong, never permanent.
		if r.c.SiteUp(e.Site) {
			r.c.SkewHints(e.Site, int64(e.A))
			r.count(func(rep *Report) { rep.HintSkews++ })
		} else {
			applied = false
		}
	case EvCrashInCheckpoint:
		if !r.c.SiteUp(e.Site) {
			applied = false
			break
		}
		site := e.Site
		eng := r.c.SiteEngine(site)
		var once sync.Once
		// The hook runs inside Checkpoint — checkpoint record stable,
		// compaction not yet done — on whichever goroutine triggered it
		// (here, or the site's own checkpointer loop). The kill must
		// come from a fresh goroutine: Crash's lifecycle fence can wait
		// on handlers parked on the admission stripes Checkpoint holds,
		// so the hook only launches the crash and returns an error,
		// which makes Checkpoint skip the compaction — exactly the
		// state a real crash in that window leaves behind.
		eng.SetCheckpointHook(func(stage string) error {
			fired := false
			once.Do(func() {
				r.mu.Lock()
				live := r.hooksLive
				if live {
					r.crashWG.Add(1)
				}
				r.mu.Unlock()
				if !live {
					return
				}
				fired = true
				go func() {
					defer r.crashWG.Done()
					if !r.c.SiteUp(site) {
						return
					}
					r.c.Crash(site)
					r.count(func(rep *Report) {
						rep.Crashes++
						rep.CheckpointCrashes++
					})
					r.tracef("r%d crash-in-checkpoint fired: site %d killed at %s, checkpoint written but not compacted",
						round, site, stage)
				}()
			})
			if fired {
				return fmt.Errorf("chaos: crash-in-checkpoint trap fired")
			}
			return nil
		})
		// Trigger a checkpoint now rather than waiting for the byte
		// threshold, so the trap fires deterministically mid-round. The
		// trap's error surfacing here is the expected outcome.
		if err := r.c.Checkpoint(site); err != nil {
			r.tracef("r%d %s: checkpoint cut short by trap: %v", round, e, err)
		}
	case EvPeerDown:
		if r.held(e.Site) {
			applied = false
			break
		}
		until := round + e.A
		if until > r.sched.Rounds {
			// The final barrier always runs with everyone up.
			until = r.sched.Rounds
		}
		// A site some earlier fault already killed just stays dead —
		// the hold extends the corpse's lifetime, the crash was
		// already counted.
		wasUp := r.c.SiteUp(e.Site)
		if wasUp {
			r.c.Crash(e.Site)
		}
		// Baseline each survivor's sweep count toward the dead peer:
		// the degraded barriers bound the delta over the outage window.
		base := make(map[int]uint64, r.sched.Sites-1)
		for i := 1; i <= r.sched.Sites; i++ {
			if i == e.Site {
				continue
			}
			fired, _ := r.c.SiteEngine(i).VM().RetxStats(ident.SiteID(e.Site))
			base[i] = fired
		}
		r.mu.Lock()
		r.heldDown[e.Site] = until
		r.outageStart[e.Site] = time.Now()
		r.outageBase[e.Site] = base
		if wasUp {
			r.report.Crashes++
		}
		r.report.PeerOutages++
		r.mu.Unlock()
		r.tracef("r%d peer-down: site %d held dead through barrier %d", round, e.Site, until)
	}
	if applied {
		r.tracef("r%d +%dms %s", round, e.AtMS, e)
	} else {
		r.tracef("r%d +%dms %s (no-op)", round, e.AtMS, e)
	}
}

// barrier restores the cluster to a fully connected, fully up,
// quiescent state and checks every global invariant. Mid-run checks
// happen here: once per round, not only at the end of the run.
func (r *runner) barrier(round int) error {
	// Disarm flush and checkpoint traps and join any crash they already
	// launched — after this, no trap can kill a site the barrier just
	// restarted.
	r.mu.Lock()
	r.hooksLive = false
	r.mu.Unlock()
	for i := 1; i <= r.sched.Sites; i++ {
		if gl := r.c.GroupLog(i); gl != nil {
			gl.SetFlushHook(nil)
		}
		r.c.SiteEngine(i).SetCheckpointHook(nil)
	}
	r.crashWG.Wait()

	// Heal whatever the round left broken.
	r.c.Heal()
	r.count(func(rep *Report) { rep.Heals++ })
	r.mu.Lock()
	links := make([][2]int, 0, len(r.downedLinks))
	for l := range r.downedLinks {
		links = append(links, l)
	}
	r.downedLinks = make(map[[2]int]bool)
	r.mu.Unlock()
	for _, l := range links {
		r.c.SetLink(l[0], l[1], true)
		r.c.SetLink(l[1], l[0], true)
	}
	r.c.SetLoss(baseLoss)
	r.c.SetDup(baseDup)

	// Long outages first: bound-check every held site's survivors
	// while the outage is still in force, then release the sites whose
	// hold expires at this barrier (they restart with everyone else
	// below; the ones still held skip the restart loop).
	r.mu.Lock()
	heldNow := make([]int, 0, len(r.heldDown))
	for s := range r.heldDown {
		heldNow = append(heldNow, s)
	}
	r.mu.Unlock()
	for _, s := range heldNow {
		if err := r.checkPeerOutageBounds(round, s); err != nil {
			return err
		}
	}
	r.mu.Lock()
	stillHeld := 0
	var released []int
	for s, until := range r.heldDown {
		if until <= round {
			delete(r.heldDown, s)
			delete(r.outageStart, s)
			delete(r.outageBase, s)
			released = append(released, s)
		} else {
			stillHeld++
		}
	}
	r.mu.Unlock()
	for _, s := range released {
		r.tracef("r%d barrier: outage over, releasing site %d", round, s)
	}

	// Restart every crashed site through full §7 recovery — except the
	// ones a live outage still holds down.
	for i := 1; i <= r.sched.Sites; i++ {
		if r.held(i) {
			continue
		}
		if !r.c.SiteUp(i) {
			if err := r.c.Restart(i); err != nil {
				return fmt.Errorf("barrier restart site %d: %w", i, err)
			}
			r.count(func(rep *Report) { rep.Restarts++ })
			r.tracef("r%d barrier: restarted site %d", round, i)
		}
	}

	// A barrier crossed mid-outage is degraded: the drain and the
	// invariant families need the full mesh (global conservation sums
	// every site's quota; the drain retransmits into a black hole), so
	// they wait for the release barrier. The outage bounds above are
	// this barrier's whole check.
	if stillHeld > 0 {
		r.count(func(rep *Report) { rep.DegradedBarriers++ })
		r.tracef("r%d barrier: degraded (%d site(s) held down), outage bounds hold", round, stillHeld)
		return nil
	}

	// Anti-thrash invariant: with faults healed and the workload
	// stopped, the demand rebalancers must go quiet on their own —
	// still-live, before anything is paused. Only then freeze them so
	// the remaining checks read stable quota snapshots (the defer keeps
	// the pause scoped to this barrier).
	if err := r.checkRebalanceQuiet(round); err != nil {
		return err
	}
	r.c.SetRebalancePaused(true)
	defer r.c.SetRebalancePaused(false)
	// Freeze the automatic checkpointers too (joining any in-flight
	// run): the audits compare logs against durable state and group-
	// commit waiter counts, and a background checkpoint appending a
	// record or compacting a log mid-audit would move both under them.
	r.c.SetCheckpointPaused(true)
	defer r.c.SetCheckpointPaused(false)

	// Drain: all in-flight traffic delivered, no Vm awaiting
	// retransmission anywhere.
	r.c.Quiesce(quiesceBound)
	if n := r.pendingVm(); n != 0 {
		return fmt.Errorf("failed to drain: %d Vm still pending after %v", n, quiesceBound)
	}

	if err := r.checkInvariants(round); err != nil {
		return err
	}
	r.count(func(rep *Report) { rep.InvariantChecks++ })
	r.tracef("r%d barrier: all invariants hold", round)
	return nil
}

// held reports whether site is currently held down by a live
// EvPeerDown outage.
func (r *runner) held(site int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.heldDown[site]
	return ok
}

// checkPeerOutageBounds enforces the long-outage invariants for one
// held-down site: every survivor's retransmission set toward it stays
// bounded (no unbounded growth from talking to a corpse), and the
// survivor's sweep count over the outage window stays rate-bounded —
// the adaptive backoff must have stretched sweeps toward the cap
// (retransmitMax), far below the one-per-tick rate the fixed
// retransmit interval would produce. The sweep allowance scales with
// the measured wall-clock window so a slow host can't false-positive:
// 5 sweeps of doubling headroom plus 2 per retransmitMax elapsed,
// against elapsed/retransmitEvery (8× more) unthrottled.
func (r *runner) checkPeerOutageBounds(round, down int) error {
	r.mu.Lock()
	start := r.outageStart[down]
	base := r.outageBase[down]
	r.mu.Unlock()
	elapsed := time.Since(start)
	allowed := uint64(5 + 2*int(elapsed/retransmitMax))
	for i := 1; i <= r.sched.Sites; i++ {
		if i == down {
			continue
		}
		vm := r.c.SiteEngine(i).VM()
		if n := vm.PendingCount(ident.SiteID(down)); n > maxOutagePending {
			return fmt.Errorf("peer-down bounds: site %d holds %d pending Vm toward dead site %d (bound %d)",
				i, n, down, maxOutagePending)
		}
		fired, _ := vm.RetxStats(ident.SiteID(down))
		delta := fired - base[i]
		if fired < base[i] {
			// The survivor itself crashed and restarted during the
			// outage: its rebuilt Vm manager counts from zero, so the
			// whole new count is the window's delta.
			delta = fired
		}
		if delta > allowed {
			return fmt.Errorf("peer-down bounds: site %d fired %d retransmission sweeps toward dead site %d in %v (bound %d — backoff not engaging)",
				i, delta, down, elapsed.Round(time.Millisecond), allowed)
		}
	}
	r.tracef("r%d outage bounds hold for dead site %d (%v down)", round, down, elapsed.Round(time.Millisecond))
	return nil
}

// pendingVm counts outbound Vm not yet cumulatively acked, across all
// sites.
func (r *runner) pendingVm() int {
	n := 0
	for i := 1; i <= r.sched.Sites; i++ {
		n += len(r.c.SiteEngine(i).VM().PendingAll())
	}
	return n
}

// count applies a report mutation under the lock.
func (r *runner) count(f func(*Report)) {
	r.mu.Lock()
	f(r.report)
	r.mu.Unlock()
}

// tracef appends a timestamped line to the trace.
func (r *runner) tracef(format string, args ...any) {
	line := fmt.Sprintf("[%6.0fms] ", float64(time.Since(r.start).Microseconds())/1000) +
		fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.report.Trace = append(r.report.Trace, line)
	w := r.opt.Trace
	r.mu.Unlock()
	if w != nil {
		fmt.Fprintln(w, line)
	}
}
