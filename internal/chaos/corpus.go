package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"dvp"
	"dvp/internal/ident"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// CaptureCorpus runs one chaos scenario with a network tap and turns
// what actually went over the wire and into the logs into checked-in
// seed corpus entries for the repository's fuzz targets:
//
//   - every distinct envelope kind tapped off the simulated network →
//     internal/wire/testdata/fuzz/FuzzUnmarshal
//   - every distinct WAL record payload scanned from the sites' logs →
//     internal/wal/testdata/fuzz/FuzzDecodeRecords
//   - complete and torn file-log images built from those records →
//     internal/wal/testdata/fuzz/FuzzFileLogRecovery
//
// internalDir is the repository's internal/ directory (regenerate with
// `dvpsim chaos -corpus internal` from the repo root). Entries are
// named chaos-* and overwrite previous captures.
func CaptureCorpus(seed int64, internalDir string) error {
	sched := Build(seed)

	const perKind = 3
	var mu sync.Mutex
	frames := make(map[wire.Kind][][]byte)
	payloads := make(map[wal.RecordKind][][]byte)

	rep, err := Run(sched, Options{
		Tap: func(from, to ident.SiteID, kind wire.Kind, frame []byte) {
			mu.Lock()
			defer mu.Unlock()
			if len(frames[kind]) < perKind {
				frames[kind] = append(frames[kind], append([]byte(nil), frame...))
			}
		},
		OnQuiescent: func(c *dvp.Cluster) {
			for i := 1; i <= sched.Sites; i++ {
				_ = c.SiteEngine(i).Log().Scan(1, func(rec wal.Record) error {
					if len(payloads[rec.Kind]) < perKind {
						payloads[rec.Kind] = append(payloads[rec.Kind],
							append([]byte(nil), rec.Data...))
					}
					return nil
				})
			}
		},
	})
	if err != nil {
		return fmt.Errorf("chaos corpus run: %w", err)
	}
	fmt.Printf("corpus capture: %s\n", rep)

	wireDir := filepath.Join(internalDir, "wire", "testdata", "fuzz", "FuzzUnmarshal")
	for kind, fs := range frames {
		for i, frame := range fs {
			name := fmt.Sprintf("chaos-%s-%d", sanitize(kind.String()), i)
			if err := writeCorpusFile(filepath.Join(wireDir, name), frame); err != nil {
				return err
			}
		}
	}

	recDir := filepath.Join(internalDir, "wal", "testdata", "fuzz", "FuzzDecodeRecords")
	var allRecords []wal.Record
	for kind, ps := range payloads {
		for i, p := range ps {
			name := fmt.Sprintf("chaos-%s-%d", sanitize(kind.String()), i)
			if err := writeCorpusFile(filepath.Join(recDir, name), p); err != nil {
				return err
			}
			allRecords = append(allRecords, wal.Record{Kind: kind, Data: p})
		}
	}

	images, err := fileLogImages(allRecords)
	if err != nil {
		return err
	}
	logDir := filepath.Join(internalDir, "wal", "testdata", "fuzz", "FuzzFileLogRecovery")
	for i, img := range images {
		name := fmt.Sprintf("chaos-filelog-%d", i)
		if err := writeCorpusFile(filepath.Join(logDir, name), img); err != nil {
			return err
		}
	}
	return nil
}

// fileLogImages builds seed inputs for torn-tail recovery: a clean
// file-log image containing real records, the same image with a torn
// tail, and one with a flipped byte mid-file (CRC damage).
func fileLogImages(records []wal.Record) ([][]byte, error) {
	dir, err := os.MkdirTemp("", "chaos-corpus-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "img.wal")
	l, err := wal.OpenFileLog(path, wal.FileLogOptions{})
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		if _, err := l.Append(rec.Kind, rec.Data); err != nil {
			l.Close()
			return nil, err
		}
	}
	l.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	images := [][]byte{clean}
	if len(clean) > 7 {
		torn := append([]byte(nil), clean[:len(clean)-7]...)
		images = append(images, torn)
		flipped := append([]byte(nil), clean...)
		flipped[len(flipped)/2] ^= 0x40
		images = append(images, flipped)
	}
	return images, nil
}

// writeCorpusFile writes one entry in the `go test fuzz v1` seed
// corpus encoding.
func writeCorpusFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	return os.WriteFile(path, []byte(content), 0o644)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}
