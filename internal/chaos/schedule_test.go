package chaos

import (
	"io"
	"strings"
	"testing"
)

func stringsReader(s string) io.Reader { return strings.NewReader(s) }

func TestBuildIsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a, b := Build(seed), Build(seed)
		if a.EncodeString() != b.EncodeString() {
			t.Fatalf("seed %d: two builds differ:\n%s\n---\n%s",
				seed, a.EncodeString(), b.EncodeString())
		}
	}
	if Build(1).EncodeString() == Build(2).EncodeString() {
		t.Error("seeds 1 and 2 built identical schedules")
	}
}

func TestBuildGuarantees(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		s := Build(seed)
		if s.Sites < 3 || s.Sites > 5 {
			t.Fatalf("seed %d: sites=%d out of range", seed, s.Sites)
		}
		if s.Items < 2 || s.Items > 3 {
			t.Fatalf("seed %d: items=%d out of range", seed, s.Items)
		}
		if !s.has(EvCrash) {
			t.Errorf("seed %d: schedule has no crash", seed)
		}
		if !s.has(EvPartition) {
			t.Errorf("seed %d: schedule has no partition", seed)
		}
		if !s.has(EvCrashInFlush) {
			t.Errorf("seed %d: schedule has no crash-in-flush", seed)
		}
		if !s.has(EvHintSkew) {
			t.Errorf("seed %d: schedule has no hint-skew", seed)
		}
		for k, e := range s.Events {
			if e.Round < 1 || e.Round > s.Rounds {
				t.Fatalf("seed %d: event %d round %d out of range", seed, k, e.Round)
			}
			if e.AtMS < 0 || e.AtMS > 2*s.RoundMS {
				t.Fatalf("seed %d: event %d offset %dms out of range", seed, k, e.AtMS)
			}
			if k > 0 {
				prev := s.Events[k-1]
				if e.Round < prev.Round || (e.Round == prev.Round && e.AtMS < prev.AtMS) {
					t.Fatalf("seed %d: events not sorted at %d", seed, k)
				}
			}
			switch e.Kind {
			case EvCrash, EvRestart, EvCheckpoint, EvCrashInFlush:
				if e.Site < 1 || e.Site > s.Sites {
					t.Fatalf("seed %d: event %d site %d out of range", seed, k, e.Site)
				}
			case EvHintSkew:
				if e.Site < 1 || e.Site > s.Sites {
					t.Fatalf("seed %d: event %d site %d out of range", seed, k, e.Site)
				}
				if e.A == 0 {
					t.Fatalf("seed %d: event %d zero hint skew", seed, k)
				}
			case EvLinkDown, EvLinkUp:
				if e.A == e.B || e.A < 1 || e.B < 1 || e.A > s.Sites || e.B > s.Sites {
					t.Fatalf("seed %d: event %d bad link %d-%d", seed, k, e.A, e.B)
				}
			case EvPartition:
				seen := map[int]bool{}
				for _, g := range e.Groups {
					if len(g) == 0 {
						t.Fatalf("seed %d: event %d empty partition group", seed, k)
					}
					for _, site := range g {
						if seen[site] {
							t.Fatalf("seed %d: event %d site %d in two groups", seed, k, site)
						}
						seen[site] = true
					}
				}
			}
		}
	}
}

func TestScheduleEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		s := Build(seed)
		enc := s.EncodeString()
		dec, err := DecodeSchedule(strings.NewReader(enc))
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, enc)
		}
		if got := dec.EncodeString(); got != enc {
			t.Fatalf("seed %d: round trip changed the schedule:\n%s\n---\n%s", seed, enc, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a schedule",
		"chaos-schedule v2\nseed 1",
		"chaos-schedule v1\nbogus-key 3",
		"chaos-schedule v1\nseed 1\nsites 3\nitems 2\ntotal 10\nrounds 1\nroundms 100\nevent r=1 at=5 kind=explode",
		"chaos-schedule v1\nseed 1", // missing shape
	}
	for _, in := range cases {
		if _, err := DecodeSchedule(strings.NewReader(in)); err == nil {
			t.Errorf("decoded garbage without error: %q", in)
		}
	}
}

func TestEventStrings(t *testing.T) {
	e := Event{Round: 1, AtMS: 5, Kind: EvPartition, Groups: [][]int{{1, 3}, {2}}}
	if got := e.String(); got != "partition groups=1,3|2" {
		t.Errorf("partition string = %q", got)
	}
	if got := (Event{Kind: EvCrash, Site: 4}).String(); got != "crash site=4" {
		t.Errorf("crash string = %q", got)
	}
}
