package site

import (
	"dvp/internal/ident"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// maxVmPerEnvelope bounds how many Vm one retransmission envelope
// carries (stays well inside the wire frame limit).
const maxVmPerEnvelope = 64

// retransmitLoop periodically resends every unacknowledged Vm — the
// guaranteed-delivery engine behind "a Vm is never lost" (§4.2). All
// pending Vm toward one peer coalesce into VmBatch envelopes: the
// retransmission tick fires them together anyway, so one frame (and
// one piggybacked ack back) carries the lot. The tick is only an
// upper bound on the pace: per-peer adaptive backoff (vmsg
// DueRetransmit, seeded by the ack-RTT EWMA, doubling to
// RetransmitMax, reset by the first advancing ack) decides whether a
// given peer's sweep actually fires, so a long-dead peer costs one
// sweep per RetransmitMax instead of one per tick.
func (s *Site) retransmitLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-s.cfg.Clock.After(s.cfg.RetransmitEvery):
		}
		now := s.cfg.Clock.Now()
		total := 0
		perPeer := make(map[ident.SiteID][]wal.VmOut)
		for _, p := range s.peersExceptSelf() {
			if !s.vm.DueRetransmit(p, now, s.cfg.RetransmitEvery, s.cfg.RetransmitMax) {
				continue
			}
			if vms := s.vm.PendingTo(p); len(vms) > 0 {
				perPeer[p] = vms
				total += len(vms)
			}
		}
		if total == 0 {
			continue
		}
		if !s.Up() {
			return
		}
		s.stats.retransmissions.Add(uint64(total))
		s.obsm.retx.Add(uint64(total))
		for _, p := range s.peersExceptSelf() {
			vms := perPeer[p]
			for len(vms) > 0 {
				n := len(vms)
				if n > maxVmPerEnvelope {
					n = maxVmPerEnvelope
				}
				if n == 1 {
					s.sendVm(vms[0])
				} else {
					batch := &wire.VmBatch{Vms: make([]wire.Vm, n)}
					for i, v := range vms[:n] {
						batch.Vms[i] = wire.Vm{
							Seq: v.Seq, Item: v.Item, Amount: v.Amount,
							ReqTxn: v.ReqTxn, FlowVec: v.FlowVec, Trace: v.Trace,
						}
					}
					s.send(p, batch)
				}
				vms = vms[n:]
			}
		}
	}
}
