package site

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// SendValue runs a redistribution-only (Rds) transaction (§5): move
// amount of item from this site's quota to peer, without changing the
// item's value. It follows the §5 Rds recipe — lock local item, log
// the [database-actions, message-sequence] record, dispatch, release —
// and "there is no need for the transaction to await replies": the Vm
// machinery guarantees eventual delivery.
//
// Returns an error if the site is down, the item is locked (no-wait),
// or local quota is insufficient. Proactive rebalancing policies are
// built on this (paper §8: "performance studies to find the best ways
// to distribute the data ... are needed").
func (s *Site) SendValue(item ident.ItemID, peer ident.SiteID, amount core.Value) error {
	if amount <= 0 {
		return fmt.Errorf("site %v: non-positive transfer %d", s.cfg.ID, amount)
	}
	if peer == s.cfg.ID {
		return fmt.Errorf("site %v: self transfer", s.cfg.ID)
	}
	epoch, up := s.currentEpoch()
	if !up {
		return fmt.Errorf("site %v: down", s.cfg.ID)
	}

	// Rds transactions are transactions: they draw a timestamp and
	// take the lock like anyone else (§6 treats them uniformly).
	ts := s.lamport.Next()
	id := ts.Txn()

	// A proactive transfer is its own causal root: it gets an "rds"
	// span stitched by its own TS, and the Vm it creates carries the
	// context so the receiving site's vm-accept (and our vm-ack)
	// parent onto it.
	var hop *obs.TxnTrace
	var hopSpan uint64
	if s.obsm.ring != nil {
		hopSpan = s.newSpan()
		hop = s.obsm.ring.BeginSpan(s.obsm.site, "rds", s.obsm.site, uint64(ts), hopSpan, 0)
	}
	outcome := "aborted"
	defer func() { hop.Finish(outcome) }()

	// Lock order: lifeMu.RLock ≺ stripe ≺ ckptMu.RLock. The lifeMu
	// fence keeps the append inside the site's lifetime, like the
	// commit path: once Crash returns, no rds record can still reach
	// the log.
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if !s.sameEpoch(epoch) {
		return fmt.Errorf("site %v: down", s.cfg.ID)
	}
	stripe := &s.stripes[s.stripeOf(item)]
	stripe.Lock()
	it, _ := s.cfg.DB.Get(item)
	if !s.policy.AllowLock(ts, it.TS) {
		stripe.Unlock()
		return fmt.Errorf("site %v: cc rejected rds on %q", s.cfg.ID, item)
	}
	if !s.locks.TryLock(id, item) {
		stripe.Unlock()
		return fmt.Errorf("site %v: %q locked", s.cfg.ID, item)
	}
	defer s.locks.Unlock(id, item)
	if have := s.cfg.DB.Value(item); have < amount {
		stripe.Unlock()
		return fmt.Errorf("site %v: quota %d < transfer %d", s.cfg.ID, have, amount)
	}
	if s.policy.StampOnLock() {
		s.cfg.DB.SetTS(item, ts)
	}
	stamp := it.TS
	if s.policy.StampOnLock() {
		stamp = ts
	}
	seq := s.vm.AllocSeq(peer)
	rec := &wal.VmCreateRec{
		Actions: []wal.Action{{Item: item, Delta: -amount, SetTS: stamp}},
		Msgs: []wal.VmOut{{
			To: peer, Seq: seq, Item: item, Amount: amount, ReqTxn: 0,
			FlowVec: s.flow.snapshot(item).Entries(),
		}},
	}
	if hopSpan != 0 {
		rec.Msgs[0].Trace = wire.TraceCtx{Origin: s.cfg.ID, TS: ts, Span: hopSpan}
	}
	lsn, err := s.vmCreateDurably(rec)
	if err != nil {
		stripe.Unlock()
		return fmt.Errorf("site %v: rds log append: %w", s.cfg.ID, err)
	}
	hop.Step("wal-flush", fmt.Sprintf("lsn=%d amount=%d seq=%d", lsn, amount, seq))
	stripe.Unlock()
	hop.Step("apply", "")
	outcome = "sent"

	s.reportRds(stamp, item, -amount)
	s.stats.vmCreated.Add(1)
	s.obsm.forPeer(peer).vmCreated.Inc()
	if s.sameEpoch(epoch) {
		s.sendVm(rec.Msgs[0])
	}
	return nil
}
