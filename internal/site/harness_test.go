package site

import (
	"sync"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/store"
	"dvp/internal/wal"
)

// testCluster wires n sites over a simnet for integration tests.
type testCluster struct {
	t     *testing.T
	net   *simnet.Net
	sites []*Site
	logs  []*wal.MemLog
	dbs   []*store.Durable

	mu      sync.Mutex
	commits []CommitInfo
}

// newTestCluster builds an n-site cluster; cfg mutates the base
// per-site config (nil for defaults).
func newTestCluster(t *testing.T, n int, netCfg simnet.Config, mutate func(i int, c *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, net: simnet.New(netCfg)}
	peers := make([]ident.SiteID, n)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}
	for i := 0; i < n; i++ {
		id := peers[i]
		log := wal.NewMemLog()
		db := store.New()
		cfg := Config{
			ID:              id,
			Peers:           peers,
			Log:             log,
			DB:              db,
			Endpoint:        tc.net.Endpoint(id),
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 5 * time.Millisecond,
			DefaultTimeout:  80 * time.Millisecond,
			OnCommit: func(ci CommitInfo) {
				tc.mu.Lock()
				tc.commits = append(tc.commits, ci)
				tc.mu.Unlock()
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("site %v: %v", id, err)
		}
		tc.sites = append(tc.sites, s)
		tc.logs = append(tc.logs, log)
		tc.dbs = append(tc.dbs, db)
	}
	for _, s := range tc.sites {
		s.Start()
	}
	t.Cleanup(tc.net.Close)
	return tc
}

// createItem splits total evenly across all sites (the §3 initial
// distribution).
func (tc *testCluster) createItem(item ident.ItemID, total core.Value) {
	tc.t.Helper()
	shares := core.EvenShares(total, len(tc.sites))
	for i, s := range tc.sites {
		if err := s.DB().Create(item, shares[i]); err != nil {
			tc.t.Fatalf("create %s at %v: %v", item, s.ID(), err)
		}
	}
}

// globalTotal computes Σ_i d_i + in-flight Vm for item: the
// conservation quantity N = N_1 + … + N_n + N_M of §3. Only meaningful
// at quiescent points.
func (tc *testCluster) globalTotal(item ident.ItemID) core.Value {
	var sum core.Value
	for _, s := range tc.sites {
		sum += s.DB().Value(item)
	}
	for _, si := range tc.sites {
		for _, sj := range tc.sites {
			if si == sj {
				continue
			}
			for _, v := range si.VM().PendingTo(sj.ID()) {
				if v.Item == item && !sj.VM().Accepted(si.ID(), v.Seq) {
					sum += v.Amount
				}
			}
		}
	}
	return sum
}

// settle waits for in-flight traffic to drain (real-clock tests).
func (tc *testCluster) settle() {
	tc.net.Quiesce()
}

// waitQuiescent polls until globalTotal for an item is stable and all
// retransmission sets are empty, or the deadline passes.
func (tc *testCluster) waitQuiescent(item ident.ItemID, deadline time.Duration) {
	tc.t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		tc.net.Quiesce()
		pending := 0
		for _, s := range tc.sites {
			pending += len(s.VM().PendingAll())
		}
		if pending == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitUntil polls cond until it holds or the deadline passes —
// condition-based synchronization instead of wall-clock sleeps, so
// -race runs are timing-independent.
func waitUntil(t *testing.T, deadline time.Duration, what string, cond func() bool) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("condition %q not reached within %v", what, deadline)
}

// lockHeld reports whether any transaction currently holds the lock
// on item at s — the observable signal that a concurrent Run has
// passed its §5 step-1 lock acquisition.
func lockHeld(s *Site, item ident.ItemID) bool {
	return s.locks.Holder(item) != ident.NoTxn
}

func (tc *testCluster) committedTxns() []cc.CommittedTxn {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]cc.CommittedTxn, 0, len(tc.commits))
	for _, ci := range tc.commits {
		t := cc.CommittedTxn{
			TS: ci.TS, Site: ci.Site, Deltas: ci.Deltas, Reads: ci.Reads,
			WriterIdx: ci.WriterIdx,
			ReadVec:   make(map[ident.ItemID]map[ident.SiteID]uint64, len(ci.ReadVec)),
		}
		for item, vec := range ci.ReadVec {
			t.ReadVec[item] = map[ident.SiteID]uint64(vec)
		}
		out = append(out, t)
	}
	return out
}
