package site

import (
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/obs"
	"dvp/internal/simnet"
	"dvp/internal/txn"
)

// fastCluster builds a cluster whose sites share one metrics registry,
// so tests can read the fast-path counters.
func fastCluster(t *testing.T, n int, mutate func(i int, c *Config)) (*testCluster, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tc := newTestCluster(t, n, simnet.Config{Seed: 1}, func(i int, c *Config) {
		c.Metrics = reg
		if mutate != nil {
			mutate(i, c)
		}
	})
	return tc, reg
}

func fastCommits(reg *obs.Registry) uint64 {
	return reg.SumCounters("dvp_fastpath_commits_total")
}

func fastFallbacks(reg *obs.Registry) uint64 {
	return reg.SumCounters("dvp_fastpath_fallback_total")
}

// TestFastPathCommit: a write-only transaction with adequate local
// quota takes the fast path — no messages, durable effects, counter
// bumped, and the commit visible in Stats.
func TestFastPathCommit(t *testing.T) {
	tc, reg := fastCluster(t, 4, nil)
	tc.createItem("flight/A", 100) // 25 per site
	res := tc.sites[0].Run(reserve("flight/A", 10))
	if !res.Committed() {
		t.Fatalf("local reserve: %v", res.Status)
	}
	if res.RequestsSent != 0 {
		t.Errorf("fast commit sent %d requests", res.RequestsSent)
	}
	if got := fastCommits(reg); got != 1 {
		t.Errorf("fastpath commits = %d, want 1", got)
	}
	if v := tc.dbs[0].Value("flight/A"); v != 15 {
		t.Errorf("local quota = %d, want 15", v)
	}
	if st := tc.sites[0].Stats(); st.Committed != 1 {
		t.Errorf("Stats().Committed = %d, want 1 (fast commits must fold in)", st.Committed)
	}
	tc.settle()
	if got := tc.globalTotal("flight/A"); got != 90 {
		t.Errorf("global total = %d, want 90", got)
	}
}

// TestFastPathMultiOpComposition: several ops on the same and distinct
// items compose the per-item running requirement exactly like the
// composite slow path — a (sub 20, add 5) pair on one item needs 20 up
// front even though the net delta is -15.
func TestFastPathMultiOpComposition(t *testing.T) {
	tc, reg := fastCluster(t, 1, nil)
	tc.createItem("a", 20)
	tc.createItem("b", 50)
	tx := &txn.Txn{Ops: []txn.ItemOp{
		{Item: "a", Op: core.Decr{M: 20}},
		{Item: "a", Op: core.Incr{M: 5}},
		{Item: "b", Op: core.Decr{M: 7}},
	}, Label: "compose"}
	res := tc.sites[0].Run(tx)
	if !res.Committed() {
		t.Fatalf("composed txn: %v", res.Status)
	}
	if got := fastCommits(reg); got != 1 {
		t.Errorf("fastpath commits = %d, want 1", got)
	}
	if v := tc.dbs[0].Value("a"); v != 5 {
		t.Errorf("a = %d, want 5", v)
	}
	if v := tc.dbs[0].Value("b"); v != 43 {
		t.Errorf("b = %d, want 43", v)
	}
}

// TestFastPathStaleHighHintFallsBack is the correctness-critical case:
// a hint lying HIGH lures the fast path in, the authoritative re-check
// under the stripes turns it back, and the slow path redistributes —
// the transaction still commits, value is conserved, and the fallback
// counter records the decline.
func TestFastPathStaleHighHintFallsBack(t *testing.T) {
	tc, reg := fastCluster(t, 4, nil)
	tc.createItem("flight/A", 100) // 25 per site
	tc.dbs[0].SkewHints(+1000)     // every hint now lies high
	res := runRetry(tc.sites[0], reserve("flight/A", 40), 5)
	if !res.Committed() {
		t.Fatalf("reserve through stale hint: %v", res.Status)
	}
	if res.RequestsSent == 0 {
		t.Error("40 > 25 must have redistributed, but no requests were sent")
	}
	if got := fastCommits(reg); got != 0 {
		t.Errorf("fastpath commits = %d, want 0 (authoritative check must decline)", got)
	}
	if got := fastFallbacks(reg); got == 0 {
		t.Error("fallback counter = 0, want ≥ 1 (the stale hint was exercised)")
	}
	tc.waitQuiescent("flight/A", 2*time.Second)
	if got := tc.globalTotal("flight/A"); got != 60 {
		t.Errorf("global total = %d, want 60", got)
	}
}

// TestFastPathStaleLowHintGoesSlow: a hint lying LOW is the safe lie —
// eligible traffic routes through the full protocol and commits there.
func TestFastPathStaleLowHintGoesSlow(t *testing.T) {
	tc, reg := fastCluster(t, 1, nil)
	tc.createItem("x", 50)
	tc.dbs[0].SkewHints(-49)
	res := tc.sites[0].Run(reserve("x", 10))
	if !res.Committed() {
		t.Fatalf("reserve under low hint: %v", res.Status)
	}
	if got := fastCommits(reg); got != 0 {
		t.Errorf("fastpath commits = %d, want 0", got)
	}
	if got := fastFallbacks(reg); got != 1 {
		t.Errorf("fastpath fallbacks = %d, want 1", got)
	}
	if v := tc.dbs[0].Value("x"); v != 40 {
		t.Errorf("x = %d, want 40", v)
	}
	// The slow-path commit resynchronized the hint; the next eligible
	// transaction takes the fast path again.
	if res := tc.sites[0].Run(reserve("x", 10)); !res.Committed() {
		t.Fatalf("second reserve: %v", res.Status)
	}
	if got := fastCommits(reg); got != 1 {
		t.Errorf("fastpath commits after self-heal = %d, want 1", got)
	}
}

// TestFastPathIneligibleShapes: reads, empty op lists and over-wide
// transactions never touch the fast path (and never count as
// fallbacks — they were never eligible).
func TestFastPathIneligibleShapes(t *testing.T) {
	tc, reg := fastCluster(t, 2, nil)
	tc.createItem("x", 100)
	if res := runRetry(tc.sites[0], readItem("x"), 3); !res.Committed() {
		t.Fatalf("read: %v", res.Status)
	}
	wide := &txn.Txn{Label: "wide"}
	for i := 0; i < maxFastOps+1; i++ {
		wide.Ops = append(wide.Ops, txn.ItemOp{Item: "x", Op: core.Incr{M: 1}})
	}
	if res := tc.sites[0].Run(wide); !res.Committed() {
		t.Fatalf("wide txn: %v", res.Status)
	}
	if got := fastCommits(reg); got != 0 {
		t.Errorf("fastpath commits = %d, want 0", got)
	}
	if got := fastFallbacks(reg); got != 0 {
		t.Errorf("fastpath fallbacks = %d, want 0 (ineligible shapes aren't declines)", got)
	}
}

// TestFastPathDisableKnob: DisableFastPath forces the full protocol
// with identical outcomes.
func TestFastPathDisableKnob(t *testing.T) {
	tc, reg := fastCluster(t, 1, func(i int, c *Config) { c.DisableFastPath = true })
	tc.createItem("x", 100)
	res := tc.sites[0].Run(reserve("x", 10))
	if !res.Committed() {
		t.Fatalf("reserve with fast path off: %v", res.Status)
	}
	if got := fastCommits(reg); got != 0 {
		t.Errorf("fastpath commits = %d, want 0 with DisableFastPath", got)
	}
	if v := tc.dbs[0].Value("x"); v != 90 {
		t.Errorf("x = %d, want 90", v)
	}
}

// TestFastPathCrashedSiteDeclines: a crashed site's fast path declines
// (the slow path then reports SiteDown uniformly).
func TestFastPathCrashedSiteDeclines(t *testing.T) {
	tc, reg := fastCluster(t, 2, nil)
	tc.createItem("x", 100)
	tc.sites[0].Crash()
	res := tc.sites[0].Run(reserve("x", 1))
	if res.Status != txn.StatusSiteDown {
		t.Fatalf("txn at crashed site: %v, want SiteDown", res.Status)
	}
	if got := fastCommits(reg); got != 0 {
		t.Errorf("fastpath commits = %d, want 0 at a crashed site", got)
	}
}
