package site

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// handleRequest implements the remote site's side of §5: decide
// whether to honor a request for local quota, and if so create the
// virtual message that carries it. It runs under the router's
// lifeMu read side and serializes on the item's stripe; the stats it
// bumps are atomics — no site-wide lock anywhere on this path.
func (s *Site) handleRequest(from ident.SiteID, req *wire.Request) {
	hopStart := s.cfg.Clock.Now()
	// A traced request grows an rds-create span here: the deduct half
	// of the redistribution, parented on the requester's root span.
	var hop *obs.TxnTrace
	var hopSpan uint64
	if req.Trace.Valid() && s.obsm.ring != nil {
		hopSpan = s.newSpan()
		hop = s.obsm.ring.BeginSpan(s.obsm.site, "rds-create",
			req.Trace.Origin.String(), uint64(req.Trace.TS), hopSpan, req.Trace.Span)
	}

	stripe := &s.stripes[s.stripeOf(req.Item)]
	stripe.Lock()

	decline := func(reason string) {
		stripe.Unlock()
		s.stats.requestsDeclined.Add(1)
		s.obsm.forPeer(from).declined.Inc()
		s.obsm.flight.Recordf(s.obsm.site, "rds-decline", "from=%v item=%s txn=%v reason=%s", from, req.Item, req.Txn, reason)
		hop.Finish("declined:" + reason)
	}

	// "If there is currently a lock on d_j, site s_j can simply
	// decide not to honor the request" (§5).
	if s.locks.Holder(req.Item) != ident.NoTxn {
		decline("locked")
		return
	}
	// Concurrency control admission (§6.1): honor only if
	// TS(t) > TS(d_j) under Conc1.
	it, _ := s.cfg.DB.Get(req.Item)
	if !s.policy.AllowLock(req.Txn, it.TS) {
		decline("cc")
		return
	}
	// Full reads require the complete local share: no outstanding Vm
	// may still carry this item away from us (§5).
	if req.FullRead && s.vm.HasOutstanding(req.Item) {
		decline("outstanding-vm")
		return
	}
	have := s.cfg.DB.Value(req.Item)
	var grant core.Value
	if req.FullRead {
		grant = have // the entire holding, even zero
	} else {
		grant = s.grant.Grant(have, req.Want)
		if grant <= 0 {
			// Nothing useful to give; ignoring the request is
			// always safe — the requester's timeout bounds it.
			decline("no-grant")
			return
		}
	}

	// Honor: this is an Rds transaction acting at this site (§6).
	// Lock, stamp, log the [database-actions, message-sequence]
	// record, apply, unlock — all before the real message leaves.
	rdsID := req.Txn.Txn()
	if !s.locks.TryLock(rdsID, req.Item) {
		decline("lock-race")
		return
	}
	if s.policy.StampOnLock() {
		s.cfg.DB.SetTS(req.Item, req.Txn)
	}
	seq := s.vm.AllocSeq(from)
	var stamp = it.TS
	if s.policy.StampOnLock() {
		stamp = req.Txn
	}
	rec := &wal.VmCreateRec{
		Actions: []wal.Action{{Item: req.Item, Delta: -grant, SetTS: stamp}},
		Msgs: []wal.VmOut{{
			To: from, Seq: seq, Item: req.Item, Amount: grant, ReqTxn: req.Txn,
			FlowVec: s.flow.snapshot(req.Item).Entries(),
		}},
	}
	if hopSpan != 0 {
		// The outgoing Vm carries this hop's span as the parent of
		// the receiver's vm-accept and our own eventual vm-ack span.
		rec.Msgs[0].Trace = wire.TraceCtx{Origin: req.Trace.Origin, TS: req.Trace.TS, Span: hopSpan}
	}
	lsn, err := s.vmCreateDurably(rec)
	if err != nil {
		s.locks.Unlock(rdsID, req.Item)
		decline("log-error")
		return
	}
	hop.Step("wal-flush", fmt.Sprintf("lsn=%d grant=%d seq=%d", lsn, grant, seq))
	s.locks.Unlock(rdsID, req.Item)
	stripe.Unlock()
	hop.Step("apply", "")

	s.reportRds(stamp, req.Item, -grant)
	s.obsm.observeStep("rds-create", s.cfg.Clock.Now().Sub(hopStart))
	s.obsm.flight.Recordf(s.obsm.site, "rds-create", "to=%v item=%s amount=%d seq=%d", from, req.Item, grant, seq)
	s.stats.requestsHonored.Add(1)
	s.stats.vmCreated.Add(1)
	po := s.obsm.forPeer(from)
	po.honored.Inc()
	po.vmCreated.Inc()

	s.sendVm(rec.Msgs[0])
	hop.Finish("honored")
}
