package site

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// Run executes one transaction entirely at this site. Write-only
// transactions whose items all look locally adequate take the
// zero-allocation local-commit fast path (exec_fast.go); everything
// else — full reads, shortfalls, wide transactions, stale quota
// hints — runs the full §5 protocol via runSlow. Both paths block the
// calling goroutine for at most the transaction's timeout plus local
// processing and always return a decision: the protocol is
// non-blocking by construction.
func (s *Site) Run(t *txn.Txn) *txn.Result {
	if res := s.runFast(t); res != nil {
		return res
	}
	return s.runSlow(t)
}

// runSlow is the paper's §5 seven-step protocol, in full.
func (s *Site) runSlow(t *txn.Txn) *txn.Result {
	start := s.cfg.Clock.Now()
	tr := s.obsm.ring.Begin(s.obsm.site, t.Label)
	var rootSpan uint64
	if tr != nil {
		rootSpan = s.newSpan()
		tr.SetSpan(rootSpan)
	}
	// step records one protocol-step boundary: the trace step plus its
	// segment duration into dvp_step_seconds{step=...}.
	segStart := start
	step := func(name, detail string) {
		now := s.cfg.Clock.Now()
		s.obsm.observeStep(name, now.Sub(segStart))
		segStart = now
		tr.Step(name, detail)
	}
	res := &txn.Result{}
	finish := func(status txn.Status) *txn.Result {
		res.Status = status
		res.Latency = s.cfg.Clock.Now().Sub(start)
		s.countOutcome(status)
		s.obsm.observeTxn(t.Label, status, res.Latency)
		tr.Finish(status.String())
		return res
	}

	epoch, up := s.currentEpoch()
	if !up {
		return finish(txn.StatusSiteDown)
	}

	// Draw TS(t): timestamp and identity in one (§6.1).
	ts := s.lamport.Next()
	res.TS = ts
	id := ts.Txn()
	items := t.Items()
	tr.SetTS(uint64(ts))
	step("admit", fmt.Sprintf("items=%d", len(items)))

	// Step 1 — atomically lock the local values of A(t), with the
	// scheme's admission check, stamping under Conc1. The stripes
	// covering A(t) make check+lock+stamp one atomic step against
	// message handling on those items; transactions on disjoint
	// stripes admit concurrently. No quota check here — a shortfall
	// redistributes in step 2 instead of aborting, so needs is nil.
	unlock := s.lockStripesFor(items)
	if s.admitLocked(ts, items, nil) != admitOK {
		unlock()
		return finish(txn.StatusCCRejected)
	}
	step("cc-check", "")
	if !s.lockAndStamp(ts, id, items) {
		unlock()
		s.obsm.flight.Recordf(s.obsm.site, "lock-conflict", "txn=%v label=%s items=%d", ts, t.Label, len(items))
		return finish(txn.StatusLockConflict)
	}
	step("lock", "")
	unlock()

	// LIFO: locks release first, then parked inbound Vm on these items
	// get their redelivery shot at the freshly-unlocked window.
	defer s.redeliverDeferred(items)
	defer s.locks.ReleaseAll(id)

	// Step 2 — determine inadequate items and send requests.
	needs := t.Needs()
	shortfall := make(map[ident.ItemID]core.Value)
	for item, need := range needs {
		if have := s.cfg.DB.Value(item); have < need {
			shortfall[item] = need - have
		}
	}
	if len(shortfall) > 0 || len(t.Reads) > 0 {
		// Park in the waiter table: the transaction's shard is the only
		// lock registration touches, and the epoch tag lets Crash fail
		// exactly the waiters of the epoch it ends (waiters.go).
		w := newWaiter(id, ts, epoch, needs, t.Reads)
		s.waiterTab.add(w)
		defer s.waiterTab.remove(id)

		var tctx wire.TraceCtx
		if rootSpan != 0 {
			tctx = wire.TraceCtx{Origin: s.cfg.ID, TS: ts, Span: rootSpan}
		}
		res.RequestsSent = s.sendRequests(ts, shortfall, t.Reads, t.Ask, tctx)
		step("ask", fmt.Sprintf("requests=%d policy=%v", res.RequestsSent, t.Ask))

		// Step 3 — await the requisite Vm or the timeout.
		timeout := t.Timeout
		if timeout <= 0 {
			timeout = s.cfg.DefaultTimeout
		}
		deadline := s.cfg.Clock.After(timeout)
		for !s.satisfied(w) {
			select {
			case <-w.notify:
				if !s.sameEpoch(epoch) {
					return finish(txn.StatusSiteDown)
				}
			case <-deadline:
				if !s.sameEpoch(epoch) {
					return finish(txn.StatusSiteDown)
				}
				// §5 step 3: "declare an abort and then release
				// the locks". Quota already received stays — the
				// aborted transaction degenerates to an Rds
				// transaction (§6). The residual shortfall feeds
				// the demand tracker: unmet need is the strongest
				// rebalancing signal there is.
				s.recordDeficit(w.needs)
				res.VmAccepted = w.acceptedCount()
				step("vm-accept", fmt.Sprintf("accepted=%d", res.VmAccepted))
				s.obsm.flight.Recordf(s.obsm.site, "txn-timeout", "txn=%v label=%s accepted=%d", ts, t.Label, res.VmAccepted)
				return finish(txn.StatusTimeout)
			}
		}
		res.VmAccepted = w.acceptedCount()
		step("vm-accept", fmt.Sprintf("accepted=%d", res.VmAccepted))
	}

	// Step 4 — perform the computation: apply the operators in order
	// to the (now adequate) local values.
	working := make(map[ident.ItemID]core.Value)
	for _, item := range items {
		working[item] = s.cfg.DB.Value(item)
	}
	for _, op := range t.Ops {
		nv, ok := op.Op.Apply(working[op.Item])
		if !ok {
			// Cannot happen while we hold the locks and satisfied()
			// held; treat defensively as a timeout-class abort.
			return finish(txn.StatusTimeout)
		}
		working[op.Item] = nv
	}
	reads := make(map[ident.ItemID]core.Value, len(t.Reads))
	for _, item := range t.Reads {
		reads[item] = s.cfg.DB.Value(item)
	}
	res.Reads = reads

	// Step 5 — write the commit record; its stability commits t.
	deltas := t.Deltas()
	actions := make([]wal.Action, 0, len(deltas))
	for _, item := range items {
		d, ok := deltas[item]
		if !ok || d == 0 {
			continue
		}
		actions = append(actions, wal.Action{Item: item, Delta: d, SetTS: ts})
	}
	// The epoch check and the append must be one unit against Crash:
	// lifeMu's fence guarantees that once Crash returns, no stale-epoch
	// commit record can still reach the log — recovery's scan would
	// miss it and could reissue its timestamp. commitDurably holds
	// ckptMu's read side across the append+apply pair (atomic against
	// Checkpoint's cut); the written items' stripes, re-acquired here,
	// keep append+apply atomic per item against the message handlers
	// (the store's page-LSN idempotence and group commit's batched
	// wakeups demand same-item records applied in LSN order).
	written := make([]ident.ItemID, 0, len(actions))
	for _, a := range actions {
		written = append(written, a.Item)
	}
	s.lifeMu.RLock()
	if !s.sameEpoch(epoch) {
		s.lifeMu.RUnlock()
		return finish(txn.StatusSiteDown)
	}
	unlockW := s.lockStripesFor(written)
	lsn, err := s.commitDurably(ts, actions)
	if err != nil {
		unlockW()
		s.lifeMu.RUnlock()
		return finish(txn.StatusSiteDown)
	}
	step("wal-flush", fmt.Sprintf("lsn=%d actions=%d", lsn, len(actions)))
	unlockW()
	s.lifeMu.RUnlock()
	// Step 6 happened inside commitDurably: apply, then the applied
	// record — the shared durability core both paths funnel through.
	step("apply", "")

	// Step 7 — locks released by the deferred ReleaseAll. Flow
	// instrumentation records first, while the locks are still held:
	// written items register this transaction as their site's next
	// writer; fully-read items snapshot the merged observation vector
	// (every commit updates the vectors whether or not anyone
	// listens — grants stamp them onto outgoing value).
	writerIdx := make(map[ident.ItemID]uint64, len(deltas))
	readVec := make(map[ident.ItemID]FlowVec, len(reads))
	for _, item := range items {
		if hasRead(reads, item) {
			readVec[item] = s.flow.snapshot(item)
		}
		if d, wrote := deltas[item]; wrote && d != 0 {
			writerIdx[item] = s.flow.writerCommit(item, s.cfg.ID)
		}
	}
	s.recordConsumption(deltas)
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(CommitInfo{
			TS: ts, Site: s.cfg.ID, Deltas: deltas, Reads: reads,
			WriterIdx: writerIdx, ReadVec: readVec, Label: t.Label,
			CommitLSN: lsn,
		})
	}
	return finish(txn.StatusCommitted)
}

// sendRequests dispatches the §5 step-2 requests: full-read gathers to
// every peer, shortfall requests per the ask policy. Returns the
// number of requests sent.
func (s *Site) sendRequests(ts tstamp.TS, shortfall map[ident.ItemID]core.Value, reads []ident.ItemID, ask txn.AskPolicy, tctx wire.TraceCtx) int {
	peers := s.peersExceptSelf()
	sent := 0
	for _, item := range reads {
		for _, p := range peers {
			s.send(p, &wire.Request{Txn: ts, Item: item, FullRead: true, Trace: tctx})
			s.obsm.forPeer(p).asksSent.Inc()
			sent++
		}
	}
	if len(shortfall) > 0 {
		fan := ask.Fanout(len(peers))
		if fan <= 0 {
			fan = len(peers)
		}
		// Rotate the starting peer so AskOne/AskTwo spread load.
		startAt := int(s.askCursor.Add(1) - 1)
		for item, want := range shortfall {
			for k := 0; k < fan && k < len(peers); k++ {
				p := peers[(startAt+k)%len(peers)]
				// Under AskAll every peer is asked for the full
				// shortfall; with narrower fanouts likewise — the
				// exact split is the granting side's business.
				s.send(p, &wire.Request{Txn: ts, Item: item, Want: want, Trace: tctx})
				s.obsm.forPeer(p).asksSent.Inc()
				sent++
			}
		}
	}
	s.stats.requestsSent.Add(uint64(sent))
	return sent
}

// satisfied is the §5 step-3/4 gate: every op item has adequate local
// quota, and every full read has gathered all of Π⁻¹(d): a response
// from every peer and no Vm of ours still carrying the item away.
func (s *Site) satisfied(w *waiter) bool {
	for item, need := range w.needs {
		if s.cfg.DB.Value(item) < need {
			return false
		}
	}
	if len(w.reads) == 0 {
		return true
	}
	for item := range w.reads {
		if s.vm.HasOutstanding(item) {
			return false
		}
	}
	return w.allResponded(s.peersExceptSelf())
}

func hasRead(reads map[ident.ItemID]core.Value, item ident.ItemID) bool {
	_, ok := reads[item]
	return ok
}

func (s *Site) countOutcome(status txn.Status) {
	switch status {
	case txn.StatusCommitted:
		s.stats.committed.Add(1)
	case txn.StatusLockConflict:
		s.stats.abortLockConflict.Add(1)
	case txn.StatusCCRejected:
		s.stats.abortCCRejected.Add(1)
	case txn.StatusTimeout:
		s.stats.abortTimeout.Add(1)
	case txn.StatusSiteDown:
		s.stats.abortSiteDown.Add(1)
	}
}
