package site

import (
	"fmt"

	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// handleVm implements Vm acceptance (§4.2, §5): exactly-once crediting
// of the carried value, by an Rds transaction when the item is free,
// by the waiting transaction itself when it holds the lock, and
// deferral (ignore; retransmission will return) when an unrelated
// transaction holds it.
func (s *Site) handleVm(from ident.SiteID, m *wire.Vm) {
	if s.processVm(from, m) {
		s.send(from, &wire.VmAck{UpTo: s.vm.AckFor(from)})
	}
}

// handleVmBatch accepts each carried Vm independently, then sends one
// cumulative ack for the whole batch — the receiving half of Vm
// piggybacking (one envelope, many Vm; one ack envelope back).
func (s *Site) handleVmBatch(from ident.SiteID, b *wire.VmBatch) {
	ack := false
	for i := range b.Vms {
		if s.processVm(from, &b.Vms[i]) {
			ack = true
		}
	}
	if ack {
		s.send(from, &wire.VmAck{UpTo: s.vm.AckFor(from)})
	}
}

// processVm is the acceptance path for one Vm (§4.2, §5). It reports
// whether an ack is owed (accepted or duplicate); a deferral (item
// locked by a non-waiting transaction) owes none — retransmission
// will return. A waiting holder is found through its waiter shard
// (lock-free of anything site-wide); its progress fields are updated
// under the waiter's own lock.
func (s *Site) processVm(from ident.SiteID, m *wire.Vm) bool {
	hopStart := s.cfg.Clock.Now()
	// A traced Vm grows a vm-accept span here: the credit half of the
	// redistribution, parented on the sender's rds-create span.
	var hop *obs.TxnTrace
	if m.Trace.Valid() && s.obsm.ring != nil {
		hop = s.obsm.ring.BeginSpan(s.obsm.site, "vm-accept",
			m.Trace.Origin.String(), uint64(m.Trace.TS), s.newSpan(), m.Trace.Span)
	}

	stripe := &s.stripes[s.stripeOf(m.Item)]
	stripe.Lock()

	if !s.vm.ShouldAccept(from, m.Seq) {
		stripe.Unlock()
		s.stats.vmDuplicates.Add(1)
		s.obsm.forPeer(from).vmDups.Inc()
		hop.Finish("duplicate")
		// Duplicate: re-ack so the sender can retire it.
		return true
	}

	var w *waiter
	holder := s.locks.Holder(m.Item)
	if holder != ident.NoTxn {
		w = s.waiterTab.lookup(holder)
		if w == nil || m.ReqTxn != w.ts {
			// Locked by a transaction not in its waiting phase, or a
			// Vm not addressed to the waiting holder (an unsolicited
			// rebalancer credit, or a grant for an older incarnation
			// of the request): "if it is locked, the message can be
			// ignored; it will eventually be sent again anyway"
			// (§4.2). Consuming a foreign credit at the waiter's
			// timestamp would splice it into that transaction's
			// serial position even though the matching deduct
			// serialized elsewhere — the waiter's full read would
			// observe value its serial position cannot explain. The
			// Vm is parked and redelivered when the lock releases.
			s.deferVm(from, m)
			stripe.Unlock()
			hop.Finish("deferred")
			return false
		}
	}

	// Accept: log first (the record is the acceptance), then credit.
	rec := &wal.VmAcceptRec{
		From:    from,
		Seq:     m.Seq,
		Actions: []wal.Action{{Item: m.Item, Delta: m.Amount}},
	}
	var creditTS tstamp.TS
	if w != nil {
		// The waiting transaction consumes the credit: it serializes
		// inside that transaction, at its timestamp.
		creditTS = w.ts
	} else {
		// Accepting into a free item is an Rds transaction of its own
		// (§6): it draws a fresh timestamp and, under Conc1, stamps the
		// value. Without the stamp a later full read could be admitted
		// at a timestamp below the credit it already observed — ordered
		// before it in the serial history, yet seeing its effect.
		creditTS = s.lamport.Next()
		if s.policy.StampOnLock() {
			rec.Actions[0].SetTS = creditTS
		}
	}
	if m.Amount == 0 {
		// Zero-value Vm (a full-read "I hold nothing" response)
		// still needs the acceptance record for dedup state.
		rec.Actions = nil
	}
	lsn, err := s.vmAcceptDurably(from, rec)
	if err != nil {
		stripe.Unlock()
		hop.Finish("log-error")
		return false
	}
	hop.Step("wal-flush", fmt.Sprintf("lsn=%d amount=%d seq=%d", lsn, m.Amount, m.Seq))
	s.flow.merge(m.Item, flowVecFromEntries(m.FlowVec))
	stripe.Unlock()
	hop.Step("apply", "")

	s.reportRds(creditTS, m.Item, m.Amount)
	s.obsm.observeStep("vm-apply", s.cfg.Clock.Now().Sub(hopStart))
	s.obsm.flight.Recordf(s.obsm.site, "vm-accept", "from=%v item=%s amount=%d seq=%d", from, m.Item, m.Amount, m.Seq)
	s.obsm.forPeer(from).vmAccepted.Inc()
	s.stats.vmAccepted.Add(1)
	if w != nil {
		w.noteAccept(m.Item, from)
		w.wake()
	}
	hop.Finish("accepted")
	return true
}

// deferredVm is one parked inbound Vm awaiting its item's unlock.
type deferredVm struct {
	from ident.SiteID
	vm   wire.Vm
}

// maxDeferredPerItem bounds parked Vm per item; beyond it the sender's
// retransmission is the delivery path, as in plain §4.2.
const maxDeferredPerItem = 16

// deferVm parks a Vm whose item was locked, for redelivery on unlock.
// Duplicates (a retransmission racing the parked copy) collapse.
func (s *Site) deferVm(from ident.SiteID, m *wire.Vm) {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	q := s.deferredVm[m.Item]
	for i := range q {
		if q[i].from == from && q[i].vm.Seq == m.Seq {
			return
		}
	}
	if len(q) >= maxDeferredPerItem {
		return
	}
	s.deferredVm[m.Item] = append(q, deferredVm{from: from, vm: *m})
	s.obsm.flight.Recordf(s.obsm.site, "vm-defer", "from=%v item=%s seq=%d parked=%d", from, m.Item, m.Seq, len(q)+1)
}

// redeliverDeferred re-runs the acceptance path for Vm parked on the
// given items. Called after a transaction releases its locks — the
// parked Vm land in the unlock window instead of waiting out the
// sender's retransmit interval (which an item locked back-to-back may
// never overlap). A redelivered Vm that finds the item locked again
// simply parks again.
func (s *Site) redeliverDeferred(items []ident.ItemID) {
	var batch []deferredVm
	s.defMu.Lock()
	for _, item := range items {
		if q := s.deferredVm[item]; len(q) > 0 {
			batch = append(batch, q...)
			delete(s.deferredVm, item)
		}
	}
	s.defMu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Mirror the network entry point: the lifeMu fence and up-check
	// keep redelivery inside the site's lifetime (exec's own lifeMu
	// window has already closed by the time its unlock defer runs).
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if !s.Up() {
		return
	}
	s.obsm.flight.Recordf(s.obsm.site, "vm-redeliver", "count=%d", len(batch))
	for i := range batch {
		s.handleVm(batch[i].from, &batch[i].vm)
	}
}
