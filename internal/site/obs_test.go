package site

import (
	"strings"
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/simnet"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

// obsCluster builds an n-site test cluster whose sites share one
// metrics registry and trace ring.
func obsCluster(t *testing.T, n int, netCfg simnet.Config) (*testCluster, *obs.Registry, *obs.Ring) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewRing(64)
	tc := newTestCluster(t, n, netCfg, func(i int, c *Config) {
		c.Metrics = reg
		c.Trace = ring
	})
	return tc, reg, ring
}

// Acks from site 1 back to site 2 are cut, so site 2's Vm keeps
// retransmitting and site 1 keeps dropping duplicates; once the filter
// lifts, the pending set drains. The counters must show retransmits>0,
// dup drops>0, and exactly-once acceptance throughout.
func TestVmRetransmissionMetrics(t *testing.T) {
	tc, reg, _ := obsCluster(t, 2, simnet.Config{Seed: 42})
	item := ident.ItemID("flight/A")
	tc.createItem(item, 20) // 10 per site

	tc.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return !(kind == wire.KVmAck && from == 1 && to == 2)
	})

	// Needs 5 from site 2: one Vm flows 2→1, whose ack 1→2 is cut.
	res := tc.sites[0].Run(&txn.Txn{
		Ops:   []txn.ItemOp{{Item: item, Op: core.Decr{M: 15}}},
		Ask:   txn.AskAll,
		Label: "reserve",
	})
	if !res.Committed() {
		t.Fatalf("reserve: %v", res.Status)
	}

	// Let the 5ms retransmit loop fire a few times into the ack hole.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.CounterValue("dvp_vmsg_retransmissions_total", "site", "s2") > 0 &&
			reg.CounterValue("dvp_vmsg_dup_drops_total", "site", "s1", "peer", "s2") > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	tc.net.SetFilter(nil)
	tc.waitQuiescent(item, 2*time.Second)

	retx := reg.CounterValue("dvp_vmsg_retransmissions_total", "site", "s2")
	if retx == 0 {
		t.Error("expected retransmissions > 0 while acks were cut")
	}
	if got := tc.sites[1].Stats().Retransmissions; got != retx {
		t.Errorf("metrics retransmissions = %d, Stats() = %d", retx, got)
	}
	if dups := reg.CounterValue("dvp_vmsg_dup_drops_total", "site", "s1", "peer", "s2"); dups == 0 {
		t.Error("expected duplicate drops > 0 at the receiver")
	}
	// Exactly-once: one Vm created, one accepted, however many resends.
	if got := reg.CounterValue("dvp_vmsg_created_total", "site", "s2", "peer", "s1"); got != 1 {
		t.Errorf("vm created = %d, want 1", got)
	}
	if got := reg.CounterValue("dvp_vmsg_accepted_total", "site", "s1", "peer", "s2"); got != 1 {
		t.Errorf("vm accepted = %d, want 1", got)
	}
	if n := tc.sites[1].VM().PendingCount(ident.SiteID(1)); n != 0 {
		t.Errorf("pending after heal = %d, want 0", n)
	}
	if total := tc.globalTotal(item); total != 5 {
		t.Errorf("global total = %d, want 5", total)
	}
}

// A committed multi-site reserve must leave a trace holding all seven
// protocol steps, in order, with the committed outcome.
func TestTraceSevenSteps(t *testing.T) {
	tc, _, ring := obsCluster(t, 2, simnet.Config{Seed: 7})
	item := ident.ItemID("flight/B")
	tc.createItem(item, 20)

	res := tc.sites[0].Run(&txn.Txn{
		Ops:   []txn.ItemOp{{Item: item, Op: core.Decr{M: 15}}},
		Ask:   txn.AskAll,
		Label: "reserve",
	})
	if !res.Committed() {
		t.Fatalf("reserve: %v", res.Status)
	}

	traces := ring.Last(10)
	var got *obs.Trace
	for _, tr := range traces {
		if tr.Label == "reserve" && tr.Outcome == "committed" {
			got = tr
		}
	}
	if got == nil {
		t.Fatalf("no committed reserve trace in %d traces", len(traces))
	}
	if got.Site != "s1" {
		t.Errorf("trace site = %q, want s1", got.Site)
	}
	if got.TS == 0 {
		t.Error("trace has no timestamp")
	}
	want := []string{"admit", "cc-check", "lock", "ask", "vm-accept", "wal-flush", "apply"}
	var names []string
	for _, st := range got.Steps {
		names = append(names, st.Name)
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("trace steps = %v, want %v", names, want)
	}
	prev := int64(-1)
	for _, st := range got.Steps {
		if st.AtMicros < prev {
			t.Errorf("step %s at %dµs precedes prior step at %dµs", st.Name, st.AtMicros, prev)
		}
		prev = st.AtMicros
	}
}

// The registry render must be well-formed even while sites are live:
// vmsg's pending gauge function takes the manager lock at exposition.
func TestMetricsRenderWhileLive(t *testing.T) {
	tc, reg, _ := obsCluster(t, 3, simnet.Config{Seed: 9})
	item := ident.ItemID("sku/x")
	tc.createItem(item, 30)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tc.sites[i%3].Run(&txn.Txn{
				Ops:   []txn.ItemOp{{Item: item, Op: core.Decr{M: 1}}},
				Ask:   txn.AskAll,
				Label: "reserve",
			})
		}
	}()
	for i := 0; i < 50; i++ {
		if out := reg.Render(); out == "" {
			t.Error("empty render from live registry")
		}
	}
	<-done

	out := reg.Render()
	for _, want := range []string{
		"dvp_site_txn_total{outcome=\"committed\",site=\"s1\"}",
		"dvp_site_txn_seconds_bucket",
		"dvp_vmsg_pending{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s", want)
		}
	}
}
