package site

import (
	"sync"

	"dvp/internal/ident"
	"dvp/internal/wire"
)

// flowClocks instruments value flow for exact serializability
// checking, as a per-item *vector clock*: one component per site,
// counting the writers committed at that site. Every value-carrying
// Vm ships the sender's current vector; the receiver max-merges it on
// acceptance.
//
// The invariant this buys is exact: a full read R observed writer W
// (the k-th writer at site j) if and only if R's merged vector has
// component j ≥ k — because a site's quota always embodies the effects
// of exactly its locally-committed writers plus whatever flowed in,
// and the vector travels with (and only with) the value. The checker
// in internal/cc replays observation sets from these vectors, which
// verifies Conc2 histories (whose equivalent serial order uses the
// §6.2 proof's hypothetical, unobservable timestamps) as well as
// Conc1's.
//
// A scalar (Lamport-style) position is NOT sound here: positions on
// independent flow paths are incomparable, and ordering by them
// fabricates observation where none occurred.
//
// Flow vectors are volatile diagnostics: they reset on crash, so the
// checker applies to crash-free histories (recovery correctness has
// its own tests).
type flowClocks struct {
	mu  sync.Mutex
	vec map[ident.ItemID]map[ident.SiteID]uint64
}

// FlowVec is one item's value-flow vector: site → writers observed.
type FlowVec map[ident.SiteID]uint64

// Entries converts to the wire representation.
func (v FlowVec) Entries() []wire.FlowEntry {
	if len(v) == 0 {
		return nil
	}
	out := make([]wire.FlowEntry, 0, len(v))
	for _, s := range ident.SortSites(sitesOf(v)) {
		out = append(out, wire.FlowEntry{Site: s, Count: v[s]})
	}
	return out
}

func sitesOf(v FlowVec) []ident.SiteID {
	out := make([]ident.SiteID, 0, len(v))
	for s := range v {
		out = append(out, s)
	}
	return out
}

func newFlowClocks() *flowClocks {
	return &flowClocks{vec: make(map[ident.ItemID]map[ident.SiteID]uint64)}
}

func (f *flowClocks) itemVec(item ident.ItemID) map[ident.SiteID]uint64 {
	v, ok := f.vec[item]
	if !ok {
		v = make(map[ident.SiteID]uint64)
		f.vec[item] = v
	}
	return v
}

// writerCommit records a committed writer at this site and returns its
// local writer index (its identity is (site, index)).
func (f *flowClocks) writerCommit(item ident.ItemID, self ident.SiteID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.itemVec(item)
	v[self]++
	return v[self]
}

// snapshot copies the item's current vector (a reader's observation
// set, or the payload stamped onto an outgoing grant).
func (f *flowClocks) snapshot(item ident.ItemID) FlowVec {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.itemVec(item)
	out := make(FlowVec, len(v))
	for s, c := range v {
		out[s] = c
	}
	return out
}

// merge folds a received vector into the item's (component-wise max).
func (f *flowClocks) merge(item ident.ItemID, in FlowVec) {
	if len(in) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.itemVec(item)
	for s, c := range in {
		if c > v[s] {
			v[s] = c
		}
	}
}

// reset clears all vectors (crash).
func (f *flowClocks) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.vec = make(map[ident.ItemID]map[ident.SiteID]uint64)
}
