package site

import (
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// This file is the message router: the network entry point that folds
// piggybacked state and dispatches by message kind, plus the outbound
// send helpers. Handlers (inbound_request.go, inbound_vm.go) touch
// only admission stripes, waiter shards and atomics — never s.mu.

// handle is the network entry point. It folds the piggybacked Lamport
// clock and Vm acknowledgement into local state (§4.2), then
// dispatches by message kind. Each handler serializes on the target
// item's admission stripe — per-item arrival order, which is all
// Conc1 needs; under Conc2 the single stripe restores the paper's
// whole-site "processed in the order of their arrival" model.
func (s *Site) handle(env *wire.Envelope) {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if !s.Up() {
		return
	}

	s.lamport.Observe(env.Lamport)
	s.vm.OnAck(env.From, env.AckUpTo)

	switch m := env.Msg.(type) {
	case *wire.Request:
		s.handleRequest(env.From, m)
	case *wire.Vm:
		s.handleVm(env.From, m)
	case *wire.VmBatch:
		s.handleVmBatch(env.From, m)
	case *wire.VmAck:
		s.vm.OnAck(env.From, m.UpTo)
	case *wire.DemandAdvert:
		s.demand.observeAdvert(env.From, m.Entries, s.cfg.Clock.Now())
		s.obsm.advertsRecv.Inc()
	case *wire.QuotaQuery:
		s.send(env.From, &wire.QuotaReply{
			Nonce: m.Nonce,
			Item:  m.Item,
			Value: s.cfg.DB.Value(m.Item),
			Known: true,
		})
	default:
		// Baseline traffic or introspection replies: not ours.
	}
}

// send stamps and dispatches one message with piggybacked Lamport
// clock and cumulative Vm ack (§4.2).
func (s *Site) send(to ident.SiteID, msg wire.Msg) {
	env := &wire.Envelope{
		To:      to,
		Lamport: tstamp.Make(s.lamport.Current(), s.cfg.ID),
		AckUpTo: s.vm.AckFor(to),
		Msg:     msg,
	}
	// Send errors are indistinguishable from message loss to the
	// protocol; the failure model already covers loss.
	_ = s.cfg.Endpoint.Send(env)
}

// sendVm transmits one real message for a virtual message.
func (s *Site) sendVm(v wal.VmOut) {
	s.send(v.To, &wire.Vm{
		Seq: v.Seq, Item: v.Item, Amount: v.Amount, ReqTxn: v.ReqTxn,
		FlowVec: v.FlowVec, Trace: v.Trace,
	})
}

// reportRds fires the OnRds hook for one redistribution half. Zero
// deltas (full-read "I hold nothing" responses) are not halves of
// anything and are skipped.
func (s *Site) reportRds(ts tstamp.TS, item ident.ItemID, delta core.Value) {
	if s.cfg.OnRds != nil && delta != 0 {
		s.cfg.OnRds(RdsInfo{TS: ts, Site: s.cfg.ID, Item: item, Delta: delta})
	}
}

// flowVecFromEntries converts wire form to the merge form.
func flowVecFromEntries(es []wire.FlowEntry) FlowVec {
	if len(es) == 0 {
		return nil
	}
	out := make(FlowVec, len(es))
	for _, e := range es {
		out[e.Site] = e.Count
	}
	return out
}
