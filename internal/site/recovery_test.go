package site

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/txn"
)

func TestCrashAbortsInFlightAndRecovers(t *testing.T) {
	tc := newTestCluster(t, 3, simnet.Config{Seed: 20}, nil)
	tc.createItem("flight/A", 0) // unsatisfiable: txns will wait

	done := make(chan *txn.Result, 1)
	go func() {
		done <- tc.sites[0].Run(&txn.Txn{
			Ops:     []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 5}}},
			Timeout: 5 * time.Second, // would hang if crash didn't abort it
			Ask:     txn.AskAll,
		})
	}()
	// Crash only once the transaction is provably in its step-3 wait
	// (lock held), so the SiteDown path is the one under test.
	waitUntil(t, 2*time.Second, "txn holds the lock", func() bool {
		return lockHeld(tc.sites[0], "flight/A")
	})
	tc.sites[0].Crash()
	select {
	case res := <-done:
		if res.Status != txn.StatusSiteDown {
			t.Errorf("crashed txn status = %v, want site-down", res.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash did not abort the waiting transaction (blocking!)")
	}

	if err := tc.sites[0].Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Site is usable immediately.
	res := tc.sites[0].Run(cancel("flight/A", 7))
	if !res.Committed() {
		t.Errorf("post-restart txn: %v", res.Status)
	}
	tc.waitQuiescent("flight/A", time.Second)
	if got := tc.globalTotal("flight/A"); got != 7 {
		t.Errorf("N = %d, want 7", got)
	}
}

func TestRecoveryIsIndependentOfNetwork(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 21}, nil)
	tc.createItem("flight/A", 100)
	// Generate log history.
	for i := 0; i < 5; i++ {
		if res := tc.sites[1].Run(reserve("flight/A", 2)); !res.Committed() {
			t.Fatal(res.Status)
		}
	}
	tc.sites[1].Crash()
	// Total partition: recovery must not care (§7 independence).
	tc.net.Partition([]ident.SiteID{1}, []ident.SiteID{2}, []ident.SiteID{3}, []ident.SiteID{4})
	if err := tc.sites[1].Restart(); err != nil {
		t.Fatalf("restart under partition: %v", err)
	}
	// And processing resumes on local quota alone.
	res := tc.sites[1].Run(reserve("flight/A", 3))
	if !res.Committed() {
		t.Errorf("post-recovery local txn during partition: %v", res.Status)
	}
	if v := tc.sites[1].DB().Value("flight/A"); v != 12 {
		t.Errorf("site 2 quota = %d, want 12 (25-10-3)", v)
	}
}

func TestCrashedGrantorDoesNotLoseValue(t *testing.T) {
	// A site grants quota (Vm created, logged) and crashes before the
	// real message survives; after restart the Vm is retransmitted
	// and the value arrives. "A Vm is never lost."
	tc := newTestCluster(t, 2, simnet.Config{Seed: 22, LossProb: 1.0}, nil)
	tc.createItem("flight/A", 20) // 10 each

	// With 100% loss, site 1's request can't even reach site 2.
	// Drop loss after installing: we only want to lose the Vm's first
	// transmission. Instead: run the request with loss off, then cut
	// site 2 the moment it grants. Simpler deterministic approach:
	// drive the grant path directly.
	tc.net.Close()

	tc2 := newTestCluster(t, 2, simnet.Config{Seed: 23}, nil)
	tc2.createItem("flight/A", 20)
	// Cut the granting site's outbound link so its Vm cannot arrive.
	tc2.net.SetLink(2, 1, false)
	res := tc2.sites[0].Run(&txn.Txn{
		Ops:     []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 15}}},
		Timeout: 60 * time.Millisecond,
		Ask:     txn.AskAll,
	})
	if res.Status != txn.StatusTimeout {
		t.Fatalf("txn with cut reply link: %v, want timeout", res.Status)
	}
	// Site 2 granted (logged, deducted): its quota dropped; value is
	// in flight, frozen behind the dead link.
	tc2.net.Quiesce()
	if v := tc2.sites[1].DB().Value("flight/A"); v >= 10 {
		t.Fatalf("grantor quota = %d, expected deduction", v)
	}
	if got := tc2.globalTotal("flight/A"); got != 20 {
		t.Fatalf("N = %d with Vm in flight, want 20", got)
	}
	// Crash and restart the grantor; the pending Vm must survive via
	// the log.
	tc2.sites[1].Crash()
	if err := tc2.sites[1].Restart(); err != nil {
		t.Fatal(err)
	}
	if len(tc2.sites[1].VM().PendingAll()) == 0 {
		t.Fatal("pending Vm lost across crash")
	}
	// Restore the link: retransmission delivers, value lands at 1.
	tc2.net.SetLink(2, 1, true)
	tc2.waitQuiescent("flight/A", 2*time.Second)
	if got := tc2.globalTotal("flight/A"); got != 20 {
		t.Errorf("N = %d after heal, want 20", got)
	}
	var at1 core.Value
	for _, s := range tc2.sites {
		at1 += s.DB().Value("flight/A")
	}
	if at1 != 20 {
		t.Errorf("on-site total = %d, want 20 (nothing left in flight)", at1)
	}
}

func TestCheckpointBoundsRecovery(t *testing.T) {
	tc := newTestCluster(t, 2, simnet.Config{Seed: 24}, nil)
	tc.createItem("flight/A", 10)
	for i := 0; i < 20; i++ {
		tc.sites[0].Run(cancel("flight/A", 1))
	}
	if err := tc.sites[0].Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tc.sites[0].Run(cancel("flight/A", 1))
	}
	tc.sites[0].Crash()
	if err := tc.sites[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if v := tc.sites[0].DB().Value("flight/A"); v != 28 {
		t.Errorf("value after checkpointed recovery = %d, want 28", v)
	}
	// Post-recovery transactions must draw fresh timestamps (no
	// duplicate TxnIDs): run more txns and verify they commit.
	for i := 0; i < 3; i++ {
		if res := tc.sites[0].Run(cancel("flight/A", 1)); !res.Committed() {
			t.Errorf("post-checkpoint-recovery txn %d: %v", i, res.Status)
		}
	}
}

func TestAllSitesCrashOneRecoversAndWorks(t *testing.T) {
	// §7: "even if all sites fail and subsequently one site recovers
	// ... it can begin doing some useful work".
	tc := newTestCluster(t, 3, simnet.Config{Seed: 25}, nil)
	tc.createItem("flight/A", 30)
	for _, s := range tc.sites {
		s.Crash()
	}
	if err := tc.sites[2].Restart(); err != nil {
		t.Fatal(err)
	}
	res := tc.sites[2].Run(reserve("flight/A", 5))
	if !res.Committed() {
		t.Errorf("lone recovered site: %v", res.Status)
	}
	if v := tc.sites[2].DB().Value("flight/A"); v != 5 {
		t.Errorf("quota = %d, want 5", v)
	}
}

// TestConcurrencySerializabilitySoak runs a randomized concurrent
// workload (with faults) and verifies the paper's §6 correctness
// criterion plus conservation at the end.
func TestConcurrencySerializabilitySoak(t *testing.T) {
	const nSites = 5
	const total = core.Value(500)
	tc := newTestCluster(t, nSites, simnet.Config{
		Seed: 26, LossProb: 0.05, DupProb: 0.05, MaxDelay: time.Millisecond,
	}, nil)
	tc.createItem("acct/x", total)
	tc.createItem("acct/y", total)

	var wg sync.WaitGroup
	for w := 0; w < nSites; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			s := tc.sites[w]
			for i := 0; i < 40; i++ {
				item := ident.ItemID("acct/x")
				if rng.Intn(2) == 0 {
					item = "acct/y"
				}
				var tx *txn.Txn
				switch rng.Intn(4) {
				case 0:
					tx = cancel(item, core.Value(rng.Intn(5)))
				case 1, 2:
					tx = reserve(item, core.Value(rng.Intn(20)))
					tx.Timeout = 60 * time.Millisecond
				case 3:
					tx = readItem(item)
					tx.Timeout = 60 * time.Millisecond
				}
				s.Run(tx)
			}
		}(w)
	}
	wg.Wait()
	tc.waitQuiescent("acct/x", 3*time.Second)

	// Conservation.
	initial := map[ident.ItemID]core.Value{"acct/x": total, "acct/y": total}
	final := map[ident.ItemID]core.Value{
		"acct/x": tc.globalTotal("acct/x"),
		"acct/y": tc.globalTotal("acct/y"),
	}
	// Serializability subject to redistribution (§6), including every
	// full-read observation — via the Conc1 timestamp-order replay AND
	// the scheme-agnostic value-flow checker.
	committed := tc.committedTxns()
	if err := cc.CheckSerializable(initial, final, committed); err != nil {
		t.Errorf("history not serializable (TS order): %v", err)
	}
	if err := cc.CheckSerializableFlow(initial, final, committed); err != nil {
		t.Errorf("history not serializable (flow order): %v", err)
	}
}

// TestSoakWithCrashes adds site crashes/restarts to the soak and
// re-verifies conservation (reads are excluded from workload since a
// crashed site's share is temporarily inaccessible, per §8).
func TestSoakWithCrashes(t *testing.T) {
	const nSites = 4
	const total = core.Value(400)
	tc := newTestCluster(t, nSites, simnet.Config{
		Seed: 27, LossProb: 0.05, MaxDelay: time.Millisecond,
	}, nil)
	tc.createItem("acct/x", total)

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() { // crash/restart loop on site 4
		defer chaos.Done()
		s := tc.sites[3]
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			s.Crash()
			time.Sleep(10 * time.Millisecond)
			if err := s.Restart(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < nSites; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 200))
			s := tc.sites[w]
			for i := 0; i < 30; i++ {
				if rng.Intn(2) == 0 {
					s.Run(cancel("acct/x", core.Value(rng.Intn(4))))
				} else {
					tx := reserve("acct/x", core.Value(rng.Intn(15)))
					tx.Timeout = 50 * time.Millisecond
					s.Run(tx)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaos.Wait()
	if !tc.sites[3].Up() {
		tc.sites[3].Restart()
	}
	tc.waitQuiescent("acct/x", 5*time.Second)

	var committedDelta core.Value
	for _, ci := range tc.committedTxns() {
		committedDelta += ci.Deltas["acct/x"]
	}
	want := total + committedDelta
	if got := tc.globalTotal("acct/x"); got != want {
		t.Errorf("N = %d, want %d — value lost or duplicated across crashes", got, want)
	}
}
