package site

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/recovery"
	"dvp/internal/simnet"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/vmsg"
)

// TestLogIsCompleteRecord rebuilds a site's store purely from its log
// into a fresh Durable and compares with the live store: the log must
// be a complete record of all durable state (modulo the initial quota
// placement, which the simulation installs out-of-band — so we start
// the replica from the same initial placement).
func TestLogIsCompleteRecord(t *testing.T) {
	tc := newTestCluster(t, 3, simnet.Config{Seed: 40, MaxDelay: time.Millisecond}, nil)
	tc.createItem("a", 90)
	tc.createItem("b", 30)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		s := tc.sites[rng.Intn(3)]
		switch rng.Intn(3) {
		case 0:
			s.Run(cancel("a", core.Value(rng.Intn(4))))
		case 1:
			tx := reserve("a", core.Value(rng.Intn(30)))
			tx.Timeout = 50 * time.Millisecond
			s.Run(tx)
		case 2:
			tx := reserve("b", core.Value(rng.Intn(8)))
			tx.Timeout = 50 * time.Millisecond
			s.Run(tx)
		}
	}
	tc.waitQuiescent("a", 3*time.Second)

	for i, s := range tc.sites {
		replica := store.New()
		replica.Create("a", core.EvenShares(90, 3)[i])
		replica.Create("b", core.EvenShares(30, 3)[i])
		vm := vmsg.NewManager()
		clk := tstamp.NewClock(s.ID())
		if _, err := recovery.Recover(tc.logs[i], replica, vm, clk); err != nil {
			t.Fatalf("site %v: %v", s.ID(), err)
		}
		for _, item := range []ident.ItemID{"a", "b"} {
			if got, want := replica.Value(item), s.DB().Value(item); got != want {
				t.Errorf("site %v %s: log replay %d, live store %d", s.ID(), item, got, want)
			}
		}
	}
}

// TestConcurrentFullReadsResolveByRetry exercises the livelock the
// paper acknowledges (§8): two sites reading the same item at once can
// abort each other, but retries make progress.
func TestConcurrentFullReadsResolveByRetry(t *testing.T) {
	tc := newTestCluster(t, 3, simnet.Config{Seed: 41, MaxDelay: time.Millisecond}, nil)
	tc.createItem("x", 60)
	// Plain lockstep retries livelock symmetrically (each reader's
	// lock makes it decline the other's request, §8's noted hazard);
	// jittered backoff is the "additional mechanism" that avoids it.
	var wg sync.WaitGroup
	results := make([]*txn.Result, 2)
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(k) + 77))
			tx := readItem("x")
			tx.Timeout = 60 * time.Millisecond
			for attempt := 0; attempt < 10; attempt++ {
				results[k] = tc.sites[k].Run(tx)
				if results[k].Committed() {
					return
				}
				time.Sleep(time.Duration(rng.Intn(40*(attempt+1))) * time.Millisecond)
			}
		}(k)
	}
	wg.Wait()
	for k, res := range results {
		if !res.Committed() {
			t.Errorf("reader %d never committed across 10 retries", k)
		} else if res.Reads["x"] != 60 {
			t.Errorf("reader %d observed %d, want 60", k, res.Reads["x"])
		}
	}
}

// TestConc2Cluster runs the site engine under Conc2 with the §6.2
// network assumptions and checks conservation.
func TestConc2Cluster(t *testing.T) {
	tc := newTestCluster(t, 3,
		simnet.Config{Seed: 42, OrderPreserving: true, MaxDelay: time.Millisecond},
		func(i int, c *Config) { c.CC = cc.New(cc.Conc2) })
	tc.createItem("x", 90)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tx := reserve("x", 2)
				tx.Timeout = 60 * time.Millisecond
				tc.sites[w].Run(tx)
			}
		}(w)
	}
	wg.Wait()
	tc.waitQuiescent("x", 2*time.Second)
	var deltas core.Value
	for _, ci := range tc.committedTxns() {
		deltas += ci.Deltas["x"]
	}
	if got := tc.globalTotal("x"); got != 90+deltas {
		t.Errorf("N = %d, want %d", got, 90+deltas)
	}
}

// TestGrantPolicies drives the same shortfall against each split
// policy and verifies each one conserves and commits.
func TestGrantPolicies(t *testing.T) {
	for _, pol := range []core.SplitPolicy{
		core.GrantExact{}, core.GrantAll{}, core.GrantHalfExcess{}, core.GrantFraction{Num: 1, Den: 4},
	} {
		t.Run(pol.String(), func(t *testing.T) {
			tc := newTestCluster(t, 2, simnet.Config{Seed: 43, MaxDelay: time.Millisecond},
				func(i int, c *Config) { c.Grant = pol })
			tc.createItem("x", 40) // 20 each
			tx := reserve("x", 30) // needs 10 from the peer
			tx.Timeout = 100 * time.Millisecond
			res := tc.sites[0].Run(tx)
			if !res.Committed() {
				t.Fatalf("reserve under %v: %v", pol, res.Status)
			}
			tc.waitQuiescent("x", 2*time.Second)
			if got := tc.globalTotal("x"); got != 10 {
				t.Errorf("N = %d, want 10", got)
			}
		})
	}
}

// TestAskPoliciesReachPeers verifies fanout differences are visible in
// request counts.
func TestAskPoliciesReachPeers(t *testing.T) {
	for _, tc2 := range []struct {
		ask  txn.AskPolicy
		want int
	}{
		{txn.AskOne, 1}, {txn.AskTwo, 2}, {txn.AskAll, 4},
	} {
		tc := newTestCluster(t, 5, simnet.Config{Seed: 44, MaxDelay: time.Millisecond}, nil)
		tc.createItem("x", 50)
		tx := reserve("x", 20) // shortfall: local 10 < 20
		tx.Ask = tc2.ask
		tx.Timeout = 100 * time.Millisecond
		res := tc.sites[0].Run(tx)
		if res.RequestsSent != tc2.want {
			t.Errorf("%v sent %d requests, want %d", tc2.ask, res.RequestsSent, tc2.want)
		}
		_ = res
		tc.net.Close()
	}
}

// TestRandomFaultScheduleProperty runs short workloads under randomly
// generated fault schedules (partitions, link cuts, heals) and checks
// conservation afterwards — the paper's robustness claim as a
// property test.
func TestRandomFaultScheduleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-schedule soak")
	}
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 500))
			n := 3 + rng.Intn(3)
			tc := newTestCluster(t, n, simnet.Config{
				Seed:     int64(trial) + 900,
				LossProb: rng.Float64() * 0.2,
				MaxDelay: time.Millisecond,
			}, nil)
			total := core.Value(100 * n)
			tc.createItem("x", total)

			stop := make(chan struct{})
			var chaos sync.WaitGroup
			chaos.Add(1)
			go func() { // fault injector
				defer chaos.Done()
				for {
					select {
					case <-stop:
						tc.net.Heal()
						return
					case <-time.After(time.Duration(10+rng.Intn(30)) * time.Millisecond):
					}
					switch rng.Intn(3) {
					case 0:
						// Random two-way partition.
						var a, b []ident.SiteID
						for i := 1; i <= n; i++ {
							if rng.Intn(2) == 0 {
								a = append(a, ident.SiteID(i))
							} else {
								b = append(b, ident.SiteID(i))
							}
						}
						tc.net.Partition(a, b)
					case 1:
						tc.net.SetLink(ident.SiteID(rng.Intn(n)+1), ident.SiteID(rng.Intn(n)+1), false)
					case 2:
						tc.net.Heal()
						for i := 1; i <= n; i++ {
							for j := 1; j <= n; j++ {
								tc.net.SetLink(ident.SiteID(i), ident.SiteID(j), true)
							}
						}
					}
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 25; i++ {
						var tx *txn.Txn
						if r.Intn(3) == 0 {
							tx = cancel("x", core.Value(r.Intn(4)))
						} else {
							tx = reserve("x", core.Value(r.Intn(10)))
						}
						tx.Timeout = 40 * time.Millisecond
						tc.sites[w].Run(tx)
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			chaos.Wait()
			tc.waitQuiescent("x", 5*time.Second)

			var deltas core.Value
			for _, ci := range tc.committedTxns() {
				deltas += ci.Deltas["x"]
			}
			if got := tc.globalTotal("x"); got != total+deltas {
				t.Errorf("trial %d: N = %d, want %d (conservation under random faults)",
					trial, got, total+deltas)
			}
		})
	}
}
