package site

import (
	"sync"
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

// A retransmission sweep with several Vm pending toward one peer must
// coalesce them into KVmBatch envelopes (one frame, many Vm, one
// cumulative ack back) — and the batch must still deliver every value
// exactly once. The simnet tap observes the actual envelopes.
func TestRetransmitCoalescesIntoVmBatch(t *testing.T) {
	tc := newTestCluster(t, 2, simnet.Config{Seed: 11}, nil)
	items := []ident.ItemID{"flight/A", "flight/B", "flight/C"}
	for _, it := range items {
		tc.createItem(it, 20) // 10 per site
	}

	// Tap: record the Vm count of every 2→1 value-carrying envelope.
	var mu sync.Mutex
	var batchSizes []int
	tc.net.SetTap(func(from, to ident.SiteID, kind wire.Kind, frame []byte) {
		if from != 2 || to != 1 || kind != wire.KVmBatch {
			return
		}
		env, err := wire.Unmarshal(frame)
		if err != nil {
			t.Errorf("tap: bad VmBatch frame: %v", err)
			return
		}
		mu.Lock()
		batchSizes = append(batchSizes, len(env.Msg.(*wire.VmBatch).Vms))
		mu.Unlock()
	})

	// Cut all value transfer 2→1 so site 2 accumulates pending Vm.
	tc.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return !((kind == wire.KVm || kind == wire.KVmBatch) && from == 2 && to == 1)
	})

	// Each reserve needs 5 from site 2; the granted Vm never arrives,
	// so the transaction times out while the value rides the pending
	// set. Three items → three Vm pending toward site 1.
	for _, it := range items {
		tc.sites[0].Run(&txn.Txn{
			Ops:   []txn.ItemOp{{Item: it, Op: core.Decr{M: 15}}},
			Ask:   txn.AskAll,
			Label: "reserve-" + string(it),
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for tc.sites[1].VM().PendingCount(1) < len(items) {
		if time.Now().After(deadline) {
			t.Fatalf("pending 2→1 = %d, want %d", tc.sites[1].VM().PendingCount(1), len(items))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Heal. The next retransmission tick must carry all three in one
	// envelope, and the values must land exactly once.
	tc.net.SetFilter(nil)
	for _, it := range items {
		tc.waitQuiescent(it, 2*time.Second)
	}

	mu.Lock()
	sizes := append([]int(nil), batchSizes...)
	mu.Unlock()
	if len(sizes) == 0 {
		t.Fatal("no KVmBatch envelope observed: retransmission did not coalesce")
	}
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	if max < len(items) {
		t.Errorf("largest VmBatch carried %d Vm, want %d (all pending to one peer in one envelope)", max, len(items))
	}
	for _, it := range items {
		if total := tc.globalTotal(it); total != 20 {
			t.Errorf("global total %s = %d, want 20 (exactly-once batch acceptance)", it, total)
		}
	}
}
