package site

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/vclock"
	"dvp/internal/wire"
)

// This file is the demand-driven rebalancing subsystem: each site
// tracks how fast its local quota is being consumed (plus what it
// could not serve), gossips that estimate to peers in DemandAdvert
// messages, and ships surplus toward the largest observed deficit with
// ordinary Rds transfers. The paper leaves "the best ways to
// distribute the data values among the sites" open (§8); this is the
// decentralized answer: no global view, no coordinator — every input
// is either local or carried by the existing envelope path, and every
// transfer is a Virtual Message, so partitions and crashes cannot lose
// or duplicate value.

// RebalanceConfig tunes the per-site demand-driven rebalancer.
type RebalanceConfig struct {
	// Enabled starts the rebalancer goroutine with the site.
	Enabled bool
	// Interval is the base advert/rebalance pace. Each tick is
	// jittered over [Interval/2, 3·Interval/2) so concurrent sites
	// never fall into lockstep rounds. Default 50ms.
	Interval time.Duration
	// MinTransfer is the hysteresis dead-band: ship surplus only when
	// both the local surplus and the peer's deficit reach it. Default 4.
	MinTransfer core.Value
	// Cooldown is the minimum gap between transfers of one item from
	// this site. Default 2·Interval.
	Cooldown time.Duration
	// HalfLife sets how fast the demand EWMA decays. Default 8·Interval.
	HalfLife time.Duration
	// AdvertStale bounds how old a peer's advert may be and still
	// count: older entries (and peers that have gone quiet — down or
	// partitioned away) drop out of the rebalancing view. Default
	// 4·Interval.
	AdvertStale time.Duration
	// Floor is the fraction of the even share every site keeps
	// regardless of demand (core.DemandShares). Default 0.25.
	Floor float64
	// Seed drives the tick jitter (clusters derive a per-site seed).
	Seed int64
}

// withDefaults fills zero fields.
func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MinTransfer <= 0 {
		c.MinTransfer = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 8 * c.Interval
	}
	if c.AdvertStale <= 0 {
		c.AdvertStale = 4 * c.Interval
	}
	if c.Floor <= 0 {
		c.Floor = 0.25
	}
	if c.Floor > 1 {
		c.Floor = 1
	}
	return c
}

// itemDemand is one item's demand cell: an impulse-decay EWMA (each
// recorded amount is added whole; the accumulator halves every
// HalfLife) plus the hysteresis timestamp of the item's last outbound
// rebalance transfer.
type itemDemand struct {
	ewma         float64
	lastSample   time.Time
	lastTransfer time.Time
}

// decayTo brings the accumulator forward to now.
func (d *itemDemand) decayTo(now time.Time, halfLife time.Duration) {
	if d.lastSample.IsZero() {
		d.lastSample = now
		return
	}
	dt := now.Sub(d.lastSample)
	if dt <= 0 {
		return
	}
	d.ewma *= math.Exp2(-float64(dt) / float64(halfLife))
	d.lastSample = now
}

// peerAdvert is the latest demand advert received from one peer.
type peerAdvert struct {
	at      time.Time
	entries map[ident.ItemID]wire.DemandEntry
}

// demandTracker aggregates local consumption/deficit signals and peer
// adverts for one site. All methods are safe for concurrent use; the
// single mutex is fine because recording is a few float ops and the
// commit path touches it outside the stripes.
type demandTracker struct {
	cfg RebalanceConfig

	// Exposition hooks, set once by instrument (nil-safe without).
	reg   *obs.Registry
	site  string
	clock vclock.Clock

	mu      sync.Mutex
	items   map[ident.ItemID]*itemDemand
	adverts map[ident.SiteID]*peerAdvert
}

// instrument enables per-item demand gauges: each item's decayed EWMA
// is exported as dvp_rebalance_demand{site,item} at exposition time.
func (t *demandTracker) instrument(reg *obs.Registry, site string, clock vclock.Clock) {
	t.reg = reg
	t.site = site
	t.clock = clock
}

func newDemandTracker(cfg RebalanceConfig) *demandTracker {
	return &demandTracker{
		cfg:     cfg,
		items:   make(map[ident.ItemID]*itemDemand),
		adverts: make(map[ident.SiteID]*peerAdvert),
	}
}

// cell returns item's demand cell, creating it on first use (and lazily
// registering its demand gauge — registration is idempotent, so cells
// recreated after a crash re-attach to the same series). Caller holds
// t.mu.
func (t *demandTracker) cell(item ident.ItemID) *itemDemand {
	d, ok := t.items[item]
	if !ok {
		d = &itemDemand{}
		t.items[item] = d
		if t.reg != nil {
			it := item
			t.reg.GaugeFunc("dvp_rebalance_demand",
				func() float64 { return t.demand(it, t.clock.Now()) },
				"site", t.site, "item", string(it))
		}
	}
	return d
}

// record folds amount units of observed demand (consumption or
// shortfall) for item into the EWMA.
func (t *demandTracker) record(item ident.ItemID, amount core.Value, now time.Time) {
	if amount <= 0 {
		return
	}
	t.mu.Lock()
	d := t.cell(item)
	d.decayTo(now, t.cfg.HalfLife)
	d.ewma += float64(amount)
	t.mu.Unlock()
}

// demand reads item's decayed demand estimate.
func (t *demandTracker) demand(item ident.ItemID, now time.Time) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.items[item]
	if !ok {
		return 0
	}
	d.decayTo(now, t.cfg.HalfLife)
	return d.ewma
}

// reset clears volatile demand state (crash discards it; demand is a
// hint, rebuilt from live traffic after restart).
func (t *demandTracker) reset() {
	t.mu.Lock()
	t.items = make(map[ident.ItemID]*itemDemand)
	t.adverts = make(map[ident.SiteID]*peerAdvert)
	t.mu.Unlock()
}

// observeAdvert installs a peer's latest advert, replacing the
// previous one wholesale (adverts carry the peer's full item view).
func (t *demandTracker) observeAdvert(from ident.SiteID, entries []wire.DemandEntry, now time.Time) {
	m := make(map[ident.ItemID]wire.DemandEntry, len(entries))
	for _, e := range entries {
		m[e.Item] = e
	}
	t.mu.Lock()
	t.adverts[from] = &peerAdvert{at: now, entries: m}
	t.mu.Unlock()
}

// peerShare is one reachable peer's advertised state for an item.
type peerShare struct {
	site   ident.SiteID
	demand float64
	have   core.Value
}

// peerView returns every peer with a fresh advert mentioning item.
// Peers whose adverts have aged past AdvertStale — down, partitioned
// away, or simply not advertising — are excluded: only currently
// reachable peers take part in rebalancing.
func (t *demandTracker) peerView(item ident.ItemID, now time.Time) []peerShare {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []peerShare
	for p, adv := range t.adverts {
		if now.Sub(adv.at) > t.cfg.AdvertStale {
			continue
		}
		e, ok := adv.entries[item]
		if !ok {
			continue
		}
		out = append(out, peerShare{site: p, demand: float64(e.Demand) / 1000, have: e.Have})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].site < out[j].site })
	return out
}

// cooldownOK reports whether item is outside its transfer cooldown,
// and if so stamps now as the last transfer time (test-and-set, so
// concurrent ticks cannot double-send).
func (t *demandTracker) cooldownOK(item ident.ItemID, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.cell(item)
	if !d.lastTransfer.IsZero() && now.Sub(d.lastTransfer) < t.cfg.Cooldown {
		return false
	}
	d.lastTransfer = now
	return true
}

// --- the per-site rebalancer loop -------------------------------------------

// maxAdvertItems bounds one advert's entry count; the hottest items
// win when a site holds more.
const maxAdvertItems = 256

// minDemandSignal is the quiescence threshold: when the whole view's
// demand has decayed below this, the item is left where it lies — no
// anticipatory reshuffling, so an idle cluster goes (and stays) quiet.
const minDemandSignal = 0.5

// SetRebalancePaused pauses (true) or resumes (false) this site's
// rebalancer ticks. The flag survives Crash/Restart — harness barriers
// pause rebalancing around their quiescent invariant checks even while
// they crash-cycle sites.
func (s *Site) SetRebalancePaused(p bool) { s.rebalPaused.Store(p) }

// rebalanceLoop is the per-site rebalancer goroutine: each jittered
// tick advertises local demand to every peer and ships at most one
// surplus transfer per item toward the largest observed deficit.
// Mirrors retransmitLoop's lifecycle (started by Start, joined by
// Crash).
func (s *Site) rebalanceLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	cfg := s.cfg.Rebalance
	rng := rand.New(rand.NewSource(cfg.Seed))
	for {
		// Jittered pace: uniform over [Interval/2, 3·Interval/2), so
		// concurrent sites' rounds drift apart instead of racing each
		// other's quota reads in lockstep.
		d := cfg.Interval/2 + time.Duration(rng.Int63n(int64(cfg.Interval)))
		select {
		case <-stop:
			return
		case <-s.cfg.Clock.After(d):
		}
		if s.rebalPaused.Load() {
			continue
		}
		s.advertiseDemand()
		s.rebalanceTick()
	}
}

// advertiseDemand gossips this site's per-item demand estimate and
// holdings to every peer. Fire-and-forget: adverts are advisory, the
// next tick resends, so loss costs one interval of staleness at most.
func (s *Site) advertiseDemand() {
	now := s.cfg.Clock.Now()
	items := s.cfg.DB.Items()
	entries := make([]wire.DemandEntry, 0, len(items))
	for _, item := range items {
		entries = append(entries, wire.DemandEntry{
			Item:   item,
			Demand: uint64(s.demand.demand(item, now)*1000 + 0.5),
			Have:   s.cfg.DB.Value(item),
		})
	}
	if len(entries) > maxAdvertItems {
		sort.Slice(entries, func(i, j int) bool { return entries[i].Demand > entries[j].Demand })
		entries = entries[:maxAdvertItems]
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Item < entries[j].Item })
	s.obsm.flight.Recordf(s.obsm.site, "advert-send", "items=%d peers=%d", len(entries), len(s.cfg.Peers)-1)
	for _, p := range s.peersExceptSelf() {
		s.send(p, &wire.DemandAdvert{Entries: entries})
		s.obsm.advertsSent.Inc()
	}
}

// rebalanceTick walks the local items and, for each, compares this
// site's holding against its demand-weighted share of what the
// reachable view holds. Surplus at least MinTransfer beyond the target
// ships to the single largest-deficit peer (one transfer per item per
// tick, bounding transfer volume); the per-item cooldown and the
// MinTransfer dead-band on both ends stop oscillation.
func (s *Site) rebalanceTick() {
	cfg := s.cfg.Rebalance
	now := s.cfg.Clock.Now()
	for _, item := range s.cfg.DB.Items() {
		view := s.demand.peerView(item, now)
		if len(view) == 0 {
			continue
		}
		myDemand := s.demand.demand(item, now)
		demands := make([]float64, 0, len(view)+1)
		demands = append(demands, myDemand)
		total := s.cfg.DB.Value(item)
		totalDemand := myDemand
		for _, ps := range view {
			demands = append(demands, ps.demand)
			total += ps.have
			totalDemand += ps.demand
		}
		if totalDemand < minDemandSignal {
			continue
		}
		targets := core.DemandShares(total, demands, cfg.Floor)
		surplus := s.cfg.DB.Value(item) - targets[0]
		if surplus < cfg.MinTransfer {
			continue
		}
		best, bestDeficit := -1, core.Value(0)
		for k, ps := range view {
			if deficit := targets[k+1] - ps.have; deficit > bestDeficit {
				best, bestDeficit = k, deficit
			}
		}
		if best < 0 || bestDeficit < cfg.MinTransfer {
			continue
		}
		amount := surplus
		if bestDeficit < amount {
			amount = bestDeficit
		}
		if !s.demand.cooldownOK(item, now) {
			continue
		}
		if err := s.SendValue(item, view[best].site, amount); err == nil {
			s.obsm.rebalTransfers.Inc()
			s.obsm.rebalMoved.Add(uint64(amount))
			s.obsm.flight.Recordf(s.obsm.site, "rebal-transfer",
				"item=%s to=%v amount=%d surplus=%d deficit=%d", item, view[best].site, amount, surplus, bestDeficit)
		} else {
			s.obsm.flight.Recordf(s.obsm.site, "rebal-skip", "item=%s to=%v amount=%d err=%v", item, view[best].site, amount, err)
		}
	}
}

// recordConsumption feeds committed consumption (negative deltas) into
// the demand EWMA — the "how fast is quota leaving here" half of the
// demand signal.
func (s *Site) recordConsumption(deltas map[ident.ItemID]core.Value) {
	if s.demand == nil {
		return
	}
	now := s.cfg.Clock.Now()
	for item, d := range deltas {
		if d < 0 {
			s.demand.record(item, -d, now)
		}
	}
}

// recordDeficit feeds a timeout abort's residual shortfall into the
// demand EWMA and the deficit counter — the "what we could not serve"
// half. Recording the unmet need, not just consumption, is what pulls
// quota toward sites whose demand exceeds their holding.
func (s *Site) recordDeficit(needs map[ident.ItemID]core.Value) {
	if s.demand == nil {
		return
	}
	now := s.cfg.Clock.Now()
	counted := false
	for item, need := range needs {
		if have := s.cfg.DB.Value(item); have < need {
			s.demand.record(item, need-have, now)
			counted = true
		}
	}
	if counted {
		s.obsm.deficitAborts.Inc()
	}
}
