package site

import (
	"sync"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// This file is the waiter-table layer: the registry of transactions
// blocked in §5 step 3 awaiting Vm. It is sharded by TxnID with one
// mutex per shard, so a commit registering its waiter, a message
// handler waking one, and Crash failing all of them never meet on a
// single lock — the whole-site freeze the old site mutex imposed.
// Entries are epoch-tagged: Crash drains shard by shard and wakes only
// the waiters of the epoch it is ending, so a transaction that parked
// across a Crash/Restart boundary observes exactly one SiteDown wake
// and a stale drain can never re-wake a waiter from a newer epoch.

// waiter tracks one transaction blocked in §5 step 3 awaiting Vm. The
// identity fields (id, ts, epoch, needs, reads) are immutable after
// publication; the progress fields (accepted, responded) are guarded
// by mu, which is only ever taken while holding no other lock.
type waiter struct {
	id    ident.TxnID
	ts    tstamp.TS
	epoch uint64
	// needs: item → minimum local quota required.
	needs map[ident.ItemID]core.Value
	// reads: items requiring a full gather (immutable set).
	reads  map[ident.ItemID]bool
	notify chan struct{}

	// mu guards the progress fields below — the per-waiter critical
	// section that used to ride the site mutex.
	mu sync.Mutex
	// responded tracks, per fully-read item, which peers have answered.
	responded map[ident.ItemID]map[ident.SiteID]bool
	accepted  int
}

// newWaiter builds a waiter for a transaction entering §5 step 3 in
// the given epoch, needing the listed per-item quota and full reads.
func newWaiter(id ident.TxnID, ts tstamp.TS, epoch uint64, needs map[ident.ItemID]core.Value, reads []ident.ItemID) *waiter {
	w := &waiter{
		id: id, ts: ts, epoch: epoch, needs: needs,
		reads:     make(map[ident.ItemID]bool, len(reads)),
		responded: make(map[ident.ItemID]map[ident.SiteID]bool, len(reads)),
		notify:    make(chan struct{}, 1),
	}
	for _, item := range reads {
		w.reads[item] = true
		w.responded[item] = make(map[ident.SiteID]bool)
	}
	return w
}

func (w *waiter) wake() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// noteAccept records one accepted Vm toward this waiter, marking the
// responding peer for a full-read item.
func (w *waiter) noteAccept(item ident.ItemID, from ident.SiteID) {
	w.mu.Lock()
	w.accepted++
	if w.reads[item] {
		w.responded[item][from] = true
	}
	w.mu.Unlock()
}

// acceptedCount reads the accepted tally (a late Vm may still be
// crediting concurrently; the count is a progress report, not a gate).
func (w *waiter) acceptedCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.accepted
}

// allResponded reports whether every listed peer has answered every
// full-read item.
func (w *waiter) allResponded(peers []ident.SiteID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for item := range w.reads {
		resp := w.responded[item]
		for _, p := range peers {
			if !resp[p] {
				return false
			}
		}
	}
	return true
}

// defaultWaiterShards is the waiter-table shard count when the config
// leaves it zero.
const defaultWaiterShards = 16

// waiterTable is the sharded waiter registry.
type waiterTable struct {
	shards []waiterShard
}

type waiterShard struct {
	mu sync.Mutex
	m  map[ident.TxnID]*waiter
}

func newWaiterTable(shards int) *waiterTable {
	if shards <= 0 {
		shards = defaultWaiterShards
	}
	t := &waiterTable{shards: make([]waiterShard, shards)}
	for i := range t.shards {
		t.shards[i].m = make(map[ident.TxnID]*waiter)
	}
	return t
}

// shard maps a TxnID to its shard (Fibonacci multiplicative hash: the
// low TxnID bits carry the site id, so plain modulo would pile every
// local transaction into one shard).
func (t *waiterTable) shard(id ident.TxnID) *waiterShard {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return &t.shards[h>>32%uint64(len(t.shards))]
}

// add publishes a waiter.
func (t *waiterTable) add(w *waiter) {
	sh := t.shard(w.id)
	sh.mu.Lock()
	sh.m[w.id] = w
	sh.mu.Unlock()
}

// remove unpublishes the waiter with the given id (a no-op if a drain
// already took it).
func (t *waiterTable) remove(id ident.TxnID) {
	sh := t.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// lookup returns the waiter with the given id, or nil.
func (t *waiterTable) lookup(id ident.TxnID) *waiter {
	sh := t.shard(id)
	sh.mu.Lock()
	w := sh.m[id]
	sh.mu.Unlock()
	return w
}

// drain removes and returns every waiter registered under the given
// epoch, with the per-shard counts (Crash's one flight event per epoch
// transition reports them). Waiters tagged with a different epoch —
// registered against a newer incarnation by a racing transaction —
// stay put: waking them here would double-fail a transaction that the
// next Crash, and only it, is entitled to fail.
func (t *waiterTable) drain(epoch uint64) (ws []*waiter, counts []int) {
	counts = make([]int, len(t.shards))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for id, w := range sh.m {
			if w.epoch != epoch {
				continue
			}
			delete(sh.m, id)
			ws = append(ws, w)
			counts[i]++
		}
		sh.mu.Unlock()
	}
	return ws, counts
}
