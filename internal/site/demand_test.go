package site

import (
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/wire"
)

// --- demandTracker unit tests ------------------------------------------------

func trackerCfg() RebalanceConfig {
	return RebalanceConfig{
		Interval:    10 * time.Millisecond,
		MinTransfer: 4,
		Cooldown:    20 * time.Millisecond,
		HalfLife:    40 * time.Millisecond,
		AdvertStale: 40 * time.Millisecond,
		Floor:       0.25,
	}.withDefaults()
}

func TestDemandEWMADecays(t *testing.T) {
	d := newDemandTracker(trackerCfg())
	t0 := time.Unix(1000, 0)
	d.record("x", 100, t0)
	if got := d.demand("x", t0); got != 100 {
		t.Errorf("demand at t0 = %v, want 100", got)
	}
	// One half-life later the accumulator has halved; two, quartered.
	if got := d.demand("x", t0.Add(40*time.Millisecond)); got < 49 || got > 51 {
		t.Errorf("demand after one half-life = %v, want ≈ 50", got)
	}
	if got := d.demand("x", t0.Add(80*time.Millisecond)); got < 24 || got > 26 {
		t.Errorf("demand after two half-lives = %v, want ≈ 25", got)
	}
	// Fresh samples pile on top of the decayed value.
	d.record("x", 10, t0.Add(80*time.Millisecond))
	if got := d.demand("x", t0.Add(80*time.Millisecond)); got < 34 || got > 36 {
		t.Errorf("demand after decay+sample = %v, want ≈ 35", got)
	}
	// Unknown items have zero demand and never allocate a cell.
	if got := d.demand("y", t0); got != 0 {
		t.Errorf("demand for unknown item = %v", got)
	}
}

func TestDemandAdvertFreshnessIsReachability(t *testing.T) {
	d := newDemandTracker(trackerCfg()) // AdvertStale = 40ms
	t0 := time.Unix(1000, 0)
	d.observeAdvert(2, []wire.DemandEntry{{Item: "x", Demand: 3000, Have: 7}}, t0)
	d.observeAdvert(3, []wire.DemandEntry{{Item: "x", Demand: 1000, Have: 9}}, t0.Add(30*time.Millisecond))

	view := d.peerView("x", t0.Add(35*time.Millisecond))
	if len(view) != 2 {
		t.Fatalf("fresh view has %d peers, want 2", len(view))
	}
	if view[0].site != 2 || view[0].demand != 3 || view[0].have != 7 {
		t.Errorf("view[0] = %+v, want site 2 demand 3 have 7", view[0])
	}

	// 45ms past site 2's advert it has aged out; site 3's is still
	// fresh. A silent peer — down or partitioned away — leaves the
	// rebalancing view exactly this way.
	view = d.peerView("x", t0.Add(45*time.Millisecond))
	if len(view) != 1 || view[0].site != 3 {
		t.Fatalf("stale-filtered view = %+v, want just site 3", view)
	}

	// A replacement advert wholesale-replaces the old one: items it no
	// longer mentions are gone.
	d.observeAdvert(3, []wire.DemandEntry{{Item: "y", Demand: 0, Have: 1}}, t0.Add(50*time.Millisecond))
	if view := d.peerView("x", t0.Add(50*time.Millisecond)); len(view) != 0 {
		t.Errorf("view after replacement advert = %+v, want empty", view)
	}
}

func TestDemandCooldownTestAndSet(t *testing.T) {
	d := newDemandTracker(trackerCfg()) // Cooldown = 20ms
	t0 := time.Unix(1000, 0)
	if !d.cooldownOK("x", t0) {
		t.Fatal("first transfer blocked")
	}
	if d.cooldownOK("x", t0.Add(10*time.Millisecond)) {
		t.Error("transfer inside the cooldown allowed")
	}
	if !d.cooldownOK("y", t0.Add(10*time.Millisecond)) {
		t.Error("cooldown leaked across items")
	}
	if !d.cooldownOK("x", t0.Add(25*time.Millisecond)) {
		t.Error("transfer after the cooldown blocked")
	}
}

// --- rebalancer end-to-end over simnet ---------------------------------------

// rebalCluster builds a 3-site cluster with the demand rebalancer on a
// fast clock; all value for "x" starts at site 1.
func rebalCluster(t *testing.T) *testCluster {
	t.Helper()
	tc := newTestCluster(t, 3, simnet.Config{Seed: 7}, func(i int, c *Config) {
		c.Rebalance = RebalanceConfig{
			Enabled:     true,
			Interval:    5 * time.Millisecond,
			MinTransfer: 4,
			Cooldown:    10 * time.Millisecond,
			HalfLife:    200 * time.Millisecond,
			AdvertStale: 25 * time.Millisecond,
			Floor:       0.25,
			Seed:        int64(i + 1),
		}
	})
	for i, s := range tc.sites {
		share := core.Value(0)
		if i == 0 {
			share = 90
		}
		if err := s.DB().Create("x", share); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

func TestRebalancerShipsTowardDeficit(t *testing.T) {
	tc := rebalCluster(t)
	// Site 3 cannot serve its demand (it holds nothing): feed the
	// tracker the deficit signal a timed-out transaction leaves behind.
	tc.sites[2].recordDeficit(map[ident.ItemID]core.Value{"x": 60})
	waitUntil(t, 2*time.Second, "surplus shipped to the deficit site", func() bool {
		return tc.sites[2].DB().Value("x") >= 40
	})
	tc.waitQuiescent("x", time.Second)
	if got := tc.globalTotal("x"); got != 90 {
		t.Errorf("N = %d after rebalancing, want 90 (Rds conserves value)", got)
	}
	// The no-demand site keeps only around its floor share.
	if v := tc.sites[1].DB().Value("x"); v > 30 {
		t.Errorf("idle site holds %d, want at most its floor-ish share", v)
	}
}

func TestRebalancerIdleClusterStaysQuiet(t *testing.T) {
	tc := rebalCluster(t)
	// Skewed holdings but zero demand anywhere: the quiescence
	// threshold must keep every unit where it lies — no anticipatory
	// reshuffling, no thrash.
	time.Sleep(100 * time.Millisecond) // ~20 ticks per site
	if v := tc.sites[0].DB().Value("x"); v != 90 {
		t.Errorf("idle cluster moved value: site 1 now holds %d, want 90", v)
	}
	for _, s := range tc.sites {
		if n := s.Stats().VmCreated; n != 0 {
			t.Errorf("site %v created %d Vm with zero demand", s.ID(), n)
		}
	}
}

func TestRebalancerPauseResume(t *testing.T) {
	tc := rebalCluster(t)
	for _, s := range tc.sites {
		s.SetRebalancePaused(true)
	}
	tc.sites[2].recordDeficit(map[ident.ItemID]core.Value{"x": 60})
	time.Sleep(60 * time.Millisecond) // ~12 ticks, all skipped
	if v := tc.sites[2].DB().Value("x"); v != 0 {
		t.Fatalf("paused rebalancer moved %d to site 3", v)
	}
	for _, s := range tc.sites {
		s.SetRebalancePaused(false)
	}
	waitUntil(t, 2*time.Second, "transfers resume after unpause", func() bool {
		return tc.sites[2].DB().Value("x") >= 40
	})
}

func TestRebalancerSkipsUnreachablePeers(t *testing.T) {
	tc := rebalCluster(t)
	// Cut site 3 off entirely, then give it deficit demand: its
	// adverts can no longer reach site 1, so after AdvertStale its
	// stale entry drops from the view and nothing ships into the void.
	tc.net.SetLinkBoth(1, 3, false)
	tc.net.SetLinkBoth(2, 3, false)
	time.Sleep(30 * time.Millisecond) // > AdvertStale: pre-cut adverts age out
	tc.sites[2].recordDeficit(map[ident.ItemID]core.Value{"x": 60})
	time.Sleep(60 * time.Millisecond)
	if n := tc.sites[0].Stats().VmCreated; n != 0 {
		t.Errorf("site 1 created %d Vm toward an unreachable peer", n)
	}
	// Heal: adverts flow again and the transfer happens.
	tc.net.SetLinkBoth(1, 3, true)
	tc.net.SetLinkBoth(2, 3, true)
	waitUntil(t, 2*time.Second, "transfer after heal", func() bool {
		return tc.sites[2].DB().Value("x") >= 40
	})
}
