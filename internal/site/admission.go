package site

import (
	"math/bits"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// This file is the admission + durability layer: the per-item stripes
// (the only lock for state mutation), the scheme's admission check,
// and the three durable mutation entry points — commitDurably,
// vmCreateDurably, vmAcceptDurably — that every path shares. The fast
// path (exec_fast.go), the slow path (exec.go), the message handlers
// (inbound_*.go) and proactive Rds (rds.go) all funnel through here;
// none of them touches the log or store any other way.

// stripeOf maps an item to its admission stripe (FNV-1a).
func (s *Site) stripeOf(item ident.ItemID) int {
	if len(s.stripes) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.stripes)))
}

// lockStripesFor acquires the stripes covering items (deduplicated,
// ascending — the deadlock-free total order) and returns the release.
func (s *Site) lockStripesFor(items []ident.ItemID) func() {
	if len(s.stripes) == 1 {
		s.stripes[0].Lock()
		return s.stripes[0].Unlock
	}
	need := make([]bool, len(s.stripes))
	for _, it := range items {
		need[s.stripeOf(it)] = true
	}
	var held []int
	for i := range s.stripes {
		if need[i] {
			s.stripes[i].Lock()
			held = append(held, i)
		}
	}
	return func() {
		for _, i := range held {
			s.stripes[i].Unlock()
		}
	}
}

// lockAllStripes takes every stripe in ascending order (Checkpoint's
// whole-site quiescent point) and returns the release.
func (s *Site) lockAllStripes() func() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
	return func() {
		for i := range s.stripes {
			s.stripes[i].Unlock()
		}
	}
}

// lockStripeMask / unlockStripeMask acquire and release the stripes in
// a ≤64-stripe bitmask in ascending index order — the same deadlock-
// free total order lockStripesFor uses, without its slice bookkeeping.
func (s *Site) lockStripeMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		s.stripes[bits.TrailingZeros64(m)].Lock()
	}
}

func (s *Site) unlockStripeMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		s.stripes[bits.TrailingZeros64(m)].Unlock()
	}
}

// admitVerdict is admitLocked's decision.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	// admitCCRejected: some item's timestamp fails the scheme's
	// AllowLock test — a real CC abort under either path.
	admitCCRejected
	// admitShort: some item's authoritative quota is below its need —
	// only reported when needs is non-nil (the fast path's hint
	// re-check; the slow path redistributes instead of aborting).
	admitShort
)

// admitLocked runs the scheme's admission check over items under their
// held stripes: the per-item AllowLock test, plus (when needs is
// non-nil) the authoritative quota re-check the fast path's advisory
// hints require. One DB.Get per item serves both. Caller holds every
// item's stripe; the stripes exclude all mutators of these items, so
// the values cannot move between check and the caller's lock+stamp.
func (s *Site) admitLocked(ts tstamp.TS, items []ident.ItemID, needs []core.Value) admitVerdict {
	for i, item := range items {
		it, _ := s.cfg.DB.Get(item)
		if !s.policy.AllowLock(ts, it.TS) {
			return admitCCRejected
		}
		if needs != nil && it.Val < needs[i] {
			return admitShort
		}
	}
	return admitOK
}

// lockAndStamp takes the transaction's no-wait locks and, under a
// StampOnLock scheme (Conc1), stamps the items — §5 step 1's
// lock+stamp half, shared by both execution paths. Caller holds the
// items' stripes.
func (s *Site) lockAndStamp(ts tstamp.TS, id ident.TxnID, items []ident.ItemID) bool {
	if !s.locks.TryLockAll(id, items) {
		return false
	}
	if s.policy.StampOnLock() {
		for _, item := range items {
			s.cfg.DB.SetTS(item, ts)
		}
	}
	return true
}

// logAppend is the site-internal append path: it writes to the stable
// log and feeds the automatic checkpointer's growth thresholds. All
// normal-processing appends (commit, Vm create/accept) go through it;
// Checkpoint itself appends directly so a checkpoint record never
// re-arms the trigger it just cleared.
func (s *Site) logAppend(kind wal.RecordKind, data []byte) (uint64, error) {
	lsn, err := s.cfg.Log.Append(kind, data)
	if err == nil {
		s.noteAppend(int64(len(data)))
	}
	return lsn, err
}

// commitDurably is the shared §5 step-5/6 core: append the commit
// record (its stability commits the transaction), apply the actions,
// append the applied record. Both records encode into pooled wire
// buffers; the Log contract (data borrowed, never retained) lets each
// buffer return to the pool immediately. The caller must hold
// lifeMu's read side (crash atomicity: once Crash returns, no
// stale-epoch commit record can still reach the log) and the stripes
// covering every action's item (the store's page-LSN idempotence
// needs same-item records applied in LSN order; group commit wakes a
// whole batch of appenders at once, so without the stripes a
// lower-LSN commit could apply after a higher-LSN Vm record on the
// same item and be silently skipped). ckptMu's read side is taken
// here, keeping the append+apply pair atomic against Checkpoint's
// cut. The actions slice is borrowed for the call — the fast path
// passes stack scratch.
func (s *Site) commitDurably(ts tstamp.TS, actions []wal.Action) (uint64, error) {
	s.ckptMu.RLock()
	w := wire.GetWriter()
	rec := wal.CommitRec{Txn: ts, Actions: actions}
	rec.EncodeTo(w)
	lsn, err := s.logAppend(wal.RecCommit, w.Bytes())
	wire.PutWriter(w)
	if err != nil {
		s.ckptMu.RUnlock()
		return 0, err
	}
	if _, err := s.cfg.DB.ApplyAll(lsn, actions); err != nil {
		// Protocol invariant broken; surface loudly in development.
		panic("site: committed actions failed to apply: " + err.Error())
	}
	w = wire.GetWriter()
	applied := wal.AppliedRec{CommitLSN: lsn}
	applied.EncodeTo(w)
	_, _ = s.logAppend(wal.RecApplied, w.Bytes())
	wire.PutWriter(w)
	s.ckptMu.RUnlock()
	return lsn, nil
}

// vmCreateDurably is the durability half of every Vm creation — a
// request honored (inbound_request.go) or a proactive Rds transfer
// (rds.go): log the [database-actions, message-sequence] record,
// register the outgoing Vm for retransmission, apply the deduct.
// Caller holds lifeMu's read side and the item's stripe.
func (s *Site) vmCreateDurably(rec *wal.VmCreateRec) (uint64, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	lsn, err := s.logAppend(wal.RecVmCreate, rec.Encode())
	if err != nil {
		return 0, err
	}
	s.vm.Created(rec.Msgs)
	if _, err := s.cfg.DB.ApplyAll(lsn, rec.Actions); err != nil {
		panic("site: vm-create actions failed to apply: " + err.Error())
	}
	return lsn, nil
}

// vmAcceptDurably is the durability half of Vm acceptance: log the
// acceptance record (the record is the acceptance), mark the channel
// cursor, apply the credit. Caller holds lifeMu's read side and the
// item's stripe.
func (s *Site) vmAcceptDurably(from ident.SiteID, rec *wal.VmAcceptRec) (uint64, error) {
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	lsn, err := s.logAppend(wal.RecVmAccept, rec.Encode())
	if err != nil {
		return 0, err
	}
	s.vm.MarkAccepted(from, rec.Seq)
	if _, err := s.cfg.DB.ApplyAll(lsn, rec.Actions); err != nil {
		panic("site: vm-accept actions failed to apply: " + err.Error())
	}
	return lsn, nil
}
