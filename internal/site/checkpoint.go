package site

import (
	"fmt"

	"dvp/internal/wal"
)

// This file is the checkpoint/compaction half of the durability layer:
// the quiescent-cut Checkpoint, the growth-threshold trigger fed by
// logAppend (admission.go), and the background loop that runs it.

// CheckpointStagePreCompact is the hook stage fired after the
// checkpoint record is durably appended but before the log is
// compacted behind it — the window where a crash leaves a usable
// checkpoint atop an uncompacted log.
const CheckpointStagePreCompact = "pre-compact"

// Checkpoint writes a checkpoint record capturing store and Vm state,
// bounding future recovery scans (§7), then compacts the log: records
// before the checkpoint are no longer needed (the checkpoint carries
// the store snapshot, channel cursors, pending Vm and clock).
//
// All stripes plus ckptMu's write side make the cut exact even
// against the commit path (which runs outside the stripes): every
// record below the compaction horizon is applied, every unapplied
// record survives compaction.
func (s *Site) Checkpoint() error {
	defer s.lockAllStripes()()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	rec := &wal.CheckpointRec{
		Items:    s.cfg.DB.Snapshot(),
		Channels: s.vm.SnapshotChannels(),
		Clock:    s.lamport.Current(),
	}
	payload := rec.Encode()
	lsn, err := s.cfg.Log.Append(wal.RecCheckpoint, payload)
	if err != nil {
		return err
	}
	// The record is durable: restart the growth counters even if the
	// compaction below is skipped or fails — recovery can already use
	// this checkpoint.
	s.ckptBytes.Store(0)
	s.ckptRecs.Store(0)
	s.obsm.ckptTotal.Inc()
	s.obsm.ckptBytes.Add(uint64(len(payload)))
	s.obsm.flight.Recordf(s.obsm.site, "checkpoint", "lsn=%d bytes=%d items=%d", lsn, len(payload), len(rec.Items))
	if h := s.checkpointHook(); h != nil {
		if err := h(CheckpointStagePreCompact); err != nil {
			return fmt.Errorf("site %v: checkpoint %s hook: %w", s.cfg.ID, CheckpointStagePreCompact, err)
		}
	}
	return s.cfg.Log.Compact(lsn - 1)
}

// autoCheckpoint reports whether the automatic checkpointer is armed.
func (s *Site) autoCheckpoint() bool {
	return s.cfg.CheckpointEveryBytes > 0 || s.cfg.CheckpointEveryRecords > 0
}

// noteAppend bumps the since-last-checkpoint counters and kicks the
// checkpointer goroutine when a threshold is crossed. The kick channel
// has one slot and drops when full: the loop coalesces bursts into one
// checkpoint, and a missed kick re-arms on the next append.
func (s *Site) noteAppend(n int64) {
	if !s.autoCheckpoint() {
		return
	}
	b := s.ckptBytes.Add(n)
	r := s.ckptRecs.Add(1)
	if (s.cfg.CheckpointEveryBytes > 0 && b >= s.cfg.CheckpointEveryBytes) ||
		(s.cfg.CheckpointEveryRecords > 0 && r >= int64(s.cfg.CheckpointEveryRecords)) {
		select {
		case s.ckptKick <- struct{}{}:
		default:
		}
	}
}

// checkpointLoop runs automatic checkpoints. It cannot run inline in
// the append paths — an appender holds its stripe and ckptMu's read
// side, exactly the locks Checkpoint needs — so threshold crossings
// kick this goroutine instead. It starts and stops with the site.
func (s *Site) checkpointLoop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-s.ckptKick:
		}
		if s.ckptPaused.Load() {
			continue // a later append past the threshold re-kicks
		}
		s.ckptRunMu.Lock()
		var err error
		if !s.ckptPaused.Load() {
			err = s.Checkpoint()
		}
		s.ckptRunMu.Unlock()
		if err != nil {
			s.obsm.flight.Recordf(s.obsm.site, "checkpoint-failed", "err=%v", err)
		}
	}
}

// SetCheckpointPaused gates the automatic checkpointer. Pausing joins
// any in-flight checkpoint before returning, so after the call no
// background compaction is running or will start — fault harnesses
// pause it across barrier audits that compare log and durable state.
// Like the rebalance pause, the flag survives crash/restart cycles.
func (s *Site) SetCheckpointPaused(p bool) {
	s.ckptPaused.Store(p)
	if p {
		s.ckptRunMu.Lock()
		s.ckptRunMu.Unlock() // empty critical section joins an in-flight run (SA2001, excluded in staticcheck.conf)
	}
}

// SetCheckpointHook installs a hook invoked at named stages inside
// Checkpoint (see CheckpointStagePreCompact). A hook returning an
// error makes Checkpoint return without compacting. Hooks must not
// block on site lifecycle transitions: Checkpoint holds every stripe
// while the hook runs, so a hook that wants to crash the site must do
// so from a fresh goroutine and return.
func (s *Site) SetCheckpointHook(h func(stage string) error) {
	s.ckptHookMu.Lock()
	s.ckptHook = h
	s.ckptHookMu.Unlock()
}

func (s *Site) checkpointHook() func(stage string) error {
	s.ckptHookMu.Lock()
	defer s.ckptHookMu.Unlock()
	return s.ckptHook
}
