// Package site implements one DvP site: the single place a
// transaction executes (§2's conclusion), holding its quota store,
// stable log, lock table, Vm channels and concurrency control.
//
// A Site is built from substrates that outlive crashes (wal.Log,
// store.Durable, the network attachment) and volatile state that does
// not (locks, waiters, Vm manager, Lamport clock). Crash discards the
// volatile state; Restart rebuilds it from the log via
// internal/recovery and resumes — with no communication, per §7.
//
// The implementation is layered, with one rule per layer about what
// may serialize on what:
//
//   - admission (admission.go): the per-item stripes are the only lock
//     for state mutation — check+lock+stamp and every append+apply
//     pair serialize per data item, nothing serializes site-wide.
//   - durability (admission.go): commitDurably / vmCreateDurably /
//     vmAcceptDurably are the only places normal processing reaches
//     the stable log; both execution paths and every handler share
//     them.
//   - waiters (waiters.go): a sharded-by-TxnID table with per-shard
//     locks; registering, waking and failing waiters never meets a
//     site-wide lock.
//   - router (router.go, inbound_*.go, retransmit.go): per-kind
//     message handlers touching only stripes, waiter shards and
//     atomics.
//   - lifecycle (lifecycle.go): s.mu is demoted to Start / Crash /
//     Restart / epoch transitions — the per-txn commit path and the
//     per-message handler path never acquire it (check.sh greps for
//     exactly this).
package site

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/obs"
	"dvp/internal/recovery"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vclock"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// Config assembles a site.
type Config struct {
	// ID is this site's identity.
	ID ident.SiteID
	// Peers lists every site in the system, including this one.
	Peers []ident.SiteID
	// Log is the site's stable log (survives crashes).
	Log wal.Log
	// DB is the site's durable local database (survives crashes).
	DB *store.Durable
	// Endpoint attaches the site to the network.
	Endpoint wire.Endpoint
	// Clock is the wall clock for timeouts and retransmission.
	Clock vclock.Clock
	// CC selects the concurrency control policy (default Conc1).
	CC cc.Policy
	// Grant decides how much quota to surrender per honored request
	// (default core.GrantExact).
	Grant core.SplitPolicy
	// RetransmitEvery is the Vm retransmission interval (default
	// 15ms — several rounds fit inside a default timeout).
	RetransmitEvery time.Duration
	// RetransmitMax caps the adaptive per-peer retransmission backoff:
	// sweeps toward a peer that never acks stretch from RetransmitEvery
	// (or 2× the observed ack RTT, if larger) by doubling up to this
	// cap, and snap back to the base pace on the first cumulative ack
	// that advances the channel (default 8× RetransmitEvery).
	RetransmitMax time.Duration
	// DefaultTimeout bounds transactions that don't set their own
	// (default 100ms).
	DefaultTimeout time.Duration
	// AdmissionStripes shards the admission/message-handling critical
	// section by data item, so transactions on disjoint items run the
	// check+lock+stamp path concurrently (default 16). Per-item
	// semantics are unchanged: everything touching one item still
	// serializes on that item's stripe. Forced to 1 under Conc2, whose
	// §6.2 correctness argument needs whole-site arrival-order
	// processing, not merely per-item order.
	AdmissionStripes int
	// WaiterShards shards the waiter table (transactions parked in §5
	// step 3) by TxnID, so registering, waking and crash-failing
	// waiters contend per shard instead of site-wide (default 16).
	WaiterShards int
	// CheckpointEveryBytes and CheckpointEveryRecords arm the
	// automatic checkpointer: once the log has grown past either
	// threshold since the last checkpoint, a background goroutine
	// takes a checkpoint (consistent cut under all admission stripes)
	// and compacts the log behind it. A zero threshold disables that
	// trigger; with both zero, checkpoints are manual-only.
	CheckpointEveryBytes   int64
	CheckpointEveryRecords int
	// RecoveryWorkers is the parallel replay width used when the site
	// recovers from its log (≤1 replays serially; see
	// internal/recovery).
	RecoveryWorkers int
	// DisableFastPath turns off the local-commit fast path (see
	// exec_fast.go), forcing every transaction through the full §5
	// protocol run. The fast path is semantically transparent — this
	// knob exists for benchmarks, ablations and chaos comparison runs.
	DisableFastPath bool
	// Rebalance configures the demand-driven rebalancer: when
	// Enabled, the site tracks per-item demand, gossips it to peers
	// via DemandAdvert messages, and ships surplus quota toward the
	// largest observed deficit with Rds transfers (see demand.go).
	Rebalance RebalanceConfig
	// OnCommit, when set, observes every committed transaction
	// (metrics, serializability checking). Called outside locks.
	OnCommit func(CommitInfo)
	// OnRds, when set, observes each half of every redistribution: the
	// deduct logged with a Vm's creation and the credit logged with its
	// acceptance. Each half is its own locally-serialized transaction
	// (§6), so exact serializability checking must replay both halves
	// at their stamps — a concurrent full read that misses value in
	// flight between the halves is serializable, and looks it only if
	// the checker models the window.
	OnRds func(RdsInfo)
	// Metrics, when set, registers the site's runtime metrics (txn
	// latency by label and outcome, quota-ask traffic and honor rate
	// per peer, Vm channel state) with the registry, labelled
	// site=<id>.
	Metrics *obs.Registry
	// Trace, when set, records each transaction's §5 protocol steps
	// into the ring (admit → cc-check → lock → ask → vm-accept →
	// wal-flush → apply → outcome), tags outgoing Requests and Vm with
	// a causal trace context, and records origin-tagged spans for every
	// remote hop (Rds create, Vm accept, ack retirement) so a
	// cross-site stitcher can rebuild the full span tree by TS.
	Trace *obs.Ring
	// Flight, when set, records structured protocol events (lock
	// conflicts, parked Vm, rebalancer decisions, site lifecycle) into
	// the bounded flight recorder for post-failure dumps.
	Flight *obs.Flight
}

// CommitInfo describes a committed transaction to the OnCommit hook.
type CommitInfo struct {
	TS     tstamp.TS
	Site   ident.SiteID
	Deltas map[ident.ItemID]core.Value
	Reads  map[ident.ItemID]core.Value
	// CommitLSN is the stable-log LSN of the commit record whose
	// stability acknowledged this transaction. Durability audits check
	// it against the log: an acknowledged commit is either still in
	// the log or behind the compaction horizon, never lost.
	CommitLSN uint64
	// WriterIdx gives, per written item, this transaction's local
	// writer index at its site; ReadVec gives, per fully-read item,
	// the observation vector (see flowClocks). Together they drive
	// the exact serializability checker.
	WriterIdx map[ident.ItemID]uint64
	ReadVec   map[ident.ItemID]FlowVec
	Label     string
}

// RdsInfo describes one half of a redistribution to the OnRds hook: a
// Vm-create deduct (negative Delta) at the sending site or a Vm-accept
// credit (positive Delta) at the receiving site, with the timestamp
// the half serializes at. Request-grant pairs consumed by the waiting
// transaction both carry the requester's TS (they serialize inside
// it); a credit accepted into a free item carries a fresh local stamp,
// strictly after everything the accepting site has seen.
type RdsInfo struct {
	TS    tstamp.TS
	Site  ident.SiteID
	Item  ident.ItemID
	Delta core.Value
}

// Stats counts site-level events. Snapshot with Site.Stats.
type Stats struct {
	Committed         uint64
	AbortLockConflict uint64
	AbortCCRejected   uint64
	AbortTimeout      uint64
	AbortSiteDown     uint64
	RequestsSent      uint64
	RequestsHonored   uint64
	RequestsDeclined  uint64
	VmCreated         uint64
	VmAccepted        uint64
	VmDuplicates      uint64
	Retransmissions   uint64
}

// statCounters is the hot-path form of Stats: one atomic per counter,
// bumped by the commit paths and message handlers without any
// site-wide lock. Stats() folds them into the exported snapshot. At a
// quiescent point (no handler or commit mid-flight) the snapshot is
// exact, which is all the harness audits need.
type statCounters struct {
	committed         atomic.Uint64
	abortLockConflict atomic.Uint64
	abortCCRejected   atomic.Uint64
	abortTimeout      atomic.Uint64
	abortSiteDown     atomic.Uint64
	requestsSent      atomic.Uint64
	requestsHonored   atomic.Uint64
	requestsDeclined  atomic.Uint64
	vmCreated         atomic.Uint64
	vmAccepted        atomic.Uint64
	vmDuplicates      atomic.Uint64
	retransmissions   atomic.Uint64
}

// Site is one DvP site. Run executes transactions; the network
// handler processes peer traffic; Crash/Restart drive the failure
// model.
type Site struct {
	cfg    Config
	policy cc.Policy
	grant  core.SplitPolicy

	// Volatile state, reset in place on restart (the objects are
	// shared with concurrently finishing goroutines, so they are
	// never swapped, only Reset under their own locks). stripes
	// shards what used to be a single protocol mutex: the admission
	// check+lock+stamp step and message handling serialize per data
	// item (everything touching one item maps to one stripe), so
	// transactions on disjoint items proceed concurrently. Under
	// Conc2 there is exactly one stripe, restoring the paper's §6.2
	// whole-site "processed in the order of their arrival" model that
	// its 2PL proof assumes; Conc1's per-item timestamp rule needs
	// only per-item order. Lock order: lifeMu.RLock ≺ stripe ≺
	// ckptMu.RLock (acquire a stripe only when not yet holding a
	// later-ordered lock; multiple stripes in ascending index order).
	stripes []sync.Mutex
	lamport *tstamp.Clock
	locks   *lock.NoWait
	vm      *vmsg.Manager
	flow    *flowClocks

	// waiterTab is the waiter-table layer: transactions parked in §5
	// step 3, sharded by TxnID (see waiters.go).
	waiterTab *waiterTable

	// ckptMu fences Checkpoint against every append+apply pair: the
	// mutating paths (commit, Vm create/accept) hold the read side
	// from log append through store apply, so under the write side
	// the snapshot, the checkpoint record's LSN and the compaction
	// horizon are one consistent cut — no record below the horizon
	// can still be unapplied.
	ckptMu sync.RWMutex

	// lifeMu fences message handling against Crash: handlers hold the
	// read side, so when Crash returns holding the write side, no
	// handler is mid-flight and the stable log is quiescent.
	lifeMu sync.RWMutex

	// obsm holds resolved metric handles; initialized once in New,
	// read-only afterwards (the handles themselves are atomic).
	obsm siteObs

	// spanCtr feeds newSpan: per-site unique span ids for the causal
	// tracing layer. Monotonic across crashes (volatile uniqueness is
	// enough — spans are observability, not protocol state).
	spanCtr atomic.Uint64

	// epochUp mirrors (epoch, up) as epoch<<1|upBit so every hot path
	// checks liveness without s.mu. Written only under s.mu (Start
	// and Crash), read lock-free. The commit paths read it under
	// lifeMu.RLock, which is what makes the check-then-append pair
	// atomic against Crash's fence.
	epochUp atomic.Uint64

	// stats are the site's event counters — all atomics, never behind
	// a lock (see statCounters).
	stats statCounters

	// askCursor rotates the starting peer for narrow-fanout asks.
	askCursor atomic.Uint64

	// demand is the demand-driven rebalancer's state: local EWMA
	// demand per item plus the freshest advert from each peer. Always
	// non-nil; the rebalancer goroutine itself runs only when
	// cfg.Rebalance.Enabled. rebalPaused gates ticks without stopping
	// the goroutine and deliberately survives Crash/Restart (harness
	// barriers rely on that while they crash-cycle sites).
	demand      *demandTracker
	rebalPaused atomic.Bool

	// deferredVm parks inbound Vm that found their item locked. §4.2
	// allows dropping them ("it will eventually be sent again anyway"),
	// but a site whose item is locked back-to-back — a skewed site
	// running one deficit transaction after another — would then starve
	// inbound credits for many retransmit intervals. Parked Vm are
	// redelivered the moment the locking transaction releases, bounding
	// the wait by the lock hold time. Volatile: cleared on crash, the
	// sender's retransmission re-covers anything lost.
	defMu      sync.Mutex
	deferredVm map[ident.ItemID][]deferredVm

	// Automatic checkpointer state: bytes/records appended since the
	// last checkpoint (bumped by logAppend), a one-slot kick channel
	// the thresholds fire into, and a pause gate for harness barriers.
	// ckptRunMu is held across each background checkpoint run, so
	// SetCheckpointPaused can join an in-flight run by acquiring it.
	// The checkpoint loop itself starts and stops with the site (see
	// Start/Crash), like the retransmission loop. ckptHook, when set,
	// is invoked at named stages inside Checkpoint — fault harnesses
	// use it to land crashes between the snapshot write and the
	// compaction.
	ckptBytes  atomic.Int64
	ckptRecs   atomic.Int64
	ckptKick   chan struct{}
	ckptPaused atomic.Bool
	ckptRunMu  sync.Mutex
	ckptHookMu sync.Mutex
	ckptHook   func(stage string) error

	// mu is the lifecycle core's lock and nothing else's: it guards
	// up, epoch and the loop channels across Start/Crash/Restart/epoch
	// transitions. The per-txn commit path and the per-message handler
	// path never acquire it (check.sh's site-mutex gate greps for
	// exactly this — the lock is taken only in lifecycle.go).
	mu        sync.Mutex
	lastRec   recovery.Summary
	up        bool
	epoch     uint64
	stopRetx  chan struct{}
	retxDone  chan struct{}
	stopRebal chan struct{}
	rebalDone chan struct{}
	stopCkpt  chan struct{}
	ckptDone  chan struct{}
}

// New assembles a site and runs recovery on its log (a brand-new site
// has an empty log and recovers to an empty state). Call Start to
// attach to the network.
func New(cfg Config) (*Site, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.CC == nil {
		cfg.CC = cc.New(cc.Conc1)
	}
	if cfg.Grant == nil {
		cfg.Grant = core.GrantExact{}
	}
	if cfg.RetransmitEvery <= 0 {
		cfg.RetransmitEvery = 15 * time.Millisecond
	}
	if cfg.RetransmitMax <= 0 {
		cfg.RetransmitMax = 8 * cfg.RetransmitEvery
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 100 * time.Millisecond
	}
	if cfg.AdmissionStripes <= 0 {
		cfg.AdmissionStripes = 16
	}
	if cfg.CC.Scheme() == cc.Conc2 {
		cfg.AdmissionStripes = 1
	}
	if cfg.WaiterShards <= 0 {
		cfg.WaiterShards = defaultWaiterShards
	}
	cfg.Rebalance = cfg.Rebalance.withDefaults()
	s := &Site{
		cfg:        cfg,
		policy:     cfg.CC,
		grant:      cfg.Grant,
		stripes:    make([]sync.Mutex, cfg.AdmissionStripes),
		waiterTab:  newWaiterTable(cfg.WaiterShards),
		deferredVm: make(map[ident.ItemID][]deferredVm),
		lamport:    tstamp.NewClock(cfg.ID),
		locks:      lock.NewNoWait(),
		vm:         vmsg.NewManager(),
		flow:       newFlowClocks(),
		ckptKick:   make(chan struct{}, 1),
	}
	s.demand = newDemandTracker(s.cfg.Rebalance)
	s.initObs()
	s.demand.instrument(s.cfg.Metrics, s.obsm.site, s.cfg.Clock)
	if s.obsm.ring != nil {
		// Ack retirement completes a Vm's lifespan: record the
		// piggyback hop as a span parented on the context the Vm
		// carried out (untraced Vm retire silently).
		s.vm.SetRetireHook(func(peer ident.SiteID, v wal.VmOut) {
			if !v.Trace.Valid() {
				return
			}
			hop := s.obsm.ring.BeginSpan(s.obsm.site, "vm-ack",
				v.Trace.Origin.String(), uint64(v.Trace.TS), s.newSpan(), v.Trace.Span)
			hop.Step("retire", fmt.Sprintf("peer=%v seq=%d item=%s", peer, v.Seq, v.Item))
			hop.Finish("acked")
		})
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// newSpan allocates a site-unique span id for the tracing layer (the
// site id in the high bits keeps ids distinct across sites, so a
// stitched tree never aliases parents).
func (s *Site) newSpan() uint64 {
	return uint64(s.cfg.ID)<<40 | s.spanCtr.Add(1)
}

// parkedCredits counts currently parked inbound Vm (the deferVm gate),
// exposed as the dvp_rebalance_parked_credits gauge.
func (s *Site) parkedCredits() int {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	n := 0
	for _, q := range s.deferredVm {
		n += len(q)
	}
	return n
}

// ID returns the site's identity.
func (s *Site) ID() ident.SiteID { return s.cfg.ID }

// Stats returns a snapshot of the site's counters. Every counter is an
// atomic; no lock is involved, so the snapshot is exact whenever the
// site is quiescent and merely consistent-per-counter under load.
func (s *Site) Stats() Stats {
	return Stats{
		Committed:         s.stats.committed.Load(),
		AbortLockConflict: s.stats.abortLockConflict.Load(),
		AbortCCRejected:   s.stats.abortCCRejected.Load(),
		AbortTimeout:      s.stats.abortTimeout.Load(),
		AbortSiteDown:     s.stats.abortSiteDown.Load(),
		RequestsSent:      s.stats.requestsSent.Load(),
		RequestsHonored:   s.stats.requestsHonored.Load(),
		RequestsDeclined:  s.stats.requestsDeclined.Load(),
		VmCreated:         s.stats.vmCreated.Load(),
		VmAccepted:        s.stats.vmAccepted.Load(),
		VmDuplicates:      s.stats.vmDuplicates.Load(),
		Retransmissions:   s.stats.retransmissions.Load(),
	}
}

// DB exposes the durable store (monitors, conservation checks).
func (s *Site) DB() *store.Durable { return s.cfg.DB }

// LogLastLSN reports the stable log's newest LSN (log growth metric).
func (s *Site) LogLastLSN() uint64 { return s.cfg.Log.LastLSN() }

// Log exposes the site's stable log for invariant checkers and fault
// harnesses (exactly-once audits scan it; never write to it).
func (s *Site) Log() wal.Log { return s.cfg.Log }

// VM exposes the Vm channel manager (conservation checks need the
// created-but-unaccepted sets on both sides of each channel).
func (s *Site) VM() *vmsg.Manager { return s.vm }

// peersExceptSelf returns every other site, in canonical order.
func (s *Site) peersExceptSelf() []ident.SiteID {
	out := make([]ident.SiteID, 0, len(s.cfg.Peers)-1)
	for _, p := range ident.SortSites(s.cfg.Peers) {
		if p != s.cfg.ID {
			out = append(out, p)
		}
	}
	return out
}
