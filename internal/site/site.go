// Package site implements one DvP site: the single place a
// transaction executes (§2's conclusion), holding its quota store,
// stable log, lock table, Vm channels and concurrency control.
//
// A Site is built from substrates that outlive crashes (wal.Log,
// store.Durable, the network attachment) and volatile state that does
// not (locks, waiters, Vm manager, Lamport clock). Crash discards the
// volatile state; Restart rebuilds it from the log via
// internal/recovery and resumes — with no communication, per §7.
package site

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/obs"
	"dvp/internal/recovery"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vclock"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// Config assembles a site.
type Config struct {
	// ID is this site's identity.
	ID ident.SiteID
	// Peers lists every site in the system, including this one.
	Peers []ident.SiteID
	// Log is the site's stable log (survives crashes).
	Log wal.Log
	// DB is the site's durable local database (survives crashes).
	DB *store.Durable
	// Endpoint attaches the site to the network.
	Endpoint wire.Endpoint
	// Clock is the wall clock for timeouts and retransmission.
	Clock vclock.Clock
	// CC selects the concurrency control policy (default Conc1).
	CC cc.Policy
	// Grant decides how much quota to surrender per honored request
	// (default core.GrantExact).
	Grant core.SplitPolicy
	// RetransmitEvery is the Vm retransmission interval (default
	// 15ms — several rounds fit inside a default timeout).
	RetransmitEvery time.Duration
	// RetransmitMax caps the adaptive per-peer retransmission backoff:
	// sweeps toward a peer that never acks stretch from RetransmitEvery
	// (or 2× the observed ack RTT, if larger) by doubling up to this
	// cap, and snap back to the base pace on the first cumulative ack
	// that advances the channel (default 8× RetransmitEvery).
	RetransmitMax time.Duration
	// DefaultTimeout bounds transactions that don't set their own
	// (default 100ms).
	DefaultTimeout time.Duration
	// AdmissionStripes shards the admission/message-handling critical
	// section by data item, so transactions on disjoint items run the
	// check+lock+stamp path concurrently (default 16). Per-item
	// semantics are unchanged: everything touching one item still
	// serializes on that item's stripe. Forced to 1 under Conc2, whose
	// §6.2 correctness argument needs whole-site arrival-order
	// processing, not merely per-item order.
	AdmissionStripes int
	// CheckpointEveryBytes and CheckpointEveryRecords arm the
	// automatic checkpointer: once the log has grown past either
	// threshold since the last checkpoint, a background goroutine
	// takes a checkpoint (consistent cut under all admission stripes)
	// and compacts the log behind it. A zero threshold disables that
	// trigger; with both zero, checkpoints are manual-only.
	CheckpointEveryBytes   int64
	CheckpointEveryRecords int
	// RecoveryWorkers is the parallel replay width used when the site
	// recovers from its log (≤1 replays serially; see
	// internal/recovery).
	RecoveryWorkers int
	// DisableFastPath turns off the local-commit fast path (see
	// exec_fast.go), forcing every transaction through the full §5
	// protocol run. The fast path is semantically transparent — this
	// knob exists for benchmarks, ablations and chaos comparison runs.
	DisableFastPath bool
	// Rebalance configures the demand-driven rebalancer: when
	// Enabled, the site tracks per-item demand, gossips it to peers
	// via DemandAdvert messages, and ships surplus quota toward the
	// largest observed deficit with Rds transfers (see demand.go).
	Rebalance RebalanceConfig
	// OnCommit, when set, observes every committed transaction
	// (metrics, serializability checking). Called outside locks.
	OnCommit func(CommitInfo)
	// OnRds, when set, observes each half of every redistribution: the
	// deduct logged with a Vm's creation and the credit logged with its
	// acceptance. Each half is its own locally-serialized transaction
	// (§6), so exact serializability checking must replay both halves
	// at their stamps — a concurrent full read that misses value in
	// flight between the halves is serializable, and looks it only if
	// the checker models the window.
	OnRds func(RdsInfo)
	// Metrics, when set, registers the site's runtime metrics (txn
	// latency by label and outcome, quota-ask traffic and honor rate
	// per peer, Vm channel state) with the registry, labelled
	// site=<id>.
	Metrics *obs.Registry
	// Trace, when set, records each transaction's §5 protocol steps
	// into the ring (admit → cc-check → lock → ask → vm-accept →
	// wal-flush → apply → outcome), tags outgoing Requests and Vm with
	// a causal trace context, and records origin-tagged spans for every
	// remote hop (Rds create, Vm accept, ack retirement) so a
	// cross-site stitcher can rebuild the full span tree by TS.
	Trace *obs.Ring
	// Flight, when set, records structured protocol events (lock
	// conflicts, parked Vm, rebalancer decisions, site lifecycle) into
	// the bounded flight recorder for post-failure dumps.
	Flight *obs.Flight
}

// CommitInfo describes a committed transaction to the OnCommit hook.
type CommitInfo struct {
	TS     tstamp.TS
	Site   ident.SiteID
	Deltas map[ident.ItemID]core.Value
	Reads  map[ident.ItemID]core.Value
	// CommitLSN is the stable-log LSN of the commit record whose
	// stability acknowledged this transaction. Durability audits check
	// it against the log: an acknowledged commit is either still in
	// the log or behind the compaction horizon, never lost.
	CommitLSN uint64
	// WriterIdx gives, per written item, this transaction's local
	// writer index at its site; ReadVec gives, per fully-read item,
	// the observation vector (see flowClocks). Together they drive
	// the exact serializability checker.
	WriterIdx map[ident.ItemID]uint64
	ReadVec   map[ident.ItemID]FlowVec
	Label     string
}

// RdsInfo describes one half of a redistribution to the OnRds hook: a
// Vm-create deduct (negative Delta) at the sending site or a Vm-accept
// credit (positive Delta) at the receiving site, with the timestamp
// the half serializes at. Request-grant pairs consumed by the waiting
// transaction both carry the requester's TS (they serialize inside
// it); a credit accepted into a free item carries a fresh local stamp,
// strictly after everything the accepting site has seen.
type RdsInfo struct {
	TS    tstamp.TS
	Site  ident.SiteID
	Item  ident.ItemID
	Delta core.Value
}

// Stats counts site-level events. Snapshot with Site.Stats.
type Stats struct {
	Committed         uint64
	AbortLockConflict uint64
	AbortCCRejected   uint64
	AbortTimeout      uint64
	AbortSiteDown     uint64
	RequestsSent      uint64
	RequestsHonored   uint64
	RequestsDeclined  uint64
	VmCreated         uint64
	VmAccepted        uint64
	VmDuplicates      uint64
	Retransmissions   uint64
}

// Site is one DvP site. Run executes transactions; the network
// handler processes peer traffic; Crash/Restart drive the failure
// model.
type Site struct {
	cfg    Config
	policy cc.Policy
	grant  core.SplitPolicy

	// Volatile state, reset in place on restart (the objects are
	// shared with concurrently finishing goroutines, so they are
	// never swapped, only Reset under their own locks). stripes
	// shards what used to be a single protocol mutex: the admission
	// check+lock+stamp step and message handling serialize per data
	// item (everything touching one item maps to one stripe), so
	// transactions on disjoint items proceed concurrently. Under
	// Conc2 there is exactly one stripe, restoring the paper's §6.2
	// whole-site "processed in the order of their arrival" model that
	// its 2PL proof assumes; Conc1's per-item timestamp rule needs
	// only per-item order. Lock order: lifeMu.RLock ≺ stripe ≺
	// ckptMu.RLock (acquire a stripe only when not yet holding a
	// later-ordered lock; multiple stripes in ascending index order).
	stripes []sync.Mutex
	lamport *tstamp.Clock
	locks   *lock.NoWait
	vm      *vmsg.Manager
	flow    *flowClocks

	// ckptMu fences Checkpoint against every append+apply pair: the
	// mutating paths (commit, Vm create/accept) hold the read side
	// from log append through store apply, so under the write side
	// the snapshot, the checkpoint record's LSN and the compaction
	// horizon are one consistent cut — no record below the horizon
	// can still be unapplied.
	ckptMu sync.RWMutex

	// lifeMu fences message handling against Crash: handlers hold the
	// read side, so when Crash returns holding the write side, no
	// handler is mid-flight and the stable log is quiescent.
	lifeMu sync.RWMutex

	// obsm holds resolved metric handles; initialized once in New,
	// read-only afterwards (the handles themselves are atomic).
	obsm siteObs

	// spanCtr feeds newSpan: per-site unique span ids for the causal
	// tracing layer. Monotonic across crashes (volatile uniqueness is
	// enough — spans are observability, not protocol state).
	spanCtr atomic.Uint64

	// epochUp mirrors (epoch, up) as epoch<<1|upBit so the fast path
	// can check liveness without s.mu. Written only under s.mu (Start
	// and Crash), read lock-free. The fast path reads it under
	// lifeMu.RLock, which is what makes the check-then-append pair
	// atomic against Crash's fence — same argument as the slow path's
	// sameEpoch under lifeMu.
	epochUp atomic.Uint64

	// fastCommitted counts fast-path commits without touching s.mu
	// (the whole point of the fast path); Stats folds it into
	// Committed so observers see one number.
	fastCommitted atomic.Uint64

	// demand is the demand-driven rebalancer's state: local EWMA
	// demand per item plus the freshest advert from each peer. Always
	// non-nil; the rebalancer goroutine itself runs only when
	// cfg.Rebalance.Enabled. rebalPaused gates ticks without stopping
	// the goroutine and deliberately survives Crash/Restart (harness
	// barriers rely on that while they crash-cycle sites).
	demand      *demandTracker
	rebalPaused atomic.Bool

	// deferredVm parks inbound Vm that found their item locked. §4.2
	// allows dropping them ("it will eventually be sent again anyway"),
	// but a site whose item is locked back-to-back — a skewed site
	// running one deficit transaction after another — would then starve
	// inbound credits for many retransmit intervals. Parked Vm are
	// redelivered the moment the locking transaction releases, bounding
	// the wait by the lock hold time. Volatile: cleared on crash, the
	// sender's retransmission re-covers anything lost.
	defMu      sync.Mutex
	deferredVm map[ident.ItemID][]deferredVm

	// Automatic checkpointer state: bytes/records appended since the
	// last checkpoint (bumped by logAppend), a one-slot kick channel
	// the thresholds fire into, and a pause gate for harness barriers.
	// ckptRunMu is held across each background checkpoint run, so
	// SetCheckpointPaused can join an in-flight run by acquiring it.
	// The checkpoint loop itself starts and stops with the site (see
	// Start/Crash), like the retransmission loop. ckptHook, when set,
	// is invoked at named stages inside Checkpoint — fault harnesses
	// use it to land crashes between the snapshot write and the
	// compaction.
	ckptBytes  atomic.Int64
	ckptRecs   atomic.Int64
	ckptKick   chan struct{}
	ckptPaused atomic.Bool
	ckptRunMu  sync.Mutex
	ckptHookMu sync.Mutex
	ckptHook   func(stage string) error

	mu        sync.Mutex // guards waiters, up, epoch, stats, askCursor
	lastRec   recovery.Summary
	waiters   map[ident.TxnID]*waiter
	up        bool
	epoch     uint64
	stats     Stats
	stopRetx  chan struct{}
	retxDone  chan struct{}
	stopRebal chan struct{}
	rebalDone chan struct{}
	stopCkpt  chan struct{}
	ckptDone  chan struct{}
	askCursor int
}

// CheckpointStagePreCompact is the hook stage fired after the
// checkpoint record is durably appended but before the log is
// compacted behind it — the window where a crash leaves a usable
// checkpoint atop an uncompacted log.
const CheckpointStagePreCompact = "pre-compact"

// waiter tracks one transaction blocked in §5 step 3 awaiting Vm.
type waiter struct {
	id    ident.TxnID
	ts    tstamp.TS
	epoch uint64
	// needs: item → minimum local quota required.
	needs map[ident.ItemID]core.Value
	// reads: items requiring a full gather; responded tracks which
	// peers have answered each.
	reads     map[ident.ItemID]bool
	responded map[ident.ItemID]map[ident.SiteID]bool
	notify    chan struct{}
	accepted  int
}

func (w *waiter) wake() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// New assembles a site and runs recovery on its log (a brand-new site
// has an empty log and recovers to an empty state). Call Start to
// attach to the network.
func New(cfg Config) (*Site, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.CC == nil {
		cfg.CC = cc.New(cc.Conc1)
	}
	if cfg.Grant == nil {
		cfg.Grant = core.GrantExact{}
	}
	if cfg.RetransmitEvery <= 0 {
		cfg.RetransmitEvery = 15 * time.Millisecond
	}
	if cfg.RetransmitMax <= 0 {
		cfg.RetransmitMax = 8 * cfg.RetransmitEvery
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 100 * time.Millisecond
	}
	if cfg.AdmissionStripes <= 0 {
		cfg.AdmissionStripes = 16
	}
	if cfg.CC.Scheme() == cc.Conc2 {
		cfg.AdmissionStripes = 1
	}
	cfg.Rebalance = cfg.Rebalance.withDefaults()
	s := &Site{
		cfg:        cfg,
		policy:     cfg.CC,
		grant:      cfg.Grant,
		stripes:    make([]sync.Mutex, cfg.AdmissionStripes),
		waiters:    make(map[ident.TxnID]*waiter),
		deferredVm: make(map[ident.ItemID][]deferredVm),
		lamport:    tstamp.NewClock(cfg.ID),
		locks:      lock.NewNoWait(),
		vm:         vmsg.NewManager(),
		flow:       newFlowClocks(),
		ckptKick:   make(chan struct{}, 1),
	}
	s.demand = newDemandTracker(s.cfg.Rebalance)
	s.initObs()
	s.demand.instrument(s.cfg.Metrics, s.obsm.site, s.cfg.Clock)
	if s.obsm.ring != nil {
		// Ack retirement completes a Vm's lifespan: record the
		// piggyback hop as a span parented on the context the Vm
		// carried out (untraced Vm retire silently).
		s.vm.SetRetireHook(func(peer ident.SiteID, v wal.VmOut) {
			if !v.Trace.Valid() {
				return
			}
			hop := s.obsm.ring.BeginSpan(s.obsm.site, "vm-ack",
				v.Trace.Origin.String(), uint64(v.Trace.TS), s.newSpan(), v.Trace.Span)
			hop.Step("retire", fmt.Sprintf("peer=%v seq=%d item=%s", peer, v.Seq, v.Item))
			hop.Finish("acked")
		})
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// newSpan allocates a site-unique span id for the tracing layer (the
// site id in the high bits keeps ids distinct across sites, so a
// stitched tree never aliases parents).
func (s *Site) newSpan() uint64 {
	return uint64(s.cfg.ID)<<40 | s.spanCtr.Add(1)
}

// parkedCredits counts currently parked inbound Vm (the deferVm gate),
// exposed as the dvp_rebalance_parked_credits gauge.
func (s *Site) parkedCredits() int {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	n := 0
	for _, q := range s.deferredVm {
		n += len(q)
	}
	return n
}

// recover rebuilds volatile state from the stable log (§7). The
// volatile objects are reset in place, never replaced.
func (s *Site) recover() error {
	s.lamport.Reset()
	s.locks.Clear()
	s.vm.Reset()
	s.flow.reset()
	s.demand.reset()
	sum, err := recovery.RecoverOpts(s.cfg.Log, s.cfg.DB, s.vm, s.lamport,
		recovery.Options{Workers: s.cfg.RecoveryWorkers})
	if err != nil {
		return fmt.Errorf("site %v: %w", s.cfg.ID, err)
	}
	if sum.NetworkCalls != 0 {
		return fmt.Errorf("site %v: recovery made %d network calls", s.cfg.ID, sum.NetworkCalls)
	}
	s.obsm.recoverLat.Record(sum.Elapsed)
	s.obsm.recoverRecords.Add(uint64(sum.RecordsScanned))
	s.obsm.flight.Recordf(s.obsm.site, "recover",
		"cp=%d skipped=%d scanned=%d redone=%d workers=%d elapsed=%s",
		sum.CheckpointLSN, sum.CheckpointsSkipped, sum.RecordsScanned,
		sum.ActionsRedone, sum.Workers, sum.Elapsed)
	s.mu.Lock()
	s.lastRec = sum
	s.mu.Unlock()
	return nil
}

// LastRecovery reports what the most recent recovery pass did —
// experiment T3's per-site evidence that restart is independent and
// bounded by the log suffix.
func (s *Site) LastRecovery() recovery.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRec
}

// ID returns the site's identity.
func (s *Site) ID() ident.SiteID { return s.cfg.ID }

// Start attaches the site to the network and begins the Vm
// retransmission loop. Idempotent while up.
func (s *Site) Start() {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return
	}
	s.up = true
	s.epoch++
	s.epochUp.Store(s.epoch<<1 | 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopRetx = stop
	s.retxDone = done
	var stopRebal, rebalDone chan struct{}
	if s.cfg.Rebalance.Enabled {
		stopRebal = make(chan struct{})
		rebalDone = make(chan struct{})
		s.stopRebal = stopRebal
		s.rebalDone = rebalDone
	}
	var stopCkpt, ckptDone chan struct{}
	if s.autoCheckpoint() {
		stopCkpt = make(chan struct{})
		ckptDone = make(chan struct{})
		s.stopCkpt = stopCkpt
		s.ckptDone = ckptDone
	}
	s.mu.Unlock()

	s.cfg.Endpoint.SetHandler(s.handle)
	_ = s.cfg.Endpoint.Open()
	go s.retransmitLoop(stop, done)
	if stopRebal != nil {
		go s.rebalanceLoop(stopRebal, rebalDone)
	}
	if stopCkpt != nil {
		go s.checkpointLoop(stopCkpt, ckptDone)
	}
	s.obsm.flight.Recordf(s.obsm.site, "site-up", "epoch=%d", s.currentEpochValue())
}

// Crash kills the site: volatile state is lost, in-progress
// transactions abort (as seen by their clients), the network handler
// detaches. The stable log and durable store survive.
func (s *Site) Crash() {
	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	s.epochUp.Store(s.epoch << 1)
	close(s.stopRetx)
	s.stopRetx = nil
	done := s.retxDone
	s.retxDone = nil
	rebalDone := s.rebalDone
	if s.stopRebal != nil {
		close(s.stopRebal)
		s.stopRebal = nil
		s.rebalDone = nil
	}
	ckptDone := s.ckptDone
	if s.stopCkpt != nil {
		close(s.stopCkpt)
		s.stopCkpt = nil
		s.ckptDone = nil
	}
	ws := s.waiters
	s.waiters = make(map[ident.TxnID]*waiter)
	s.mu.Unlock()

	s.cfg.Endpoint.Close()
	// Fence: once the write lock is held, no message handler is
	// mid-flight, so nothing further reaches the log or store.
	s.lifeMu.Lock()
	s.lifeMu.Unlock() // empty critical section is the fence (SA2001, excluded in staticcheck.conf)
	// Join the retransmission, rebalancer and checkpointer loops.
	<-done
	if rebalDone != nil {
		<-rebalDone
	}
	if ckptDone != nil {
		<-ckptDone
	}
	// Wake every waiting transaction; they observe the epoch change
	// and report SiteDown.
	for _, w := range ws {
		w.wake()
	}
	// Volatile lock table is gone — recovery starts clean (§7). So
	// are parked Vm: retransmission re-covers them.
	s.locks.Clear()
	s.defMu.Lock()
	dropped := 0
	for _, q := range s.deferredVm {
		dropped += len(q)
	}
	s.deferredVm = make(map[ident.ItemID][]deferredVm)
	s.defMu.Unlock()
	s.obsm.flight.Recordf(s.obsm.site, "site-down", "waiters=%d parked_dropped=%d", len(ws), dropped)
}

// currentEpochValue reads the epoch without the up gate (lifecycle
// flight events fire on both sides of the transition).
func (s *Site) currentEpochValue() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Restart recovers from the stable log and rejoins the network,
// without talking to any other site.
func (s *Site) Restart() error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("site %v: restart while up", s.cfg.ID)
	}
	s.mu.Unlock()
	if err := s.recover(); err != nil {
		return err
	}
	s.Start()
	return nil
}

// Up reports whether the site is currently running.
func (s *Site) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up
}

// Stats returns a snapshot of the site's counters. Fast-path commits
// are counted in an atomic off s.mu and folded in here.
func (s *Site) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Committed += s.fastCommitted.Load()
	return st
}

// DB exposes the durable store (monitors, conservation checks).
func (s *Site) DB() *store.Durable { return s.cfg.DB }

// LogLastLSN reports the stable log's newest LSN (log growth metric).
func (s *Site) LogLastLSN() uint64 { return s.cfg.Log.LastLSN() }

// Log exposes the site's stable log for invariant checkers and fault
// harnesses (exactly-once audits scan it; never write to it).
func (s *Site) Log() wal.Log { return s.cfg.Log }

// VM exposes the Vm channel manager (conservation checks need the
// created-but-unaccepted sets on both sides of each channel).
func (s *Site) VM() *vmsg.Manager { return s.vm }

// stripeOf maps an item to its admission stripe (FNV-1a).
func (s *Site) stripeOf(item ident.ItemID) int {
	if len(s.stripes) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.stripes)))
}

// lockStripesFor acquires the stripes covering items (deduplicated,
// ascending — the deadlock-free total order) and returns the release.
func (s *Site) lockStripesFor(items []ident.ItemID) func() {
	if len(s.stripes) == 1 {
		s.stripes[0].Lock()
		return s.stripes[0].Unlock
	}
	need := make([]bool, len(s.stripes))
	for _, it := range items {
		need[s.stripeOf(it)] = true
	}
	var held []int
	for i := range s.stripes {
		if need[i] {
			s.stripes[i].Lock()
			held = append(held, i)
		}
	}
	return func() {
		for _, i := range held {
			s.stripes[i].Unlock()
		}
	}
}

// lockAllStripes takes every stripe in ascending order (Checkpoint's
// whole-site quiescent point) and returns the release.
func (s *Site) lockAllStripes() func() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
	return func() {
		for i := range s.stripes {
			s.stripes[i].Unlock()
		}
	}
}

// Checkpoint writes a checkpoint record capturing store and Vm state,
// bounding future recovery scans (§7), then compacts the log: records
// before the checkpoint are no longer needed (the checkpoint carries
// the store snapshot, channel cursors, pending Vm and clock).
//
// All stripes plus ckptMu's write side make the cut exact even
// against the commit path (which runs outside the stripes): every
// record below the compaction horizon is applied, every unapplied
// record survives compaction.
func (s *Site) Checkpoint() error {
	defer s.lockAllStripes()()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	rec := &wal.CheckpointRec{
		Items:    s.cfg.DB.Snapshot(),
		Channels: s.vm.SnapshotChannels(),
		Clock:    s.lamport.Current(),
	}
	payload := rec.Encode()
	lsn, err := s.cfg.Log.Append(wal.RecCheckpoint, payload)
	if err != nil {
		return err
	}
	// The record is durable: restart the growth counters even if the
	// compaction below is skipped or fails — recovery can already use
	// this checkpoint.
	s.ckptBytes.Store(0)
	s.ckptRecs.Store(0)
	s.obsm.ckptTotal.Inc()
	s.obsm.ckptBytes.Add(uint64(len(payload)))
	s.obsm.flight.Recordf(s.obsm.site, "checkpoint", "lsn=%d bytes=%d items=%d", lsn, len(payload), len(rec.Items))
	if h := s.checkpointHook(); h != nil {
		if err := h(CheckpointStagePreCompact); err != nil {
			return fmt.Errorf("site %v: checkpoint %s hook: %w", s.cfg.ID, CheckpointStagePreCompact, err)
		}
	}
	return s.cfg.Log.Compact(lsn - 1)
}

// autoCheckpoint reports whether the automatic checkpointer is armed.
func (s *Site) autoCheckpoint() bool {
	return s.cfg.CheckpointEveryBytes > 0 || s.cfg.CheckpointEveryRecords > 0
}

// logAppend is the site-internal append path: it writes to the stable
// log and feeds the automatic checkpointer's growth thresholds. All
// normal-processing appends (commit, Vm create/accept) go through it;
// Checkpoint itself appends directly so a checkpoint record never
// re-arms the trigger it just cleared.
func (s *Site) logAppend(kind wal.RecordKind, data []byte) (uint64, error) {
	lsn, err := s.cfg.Log.Append(kind, data)
	if err == nil {
		s.noteAppend(int64(len(data)))
	}
	return lsn, err
}

// noteAppend bumps the since-last-checkpoint counters and kicks the
// checkpointer goroutine when a threshold is crossed. The kick channel
// has one slot and drops when full: the loop coalesces bursts into one
// checkpoint, and a missed kick re-arms on the next append.
func (s *Site) noteAppend(n int64) {
	if !s.autoCheckpoint() {
		return
	}
	b := s.ckptBytes.Add(n)
	r := s.ckptRecs.Add(1)
	if (s.cfg.CheckpointEveryBytes > 0 && b >= s.cfg.CheckpointEveryBytes) ||
		(s.cfg.CheckpointEveryRecords > 0 && r >= int64(s.cfg.CheckpointEveryRecords)) {
		select {
		case s.ckptKick <- struct{}{}:
		default:
		}
	}
}

// checkpointLoop runs automatic checkpoints. It cannot run inline in
// the append paths — an appender holds its stripe and ckptMu's read
// side, exactly the locks Checkpoint needs — so threshold crossings
// kick this goroutine instead. It starts and stops with the site.
func (s *Site) checkpointLoop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-s.ckptKick:
		}
		if s.ckptPaused.Load() {
			continue // a later append past the threshold re-kicks
		}
		s.ckptRunMu.Lock()
		var err error
		if !s.ckptPaused.Load() {
			err = s.Checkpoint()
		}
		s.ckptRunMu.Unlock()
		if err != nil {
			s.obsm.flight.Recordf(s.obsm.site, "checkpoint-failed", "err=%v", err)
		}
	}
}

// SetCheckpointPaused gates the automatic checkpointer. Pausing joins
// any in-flight checkpoint before returning, so after the call no
// background compaction is running or will start — fault harnesses
// pause it across barrier audits that compare log and durable state.
// Like the rebalance pause, the flag survives crash/restart cycles.
func (s *Site) SetCheckpointPaused(p bool) {
	s.ckptPaused.Store(p)
	if p {
		s.ckptRunMu.Lock()
		s.ckptRunMu.Unlock() // empty critical section joins an in-flight run (SA2001, excluded in staticcheck.conf)
	}
}

// SetCheckpointHook installs a hook invoked at named stages inside
// Checkpoint (see CheckpointStagePreCompact). A hook returning an
// error makes Checkpoint return without compacting. Hooks must not
// block on site lifecycle transitions: Checkpoint holds every stripe
// while the hook runs, so a hook that wants to crash the site must do
// so from a fresh goroutine and return.
func (s *Site) SetCheckpointHook(h func(stage string) error) {
	s.ckptHookMu.Lock()
	s.ckptHook = h
	s.ckptHookMu.Unlock()
}

func (s *Site) checkpointHook() func(stage string) error {
	s.ckptHookMu.Lock()
	defer s.ckptHookMu.Unlock()
	return s.ckptHook
}

// peersExceptSelf returns every other site, in canonical order.
func (s *Site) peersExceptSelf() []ident.SiteID {
	out := make([]ident.SiteID, 0, len(s.cfg.Peers)-1)
	for _, p := range ident.SortSites(s.cfg.Peers) {
		if p != s.cfg.ID {
			out = append(out, p)
		}
	}
	return out
}

// currentEpoch returns the epoch if up, or 0,false if down.
func (s *Site) currentEpoch() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.up {
		return 0, false
	}
	return s.epoch, true
}

func (s *Site) sameEpoch(e uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up && s.epoch == e
}

// send stamps and dispatches one message with piggybacked Lamport
// clock and cumulative Vm ack (§4.2).
func (s *Site) send(to ident.SiteID, msg wire.Msg) {
	env := &wire.Envelope{
		To:      to,
		Lamport: tstamp.Make(s.lamport.Current(), s.cfg.ID),
		AckUpTo: s.vm.AckFor(to),
		Msg:     msg,
	}
	// Send errors are indistinguishable from message loss to the
	// protocol; the failure model already covers loss.
	_ = s.cfg.Endpoint.Send(env)
}
