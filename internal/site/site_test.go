package site

import (
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

func reserve(item ident.ItemID, n core.Value) *txn.Txn {
	return &txn.Txn{Ops: []txn.ItemOp{{Item: item, Op: core.Decr{M: n}}}, Ask: txn.AskAll, Label: "reserve"}
}

func cancel(item ident.ItemID, n core.Value) *txn.Txn {
	return &txn.Txn{Ops: []txn.ItemOp{{Item: item, Op: core.Incr{M: n}}}, Label: "cancel"}
}

func readItem(item ident.ItemID) *txn.Txn {
	return &txn.Txn{Reads: []ident.ItemID{item}, Ask: txn.AskAll, Label: "audit"}
}

// runRetry retries aborted transactions, the application-level loop
// the paper assumes ("the requests could be re-tried a few more
// times", §5). Each retry draws a fresher timestamp, which is also how
// a Conc1 rejection heals.
func runRetry(s *Site, t *txn.Txn, attempts int) *txn.Result {
	var res *txn.Result
	for i := 0; i < attempts; i++ {
		res = s.Run(t)
		if res.Committed() {
			return res
		}
	}
	return res
}

func TestWriteOnlyCommitsLocally(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 1}, nil)
	tc.createItem("flight/A", 100)
	res := tc.sites[0].Run(cancel("flight/A", 5))
	if !res.Committed() {
		t.Fatalf("write-only txn: %v", res.Status)
	}
	if res.RequestsSent != 0 {
		t.Errorf("write-only txn sent %d requests", res.RequestsSent)
	}
	if v := tc.sites[0].DB().Value("flight/A"); v != 30 {
		t.Errorf("local quota = %d, want 30", v)
	}
	tc.settle()
	if got := tc.globalTotal("flight/A"); got != 105 {
		t.Errorf("global total = %d, want 105", got)
	}
}

func TestLocalDecrementNoMessages(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 1}, nil)
	tc.createItem("flight/A", 100)
	res := tc.sites[1].Run(reserve("flight/A", 10))
	if !res.Committed() {
		t.Fatalf("local reserve: %v", res.Status)
	}
	if res.RequestsSent != 0 {
		t.Errorf("adequate local quota still sent %d requests", res.RequestsSent)
	}
	st := tc.net.Stats()
	if st.Sent != 0 {
		t.Errorf("locally-satisfiable txn generated %d network messages", st.Sent)
	}
}

func TestRedistributionSection3(t *testing.T) {
	// The paper's §3 worked example: quotas (2,3,10,15); a customer
	// wants 5 seats at X (site 2); Z grants; the txn commits.
	tc := newTestCluster(t, 4, simnet.Config{Seed: 2, MaxDelay: time.Millisecond}, nil)
	quotas := []core.Value{2, 3, 10, 15}
	for i, s := range tc.sites {
		if err := s.DB().Create("flight/A", quotas[i]); err != nil {
			t.Fatal(err)
		}
	}
	res := tc.sites[1].Run(reserve("flight/A", 5))
	if !res.Committed() {
		t.Fatalf("reserve 5 at X: %v", res.Status)
	}
	if res.RequestsSent == 0 {
		t.Error("shortfall must trigger requests")
	}
	if res.VmAccepted == 0 {
		t.Error("txn should have accepted at least one Vm")
	}
	tc.waitQuiescent("flight/A", time.Second)
	if got := tc.globalTotal("flight/A"); got != 25 {
		t.Errorf("N = %d, want 25 (30 - 5 reserved)", got)
	}
}

func TestInsufficientGlobalValueAborts(t *testing.T) {
	tc := newTestCluster(t, 3, simnet.Config{Seed: 3}, nil)
	tc.createItem("flight/A", 9) // 3 each
	res := tc.sites[0].Run(reserve("flight/A", 50))
	if res.Status != txn.StatusTimeout {
		t.Fatalf("impossible reserve: %v, want timeout", res.Status)
	}
	tc.waitQuiescent("flight/A", time.Second)
	// Aborted transaction is an Rds transaction: value redistributed
	// (gathered at site 1) but never destroyed.
	if got := tc.globalTotal("flight/A"); got != 9 {
		t.Errorf("N = %d, want 9 after abort", got)
	}
}

func TestFullReadGathersEverything(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 4, MaxDelay: time.Millisecond}, nil)
	tc.createItem("flight/A", 100)
	res := tc.sites[2].Run(readItem("flight/A"))
	if !res.Committed() {
		t.Fatalf("full read: %v", res.Status)
	}
	if got := res.Reads["flight/A"]; got != 100 {
		t.Errorf("read N = %d, want 100", got)
	}
	// All value now lives at the reading site.
	if v := tc.sites[2].DB().Value("flight/A"); v != 100 {
		t.Errorf("reader's quota = %d, want 100", v)
	}
	for i, s := range tc.sites {
		if i != 2 && s.DB().Value("flight/A") != 0 {
			t.Errorf("site %v still holds %d", s.ID(), s.DB().Value("flight/A"))
		}
	}
}

func TestReadAfterUpdatesSeesNetValue(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 5, MaxDelay: time.Millisecond}, nil)
	tc.createItem("flight/A", 100)
	if res := tc.sites[0].Run(reserve("flight/A", 10)); !res.Committed() {
		t.Fatal(res.Status)
	}
	if res := tc.sites[3].Run(cancel("flight/A", 4)); !res.Committed() {
		t.Fatal(res.Status)
	}
	// The first read attempt may be declined under Conc1 (its TS can
	// be older than stamps left by the updates — sites' clocks only
	// sync via messages); a retry draws a fresher TS.
	res := runRetry(tc.sites[1], readItem("flight/A"), 3)
	if !res.Committed() {
		t.Fatalf("read: %v", res.Status)
	}
	if got := res.Reads["flight/A"]; got != 94 {
		t.Errorf("read N = %d, want 94", got)
	}
}

func TestLockConflictAbortsImmediately(t *testing.T) {
	tc := newTestCluster(t, 2, simnet.Config{Seed: 6}, nil)
	tc.createItem("hot", 0) // zero quota: txn will wait on requests
	// First txn grabs the lock and waits (shortfall unsatisfiable).
	done := make(chan *txn.Result, 1)
	go func() { done <- tc.sites[0].Run(reserve("hot", 5)) }()
	// Wait for it to actually hold the lock (no wall-clock guess).
	waitUntil(t, 2*time.Second, "first txn holds the lock", func() bool {
		return lockHeld(tc.sites[0], "hot")
	})
	res2 := tc.sites[0].Run(reserve("hot", 1))
	if res2.Status != txn.StatusLockConflict && res2.Status != txn.StatusCCRejected {
		t.Errorf("concurrent same-site txn: %v, want immediate lock/cc abort", res2.Status)
	}
	res1 := <-done
	if res1.Status != txn.StatusTimeout {
		t.Errorf("first txn: %v, want timeout", res1.Status)
	}
}

func TestTransferBetweenItems(t *testing.T) {
	tc := newTestCluster(t, 3, simnet.Config{Seed: 7, MaxDelay: time.Millisecond}, nil)
	tc.createItem("flight/A", 30)
	tc.createItem("flight/B", 30)
	// Change reservation: one seat from A to B at site 1.
	change := &txn.Txn{
		Ops: []txn.ItemOp{
			{Item: "flight/A", Op: core.Incr{M: 1}},
			{Item: "flight/B", Op: core.Decr{M: 1}},
		},
		Ask:   txn.AskAll,
		Label: "change",
	}
	res := tc.sites[0].Run(change)
	if !res.Committed() {
		t.Fatalf("change txn: %v", res.Status)
	}
	tc.waitQuiescent("flight/A", time.Second)
	if a, b := tc.globalTotal("flight/A"), tc.globalTotal("flight/B"); a != 31 || b != 29 {
		t.Errorf("totals A=%d B=%d, want 31/29", a, b)
	}
}

func TestNonBlockingUnderTotalPartition(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 8}, nil)
	tc.createItem("flight/A", 100)
	// Isolate every site.
	tc.net.Partition([]ident.SiteID{1}, []ident.SiteID{2}, []ident.SiteID{3}, []ident.SiteID{4})

	// Local-quota transactions still commit.
	res := tc.sites[0].Run(reserve("flight/A", 20))
	if !res.Committed() {
		t.Errorf("local txn during partition: %v", res.Status)
	}
	// Remote-needing transactions abort within the bound — never hang.
	start := time.Now()
	res2 := tc.sites[1].Run(&txn.Txn{
		Ops:     []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 50}}},
		Timeout: 60 * time.Millisecond,
		Ask:     txn.AskAll,
	})
	elapsed := time.Since(start)
	if res2.Status != txn.StatusTimeout {
		t.Errorf("partitioned remote txn: %v, want timeout", res2.Status)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("abort took %v — not within the local bound", elapsed)
	}
	// Reads abort too (cannot gather), but never hang.
	res3 := tc.sites[2].Run(&txn.Txn{
		Reads:   []ident.ItemID{"flight/A"},
		Timeout: 60 * time.Millisecond,
	})
	if res3.Status != txn.StatusTimeout {
		t.Errorf("partitioned read: %v", res3.Status)
	}

	// Heal: everything flows again.
	tc.net.Heal()
	res4 := tc.sites[1].Run(reserve("flight/A", 50))
	if !res4.Committed() {
		t.Errorf("post-heal txn: %v", res4.Status)
	}
	tc.waitQuiescent("flight/A", time.Second)
	if got := tc.globalTotal("flight/A"); got != 30 {
		t.Errorf("N = %d, want 30", got)
	}
}

func TestValueSurvivesLossyNetwork(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{
		Seed: 9, LossProb: 0.3, DupProb: 0.2, MaxDelay: 2 * time.Millisecond,
	}, nil)
	tc.createItem("acct/x", 400)
	committed := 0
	for i := 0; i < 30; i++ {
		s := tc.sites[i%4]
		res := s.Run(&txn.Txn{
			Ops:     []txn.ItemOp{{Item: "acct/x", Op: core.Decr{M: 20}}},
			Timeout: 200 * time.Millisecond,
			Ask:     txn.AskAll,
		})
		if res.Committed() {
			committed++
		}
	}
	tc.waitQuiescent("acct/x", 3*time.Second)
	want := core.Value(400 - committed*20)
	if got := tc.globalTotal("acct/x"); got != want {
		t.Errorf("N = %d, want %d (%d committed): conservation violated under loss",
			got, want, committed)
	}
	if committed == 0 {
		t.Error("nothing committed under 30% loss — retransmission broken?")
	}
}

func TestQuotaQueryIntrospection(t *testing.T) {
	tc := newTestCluster(t, 2, simnet.Config{Seed: 10}, nil)
	tc.createItem("flight/A", 10)
	// A monitor endpoint (site 99) queries site 1's local quota.
	got := make(chan core.Value, 1)
	ep := tc.net.Endpoint(99)
	ep.SetHandler(func(env *wire.Envelope) {
		if r, ok := env.Msg.(*wire.QuotaReply); ok && r.Known {
			got <- r.Value
		}
	})
	if err := ep.Send(&wire.Envelope{To: 1, Msg: &wire.QuotaQuery{Nonce: 1, Item: "flight/A"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 5 {
			t.Errorf("quota reply = %d, want 5", v)
		}
	case <-time.After(time.Second):
		t.Fatal("no quota reply")
	}
}
