package site

import (
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wal"
)

// maxFastOps bounds the fixed-size scratch of the local-commit fast
// path; wider transactions take the slow path, whose per-transaction
// allocations they amortize anyway.
const maxFastOps = 8

// runFast is the local-commit fast path: the paper's §5 observation
// that "in case of write-only transactions, the initial steps of data
// redistribution can be ignored", pushed all the way down the
// implementation. A write-only transaction whose items all hold
// adequate local quota commits without building the waiter machinery,
// without any map or slice allocation, and without ever taking s.mu:
// per-item composed needs and deltas live in fixed arrays, the quota
// pre-check reads lock-free atomic hints, stripes are locked by
// bitmask, and the commit/applied records are encoded into pooled
// wire buffers.
//
// It returns nil to decline — wrong shape, hint miss, stale hint, or
// site down — and the caller falls through to the full protocol.
// Correctness never depends on the hints: after the stripes are held,
// the authoritative store values are re-checked, and a hint that lied
// high merely costs the fall-back. A hint that lies low only sends
// eligible traffic down the slow path.
//
// Lock order matches the slow path's commit phase: lifeMu.RLock ≺
// stripes ≺ ckptMu.RLock. lifeMu is taken FIRST and held from the
// liveness check through apply — taking a stripe before lifeMu would
// deadlock against Crash's fence (a pending lifeMu writer blocks new
// readers while a handler holding the read side waits on our stripe).
// Holding one read-side across check+append also gives the same
// crash atomicity as runSlow's sameEpoch: once Crash returns, no
// stale-epoch commit record can still reach the log.
func (s *Site) runFast(t *txn.Txn) *txn.Result {
	if s.cfg.DisableFastPath || len(t.Reads) > 0 || len(t.Ops) == 0 ||
		len(t.Ops) > maxFastOps || len(s.stripes) > 64 {
		return nil
	}

	// Fold the op list into per-item composed (need, delta) pairs in
	// fixed scratch — core's composite running-requirement rule,
	// without allocating a composite or a map.
	var (
		items  [maxFastOps]ident.ItemID
		needs  [maxFastOps]core.Value
		deltas [maxFastOps]core.Value
		n      int
	)
	for _, op := range t.Ops {
		idx := -1
		for i := 0; i < n; i++ {
			if items[i] == op.Item {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = n
			items[idx] = op.Item
			n++
		}
		if need := op.Op.Needs() - deltas[idx]; need > needs[idx] {
			needs[idx] = need
		}
		deltas[idx] += op.Op.Delta()
	}

	// Advisory gate: every item must look locally adequate. A missing
	// or stale-low hint routes to the slow path, which can
	// redistribute; no locks are held yet, so declining is free.
	for i := 0; i < n; i++ {
		if hv, ok := s.cfg.DB.HintValue(items[i]); !ok || hv < needs[i] {
			s.obsm.fastFallbacks.Inc()
			return nil
		}
	}

	start := s.cfg.Clock.Now()
	s.lifeMu.RLock()
	if s.epochUp.Load()&1 == 0 {
		s.lifeMu.RUnlock()
		s.obsm.fastFallbacks.Inc()
		return nil // down; runSlow reports SiteDown uniformly
	}

	tr := s.obsm.ring.Begin(s.obsm.site, t.Label)
	if tr != nil {
		tr.SetSpan(s.newSpan())
	}
	ts := s.lamport.Next()
	id := ts.Txn()
	tr.SetTS(uint64(ts))
	segStart := s.fastStep(tr, "admit", start)

	var mask uint64
	for i := 0; i < n; i++ {
		mask |= 1 << uint(s.stripeOf(items[i]))
	}
	s.lockStripeMask(mask)

	// Admission under the stripes — the same admitLocked the slow path
	// runs, here with needs: one Get per item serves both the
	// concurrency-control check and the authoritative quota re-check
	// (the stripes exclude every mutator of these items, so the values
	// cannot move under us).
	switch s.admitLocked(ts, items[:n], needs[:n]) {
	case admitCCRejected:
		s.unlockStripeMask(mask)
		s.lifeMu.RUnlock()
		return s.fastAbort(t, tr, start, ts, txn.StatusCCRejected)
	case admitShort:
		// The hint lied high. Release everything untouched and
		// let the slow path redistribute.
		s.unlockStripeMask(mask)
		s.lifeMu.RUnlock()
		s.obsm.fastFallbacks.Inc()
		tr.Finish("fast-fallback")
		return nil
	}
	segStart = s.fastStep(tr, "cc-check", segStart)

	if !s.lockAndStamp(ts, id, items[:n]) {
		s.unlockStripeMask(mask)
		s.lifeMu.RUnlock()
		s.obsm.flight.Recordf(s.obsm.site, "lock-conflict", "txn=%v label=%s items=%d", ts, t.Label, n)
		return s.fastAbort(t, tr, start, ts, txn.StatusLockConflict)
	}
	segStart = s.fastStep(tr, "lock", segStart)

	// Commit record actions in fixed scratch; zero net deltas drop out
	// exactly as in runSlow step 5.
	var actions [maxFastOps]wal.Action
	m := 0
	for i := 0; i < n; i++ {
		if deltas[i] != 0 {
			actions[m] = wal.Action{Item: items[i], Delta: deltas[i], SetTS: ts}
			m++
		}
	}

	// commitDurably with the stripes still held — the items' stripes
	// cover the written items, so this is the same atomic unit as
	// runSlow's step 5/6, through the same shared durability core
	// (pooled wire buffers, append + apply + applied record under
	// ckptMu's read side). actions is stack scratch; commitDurably
	// only borrows it.
	lsn, err := s.commitDurably(ts, actions[:m])
	if err != nil {
		s.unlockStripeMask(mask)
		s.lifeMu.RUnlock()
		s.locks.ReleaseAll(id)
		s.redeliverDeferred(items[:n])
		return s.fastAbort(t, tr, start, ts, txn.StatusSiteDown)
	}
	segStart = s.fastStep(tr, "wal-flush", segStart)
	s.unlockStripeMask(mask)
	s.lifeMu.RUnlock()
	s.fastStep(tr, "apply", segStart)

	// Step-7 bookkeeping while the transaction's locks are still held:
	// every written item registers this commit on its flow vector.
	var widx [maxFastOps]uint64
	for i := 0; i < m; i++ {
		widx[i] = s.flow.writerCommit(actions[i].Item, s.cfg.ID)
	}
	s.locks.ReleaseAll(id)
	s.redeliverDeferred(items[:n])

	// Demand signal (negative deltas are consumption), map-free.
	if s.demand != nil && m > 0 {
		now := s.cfg.Clock.Now()
		for i := 0; i < m; i++ {
			if actions[i].Delta < 0 {
				s.demand.record(actions[i].Item, -actions[i].Delta, now)
			}
		}
	}

	// The observation maps are built only when someone listens — the
	// hook is the one consumer that genuinely needs them.
	if s.cfg.OnCommit != nil {
		deltaMap := make(map[ident.ItemID]core.Value, n)
		for i := 0; i < n; i++ {
			deltaMap[items[i]] = deltas[i]
		}
		writerIdx := make(map[ident.ItemID]uint64, m)
		for i := 0; i < m; i++ {
			writerIdx[actions[i].Item] = widx[i]
		}
		s.cfg.OnCommit(CommitInfo{
			TS: ts, Site: s.cfg.ID, Deltas: deltaMap,
			Reads:     map[ident.ItemID]core.Value{},
			WriterIdx: writerIdx, ReadVec: map[ident.ItemID]FlowVec{},
			Label: t.Label, CommitLSN: lsn,
		})
	}

	s.countOutcome(txn.StatusCommitted)
	s.obsm.fastCommits.Inc()
	res := &txn.Result{Status: txn.StatusCommitted, TS: ts}
	res.Latency = s.cfg.Clock.Now().Sub(start)
	s.obsm.observeTxn(t.Label, txn.StatusCommitted, res.Latency)
	tr.Finish(txn.StatusCommitted.String())
	return res
}

// fastStep records one protocol-step boundary of the fast path — the
// same step names a shortfall-free slow run emits, so traces and
// dvp_step_seconds keep one shape across both paths. A plain method
// instead of runSlow's closure: closures capture by reference and
// heap-allocate, which is exactly what this path exists to avoid.
func (s *Site) fastStep(tr *obs.TxnTrace, name string, segStart time.Time) time.Time {
	now := s.cfg.Clock.Now()
	s.obsm.observeStep(name, now.Sub(segStart))
	tr.Step(name, "")
	return now
}

// fastAbort finishes a fast-path transaction with a real decision
// (CCRejected, LockConflict or SiteDown) — identical accounting to
// runSlow's finish.
func (s *Site) fastAbort(t *txn.Txn, tr *obs.TxnTrace, start time.Time, ts tstamp.TS, status txn.Status) *txn.Result {
	res := &txn.Result{Status: status, TS: ts}
	res.Latency = s.cfg.Clock.Now().Sub(start)
	s.countOutcome(status)
	s.obsm.observeTxn(t.Label, status, res.Latency)
	tr.Finish(status.String())
	return res
}
