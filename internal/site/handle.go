package site

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/tstamp"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// handle is the network entry point. It folds the piggybacked Lamport
// clock and Vm acknowledgement into local state (§4.2), then
// dispatches by message kind. Each handler serializes on the target
// item's admission stripe — per-item arrival order, which is all
// Conc1 needs; under Conc2 the single stripe restores the paper's
// whole-site "processed in the order of their arrival" model.
func (s *Site) handle(env *wire.Envelope) {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if !up {
		return
	}

	s.lamport.Observe(env.Lamport)
	s.vm.OnAck(env.From, env.AckUpTo)

	switch m := env.Msg.(type) {
	case *wire.Request:
		s.handleRequest(env.From, m)
	case *wire.Vm:
		s.handleVm(env.From, m)
	case *wire.VmBatch:
		s.handleVmBatch(env.From, m)
	case *wire.VmAck:
		s.vm.OnAck(env.From, m.UpTo)
	case *wire.DemandAdvert:
		s.demand.observeAdvert(env.From, m.Entries, s.cfg.Clock.Now())
		s.obsm.advertsRecv.Inc()
	case *wire.QuotaQuery:
		s.send(env.From, &wire.QuotaReply{
			Nonce: m.Nonce,
			Item:  m.Item,
			Value: s.cfg.DB.Value(m.Item),
			Known: true,
		})
	default:
		// Baseline traffic or introspection replies: not ours.
	}
}

// handleRequest implements the remote site's side of §5: decide
// whether to honor a request for local quota, and if so create the
// virtual message that carries it.
func (s *Site) handleRequest(from ident.SiteID, req *wire.Request) {
	hopStart := s.cfg.Clock.Now()
	// A traced request grows an rds-create span here: the deduct half
	// of the redistribution, parented on the requester's root span.
	var hop *obs.TxnTrace
	var hopSpan uint64
	if req.Trace.Valid() && s.obsm.ring != nil {
		hopSpan = s.newSpan()
		hop = s.obsm.ring.BeginSpan(s.obsm.site, "rds-create",
			req.Trace.Origin.String(), uint64(req.Trace.TS), hopSpan, req.Trace.Span)
	}

	stripe := &s.stripes[s.stripeOf(req.Item)]
	stripe.Lock()

	decline := func(reason string) {
		stripe.Unlock()
		s.mu.Lock()
		s.stats.RequestsDeclined++
		s.mu.Unlock()
		s.obsm.forPeer(from).declined.Inc()
		s.obsm.flight.Recordf(s.obsm.site, "rds-decline", "from=%v item=%s txn=%v reason=%s", from, req.Item, req.Txn, reason)
		hop.Finish("declined:" + reason)
	}

	// "If there is currently a lock on d_j, site s_j can simply
	// decide not to honor the request" (§5).
	if s.locks.Holder(req.Item) != ident.NoTxn {
		decline("locked")
		return
	}
	// Concurrency control admission (§6.1): honor only if
	// TS(t) > TS(d_j) under Conc1.
	it, _ := s.cfg.DB.Get(req.Item)
	if !s.policy.AllowLock(req.Txn, it.TS) {
		decline("cc")
		return
	}
	// Full reads require the complete local share: no outstanding Vm
	// may still carry this item away from us (§5).
	if req.FullRead && s.vm.HasOutstanding(req.Item) {
		decline("outstanding-vm")
		return
	}
	have := s.cfg.DB.Value(req.Item)
	var grant core.Value
	if req.FullRead {
		grant = have // the entire holding, even zero
	} else {
		grant = s.grant.Grant(have, req.Want)
		if grant <= 0 {
			// Nothing useful to give; ignoring the request is
			// always safe — the requester's timeout bounds it.
			decline("no-grant")
			return
		}
	}

	// Honor: this is an Rds transaction acting at this site (§6).
	// Lock, stamp, log the [database-actions, message-sequence]
	// record, apply, unlock — all before the real message leaves.
	rdsID := req.Txn.Txn()
	if !s.locks.TryLock(rdsID, req.Item) {
		decline("lock-race")
		return
	}
	if s.policy.StampOnLock() {
		s.cfg.DB.SetTS(req.Item, req.Txn)
	}
	seq := s.vm.AllocSeq(from)
	var stamp = it.TS
	if s.policy.StampOnLock() {
		stamp = req.Txn
	}
	rec := &wal.VmCreateRec{
		Actions: []wal.Action{{Item: req.Item, Delta: -grant, SetTS: stamp}},
		Msgs: []wal.VmOut{{
			To: from, Seq: seq, Item: req.Item, Amount: grant, ReqTxn: req.Txn,
			FlowVec: s.flow.snapshot(req.Item).Entries(),
		}},
	}
	if hopSpan != 0 {
		// The outgoing Vm carries this hop's span as the parent of
		// the receiver's vm-accept and our own eventual vm-ack span.
		rec.Msgs[0].Trace = wire.TraceCtx{Origin: req.Trace.Origin, TS: req.Trace.TS, Span: hopSpan}
	}
	s.ckptMu.RLock()
	lsn, err := s.logAppend(wal.RecVmCreate, rec.Encode())
	if err != nil {
		s.ckptMu.RUnlock()
		s.locks.Unlock(rdsID, req.Item)
		decline("log-error")
		return
	}
	hop.Step("wal-flush", fmt.Sprintf("lsn=%d grant=%d seq=%d", lsn, grant, seq))
	s.vm.Created(rec.Msgs)
	if _, err := s.cfg.DB.ApplyAll(lsn, rec.Actions); err != nil {
		panic("site: vm-create actions failed to apply: " + err.Error())
	}
	s.ckptMu.RUnlock()
	s.locks.Unlock(rdsID, req.Item)
	stripe.Unlock()
	hop.Step("apply", "")

	s.reportRds(stamp, req.Item, -grant)
	s.obsm.observeStep("rds-create", s.cfg.Clock.Now().Sub(hopStart))
	s.obsm.flight.Recordf(s.obsm.site, "rds-create", "to=%v item=%s amount=%d seq=%d", from, req.Item, grant, seq)
	s.mu.Lock()
	s.stats.RequestsHonored++
	s.stats.VmCreated++
	s.mu.Unlock()
	po := s.obsm.forPeer(from)
	po.honored.Inc()
	po.vmCreated.Inc()

	s.sendVm(rec.Msgs[0])
	hop.Finish("honored")
}

// handleVm implements Vm acceptance (§4.2, §5): exactly-once crediting
// of the carried value, by an Rds transaction when the item is free,
// by the waiting transaction itself when it holds the lock, and
// deferral (ignore; retransmission will return) when an unrelated
// transaction holds it.
func (s *Site) handleVm(from ident.SiteID, m *wire.Vm) {
	if s.processVm(from, m) {
		s.send(from, &wire.VmAck{UpTo: s.vm.AckFor(from)})
	}
}

// handleVmBatch accepts each carried Vm independently, then sends one
// cumulative ack for the whole batch — the receiving half of Vm
// piggybacking (one envelope, many Vm; one ack envelope back).
func (s *Site) handleVmBatch(from ident.SiteID, b *wire.VmBatch) {
	ack := false
	for i := range b.Vms {
		if s.processVm(from, &b.Vms[i]) {
			ack = true
		}
	}
	if ack {
		s.send(from, &wire.VmAck{UpTo: s.vm.AckFor(from)})
	}
}

// processVm is the acceptance path for one Vm (§4.2, §5). It reports
// whether an ack is owed (accepted or duplicate); a deferral (item
// locked by a non-waiting transaction) owes none — retransmission
// will return.
func (s *Site) processVm(from ident.SiteID, m *wire.Vm) bool {
	hopStart := s.cfg.Clock.Now()
	// A traced Vm grows a vm-accept span here: the credit half of the
	// redistribution, parented on the sender's rds-create span.
	var hop *obs.TxnTrace
	if m.Trace.Valid() && s.obsm.ring != nil {
		hop = s.obsm.ring.BeginSpan(s.obsm.site, "vm-accept",
			m.Trace.Origin.String(), uint64(m.Trace.TS), s.newSpan(), m.Trace.Span)
	}

	stripe := &s.stripes[s.stripeOf(m.Item)]
	stripe.Lock()

	if !s.vm.ShouldAccept(from, m.Seq) {
		stripe.Unlock()
		s.mu.Lock()
		s.stats.VmDuplicates++
		s.mu.Unlock()
		s.obsm.forPeer(from).vmDups.Inc()
		hop.Finish("duplicate")
		// Duplicate: re-ack so the sender can retire it.
		return true
	}

	var w *waiter
	holder := s.locks.Holder(m.Item)
	if holder != ident.NoTxn {
		s.mu.Lock()
		w = s.waiters[holder]
		s.mu.Unlock()
		if w == nil || m.ReqTxn != w.ts {
			// Locked by a transaction not in its waiting phase, or a
			// Vm not addressed to the waiting holder (an unsolicited
			// rebalancer credit, or a grant for an older incarnation
			// of the request): "if it is locked, the message can be
			// ignored; it will eventually be sent again anyway"
			// (§4.2). Consuming a foreign credit at the waiter's
			// timestamp would splice it into that transaction's
			// serial position even though the matching deduct
			// serialized elsewhere — the waiter's full read would
			// observe value its serial position cannot explain. The
			// Vm is parked and redelivered when the lock releases.
			s.deferVm(from, m)
			stripe.Unlock()
			hop.Finish("deferred")
			return false
		}
	}

	// Accept: log first (the record is the acceptance), then credit.
	rec := &wal.VmAcceptRec{
		From:    from,
		Seq:     m.Seq,
		Actions: []wal.Action{{Item: m.Item, Delta: m.Amount}},
	}
	var creditTS tstamp.TS
	if w != nil {
		// The waiting transaction consumes the credit: it serializes
		// inside that transaction, at its timestamp.
		creditTS = w.ts
	} else {
		// Accepting into a free item is an Rds transaction of its own
		// (§6): it draws a fresh timestamp and, under Conc1, stamps the
		// value. Without the stamp a later full read could be admitted
		// at a timestamp below the credit it already observed — ordered
		// before it in the serial history, yet seeing its effect.
		creditTS = s.lamport.Next()
		if s.policy.StampOnLock() {
			rec.Actions[0].SetTS = creditTS
		}
	}
	if m.Amount == 0 {
		// Zero-value Vm (a full-read "I hold nothing" response)
		// still needs the acceptance record for dedup state.
		rec.Actions = nil
	}
	s.ckptMu.RLock()
	lsn, err := s.logAppend(wal.RecVmAccept, rec.Encode())
	if err != nil {
		s.ckptMu.RUnlock()
		stripe.Unlock()
		hop.Finish("log-error")
		return false
	}
	hop.Step("wal-flush", fmt.Sprintf("lsn=%d amount=%d seq=%d", lsn, m.Amount, m.Seq))
	s.vm.MarkAccepted(from, m.Seq)
	if _, err := s.cfg.DB.ApplyAll(lsn, rec.Actions); err != nil {
		panic("site: vm-accept actions failed to apply: " + err.Error())
	}
	s.ckptMu.RUnlock()
	s.flow.merge(m.Item, flowVecFromEntries(m.FlowVec))
	stripe.Unlock()
	hop.Step("apply", "")

	s.reportRds(creditTS, m.Item, m.Amount)
	s.obsm.observeStep("vm-apply", s.cfg.Clock.Now().Sub(hopStart))
	s.obsm.flight.Recordf(s.obsm.site, "vm-accept", "from=%v item=%s amount=%d seq=%d", from, m.Item, m.Amount, m.Seq)
	s.obsm.forPeer(from).vmAccepted.Inc()
	s.mu.Lock()
	s.stats.VmAccepted++
	if w != nil {
		w.accepted++
		if w.reads[m.Item] {
			w.responded[m.Item][from] = true
		}
	}
	s.mu.Unlock()

	if w != nil {
		w.wake()
	}
	hop.Finish("accepted")
	return true
}

// deferredVm is one parked inbound Vm awaiting its item's unlock.
type deferredVm struct {
	from ident.SiteID
	vm   wire.Vm
}

// maxDeferredPerItem bounds parked Vm per item; beyond it the sender's
// retransmission is the delivery path, as in plain §4.2.
const maxDeferredPerItem = 16

// deferVm parks a Vm whose item was locked, for redelivery on unlock.
// Duplicates (a retransmission racing the parked copy) collapse.
func (s *Site) deferVm(from ident.SiteID, m *wire.Vm) {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	q := s.deferredVm[m.Item]
	for i := range q {
		if q[i].from == from && q[i].vm.Seq == m.Seq {
			return
		}
	}
	if len(q) >= maxDeferredPerItem {
		return
	}
	s.deferredVm[m.Item] = append(q, deferredVm{from: from, vm: *m})
	s.obsm.flight.Recordf(s.obsm.site, "vm-defer", "from=%v item=%s seq=%d parked=%d", from, m.Item, m.Seq, len(q)+1)
}

// redeliverDeferred re-runs the acceptance path for Vm parked on the
// given items. Called after a transaction releases its locks — the
// parked Vm land in the unlock window instead of waiting out the
// sender's retransmit interval (which an item locked back-to-back may
// never overlap). A redelivered Vm that finds the item locked again
// simply parks again.
func (s *Site) redeliverDeferred(items []ident.ItemID) {
	var batch []deferredVm
	s.defMu.Lock()
	for _, item := range items {
		if q := s.deferredVm[item]; len(q) > 0 {
			batch = append(batch, q...)
			delete(s.deferredVm, item)
		}
	}
	s.defMu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Mirror the network entry point: the lifeMu fence and up-check
	// keep redelivery inside the site's lifetime (exec's own lifeMu
	// window has already closed by the time its unlock defer runs).
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if !up {
		return
	}
	s.obsm.flight.Recordf(s.obsm.site, "vm-redeliver", "count=%d", len(batch))
	for i := range batch {
		s.handleVm(batch[i].from, &batch[i].vm)
	}
}

// reportRds fires the OnRds hook for one redistribution half. Zero
// deltas (full-read "I hold nothing" responses) are not halves of
// anything and are skipped.
func (s *Site) reportRds(ts tstamp.TS, item ident.ItemID, delta core.Value) {
	if s.cfg.OnRds != nil && delta != 0 {
		s.cfg.OnRds(RdsInfo{TS: ts, Site: s.cfg.ID, Item: item, Delta: delta})
	}
}

// sendVm transmits one real message for a virtual message.
func (s *Site) sendVm(v wal.VmOut) {
	s.send(v.To, &wire.Vm{
		Seq: v.Seq, Item: v.Item, Amount: v.Amount, ReqTxn: v.ReqTxn,
		FlowVec: v.FlowVec, Trace: v.Trace,
	})
}

// flowVecFromEntries converts wire form to the merge form.
func flowVecFromEntries(es []wire.FlowEntry) FlowVec {
	if len(es) == 0 {
		return nil
	}
	out := make(FlowVec, len(es))
	for _, e := range es {
		out[e.Site] = e.Count
	}
	return out
}

// maxVmPerEnvelope bounds how many Vm one retransmission envelope
// carries (stays well inside the wire frame limit).
const maxVmPerEnvelope = 64

// retransmitLoop periodically resends every unacknowledged Vm — the
// guaranteed-delivery engine behind "a Vm is never lost" (§4.2). All
// pending Vm toward one peer coalesce into VmBatch envelopes: the
// retransmission tick fires them together anyway, so one frame (and
// one piggybacked ack back) carries the lot. The tick is only an
// upper bound on the pace: per-peer adaptive backoff (vmsg
// DueRetransmit, seeded by the ack-RTT EWMA, doubling to
// RetransmitMax, reset by the first advancing ack) decides whether a
// given peer's sweep actually fires, so a long-dead peer costs one
// sweep per RetransmitMax instead of one per tick.
func (s *Site) retransmitLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-s.cfg.Clock.After(s.cfg.RetransmitEvery):
		}
		now := s.cfg.Clock.Now()
		total := 0
		perPeer := make(map[ident.SiteID][]wal.VmOut)
		for _, p := range s.peersExceptSelf() {
			if !s.vm.DueRetransmit(p, now, s.cfg.RetransmitEvery, s.cfg.RetransmitMax) {
				continue
			}
			if vms := s.vm.PendingTo(p); len(vms) > 0 {
				perPeer[p] = vms
				total += len(vms)
			}
		}
		if total == 0 {
			continue
		}
		s.mu.Lock()
		if !s.up {
			s.mu.Unlock()
			return
		}
		s.stats.Retransmissions += uint64(total)
		s.mu.Unlock()
		s.obsm.retx.Add(uint64(total))
		for _, p := range s.peersExceptSelf() {
			vms := perPeer[p]
			for len(vms) > 0 {
				n := len(vms)
				if n > maxVmPerEnvelope {
					n = maxVmPerEnvelope
				}
				if n == 1 {
					s.sendVm(vms[0])
				} else {
					batch := &wire.VmBatch{Vms: make([]wire.Vm, n)}
					for i, v := range vms[:n] {
						batch.Vms[i] = wire.Vm{
							Seq: v.Seq, Item: v.Item, Amount: v.Amount,
							ReqTxn: v.ReqTxn, FlowVec: v.FlowVec, Trace: v.Trace,
						}
					}
					s.send(p, batch)
				}
				vms = vms[n:]
			}
		}
	}
}
