package site

import (
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/txn"
)

// peerObs holds the per-peer counters for one remote site.
type peerObs struct {
	// asksSent counts §5 step-2 quota requests we sent to the peer.
	asksSent *metrics.Counter
	// honored / declined count requests *from* the peer by our
	// decision — honored/(honored+declined) is the honor rate.
	honored  *metrics.Counter
	declined *metrics.Counter
	// vmCreated counts Vm we created toward the peer; vmAccepted and
	// vmDups count inbound Vm from the peer accepted exactly-once vs
	// dropped as duplicates.
	vmCreated  *metrics.Counter
	vmAccepted *metrics.Counter
	vmDups     *metrics.Counter
}

// siteObs bundles the site's resolved metric handles. With no registry
// configured the handles are orphan (working but unregistered)
// counters, so recording sites never branch.
type siteObs struct {
	reg    *obs.Registry // nil disables dynamic per-label histograms
	site   string
	ring   *obs.Ring
	flight *obs.Flight // nil disables flight recording

	retx     *metrics.Counter
	outcomes map[txn.Status]*metrics.Counter
	peers    map[ident.SiteID]*peerObs
	orphan   *peerObs // fallback for traffic from unconfigured peers

	// steps holds the pre-resolved per-protocol-step latency
	// histograms (dvp_step_seconds{step=...}): the §5 steps of the
	// local protocol run plus the remote-hop segments.
	steps map[string]*metrics.Histogram

	// Demand-driven rebalancing series: advert gossip volume in both
	// directions, transfers shipped (count and value moved), and
	// timeout aborts that died with an unmet shortfall — the signal
	// the rebalancer exists to shrink.
	advertsSent    *metrics.Counter
	advertsRecv    *metrics.Counter
	rebalTransfers *metrics.Counter
	rebalMoved     *metrics.Counter
	deficitAborts  *metrics.Counter

	// Fast-restart series: checkpoints taken and their record bytes,
	// recovery wall time and the records replayed after the chosen
	// checkpoint — the observable evidence that restart cost is
	// bounded by the suffix, not the history.
	ckptTotal      *metrics.Counter
	ckptBytes      *metrics.Counter
	recoverLat     *metrics.Histogram
	recoverRecords *metrics.Counter

	// Local-commit fast path: commits that took it, and eligible-shape
	// transactions it declined (hint miss, stale hint, site down).
	// commits/(commits+fallbacks) is the hit rate experiment P2 plots
	// against the quota distribution.
	fastCommits   *metrics.Counter
	fastFallbacks *metrics.Counter

	// txnLat caches the per-(label, outcome) latency histograms so the
	// commit path resolves dvp_site_txn_seconds through two map reads
	// instead of a registry lookup (whose variadic labels allocate on
	// every call). Keyed by label under an RWMutex — a sync.Map would
	// box the string key on every Load, allocating on the hot path.
	txnLatMu sync.RWMutex
	txnLat   map[string]*txnLatSet
}

// txnLatSet holds one label's latency histograms indexed by outcome
// status. Slots fill lazily with benign racing: the registry
// deduplicates by name+labels, so concurrent resolvers store the same
// handle.
type txnLatSet struct {
	byStatus [txn.StatusSiteDown + 1]atomic.Pointer[metrics.Histogram]
}

func newPeerObs(reg *obs.Registry, site, peer string) *peerObs {
	return &peerObs{
		asksSent:   reg.Counter("dvp_site_quota_asks_total", "site", site, "peer", peer),
		honored:    reg.Counter("dvp_site_requests_honored_total", "site", site, "peer", peer),
		declined:   reg.Counter("dvp_site_requests_declined_total", "site", site, "peer", peer),
		vmCreated:  reg.Counter("dvp_vmsg_created_total", "site", site, "peer", peer),
		vmAccepted: reg.Counter("dvp_vmsg_accepted_total", "site", site, "peer", peer),
		vmDups:     reg.Counter("dvp_vmsg_dup_drops_total", "site", site, "peer", peer),
	}
}

// initObs resolves the site's metric handles against cfg.Metrics and
// instruments the Vm manager. Called once from New.
func (s *Site) initObs() {
	o := &s.obsm
	o.reg = s.cfg.Metrics
	o.ring = s.cfg.Trace
	o.flight = s.cfg.Flight
	o.site = s.cfg.ID.String()
	o.retx = o.reg.Counter("dvp_vmsg_retransmissions_total", "site", o.site)
	o.steps = make(map[string]*metrics.Histogram, 16)
	for _, step := range []string{
		"admit", "cc-check", "lock", "ask", "vm-accept", "wal-flush",
		"apply", "rds-create", "vm-apply",
	} {
		o.steps[step] = o.reg.Histogram("dvp_step_seconds", "site", o.site, "step", step)
	}
	// Parked foreign credits (the deferVm/ReqTxn gate): sampled at
	// exposition time, so crash-clearing needs no gauge bookkeeping.
	o.reg.GaugeFunc("dvp_rebalance_parked_credits",
		func() float64 { return float64(s.parkedCredits()) }, "site", o.site)
	o.outcomes = make(map[txn.Status]*metrics.Counter, 5)
	for _, st := range []txn.Status{
		txn.StatusCommitted, txn.StatusLockConflict, txn.StatusCCRejected,
		txn.StatusTimeout, txn.StatusSiteDown,
	} {
		o.outcomes[st] = o.reg.Counter("dvp_site_txn_total",
			"site", o.site, "outcome", st.String())
	}
	o.advertsSent = o.reg.Counter("dvp_rebalance_adverts_sent_total", "site", o.site)
	o.advertsRecv = o.reg.Counter("dvp_rebalance_adverts_recv_total", "site", o.site)
	o.rebalTransfers = o.reg.Counter("dvp_rebalance_transfers_total", "site", o.site)
	o.rebalMoved = o.reg.Counter("dvp_rebalance_value_moved_total", "site", o.site)
	o.deficitAborts = o.reg.Counter("dvp_site_deficit_aborts_total", "site", o.site)
	o.ckptTotal = o.reg.Counter("dvp_checkpoint_total", "site", o.site)
	o.ckptBytes = o.reg.Counter("dvp_checkpoint_bytes", "site", o.site)
	o.fastCommits = o.reg.Counter("dvp_fastpath_commits_total", "site", o.site)
	o.fastFallbacks = o.reg.Counter("dvp_fastpath_fallback_total", "site", o.site)
	o.txnLat = make(map[string]*txnLatSet, 8)
	o.recoverLat = o.reg.Histogram("dvp_recover_seconds", "site", o.site)
	o.recoverRecords = o.reg.Counter("dvp_recover_records_replayed", "site", o.site)
	o.peers = make(map[ident.SiteID]*peerObs, len(s.cfg.Peers))
	for _, p := range s.peersExceptSelf() {
		o.peers[p] = newPeerObs(o.reg, o.site, p.String())
	}
	var nilReg *obs.Registry
	o.orphan = newPeerObs(nilReg, "", "")
	s.vm.Instrument(o.reg, o.site, s.peersExceptSelf())
}

// forPeer returns the peer's counters, or inert orphans for a peer
// outside the configured set.
func (o *siteObs) forPeer(p ident.SiteID) *peerObs {
	if po, ok := o.peers[p]; ok {
		return po
	}
	return o.orphan
}

// observeStep records one protocol-step segment duration into
// dvp_step_seconds{step=...}. Known steps are pre-resolved; anything
// else registers lazily (or is dropped with no registry).
func (o *siteObs) observeStep(step string, d time.Duration) {
	if h, ok := o.steps[step]; ok {
		h.Record(d)
		return
	}
	if o.reg != nil {
		o.reg.Histogram("dvp_step_seconds", "site", o.site, "step", step).Record(d)
	}
}

// observeTxn records one transaction decision: the outcome counter and
// the latency histogram partitioned by label and outcome. The
// histogram handle is cached per (label, outcome) — the registry
// lookup's variadic labels would otherwise allocate on every commit.
func (o *siteObs) observeTxn(label string, status txn.Status, lat time.Duration) {
	if c := o.outcomes[status]; c != nil {
		c.Inc()
	}
	if o.reg == nil {
		return
	}
	o.txnLatMu.RLock()
	set := o.txnLat[label]
	o.txnLatMu.RUnlock()
	if set == nil {
		o.txnLatMu.Lock()
		if set = o.txnLat[label]; set == nil {
			set = &txnLatSet{}
			o.txnLat[label] = set
		}
		o.txnLatMu.Unlock()
	}
	idx := int(status)
	if idx < 0 || idx >= len(set.byStatus) {
		o.reg.Histogram("dvp_site_txn_seconds",
			"site", o.site, "label", label, "outcome", status.String()).Record(lat)
		return
	}
	h := set.byStatus[idx].Load()
	if h == nil {
		h = o.reg.Histogram("dvp_site_txn_seconds",
			"site", o.site, "label", label, "outcome", status.String())
		set.byStatus[idx].Store(h)
	}
	h.Record(lat)
}
