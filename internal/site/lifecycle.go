package site

import (
	"fmt"
	"strings"

	"dvp/internal/ident"
	"dvp/internal/recovery"
)

// This file is the lifecycle core: Start, Crash, Restart and the epoch
// transitions they drive. It is the only place s.mu may be acquired —
// check.sh's site-mutex gate enforces that textually — so everything
// the hot paths need about liveness is mirrored into epochUp and read
// lock-free via currentEpoch/sameEpoch/Up below.

// recover rebuilds volatile state from the stable log (§7). The
// volatile objects are reset in place, never replaced.
func (s *Site) recover() error {
	s.lamport.Reset()
	s.locks.Clear()
	s.vm.Reset()
	s.flow.reset()
	s.demand.reset()
	sum, err := recovery.RecoverOpts(s.cfg.Log, s.cfg.DB, s.vm, s.lamport,
		recovery.Options{Workers: s.cfg.RecoveryWorkers})
	if err != nil {
		return fmt.Errorf("site %v: %w", s.cfg.ID, err)
	}
	if sum.NetworkCalls != 0 {
		return fmt.Errorf("site %v: recovery made %d network calls", s.cfg.ID, sum.NetworkCalls)
	}
	s.obsm.recoverLat.Record(sum.Elapsed)
	s.obsm.recoverRecords.Add(uint64(sum.RecordsScanned))
	s.obsm.flight.Recordf(s.obsm.site, "recover",
		"cp=%d skipped=%d scanned=%d redone=%d workers=%d elapsed=%s",
		sum.CheckpointLSN, sum.CheckpointsSkipped, sum.RecordsScanned,
		sum.ActionsRedone, sum.Workers, sum.Elapsed)
	s.mu.Lock()
	s.lastRec = sum
	s.mu.Unlock()
	return nil
}

// LastRecovery reports what the most recent recovery pass did —
// experiment T3's per-site evidence that restart is independent and
// bounded by the log suffix.
func (s *Site) LastRecovery() recovery.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRec
}

// Start attaches the site to the network and begins the Vm
// retransmission loop. Idempotent while up.
func (s *Site) Start() {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return
	}
	s.up = true
	s.epoch++
	epoch := s.epoch
	s.epochUp.Store(epoch<<1 | 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopRetx = stop
	s.retxDone = done
	var stopRebal, rebalDone chan struct{}
	if s.cfg.Rebalance.Enabled {
		stopRebal = make(chan struct{})
		rebalDone = make(chan struct{})
		s.stopRebal = stopRebal
		s.rebalDone = rebalDone
	}
	var stopCkpt, ckptDone chan struct{}
	if s.autoCheckpoint() {
		stopCkpt = make(chan struct{})
		ckptDone = make(chan struct{})
		s.stopCkpt = stopCkpt
		s.ckptDone = ckptDone
	}
	s.mu.Unlock()

	s.cfg.Endpoint.SetHandler(s.handle)
	_ = s.cfg.Endpoint.Open()
	go s.retransmitLoop(stop, done)
	if stopRebal != nil {
		go s.rebalanceLoop(stopRebal, rebalDone)
	}
	if stopCkpt != nil {
		go s.checkpointLoop(stopCkpt, ckptDone)
	}
	s.obsm.flight.Recordf(s.obsm.site, "site-up", "epoch=%d", epoch)
}

// Crash kills the site: volatile state is lost, in-progress
// transactions abort (as seen by their clients), the network handler
// detaches. The stable log and durable store survive.
func (s *Site) Crash() {
	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	epoch := s.epoch
	s.epochUp.Store(epoch << 1)
	close(s.stopRetx)
	s.stopRetx = nil
	done := s.retxDone
	s.retxDone = nil
	rebalDone := s.rebalDone
	if s.stopRebal != nil {
		close(s.stopRebal)
		s.stopRebal = nil
		s.rebalDone = nil
	}
	ckptDone := s.ckptDone
	if s.stopCkpt != nil {
		close(s.stopCkpt)
		s.stopCkpt = nil
		s.ckptDone = nil
	}
	s.mu.Unlock()

	s.cfg.Endpoint.Close()
	// Fence: once the write lock is held, no message handler is
	// mid-flight, so nothing further reaches the log or store.
	s.lifeMu.Lock()
	s.lifeMu.Unlock() // empty critical section is the fence (SA2001, excluded in staticcheck.conf)
	// Join the retransmission, rebalancer and checkpointer loops.
	<-done
	if rebalDone != nil {
		<-rebalDone
	}
	if ckptDone != nil {
		<-ckptDone
	}
	// Fail every transaction parked in this epoch: drain shard by
	// shard — no global freeze — and wake each waiter; they observe
	// the epoch change and report SiteDown. Entries tagged with a
	// different epoch are left alone (a waiter registered after a
	// concurrent Restart must not be failed by the old epoch's
	// crash, and one already drained must not double-wake).
	ws, shardCounts := s.waiterTab.drain(epoch)
	for _, w := range ws {
		w.wake()
	}
	// Volatile lock table is gone — recovery starts clean (§7). So
	// are parked Vm: retransmission re-covers them.
	s.locks.Clear()
	s.defMu.Lock()
	dropped := 0
	for _, q := range s.deferredVm {
		dropped += len(q)
	}
	s.deferredVm = make(map[ident.ItemID][]deferredVm)
	s.defMu.Unlock()
	// One flight event per epoch transition, carrying the waiter
	// drain's shard census (crash forensics: which shards were hot
	// when the site died).
	s.obsm.flight.Recordf(s.obsm.site, "site-down",
		"epoch=%d waiters=%d shards=%s parked_dropped=%d",
		epoch, len(ws), formatShardCounts(shardCounts), dropped)
}

// formatShardCounts renders a drain census as "n0,n1,..." for the
// site-down flight event.
func formatShardCounts(counts []int) string {
	var b strings.Builder
	for i, n := range counts {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}

// Restart recovers from the stable log and rejoins the network,
// without talking to any other site.
func (s *Site) Restart() error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("site %v: restart while up", s.cfg.ID)
	}
	s.mu.Unlock()
	if err := s.recover(); err != nil {
		return err
	}
	s.Start()
	return nil
}

// Up reports whether the site is currently running (lock-free: the
// up bit lives in epochUp).
func (s *Site) Up() bool {
	return s.epochUp.Load()&1 == 1
}

// currentEpoch returns the epoch if up, or 0,false if down. Lock-free:
// both halves come from one epochUp load, so the pair is consistent.
func (s *Site) currentEpoch() (uint64, bool) {
	v := s.epochUp.Load()
	if v&1 == 0 {
		return 0, false
	}
	return v >> 1, true
}

// sameEpoch reports whether the site is up in exactly epoch e —
// the commit path's guard that no crash intervened since admission.
func (s *Site) sameEpoch(e uint64) bool {
	return s.epochUp.Load() == e<<1|1
}

// currentEpochValue reads the epoch without the up gate (lifecycle
// flight events fire on both sides of the transition).
func (s *Site) currentEpochValue() uint64 {
	return s.epochUp.Load() >> 1
}
