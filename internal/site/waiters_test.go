package site

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/simnet"
	"dvp/internal/txn"
)

// TestWaiterTableDrainByEpoch exercises the epoch-tagged drain
// directly: only waiters of the ending epoch come out, a second drain
// of the same epoch finds nothing (no double-wake), and waiters of a
// newer epoch survive for their own crash.
func TestWaiterTableDrainByEpoch(t *testing.T) {
	tab := newWaiterTable(4)
	old := newWaiter(ident.TxnID(1), 0, 1, nil, nil)
	young := newWaiter(ident.TxnID(2), 0, 2, nil, nil)
	tab.add(old)
	tab.add(young)

	ws, counts := tab.drain(1)
	if len(ws) != 1 || ws[0] != old {
		t.Fatalf("drain(1) = %d waiters, want exactly the epoch-1 one", len(ws))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1 {
		t.Errorf("drain(1) shard counts sum to %d, want 1", total)
	}
	if again, _ := tab.drain(1); len(again) != 0 {
		t.Errorf("second drain(1) returned %d waiters, want 0 (double-wake)", len(again))
	}
	if tab.lookup(young.id) != young {
		t.Errorf("epoch-2 waiter drained by epoch-1 crash")
	}
	ws, _ = tab.drain(2)
	if len(ws) != 1 || ws[0] != young {
		t.Fatalf("drain(2) = %d waiters, want exactly the epoch-2 one", len(ws))
	}
}

// TestWaiterShardingSpreads guards the shard hash against the TxnID
// encoding: the low TxnID bits carry the site id, so consecutive local
// transactions must still spread across shards.
func TestWaiterShardingSpreads(t *testing.T) {
	tab := newWaiterTable(8)
	used := make(map[*waiterShard]bool)
	for i := 0; i < 64; i++ {
		// Consecutive timestamps at one site: counter in the high
		// bits, constant site id in the low bits.
		id := ident.TxnID(uint64(i)<<16 | 3)
		used[tab.shard(id)] = true
	}
	if len(used) < 4 {
		t.Errorf("64 consecutive local txns landed on %d/8 shards; hash is degenerate", len(used))
	}
}

// TestCrashWakesParkedWaiterExactlyOnce parks a transaction in its §5
// step-3 wait, crash-cycles the site twice, and checks (a) the parked
// transaction observes StatusSiteDown exactly once, (b) each Crash
// emits exactly one site-down flight event tagged with its epoch and
// the waiter-drain shard census, and (c) a waiter parked in the new
// epoch is untouched by the old epoch's drain and is failed by the
// next Crash, not before.
func TestCrashWakesParkedWaiterExactlyOnce(t *testing.T) {
	fl := obs.NewFlight(256)
	tc := newTestCluster(t, 3, simnet.Config{Seed: 31}, func(i int, c *Config) {
		if i == 0 {
			c.Flight = fl
		}
	})
	tc.createItem("wt/A", 0) // unsatisfiable: txns park in step 3

	park := func() chan *txn.Result {
		ch := make(chan *txn.Result, 2) // room for a double-wake to land
		go func() {
			ch <- tc.sites[0].Run(&txn.Txn{
				Ops:     []txn.ItemOp{{Item: "wt/A", Op: core.Decr{M: 5}}},
				Timeout: 5 * time.Second,
				Ask:     txn.AskAll,
			})
		}()
		return ch
	}

	siteDownEvents := func() []string {
		var out []string
		for _, e := range fl.Last(256) {
			if e.Kind == "site-down" {
				out = append(out, e.Detail)
			}
		}
		return out
	}

	first := park()
	waitUntil(t, 2*time.Second, "txn holds the lock", func() bool {
		return lockHeld(tc.sites[0], "wt/A")
	})
	tc.sites[0].Crash()

	select {
	case res := <-first:
		if res.Status != txn.StatusSiteDown {
			t.Fatalf("parked txn status = %v, want site-down", res.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash did not wake the parked waiter")
	}

	evs := siteDownEvents()
	if len(evs) != 1 {
		t.Fatalf("site-down flight events after first crash = %d, want 1 (%q)", len(evs), evs)
	}
	checkDrainEvent(t, evs[0], 1)

	if err := tc.sites[0].Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}

	// Park a second transaction in the new epoch, then crash again:
	// the old epoch's drain already happened, so only the new Crash
	// may fail it — and the first waiter must see nothing further.
	second := park()
	waitUntil(t, 2*time.Second, "second txn holds the lock", func() bool {
		return lockHeld(tc.sites[0], "wt/A")
	})
	tc.sites[0].Crash()

	select {
	case res := <-second:
		if res.Status != txn.StatusSiteDown {
			t.Fatalf("second parked txn status = %v, want site-down", res.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second crash did not wake the parked waiter")
	}

	evs = siteDownEvents()
	if len(evs) != 2 {
		t.Fatalf("site-down flight events after second crash = %d, want 2 (%q)", len(evs), evs)
	}
	checkDrainEvent(t, evs[1], 1)
	if evs[0] == evs[1] {
		t.Errorf("both site-down events carry identical detail %q; epochs should differ", evs[0])
	}

	// Exactly once: the first waiter's channel has delivered its one
	// result and nothing else arrives from the second epoch's drain.
	select {
	case res := <-first:
		t.Errorf("first waiter woke twice; second result %v", res.Status)
	case <-time.After(50 * time.Millisecond):
	}

	if err := tc.sites[0].Restart(); err != nil {
		t.Fatalf("second restart: %v", err)
	}
}

// checkDrainEvent asserts one site-down detail string reports the
// epoch and a shard census summing to wantWaiters.
func checkDrainEvent(t *testing.T, detail string, wantWaiters int) {
	t.Helper()
	if !strings.Contains(detail, "epoch=") {
		t.Errorf("site-down detail %q lacks epoch tag", detail)
	}
	var waiters int
	var shards string
	for _, f := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(f, "waiters="); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				t.Fatalf("site-down detail %q: bad waiters: %v", detail, err)
			}
			waiters = n
		}
		if v, ok := strings.CutPrefix(f, "shards="); ok {
			shards = v
		}
	}
	if waiters != wantWaiters {
		t.Errorf("site-down reports waiters=%d, want %d (%q)", waiters, wantWaiters, detail)
	}
	if shards == "" {
		t.Fatalf("site-down detail %q lacks shard census", detail)
	}
	sum := 0
	for _, part := range strings.Split(shards, ",") {
		n, err := strconv.Atoi(part)
		if err != nil {
			t.Fatalf("site-down detail %q: bad shard count %q: %v", detail, part, err)
		}
		sum += n
	}
	if sum != wantWaiters {
		t.Errorf("shard census %q sums to %d, want %d", shards, sum, wantWaiters)
	}
}
