package site

import (
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
)

func TestFlowClocksBasics(t *testing.T) {
	f := newFlowClocks()
	if idx := f.writerCommit("x", 1); idx != 1 {
		t.Errorf("first writer idx = %d", idx)
	}
	if idx := f.writerCommit("x", 1); idx != 2 {
		t.Errorf("second writer idx = %d", idx)
	}
	if idx := f.writerCommit("y", 1); idx != 1 {
		t.Errorf("independent item idx = %d", idx)
	}
	snap := f.snapshot("x")
	if snap[1] != 2 || len(snap) != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap[1] = 99
	if f.snapshot("x")[1] != 2 {
		t.Error("snapshot aliases internal state")
	}
}

func TestFlowClocksMerge(t *testing.T) {
	f := newFlowClocks()
	f.writerCommit("x", 1)
	f.merge("x", FlowVec{2: 5, 1: 0}) // stale component 1 ignored
	snap := f.snapshot("x")
	if snap[1] != 1 || snap[2] != 5 {
		t.Errorf("after merge: %v", snap)
	}
	f.merge("x", FlowVec{2: 3}) // stale: no regress
	if f.snapshot("x")[2] != 5 {
		t.Error("merge regressed a component")
	}
	f.merge("x", nil) // no-op
}

func TestFlowClocksReset(t *testing.T) {
	f := newFlowClocks()
	f.writerCommit("x", 1)
	f.reset()
	if len(f.snapshot("x")) != 0 {
		t.Error("reset left state behind")
	}
}

func TestFlowVecEntriesRoundTrip(t *testing.T) {
	v := FlowVec{3: 7, 1: 2}
	es := v.Entries()
	if len(es) != 2 || es[0].Site != 1 || es[0].Count != 2 || es[1].Site != 3 || es[1].Count != 7 {
		t.Errorf("entries = %+v (must be site-sorted)", es)
	}
	if FlowVec(nil).Entries() != nil {
		t.Error("empty vec must encode as nil")
	}
	back := flowVecFromEntries(es)
	if back[1] != 2 || back[3] != 7 {
		t.Errorf("round trip = %v", back)
	}
	if flowVecFromEntries(nil) != nil {
		t.Error("nil entries must decode as nil")
	}
}

// TestFlowCheckerOnLiveHistory runs a concurrent workload with reads
// and verifies it with the flow checker — exercising the vectors as
// they actually travel with grants.
func TestFlowCheckerOnLiveHistory(t *testing.T) {
	tc := newTestCluster(t, 4, simnet.Config{Seed: 60, MaxDelay: time.Millisecond}, nil)
	const total = core.Value(200)
	tc.createItem("x", total)
	for i := 0; i < 30; i++ {
		s := tc.sites[i%4]
		switch i % 5 {
		case 0:
			tx := readItem("x")
			tx.Timeout = 80 * time.Millisecond
			s.Run(tx)
		case 1:
			s.Run(cancel("x", 2))
		default:
			tx := reserve("x", 3)
			tx.Timeout = 80 * time.Millisecond
			s.Run(tx)
		}
	}
	tc.waitQuiescent("x", 2*time.Second)
	initial := map[ident.ItemID]core.Value{"x": total}
	final := map[ident.ItemID]core.Value{"x": tc.globalTotal("x")}
	if err := cc.CheckSerializableFlow(initial, final, tc.committedTxns()); err != nil {
		t.Errorf("live history failed flow check: %v", err)
	}
}
