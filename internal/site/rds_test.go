package site

import (
	"sync"
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/tstamp"
)

// TestVmAcceptIntoFreeItemStampsAndReports pins the Rds-as-two-
// transactions semantics (§6): a SendValue deduct and its credit at
// the receiving site are each their own locally-serialized
// transaction. The credit into a free item must (a) stamp the value
// with a fresh timestamp — so a later full read cannot be admitted at
// a timestamp below a credit it already observed — and (b) surface
// through OnRds with that stamp, strictly after the deduct's, so
// exact serializability checkers can replay the in-flight window.
func TestVmAcceptIntoFreeItemStampsAndReports(t *testing.T) {
	var mu sync.Mutex
	var events []RdsInfo
	tc := newTestCluster(t, 2, simnet.Config{Seed: 11}, func(i int, c *Config) {
		c.OnRds = func(ri RdsInfo) {
			mu.Lock()
			events = append(events, ri)
			mu.Unlock()
		}
	})
	for i, s := range tc.sites {
		share := core.Value(0)
		if i == 0 {
			share = 10
		}
		if err := s.DB().Create("x", share); err != nil {
			t.Fatal(err)
		}
	}

	if err := tc.sites[0].SendValue("x", 2, 4); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, time.Second, "credit lands at site 2", func() bool {
		return tc.sites[1].DB().Value("x") == 4
	})

	it, _ := tc.sites[1].DB().Get(ident.ItemID("x"))
	if it.TS == 0 {
		t.Error("free-item Vm accept left the value unstamped: a later reader can serialize below the credit")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("OnRds fired %d times, want 2 (deduct + credit): %+v", len(events), events)
	}
	var deduct, credit *RdsInfo
	for k := range events {
		switch {
		case events[k].Delta < 0:
			deduct = &events[k]
		case events[k].Delta > 0:
			credit = &events[k]
		}
	}
	if deduct == nil || credit == nil {
		t.Fatalf("missing a half: %+v", events)
	}
	if deduct.Site != 1 || deduct.Item != "x" || deduct.Delta != -4 {
		t.Errorf("deduct = %+v, want site 1 x -4", *deduct)
	}
	if credit.Site != 2 || credit.Item != "x" || credit.Delta != 4 {
		t.Errorf("credit = %+v, want site 2 x 4", *credit)
	}
	if credit.TS <= deduct.TS {
		t.Errorf("credit TS %v not after deduct TS %v — the in-flight window has no serial extent", credit.TS, deduct.TS)
	}
	if got := tstamp.TS(it.TS); got != credit.TS {
		t.Errorf("value stamped %v but credit reported %v — checker and store disagree on the serial position", got, credit.TS)
	}
}

// TestDeferredVmRedeliversOnUnlock pins the park-and-redeliver path: a
// Vm that finds its item locked by a transaction it is not addressed
// to must not be spliced into that transaction (the §4.2 ignore), but
// must land as soon as the lock releases — without waiting out the
// sender's retransmit interval, which a busy item might never overlap.
func TestDeferredVmRedeliversOnUnlock(t *testing.T) {
	tc := newTestCluster(t, 2, simnet.Config{Seed: 12}, func(i int, c *Config) {
		// Retransmission alone must not be the delivery path here.
		c.RetransmitEvery = 10 * time.Second
	})
	for i, s := range tc.sites {
		share := core.Value(0)
		if i == 0 {
			share = 10
		}
		if err := s.DB().Create("x", share); err != nil {
			t.Fatal(err)
		}
	}

	dst := tc.sites[1]
	blocker := ident.TxnID(7)
	if !dst.locks.TryLock(blocker, "x") {
		t.Fatal("could not lock x at destination")
	}
	if err := tc.sites[0].SendValue("x", 2, 4); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, time.Second, "Vm parked at the locked destination", func() bool {
		dst.defMu.Lock()
		defer dst.defMu.Unlock()
		return len(dst.deferredVm["x"]) == 1
	})
	if got := dst.DB().Value("x"); got != 0 {
		t.Fatalf("credit landed through a held lock: value = %d", got)
	}

	dst.locks.Unlock(blocker, "x")
	dst.redeliverDeferred([]ident.ItemID{"x"})
	if got := dst.DB().Value("x"); got != 4 {
		t.Errorf("value = %d after unlock redelivery, want 4", got)
	}
	dst.defMu.Lock()
	left := len(dst.deferredVm["x"])
	dst.defMu.Unlock()
	if left != 0 {
		t.Errorf("%d Vm still parked after redelivery", left)
	}
}
