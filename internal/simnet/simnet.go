// Package simnet is a fault-injecting in-process network: the
// failure-prone communication substrate of the paper's §1–§2. Links
// may lose, delay, duplicate and reorder messages; individual links
// can fail (in one or both directions, so "non-clean" partitions are
// expressible); and the whole network can be split into partition
// groups and later healed.
//
// Every message is serialized through internal/wire even though
// delivery is in-process, so the codec is exercised on every hop and
// no pointer ever aliases across a "site boundary".
//
// Faults are sampled from a seeded RNG: a given (seed, workload)
// produces a reproducible fault schedule, which the experiments rely
// on.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/ident"
	"dvp/internal/vclock"
	"dvp/internal/wire"
)

// Config tunes the network's behaviour.
type Config struct {
	// Seed drives all fault sampling. The zero seed means 1.
	Seed int64
	// MinDelay/MaxDelay bound per-message propagation delay
	// (uniform). Zero values mean "deliver promptly" (1–2ms on the
	// real clock keeps goroutine interleavings honest).
	MinDelay, MaxDelay time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// OrderPreserving enforces the §6.2 "message order synchronicity"
	// assumption Conc2 requires: messages arriving at a site arrive
	// in global send order (one FIFO per destination, fed in send
	// order), so "if m_i arrives before m_j, then m_i was sent
	// earlier in real time".
	OrderPreserving bool
	// Clock schedules deliveries; defaults to the real clock.
	Clock vclock.Clock
}

// Stats counts network events; retrieve a snapshot with Net.Stats.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Lost       uint64 // random loss
	Cut        uint64 // dropped by partition/link-down
	Duplicated uint64
	Bytes      uint64
	ByKind     map[wire.Kind]uint64
}

type linkKey struct{ from, to ident.SiteID }

// Net is the simulated network. Create endpoints with Endpoint; drive
// failures with Partition/Heal/SetLink; inspect with Stats.
type Net struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	nodes  map[ident.SiteID]*endpoint
	group  map[ident.SiteID]int // partition group; all 0 when healed
	split  bool                 // a Partition is in effect
	down   map[linkKey]bool     // directional link failures
	filter func(from, to ident.SiteID, kind wire.Kind) bool
	stats  Stats
	trace  func(ev TraceEvent)
	tap    func(from, to ident.SiteID, kind wire.Kind, frame []byte)
	closed bool
	fifos  map[linkKey]chan deliverJob // OrderPreserving queues
	// pending counts in-flight messages. A plain WaitGroup would be
	// unsound here: Add() races with Wait() when the counter touches
	// zero between bursts, which is exactly Quiesce's situation.
	pending atomic.Int64
}

// TraceEvent reports one network decision for debugging/visualization.
type TraceEvent struct {
	From, To ident.SiteID
	Kind     wire.Kind
	Outcome  string // "deliver", "lost", "cut", "dup"
	Delay    time.Duration
}

type deliverJob struct {
	buf   []byte
	to    *endpoint
	delay time.Duration
}

// New creates a network with the given configuration.
func New(cfg Config) *Net {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	return &Net{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[ident.SiteID]*endpoint),
		group: make(map[ident.SiteID]int),
		down:  make(map[linkKey]bool),
		fifos: make(map[linkKey]chan deliverJob),
		stats: Stats{ByKind: make(map[wire.Kind]uint64)},
	}
}

// Endpoint attaches (or re-attaches) site to the network. Re-attaching
// an existing site returns the same endpoint (a recovered site keeps
// its address).
func (n *Net) Endpoint(site ident.SiteID) wire.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.nodes[site]; ok {
		ep.closed = false // reopen inline: n.mu is already held
		return ep
	}
	ep := &endpoint{net: n, site: site}
	n.nodes[site] = ep
	return ep
}

// Partition splits the network into the given groups. Sites not named
// in any group are isolated in singleton groups — the paper's worst
// case. A second call replaces the first.
func (n *Net) Partition(groups ...[]ident.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[ident.SiteID]int)
	for i, g := range groups {
		for _, s := range g {
			n.group[s] = i + 1
		}
	}
	next := len(groups) + 1
	for s := range n.nodes {
		if _, ok := n.group[s]; !ok {
			n.group[s] = next
			next++
		}
	}
	n.split = true
}

// Heal removes any partition (link failures set with SetLink persist).
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.split = false
	n.group = make(map[ident.SiteID]int)
}

// Partitioned reports whether a partition is currently in effect.
func (n *Net) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.split
}

// SetLink fails or restores the directed link a→b. Failing only one
// direction yields the paper's "not clean" partial failures.
func (n *Net) SetLink(a, b ident.SiteID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if up {
		delete(n.down, linkKey{a, b})
	} else {
		n.down[linkKey{a, b}] = true
	}
}

// SetLinkBoth fails or restores both directions between a and b.
func (n *Net) SetLinkBoth(a, b ident.SiteID, up bool) {
	n.SetLink(a, b, up)
	n.SetLink(b, a, up)
}

// SetLoss adjusts the random message-loss probability at runtime.
// Fault schedules use it to flap lossiness mid-run; messages already
// in flight are unaffected.
func (n *Net) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.LossProb = p
}

// SetDup adjusts the message-duplication probability at runtime.
func (n *Net) SetDup(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DupProb = p
}

// SetDelayBounds adjusts the propagation-delay bounds at runtime
// (max < min is clamped to min, matching New).
func (n *Net) SetDelayBounds(min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if max < min {
		max = min
	}
	n.cfg.MinDelay, n.cfg.MaxDelay = min, max
}

// ScheduleAfter runs fn once d has elapsed on the network's clock —
// the scheduled-fault hook: chaos schedules partition/heal/crash
// actions at virtual or real instants without owning a timer. fn is
// skipped (not run) if the network has been closed by then.
func (n *Net) ScheduleAfter(d time.Duration, fn func()) {
	ch := n.cfg.Clock.After(d)
	go func() {
		<-ch
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if !closed {
			fn()
		}
	}()
}

// Clock returns the clock the network schedules deliveries on. Tests
// driving a vclock.Virtual use it to advance simulated time.
func (n *Net) Clock() vclock.Clock { return n.cfg.Clock }

// SetTap installs a frame tap: it observes every marshaled envelope
// at the moment of transmission, before any loss/partition decision
// (nil disables). Fuzz-corpus capture and wire-level debugging hang
// off this; the callback runs on the sending goroutine under no locks
// and must not retain frame.
func (n *Net) SetTap(fn func(from, to ident.SiteID, kind wire.Kind, frame []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = fn
}

// SetFilter installs a message filter: return false to drop the
// message (counted as Cut). Kind-selective drops let tests and
// experiments build precise fault scenarios — e.g. losing exactly the
// 2PC votes so participants prepare and then hang in doubt. Nil
// removes the filter.
func (n *Net) SetFilter(f func(from, to ident.SiteID, kind wire.Kind) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filter = f
}

// SetTrace installs a trace callback (nil disables). The callback runs
// on the sending goroutine under no locks.
func (n *Net) SetTrace(fn func(TraceEvent)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trace = fn
}

// Stats returns a snapshot of the counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.ByKind = make(map[wire.Kind]uint64, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Close stops all delivery. In-flight messages are dropped.
func (n *Net) Close() {
	n.mu.Lock()
	n.closed = true
	fifos := n.fifos
	n.fifos = make(map[linkKey]chan deliverJob)
	n.mu.Unlock()
	for _, ch := range fifos {
		close(ch)
	}
}

// Quiesce blocks until every in-flight message has been delivered or
// dropped. Tests use it (with the real clock) to drain the network
// before asserting on state.
func (n *Net) Quiesce() {
	for n.pending.Load() > 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// reachable reports whether a message from a to b passes partition and
// link checks. Caller holds n.mu.
func (n *Net) reachable(a, b ident.SiteID) bool {
	if n.down[linkKey{a, b}] {
		return false
	}
	if !n.split {
		return true
	}
	return n.group[a] == n.group[b]
}

// send is the transmission path shared by all endpoints.
func (n *Net) send(from *endpoint, env *wire.Envelope) error {
	env.From = from.site
	buf, err := env.Marshal()
	if err != nil {
		return err
	}
	kind := env.Msg.Kind()

	n.mu.Lock()
	tap := n.tap
	n.mu.Unlock()
	if tap != nil {
		tap(from.site, env.To, kind, buf)
	}

	n.mu.Lock()
	if n.closed || from.closed {
		n.mu.Unlock()
		return wire.ErrClosed
	}
	dst, ok := n.nodes[env.To]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %v", wire.ErrUnknownSite, env.To)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(buf))
	n.stats.ByKind[kind]++
	if n.filter != nil && !n.filter(from.site, env.To, kind) {
		n.stats.Cut++
		tr := n.trace
		n.mu.Unlock()
		if tr != nil {
			tr(TraceEvent{From: from.site, To: env.To, Kind: kind, Outcome: "cut"})
		}
		return nil
	}
	if !n.reachable(from.site, env.To) {
		n.stats.Cut++
		tr := n.trace
		n.mu.Unlock()
		if tr != nil {
			tr(TraceEvent{From: from.site, To: env.To, Kind: kind, Outcome: "cut"})
		}
		return nil // silent loss: the sender cannot tell (§2.2)
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.stats.Lost++
		tr := n.trace
		n.mu.Unlock()
		if tr != nil {
			tr(TraceEvent{From: from.site, To: env.To, Kind: kind, Outcome: "lost"})
		}
		return nil
	}
	copies := 1
	if n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb {
		copies = 2
		n.stats.Duplicated++
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		delays[i] = n.sampleDelayLocked()
	}
	tr := n.trace
	n.mu.Unlock()

	for i := 0; i < copies; i++ {
		outcome := "deliver"
		if i > 0 {
			outcome = "dup"
		}
		if tr != nil {
			tr(TraceEvent{From: from.site, To: env.To, Kind: kind, Outcome: outcome, Delay: delays[i]})
		}
		n.dispatch(from.site, dst, buf, delays[i])
	}
	return nil
}

func (n *Net) sampleDelayLocked() time.Duration {
	if n.cfg.MaxDelay <= 0 {
		return 0
	}
	span := n.cfg.MaxDelay - n.cfg.MinDelay
	if span <= 0 {
		return n.cfg.MinDelay
	}
	return n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(span)))
}

// dispatch schedules one delivery. In OrderPreserving mode deliveries
// go through a per-link FIFO worker; otherwise each message rides its
// own goroutine (random delays then reorder naturally).
func (n *Net) dispatch(from ident.SiteID, dst *endpoint, buf []byte, delay time.Duration) {
	n.pending.Add(1)
	if n.cfg.OrderPreserving {
		n.mu.Lock()
		// One queue per destination: arrival order at each site is
		// the global send order (§6.2 synchronicity), not merely
		// per-link FIFO.
		key := linkKey{0, dst.site}
		ch, ok := n.fifos[key]
		if !ok {
			ch = make(chan deliverJob, 4096)
			n.fifos[key] = ch
			go n.fifoWorker(ch)
		}
		n.mu.Unlock()
		select {
		case ch <- deliverJob{buf: buf, to: dst, delay: delay}:
		default:
			n.pending.Add(-1) // queue overflow: drop (backpressure)
		}
		return
	}
	go func() {
		defer n.pending.Add(-1)
		if delay > 0 {
			n.cfg.Clock.Sleep(delay)
		}
		n.deliver(dst, buf)
	}()
}

func (n *Net) fifoWorker(ch chan deliverJob) {
	for job := range ch {
		if job.delay > 0 {
			n.cfg.Clock.Sleep(job.delay)
		}
		n.deliver(job.to, job.buf)
		n.pending.Add(-1)
	}
}

func (n *Net) deliver(dst *endpoint, buf []byte) {
	n.mu.Lock()
	if n.closed || dst.closed {
		n.mu.Unlock()
		return
	}
	h := dst.handler
	n.stats.Delivered++
	n.mu.Unlock()
	if h == nil {
		return
	}
	env, err := wire.Unmarshal(buf)
	if err != nil {
		// A corrupt frame would be a codec bug, not a simulated
		// fault; surface loudly.
		panic(fmt.Sprintf("simnet: corrupt frame in delivery: %v", err))
	}
	h(env)
}

// endpoint implements wire.Endpoint on a Net.
type endpoint struct {
	net     *Net
	site    ident.SiteID
	handler wire.Handler // guarded by net.mu
	closed  bool         // guarded by net.mu
}

// Site implements wire.Endpoint.
func (e *endpoint) Site() ident.SiteID { return e.site }

// Send implements wire.Endpoint.
func (e *endpoint) Send(env *wire.Envelope) error { return e.net.send(e, env) }

// SetHandler implements wire.Endpoint.
func (e *endpoint) SetHandler(h wire.Handler) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.handler = h
}

// Open implements wire.Endpoint: re-attach after a Close.
func (e *endpoint) Open() error {
	e.reopen()
	return nil
}

// Close implements wire.Endpoint: the site detaches; messages to and
// from it are dropped until Endpoint is called again for the site.
func (e *endpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closed = true
	e.handler = nil
	return nil
}

func (e *endpoint) reopen() {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closed = false
}
