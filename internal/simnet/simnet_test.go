package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvp/internal/ident"
	"dvp/internal/wire"
)

// collect attaches a recording handler to ep and returns the slice
// pointer plus a mutex-protected getter.
type collector struct {
	mu   sync.Mutex
	msgs []*wire.Envelope
}

func (c *collector) handler(env *wire.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, env)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) all() []*wire.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*wire.Envelope(nil), c.msgs...)
}

func ack(n uint64) *wire.Envelope {
	return &wire.Envelope{Msg: &wire.VmAck{UpTo: n}}
}

func TestDeliveryBasic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)

	env := ack(7)
	env.To = 2
	if err := e1.Send(env); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	got := c.all()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].From != 1 || got[0].To != 2 {
		t.Errorf("addressing: %+v", got[0])
	}
	if a, ok := got[0].Msg.(*wire.VmAck); !ok || a.UpTo != 7 {
		t.Errorf("payload: %+v", got[0].Msg)
	}
}

func TestSendToUnknownSite(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	env := ack(1)
	env.To = 99
	if err := e1.Send(env); err == nil {
		t.Error("send to unknown site must error")
	}
}

func TestPartitionCutsTraffic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	e3 := n.Endpoint(3)
	var c2, c3 collector
	n.Endpoint(2).SetHandler(c2.handler)
	e3.SetHandler(c3.handler)

	n.Partition([]ident.SiteID{1, 3}, []ident.SiteID{2})

	envA := ack(1)
	envA.To = 2
	if err := e1.Send(envA); err != nil {
		t.Fatal(err) // cut is silent, not an error (§2.2)
	}
	envB := ack(2)
	envB.To = 3
	e1.Send(envB)
	n.Quiesce()
	if c2.count() != 0 {
		t.Error("message crossed the partition")
	}
	if c3.count() != 1 {
		t.Errorf("intra-group message lost: got %d", c3.count())
	}
	st := n.Stats()
	if st.Cut != 1 {
		t.Errorf("Cut = %d, want 1", st.Cut)
	}

	n.Heal()
	envC := ack(3)
	envC.To = 2
	e1.Send(envC)
	n.Quiesce()
	if c2.count() != 1 {
		t.Error("message lost after heal")
	}
}

func TestPartitionIsolatesUnlistedSites(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	n.Endpoint(3)
	var c3 collector
	n.Endpoint(3).SetHandler(c3.handler)

	n.Partition([]ident.SiteID{1, 2}) // site 3 unlisted → isolated
	env := ack(1)
	env.To = 3
	e1.Send(env)
	n.Quiesce()
	if c3.count() != 0 {
		t.Error("unlisted site must be isolated")
	}
}

func TestOneWayLinkFailure(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c1, c2 collector
	e1.SetHandler(c1.handler)
	e2.SetHandler(c2.handler)

	n.SetLink(1, 2, false) // 1→2 down, 2→1 up: a non-clean failure

	env := ack(1)
	env.To = 2
	e1.Send(env)
	rev := ack(2)
	rev.To = 1
	e2.Send(rev)
	n.Quiesce()
	if c2.count() != 0 {
		t.Error("1→2 should be cut")
	}
	if c1.count() != 1 {
		t.Error("2→1 should be up")
	}
	n.SetLink(1, 2, true)
	env2 := ack(3)
	env2.To = 2
	e1.Send(env2)
	n.Quiesce()
	if c2.count() != 1 {
		t.Error("restored link should deliver")
	}
}

func TestLossProbability(t *testing.T) {
	n := New(Config{Seed: 42, LossProb: 0.5})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	const total = 2000
	for i := 0; i < total; i++ {
		env := ack(uint64(i))
		env.To = 2
		e1.Send(env)
	}
	n.Quiesce()
	got := c.count()
	if got < total*35/100 || got > total*65/100 {
		t.Errorf("with 50%% loss delivered %d/%d", got, total)
	}
	st := n.Stats()
	if st.Lost+uint64(got) != total {
		t.Errorf("lost(%d)+delivered(%d) != sent(%d)", st.Lost, got, total)
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{Seed: 7, DupProb: 1.0})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	env := ack(9)
	env.To = 2
	e1.Send(env)
	n.Quiesce()
	if c.count() != 2 {
		t.Errorf("DupProb=1 delivered %d copies, want 2", c.count())
	}
}

func TestOrderPreservingFIFO(t *testing.T) {
	n := New(Config{
		Seed:            3,
		MinDelay:        0,
		MaxDelay:        2 * time.Millisecond,
		OrderPreserving: true,
	})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	const total = 200
	for i := 0; i < total; i++ {
		env := ack(uint64(i))
		env.To = 2
		e1.Send(env)
	}
	n.Quiesce()
	got := c.all()
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	for i, env := range got {
		if env.Msg.(*wire.VmAck).UpTo != uint64(i) {
			t.Fatalf("out of order at %d: got seq %d", i, env.Msg.(*wire.VmAck).UpTo)
		}
	}
}

func TestReorderingHappensWithoutFIFO(t *testing.T) {
	n := New(Config{Seed: 5, MinDelay: 0, MaxDelay: 3 * time.Millisecond})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	const total = 300
	for i := 0; i < total; i++ {
		env := ack(uint64(i))
		env.To = 2
		e1.Send(env)
	}
	n.Quiesce()
	got := c.all()
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	inOrder := true
	for i, env := range got {
		if env.Msg.(*wire.VmAck).UpTo != uint64(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("expected at least one reordering with random delays")
	}
}

func TestClosedEndpointDropsTraffic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	e2.Close()
	env := ack(1)
	env.To = 2
	e1.Send(env)
	n.Quiesce()
	if c.count() != 0 {
		t.Error("closed endpoint received a message")
	}
	// Crashed site cannot send either.
	e2c := ack(2)
	e2c.To = 1
	if err := e2.Send(e2c); err == nil {
		t.Error("closed endpoint could send")
	}
	// Re-attach (recovery) and traffic flows again.
	e2b := n.Endpoint(2)
	e2b.SetHandler(c.handler)
	env2 := ack(3)
	env2.To = 2
	e1.Send(env2)
	n.Quiesce()
	if c.count() != 1 {
		t.Error("re-attached endpoint did not receive")
	}
}

func TestEndpointReattachIsSameAddress(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Endpoint(5)
	b := n.Endpoint(5)
	if a != b {
		t.Error("re-Endpoint for a site must return the same attachment")
	}
}

func TestTraceCallback(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2).SetHandler(func(*wire.Envelope) {})
	var events int32
	n.SetTrace(func(ev TraceEvent) {
		atomic.AddInt32(&events, 1)
		if ev.From != 1 || ev.To != 2 {
			t.Errorf("trace addressing: %+v", ev)
		}
	})
	env := ack(1)
	env.To = 2
	e1.Send(env)
	n.Quiesce()
	if atomic.LoadInt32(&events) != 1 {
		t.Errorf("trace events = %d", events)
	}
}

func TestStatsByKind(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2).SetHandler(func(*wire.Envelope) {})
	env := ack(1)
	env.To = 2
	e1.Send(env)
	req := &wire.Envelope{To: 2, Msg: &wire.Request{Txn: 1, Item: "x", Want: 1}}
	e1.Send(req)
	n.Quiesce()
	st := n.Stats()
	if st.ByKind[wire.KVmAck] != 1 || st.ByKind[wire.KRequest] != 1 {
		t.Errorf("ByKind = %v", st.ByKind)
	}
	if st.Sent != 2 || st.Delivered != 2 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentSendersNoRace(t *testing.T) {
	n := New(Config{Seed: 11, MaxDelay: time.Millisecond, LossProb: 0.1, DupProb: 0.1})
	defer n.Close()
	const sites = 6
	cols := make([]*collector, sites+1)
	eps := make([]wire.Endpoint, sites+1)
	for s := 1; s <= sites; s++ {
		eps[s] = n.Endpoint(ident.SiteID(s))
		cols[s] = &collector{}
		eps[s].SetHandler(cols[s].handler)
	}
	var wg sync.WaitGroup
	for s := 1; s <= sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				env := ack(uint64(i))
				env.To = ident.SiteID(i%sites + 1)
				eps[s].Send(env)
			}
		}(s)
	}
	wg.Wait()
	n.Quiesce()
	st := n.Stats()
	var delivered uint64
	for s := 1; s <= sites; s++ {
		delivered += uint64(cols[s].count())
	}
	if delivered != st.Delivered {
		t.Errorf("handler saw %d, stats say %d", delivered, st.Delivered)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := New(Config{MinDelay: 50 * time.Millisecond, MaxDelay: 60 * time.Millisecond})
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	env := ack(1)
	env.To = 2
	e1.Send(env)
	n.Close() // before the 50ms delay elapses
	// Quiesce rather than wall-clock sleep: it returns once the
	// in-flight delivery goroutine has run (and been dropped by the
	// closed check), making the assertion timing-independent.
	n.Quiesce()
	if c.count() != 0 {
		t.Error("message delivered after Close")
	}
}

func TestRuntimeFaultKnobs(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)

	send := func(k int) {
		for i := 0; i < k; i++ {
			env := ack(uint64(i))
			env.To = 2
			e1.Send(env)
		}
		n.Quiesce()
	}

	// 100% loss: nothing arrives.
	n.SetLoss(1.0)
	send(20)
	if c.count() != 0 {
		t.Fatalf("delivered %d with loss=1.0, want 0", c.count())
	}
	// Back to lossless: everything arrives.
	n.SetLoss(0)
	send(20)
	if c.count() != 20 {
		t.Fatalf("delivered %d with loss=0, want 20", c.count())
	}
	// 100% duplication: every message arrives twice.
	n.SetDup(1.0)
	send(10)
	if got := c.count(); got != 40 {
		t.Fatalf("delivered %d with dup=1.0, want 40", got)
	}
	// Delay bounds are clamped like New (max < min → min).
	n.SetDelayBounds(time.Millisecond, 0)
	n.mu.Lock()
	min, max := n.cfg.MinDelay, n.cfg.MaxDelay
	n.mu.Unlock()
	if min != time.Millisecond || max != time.Millisecond {
		t.Errorf("delay bounds = %v/%v, want 1ms/1ms", min, max)
	}
}

func TestScheduleAfterFiresOnClock(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	fired := make(chan struct{})
	n.ScheduleAfter(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("scheduled fault never fired")
	}
}

func TestScheduleAfterSkippedWhenClosed(t *testing.T) {
	n := New(Config{MinDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	var fired atomic.Bool
	done := make(chan struct{})
	n.ScheduleAfter(10*time.Millisecond, func() { fired.Store(true) })
	n.ScheduleAfter(10*time.Millisecond, func() { close(done) })
	n.Close()
	// The second callback never runs (net closed), so wait on the
	// first timer's worst case via a third schedule on the real clock.
	select {
	case <-done:
		t.Fatal("scheduled fault ran after Close")
	case <-time.After(50 * time.Millisecond):
	}
	if fired.Load() {
		t.Error("scheduled fault ran after Close")
	}
}

func TestTapSeesEveryFrame(t *testing.T) {
	n := New(Config{LossProb: 1.0}) // even lost messages are tapped
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2)
	var frames atomic.Int64
	n.SetTap(func(from, to ident.SiteID, kind wire.Kind, frame []byte) {
		if from != 1 || to != 2 || kind != wire.KVmAck || len(frame) == 0 {
			t.Errorf("tap saw from=%v to=%v kind=%v len=%d", from, to, kind, len(frame))
		}
		if _, err := wire.Unmarshal(frame); err != nil {
			t.Errorf("tapped frame does not decode: %v", err)
		}
		frames.Add(1)
	})
	for i := 0; i < 5; i++ {
		env := ack(uint64(i))
		env.To = 2
		e1.Send(env)
	}
	n.Quiesce()
	if frames.Load() != 5 {
		t.Errorf("tap saw %d frames, want 5", frames.Load())
	}
}
