package simnet

import (
	"testing"

	"dvp/internal/ident"
	"dvp/internal/wire"
)

func TestFilterDropsByKind(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	e2 := n.Endpoint(2)
	var c collector
	e2.SetHandler(c.handler)
	n.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return kind != wire.KVmAck
	})
	ackEnv := ack(1)
	ackEnv.To = 2
	e1.Send(ackEnv)
	req := &wire.Envelope{To: 2, Msg: &wire.Request{Txn: 1, Item: "x", Want: 1}}
	e1.Send(req)
	n.Quiesce()
	got := c.all()
	if len(got) != 1 || got[0].Msg.Kind() != wire.KRequest {
		t.Fatalf("filter leaked: %d messages, first %v", len(got), got[0].Msg.Kind())
	}
	if n.Stats().Cut != 1 {
		t.Errorf("Cut = %d, want 1", n.Stats().Cut)
	}
	// Clearing the filter restores delivery.
	n.SetFilter(nil)
	ackEnv2 := ack(2)
	ackEnv2.To = 2
	e1.Send(ackEnv2)
	n.Quiesce()
	if c.count() != 2 {
		t.Error("cleared filter still dropping")
	}
}

func TestFilterSeesAddressing(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	e1 := n.Endpoint(1)
	n.Endpoint(2).SetHandler(func(*wire.Envelope) {})
	n.Endpoint(3).SetHandler(func(*wire.Envelope) {})
	// Drop only 1→2; 1→3 flows.
	n.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return !(from == 1 && to == 2)
	})
	a := ack(1)
	a.To = 2
	e1.Send(a)
	b := ack(2)
	b.To = 3
	e1.Send(b)
	n.Quiesce()
	st := n.Stats()
	if st.Cut != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}
