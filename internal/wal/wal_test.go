package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// logFactories lets every generic test run against both implementations.
func logFactories(t *testing.T) map[string]func() Log {
	t.Helper()
	return map[string]func() Log{
		"mem": func() Log { return NewMemLog() },
		"file": func() Log {
			path := t.TempDir() + "/wal.log"
			l, err := OpenFileLog(path, FileLogOptions{})
			if err != nil {
				t.Fatalf("OpenFileLog: %v", err)
			}
			return l
		},
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 1; i <= 5; i++ {
				lsn, err := l.Append(RecCommit, []byte(fmt.Sprintf("rec%d", i)))
				if err != nil {
					t.Fatalf("Append: %v", err)
				}
				if lsn != uint64(i) {
					t.Fatalf("LSN = %d, want %d (dense from 1)", lsn, i)
				}
			}
			if l.LastLSN() != 5 {
				t.Errorf("LastLSN = %d", l.LastLSN())
			}
			var got []string
			if err := l.Scan(1, func(r Record) error {
				got = append(got, fmt.Sprintf("%d:%s:%s", r.LSN, r.Kind, r.Data))
				return nil
			}); err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if len(got) != 5 || got[2] != "3:commit:rec3" {
				t.Errorf("scan results: %v", got)
			}
		})
	}
}

func TestScanFromMiddle(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 10; i++ {
				l.Append(RecApplied, nil)
			}
			var n int
			l.Scan(7, func(r Record) error { n++; return nil })
			if n != 4 {
				t.Errorf("Scan(7) visited %d records, want 4", n)
			}
		})
	}
}

func TestScanStopsOnError(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 5; i++ {
				l.Append(RecCommit, nil)
			}
			sentinel := errors.New("stop")
			var n int
			err := l.Scan(1, func(r Record) error {
				n++
				if n == 2 {
					return sentinel
				}
				return nil
			})
			if !errors.Is(err, sentinel) || n != 2 {
				t.Errorf("err=%v n=%d", err, n)
			}
		})
	}
}

func TestAppendAfterClose(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			l.Close()
			if _, err := l.Append(RecCommit, nil); !errors.Is(err, ErrClosed) {
				t.Errorf("Append after Close: %v, want ErrClosed", err)
			}
		})
	}
}

func TestConcurrentAppendsDenseLSNs(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			const workers, per = 8, 50
			var wg sync.WaitGroup
			lsns := make(chan uint64, workers*per)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						lsn, err := l.Append(RecVmCreate, []byte("x"))
						if err != nil {
							t.Error(err)
							return
						}
						lsns <- lsn
					}
				}()
			}
			wg.Wait()
			close(lsns)
			seen := map[uint64]bool{}
			for lsn := range lsns {
				if seen[lsn] {
					t.Fatalf("duplicate LSN %d", lsn)
				}
				seen[lsn] = true
			}
			for i := uint64(1); i <= workers*per; i++ {
				if !seen[i] {
					t.Fatalf("LSN %d missing (not dense)", i)
				}
			}
		})
	}
}

func TestAppendCopiesData(t *testing.T) {
	l := NewMemLog()
	buf := []byte("abc")
	l.Append(RecCommit, buf)
	buf[0] = 'z'
	l.Scan(1, func(r Record) error {
		if string(r.Data) != "abc" {
			t.Errorf("log stored aliased buffer: %q", r.Data)
		}
		return nil
	})
}

func TestMemLogReopen(t *testing.T) {
	l := NewMemLog()
	l.Append(RecCommit, []byte("survives"))
	l.Close()
	l.Reopen()
	if _, err := l.Append(RecCommit, nil); err != nil {
		t.Fatalf("Append after Reopen: %v", err)
	}
	if l.LastLSN() != 2 {
		t.Errorf("LastLSN = %d, want 2 (crash keeps the log)", l.LastLSN())
	}
}

func TestMemLogAppendHookFault(t *testing.T) {
	l := NewMemLog()
	boom := errors.New("disk full")
	l.SetAppendHook(func(Record) error { return boom })
	if _, err := l.Append(RecCommit, nil); !errors.Is(err, boom) {
		t.Errorf("hooked Append err = %v", err)
	}
	if l.LastLSN() != 0 {
		t.Error("failed append must not advance the log")
	}
	l.SetAppendHook(nil)
	if _, err := l.Append(RecCommit, nil); err != nil {
		t.Errorf("Append after clearing hook: %v", err)
	}
}

func TestCountStats(t *testing.T) {
	l := NewMemLog()
	l.Append(RecCommit, []byte("1234"))
	l.Append(RecApplied, []byte("56"))
	s, err := CountStats(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 2 || s.Bytes != 6 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRecordKindStrings(t *testing.T) {
	kinds := []RecordKind{RecVmCreate, RecVmAccept, RecCommit, RecApplied,
		RecCheckpoint, RecPrepare, RecDecision, RecBaseApplied}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d: bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if RecordKind(200).String() != "kind(200)" {
		t.Error("unknown kind string")
	}
}
