package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"dvp/internal/metrics"
	"dvp/internal/obs"
)

// FileLog is an append-only file-backed stable log for real
// deployments (cmd/dvpnode). Each record is framed as
//
//	[u32 length][u32 crc32][u64 lsn][u8 kind][payload]
//
// where length covers lsn+kind+payload and crc32 (Castagnoli) covers
// the same bytes. Open scans the file, verifies every frame, and
// truncates a torn or corrupt tail — the standard contract of stable
// storage built on a real disk.
type FileLog struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	lastLSN uint64
	size    int64
	sync    bool
	closed  bool
	encBuf  []byte // reusable batch-encode scratch, guarded by mu

	// Instrumentation (see Instrument); nil when not instrumented.
	appendLat *metrics.Histogram
	fsyncLat  *metrics.Histogram
	recKind   map[RecordKind]*metrics.Counter
}

const fileHeaderLen = 4 + 4 + 8 + 1

// maxRetainedEncBuf bounds the batch-encode scratch kept across
// appends; larger frames (checkpoints) are encoded into a one-shot
// buffer instead of pinning the memory forever.
const maxRetainedEncBuf = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FileLogOptions configures OpenFileLog.
type FileLogOptions struct {
	// Sync forces an fsync after every append. Without it a crash of
	// the host OS (not just the process) can lose the tail; the
	// simulation's crash model only kills the process, so tests run
	// with Sync off for speed. With Sync on, wrap the log in a
	// GroupLog (GroupCommitOptions) so concurrent committers share
	// one fsync per batch instead of paying one each — AppendBatch
	// forces once for the whole group.
	Sync bool
}

// OpenFileLog opens (creating if absent) the log at path, verifying
// existing records and truncating any torn tail.
func OpenFileLog(path string, opts FileLogOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{f: f, path: path, sync: opts.Sync}
	if err := l.recoverTail(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recoverTail scans the file from the start, stopping at the first
// invalid frame and truncating there.
func (l *FileLog) recoverTail() error {
	var off int64
	hdr := make([]byte, 8)
	for {
		n, err := l.f.ReadAt(hdr, off)
		if err == io.EOF && n == 0 {
			break
		}
		if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
			return fmt.Errorf("wal: scan %s: %w", l.path, err)
		}
		if n < 8 {
			break // torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if length < 9 || length > 1<<24 {
			break // corrupt length
		}
		body := make([]byte, length)
		bn, _ := l.f.ReadAt(body, off+8)
		if bn < int(length) {
			break // torn body
		}
		if crc32.Checksum(body, crcTable) != crc {
			break // corrupt body
		}
		lsn := binary.BigEndian.Uint64(body[0:8])
		if l.lastLSN != 0 && lsn != l.lastLSN+1 {
			break // LSN discontinuity: treat as corruption
		}
		// A compacted log legitimately starts at any LSN; only
		// continuity after the first record is required.
		l.lastLSN = lsn
		off += 8 + int64(length)
	}
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.size = off
	return nil
}

// Instrument registers this log's metrics with reg, under the given
// extra k,v label pairs (conventionally site=<id>): append and fsync
// latency histograms (dvp_wal_append_seconds, dvp_wal_fsync_seconds)
// and per-kind record counts (dvp_wal_records_total{kind=...}).
func (l *FileLog) Instrument(reg *obs.Registry, labels ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendLat = reg.Histogram("dvp_wal_append_seconds", labels...)
	l.fsyncLat = reg.Histogram("dvp_wal_fsync_seconds", labels...)
	l.recKind = make(map[RecordKind]*metrics.Counter)
	for k := RecVmCreate; k <= RecBaseApplied; k++ {
		l.recKind[k] = reg.Counter("dvp_wal_records_total",
			append([]string{"kind", k.String()}, labels...)...)
	}
}

// Append implements Log.
func (l *FileLog) Append(kind RecordKind, data []byte) (uint64, error) {
	return l.AppendBatch([]BatchEntry{{Kind: kind, Data: data}})
}

// AppendBatch implements BatchAppender: the whole batch is framed into
// one buffer, written with one WriteAt and made stable with one fsync —
// the force-write amortization group commit is built on.
func (l *FileLog) AppendBatch(entries []BatchEntry) (uint64, error) {
	if len(entries) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	var start time.Time
	if l.appendLat != nil {
		start = time.Now()
	}
	first := l.lastLSN + 1
	total := 0
	for _, e := range entries {
		total += fileHeaderLen + len(e.Data)
	}
	// Frame the batch in place into the reusable encode buffer (guarded
	// by l.mu): header placeholder, then body, then patch length+crc
	// over the body subslice — no per-record intermediate allocation.
	if cap(l.encBuf) < total {
		l.encBuf = make([]byte, 0, total)
	}
	buf := l.encBuf[:0]
	for i, e := range entries {
		hdrOff := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		bodyOff := len(buf)
		buf = binary.BigEndian.AppendUint64(buf, first+uint64(i))
		buf = append(buf, byte(e.Kind))
		buf = append(buf, e.Data...)
		body := buf[bodyOff:]
		binary.BigEndian.PutUint32(buf[hdrOff:hdrOff+4], uint32(len(body)))
		binary.BigEndian.PutUint32(buf[hdrOff+4:hdrOff+8], crc32.Checksum(body, crcTable))
	}
	if cap(buf) <= maxRetainedEncBuf {
		l.encBuf = buf[:0]
	} else {
		l.encBuf = nil // don't pin a giant checkpoint frame
	}
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	if l.sync {
		var syncStart time.Time
		if l.fsyncLat != nil {
			syncStart = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync %s: %w", l.path, err)
		}
		if l.fsyncLat != nil {
			l.fsyncLat.Record(time.Since(syncStart))
		}
	}
	l.size += int64(len(buf))
	l.lastLSN = first + uint64(len(entries)) - 1
	if l.appendLat != nil {
		l.appendLat.Record(time.Since(start))
		for _, e := range entries {
			if c := l.recKind[e.Kind]; c != nil {
				c.Inc()
			}
		}
	}
	return first, nil
}

// Scan implements Log. It reads through a private read-only descriptor
// opened under the lock, so a Compact racing the scan cannot swap the
// file out from under it: rename leaves the old inode readable, and the
// scan sees a consistent pre- or post-compaction image, never a torn
// mix or a closed descriptor.
func (l *FileLog) Scan(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	size := l.size
	f, err := os.Open(l.path)
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", l.path, err)
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, 8)
	for off < size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("wal: scan %s: %w", l.path, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		body := make([]byte, length)
		if _, err := f.ReadAt(body, off+8); err != nil {
			return fmt.Errorf("wal: scan %s: %w", l.path, err)
		}
		lsn := binary.BigEndian.Uint64(body[0:8])
		if lsn >= from {
			rec := Record{LSN: lsn, Kind: RecordKind(body[8]), Data: body[9:]}
			if err := fn(rec); err != nil {
				return err
			}
		}
		off += 8 + int64(length)
	}
	return nil
}

// Compact implements Log: rewrite the file keeping only records with
// LSN > upto. The rewrite goes through a temp file + rename so a crash
// mid-compaction leaves either the old or the new log, never a torn
// one.
func (l *FileLog) Compact(upto uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp := l.path + ".compact"
	out, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	var outOff int64
	var lastKept uint64
	err = l.scanLocked(upto+1, func(r Record) error {
		body := make([]byte, 9+len(r.Data))
		binary.BigEndian.PutUint64(body[0:8], r.LSN)
		body[8] = byte(r.Kind)
		copy(body[9:], r.Data)
		frame := make([]byte, 8+len(body))
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
		copy(frame[8:], body)
		if _, werr := out.WriteAt(frame, outOff); werr != nil {
			return werr
		}
		outOff += int64(len(frame))
		lastKept = r.LSN
		return nil
	})
	if err != nil {
		out.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		out.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	l.f.Close()
	l.f = out
	l.size = outOff
	if lastKept > 0 {
		l.lastLSN = lastKept
	}
	// If everything was dropped, lastLSN keeps its value so new
	// appends continue the sequence.
	return nil
}

// scanLocked is Scan with l.mu already held (Compact needs a stable
// view while it rewrites).
func (l *FileLog) scanLocked(from uint64, fn func(Record) error) error {
	var off int64
	hdr := make([]byte, 8)
	for off < l.size {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return err
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		body := make([]byte, length)
		if _, err := l.f.ReadAt(body, off+8); err != nil {
			return err
		}
		lsn := binary.BigEndian.Uint64(body[0:8])
		if lsn >= from {
			if err := fn(Record{LSN: lsn, Kind: RecordKind(body[8]), Data: body[9:]}); err != nil {
				return err
			}
		}
		off += 8 + int64(length)
	}
	return nil
}

// LastLSN implements Log.
func (l *FileLog) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
