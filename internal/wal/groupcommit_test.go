package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvp/internal/obs"
)

func TestGroupLogAppendDurableAndOrdered(t *testing.T) {
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{})
	defer g.Close()
	for i := 1; i <= 5; i++ {
		lsn, err := g.Append(RecCommit, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
		// The Log contract: record is stable when Append returns.
		if inner.LastLSN() < lsn {
			t.Fatalf("append %d returned before inner durable (inner at %d)", i, inner.LastLSN())
		}
	}
	if g.DurableLSN() != 5 || g.LastLSN() != 5 {
		t.Fatalf("durable=%d last=%d, want 5", g.DurableLSN(), g.LastLSN())
	}
}

func TestGroupLogBatchesConcurrentAppends(t *testing.T) {
	// Gate the first flush so concurrent appenders pile up, then count
	// flushes: k appends must arrive in far fewer than k flushes.
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{})
	defer g.Close()

	release := make(chan struct{})
	var flushes atomic.Int64
	var gateOnce sync.Once
	g.SetFlushHook(func(batch int) {
		flushes.Add(1)
		gateOnce.Do(func() { <-release })
	})

	const k = 32
	lsns := make([]uint64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := g.Append(RecCommit, []byte{byte(i)})
			if err != nil {
				t.Error(err)
				return
			}
			lsns[i] = lsn
		}(i)
	}
	// Wait for the first flush to be gated and the rest to queue up.
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiters() < k-1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if n := flushes.Load(); n >= k/2 {
		t.Errorf("%d appends took %d flushes — no batching happened", k, n)
	}
	seen := make(map[uint64]bool)
	for i, lsn := range lsns {
		if lsn == 0 || seen[lsn] {
			t.Fatalf("appender %d got bad/duplicate LSN %d", i, lsn)
		}
		seen[lsn] = true
	}
	if g.Waiters() != 0 {
		t.Errorf("waiters = %d after drain", g.Waiters())
	}
}

func TestGroupLogMaxBatch(t *testing.T) {
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{MaxBatch: 4})
	defer g.Close()

	release := make(chan struct{})
	var gateOnce sync.Once
	var maxSeen atomic.Int64
	g.SetFlushHook(func(batch int) {
		if int64(batch) > maxSeen.Load() {
			maxSeen.Store(int64(batch))
		}
		gateOnce.Do(func() { <-release })
	})

	const k = 19
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Append(RecCommit, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiters() < k-1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	if maxSeen.Load() > 4 {
		t.Errorf("flush carried %d records, MaxBatch is 4", maxSeen.Load())
	}
	if g.LastLSN() != k {
		t.Errorf("LastLSN = %d, want %d", g.LastLSN(), k)
	}
}

func TestGroupLogLinger(t *testing.T) {
	// With a linger, two appends issued a moment apart should share a
	// flush. Issue the second from a goroutine shortly after the first.
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{Linger: 20 * time.Millisecond})
	defer g.Close()
	var flushes atomic.Int64
	g.SetFlushHook(func(int) { flushes.Add(1) })

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Append(RecCommit, nil)
		}()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if flushes.Load() != 1 {
		t.Errorf("2 appends within the linger window took %d flushes, want 1", flushes.Load())
	}
}

func TestGroupLogErrorFailsWholeGroup(t *testing.T) {
	inner := NewMemLog()
	boom := errors.New("disk full")
	g := NewGroupLog(inner, GroupCommitOptions{})
	defer g.Close()

	inner.SetAppendHook(func(Record) error { return boom })
	if _, err := g.Append(RecCommit, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	inner.SetAppendHook(nil)
	if lsn, err := g.Append(RecCommit, nil); err != nil || lsn != 1 {
		t.Fatalf("after recovery: lsn=%d err=%v", lsn, err)
	}
}

func TestGroupLogCloseDrainsThenRejects(t *testing.T) {
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{})
	g.Append(RecCommit, nil)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append(RecCommit, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	// Close is idempotent.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLogScanCompactDelegate(t *testing.T) {
	inner := NewMemLog()
	g := NewGroupLog(inner, GroupCommitOptions{})
	defer g.Close()
	for i := 0; i < 4; i++ {
		g.Append(RecCommit, []byte{byte(i)})
	}
	if err := g.Compact(2); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	g.Scan(1, func(r Record) error { lsns = append(lsns, r.LSN); return nil })
	if len(lsns) != 2 || lsns[0] != 3 {
		t.Errorf("after compact: %v", lsns)
	}
	if g.Inner() != Log(inner) {
		t.Error("Inner() must expose the wrapped log")
	}
}

func TestGroupLogInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGroupLog(NewMemLog(), GroupCommitOptions{})
	defer g.Close()
	g.Instrument(reg, "site", "1")
	g.Append(RecCommit, nil)
	if n := reg.CounterValue("dvp_wal_group_flushes_total", "site", "1"); n == 0 {
		t.Error("flush counter did not move")
	}
	if n := reg.CounterValue("dvp_wal_group_records_total", "site", "1"); n != 1 {
		t.Errorf("records counter = %d", n)
	}
	if h := reg.Histogram("dvp_wal_flush_seconds", "site", "1"); h.Count() == 0 {
		t.Error("flush latency histogram empty")
	}
	if h := reg.Histogram("dvp_wal_group_batch", "site", "1"); h.Count() == 0 {
		t.Error("batch size histogram empty")
	}
}

func TestGroupLogOverFileLogSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	fl, err := OpenFileLog(path, FileLogOptions{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupLog(fl, GroupCommitOptions{})
	const k = 16
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := g.Append(RecCommit, []byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var n int
	var last uint64
	re.Scan(1, func(r Record) error {
		n++
		if r.LSN != last+1 {
			t.Errorf("LSN gap: %d after %d", r.LSN, last)
		}
		last = r.LSN
		return nil
	})
	if n != k {
		t.Errorf("reopened log has %d records, want %d", n, k)
	}
}

func TestFileLogAppendBatchFrames(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	fl, err := OpenFileLog(path, FileLogOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := fl.AppendBatch([]BatchEntry{
		{Kind: RecCommit, Data: []byte("a")},
		{Kind: RecVmCreate, Data: []byte("bb")},
		{Kind: RecApplied, Data: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || fl.LastLSN() != 3 {
		t.Fatalf("first=%d last=%d", first, fl.LastLSN())
	}
	if _, err := fl.AppendBatch(nil); err == nil {
		t.Error("empty batch must error")
	}
	fl.Close()
	re, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var kinds []RecordKind
	re.Scan(1, func(r Record) error { kinds = append(kinds, r.Kind); return nil })
	want := []RecordKind{RecCommit, RecVmCreate, RecApplied}
	if len(kinds) != len(want) {
		t.Fatalf("got %d records", len(kinds))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("record %d kind %v, want %v", i, kinds[i], want[i])
		}
	}
	// A torn tail mid-batch is truncated at reopen like any tail.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-3], 0o644)
	re2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.LastLSN() != 2 {
		t.Errorf("after torn tail LastLSN = %d, want 2", re2.LastLSN())
	}
}

func TestSlowLogBatchPaysOneDelayPerFlush(t *testing.T) {
	l := NewSlowLog(NewMemLog(), 10*time.Millisecond, nil)
	sl := l.(*SlowLog)
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{Kind: RecCommit}
	}
	start := time.Now()
	first, err := sl.AppendBatch(entries)
	if err != nil || first != 1 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	elapsed := time.Since(start)
	if elapsed < 9*time.Millisecond {
		t.Errorf("batch paid %v, want ≥ one 10ms force", elapsed)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("batch paid %v — looks like per-record delay, want one per flush", elapsed)
	}
}
