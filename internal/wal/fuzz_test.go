package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecodeRecords drives every record decoder with arbitrary bytes:
// no panics, and accepted records re-encode losslessly.
func FuzzDecodeRecords(f *testing.F) {
	f.Add((&CommitRec{Txn: 42, Actions: []Action{{Item: "x", Delta: -1, SetTS: 42}}}).Encode())
	f.Add((&VmCreateRec{
		Actions: []Action{{Item: "x", Delta: -5}},
		Msgs:    []VmOut{{To: 2, Seq: 1, Item: "x", Amount: 5}},
	}).Encode())
	f.Add((&VmAcceptRec{From: 3, Seq: 9, Actions: []Action{{Item: "x", Delta: 5}}}).Encode())
	f.Add((&CheckpointRec{Clock: 7}).Encode())
	// A checkpoint the shape the automatic checkpointer actually
	// writes: multiple items with stamps and applied-LSNs, and channel
	// state with a pending retransmission set and a sparse inbound
	// acceptance tail.
	f.Add((&CheckpointRec{
		Items: []CheckpointItem{
			{Item: "flight/A", Value: 40, TS: 512, AppliedLSN: 97},
			{Item: "flight/B", Value: 0, TS: 3, AppliedLSN: 12},
		},
		Channels: []VmChannelState{
			{
				Peer: 2, OutSeq: 9, CumAck: 7,
				Pending: []VmOut{{To: 2, Seq: 8, Item: "flight/A", Amount: 4, ReqTxn: 99},
					{To: 2, Seq: 9, Item: "flight/B", Amount: 1, ReqTxn: 101}},
				InLow: 3, InAbove: []uint64{5, 6},
			},
			{Peer: 3, OutSeq: 1, CumAck: 1, InLow: 0},
		},
		Clock: 1 << 40,
	}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := DecodeCommit(data); err == nil {
			if _, err := DecodeCommit(rec.Encode()); err != nil {
				t.Fatalf("commit re-decode: %v", err)
			}
		}
		if rec, err := DecodeVmCreate(data); err == nil {
			if _, err := DecodeVmCreate(rec.Encode()); err != nil {
				t.Fatalf("vm-create re-decode: %v", err)
			}
		}
		if rec, err := DecodeVmAccept(data); err == nil {
			if _, err := DecodeVmAccept(rec.Encode()); err != nil {
				t.Fatalf("vm-accept re-decode: %v", err)
			}
		}
		if rec, err := DecodeCheckpoint(data); err == nil {
			// The checkpoint codec must be a fixpoint: decode → encode
			// → decode → encode reproduces identical bytes, or the
			// recovery-equivalence oracle's byte comparison would be
			// meaningless.
			enc := rec.Encode()
			rec2, err := DecodeCheckpoint(enc)
			if err != nil {
				t.Fatalf("checkpoint re-decode: %v", err)
			}
			if !bytes.Equal(rec2.Encode(), enc) {
				t.Fatalf("checkpoint codec is not a fixpoint")
			}
		}
		_, _ = DecodeApplied(data)
		_, _ = DecodePrepare(data)
		_, _ = DecodeDecision(data)
	})
}

// FuzzFileLogRecovery writes arbitrary bytes as a log file and opens
// it: torn-tail recovery must never panic or error, and the resulting
// log must accept appends.
func FuzzFileLogRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := t.TempDir() + "/f.wal"
		if err := writeFile(path, data); err != nil {
			t.Skip()
		}
		l, err := OpenFileLog(path, FileLogOptions{})
		if err != nil {
			t.Fatalf("open over arbitrary bytes must recover, got %v", err)
		}
		defer l.Close()
		if _, err := l.Append(RecCommit, []byte("post")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
