// Package wal implements the stable logging facility the paper's
// whole construction rests on: a virtual message *is* a log record
// ("a Vm comes into existence the moment a log record indicating a
// message dispatch ... is created", §4.2), and a transaction *is*
// committed the moment its `[database-actions]` record is stable
// (§5 step 5).
//
// Two implementations are provided: MemLog, an in-memory stable log
// for simulation (it survives simulated site crashes because crash
// only discards volatile site state), and FileLog, a real append-only
// file with CRC-protected framing and torn-tail recovery for the
// dvpnode binary.
package wal

import (
	"errors"
	"fmt"
)

// RecordKind discriminates log record types.
type RecordKind uint8

// Log record kinds. The first group realizes the paper's protocol
// records; the second serves the 2PC baseline (force-written prepare
// and decision records are what create the in-doubt window DvP
// avoids).
const (
	// RecVmCreate is the §4.2 record `[database-actions,
	// message-sequence]`: quota deductions plus the Vm to dispatch,
	// as one atomic record. Its stability is the birth of the Vm.
	RecVmCreate RecordKind = iota + 1
	// RecVmAccept is the receiver-side record completing a Vm's
	// lifespan: `[database-actions]` crediting the received value.
	RecVmAccept
	// RecCommit is the §5 step-5 record `[database-actions]`; its
	// stability is the commit point of a transaction.
	RecCommit
	// RecApplied is the §5 step-6 record noting the database changes
	// have been carried out (bounds redo work at recovery).
	RecApplied
	// RecCheckpoint snapshots store state to bound log scans (§7:
	// "by using checkpointing mechanisms, the number of redo actions
	// required can be reduced in the usual manner").
	RecCheckpoint

	// RecPrepare is the baseline participant's force-written 2PC
	// phase-1 record; a participant with a prepare record and no
	// decision record is in doubt and must block.
	RecPrepare
	// RecDecision is the baseline coordinator/participant decision
	// record.
	RecDecision
	// RecBaseApplied notes baseline writes carried out.
	RecBaseApplied
)

func (k RecordKind) String() string {
	switch k {
	case RecVmCreate:
		return "vm-create"
	case RecVmAccept:
		return "vm-accept"
	case RecCommit:
		return "commit"
	case RecApplied:
		return "applied"
	case RecCheckpoint:
		return "checkpoint"
	case RecPrepare:
		return "prepare"
	case RecDecision:
		return "decision"
	case RecBaseApplied:
		return "base-applied"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one stable log record. LSNs are dense and start at 1.
type Record struct {
	LSN  uint64
	Kind RecordKind
	Data []byte
}

// Log is an append-only stable log. Append is durable when it
// returns: a crash after Append never loses the record. All methods
// are safe for concurrent use.
type Log interface {
	// Append writes a record and returns its LSN. data is borrowed for
	// the duration of the call only: implementations must not retain it
	// after returning, so callers may encode into pooled scratch and
	// reuse it immediately.
	Append(kind RecordKind, data []byte) (uint64, error)
	// Scan calls fn for every record with LSN ≥ from, in LSN order.
	// fn returning an error stops the scan and propagates the error.
	Scan(from uint64, fn func(Record) error) error
	// LastLSN returns the LSN of the newest record (0 if empty).
	LastLSN() uint64
	// Compact irrevocably drops all records with LSN ≤ upto. Callers
	// compact only up to (not including) their latest checkpoint
	// record, which recovery needs. LSNs are never renumbered: the
	// log simply starts later.
	Compact(upto uint64) error
	// Close releases resources. Appends after Close fail.
	Close() error
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// BatchEntry is one record of a batched append: the same (kind, data)
// pair Append takes, minus the LSN, which the log assigns densely in
// batch order.
type BatchEntry struct {
	Kind RecordKind
	Data []byte
}

// BatchAppender is implemented by logs that can make several records
// stable with a single force-write. AppendBatch assigns dense LSNs in
// entry order and returns the first; entry i gets first+i. The whole
// batch becomes durable atomically-enough for group commit: when
// AppendBatch returns nil, every entry is stable; on error, none of
// the batch may be acknowledged (a torn tail is truncated at reopen).
//
// MemLog, FileLog and SlowLog all implement it; GroupLog uses it to
// amortize one fsync (or one simulated force-write) over a whole
// commit group.
type BatchAppender interface {
	AppendBatch(entries []BatchEntry) (first uint64, err error)
}

// appendBatchFallback serializes a batch through plain Append for logs
// without native batch support. LSN density is guaranteed by the
// caller holding whatever excludes concurrent appenders.
func appendBatchFallback(l Log, entries []BatchEntry) (uint64, error) {
	var first uint64
	for i, e := range entries {
		lsn, err := l.Append(e.Kind, e.Data)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			first = lsn
		}
	}
	return first, nil
}

// Stats summarizes a log for experiments and debugging.
type Stats struct {
	Records uint64
	Bytes   uint64
}

// CountStats scans the log and tallies record count and payload bytes.
func CountStats(l Log) (Stats, error) {
	var s Stats
	err := l.Scan(1, func(r Record) error {
		s.Records++
		s.Bytes += uint64(len(r.Data))
		return nil
	})
	return s, err
}
