package wal

import (
	"os"
	"testing"
)

func TestFileLogPersistsAcrossReopen(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(RecCommit, []byte("one"))
	l.Append(RecVmCreate, []byte("two"))
	l.Close()

	l2, err := OpenFileLog(path, FileLogOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Fatalf("LastLSN after reopen = %d, want 2", l2.LastLSN())
	}
	var kinds []RecordKind
	l2.Scan(1, func(r Record) error { kinds = append(kinds, r.Kind); return nil })
	if len(kinds) != 2 || kinds[0] != RecCommit || kinds[1] != RecVmCreate {
		t.Errorf("kinds = %v", kinds)
	}
	// And appends continue the LSN sequence.
	lsn, err := l2.Append(RecApplied, nil)
	if err != nil || lsn != 3 {
		t.Errorf("Append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestFileLogTruncatesTornTail(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, _ := OpenFileLog(path, FileLogOptions{})
	l.Append(RecCommit, []byte("good"))
	l.Append(RecCommit, []byte("will-be-torn"))
	l.Close()

	// Tear the last record: chop 3 bytes off the file.
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-3)

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1 (torn record dropped)", l2.LastLSN())
	}
	// New appends reuse LSN 2 cleanly.
	lsn, err := l2.Append(RecApplied, []byte("new2"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after tear: lsn=%d err=%v", lsn, err)
	}
	var payloads []string
	l2.Scan(1, func(r Record) error { payloads = append(payloads, string(r.Data)); return nil })
	if len(payloads) != 2 || payloads[1] != "new2" {
		t.Errorf("payloads = %q", payloads)
	}
}

func TestFileLogDetectsCorruptBody(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, _ := OpenFileLog(path, FileLogOptions{})
	l.Append(RecCommit, []byte("aaaa"))
	l.Append(RecCommit, []byte("bbbb"))
	l.Close()

	// Flip a byte inside the second record's payload.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	fi, _ := f.Stat()
	f.WriteAt([]byte{0xFF}, fi.Size()-1)
	f.Close()

	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Errorf("LastLSN = %d, want 1 (corrupt record dropped)", l2.LastLSN())
	}
}

func TestFileLogEmptyFile(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastLSN() != 0 {
		t.Errorf("empty log LastLSN = %d", l.LastLSN())
	}
	var n int
	l.Scan(1, func(Record) error { n++; return nil })
	if n != 0 {
		t.Errorf("empty log scanned %d records", n)
	}
}

func TestFileLogGarbageFile(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	os.WriteFile(path, []byte("this is not a wal file at all"), 0o644)
	l, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastLSN() != 0 {
		t.Errorf("garbage file yielded LSN %d", l.LastLSN())
	}
	if lsn, err := l.Append(RecCommit, []byte("fresh")); err != nil || lsn != 1 {
		t.Errorf("append over garbage: lsn=%d err=%v", lsn, err)
	}
}

func TestFileLogLargePayloads(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	l, _ := OpenFileLog(path, FileLogOptions{})
	defer l.Close()
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(RecCheckpoint, big); err != nil {
		t.Fatal(err)
	}
	var got []byte
	l.Scan(1, func(r Record) error { got = r.Data; return nil })
	if len(got) != len(big) || got[12345] != big[12345] {
		t.Error("large payload corrupted")
	}
}
