package wal

import (
	"os"
	"testing"
)

func TestCompactGeneric(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 10; i++ {
				l.Append(RecCommit, []byte{byte(i)})
			}
			if err := l.Compact(7); err != nil {
				t.Fatal(err)
			}
			var lsns []uint64
			l.Scan(1, func(r Record) error { lsns = append(lsns, r.LSN); return nil })
			if len(lsns) != 3 || lsns[0] != 8 || lsns[2] != 10 {
				t.Fatalf("post-compact LSNs = %v, want [8 9 10]", lsns)
			}
			// Appends continue the sequence.
			lsn, err := l.Append(RecApplied, nil)
			if err != nil || lsn != 11 {
				t.Fatalf("append after compact: lsn=%d err=%v", lsn, err)
			}
		})
	}
}

func TestCompactEverything(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 5; i++ {
				l.Append(RecCommit, nil)
			}
			if err := l.Compact(5); err != nil {
				t.Fatal(err)
			}
			var n int
			l.Scan(1, func(Record) error { n++; return nil })
			if n != 0 {
				t.Fatalf("%d records survive full compaction", n)
			}
			// LSNs never rewind.
			if lsn, _ := l.Append(RecCommit, nil); lsn != 6 {
				t.Fatalf("append after full compaction: lsn=%d, want 6", lsn)
			}
		})
	}
}

func TestCompactNothing(t *testing.T) {
	l := NewMemLog()
	l.Append(RecCommit, nil)
	if err := l.Compact(0); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 1 {
		t.Error("Compact(0) must keep everything")
	}
}

func TestFileLogCompactSurvivesReopen(t *testing.T) {
	path := t.TempDir() + "/c.wal"
	l, _ := OpenFileLog(path, FileLogOptions{})
	for i := 0; i < 6; i++ {
		l.Append(RecCommit, []byte{byte(i)})
	}
	if err := l.Compact(4); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen: the file starts at LSN 5 — legal for a compacted log.
	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 6 {
		t.Fatalf("LastLSN after reopen = %d, want 6", l2.LastLSN())
	}
	var first uint64
	l2.Scan(1, func(r Record) error {
		if first == 0 {
			first = r.LSN
		}
		return nil
	})
	if first != 5 {
		t.Errorf("first record = %d, want 5", first)
	}
	if lsn, _ := l2.Append(RecApplied, nil); lsn != 7 {
		t.Errorf("append = %d, want 7", lsn)
	}
}

func TestFileLogCompactThenCorruptTail(t *testing.T) {
	path := t.TempDir() + "/c.wal"
	l, _ := OpenFileLog(path, FileLogOptions{})
	for i := 0; i < 4; i++ {
		l.Append(RecCommit, []byte("payload"))
	}
	l.Compact(2)
	l.Append(RecCommit, []byte("tail"))
	l.Close()
	// Tear the last record.
	truncateBy(t, path, 3)
	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 4 {
		t.Errorf("LastLSN = %d, want 4 (torn record 5 dropped)", l2.LastLSN())
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}
