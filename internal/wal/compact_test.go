package wal

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompactGeneric(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 10; i++ {
				l.Append(RecCommit, []byte{byte(i)})
			}
			if err := l.Compact(7); err != nil {
				t.Fatal(err)
			}
			var lsns []uint64
			l.Scan(1, func(r Record) error { lsns = append(lsns, r.LSN); return nil })
			if len(lsns) != 3 || lsns[0] != 8 || lsns[2] != 10 {
				t.Fatalf("post-compact LSNs = %v, want [8 9 10]", lsns)
			}
			// Appends continue the sequence.
			lsn, err := l.Append(RecApplied, nil)
			if err != nil || lsn != 11 {
				t.Fatalf("append after compact: lsn=%d err=%v", lsn, err)
			}
		})
	}
}

func TestCompactEverything(t *testing.T) {
	for name, mk := range logFactories(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			defer l.Close()
			for i := 0; i < 5; i++ {
				l.Append(RecCommit, nil)
			}
			if err := l.Compact(5); err != nil {
				t.Fatal(err)
			}
			var n int
			l.Scan(1, func(Record) error { n++; return nil })
			if n != 0 {
				t.Fatalf("%d records survive full compaction", n)
			}
			// LSNs never rewind.
			if lsn, _ := l.Append(RecCommit, nil); lsn != 6 {
				t.Fatalf("append after full compaction: lsn=%d, want 6", lsn)
			}
		})
	}
}

func TestCompactNothing(t *testing.T) {
	l := NewMemLog()
	l.Append(RecCommit, nil)
	if err := l.Compact(0); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 1 {
		t.Error("Compact(0) must keep everything")
	}
}

func TestFileLogCompactSurvivesReopen(t *testing.T) {
	path := t.TempDir() + "/c.wal"
	l, _ := OpenFileLog(path, FileLogOptions{})
	for i := 0; i < 6; i++ {
		l.Append(RecCommit, []byte{byte(i)})
	}
	if err := l.Compact(4); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen: the file starts at LSN 5 — legal for a compacted log.
	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 6 {
		t.Fatalf("LastLSN after reopen = %d, want 6", l2.LastLSN())
	}
	var first uint64
	l2.Scan(1, func(r Record) error {
		if first == 0 {
			first = r.LSN
		}
		return nil
	})
	if first != 5 {
		t.Errorf("first record = %d, want 5", first)
	}
	if lsn, _ := l2.Append(RecApplied, nil); lsn != 7 {
		t.Errorf("append = %d, want 7", lsn)
	}
}

func TestFileLogCompactThenCorruptTail(t *testing.T) {
	path := t.TempDir() + "/c.wal"
	l, _ := OpenFileLog(path, FileLogOptions{})
	for i := 0; i < 4; i++ {
		l.Append(RecCommit, []byte("payload"))
	}
	l.Compact(2)
	l.Append(RecCommit, []byte("tail"))
	l.Close()
	// Tear the last record.
	truncateBy(t, path, 3)
	l2, err := OpenFileLog(path, FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 4 {
		t.Errorf("LastLSN = %d, want 4 (torn record 5 dropped)", l2.LastLSN())
	}
}

func truncateBy(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestCompactConcurrentWithGroupFlush is the checkpointing interleave:
// appenders parked on the group-commit flusher while Compact runs
// against the inner file log, with concurrent Scans auditing the image.
// The durable LSN must never regress, every acknowledged append above
// the compaction bound must survive, and no Scan may observe a torn or
// out-of-order image. Before FileLog.Scan snapshotted its own read fd,
// a compaction's rename under a concurrent scan could surface reads
// from a closed or half-swapped file.
func TestCompactConcurrentWithGroupFlush(t *testing.T) {
	inner, err := OpenFileLog(t.TempDir()+"/g.wal", FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupLog(inner, GroupCommitOptions{MaxBatch: 32})
	defer g.Close()

	const appenders = 6
	const perAppender = 150

	var mu sync.Mutex
	acked := make(map[uint64]bool)
	var maxCompacted uint64

	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Durable-LSN monotonicity monitor.
	var regressed atomic.Bool
	aux.Add(1)
	go func() {
		defer aux.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := g.DurableLSN(); d < prev {
				regressed.Store(true)
				return
			} else {
				prev = d
			}
		}
	}()

	// Compactor: checkpoint-style compaction behind the durable LSN,
	// always leaving a small suffix.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Microsecond):
			}
			if bound := g.DurableLSN(); bound > 10 {
				if err := g.Compact(bound - 10); err != nil {
					t.Errorf("compact(%d): %v", bound-10, err)
					return
				}
				mu.Lock()
				if bound-10 > maxCompacted {
					maxCompacted = bound - 10
				}
				mu.Unlock()
			}
		}
	}()

	// Scanner: every observed image must be strictly LSN-ascending.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var prev uint64
			if err := g.Scan(1, func(r Record) error {
				if r.LSN <= prev {
					t.Errorf("scan saw LSN %d after %d", r.LSN, prev)
				}
				prev = r.LSN
				return nil
			}); err != nil {
				t.Errorf("concurrent scan: %v", err)
				return
			}
		}
	}()

	var apps sync.WaitGroup
	for w := 0; w < appenders; w++ {
		apps.Add(1)
		go func(w int) {
			defer apps.Done()
			for i := 0; i < perAppender; i++ {
				lsn, err := g.Append(RecCommit, []byte{byte(w), byte(i)})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				acked[lsn] = true
				mu.Unlock()
			}
		}(w)
	}
	apps.Wait()
	close(stop)
	aux.Wait()

	if regressed.Load() {
		t.Fatal("durable LSN regressed during compaction")
	}
	// Every acked record above the final compaction bound survives.
	survivors := make(map[uint64]bool)
	if err := g.Scan(1, func(r Record) error {
		survivors[r.LSN] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	lost := 0
	for lsn := range acked {
		if lsn > maxCompacted && !survivors[lsn] {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d acknowledged records above compaction bound %d missing after concurrent compaction",
			lost, maxCompacted)
	}
	if d, last := g.DurableLSN(), g.LastLSN(); d != last {
		t.Errorf("durable LSN %d != last LSN %d after join", d, last)
	}
}
