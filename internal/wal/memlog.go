package wal

import "sync"

// MemLog is an in-memory stable log for simulation. "Stable" is a
// modelling statement: the simulated crash of a site discards the
// site's volatile state but keeps its MemLog, exactly as a disk
// survives a process crash.
type MemLog struct {
	mu      sync.RWMutex
	recs    []Record
	lastLSN uint64
	closed  bool

	// appendHook, when set, is invoked under the lock before each
	// append with the record about to be written; returning an error
	// fails the append. Tests use it to inject "disk full"/crash-at-
	// append faults.
	appendHook func(Record) error
}

// NewMemLog returns an empty in-memory stable log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(kind RecordKind, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec := Record{
		LSN:  l.lastLSN + 1,
		Kind: kind,
		Data: append([]byte(nil), data...), // callers may reuse their buffer
	}
	if l.appendHook != nil {
		if err := l.appendHook(rec); err != nil {
			return 0, err
		}
	}
	l.recs = append(l.recs, rec)
	l.lastLSN = rec.LSN
	return rec.LSN, nil
}

// AppendBatch implements BatchAppender: all entries become stable
// under one critical section (in-memory "stability" has no per-record
// force cost, but the dense-LSN contract matters for group commit).
// The appendHook still fires per record; a hook error fails the whole
// batch with no records written, matching the all-or-nothing ack rule.
func (l *MemLog) AppendBatch(entries []BatchEntry) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	first := l.lastLSN + 1
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{
			LSN:  first + uint64(i),
			Kind: e.Kind,
			Data: append([]byte(nil), e.Data...),
		}
		if l.appendHook != nil {
			if err := l.appendHook(recs[i]); err != nil {
				return 0, err
			}
		}
	}
	l.recs = append(l.recs, recs...)
	l.lastLSN = first + uint64(len(entries)) - 1
	return first, nil
}

// Scan implements Log.
func (l *MemLog) Scan(from uint64, fn func(Record) error) error {
	l.mu.RLock()
	// Copy the slice header; records are immutable once appended, so
	// releasing the lock during fn avoids deadlocks when fn appends.
	recs := l.recs
	l.mu.RUnlock()
	for _, r := range recs {
		if r.LSN < from {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// LastLSN implements Log.
func (l *MemLog) LastLSN() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastLSN
}

// Compact implements Log: drop records with LSN ≤ upto.
func (l *MemLog) Compact(upto uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Build the kept set in a fresh slice: Scan iterates a previously
	// captured slice header without the lock, so compacting in place
	// (l.recs[:0]) would shift surviving records under a live reader.
	kept := make([]Record, 0, len(l.recs))
	for _, r := range l.recs {
		if r.LSN > upto {
			kept = append(kept, r)
		}
	}
	l.recs = kept
	return nil
}

// Close implements Log.
func (l *MemLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Reopen clears the closed flag, modelling the recovering site
// re-attaching to its surviving stable storage.
func (l *MemLog) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = false
}

// SetAppendHook installs a fault-injection hook (see appendHook).
func (l *MemLog) SetAppendHook(h func(Record) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendHook = h
}
