package wal

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
	"dvp/internal/wire"
)

// Action is one database change within a log record: apply Delta to
// the local quota of Item and, when SetTS is nonzero, advance the
// value's timestamp to SetTS (committed transactions leave "correctly
// updated timestamps", §7).
//
// Redo idempotence (§7: "the redoing actions must be idempotent") is
// achieved with the record's LSN: the durable store remembers, per
// item, the LSN of the last applied action, and redo skips records at
// or below it.
type Action struct {
	Item  ident.ItemID
	Delta core.Value
	SetTS tstamp.TS
}

func encodeActions(w *wire.Writer, as []Action) {
	w.U64(uint64(len(as)))
	for _, a := range as {
		w.String(string(a.Item))
		w.I64(int64(a.Delta))
		w.U64(uint64(a.SetTS))
	}
}

func decodeActions(r *wire.Reader) []Action {
	n := r.U64()
	if r.Err() != nil || n == 0 || n > 1<<16 {
		return nil
	}
	as := make([]Action, 0, n)
	for i := uint64(0); i < n; i++ {
		as = append(as, Action{
			Item:  ident.ItemID(r.String()),
			Delta: core.Value(r.I64()),
			SetTS: tstamp.TS(r.U64()),
		})
	}
	return as
}

// VmOut describes one virtual message in a record's message-sequence:
// Amount of Item bound for site To as Vm number Seq on the local→To
// channel, prompted by ReqTxn (zero for proactive transfers).
type VmOut struct {
	To     ident.SiteID
	Seq    uint64
	Item   ident.ItemID
	Amount core.Value
	ReqTxn tstamp.TS
	// FlowVec is the sender's value-flow vector at grant time
	// (serializability instrumentation; see internal/site).
	FlowVec []wire.FlowEntry
	// Trace is the causal-tracing context stamped on real messages
	// carrying this Vm. Deliberately NOT persisted: traces are
	// best-effort observability, and keeping the record encoding
	// byte-stable protects the checked-in WAL fuzz corpus. A crash
	// therefore drops the context — retransmitted Vm of a recovered
	// site arrive untraced, which the stitcher tolerates.
	Trace wire.TraceCtx
}

func encodeVmOuts(w *wire.Writer, vs []VmOut) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U16(uint16(v.To))
		w.U64(v.Seq)
		w.String(string(v.Item))
		w.I64(int64(v.Amount))
		w.U64(uint64(v.ReqTxn))
		wire.EncodeFlowVec(w, v.FlowVec)
	}
}

func decodeVmOuts(r *wire.Reader) []VmOut {
	n := r.U64()
	if r.Err() != nil || n == 0 || n > 1<<16 {
		return nil
	}
	vs := make([]VmOut, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, VmOut{
			To:      ident.SiteID(r.U16()),
			Seq:     r.U64(),
			Item:    ident.ItemID(r.String()),
			Amount:  core.Value(r.I64()),
			ReqTxn:  tstamp.TS(r.U64()),
			FlowVec: wire.DecodeFlowVec(r),
		})
	}
	return vs
}

// VmCreateRec is the paper's `[database-actions, message-sequence]`
// record (§4.2): the atomic unit that deducts local quota and brings
// the corresponding virtual messages into existence.
type VmCreateRec struct {
	Actions []Action
	Msgs    []VmOut
}

// Encode serializes the record payload.
func (rec *VmCreateRec) Encode() []byte {
	var w wire.Writer
	rec.EncodeTo(&w)
	return w.Bytes()
}

// EncodeTo appends the record payload to w (byte-identical to Encode),
// so hot-path callers can reuse a pooled Writer.
func (rec *VmCreateRec) EncodeTo(w *wire.Writer) {
	encodeActions(w, rec.Actions)
	encodeVmOuts(w, rec.Msgs)
}

// DecodeVmCreate parses a RecVmCreate payload.
func DecodeVmCreate(data []byte) (*VmCreateRec, error) {
	r := wire.NewReader(data)
	rec := &VmCreateRec{Actions: decodeActions(r), Msgs: decodeVmOuts(r)}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: vm-create: %w", err)
	}
	return rec, nil
}

// VmAcceptRec completes a Vm's lifespan at the receiver (§4.2): the
// `[database-actions]` record crediting the carried value, tagged with
// the channel position so recovery can rebuild the dedup cursor.
type VmAcceptRec struct {
	From    ident.SiteID
	Seq     uint64
	Actions []Action
}

// Encode serializes the record payload.
func (rec *VmAcceptRec) Encode() []byte {
	var w wire.Writer
	rec.EncodeTo(&w)
	return w.Bytes()
}

// EncodeTo appends the record payload to w (byte-identical to Encode).
func (rec *VmAcceptRec) EncodeTo(w *wire.Writer) {
	w.U16(uint16(rec.From))
	w.U64(rec.Seq)
	encodeActions(w, rec.Actions)
}

// DecodeVmAccept parses a RecVmAccept payload.
func DecodeVmAccept(data []byte) (*VmAcceptRec, error) {
	r := wire.NewReader(data)
	rec := &VmAcceptRec{
		From:    ident.SiteID(r.U16()),
		Seq:     r.U64(),
		Actions: decodeActions(r),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: vm-accept: %w", err)
	}
	return rec, nil
}

// CommitRec is the §5 step-5 `[database-actions]` record whose
// stability commits transaction Txn.
type CommitRec struct {
	Txn     tstamp.TS
	Actions []Action
}

// Encode serializes the record payload.
func (rec *CommitRec) Encode() []byte {
	var w wire.Writer
	rec.EncodeTo(&w)
	return w.Bytes()
}

// EncodeTo appends the record payload to w (byte-identical to Encode).
func (rec *CommitRec) EncodeTo(w *wire.Writer) {
	w.U64(uint64(rec.Txn))
	encodeActions(w, rec.Actions)
}

// DecodeCommit parses a RecCommit payload.
func DecodeCommit(data []byte) (*CommitRec, error) {
	r := wire.NewReader(data)
	rec := &CommitRec{Txn: tstamp.TS(r.U64()), Actions: decodeActions(r)}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: commit: %w", err)
	}
	return rec, nil
}

// AppliedRec is the §5 step-6 record: the changes logged at CommitLSN
// have been carried out against the database.
type AppliedRec struct {
	CommitLSN uint64
}

// Encode serializes the record payload.
func (rec *AppliedRec) Encode() []byte {
	var w wire.Writer
	rec.EncodeTo(&w)
	return w.Bytes()
}

// EncodeTo appends the record payload to w (byte-identical to Encode).
func (rec *AppliedRec) EncodeTo(w *wire.Writer) {
	w.U64(rec.CommitLSN)
}

// DecodeApplied parses a RecApplied payload.
func DecodeApplied(data []byte) (*AppliedRec, error) {
	r := wire.NewReader(data)
	rec := &AppliedRec{CommitLSN: r.U64()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: applied: %w", err)
	}
	return rec, nil
}

// CheckpointItem is one item's durable state inside a checkpoint.
type CheckpointItem struct {
	Item       ident.ItemID
	Value      core.Value
	TS         tstamp.TS
	AppliedLSN uint64
}

// VmChannelState is the complete per-peer Vm channel state inside a
// checkpoint: outbound cursor and retransmission set, and the inbound
// acceptance set (cumulative low-water mark plus the sparse accepted
// tail above it). Recovery restores these and then replays only the
// log suffix after the checkpoint.
type VmChannelState struct {
	Peer    ident.SiteID
	OutSeq  uint64
	CumAck  uint64
	Pending []VmOut
	InLow   uint64
	InAbove []uint64
}

// CheckpointRec snapshots store and Vm state so recovery can bound its
// log scan (§7: "by using checkpointing mechanisms, the number of redo
// actions required can be reduced in the usual manner").
type CheckpointRec struct {
	Items    []CheckpointItem
	Channels []VmChannelState
	// Clock is the Lamport counter at checkpoint time.
	Clock uint64
}

// Encode serializes the record payload.
func (rec *CheckpointRec) Encode() []byte {
	var w wire.Writer
	w.U64(uint64(len(rec.Items)))
	for _, it := range rec.Items {
		w.String(string(it.Item))
		w.I64(int64(it.Value))
		w.U64(uint64(it.TS))
		w.U64(it.AppliedLSN)
	}
	w.U64(uint64(len(rec.Channels)))
	for _, ch := range rec.Channels {
		w.U16(uint16(ch.Peer))
		w.U64(ch.OutSeq)
		w.U64(ch.CumAck)
		encodeVmOuts(&w, ch.Pending)
		w.U64(ch.InLow)
		w.U64(uint64(len(ch.InAbove)))
		for _, s := range ch.InAbove {
			w.U64(s)
		}
	}
	w.U64(rec.Clock)
	return w.Bytes()
}

// DecodeCheckpoint parses a RecCheckpoint payload.
func DecodeCheckpoint(data []byte) (*CheckpointRec, error) {
	r := wire.NewReader(data)
	rec := &CheckpointRec{}
	n := r.U64()
	if r.Err() == nil && n <= 1<<20 {
		rec.Items = make([]CheckpointItem, 0, n)
		for i := uint64(0); i < n; i++ {
			rec.Items = append(rec.Items, CheckpointItem{
				Item:       ident.ItemID(r.String()),
				Value:      core.Value(r.I64()),
				TS:         tstamp.TS(r.U64()),
				AppliedLSN: r.U64(),
			})
		}
	}
	m := r.U64()
	if r.Err() == nil && m <= 1<<16 {
		rec.Channels = make([]VmChannelState, 0, m)
		for i := uint64(0); i < m; i++ {
			ch := VmChannelState{
				Peer:    ident.SiteID(r.U16()),
				OutSeq:  r.U64(),
				CumAck:  r.U64(),
				Pending: decodeVmOuts(r),
				InLow:   r.U64(),
			}
			k := r.U64()
			if r.Err() == nil && k <= 1<<20 {
				for j := uint64(0); j < k; j++ {
					ch.InAbove = append(ch.InAbove, r.U64())
				}
			}
			rec.Channels = append(rec.Channels, ch)
		}
	}
	rec.Clock = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", err)
	}
	return rec, nil
}

// PrepareRec is the baseline participant's force-written 2PC record.
type PrepareRec struct {
	Txn    tstamp.TS
	Coord  ident.SiteID
	Writes []Action
}

// Encode serializes the record payload.
func (rec *PrepareRec) Encode() []byte {
	var w wire.Writer
	w.U64(uint64(rec.Txn))
	w.U16(uint16(rec.Coord))
	encodeActions(&w, rec.Writes)
	return w.Bytes()
}

// DecodePrepare parses a RecPrepare payload.
func DecodePrepare(data []byte) (*PrepareRec, error) {
	r := wire.NewReader(data)
	rec := &PrepareRec{
		Txn:    tstamp.TS(r.U64()),
		Coord:  ident.SiteID(r.U16()),
		Writes: decodeActions(r),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: prepare: %w", err)
	}
	return rec, nil
}

// DecisionRec is the baseline 2PC decision record.
type DecisionRec struct {
	Txn    tstamp.TS
	Commit bool
}

// Encode serializes the record payload.
func (rec *DecisionRec) Encode() []byte {
	var w wire.Writer
	w.U64(uint64(rec.Txn))
	w.Bool(rec.Commit)
	return w.Bytes()
}

// DecodeDecision parses a RecDecision payload.
func DecodeDecision(data []byte) (*DecisionRec, error) {
	r := wire.NewReader(data)
	rec := &DecisionRec{Txn: tstamp.TS(r.U64()), Commit: r.Bool()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wal: decision: %w", err)
	}
	return rec, nil
}
