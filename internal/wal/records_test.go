package wal

import (
	"reflect"
	"testing"
	"testing/quick"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

func TestVmCreateRoundTrip(t *testing.T) {
	rec := &VmCreateRec{
		Actions: []Action{{Item: "flight/A", Delta: -5, SetTS: tstamp.Make(3, 4)}},
		Msgs: []VmOut{
			{To: 2, Seq: 7, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(3, 2)},
			{To: 3, Seq: 1, Item: "flight/A", Amount: 2, ReqTxn: 0},
		},
	}
	got, err := DecodeVmCreate(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip: %+v vs %+v", got, rec)
	}
}

func TestVmCreateEmptySections(t *testing.T) {
	rec := &VmCreateRec{}
	got, err := DecodeVmCreate(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Actions) != 0 || len(got.Msgs) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestVmAcceptRoundTrip(t *testing.T) {
	rec := &VmAcceptRec{
		From:    4,
		Seq:     99,
		Actions: []Action{{Item: "acct/x", Delta: 5, SetTS: 0}},
	}
	got, err := DecodeVmAccept(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip: %+v vs %+v", got, rec)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	rec := &CommitRec{
		Txn: tstamp.Make(12, 1),
		Actions: []Action{
			{Item: "a", Delta: -3, SetTS: tstamp.Make(12, 1)},
			{Item: "b", Delta: 3, SetTS: tstamp.Make(12, 1)},
		},
	}
	got, err := DecodeCommit(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip: %+v vs %+v", got, rec)
	}
}

func TestAppliedRoundTrip(t *testing.T) {
	rec := &AppliedRec{CommitLSN: 555}
	got, err := DecodeApplied(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CommitLSN != 555 {
		t.Errorf("got %+v", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rec := &CheckpointRec{
		Items: []CheckpointItem{
			{Item: "flight/A", Value: 25, TS: tstamp.Make(9, 2), AppliedLSN: 40},
			{Item: "acct/z", Value: 0, TS: 0, AppliedLSN: 0},
		},
		Channels: []VmChannelState{
			{
				Peer: 2, OutSeq: 10, CumAck: 8,
				Pending: []VmOut{{To: 2, Seq: 9, Item: "flight/A", Amount: 3, ReqTxn: tstamp.Make(4, 2)}},
				InLow:   5, InAbove: []uint64{7, 9},
			},
			{Peer: 3},
		},
		Clock: 77,
	}
	got, err := DecodeCheckpoint(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, rec)
	}
}

func TestCheckpointEmpty(t *testing.T) {
	rec := &CheckpointRec{Clock: 5}
	got, err := DecodeCheckpoint(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Clock != 5 || len(got.Items) != 0 || len(got.Channels) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestPrepareDecisionRoundTrip(t *testing.T) {
	p := &PrepareRec{
		Txn:    tstamp.Make(4, 2),
		Coord:  1,
		Writes: []Action{{Item: "x", Delta: -1}},
	}
	gp, err := DecodePrepare(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gp, p) {
		t.Errorf("prepare: %+v vs %+v", gp, p)
	}
	d := &DecisionRec{Txn: tstamp.Make(4, 2), Commit: true}
	gd, err := DecodeDecision(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gd, d) {
		t.Errorf("decision: %+v vs %+v", gd, d)
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeVmCreate(garbage[:1]); err == nil {
		t.Error("VmCreate decoded garbage")
	}
	if _, err := DecodeVmAccept(garbage[:2]); err == nil {
		t.Error("VmAccept decoded garbage")
	}
	if _, err := DecodeCommit(nil); err == nil {
		t.Error("Commit decoded empty")
	}
	if _, err := DecodeApplied(nil); err == nil {
		t.Error("Applied decoded empty")
	}
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Error("Checkpoint decoded empty")
	}
	if _, err := DecodePrepare(nil); err == nil {
		t.Error("Prepare decoded empty")
	}
	if _, err := DecodeDecision(nil); err == nil {
		t.Error("Decision decoded empty")
	}
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = DecodeVmCreate(garbage)
		_, _ = DecodeVmAccept(garbage)
		_, _ = DecodeCommit(garbage)
		_, _ = DecodeApplied(garbage)
		_, _ = DecodeCheckpoint(garbage)
		_, _ = DecodePrepare(garbage)
		_, _ = DecodeDecision(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommitRoundTripProperty(t *testing.T) {
	f := func(txn uint64, item string, delta int32, ts uint64) bool {
		rec := &CommitRec{
			Txn:     tstamp.TS(txn),
			Actions: []Action{{Item: ident.ItemID(item), Delta: core.Value(delta), SetTS: tstamp.TS(ts)}},
		}
		got, err := DecodeCommit(rec.Encode())
		return err == nil && reflect.DeepEqual(got, rec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
