package wal

import (
	"sync"
	"time"

	"dvp/internal/vclock"
)

// SlowLog wraps a Log, adding a fixed latency to every Append —
// modelling the force-write to stable storage that commit protocols
// actually pay (an fsync is hundreds of microseconds on an SSD,
// milliseconds on spinning disk). Experiments use it so that "commit
// cost" is wait time rather than CPU, which keeps concurrency shapes
// meaningful on any core count.
//
// The latency is paid by the appending goroutine only; concurrent
// appenders overlap their waits (like independent I/O requests), while
// anything serialized above the log — a held lock, a mutex — is
// serialized across the wait, exactly like real systems. NewSlowDevice
// instead serializes the waits themselves, modelling one log device
// that forces one write at a time.
type SlowLog struct {
	inner Log
	delay time.Duration
	clock vclock.Clock
	// dev, when non-nil, serializes force-writes: one delay at a time,
	// like a single WAL device whose write head the forces queue on.
	// Nil models independent I/O (overlapping waits).
	dev *sync.Mutex
}

// NewSlowLog wraps inner with a per-append delay on the given clock
// (nil means the real clock). A non-positive delay returns inner
// unchanged.
func NewSlowLog(inner Log, delay time.Duration, clock vclock.Clock) Log {
	if delay <= 0 {
		return inner
	}
	if clock == nil {
		clock = vclock.Real{}
	}
	return &SlowLog{inner: inner, delay: delay, clock: clock}
}

// NewSlowDevice is NewSlowLog with force-writes serialized: concurrent
// appends queue and pay the delay one after another, the way a single
// log device actually forces. This is the model under which group
// commit earns its keep — without batching, k concurrent committers
// take k delays; batched, one delay covers the group.
func NewSlowDevice(inner Log, delay time.Duration, clock vclock.Clock) Log {
	l := NewSlowLog(inner, delay, clock)
	if sl, ok := l.(*SlowLog); ok {
		sl.dev = &sync.Mutex{}
	}
	return l
}

// force pays the storage latency, serialized if this is a device.
func (l *SlowLog) force() {
	if l.dev != nil {
		l.dev.Lock()
		defer l.dev.Unlock()
	}
	l.clock.Sleep(l.delay)
}

// Append implements Log: wait the storage latency, then append.
func (l *SlowLog) Append(kind RecordKind, data []byte) (uint64, error) {
	l.force()
	return l.inner.Append(kind, data)
}

// AppendBatch implements BatchAppender: the latency models the
// force-write, so a batched flush pays it once for the whole batch —
// that per-flush (not per-record) cost is exactly the win group commit
// exists to buy, and Quick-mode experiments must see it.
func (l *SlowLog) AppendBatch(entries []BatchEntry) (uint64, error) {
	l.force()
	if ba, ok := l.inner.(BatchAppender); ok {
		return ba.AppendBatch(entries)
	}
	return appendBatchFallback(l.inner, entries)
}

// Scan implements Log.
func (l *SlowLog) Scan(from uint64, fn func(Record) error) error {
	return l.inner.Scan(from, fn)
}

// LastLSN implements Log.
func (l *SlowLog) LastLSN() uint64 { return l.inner.LastLSN() }

// Compact implements Log (no latency: compaction is background work).
func (l *SlowLog) Compact(upto uint64) error { return l.inner.Compact(upto) }

// Close implements Log.
func (l *SlowLog) Close() error { return l.inner.Close() }
