package wal

import (
	"time"

	"dvp/internal/vclock"
)

// SlowLog wraps a Log, adding a fixed latency to every Append —
// modelling the force-write to stable storage that commit protocols
// actually pay (an fsync is hundreds of microseconds on an SSD,
// milliseconds on spinning disk). Experiments use it so that "commit
// cost" is wait time rather than CPU, which keeps concurrency shapes
// meaningful on any core count.
//
// The latency is paid by the appending goroutine only; concurrent
// appenders overlap their waits (like independent I/O requests), while
// anything serialized above the log — a held lock, a mutex — is
// serialized across the wait, exactly like real systems.
type SlowLog struct {
	inner Log
	delay time.Duration
	clock vclock.Clock
}

// NewSlowLog wraps inner with a per-append delay on the given clock
// (nil means the real clock). A non-positive delay returns inner
// unchanged.
func NewSlowLog(inner Log, delay time.Duration, clock vclock.Clock) Log {
	if delay <= 0 {
		return inner
	}
	if clock == nil {
		clock = vclock.Real{}
	}
	return &SlowLog{inner: inner, delay: delay, clock: clock}
}

// Append implements Log: wait the storage latency, then append.
func (l *SlowLog) Append(kind RecordKind, data []byte) (uint64, error) {
	l.clock.Sleep(l.delay)
	return l.inner.Append(kind, data)
}

// Scan implements Log.
func (l *SlowLog) Scan(from uint64, fn func(Record) error) error {
	return l.inner.Scan(from, fn)
}

// LastLSN implements Log.
func (l *SlowLog) LastLSN() uint64 { return l.inner.LastLSN() }

// Compact implements Log (no latency: compaction is background work).
func (l *SlowLog) Compact(upto uint64) error { return l.inner.Compact(upto) }

// Close implements Log.
func (l *SlowLog) Close() error { return l.inner.Close() }
