package wal

import (
	"sync"
	"time"

	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/vclock"
)

// GroupCommitOptions configures a GroupLog.
type GroupCommitOptions struct {
	// MaxBatch bounds how many records one flush may carry
	// (default 128).
	MaxBatch int
	// Linger is how long the flusher waits after the first record of
	// a batch arrives before forcing, giving concurrent committers a
	// window to join. Zero (the default) flushes immediately; natural
	// batching still happens, because arrivals during an in-progress
	// flush queue up and ride the next one.
	Linger time.Duration
	// Clock times the linger (nil = real clock).
	Clock vclock.Clock
}

// groupWaiter is one queued append and the parked caller's mailbox.
type groupWaiter struct {
	entry BatchEntry
	lsn   uint64
	err   error
	done  chan struct{}
}

// GroupLog is the group-commit pipeline: a Log whose Append parks the
// caller while a dedicated flusher goroutine drains the queue of all
// concurrent appends into a single AppendBatch on the inner log — one
// write, one force, many commit points (§5 step 5: stability of the
// record is the commit point; *whose* fsync made it stable is
// immaterial). Append keeps the Log contract exactly: when it returns
// nil, the record is stable.
//
// The GroupLog itself is volatile (the queue is process state): a
// crash loses queued-but-unflushed records, which is safe because
// their appenders were still parked and nothing was acknowledged.
type GroupLog struct {
	inner Log
	batch BatchAppender // inner's native batching, if any
	opts  GroupCommitOptions

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*groupWaiter
	inFlight int
	durable  uint64
	closed   bool
	done     chan struct{}

	hook func(batch int) // test/chaos observation of each flush

	// entryScratch is the flusher's reusable batch-assembly buffer;
	// only the flusher goroutine touches it.
	entryScratch []BatchEntry

	// Flight recording (see SetFlight); nil when not recording.
	flight     *obs.Flight
	flightSite string

	// Instrumentation (see Instrument); nil when not instrumented.
	flushLat  *metrics.Histogram
	batchHist *metrics.Histogram
	flushes   *metrics.Counter
	records   *metrics.Counter
}

// NewGroupLog wraps inner with a group-commit flusher. Close stops the
// flusher and closes inner.
func NewGroupLog(inner Log, opts GroupCommitOptions) *GroupLog {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 128
	}
	if opts.Clock == nil {
		opts.Clock = vclock.Real{}
	}
	g := &GroupLog{
		inner:   inner,
		opts:    opts,
		durable: inner.LastLSN(),
		done:    make(chan struct{}),
	}
	if ba, ok := inner.(BatchAppender); ok {
		g.batch = ba
	}
	g.cond = sync.NewCond(&g.mu)
	go g.flusher()
	return g
}

// Append implements Log: enqueue and park until the flusher reports
// the record stable.
//
// data is borrowed, not copied: the caller stays parked until the
// flusher has handed it to the inner log (which consumes it before
// AppendBatch returns), so the buffer is pinned for exactly the span
// the flusher needs it. This lets committers encode records into
// pooled scratch and return it right after Append — the whole batch is
// built with zero intermediate copies.
func (g *GroupLog) Append(kind RecordKind, data []byte) (uint64, error) {
	w := &groupWaiter{
		entry: BatchEntry{Kind: kind, Data: data},
		done:  make(chan struct{}),
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, ErrClosed
	}
	g.queue = append(g.queue, w)
	g.cond.Signal()
	g.mu.Unlock()
	<-w.done
	return w.lsn, w.err
}

// flusher is the dedicated group-commit goroutine: wait for work,
// optionally linger to let a group gather, then force the whole group
// with one inner AppendBatch and wake every parked appender.
func (g *GroupLog) flusher() {
	defer close(g.done)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.closed {
			g.cond.Wait()
		}
		if len(g.queue) == 0 && g.closed {
			g.mu.Unlock()
			return
		}
		if g.opts.Linger > 0 && len(g.queue) < g.opts.MaxBatch && !g.closed {
			g.mu.Unlock()
			g.opts.Clock.Sleep(g.opts.Linger)
			g.mu.Lock()
		}
		n := len(g.queue)
		if n > g.opts.MaxBatch {
			n = g.opts.MaxBatch
		}
		group := g.queue[:n:n]
		g.queue = append([]*groupWaiter(nil), g.queue[n:]...)
		g.inFlight = n
		hook := g.hook
		flushLat := g.flushLat
		flight, flightSite := g.flight, g.flightSite
		g.mu.Unlock()

		if hook != nil {
			hook(n)
		}
		// entryScratch is reused across flushes (only the flusher
		// goroutine touches it); entries are cleared after the write so
		// the scratch never pins the appenders' pooled data buffers.
		if cap(g.entryScratch) < n {
			g.entryScratch = make([]BatchEntry, n)
		}
		entries := g.entryScratch[:n]
		for i, w := range group {
			entries[i] = w.entry
		}
		var start time.Time
		if flushLat != nil {
			start = time.Now()
		}
		var first uint64
		var err error
		if g.batch != nil {
			first, err = g.batch.AppendBatch(entries)
		} else {
			first, err = appendBatchFallback(g.inner, entries)
		}
		if flushLat != nil {
			flushLat.Record(time.Since(start))
			// The batch-size histogram reuses the duration histogram's
			// log-spaced buckets by encoding size n as n microseconds.
			g.mu.Lock()
			batchHist, flushes, records := g.batchHist, g.flushes, g.records
			g.mu.Unlock()
			batchHist.Record(time.Duration(n) * time.Microsecond)
			flushes.Inc()
			records.Add(uint64(n))
		}

		for i := range entries {
			entries[i] = BatchEntry{}
		}

		if err == nil {
			flight.Recordf(flightSite, "wal-flush", "records=%d first_lsn=%d", n, first)
		} else {
			flight.Recordf(flightSite, "wal-flush-err", "records=%d err=%v", n, err)
		}

		g.mu.Lock()
		if err == nil {
			g.durable = first + uint64(n) - 1
		}
		g.inFlight = 0
		g.mu.Unlock()
		for i, w := range group {
			if err != nil {
				w.err = err
			} else {
				w.lsn = first + uint64(i)
			}
			close(w.done)
		}
	}
}

// DurableLSN reports the highest LSN the flusher has made stable. At a
// quiescent point it equals LastLSN(); mid-flush it trails it.
func (g *GroupLog) DurableLSN() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.durable
}

// Waiters reports how many appends are queued or riding an in-progress
// flush — the waiter/durable-LSN boundary the chaos harness audits: a
// record is either durable (LSN ≤ DurableLSN) or its appender is still
// parked here, never acknowledged-but-lost.
func (g *GroupLog) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue) + g.inFlight
}

// SetFlushHook installs fn to be called at the start of every flush
// with the batch size. Chaos uses it to land a crash inside the
// group-commit window; fn must not call back into the GroupLog's
// appenders synchronously (crash the site from a fresh goroutine).
func (g *GroupLog) SetFlushHook(fn func(batch int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hook = fn
}

// SetFlight attaches a flight recorder: every flush (and flush error)
// is recorded as a structured event under the given site label.
func (g *GroupLog) SetFlight(f *obs.Flight, site string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flight = f
	g.flightSite = site
}

// Instrument registers the group-commit metrics with reg under the
// given extra k,v label pairs (conventionally site=<id>):
// dvp_wal_flush_seconds (force-write latency per flush) and
// dvp_wal_group_batch (batch size, encoded as n microseconds in the
// duration histogram), plus flush/record counters.
func (g *GroupLog) Instrument(reg *obs.Registry, labels ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flushLat = reg.Histogram("dvp_wal_flush_seconds", labels...)
	g.batchHist = reg.Histogram("dvp_wal_group_batch", labels...)
	g.flushes = reg.Counter("dvp_wal_group_flushes_total", labels...)
	g.records = reg.Counter("dvp_wal_group_records_total", labels...)
}

// Scan implements Log over the durable records.
func (g *GroupLog) Scan(from uint64, fn func(Record) error) error {
	return g.inner.Scan(from, fn)
}

// LastLSN implements Log (durable view).
func (g *GroupLog) LastLSN() uint64 { return g.inner.LastLSN() }

// Compact implements Log. Safe concurrently with flushing: the inner
// log serializes Compact against AppendBatch, and compaction only
// drops LSNs ≤ upto, which are already durable.
func (g *GroupLog) Compact(upto uint64) error { return g.inner.Compact(upto) }

// Close drains the queue (flushing any remaining records), stops the
// flusher and closes the inner log.
func (g *GroupLog) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return nil
	}
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	<-g.done
	return g.inner.Close()
}

// Inner exposes the wrapped log (harness audits and tests).
func (g *GroupLog) Inner() Log { return g.inner }
