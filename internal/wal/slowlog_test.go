package wal

import (
	"sync"
	"testing"
	"time"
)

func TestSlowLogAddsLatency(t *testing.T) {
	l := NewSlowLog(NewMemLog(), 5*time.Millisecond, nil)
	start := time.Now()
	if _, err := l.Append(RecCommit, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("append took %v, want ≥5ms", elapsed)
	}
}

func TestSlowLogZeroDelayIsPassthrough(t *testing.T) {
	inner := NewMemLog()
	l := NewSlowLog(inner, 0, nil)
	if l != Log(inner) {
		t.Error("zero delay must return the inner log unchanged")
	}
}

func TestSlowLogConcurrentAppendsOverlap(t *testing.T) {
	// The latency models independent I/O: k concurrent appenders must
	// finish in ~1 delay, not k delays.
	l := NewSlowLog(NewMemLog(), 20*time.Millisecond, nil)
	const k = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Append(RecCommit, nil)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("%d concurrent appends took %v — waits did not overlap", k, elapsed)
	}
	if l.LastLSN() != k {
		t.Errorf("LastLSN = %d", l.LastLSN())
	}
}

func TestSlowDeviceSerializesForces(t *testing.T) {
	// A device forces one write at a time: k concurrent appends take
	// ~k delays, not ~1 — the cost profile group commit amortizes.
	l := NewSlowDevice(NewMemLog(), 10*time.Millisecond, nil)
	const k = 5
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Append(RecCommit, nil)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < (k-1)*10*time.Millisecond {
		t.Errorf("%d concurrent appends took %v — forces did not serialize", k, elapsed)
	}
	if l.LastLSN() != k {
		t.Errorf("LastLSN = %d", l.LastLSN())
	}
	// One batch pays one delay for the whole group.
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{Kind: RecCommit}
	}
	start = time.Now()
	if _, err := l.(BatchAppender).AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("8-record batch took %v, want ~1 delay", elapsed)
	}
}

func TestSlowLogDelegates(t *testing.T) {
	l := NewSlowLog(NewMemLog(), time.Microsecond, nil)
	l.Append(RecApplied, []byte("a"))
	var n int
	l.Scan(1, func(r Record) error { n++; return nil })
	if n != 1 {
		t.Errorf("Scan visited %d", n)
	}
	if err := l.Close(); err != nil {
		t.Error(err)
	}
}
