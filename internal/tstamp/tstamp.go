// Package tstamp implements the paper's timestamping substrate (§6.1,
// §7): Lamport-style logical timestamps with the site identifier
// packed into the low-order bits, so that timestamps are unique across
// sites ("by attaching the site identifier in the low order bits of a
// timestamp — a common scheme", §7).
//
// The same mechanism provides the §7 recovery property: a recovered
// site whose counter is outdated has its clock "bumped-up" by the
// timestamps carried on messages it receives, so outdated timestamps
// are only a temporary problem.
package tstamp

import (
	"fmt"
	"sync"

	"dvp/internal/ident"
)

// SiteBits is the number of low-order bits of a TS that hold the site
// id. 16 bits allows 65535 sites, far beyond any experiment here,
// while leaving 48 bits of counter.
const SiteBits = 16

const siteMask = (1 << SiteBits) - 1

// TS is a packed timestamp: counter<<SiteBits | site. The zero TS is
// smaller than every timestamp any transaction can draw, and is used
// as the initial timestamp of every data value.
type TS uint64

// Make builds a TS from a counter and a site.
func Make(counter uint64, site ident.SiteID) TS {
	return TS(counter<<SiteBits | uint64(site)&siteMask)
}

// Counter returns the logical counter part of the timestamp.
func (t TS) Counter() uint64 { return uint64(t) >> SiteBits }

// Site returns the site that drew this timestamp.
func (t TS) Site() ident.SiteID { return ident.SiteID(uint64(t) & siteMask) }

// IsZero reports whether t is the zero timestamp.
func (t TS) IsZero() bool { return t == 0 }

// String renders "c@s3" (counter at site).
func (t TS) String() string {
	if t.IsZero() {
		return "ts0"
	}
	return fmt.Sprintf("%d@%s", t.Counter(), t.Site())
}

// Txn converts the timestamp to the transaction id it names; per §6.1
// the timestamp of a transaction "also serves as its identifier".
func (t TS) Txn() ident.TxnID { return ident.TxnID(t) }

// FromTxn recovers the timestamp from a transaction id.
func FromTxn(id ident.TxnID) TS { return TS(id) }

// Clock is one site's Lamport clock. It is safe for concurrent use:
// transactions draw timestamps while the message layer observes
// incoming ones.
type Clock struct {
	mu      sync.Mutex
	site    ident.SiteID
	counter uint64
}

// NewClock returns a clock for the given site, starting at counter 0.
func NewClock(site ident.SiteID) *Clock {
	return &Clock{site: site}
}

// Site returns the owning site.
func (c *Clock) Site() ident.SiteID { return c.site }

// Next draws a fresh timestamp strictly greater than every timestamp
// previously drawn by or observed at this site.
func (c *Clock) Next() TS {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counter++
	return Make(c.counter, c.site)
}

// Observe folds a remote timestamp into the clock (the Lamport
// "receive" rule). After Observe(ts), Next() > ts. This is the §7
// bump-up that heals a recovered site's outdated counter.
func (c *Clock) Observe(ts TS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr := ts.Counter(); ctr > c.counter {
		c.counter = ctr
	}
}

// Current returns the last drawn counter value (for introspection and
// checkpointing; recovery restores it with Restore).
func (c *Clock) Current() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counter
}

// Reset rewinds the counter to zero — the volatile clock of a freshly
// crashed site, before recovery re-learns durable timestamps via
// Restore/Observe.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counter = 0
}

// Restore sets the counter if the given value is larger; used when a
// recovering site replays its log to re-learn the highest timestamp it
// had drawn before the crash.
func (c *Clock) Restore(counter uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if counter > c.counter {
		c.counter = counter
	}
}
