package tstamp

import (
	"sync"
	"testing"
	"testing/quick"

	"dvp/internal/ident"
)

func TestMakeRoundTrip(t *testing.T) {
	ts := Make(42, ident.SiteID(7))
	if ts.Counter() != 42 {
		t.Errorf("Counter = %d, want 42", ts.Counter())
	}
	if ts.Site() != 7 {
		t.Errorf("Site = %v, want s7", ts.Site())
	}
}

func TestMakeRoundTripProperty(t *testing.T) {
	f := func(counter uint64, site uint16) bool {
		counter &= (1 << (64 - SiteBits)) - 1 // representable counters
		ts := Make(counter, ident.SiteID(site))
		return ts.Counter() == counter && ts.Site() == ident.SiteID(site)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderingCounterDominates(t *testing.T) {
	// Higher counter always wins regardless of site id.
	lo := Make(1, ident.SiteID(65535))
	hi := Make(2, ident.SiteID(1))
	if !(lo < hi) {
		t.Errorf("want %v < %v", lo, hi)
	}
}

func TestOrderingSiteBreaksTies(t *testing.T) {
	a := Make(5, 1)
	b := Make(5, 2)
	if !(a < b) {
		t.Errorf("want %v < %v", a, b)
	}
	if a == b {
		t.Error("timestamps from different sites must differ")
	}
}

func TestZero(t *testing.T) {
	var z TS
	if !z.IsZero() {
		t.Error("zero TS must report IsZero")
	}
	if z.String() != "ts0" {
		t.Errorf("String = %q", z.String())
	}
	if Make(1, 1).IsZero() {
		t.Error("nonzero TS reported IsZero")
	}
	// The zero timestamp sorts below everything a clock can draw.
	c := NewClock(1)
	if ts := c.Next(); !(z < ts) {
		t.Errorf("zero TS must precede first drawn TS %v", ts)
	}
}

func TestTxnRoundTrip(t *testing.T) {
	ts := Make(9, 3)
	if FromTxn(ts.Txn()) != ts {
		t.Errorf("Txn round trip lost information: %v", ts)
	}
}

func TestClockStrictlyIncreasing(t *testing.T) {
	c := NewClock(2)
	prev := c.Next()
	for i := 0; i < 1000; i++ {
		ts := c.Next()
		if !(prev < ts) {
			t.Fatalf("clock not strictly increasing: %v then %v", prev, ts)
		}
		prev = ts
	}
}

func TestClockObserveBumpsAhead(t *testing.T) {
	c := NewClock(1)
	remote := Make(100, 2)
	c.Observe(remote)
	if ts := c.Next(); !(remote < ts) {
		t.Errorf("after Observe(%v), Next() = %v is not greater", remote, ts)
	}
}

func TestClockObserveOldIsNoop(t *testing.T) {
	c := NewClock(1)
	for i := 0; i < 10; i++ {
		c.Next()
	}
	was := c.Current()
	c.Observe(Make(3, 2))
	if c.Current() != was {
		t.Errorf("Observe of an old timestamp changed the counter: %d -> %d", was, c.Current())
	}
}

func TestClockRestore(t *testing.T) {
	c := NewClock(4)
	c.Restore(500)
	if got := c.Next(); got.Counter() != 501 {
		t.Errorf("after Restore(500), Next counter = %d, want 501", got.Counter())
	}
	c.Restore(10) // smaller: no-op
	if got := c.Next(); got.Counter() != 502 {
		t.Errorf("Restore(10) should not rewind; Next counter = %d, want 502", got.Counter())
	}
}

func TestClockConcurrentUniqueness(t *testing.T) {
	c := NewClock(3)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	results := make([][]TS, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]TS, per)
			for i := range out {
				out[i] = c.Next()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[TS]bool, goroutines*per)
	for _, r := range results {
		for _, ts := range r {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v drawn concurrently", ts)
			}
			seen[ts] = true
		}
	}
}

func TestCrossSiteUniquenessProperty(t *testing.T) {
	// Timestamps from different sites never collide, whatever the counters.
	f := func(c1, c2 uint64, s1, s2 uint16) bool {
		c1 &= (1 << 40) - 1
		c2 &= (1 << 40) - 1
		if s1 == s2 {
			return true
		}
		return Make(c1, ident.SiteID(s1)) != Make(c2, ident.SiteID(s2)) ||
			c1 != c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
