package escrow

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dvp/internal/core"
)

func TestNewAccountRejectsNegative(t *testing.T) {
	if _, err := NewAccount(-1); err == nil {
		t.Error("negative initial must be rejected")
	}
}

func TestEscrowDecrCommit(t *testing.T) {
	a, _ := NewAccount(100)
	h, err := a.EscrowDecr(30)
	if err != nil {
		t.Fatal(err)
	}
	// Committed value unchanged until commit; bounds reflect the hold.
	if a.Committed() != 100 {
		t.Error("escrow must not change the committed value")
	}
	lo, hi := a.Bounds()
	if lo != 70 || hi != 100 {
		t.Errorf("bounds = [%d,%d], want [70,100]", lo, hi)
	}
	if err := h.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.Committed() != 70 {
		t.Errorf("committed = %d, want 70", a.Committed())
	}
}

func TestEscrowDecrAbortRestores(t *testing.T) {
	a, _ := NewAccount(10)
	h, _ := a.EscrowDecr(10)
	// Everything escrowed: nothing more grantable.
	if _, err := a.EscrowDecr(1); !errors.Is(err, ErrInsufficient) {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
	h.Abort()
	if _, err := a.EscrowDecr(10); err != nil {
		t.Errorf("after abort the quantity must be escrowable again: %v", err)
	}
}

func TestEscrowTestIsPessimistic(t *testing.T) {
	a, _ := NewAccount(10)
	// An uncommitted increment must NOT be spendable.
	ih, _ := a.EscrowIncr(50)
	if _, err := a.EscrowDecr(20); !errors.Is(err, ErrInsufficient) {
		t.Error("uncommitted increment was spendable (escrow test broken)")
	}
	ih.Commit()
	if _, err := a.EscrowDecr(20); err != nil {
		t.Errorf("committed increment must be spendable: %v", err)
	}
}

func TestDoubleResolveRejected(t *testing.T) {
	a, _ := NewAccount(5)
	h, _ := a.EscrowDecr(5)
	h.Commit()
	if err := h.Commit(); !errors.Is(err, ErrResolved) {
		t.Error("double commit must fail")
	}
	if err := h.Abort(); !errors.Is(err, ErrResolved) {
		t.Error("abort after commit must fail")
	}
	if a.Committed() != 0 {
		t.Errorf("committed = %d", a.Committed())
	}
}

func TestNegativeAmountsRejected(t *testing.T) {
	a, _ := NewAccount(5)
	if _, err := a.EscrowDecr(-1); err == nil {
		t.Error("negative decr accepted")
	}
	if _, err := a.EscrowIncr(-1); err == nil {
		t.Error("negative incr accepted")
	}
}

func TestConcurrentEscrowNeverOversells(t *testing.T) {
	const initial = 1000
	a, _ := NewAccount(initial)
	var granted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				amt := core.Value(rng.Intn(10) + 1)
				h, err := a.EscrowDecr(amt)
				if err != nil {
					continue
				}
				if rng.Intn(10) == 0 {
					h.Abort()
				} else {
					h.Commit()
					mu.Lock()
					granted += int64(amt)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if a.ActiveHolds() != 0 {
		t.Errorf("%d holds leaked", a.ActiveHolds())
	}
	if got := a.Committed(); got != core.Value(initial-int(granted)) {
		t.Errorf("committed = %d, want %d", got, initial-int(granted))
	}
	if a.Committed() < 0 {
		t.Error("account oversold")
	}
}

// Property: any sequence of grant/commit/abort keeps the invariant
// committed ≥ outstanding decrements ≥ 0 and bounds are honest.
func TestEscrowInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := NewAccount(core.Value(rng.Intn(200)))
		var open []*Hold
		model := a.Committed() // committed value mirror
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0:
				if h, err := a.EscrowDecr(core.Value(rng.Intn(20))); err == nil {
					open = append(open, h)
				}
			case 1:
				if h, err := a.EscrowIncr(core.Value(rng.Intn(20))); err == nil {
					open = append(open, h)
				}
			case 2, 3:
				if len(open) == 0 {
					continue
				}
				i := rng.Intn(len(open))
				h := open[i]
				open = append(open[:i], open[i+1:]...)
				if rng.Intn(2) == 0 {
					if h.Commit() == nil {
						if h.incr {
							model += h.amount
						} else {
							model -= h.amount
						}
					}
				} else {
					h.Abort()
				}
			}
			lo, hi := a.Bounds()
			if lo < 0 || lo > hi || a.Committed() != model || a.Committed() < lo || a.Committed() > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLockedAccountBasics(t *testing.T) {
	l := NewLockedAccount(10)
	v, commit, _ := l.Begin()
	if v != 10 {
		t.Errorf("Begin value = %d", v)
	}
	if !commit(-4) {
		t.Error("commit(-4) should succeed")
	}
	if l.Value() != 6 {
		t.Errorf("value = %d", l.Value())
	}
	// Bounded at zero.
	_, commit2, _ := l.Begin()
	if commit2(-100) {
		t.Error("overdraw committed")
	}
	if l.Value() != 6 {
		t.Errorf("value changed on failed commit: %d", l.Value())
	}
	// Abort releases.
	_, _, abort := l.Begin()
	abort()
	_, commit3, _ := l.Begin()
	commit3(1)
	if l.Value() != 7 {
		t.Errorf("value = %d", l.Value())
	}
}

func TestLockedAccountSerializes(t *testing.T) {
	l := NewLockedAccount(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, commit, _ := l.Begin()
				commit(1)
			}
		}()
	}
	wg.Wait()
	if l.Value() != 800 {
		t.Errorf("value = %d, want 800", l.Value())
	}
}
