// Package escrow implements the Escrow transactional method of O'Neil
// (ACM TODS 1986), which the paper cites (§8, [7]) as the established
// treatment of "hot spot" aggregate fields: quantities updated only by
// increments and decrements, accessed so frequently that holding a
// conventional exclusive lock for a transaction's duration serializes
// the whole system.
//
// Escrow's idea: a transaction asks the escrow manager to set aside
// ("escrow") the quantity it intends to take. The test uses worst-case
// bounds over all uncommitted holds, so a granted hold can always
// commit regardless of how concurrent transactions finish. The lock is
// held only for the duration of the escrow test, not the transaction —
// many transactions proceed concurrently against one field.
//
// Relation to DvP: escrow solves contention *within one site*; DvP
// partitions the value *across sites* (and §8 notes DvP can be seen as
// taking the escrow idea to a distributed, partition-tolerant
// setting). Experiment F3 compares: naive locking vs escrow vs DvP.
package escrow

import (
	"errors"
	"fmt"
	"sync"

	"dvp/internal/core"
)

// ErrInsufficient reports a failed escrow test: granting the hold
// could drive the field below its floor in some completion order.
var ErrInsufficient = errors.New("escrow: insufficient escrowable quantity")

// ErrResolved reports Commit/Abort on an already resolved hold.
var ErrResolved = errors.New("escrow: hold already resolved")

// Account is one escrow-managed aggregate field with floor 0 (the
// bounded-decrement rule shared with DvP quantities).
type Account struct {
	mu sync.Mutex
	// val is the committed value.
	val core.Value
	// outDecr is the sum of uncommitted decrement holds; outIncr the
	// sum of uncommitted increment holds. The escrow test uses the
	// pessimal bound val - outDecr.
	outDecr core.Value
	outIncr core.Value
	holds   uint64 // active hold count (sanity/introspection)
}

// NewAccount returns an account with the given committed value.
func NewAccount(initial core.Value) (*Account, error) {
	if initial < 0 {
		return nil, fmt.Errorf("%w: initial %d", core.ErrNegative, initial)
	}
	return &Account{val: initial}, nil
}

// Hold is one escrowed (not yet committed) quantity adjustment.
type Hold struct {
	acct     *Account
	amount   core.Value // positive
	incr     bool
	resolved bool
}

// EscrowDecr attempts to set aside amount for a decrement. The test
// is pessimistic: it succeeds only if the decrement can commit even if
// every other uncommitted decrement commits and every uncommitted
// increment aborts.
func (a *Account) EscrowDecr(amount core.Value) (*Hold, error) {
	if amount < 0 {
		return nil, fmt.Errorf("%w: %d", core.ErrNegative, amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.val-a.outDecr-amount < 0 {
		return nil, fmt.Errorf("%w: want %d, escrowable %d",
			ErrInsufficient, amount, a.val-a.outDecr)
	}
	a.outDecr += amount
	a.holds++
	return &Hold{acct: a, amount: amount}, nil
}

// EscrowIncr sets aside an intended increment (always grantable with
// an unbounded ceiling; tracked so reads can report uncertainty).
func (a *Account) EscrowIncr(amount core.Value) (*Hold, error) {
	if amount < 0 {
		return nil, fmt.Errorf("%w: %d", core.ErrNegative, amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.outIncr += amount
	a.holds++
	return &Hold{acct: a, amount: amount, incr: true}, nil
}

// Commit applies the held adjustment to the committed value.
func (h *Hold) Commit() error {
	a := h.acct
	a.mu.Lock()
	defer a.mu.Unlock()
	if h.resolved {
		return ErrResolved
	}
	h.resolved = true
	a.holds--
	if h.incr {
		a.outIncr -= h.amount
		a.val += h.amount
	} else {
		a.outDecr -= h.amount
		a.val -= h.amount
	}
	if a.val < 0 || a.outDecr < 0 || a.outIncr < 0 {
		panic("escrow: invariant violated on commit")
	}
	return nil
}

// Abort releases the hold without applying it.
func (h *Hold) Abort() error {
	a := h.acct
	a.mu.Lock()
	defer a.mu.Unlock()
	if h.resolved {
		return ErrResolved
	}
	h.resolved = true
	a.holds--
	if h.incr {
		a.outIncr -= h.amount
	} else {
		a.outDecr -= h.amount
	}
	return nil
}

// Bounds returns the interval the true value is guaranteed to lie in
// once all outstanding holds resolve: [committed-outDecr,
// committed+outIncr].
func (a *Account) Bounds() (lo, hi core.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val - a.outDecr, a.val + a.outIncr
}

// Committed returns the committed value (exact only when no holds are
// outstanding — like a DvP full read requiring quiescence).
func (a *Account) Committed() core.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val
}

// ActiveHolds reports the number of unresolved holds.
func (a *Account) ActiveHolds() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.holds
}

// LockedAccount is the naive alternative escrow exists to beat: an
// exclusive lock held for the entire transaction. Begin blocks until
// the account is free; the returned release function ends the
// critical section. Throughput collapses as transaction duration or
// concurrency grows — the F3 baseline curve.
type LockedAccount struct {
	mu  sync.Mutex
	val core.Value
}

// NewLockedAccount returns a lock-per-transaction account.
func NewLockedAccount(initial core.Value) *LockedAccount {
	return &LockedAccount{val: initial}
}

// Begin enters the exclusive critical section and returns the current
// value plus commit/abort closures. commit(delta) applies a bounded
// delta; both release the lock.
func (l *LockedAccount) Begin() (val core.Value, commit func(delta core.Value) bool, abort func()) {
	l.mu.Lock()
	done := false
	commit = func(delta core.Value) bool {
		if done {
			return false
		}
		done = true
		ok := l.val+delta >= 0
		if ok {
			l.val += delta
		}
		l.mu.Unlock()
		return ok
	}
	abort = func() {
		if done {
			return
		}
		done = true
		l.mu.Unlock()
	}
	return l.val, commit, abort
}

// Value reads the committed value.
func (l *LockedAccount) Value() core.Value {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.val
}
