package twopc

import (
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/txn"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// Run executes one transaction with this site as 2PC coordinator:
// lock all replicas of every written item (write-all) and the local
// replica of every read item (read-one), compute, then run two-phase
// commit across all sites.
func (s *Site) Run(t *txn.Txn) *txn.Result {
	start := s.cfg.Clock.Now()
	res := &txn.Result{}

	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		res.Status = txn.StatusSiteDown
		return res
	}
	s.mu.Unlock()

	ts := s.clock.Next()
	res.TS = ts
	id := ts.Txn()
	writeItems := make([]ident.ItemID, 0, len(t.Ops))
	seen := map[ident.ItemID]bool{}
	for _, op := range t.Ops {
		if !seen[op.Item] {
			seen[op.Item] = true
			writeItems = append(writeItems, op.Item)
		}
	}
	writeItems = ident.SortItems(writeItems)

	st := &coordState{
		ts:     ts,
		lockCh: make(chan *wire.LockReply, len(s.cfg.Peers)*4),
		voteCh: make(chan *wire.Vote, len(s.cfg.Peers)*2),
		acked:  make(map[ident.SiteID]bool),
	}
	s.mu.Lock()
	s.coords[id] = st
	s.mu.Unlock()
	// Coordinator state is cleaned up by the ack collector (or here
	// on early abort paths via the deferred check below).

	// Phase 0a: local read locks (read-one).
	for _, item := range ident.SortItems(t.Reads) {
		if !s.locks.Lock(id, item, lock.Shared, s.cfg.LockTimeout) {
			s.locks.ReleaseAll(id)
			s.dropCoord(id)
			return s.abortResult(res, txn.StatusLockConflict, start)
		}
	}

	// Phase 0b: exclusive locks on every replica of written items.
	// The local replica locks directly; remote replicas via LockReq.
	needed := 0
	for _, item := range writeItems {
		if !s.locks.Lock(id, item, lock.Exclusive, s.cfg.LockTimeout) {
			s.locks.ReleaseAll(id)
			s.dropCoord(id)
			s.bumpDenials()
			return s.abortResult(res, txn.StatusLockConflict, start)
		}
		for _, p := range s.peers() {
			if p == s.cfg.ID {
				continue
			}
			s.send(p, &wire.LockReq{Txn: ts, Item: item, Mode: wire.LockExclusive})
			res.RequestsSent++
			needed++
		}
	}
	granted := 0
	deadline := s.cfg.Clock.After(s.cfg.VoteTimeout)
	for granted < needed {
		select {
		case rep := <-st.lockCh:
			if !rep.Granted {
				s.abortEverywhere(st, id)
				s.bumpDenials()
				return s.abortResult(res, txn.StatusLockConflict, start)
			}
			granted++
		case <-deadline:
			s.abortEverywhere(st, id)
			s.bumpTimeouts()
			return s.abortResult(res, txn.StatusTimeout, start)
		}
	}

	// Compute against the (consistent, all-locked) local replicas.
	working := make(map[ident.ItemID]core.Value)
	for _, item := range writeItems {
		working[item] = s.cfg.DB.Value(item)
	}
	for _, op := range t.Ops {
		nv, ok := op.Op.Apply(working[op.Item])
		if !ok {
			s.abortEverywhere(st, id)
			return s.abortResult(res, txn.StatusTimeout, start)
		}
		working[op.Item] = nv
	}
	reads := make(map[ident.ItemID]core.Value, len(t.Reads))
	for _, item := range t.Reads {
		reads[item] = s.cfg.DB.Value(item)
	}
	res.Reads = reads

	deltas := t.Deltas()
	writes := make([]wal.Action, 0, len(deltas))
	for _, item := range writeItems {
		if d := deltas[item]; d != 0 {
			writes = append(writes, wal.Action{Item: item, Delta: d, SetTS: ts})
		}
	}
	st.writes = writes

	// Read-only fast path: nothing to make atomic; release and done.
	if len(writes) == 0 {
		s.abortEverywhere(st, id) // releases remote and local locks
		s.mu.Lock()
		s.stats.Committed++
		s.mu.Unlock()
		res.Status = txn.StatusCommitted
		res.Latency = s.cfg.Clock.Now().Sub(start)
		if s.cfg.OnCommit != nil {
			s.cfg.OnCommit(ts)
		}
		return res
	}

	// Phase 1: prepare. Every site (including us) force-writes a
	// prepare record and votes.
	for _, p := range s.peers() {
		s.send(p, &wire.Prepare{Txn: ts, Writes: toItemDeltas(writes)})
		res.RequestsSent++
	}
	votes := 0
	deadline = s.cfg.Clock.After(s.cfg.VoteTimeout)
	for votes < len(s.cfg.Peers) {
		select {
		case v := <-st.voteCh:
			if !v.Yes {
				s.decide(st, id, false)
				return s.abortResult(res, txn.StatusTimeout, start)
			}
			votes++
		case <-deadline:
			// Coordinator times out before deciding: presumed
			// abort. Participants that already prepared are now in
			// doubt until our abort reaches them.
			s.decide(st, id, false)
			s.bumpTimeouts()
			return s.abortResult(res, txn.StatusTimeout, start)
		}
	}

	// Phase 2: decide commit (force-written) and distribute.
	s.decide(st, id, true)
	s.mu.Lock()
	s.stats.Committed++
	s.mu.Unlock()
	if s.cfg.OnCommit != nil {
		s.cfg.OnCommit(ts)
	}
	res.Status = txn.StatusCommitted
	res.Latency = s.cfg.Clock.Now().Sub(start)
	return res
}

// decide force-writes the decision and starts distributing it; the
// retry loop keeps resending until every participant acks.
func (s *Site) decide(st *coordState, id ident.TxnID, commit bool) {
	rec := &wal.DecisionRec{Txn: st.ts, Commit: commit}
	_, _ = s.cfg.Log.Append(wal.RecDecision, rec.Encode())
	s.mu.Lock()
	st.decided = true
	st.commit = commit
	s.mu.Unlock()
	for _, p := range s.peers() {
		s.send(p, &wire.Decision{Txn: st.ts, Commit: commit})
	}
	// Local lock release happens when our own participant side
	// processes the Decision (uniform path).
}

// abortEverywhere releases local locks and tells peers to drop any
// locks/prepare state for the transaction (pre-decision abort).
func (s *Site) abortEverywhere(st *coordState, id ident.TxnID) {
	s.locks.ReleaseAll(id)
	for _, p := range s.peers() {
		if p == s.cfg.ID {
			continue
		}
		s.send(p, &wire.Decision{Txn: st.ts, Commit: false})
	}
	s.dropCoord(id)
}

func (s *Site) dropCoord(id ident.TxnID) {
	s.mu.Lock()
	delete(s.coords, id)
	s.mu.Unlock()
}

func (s *Site) bumpDenials() {
	s.mu.Lock()
	s.stats.LockDenials++
	s.mu.Unlock()
}

func (s *Site) bumpTimeouts() {
	s.mu.Lock()
	s.stats.VoteTimeouts++
	s.mu.Unlock()
}

func toItemDeltas(ws []wal.Action) []wire.ItemDelta {
	out := make([]wire.ItemDelta, 0, len(ws))
	for _, w := range ws {
		out = append(out, wire.ItemDelta{Item: w.Item, Delta: w.Delta})
	}
	return out
}
