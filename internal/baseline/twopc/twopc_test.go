package twopc

import (
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/store"
	"dvp/internal/txn"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

type cluster struct {
	t     *testing.T
	net   *simnet.Net
	sites []*Site
}

func newCluster(t *testing.T, n int, netCfg simnet.Config) *cluster {
	t.Helper()
	c := &cluster{t: t, net: simnet.New(netCfg)}
	peers := make([]ident.SiteID, n)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}
	for i := 0; i < n; i++ {
		id := peers[i]
		s, err := New(Config{
			ID:          id,
			Peers:       peers,
			Log:         wal.NewMemLog(),
			DB:          store.New(),
			Endpoint:    c.net.Endpoint(id),
			LockTimeout: 40 * time.Millisecond,
			VoteTimeout: 80 * time.Millisecond,
			RetryEvery:  10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.sites = append(c.sites, s)
	}
	for _, s := range c.sites {
		s.Start()
	}
	t.Cleanup(c.net.Close)
	return c
}

// createItem installs a replica of item with value v at every site.
func (c *cluster) createItem(item ident.ItemID, v core.Value) {
	c.t.Helper()
	for _, s := range c.sites {
		if err := s.DB().Create(item, v); err != nil {
			c.t.Fatal(err)
		}
	}
}

// replicasConsistent waits for every replica of item to converge to
// the same value and returns it.
func (c *cluster) replicasConsistent(item ident.ItemID, deadline time.Duration) core.Value {
	c.t.Helper()
	end := time.Now().Add(deadline)
	for {
		c.net.Quiesce()
		v0 := c.sites[0].Value(item)
		same := true
		for _, s := range c.sites[1:] {
			if s.Value(item) != v0 {
				same = false
				break
			}
		}
		if same {
			return v0
		}
		if time.Now().After(end) {
			for _, s := range c.sites {
				c.t.Logf("site %v: %s = %d", s.ID(), item, s.Value(item))
			}
			c.t.Fatal("replicas did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func reserveTxn(item ident.ItemID, m core.Value) *txn.Txn {
	return &txn.Txn{Ops: []txn.ItemOp{{Item: item, Op: core.Decr{M: m}}}}
}

func TestCommitReplicatesEverywhere(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Seed: 1, MaxDelay: time.Millisecond})
	c.createItem("flight/A", 100)
	res := c.sites[0].Run(reserveTxn("flight/A", 10))
	if !res.Committed() {
		t.Fatalf("commit: %v", res.Status)
	}
	if v := c.replicasConsistent("flight/A", time.Second); v != 90 {
		t.Errorf("replicas = %d, want 90", v)
	}
}

func TestBoundedDecrementAborts(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Seed: 2})
	c.createItem("flight/A", 5)
	res := c.sites[1].Run(reserveTxn("flight/A", 10))
	if res.Committed() {
		t.Fatal("over-reserve committed")
	}
	if v := c.replicasConsistent("flight/A", time.Second); v != 5 {
		t.Errorf("replicas = %d, want 5 (abort must not change values)", v)
	}
}

func TestReadOnlyLocal(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Seed: 3})
	c.createItem("flight/A", 42)
	res := c.sites[2].Run(&txn.Txn{Reads: []ident.ItemID{"flight/A"}})
	if !res.Committed() {
		t.Fatalf("read: %v", res.Status)
	}
	if res.Reads["flight/A"] != 42 {
		t.Errorf("read = %d", res.Reads["flight/A"])
	}
}

func TestSequentialTransactionsFromAllSites(t *testing.T) {
	c := newCluster(t, 4, simnet.Config{Seed: 4, MaxDelay: time.Millisecond})
	c.createItem("flight/A", 100)
	total := core.Value(100)
	for i := 0; i < 12; i++ {
		s := c.sites[i%4]
		res := s.Run(reserveTxn("flight/A", 5))
		if res.Committed() {
			total -= 5
		}
		// Let phase-2 traffic settle to keep the test deterministic.
		c.net.Quiesce()
	}
	if v := c.replicasConsistent("flight/A", 2*time.Second); v != total {
		t.Errorf("replicas = %d, want %d", v, total)
	}
}

func TestWritesBlockedDuringPartition(t *testing.T) {
	c := newCluster(t, 4, simnet.Config{Seed: 5})
	c.createItem("flight/A", 100)
	c.net.Partition([]ident.SiteID{1, 2}, []ident.SiteID{3, 4})
	// Write-all is impossible: the transaction must abort (after its
	// bounded timeouts) — availability is zero for writes.
	res := c.sites[0].Run(reserveTxn("flight/A", 1))
	if res.Committed() {
		t.Fatal("write committed during partition (write-all broken)")
	}
	c.net.Heal()
	// After heal the abort decisions propagate and locks clear.
	time.Sleep(50 * time.Millisecond)
	res2 := c.sites[0].Run(reserveTxn("flight/A", 1))
	if !res2.Committed() {
		t.Errorf("post-heal write: %v", res2.Status)
	}
}

func TestInDoubtParticipantBlocksThenResolves(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Seed: 6})
	c.createItem("flight/A", 100)

	// Drop exactly the votes: participants receive prepare, force-
	// write their prepare records, and wait in doubt for a decision
	// the coordinator (which timed out and presumed abort) keeps
	// trying to deliver — which we also drop.
	c.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return kind != wire.KVote && kind != wire.KDecision
	})
	res := c.sites[0].Run(reserveTxn("flight/A", 10))
	if res.Committed() {
		t.Fatal("commit without votes")
	}
	// Participants 2,3 are in doubt, holding X locks on flight/A.
	time.Sleep(20 * time.Millisecond)
	st2 := c.sites[1].Stats()
	if st2.InDoubtNow == 0 {
		t.Error("participant 2 should be in doubt")
	}
	// A transaction at site 2 touching the same item cannot proceed.
	res2 := c.sites[1].Run(reserveTxn("flight/A", 1))
	if res2.Committed() {
		t.Error("txn committed against an in-doubt lock")
	}
	// Heal: the coordinator's presumed-abort answers the re-sent
	// votes; the in-doubt window closes and blocked time is recorded.
	c.net.SetFilter(nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := c.sites[1].Stats()
		if st.InDoubtNow == 0 && st.BlockedTime > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-doubt never resolved: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the item is writable again everywhere.
	res3 := c.sites[1].Run(reserveTxn("flight/A", 1))
	if !res3.Committed() {
		t.Errorf("post-resolution txn: %v", res3.Status)
	}
}

func TestCoordinatorCrashRecoveryResolvesInDoubt(t *testing.T) {
	c := newCluster(t, 3, simnet.Config{Seed: 7})
	c.createItem("flight/A", 100)

	// Votes and decisions dropped: participants prepare and stay in
	// doubt; coordinator decides abort (vote timeout) and logs it —
	// then crashes before its retransmissions land.
	c.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return kind != wire.KVote && kind != wire.KDecision
	})
	res := c.sites[0].Run(reserveTxn("flight/A", 10))
	if res.Committed() {
		t.Fatal("commit without votes")
	}
	c.sites[0].Crash()
	c.net.SetFilter(nil)
	time.Sleep(30 * time.Millisecond)
	// Still in doubt: the coordinator is down.
	if st := c.sites[1].Stats(); st.InDoubtNow == 0 {
		t.Error("participant should still be in doubt while coordinator is down")
	}
	// Coordinator restarts; termination protocol (vote resend →
	// decision from log) resolves the participants.
	if err := c.sites[0].Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := c.sites[1].Stats(); st.InDoubtNow == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-doubt never resolved after coordinator recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := c.replicasConsistent("flight/A", time.Second); v != 100 {
		t.Errorf("replicas = %d, want 100 (aborted txn)", v)
	}
}

func TestParticipantCrashReentersInDoubt(t *testing.T) {
	c := newCluster(t, 2, simnet.Config{Seed: 8})
	c.createItem("flight/A", 50)
	// Participant 2 prepares, then its vote (and the abort decision)
	// are lost; it crashes while in doubt. After restart it must
	// re-enter in-doubt from its log (locks re-acquired), then
	// resolve via the termination protocol.
	c.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
		return kind != wire.KVote && kind != wire.KDecision
	})
	res := c.sites[0].Run(reserveTxn("flight/A", 10))
	if res.Committed() {
		t.Fatal("commit without vote")
	}
	c.sites[1].Crash()
	if err := c.sites[1].Restart(); err != nil {
		t.Fatal(err)
	}
	if st := c.sites[1].Stats(); st.InDoubtNow == 0 {
		t.Error("recovered participant should re-enter in-doubt")
	}
	c.net.SetFilter(nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := c.sites[1].Stats(); st.InDoubtNow == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered in-doubt never resolved")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := c.replicasConsistent("flight/A", time.Second); v != 50 {
		t.Errorf("replicas = %d, want 50", v)
	}
}

func TestConflictingCoordinatorsDontDeadlockForever(t *testing.T) {
	c := newCluster(t, 2, simnet.Config{Seed: 9, MaxDelay: time.Millisecond})
	c.createItem("a", 100)
	c.createItem("b", 100)
	// Opposite lock orders from two coordinators: classic distributed
	// deadlock, resolved by lock timeouts. Both must return.
	done := make(chan *txn.Result, 2)
	mk := func(first, second ident.ItemID) *txn.Txn {
		return &txn.Txn{Ops: []txn.ItemOp{
			{Item: first, Op: core.Decr{M: 1}},
			{Item: second, Op: core.Decr{M: 1}},
		}}
	}
	go func() { done <- c.sites[0].Run(mk("a", "b")) }()
	go func() { done <- c.sites[1].Run(mk("b", "a")) }()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("coordinator hung — deadlock not resolved")
		}
	}
}
