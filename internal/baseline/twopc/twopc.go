// Package twopc implements the traditional distributed database the
// paper argues against (§1–§2): every data item fully replicated at
// every site, strict two-phase locking with blocking lock waits
// (read-one / write-all), and atomic commitment by two-phase commit
// with presumed abort.
//
// The essential property the experiments measure is the one Skeen's
// results make unavoidable: a participant that has force-written its
// prepare record and lost contact with the coordinator is *in doubt* —
// it must hold its exclusive locks until a decision arrives. Under a
// network partition or coordinator crash this blocks, serially
// stalling every later transaction that touches the same items. DvP
// exists to avoid exactly this window.
//
// The implementation is a complete protocol, not a mock: force-written
// prepare/decision records, decision retransmission, a vote-resend
// termination protocol for in-doubt participants, and §7-style
// recovery that re-enters the in-doubt state from the log.
package twopc

import (
	"sync"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/vclock"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// Config assembles a baseline site.
type Config struct {
	ID       ident.SiteID
	Peers    []ident.SiteID
	Log      wal.Log
	DB       *store.Durable // this site's replicas
	Endpoint wire.Endpoint
	Clock    vclock.Clock
	// LockTimeout bounds waits in the blocking lock manager (the
	// conventional deadlock resolution). Default 50ms.
	LockTimeout time.Duration
	// VoteTimeout bounds the coordinator's wait for lock replies and
	// votes. Default 100ms.
	VoteTimeout time.Duration
	// RetryEvery paces decision retransmission and the in-doubt
	// termination protocol. Default 20ms.
	RetryEvery time.Duration
	// OnCommit observes committed transactions (metrics).
	OnCommit func(ts tstamp.TS)
}

// Stats counts baseline events.
type Stats struct {
	Committed    uint64
	Aborted      uint64
	InDoubtNow   uint64        // participants currently blocked in doubt
	InDoubtTotal uint64        // in-doubt episodes entered
	BlockedTime  time.Duration // cumulative in-doubt duration (resolved episodes)
	LockDenials  uint64
	VoteTimeouts uint64
}

// Site is one baseline site: coordinator for its own transactions,
// participant for everyone's.
type Site struct {
	cfg   Config
	clock *tstamp.Clock
	locks *lock.Queue

	mu       sync.Mutex
	up       bool
	stop     chan struct{}
	coords   map[ident.TxnID]*coordState
	prepared map[ident.TxnID]*preparedState
	stats    Stats
}

// coordState tracks one transaction this site coordinates.
type coordState struct {
	ts      tstamp.TS
	writes  []wal.Action
	lockCh  chan *wire.LockReply
	voteCh  chan *wire.Vote
	decided bool
	commit  bool
	acked   map[ident.SiteID]bool
}

// preparedState tracks one in-doubt participation.
type preparedState struct {
	ts      tstamp.TS
	coord   ident.SiteID
	writes  []wal.Action
	since   time.Time
	decided bool
}

// New assembles a baseline site and recovers from its log.
func New(cfg Config) (*Site, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 50 * time.Millisecond
	}
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 100 * time.Millisecond
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 20 * time.Millisecond
	}
	s := &Site{
		cfg:      cfg,
		clock:    tstamp.NewClock(cfg.ID),
		locks:    lock.NewQueue(cfg.Clock),
		coords:   make(map[ident.TxnID]*coordState),
		prepared: make(map[ident.TxnID]*preparedState),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// ID returns the site identity.
func (s *Site) ID() ident.SiteID { return s.cfg.ID }

// DB exposes the replica store.
func (s *Site) DB() *store.Durable { return s.cfg.DB }

// Stats snapshots the counters, folding in currently-open in-doubt
// time so "blocked" is visible while it is happening.
func (s *Site) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	now := s.cfg.Clock.Now()
	for _, p := range s.prepared {
		if !p.decided {
			out.InDoubtNow++
			out.BlockedTime += now.Sub(p.since)
		}
	}
	return out
}

// Start attaches to the network and begins the retry loop.
func (s *Site) Start() {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return
	}
	s.up = true
	stop := make(chan struct{})
	s.stop = stop
	s.mu.Unlock()
	s.cfg.Endpoint.SetHandler(s.handle)
	_ = s.cfg.Endpoint.Open()
	go s.retryLoop(stop)
}

// Crash kills the site: volatile state (lock table, coordinator
// windows) is lost; the log and replicas survive.
func (s *Site) Crash() {
	s.mu.Lock()
	if !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	close(s.stop)
	s.stop = nil
	s.coords = make(map[ident.TxnID]*coordState)
	s.prepared = make(map[ident.TxnID]*preparedState)
	s.mu.Unlock()
	s.cfg.Endpoint.Close()
	s.locks.Clear()
}

// Restart recovers from the log and rejoins.
func (s *Site) Restart() error {
	if err := s.recover(); err != nil {
		return err
	}
	s.Start()
	return nil
}

// recover replays the log: committed decisions are re-applied
// (idempotent via applied-LSN), and prepared-but-undecided
// participations re-enter the in-doubt state with their locks
// re-acquired — the blocking window survives crashes, which is rather
// the point.
func (s *Site) recover() error {
	s.clock.Reset()
	type prep struct {
		rec *wal.PrepareRec
		lsn uint64
	}
	preps := make(map[ident.TxnID]prep)
	decided := make(map[ident.TxnID]*wal.DecisionRec)
	decLSN := make(map[ident.TxnID]uint64)
	err := s.cfg.Log.Scan(1, func(r wal.Record) error {
		switch r.Kind {
		case wal.RecPrepare:
			rec, err := wal.DecodePrepare(r.Data)
			if err != nil {
				return err
			}
			preps[rec.Txn.Txn()] = prep{rec, r.LSN}
			s.clock.Observe(rec.Txn)
		case wal.RecDecision:
			rec, err := wal.DecodeDecision(r.Data)
			if err != nil {
				return err
			}
			decided[rec.Txn.Txn()] = rec
			decLSN[rec.Txn.Txn()] = r.LSN
			s.clock.Observe(rec.Txn)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for id, p := range preps {
		if d, ok := decided[id]; ok {
			if d.Commit {
				if _, err := s.cfg.DB.ApplyAll(decLSN[id], p.rec.Writes); err != nil {
					return err
				}
			}
			continue
		}
		// In doubt across the crash: re-lock and wait for a decision.
		s.mu.Lock()
		s.prepared[id] = &preparedState{
			ts:     p.rec.Txn,
			coord:  p.rec.Coord,
			writes: p.rec.Writes,
			since:  s.cfg.Clock.Now(),
		}
		s.stats.InDoubtTotal++
		s.mu.Unlock()
		for _, w := range p.rec.Writes {
			s.locks.Lock(id, w.Item, lock.Exclusive, 0)
		}
	}
	return nil
}

// peers returns all sites (every site replicates every item).
func (s *Site) peers() []ident.SiteID { return ident.SortSites(s.cfg.Peers) }

func (s *Site) send(to ident.SiteID, msg wire.Msg) {
	env := &wire.Envelope{To: to, Lamport: tstamp.Make(s.clock.Current(), s.cfg.ID), Msg: msg}
	_ = s.cfg.Endpoint.Send(env)
}

// Value reads this site's replica of item (monitors/tests).
func (s *Site) Value(item ident.ItemID) core.Value { return s.cfg.DB.Value(item) }

// abortResult tallies and builds an aborted result.
func (s *Site) abortResult(res *txn.Result, status txn.Status, start time.Time) *txn.Result {
	s.mu.Lock()
	s.stats.Aborted++
	s.mu.Unlock()
	res.Status = status
	res.Latency = s.cfg.Clock.Now().Sub(start)
	return res
}
