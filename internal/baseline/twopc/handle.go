package twopc

import (
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/wal"
	"dvp/internal/wire"
)

// handle dispatches participant- and coordinator-side messages.
func (s *Site) handle(env *wire.Envelope) {
	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if !up {
		return
	}
	s.clock.Observe(env.Lamport)

	switch m := env.Msg.(type) {
	case *wire.LockReq:
		s.onLockReq(env.From, m)
	case *wire.LockReply:
		s.onLockReply(m)
	case *wire.Prepare:
		s.onPrepare(env.From, m)
	case *wire.Vote:
		s.onVote(env.From, m)
	case *wire.Decision:
		s.onDecision(env.From, m)
	case *wire.DecisionAck:
		s.onDecisionAck(env.From, m)
	case *wire.ReadReq:
		s.send(env.From, &wire.ReadReply{
			Txn: m.Txn, Item: m.Item, Value: s.cfg.DB.Value(m.Item), OK: true,
		})
	}
}

// onLockReq acquires the requested lock on the local replica,
// blocking up to LockTimeout (this wait — impossible under DvP's
// no-wait rule — is where baseline convoys form).
func (s *Site) onLockReq(from ident.SiteID, m *wire.LockReq) {
	mode := lock.Exclusive
	if m.Mode == wire.LockShared {
		mode = lock.Shared
	}
	// The blocking wait must not stall the message pipeline: grant
	// attempts run on their own goroutine and reply when resolved.
	go func() {
		ok := s.locks.Lock(m.Txn.Txn(), m.Item, mode, s.cfg.LockTimeout)
		if !ok {
			s.bumpDenials()
		}
		s.send(from, &wire.LockReply{Txn: m.Txn, Item: m.Item, Granted: ok})
	}()
}

// onLockReply routes a replica's lock grant to the waiting
// coordinator.
func (s *Site) onLockReply(m *wire.LockReply) {
	s.mu.Lock()
	st, ok := s.coords[m.Txn.Txn()]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case st.lockCh <- m:
	default:
	}
}

// onPrepare is 2PC phase 1 at a participant: force-write the prepare
// record, enter the in-doubt window, vote yes. (A participant could
// vote no — e.g. if it noticed local trouble; with consistent
// replicas and pre-acquired locks there is nothing to refuse.)
func (s *Site) onPrepare(from ident.SiteID, m *wire.Prepare) {
	id := m.Txn.Txn()
	writes := make([]wal.Action, 0, len(m.Writes))
	for _, w := range m.Writes {
		writes = append(writes, wal.Action{Item: w.Item, Delta: w.Delta, SetTS: m.Txn})
	}
	s.mu.Lock()
	if p, ok := s.prepared[id]; ok && !p.decided {
		// Duplicate prepare: re-vote.
		s.mu.Unlock()
		s.send(from, &wire.Vote{Txn: m.Txn, Yes: true})
		return
	}
	s.mu.Unlock()

	rec := &wal.PrepareRec{Txn: m.Txn, Coord: from, Writes: writes}
	if _, err := s.cfg.Log.Append(wal.RecPrepare, rec.Encode()); err != nil {
		s.send(from, &wire.Vote{Txn: m.Txn, Yes: false})
		return
	}
	s.mu.Lock()
	s.prepared[id] = &preparedState{
		ts:     m.Txn,
		coord:  from,
		writes: writes,
		since:  s.cfg.Clock.Now(),
	}
	s.stats.InDoubtTotal++
	s.mu.Unlock()
	s.send(from, &wire.Vote{Txn: m.Txn, Yes: true})
}

// onVote is the coordinator side of phase 1 — and, for an in-doubt
// participant's re-sent vote, the termination protocol: if we have
// already decided, re-send the decision; if we never heard of the
// transaction, presumed abort.
func (s *Site) onVote(from ident.SiteID, m *wire.Vote) {
	id := m.Txn.Txn()
	s.mu.Lock()
	st, ok := s.coords[id]
	if ok && !st.decided {
		s.mu.Unlock()
		select {
		case st.voteCh <- m:
		default:
		}
		return
	}
	if ok && st.decided {
		commit := st.commit
		s.mu.Unlock()
		s.send(from, &wire.Decision{Txn: m.Txn, Commit: commit})
		return
	}
	s.mu.Unlock()
	// Not ours or long forgotten: check the log for a decision; else
	// presumed abort. Only transactions this site coordinated (its
	// site id in the TS) are answered.
	if m.Txn.Site() != s.cfg.ID {
		return
	}
	commit, found := s.decisionFromLog(m.Txn)
	if !found {
		commit = false // presumed abort
	}
	s.send(from, &wire.Decision{Txn: m.Txn, Commit: commit})
}

// onDecision is 2PC phase 2 at a participant: apply (on commit),
// close the in-doubt window, release locks, ack.
func (s *Site) onDecision(from ident.SiteID, m *wire.Decision) {
	id := m.Txn.Txn()
	s.mu.Lock()
	p, wasPrepared := s.prepared[id]
	if wasPrepared && p.decided {
		s.mu.Unlock()
		s.send(from, &wire.DecisionAck{Txn: m.Txn})
		return
	}
	if wasPrepared {
		p.decided = true
		s.stats.BlockedTime += s.cfg.Clock.Now().Sub(p.since)
	}
	s.mu.Unlock()

	if wasPrepared {
		rec := &wal.DecisionRec{Txn: m.Txn, Commit: m.Commit}
		lsn, err := s.cfg.Log.Append(wal.RecDecision, rec.Encode())
		if err != nil {
			return
		}
		if m.Commit {
			if _, err := s.cfg.DB.ApplyAll(lsn, p.writes); err != nil {
				panic("twopc: committed writes failed to apply: " + err.Error())
			}
		}
		s.mu.Lock()
		delete(s.prepared, id)
		s.mu.Unlock()
	}
	// Pre-prepare abort (or post-decision cleanup): drop any locks
	// the transaction holds here.
	s.locks.ReleaseAll(id)
	s.send(from, &wire.DecisionAck{Txn: m.Txn})
}

// onDecisionAck completes phase 2 at the coordinator.
func (s *Site) onDecisionAck(from ident.SiteID, m *wire.DecisionAck) {
	id := m.Txn.Txn()
	s.mu.Lock()
	st, ok := s.coords[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	st.acked[from] = true
	done := len(st.acked) >= len(s.cfg.Peers)
	if done {
		delete(s.coords, id)
	}
	s.mu.Unlock()
}

// decisionFromLog scans for a decision record (termination protocol
// after coordinator recovery).
func (s *Site) decisionFromLog(ts interface{ Txn() ident.TxnID }) (commit, found bool) {
	want := ts.Txn()
	_ = s.cfg.Log.Scan(1, func(r wal.Record) error {
		if r.Kind != wal.RecDecision {
			return nil
		}
		rec, err := wal.DecodeDecision(r.Data)
		if err != nil {
			return nil
		}
		if rec.Txn.Txn() == want {
			commit, found = rec.Commit, true
		}
		return nil
	})
	return commit, found
}

// retryLoop drives decision retransmission (coordinator side) and the
// in-doubt termination protocol (participant side re-sends its vote,
// prompting the coordinator to repeat the decision).
func (s *Site) retryLoop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-s.cfg.Clock.After(s.cfg.RetryEvery):
		}
		s.mu.Lock()
		type resend struct {
			to  ident.SiteID
			msg wire.Msg
		}
		var out []resend
		for _, st := range s.coords {
			if !st.decided {
				continue
			}
			for _, p := range s.peers() {
				if !st.acked[p] {
					out = append(out, resend{p, &wire.Decision{Txn: st.ts, Commit: st.commit}})
				}
			}
		}
		for _, p := range s.prepared {
			if !p.decided {
				out = append(out, resend{p.coord, &wire.Vote{Txn: p.ts, Yes: true}})
			}
		}
		s.mu.Unlock()
		for _, r := range out {
			s.send(r.to, r.msg)
		}
	}
}
