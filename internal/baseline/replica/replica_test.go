package replica

import (
	"testing"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/txn"
)

func newCluster(t *testing.T, n int, mode Mode, netCfg simnet.Config) (*simnet.Net, []*Site) {
	t.Helper()
	net := simnet.New(netCfg)
	peers := make([]ident.SiteID, n)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}
	var sites []*Site
	for i := 0; i < n; i++ {
		s := New(Config{
			ID:          peers[i],
			Peers:       peers,
			Endpoint:    net.Endpoint(peers[i]),
			Mode:        mode,
			Timeout:     60 * time.Millisecond,
			LockTimeout: 30 * time.Millisecond,
		})
		sites = append(sites, s)
	}
	for _, s := range sites {
		s.Start()
	}
	t.Cleanup(net.Close)
	return net, sites
}

func createEverywhere(sites []*Site, item ident.ItemID, v core.Value) {
	for _, s := range sites {
		s.Create(item, v)
	}
}

func reserveTxn(item ident.ItemID, m core.Value) *txn.Txn {
	return &txn.Txn{Ops: []txn.ItemOp{{Item: item, Op: core.Decr{M: m}}}}
}

func TestQuorumWriteAndRead(t *testing.T) {
	net, sites := newCluster(t, 5, Quorum, simnet.Config{Seed: 1, MaxDelay: time.Millisecond})
	createEverywhere(sites, "flight/A", 100)
	res := sites[0].Run(reserveTxn("flight/A", 10))
	if !res.Committed() {
		t.Fatalf("quorum write: %v", res.Status)
	}
	net.Quiesce()
	// Read from a different site sees the newest version.
	res2 := sites[4].Run(&txn.Txn{Reads: []ident.ItemID{"flight/A"}})
	if !res2.Committed() {
		t.Fatalf("quorum read: %v", res2.Status)
	}
	if res2.Reads["flight/A"] != 90 {
		t.Errorf("read = %d, want 90", res2.Reads["flight/A"])
	}
}

func TestQuorumBoundedDecrement(t *testing.T) {
	_, sites := newCluster(t, 3, Quorum, simnet.Config{Seed: 2})
	createEverywhere(sites, "flight/A", 5)
	if res := sites[1].Run(reserveTxn("flight/A", 10)); res.Committed() {
		t.Fatal("over-reserve committed under quorum")
	}
}

func TestQuorumMinorityPartitionDies(t *testing.T) {
	net, sites := newCluster(t, 5, Quorum, simnet.Config{Seed: 3})
	createEverywhere(sites, "flight/A", 100)
	// Split 2 | 3: the 2-group has no majority.
	net.Partition([]ident.SiteID{1, 2}, []ident.SiteID{3, 4, 5})
	if res := sites[0].Run(reserveTxn("flight/A", 1)); res.Committed() {
		t.Error("minority group committed a quorum write")
	}
	// The majority side still works.
	if res := sites[2].Run(reserveTxn("flight/A", 1)); !res.Committed() {
		t.Errorf("majority group write: %v", res.Status)
	}
	// Reads also fail in the minority.
	if res := sites[1].Run(&txn.Txn{Reads: []ident.ItemID{"flight/A"}}); res.Committed() {
		t.Error("minority group read reached a quorum")
	}
	// Heal: the stale minority replica catches up via version repair.
	net.Heal()
	res := sites[0].Run(&txn.Txn{Reads: []ident.ItemID{"flight/A"}})
	if !res.Committed() || res.Reads["flight/A"] != 99 {
		t.Errorf("post-heal read = %v %v", res.Status, res.Reads)
	}
}

func TestQuorumSequentialFromAllSites(t *testing.T) {
	net, sites := newCluster(t, 3, Quorum, simnet.Config{Seed: 4, MaxDelay: time.Millisecond})
	createEverywhere(sites, "a", 60)
	want := core.Value(60)
	for i := 0; i < 9; i++ {
		if res := sites[i%3].Run(reserveTxn("a", 2)); res.Committed() {
			want -= 2
		}
		net.Quiesce()
	}
	res := sites[0].Run(&txn.Txn{Reads: []ident.ItemID{"a"}})
	if !res.Committed() || res.Reads["a"] != want {
		t.Errorf("read = %d (status %v), want %d", res.Reads["a"], res.Status, want)
	}
}

func TestPrimaryCopyRoutesToPrimary(t *testing.T) {
	net, sites := newCluster(t, 3, PrimaryCopy, simnet.Config{Seed: 5, MaxDelay: time.Millisecond})
	createEverywhere(sites, "flight/A", 100)
	// From a non-primary site: forwarded to site 1.
	res := sites[2].Run(reserveTxn("flight/A", 10))
	if !res.Committed() {
		t.Fatalf("forwarded write: %v", res.Status)
	}
	net.Quiesce()
	if v := sites[0].Value("flight/A"); v != 90 {
		t.Errorf("primary copy = %d, want 90", v)
	}
	// From the primary itself.
	res2 := sites[0].Run(reserveTxn("flight/A", 5))
	if !res2.Committed() {
		t.Fatalf("local primary write: %v", res2.Status)
	}
	if v := sites[0].Value("flight/A"); v != 85 {
		t.Errorf("primary copy = %d, want 85", v)
	}
}

func TestPrimaryCopyUnavailableWhenPrimaryCut(t *testing.T) {
	net, sites := newCluster(t, 3, PrimaryCopy, simnet.Config{Seed: 6})
	createEverywhere(sites, "flight/A", 100)
	net.Partition([]ident.SiteID{1}, []ident.SiteID{2, 3})
	// Non-primary group: every operation fails (paper §2.2).
	if res := sites[1].Run(reserveTxn("flight/A", 1)); res.Committed() {
		t.Error("write committed without reaching the primary")
	}
	st := sites[1].Stats()
	if st.PrimaryUnreachable == 0 {
		t.Error("PrimaryUnreachable not counted")
	}
	// The primary's own group continues.
	if res := sites[0].Run(reserveTxn("flight/A", 1)); !res.Committed() {
		t.Errorf("primary-side write: %v", res.Status)
	}
}

func TestPrimaryCopyRead(t *testing.T) {
	_, sites := newCluster(t, 2, PrimaryCopy, simnet.Config{Seed: 7})
	createEverywhere(sites, "x", 42)
	res := sites[1].Run(&txn.Txn{Reads: []ident.ItemID{"x"}})
	if !res.Committed() || res.Reads["x"] != 42 {
		t.Errorf("read = %v %v", res.Status, res.Reads)
	}
}

func TestModeStrings(t *testing.T) {
	if Quorum.String() != "quorum" || PrimaryCopy.String() != "primary-copy" {
		t.Error("mode strings")
	}
}
