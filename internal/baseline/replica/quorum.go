package replica

import (
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

// runQuorum executes t under quorum consensus: X-lock a write quorum,
// read versioned copies, compute, install (value, version+1) at the
// quorum. Reads collect a read quorum and take the newest version.
func (s *Site) runQuorum(ts tstamp.TS, t *txn.Txn, res *txn.Result) (bool, map[ident.ItemID]core.Value, txn.Status) {
	id := ts.Txn()
	ch := make(chan inMsg, len(s.cfg.Peers)*8)
	s.mu.Lock()
	s.waiters[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
	}()

	reads := make(map[ident.ItemID]core.Value)

	// Pure reads: collect a read quorum of versioned copies.
	for _, item := range t.Reads {
		v, ok := s.quorumRead(ts, id, item, ch, res)
		if !ok {
			s.bumpQuorumFailed()
			return false, nil, txn.StatusTimeout
		}
		reads[item] = v
	}

	// Writes: per item, lock quorum → read → apply ops → install.
	deltas := t.Deltas()
	needs := t.Needs()
	for item := range deltas {
		if !s.quorumWrite(ts, id, item, deltas[item], needs[item], ch, res) {
			s.releaseEverywhere(ts, id, item)
			s.bumpQuorumFailed()
			return false, nil, txn.StatusTimeout
		}
	}
	return true, reads, txn.StatusCommitted
}

// quorumRead collects R = majority versioned copies of item.
func (s *Site) quorumRead(ts tstamp.TS, id ident.TxnID, item ident.ItemID, ch chan inMsg, res *txn.Result) (core.Value, bool) {
	// Local copy counts as one reply.
	s.mu.Lock()
	best := s.copies[item]
	s.mu.Unlock()
	got := 1
	for _, p := range ident.SortSites(s.cfg.Peers) {
		if p == s.cfg.ID {
			continue
		}
		s.send(p, &wire.ReadReq{Txn: ts, Item: item})
		res.RequestsSent++
	}
	deadline := s.cfg.Clock.After(s.cfg.Timeout)
	for got < s.quorumSize() {
		select {
		case m := <-ch:
			if rr, ok := m.msg.(*wire.ReadReply); ok && rr.Item == item && rr.OK {
				if rr.Version > best.ver {
					best = copyState{val: rr.Value, ver: rr.Version}
				}
				got++
			}
		case <-deadline:
			return 0, false
		}
	}
	return best.val, true
}

// quorumWrite locks a write quorum of replicas, reads the newest
// version among them, applies the delta (bounded at `need`), and
// installs the new (value, version).
func (s *Site) quorumWrite(ts tstamp.TS, id ident.TxnID, item ident.ItemID, delta, need core.Value, ch chan inMsg, res *txn.Result) bool {
	// Lock the local copy opportunistically (fast deny): with n-1
	// remote replicas a quorum can assemble without it.
	locked := []ident.SiteID{}
	if s.locks.Lock(id, item, lock.Exclusive, s.cfg.LockTimeout/8) {
		locked = append(locked, s.cfg.ID)
	}
	for _, p := range ident.SortSites(s.cfg.Peers) {
		if p == s.cfg.ID {
			continue
		}
		s.send(p, &wire.LockReq{Txn: ts, Item: item, Mode: wire.LockExclusive})
		res.RequestsSent++
	}
	deadline := s.cfg.Clock.After(s.cfg.Timeout)
	// Collect lock grants until a quorum is locked (extra grants are
	// released along with the quorum at install time).
	for len(locked) < s.quorumSize() {
		select {
		case m := <-ch:
			// Denied grants are ignored: a quorum does not need
			// every replica, only enough of them. The timeout is
			// the abort path if a quorum never assembles.
			if lr, ok := m.msg.(*wire.LockReply); ok && lr.Item == item && lr.Granted {
				locked = append(locked, m.from)
			}
		case <-deadline:
			return false
		}
	}

	// Read versions from the locked quorum.
	s.mu.Lock()
	best := s.copies[item]
	s.mu.Unlock()
	got := 0
	for _, p := range locked {
		if p == s.cfg.ID {
			got++ // local copy already read above
			continue
		}
		s.send(p, &wire.ReadReq{Txn: ts, Item: item})
		res.RequestsSent++
	}
	deadline = s.cfg.Clock.After(s.cfg.Timeout)
	for got < len(locked) {
		select {
		case m := <-ch:
			if rr, ok := m.msg.(*wire.ReadReply); ok && rr.Item == item && rr.OK {
				if rr.Version > best.ver {
					best = copyState{val: rr.Value, ver: rr.Version}
				}
				got++
			}
		case <-deadline:
			return false
		}
	}

	// Apply the delta with the bounded-decrement rule.
	nv := best.val + delta
	if best.val < need || nv < 0 {
		return false
	}
	newVer := best.ver + 1

	// Install at the locked quorum, release as we go.
	acked := 0
	for _, p := range locked {
		if p == s.cfg.ID {
			s.applyQWrite(item, nv, newVer)
			s.locks.Unlock(id, item)
			acked++
			continue
		}
		s.send(p, &wire.QWrite{Txn: ts, Item: item, Value: nv, Version: newVer})
		res.RequestsSent++
	}
	deadline = s.cfg.Clock.After(s.cfg.Timeout)
	for acked < len(locked) {
		select {
		case m := <-ch:
			if qa, ok := m.msg.(*wire.QWriteAck); ok && qa.Item == item && qa.OK {
				acked++
			}
		case <-deadline:
			// Partial install: versions repair on the next quorum
			// read (newest wins). Report success only with a full
			// quorum of acks to keep the experiment conservative.
			return false
		}
	}
	return true
}

// releaseEverywhere drops locks for an aborted quorum write.
func (s *Site) releaseEverywhere(ts tstamp.TS, id ident.TxnID, item ident.ItemID) {
	s.locks.ReleaseAll(id)
	for _, p := range s.cfg.Peers {
		if p == s.cfg.ID {
			continue
		}
		// A zero-version QWrite is a pure lock release.
		s.send(p, &wire.QWrite{Txn: ts, Item: item, Version: 0})
	}
}

func (s *Site) applyQWrite(item ident.ItemID, v core.Value, ver uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.copies[item]; ver > cur.ver {
		s.copies[item] = copyState{val: v, ver: ver}
	}
}

func (s *Site) bumpQuorumFailed() {
	s.mu.Lock()
	s.stats.QuorumFailed++
	s.mu.Unlock()
}
