// Package replica implements the replica-control strategies the paper
// surveys through Davidson et al. [3] (§2.2) as the conventional
// answers to partitioned operation:
//
//   - Quorum consensus: every item replicated everywhere with a
//     version number; a write locks and installs (value, version+1) at
//     a write quorum W, a read collects R versioned copies and takes
//     the newest, with R + W > n. During a partition only a group
//     containing a quorum can operate; minority groups are dead.
//
//   - Primary copy: each item has a primary site through which all
//     operations flow. A partition separating a client from the
//     primary makes the item unavailable to that client ("it is not
//     always possible to ensure that a single group accesses the item
//     (e.g., a quorum is not reached, or a primary copy site fails)").
//
// These baselines are intentionally not crash-durable (no WAL): the
// experiments use them for partition-availability comparisons (T2),
// where the interesting failure is the network, not the disk.
package replica

import (
	"sync"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/vclock"
	"dvp/internal/wire"
)

// Mode selects the replica-control strategy.
type Mode uint8

// Strategies.
const (
	// Quorum is majority read/write quorum consensus.
	Quorum Mode = iota + 1
	// PrimaryCopy routes all operations through an item's primary.
	PrimaryCopy
)

func (m Mode) String() string {
	if m == PrimaryCopy {
		return "primary-copy"
	}
	return "quorum"
}

// Config assembles a replica-control site.
type Config struct {
	ID       ident.SiteID
	Peers    []ident.SiteID
	Endpoint wire.Endpoint
	Clock    vclock.Clock
	Mode     Mode
	// Primary maps items to their primary site under PrimaryCopy
	// (default: site 1 for everything).
	Primary func(ident.ItemID) ident.SiteID
	// Timeout bounds quorum collection / primary round trips.
	// Default 80ms.
	Timeout time.Duration
	// LockTimeout bounds replica lock waits. Default 40ms.
	LockTimeout time.Duration
}

// Stats counts outcomes.
type Stats struct {
	Committed          uint64
	Aborted            uint64
	QuorumFailed       uint64
	PrimaryUnreachable uint64
}

type copyState struct {
	val core.Value
	ver uint64
}

// Site is one replica-control site.
type Site struct {
	cfg   Config
	clock *tstamp.Clock
	locks *lock.Queue

	mu      sync.Mutex
	up      bool
	copies  map[ident.ItemID]copyState
	waiters map[ident.TxnID]chan inMsg
	stats   Stats
}

// inMsg pairs an inbound reply with its sender for waiter routing.
type inMsg struct {
	from ident.SiteID
	msg  wire.Msg
}

// New assembles a site.
func New(cfg Config) *Site {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 80 * time.Millisecond
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 40 * time.Millisecond
	}
	if cfg.Mode == 0 {
		cfg.Mode = Quorum
	}
	if cfg.Primary == nil {
		cfg.Primary = func(ident.ItemID) ident.SiteID { return 1 }
	}
	return &Site{
		cfg:     cfg,
		clock:   tstamp.NewClock(cfg.ID),
		locks:   lock.NewQueue(cfg.Clock),
		copies:  make(map[ident.ItemID]copyState),
		waiters: make(map[ident.TxnID]chan inMsg),
	}
}

// Start attaches the site to the network.
func (s *Site) Start() {
	s.mu.Lock()
	s.up = true
	s.mu.Unlock()
	s.cfg.Endpoint.SetHandler(s.handle)
	_ = s.cfg.Endpoint.Open()
}

// Stop detaches.
func (s *Site) Stop() {
	s.mu.Lock()
	s.up = false
	s.mu.Unlock()
	s.cfg.Endpoint.Close()
}

// ID returns the site identity.
func (s *Site) ID() ident.SiteID { return s.cfg.ID }

// Create installs a replica of item with value v at this site.
func (s *Site) Create(item ident.ItemID, v core.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copies[item] = copyState{val: v, ver: 1}
}

// Value reads this site's local copy (tests/monitors).
func (s *Site) Value(item ident.ItemID) core.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copies[item].val
}

// Stats snapshots the counters.
func (s *Site) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Site) quorumSize() int { return len(s.cfg.Peers)/2 + 1 }

func (s *Site) send(to ident.SiteID, msg wire.Msg) {
	env := &wire.Envelope{To: to, Lamport: tstamp.Make(s.clock.Current(), s.cfg.ID), Msg: msg}
	_ = s.cfg.Endpoint.Send(env)
}

// Run executes a single-item transaction (the baseline supports the
// same reserve/cancel/read shapes the experiments drive; multi-item
// transactions would need full 2PC — that baseline lives in
// internal/baseline/twopc).
func (s *Site) Run(t *txn.Txn) *txn.Result {
	start := s.cfg.Clock.Now()
	res := &txn.Result{}
	finish := func(status txn.Status, ok bool) *txn.Result {
		res.Status = status
		res.Latency = s.cfg.Clock.Now().Sub(start)
		s.mu.Lock()
		if ok {
			s.stats.Committed++
		} else {
			s.stats.Aborted++
		}
		s.mu.Unlock()
		return res
	}
	ts := s.clock.Next()
	res.TS = ts

	switch s.cfg.Mode {
	case PrimaryCopy:
		ok, vals := s.runPrimary(ts, t, res)
		if !ok {
			return finish(txn.StatusTimeout, false)
		}
		res.Reads = vals
		return finish(txn.StatusCommitted, true)
	default:
		ok, vals, status := s.runQuorum(ts, t, res)
		if !ok {
			return finish(status, false)
		}
		res.Reads = vals
		return finish(txn.StatusCommitted, true)
	}
}
