package replica

import (
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/lock"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

// handle dispatches replica-control traffic.
func (s *Site) handle(env *wire.Envelope) {
	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if !up {
		return
	}
	s.clock.Observe(env.Lamport)

	switch m := env.Msg.(type) {
	case *wire.LockReq:
		go func() {
			// Near-no-wait: long waits at replicas convoy the whole
			// quorum (every coordinator holds its local replica's
			// lock while waiting for the others); deny fast and let
			// the coordinator's retry with backoff break the tie.
			ok := s.locks.Lock(m.Txn.Txn(), m.Item, lock.Exclusive, s.cfg.LockTimeout/8)
			s.send(env.From, &wire.LockReply{Txn: m.Txn, Item: m.Item, Granted: ok})
			if ok {
				// Lease: a grant whose coordinator has abandoned the
				// transaction (timed out before our reply arrived)
				// would otherwise be held forever. Auto-release well
				// after any live coordinator would have installed.
				go func() {
					s.cfg.Clock.Sleep(s.cfg.Timeout)
					s.locks.Unlock(m.Txn.Txn(), m.Item)
				}()
			}
		}()
	case *wire.ReadReq:
		s.mu.Lock()
		cs := s.copies[m.Item]
		s.mu.Unlock()
		s.send(env.From, &wire.ReadReply{
			Txn: m.Txn, Item: m.Item, Value: cs.val, Version: cs.ver, OK: true,
		})
	case *wire.QWrite:
		if m.Version > 0 {
			s.applyQWrite(m.Item, m.Value, m.Version)
			s.send(env.From, &wire.QWriteAck{Txn: m.Txn, Item: m.Item, OK: true})
		}
		// Version 0 (or any) releases the transaction's lock here.
		s.locks.ReleaseAll(m.Txn.Txn())
	case *wire.Forward:
		s.onForward(env.From, m)
	case *wire.LockReply, *wire.QWriteAck, *wire.ReadReply, *wire.ForwardReply:
		s.routeToWaiter(env.From, env.Msg)
	}
}

// routeToWaiter hands a reply to the coordinator goroutine waiting on
// the transaction named inside the message.
func (s *Site) routeToWaiter(from ident.SiteID, msg wire.Msg) {
	var id ident.TxnID
	switch m := msg.(type) {
	case *wire.LockReply:
		id = m.Txn.Txn()
	case *wire.QWriteAck:
		id = m.Txn.Txn()
	case *wire.ReadReply:
		id = m.Txn.Txn()
	case *wire.ForwardReply:
		id = m.Txn.Txn()
	default:
		return
	}
	s.mu.Lock()
	ch := s.waiters[id]
	s.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- inMsg{from: from, msg: msg}:
	default:
	}
}

// onForward executes one forwarded operation as the primary for the
// item: serialize through the local lock, apply bounded delta or read.
func (s *Site) onForward(from ident.SiteID, m *wire.Forward) {
	id := m.Txn.Txn()
	if !s.locks.Lock(id, m.Item, lock.Exclusive, s.cfg.LockTimeout) {
		s.send(from, &wire.ForwardReply{Txn: m.Txn, Item: m.Item, OK: false})
		return
	}
	defer s.locks.Unlock(id, m.Item)
	s.mu.Lock()
	cs := s.copies[m.Item]
	if m.Read {
		s.mu.Unlock()
		s.send(from, &wire.ForwardReply{Txn: m.Txn, Item: m.Item, OK: true, Value: cs.val})
		return
	}
	nv := cs.val + m.Delta
	if nv < 0 {
		s.mu.Unlock()
		s.send(from, &wire.ForwardReply{Txn: m.Txn, Item: m.Item, OK: false, Value: cs.val})
		return
	}
	s.copies[m.Item] = copyState{val: nv, ver: cs.ver + 1}
	s.mu.Unlock()
	s.send(from, &wire.ForwardReply{Txn: m.Txn, Item: m.Item, OK: true, Value: nv})
}

// runPrimary executes t under primary-copy control: every operation is
// forwarded to (or executed at) the item's primary site.
func (s *Site) runPrimary(ts tstamp.TS, t *txn.Txn, res *txn.Result) (bool, map[ident.ItemID]core.Value) {
	id := ts.Txn()
	ch := make(chan inMsg, 8)
	s.mu.Lock()
	s.waiters[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
	}()

	reads := make(map[ident.ItemID]core.Value)
	do := func(item ident.ItemID, delta core.Value, read bool) (core.Value, bool) {
		primary := s.cfg.Primary(item)
		if primary == s.cfg.ID {
			// We are the primary: execute locally through onForward's
			// logic by calling it against ourselves synchronously.
			return s.localPrimaryOp(id, item, delta, read)
		}
		s.send(primary, &wire.Forward{Txn: ts, Item: item, Delta: delta, Read: read})
		res.RequestsSent++
		deadline := s.cfg.Clock.After(s.cfg.Timeout)
		for {
			select {
			case m := <-ch:
				if fr, ok := m.msg.(*wire.ForwardReply); ok && fr.Item == item {
					return fr.Value, fr.OK
				}
			case <-deadline:
				s.mu.Lock()
				s.stats.PrimaryUnreachable++
				s.mu.Unlock()
				return 0, false
			}
		}
	}

	for _, item := range t.Reads {
		v, ok := do(item, 0, true)
		if !ok {
			return false, nil
		}
		reads[item] = v
	}
	for item, d := range t.Deltas() {
		if _, ok := do(item, d, false); !ok {
			return false, nil
		}
	}
	return true, reads
}

// localPrimaryOp is the primary executing its own operation.
func (s *Site) localPrimaryOp(id ident.TxnID, item ident.ItemID, delta core.Value, read bool) (core.Value, bool) {
	if !s.locks.Lock(id, item, lock.Exclusive, s.cfg.LockTimeout) {
		return 0, false
	}
	defer s.locks.Unlock(id, item)
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.copies[item]
	if read {
		return cs.val, true
	}
	nv := cs.val + delta
	if nv < 0 {
		return cs.val, false
	}
	s.copies[item] = copyState{val: nv, ver: cs.ver + 1}
	return nv, true
}
