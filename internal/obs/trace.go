package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// TraceStep is one recorded step of the §5 protocol, with its offset
// from transaction start.
type TraceStep struct {
	// Name identifies the protocol step ("admit", "cc-check", "lock",
	// "ask", "vm-accept", "apply", "wal-flush").
	Name string `json:"name"`
	// AtMicros is the offset from transaction start, in microseconds.
	AtMicros int64 `json:"at_us"`
	// Detail carries step-specific context ("requests=3", "lsn=42").
	Detail string `json:"detail,omitempty"`
}

// Trace is the completed record of one span: either a transaction's
// full path through the protocol at its origin site, or one remote hop
// (Rds create, Vm accept, ack retirement) of a transaction that
// originated elsewhere. Immutable once published to a Ring.
type Trace struct {
	// TS is the originating transaction's timestamp/identity — the
	// cross-site stitch key: every span of one causal chain shares it.
	TS uint64 `json:"ts"`
	// Site is the site that recorded this span.
	Site string `json:"site"`
	// Origin is the site whose transaction started the causal chain
	// (equals Site for root spans).
	Origin string `json:"origin,omitempty"`
	// Kind classifies the span: "txn" (origin-side protocol run),
	// "rds-create" (Rds deduct half honoring a Request), "vm-accept"
	// (Rds credit half applying a Vm), "vm-ack" (cumulative ack
	// retiring an outstanding Vm), "rds" (rebalancer-initiated
	// transfer root).
	Kind string `json:"kind,omitempty"`
	// Span is this span's id, unique within the recording site; zero
	// when the span predates span-id allocation (untraced hop).
	Span uint64 `json:"span,omitempty"`
	// Parent is the sender-side span id this hop causally follows
	// (zero for roots).
	Parent uint64 `json:"parent,omitempty"`
	// Label is the transaction's observational tag ("transfer", ...).
	Label string `json:"label,omitempty"`
	// Outcome is the final status ("committed", "timeout", ...): the
	// commit/abort-with-reason terminal step.
	Outcome string `json:"outcome"`
	// StartUnixNano is the wall-clock start time.
	StartUnixNano int64 `json:"start_unix_nano"`
	// LatencyMicros is start-to-decision, in microseconds.
	LatencyMicros int64 `json:"latency_us"`
	// Steps are the recorded protocol steps, in order.
	Steps []TraceStep `json:"steps"`
}

// Ring is a fixed-size lock-free buffer of the most recent traces.
// Publishing is a single atomic increment plus a pointer store;
// readers may race with writers and at worst observe a slot from a
// newer transaction — never a torn trace, because published Trace
// values are immutable.
type Ring struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[Trace]
}

// NewRing creates a ring holding the last capacity traces (rounded up
// to a power of two, minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Trace], n)}
}

// Publish appends t. t must not be mutated afterwards.
func (r *Ring) Publish(t *Trace) {
	if r == nil {
		return
	}
	pos := r.next.Add(1) - 1
	r.slots[pos&r.mask].Store(t)
}

// Published returns the total number of traces ever published.
func (r *Ring) Published() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Last returns up to n of the most recent traces, oldest first.
func (r *Ring) Last(n int) []*Trace {
	if r == nil || n <= 0 {
		return nil
	}
	end := r.next.Load()
	span := uint64(n)
	if span > end {
		span = end
	}
	if span > uint64(len(r.slots)) {
		span = uint64(len(r.slots))
	}
	out := make([]*Trace, 0, span)
	for pos := end - span; pos < end; pos++ {
		if t := r.slots[pos&r.mask].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// ByTS returns every retained span belonging to the causal chain of
// the transaction with timestamp ts, oldest first.
func (r *Ring) ByTS(ts uint64) []*Trace {
	if r == nil || ts == 0 {
		return nil
	}
	var out []*Trace
	for _, t := range r.Last(len(r.slots)) {
		if t.TS == ts {
			out = append(out, t)
		}
	}
	return out
}

// DumpJSON writes up to n of the most recent traces as JSON lines,
// oldest first.
func (r *Ring) DumpJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, t := range r.Last(n) {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// TxnTrace accumulates one transaction's steps. It is built by the
// single goroutine running the transaction and published to the ring
// on Finish; a nil TxnTrace (tracing disabled) ignores every call.
type TxnTrace struct {
	ring  *Ring
	start time.Time
	t     Trace
}

// Begin starts a trace for a transaction executing at site. Returns
// nil (a valid no-op trace) when the ring is nil.
func (r *Ring) Begin(site, label string) *TxnTrace {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &TxnTrace{
		ring:  r,
		start: now,
		t: Trace{
			Site:          site,
			Origin:        site,
			Kind:          "txn",
			Label:         label,
			StartUnixNano: now.UnixNano(),
		},
	}
}

// BeginSpan starts a remote-hop span of kind, recorded at site, for
// the causal chain rooted at origin's transaction ts. parent is the
// sender-side span id this hop follows. Returns nil (a valid no-op
// trace) when the ring is nil.
func (r *Ring) BeginSpan(site, kind, origin string, ts, span, parent uint64) *TxnTrace {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &TxnTrace{
		ring:  r,
		start: now,
		t: Trace{
			TS:            ts,
			Site:          site,
			Origin:        origin,
			Kind:          kind,
			Span:          span,
			Parent:        parent,
			StartUnixNano: now.UnixNano(),
		},
	}
}

// SetTS records the transaction's timestamp once drawn.
func (tt *TxnTrace) SetTS(ts uint64) {
	if tt == nil {
		return
	}
	tt.t.TS = ts
}

// SetSpan records the trace's own span id (roots allocate one only
// when tracing is enabled, after Begin).
func (tt *TxnTrace) SetSpan(span uint64) {
	if tt == nil {
		return
	}
	tt.t.Span = span
}

// Step records one named protocol step at the current instant.
func (tt *TxnTrace) Step(name, detail string) {
	if tt == nil {
		return
	}
	tt.t.Steps = append(tt.t.Steps, TraceStep{
		Name:     name,
		AtMicros: time.Since(tt.start).Microseconds(),
		Detail:   detail,
	})
}

// Finish seals the trace with its outcome and publishes it.
func (tt *TxnTrace) Finish(outcome string) {
	if tt == nil {
		return
	}
	tt.t.Outcome = outcome
	tt.t.LatencyMicros = time.Since(tt.start).Microseconds()
	tt.ring.Publish(&tt.t)
}
