package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record("s1", "kind", "detail")
	f.Recordf("s1", "kind", "n=%d", 7)
	if f.Recorded() != 0 || f.Last(10) != nil {
		t.Error("nil recorder must report nothing")
	}
	var sb strings.Builder
	if err := f.WriteText(&sb, 10); err != nil || sb.Len() != 0 {
		t.Errorf("nil WriteText: %q, %v", sb.String(), err)
	}
	if err := f.DumpJSON(&sb, 10); err != nil || sb.Len() != 0 {
		t.Errorf("nil DumpJSON: %q, %v", sb.String(), err)
	}
}

func TestFlightRecordAndDump(t *testing.T) {
	f := NewFlight(0) // minimum capacity (64)
	f.Record("s1", "site-up", "epoch=1")
	f.Recordf("s2", "wal-flush", "records=%d first_lsn=%d", 3, 41)
	f.Record("s1", "lock-conflict", "")
	if got := f.Recorded(); got != 3 {
		t.Fatalf("Recorded = %d, want 3", got)
	}
	evs := f.Last(10)
	if len(evs) != 3 {
		t.Fatalf("Last(10) = %d events, want 3", len(evs))
	}
	if evs[0].Kind != "site-up" || evs[2].Kind != "lock-conflict" {
		t.Errorf("events out of order: %v, %v", evs[0], evs[2])
	}
	if evs[1].Detail != "records=3 first_lsn=41" {
		t.Errorf("Recordf detail = %q", evs[1].Detail)
	}
	// Bounded fetch keeps the most recent.
	if last := f.Last(1); len(last) != 1 || last[0].Kind != "lock-conflict" {
		t.Errorf("Last(1) = %v", last)
	}

	var txt strings.Builder
	if err := f.WriteText(&txt, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(txt.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("WriteText produced %d lines: %q", len(lines), txt.String())
	}
	if !strings.Contains(lines[1], "s2") || !strings.Contains(lines[1], "wal-flush") ||
		!strings.Contains(lines[1], "records=3") {
		t.Errorf("dump line unreadable: %q", lines[1])
	}
	// Detail-less events render without a trailing detail column.
	if !strings.HasSuffix(lines[2], "lock-conflict") {
		t.Errorf("detail-less line = %q", lines[2])
	}

	var js strings.Builder
	if err := f.DumpJSON(&js, 10); err != nil {
		t.Fatal(err)
	}
	var ev FlightEvent
	if err := json.Unmarshal([]byte(strings.SplitN(js.String(), "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("DumpJSON line not JSON: %v", err)
	}
	if ev.Kind != "site-up" || ev.Site != "s1" || ev.AtUnixNano == 0 {
		t.Errorf("decoded event = %+v", ev)
	}
}

func TestFlightWraps(t *testing.T) {
	f := NewFlight(64)
	for i := 0; i < 200; i++ {
		f.Recordf("s1", "tick", "i=%d", i)
	}
	if got := f.Recorded(); got != 200 {
		t.Fatalf("Recorded = %d", got)
	}
	evs := f.Last(1000)
	if len(evs) != 64 {
		t.Fatalf("ring retained %d events, want capacity 64", len(evs))
	}
	if evs[0].Detail != "i=136" || evs[63].Detail != "i=199" {
		t.Errorf("retained window [%s .. %s], want [i=136 .. i=199]",
			evs[0].Detail, evs[63].Detail)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Recordf("s1", "k", "g=%d i=%d", g, i)
				f.Last(16)
			}
		}(g)
	}
	wg.Wait()
	if f.Recorded() != 800 {
		t.Errorf("Recorded = %d, want 800", f.Recorded())
	}
}

func TestRingByTS(t *testing.T) {
	var nilRing *Ring
	if nilRing.ByTS(7) != nil {
		t.Error("nil ring ByTS must return nil")
	}
	r := NewRing(16)
	if r.ByTS(0) != nil {
		t.Error("ByTS(0) must return nil (zero TS is no identity)")
	}
	tt := r.Begin("s1", "transfer")
	tt.SetTS(7)
	tt.SetSpan(101)
	tt.Step("admit", "")
	tt.Finish("committed")
	hop := r.BeginSpan("s2", "rds-create", "s1", 7, 202, 101)
	hop.Finish("honored")
	other := r.Begin("s3", "noise")
	other.SetTS(8)
	other.Finish("committed")

	got := r.ByTS(7)
	if len(got) != 2 {
		t.Fatalf("ByTS(7) = %d spans, want 2", len(got))
	}
	if got[0].Kind != "txn" || got[0].Span != 101 || got[0].Origin != "s1" {
		t.Errorf("root span = %+v", got[0])
	}
	if got[1].Kind != "rds-create" || got[1].Parent != 101 || got[1].Site != "s2" || got[1].Origin != "s1" {
		t.Errorf("hop span = %+v", got[1])
	}
}

func TestBeginSpanNilRing(t *testing.T) {
	var r *Ring
	hop := r.BeginSpan("s1", "vm-accept", "s2", 9, 1, 2)
	hop.Step("wal-flush", "lsn=1") // must all be no-ops
	hop.SetSpan(5)
	hop.Finish("accepted")
	if r.Published() != 0 {
		t.Error("nil ring published a span")
	}
}
