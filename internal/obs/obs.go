// Package obs is the runtime observability layer: a metrics registry
// (named, labeled counters, gauges and latency histograms, rendered in
// Prometheus text-exposition format) and per-transaction protocol
// tracing (see trace.go).
//
// The offline experiment harness keeps using internal/metrics
// directly; obs wraps the same primitives with names and labels so the
// *live* runtime (internal/site, internal/vmsg, internal/wal,
// internal/tcpnet) can be scraped and inspected while serving traffic.
//
// Every Registry method is nil-receiver-safe: a component handed a nil
// registry gets working but unregistered ("orphan") metric handles, so
// instrumentation sites never branch on whether observability is
// enabled.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/metrics"
)

// Gauge is a settable instantaneous value (pending-set depth, queue
// length). Concurrency-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one (name, label-set) time series and its handle.
type series struct {
	name    string
	labels  string // pre-rendered, sorted: `a="b",c="d"` (no braces)
	kind    metricKind
	counter *metrics.Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *metrics.Histogram
}

// Registry holds named metrics for one process (or one simulated
// cluster: series are distinguished by labels, conventionally
// including site="s<i>"). Registration is idempotent — asking for the
// same name+labels returns the same handle — so components resolve
// handles at construction and record lock-free afterwards.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	order  []*series
	family map[string]metricKind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*series),
		family: make(map[string]metricKind),
	}
}

// labelString renders k/v pairs sorted by key: `a="b",c="d"`.
// Panics on an odd-length labels list — that is a call-site bug.
func labelString(labels []string) string {
	if len(labels)%2 != 0 {
		panic("obs: odd label list")
	}
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	return sb.String()
}

// register resolves or creates the series for (name, labels). The
// create function runs under the registry lock.
func (r *Registry) register(name string, kind metricKind, labels []string, create func(*series)) *series {
	ls := labelString(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %s and %s", key, s.kind, kind))
		}
		return s
	}
	if fk, ok := r.family[name]; ok && fk != kind {
		panic(fmt.Sprintf("obs: family %s registered as %s and %s", name, fk, kind))
	}
	s := &series{name: name, labels: ls, kind: kind}
	create(s)
	r.byKey[key] = s
	r.order = append(r.order, s)
	r.family[name] = kind
	return s
}

// Counter returns the counter for name with the given k,v label pairs,
// creating it on first use. Nil-safe: a nil registry returns a working
// unregistered counter.
func (r *Registry) Counter(name string, labels ...string) *metrics.Counter {
	if r == nil {
		return &metrics.Counter{}
	}
	s := r.register(name, kindCounter, labels, func(s *series) {
		s.counter = &metrics.Counter{}
	})
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	s := r.register(name, kindGauge, labels, func(s *series) {
		s.gauge = &Gauge{}
	})
	return s.gauge
}

// GaugeFunc registers a gauge sampled by calling fn at exposition
// time. fn runs without any registry lock held, so it may take its
// own locks freely. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, kindGaugeFunc, labels, func(s *series) {})
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the latency histogram for name+labels, creating it
// on first use. Exposition renders it as a Prometheus histogram in
// seconds.
func (r *Registry) Histogram(name string, labels ...string) *metrics.Histogram {
	if r == nil {
		return &metrics.Histogram{}
	}
	s := r.register(name, kindHistogram, labels, func(s *series) {
		s.hist = &metrics.Histogram{}
	})
	return s.hist
}

// snapshot copies the series list so rendering (and gauge sampling)
// happens outside the registry lock.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Durations are exposed in
// seconds. Safe to call while recorders are running.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var lastFamily string
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			lastFamily = s.name
		}
		if err := s.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Render returns the Prometheus exposition as a string.
func (r *Registry) Render() string {
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	return sb.String()
}

func (s *series) write(w io.Writer) error {
	braced := ""
	if s.labels != "" {
		braced = "{" + s.labels + "}"
	}
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, braced, s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, braced, s.gauge.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %g\n", s.name, braced, s.gaugeFn())
		return err
	case kindHistogram:
		return s.writeHistogram(w)
	}
	return nil
}

// writeHistogram renders the histogram with one cumulative `le` bucket
// per non-empty internal bucket (cumulative counts stay correct when
// empty bounds are elided), plus +Inf, _sum and _count.
func (s *series) writeHistogram(w io.Writer) error {
	sep := ""
	if s.labels != "" {
		sep = ","
	}
	var cum uint64
	var err error
	s.hist.ForEachBucket(func(upper time.Duration, n uint64) {
		if err != nil {
			return
		}
		cum += n
		_, err = fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			s.name, s.labels, sep, fmt.Sprintf("%g", upper.Seconds()), cum)
	})
	if err != nil {
		return err
	}
	braced := ""
	if s.labels != "" {
		braced = "{" + s.labels + "}"
	}
	count := s.hist.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", s.name, s.labels, sep, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.name, braced, s.hist.Sum().Seconds()); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.name, braced, count)
	return err
}

// CounterValue reads one exact counter series (0 if absent) — for
// tests and examples.
func (r *Registry) CounterValue(name string, labels ...string) uint64 {
	if r == nil {
		return 0
	}
	key := name + "{" + labelString(labels) + "}"
	r.mu.Lock()
	s, ok := r.byKey[key]
	r.mu.Unlock()
	if !ok || s.kind != kindCounter {
		return 0
	}
	return s.counter.Value()
}

// SumCounters sums every counter series of the family whose label set
// includes all the given k,v pairs (e.g. all sites' committed-txn
// counters). Non-counter series are ignored.
func (r *Registry) SumCounters(name string, labels ...string) uint64 {
	if r == nil {
		return 0
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list")
	}
	var sum uint64
	for _, s := range r.snapshot() {
		if s.name != name || s.kind != kindCounter {
			continue
		}
		match := true
		for i := 0; i < len(labels); i += 2 {
			if !strings.Contains(","+s.labels+",", ","+labels[i]+"="+fmt.Sprintf("%q", labels[i+1])+",") {
				match = false
				break
			}
		}
		if match {
			sum += s.counter.Value()
		}
	}
	return sum
}
