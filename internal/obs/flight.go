package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// FlightEvent is one structured entry in the flight recorder: a
// protocol-level state transition worth replaying after a failure
// (lock conflicts, Vm parking, rebalancer decisions, group-commit
// flushes, demand adverts, site lifecycle).
type FlightEvent struct {
	// AtUnixNano is the wall-clock instant of the event.
	AtUnixNano int64 `json:"at_unix_nano"`
	// Site is the site that recorded the event.
	Site string `json:"site"`
	// Kind classifies the event ("lock-conflict", "vm-defer",
	// "rds-create", "vm-accept", "rebal-transfer", "wal-flush", ...).
	Kind string `json:"kind"`
	// Detail carries event-specific context, pre-rendered.
	Detail string `json:"detail,omitempty"`
}

// String renders the event as one human-readable dump line.
func (e *FlightEvent) String() string {
	ts := time.Unix(0, e.AtUnixNano).UTC().Format("15:04:05.000000")
	if e.Detail == "" {
		return fmt.Sprintf("%s %-4s %s", ts, e.Site, e.Kind)
	}
	return fmt.Sprintf("%s %-4s %-14s %s", ts, e.Site, e.Kind, e.Detail)
}

// Flight is a bounded, lock-free ring of the most recent FlightEvents
// — a flight recorder: cheap enough to leave on, bounded so it can
// run forever, dumped when something goes wrong. Same publication
// discipline as Ring: events are immutable once recorded, readers may
// race and at worst see a newer event in a slot.
//
// A nil *Flight ignores every call, so call sites need no enabled
// checks.
type Flight struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[FlightEvent]
}

// NewFlight creates a recorder holding the last capacity events
// (rounded up to a power of two, minimum 64).
func NewFlight(capacity int) *Flight {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Flight{mask: uint64(n - 1), slots: make([]atomic.Pointer[FlightEvent], n)}
}

// Record appends one event.
func (f *Flight) Record(site, kind, detail string) {
	if f == nil {
		return
	}
	e := &FlightEvent{
		AtUnixNano: time.Now().UnixNano(),
		Site:       site,
		Kind:       kind,
		Detail:     detail,
	}
	pos := f.next.Add(1) - 1
	f.slots[pos&f.mask].Store(e)
}

// Recordf appends one event with a formatted detail. The formatting
// cost is skipped entirely when the recorder is nil.
func (f *Flight) Recordf(site, kind, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(site, kind, fmt.Sprintf(format, args...))
}

// Recorded returns the total number of events ever recorded.
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Last returns up to n of the most recent events, oldest first.
func (f *Flight) Last(n int) []*FlightEvent {
	if f == nil || n <= 0 {
		return nil
	}
	end := f.next.Load()
	span := uint64(n)
	if span > end {
		span = end
	}
	if span > uint64(len(f.slots)) {
		span = uint64(len(f.slots))
	}
	out := make([]*FlightEvent, 0, span)
	for pos := end - span; pos < end; pos++ {
		if e := f.slots[pos&f.mask].Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// WriteText dumps up to n of the most recent events as readable lines,
// oldest first.
func (f *Flight) WriteText(w io.Writer, n int) error {
	for _, e := range f.Last(n) {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// DumpJSON writes up to n of the most recent events as JSON lines,
// oldest first.
func (f *Flight) DumpJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Last(n) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
