package obs

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "site", "s1")
	b := r.Counter("x_total", "site", "s1")
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	a.Inc()
	if got := r.CounterValue("x_total", "site", "s1"); got != 1 {
		t.Fatalf("CounterValue = %d, want 1", got)
	}
	if got := r.CounterValue("x_total", "site", "s2"); got != 0 {
		t.Fatalf("absent series = %d, want 0", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("y_total", "b", "2", "a", "1")
	b := r.Counter("y_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not matter")
	}
	out := r.Render()
	if !strings.Contains(out, `y_total{a="1",b="2"} 0`) {
		t.Fatalf("labels not sorted in exposition:\n%s", out)
	}
}

func TestRenderPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dvp_txn_total", "site", "s1", "outcome", "committed").Add(3)
	r.Gauge("dvp_depth", "site", "s1").Set(7)
	r.GaugeFunc("dvp_sampled", func() float64 { return 2.5 }, "site", "s1")
	h := r.Histogram("dvp_lat_seconds", "site", "s1")
	h.Record(2 * time.Millisecond)
	h.Record(5 * time.Millisecond)

	out := r.Render()
	for _, want := range []string{
		"# TYPE dvp_txn_total counter",
		`dvp_txn_total{outcome="committed",site="s1"} 3`,
		"# TYPE dvp_depth gauge",
		`dvp_depth{site="s1"} 7`,
		`dvp_sampled{site="s1"} 2.5`,
		"# TYPE dvp_lat_seconds histogram",
		`dvp_lat_seconds_count{site="s1"} 2`,
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must match the exposition grammar.
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	h.Record(1 * time.Millisecond)
	h.Record(1 * time.Millisecond)
	h.Record(100 * time.Millisecond)
	out := r.Render()
	// Two non-empty buckets: first carries cumulative 2, second 3.
	re := regexp.MustCompile(`lat_seconds_bucket\{le="[^"]+"\} (\d+)`)
	ms := re.FindAllStringSubmatch(out, -1)
	if len(ms) != 3 { // two finite + one +Inf
		t.Fatalf("bucket lines = %d, want 3:\n%s", len(ms), out)
	}
	if ms[0][1] != "2" || ms[1][1] != "3" || ms[2][1] != "3" {
		t.Fatalf("cumulative counts wrong: %v", ms)
	}
	if !strings.Contains(out, "lat_seconds_sum 0.102") {
		t.Errorf("sum not in seconds:\n%s", out)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Record(time.Millisecond)
	r.GaugeFunc("d", func() float64 { return 0 })
	if r.Render() != "" || r.CounterValue("a") != 0 || r.SumCounters("a") != 0 {
		t.Fatal("nil registry must be inert")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	defer func() {
		if recover() == nil {
			t.Fatal("registering z as gauge after counter must panic")
		}
	}()
	r.Gauge("z")
}

func TestSumCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "site", "s1", "outcome", "committed").Add(2)
	r.Counter("t_total", "site", "s2", "outcome", "committed").Add(3)
	r.Counter("t_total", "site", "s1", "outcome", "timeout").Add(10)
	if got := r.SumCounters("t_total", "outcome", "committed"); got != 5 {
		t.Fatalf("SumCounters(committed) = %d, want 5", got)
	}
	if got := r.SumCounters("t_total"); got != 15 {
		t.Fatalf("SumCounters(all) = %d, want 15", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "w", fmt.Sprint(w%4)).Inc()
				r.Histogram("h_seconds", "w", fmt.Sprint(w%4)).Record(time.Duration(i) * time.Microsecond)
				_ = r.Render()
			}
		}(w)
	}
	wg.Wait()
	if got := r.SumCounters("c_total"); got != 1600 {
		t.Fatalf("SumCounters = %d, want 1600", got)
	}
}

func TestRingPublishAndLast(t *testing.T) {
	r := NewRing(4) // rounds up to 16
	for i := 0; i < 20; i++ {
		r.Publish(&Trace{TS: uint64(i)})
	}
	last := r.Last(5)
	if len(last) != 5 {
		t.Fatalf("Last(5) = %d traces", len(last))
	}
	for i, tr := range last {
		if want := uint64(15 + i); tr.TS != want {
			t.Errorf("trace %d: TS = %d, want %d", i, tr.TS, want)
		}
	}
	if r.Published() != 20 {
		t.Errorf("Published = %d", r.Published())
	}
	// Asking beyond capacity returns at most capacity traces.
	if n := len(r.Last(100)); n != 16 {
		t.Errorf("Last(100) = %d traces, want 16", n)
	}
}

func TestRingConcurrentPublish(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Publish(&Trace{TS: uint64(i)})
				r.Last(10)
			}
		}()
	}
	wg.Wait()
	if r.Published() != 4000 {
		t.Fatalf("Published = %d", r.Published())
	}
}

func TestTxnTraceLifecycle(t *testing.T) {
	r := NewRing(16)
	tt := r.Begin("s1", "transfer")
	tt.SetTS(42)
	tt.Step("admit", "")
	tt.Step("ask", "requests=2")
	tt.Finish("committed")

	last := r.Last(1)
	if len(last) != 1 {
		t.Fatal("no trace published")
	}
	tr := last[0]
	if tr.TS != 42 || tr.Site != "s1" || tr.Label != "transfer" || tr.Outcome != "committed" {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Steps) != 2 || tr.Steps[1].Detail != "requests=2" {
		t.Fatalf("steps = %+v", tr.Steps)
	}

	var sb strings.Builder
	if err := r.DumpJSON(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"outcome":"committed"`) {
		t.Fatalf("JSON dump: %s", sb.String())
	}
}

func TestNilTraceSafe(t *testing.T) {
	var r *Ring
	tt := r.Begin("s1", "x")
	tt.SetTS(1)
	tt.Step("admit", "")
	tt.Finish("committed")
	if r.Last(5) != nil || r.Published() != 0 {
		t.Fatal("nil ring must be inert")
	}
}
