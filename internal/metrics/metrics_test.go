package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 8005 {
		t.Errorf("counter = %d", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	durations := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, d := range durations {
		h.Record(d)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 21*time.Millisecond || mean > 23*time.Millisecond {
		t.Errorf("mean = %v, want ~22ms", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Millisecond || p50 > 560*time.Millisecond {
		t.Errorf("p50 = %v, want ~500ms (±10%%)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Errorf("p99 = %v, want ~990ms", p99)
	}
	// Quantile never exceeds the recorded max.
	if h.Quantile(1.0) > h.Max() {
		t.Errorf("q(1.0)=%v exceeds max %v", h.Quantile(1.0), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 {
		t.Errorf("negative duration recorded as %v", h.Min())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestSnapshot(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 || s.Mean != 2*time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1 demo", "sites", "tps", "p99")
	tb.AddRow(4, 123.456, 7*time.Millisecond)
	tb.AddRow(8, 99.9, 12340*time.Microsecond)
	out := tb.String()
	if !strings.Contains(out, "== T1 demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "123.46") {
		t.Errorf("float formatting: %s", out)
	}
	if !strings.Contains(out, "7.00ms") || !strings.Contains(out, "12.34ms") {
		t.Errorf("duration formatting: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableRowsIsCopy(t *testing.T) {
	tb := NewTable("x", "a")
	tb.AddRow("v")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "v" {
		t.Error("Rows must return a copy")
	}
}

func TestTableSortNumeric(t *testing.T) {
	tb := NewTable("x", "n", "v")
	tb.AddRow(16, "a")
	tb.AddRow(2, "b")
	tb.AddRow(8, "c")
	tb.SortRowsByFirstColumn()
	rows := tb.Rows()
	if rows[0][0] != "2" || rows[1][0] != "8" || rows[2][0] != "16" {
		t.Errorf("sorted rows: %v", rows)
	}
}
