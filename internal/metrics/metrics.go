// Package metrics provides the measurement substrate for the
// experiment harness: concurrency-safe counters, log-bucketed latency
// histograms with quantile estimation, and fixed-width table rendering
// for experiment output (the repo's replacement for the tables and
// figures the paper never included).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrency-safe counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a log-bucketed duration histogram: buckets are
// exponential with ~10% resolution, spanning 1µs to ~1000s. It is
// concurrency-safe and allocation-free on the record path: every field
// is an atomic, so concurrent recorders never serialize on a lock.
// Readers see each field atomically but the set of fields only
// approximately consistently — fine for monitoring, which is the
// intended use.
type Histogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	// min is stored offset by +1 so the zero value means "unset"
	// (observations are clamped non-negative, so real minima are ≥ 0).
	min atomic.Int64
	max atomic.Int64
}

const (
	bucketCount = 240
	// growth chosen so bucketCount buckets cover 1µs..~10⁹µs.
	growth = 1.1
)

func bucketFor(d time.Duration) int {
	us := float64(d.Microseconds())
	if us < 1 {
		return 0
	}
	b := int(math.Log(us) / math.Log(growth))
	if b < 0 {
		b = 0
	}
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

func bucketUpper(b int) time.Duration {
	us := math.Pow(growth, float64(b+1))
	return time.Duration(us) * time.Microsecond
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	enc := int64(d) + 1
	for {
		cur := h.min.Load()
		if cur != 0 && enc >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, enc) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()) / time.Duration(n)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() time.Duration {
	enc := h.min.Load()
	if enc == 0 {
		return 0
	}
	return time.Duration(enc - 1)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket containing it (≤10% overestimate by construction).
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	max := h.Max()
	target := uint64(q * float64(count))
	if target >= count {
		return max
	}
	var cum uint64
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum > target {
			up := bucketUpper(b)
			if up > max {
				return max
			}
			return up
		}
	}
	return max
}

// ForEachBucket calls fn for every non-empty bucket in ascending
// order, with the bucket's upper bound and its (non-cumulative)
// count. Exposition formats (Prometheus) rebuild cumulative counts
// from this.
func (h *Histogram) ForEachBucket(fn func(upper time.Duration, count uint64)) {
	for b := range h.buckets {
		if n := h.buckets[b].Load(); n > 0 {
			fn(bucketUpper(b), n)
		}
	}
}

// Snapshot captures the distribution's headline numbers.
type Snapshot struct {
	Count          uint64
	Mean, P50, P99 time.Duration
	Min, Max       time.Duration
}

// Snapshot returns the headline numbers in one lock acquisition-ish.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// Table accumulates experiment rows and renders them fixed-width —
// the output format of every T*/F* experiment.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are stringified with %v, durations in
// milliseconds, floats with 2 decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case time.Duration:
		return fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000)
	case float64:
		return fmt.Sprintf("%.2f", v)
	case float32:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%v", c)
	}
}

// Rows returns the accumulated rows (for tests and CSV export).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
	}
	sb.WriteByte('\n')
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortRowsByFirstColumn orders rows numerically when possible,
// lexically otherwise (stable presentation for map-driven sweeps).
func (t *Table) SortRowsByFirstColumn() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		var a, b float64
		_, errA := fmt.Sscanf(t.rows[i][0], "%f", &a)
		_, errB := fmt.Sscanf(t.rows[j][0], "%f", &b)
		if errA == nil && errB == nil {
			return a < b
		}
		return t.rows[i][0] < t.rows[j][0]
	})
}
