package tcpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/site"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wal"
	"dvp/internal/wire"

	"dvp/internal/core"
)

// pair builds two connected endpoints on loopback.
func pair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	e1, err := New(Config{Site: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{Site: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	e1.cfg.Peers = map[ident.SiteID]string{2: e2.Addr()}
	e2.cfg.Peers = map[ident.SiteID]string{1: e1.Addr()}
	t.Cleanup(func() { e1.Close(); e2.Close() })
	return e1, e2
}

func TestSendReceive(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan *wire.Envelope, 1)
	e2.SetHandler(func(env *wire.Envelope) { got <- env })
	env := &wire.Envelope{To: 2, Lamport: tstamp.Make(5, 1), Msg: &wire.VmAck{UpTo: 9}}
	if err := e1.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if g.From != 1 || g.Msg.(*wire.VmAck).UpTo != 9 || g.Lamport != tstamp.Make(5, 1) {
			t.Errorf("got %+v", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestLoopback(t *testing.T) {
	e1, _ := pair(t)
	got := make(chan *wire.Envelope, 1)
	e1.SetHandler(func(env *wire.Envelope) { got <- env })
	e1.Send(&wire.Envelope{To: 1, Msg: &wire.VmAck{UpTo: 1}})
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("loopback failed")
	}
}

func TestUnreachablePeerIsSilentLoss(t *testing.T) {
	e1, e2 := pair(t)
	e2.Close()
	env := &wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}}
	if err := e1.Send(env); err != nil {
		t.Errorf("unreachable peer must be silent loss, got %v", err)
	}
}

func TestUnknownSite(t *testing.T) {
	e1, _ := pair(t)
	if err := e1.Send(&wire.Envelope{To: 99, Msg: &wire.VmAck{}}); err == nil {
		t.Error("unknown site must error")
	}
}

func TestCloseReopen(t *testing.T) {
	e1, e2 := pair(t)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Open(); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	e2.SetHandler(func(*wire.Envelope) { got <- struct{}{} })
	// The sender's cached conn died with Close; first send may be
	// dropped, later sends reconnect.
	deadline := time.Now().Add(3 * time.Second)
	for {
		e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}})
		select {
		case <-got:
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("reopened endpoint never received")
		}
	}
}

func TestManyMessagesManyGoroutines(t *testing.T) {
	e1, e2 := pair(t)
	var count int
	var mu sync.Mutex
	e2.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const total = 500
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/5; i++ {
				e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}})
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d (TCP is reliable; all must arrive)", c, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWriterCoalescesBurst is the syscall-batching regression test: a
// burst of envelopes queued before the writer goroutine starts must
// leave as ONE flush (msgsOut counts envelopes, flushes counts syscall
// batches). Pre-filling the queue and then starting the loop makes the
// batch boundary deterministic — the drain loop writes every queued
// frame through the bufio.Writer before its single Flush.
func TestWriterCoalescesBurst(t *testing.T) {
	reg := obs.NewRegistry()
	e2, err := New(Config{Site: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e1, err := New(Config{
		Site: 1, Listen: "127.0.0.1:0",
		Peers:   map[ident.SiteID]string{2: e2.Addr()},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()

	var mu sync.Mutex
	var got int
	e2.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		got++
		mu.Unlock()
	})

	const burst = 10
	w := newPeerWriter(2, e2.Addr())
	for i := 0; i < burst; i++ {
		env := &wire.Envelope{From: 1, To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}}
		frame := wire.GetWriter()
		frame.U32(0)
		if err := env.MarshalInto(frame); err != nil {
			t.Fatal(err)
		}
		frame.PatchU32(0, uint32(frame.Len()-4))
		w.mu.Lock()
		w.push(outFrame{frame, wire.KVmAck})
		w.mu.Unlock()
	}
	w.signal()
	e1.mu.Lock()
	e1.writers[2] = w
	stop := e1.stop
	e1.mu.Unlock()
	e1.wg.Add(1)
	go e1.writerLoop(w, stop)

	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		c := got
		mu.Unlock()
		if c == burst {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d", c, burst)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := reg.CounterValue("dvp_net_msgs_out_total", "site", "s1", "peer", "s2"); n != burst {
		t.Errorf("msgsOut = %d, want %d", n, burst)
	}
	if n := reg.CounterValue("dvp_net_flushes_total", "site", "s1", "peer", "s2"); n != 1 {
		t.Errorf("flushes = %d, want 1 (the whole burst must share one syscall batch)", n)
	}
}

// TestAllocsPerEnvelope is the hot-path allocation regression test:
// one envelope, sender enqueue through receiver delivery, measured
// end to end on a warm connection. The pooled frame writers, the
// per-connection read header and the reusable body buffer together
// keep the steady-state cost to the decode-side allocations
// (envelope + message) plus scheduler noise; the ceiling here fails
// if any layer reintroduces a per-frame buffer.
func TestAllocsPerEnvelope(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan struct{}, 1)
	e2.SetHandler(func(*wire.Envelope) { got <- struct{}{} })
	env := &wire.Envelope{To: 2, Lamport: tstamp.Make(5, 1), Msg: &wire.VmAck{UpTo: 9}}
	send := func() {
		if err := e1.Send(env); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("envelope never arrived")
		}
	}
	send() // warm: dial, writer goroutine, read buffers, pool
	const ceiling = 16.0
	if allocs := testing.AllocsPerRun(200, send); allocs > ceiling {
		t.Errorf("send→deliver allocates %.1f allocs/envelope, ceiling %.0f", allocs, ceiling)
	}
}

// TestConcurrentSendersShareWriterPool hammers the pooled frame path
// from many goroutines at once — the scenario where a pool bug (a
// writer recycled while its bytes are still queued, a missed Reset)
// corrupts frames. Every envelope carries a distinct payload and every
// payload must arrive exactly once, intact. Run under -race this also
// proves the pool handoff is properly synchronized.
func TestConcurrentSendersShareWriterPool(t *testing.T) {
	const senders = 8
	const perSender = 100
	e1, e2 := pair(t)
	var mu sync.Mutex
	seen := make(map[uint64]int)
	e2.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		seen[env.Msg.(*wire.VmAck).UpTo]++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := uint64(s*perSender + i)
				if err := e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: id}}); err != nil {
					t.Errorf("send %d: %v", id, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == senders*perSender {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d distinct payloads", n, senders*perSender)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for id := uint64(0); id < senders*perSender; id++ {
		if seen[id] != 1 {
			t.Errorf("payload %d arrived %d times, want exactly 1 (TCP: no loss, no duplication)", id, seen[id])
		}
	}
}

// TestDvpSitesOverTCP runs the full DvP site engine over real sockets:
// the §3 redistribution flow end to end on localhost.
func TestDvpSitesOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	peers := []ident.SiteID{1, 2}
	mk := func(ep *Endpoint, id ident.SiteID) *site.Site {
		s, err := site.New(site.Config{
			ID: id, Peers: peers,
			Log: wal.NewMemLog(), DB: store.New(),
			Endpoint:        ep,
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 10 * time.Millisecond,
			DefaultTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		return s
	}
	s1 := mk(e1, 1)
	s2 := mk(e2, 2)
	s1.DB().Create("flight/A", 2)
	s2.DB().Create("flight/A", 20)

	// Needs redistribution over real TCP.
	res := s1.Run(&txn.Txn{
		Ops: []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 10}}},
		Ask: txn.AskAll,
	})
	if !res.Committed() {
		t.Fatalf("TCP redistribution txn: %v", res.Status)
	}
	if v := s1.DB().Value("flight/A") + s2.DB().Value("flight/A"); v != 12 {
		t.Errorf("on-site total = %d, want 12", v)
	}
}

// TestDemandAdvertOverTCP exercises the rebalancer's gossip message
// through the real framing path: encode, length-prefix, socket, decode.
func TestDemandAdvertOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan *wire.Envelope, 1)
	e2.SetHandler(func(env *wire.Envelope) { got <- env })
	adv := &wire.DemandAdvert{Entries: []wire.DemandEntry{
		{Item: "flight/A", Demand: 12500, Have: 40},
		{Item: "flight/B", Demand: 0, Have: 3},
	}}
	if err := e1.Send(&wire.Envelope{To: 2, Lamport: tstamp.Make(9, 1), Msg: adv}); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		m, ok := g.Msg.(*wire.DemandAdvert)
		if !ok {
			t.Fatalf("decoded %T, want *wire.DemandAdvert", g.Msg)
		}
		if len(m.Entries) != 2 || m.Entries[0] != adv.Entries[0] || m.Entries[1] != adv.Entries[1] {
			t.Errorf("entries = %+v, want %+v", m.Entries, adv.Entries)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("advert never arrived")
	}
}

// TestDemandRebalanceOverTCP runs the demand-driven rebalancer between
// two real-socket sites: committed consumption at one site builds a
// demand estimate, the adverts cross localhost, and the idle site's
// surplus follows — with no transaction ever asking for it.
func TestDemandRebalanceOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	peers := []ident.SiteID{1, 2}
	mk := func(ep *Endpoint, id ident.SiteID, share core.Value) *site.Site {
		s, err := site.New(site.Config{
			ID: id, Peers: peers,
			Log: wal.NewMemLog(), DB: store.New(),
			Endpoint:        ep,
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 10 * time.Millisecond,
			DefaultTimeout:  500 * time.Millisecond,
			Rebalance: site.RebalanceConfig{
				Enabled:     true,
				Interval:    5 * time.Millisecond,
				MinTransfer: 4,
				Cooldown:    10 * time.Millisecond,
				HalfLife:    200 * time.Millisecond,
				AdvertStale: 25 * time.Millisecond,
				Seed:        int64(id),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.DB().Create("flight/A", share)
		s.Start()
		return s
	}
	mk(e1, 1, 30)
	s2 := mk(e2, 2, 30)

	// All consumption happens at site 2 (purely local commits). Its
	// demand EWMA rises; site 1's stays zero; quota should drift to
	// where it is being spent.
	for i := 0; i < 4; i++ {
		res := s2.Run(&txn.Txn{
			Ops: []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 5}}},
		})
		if !res.Committed() {
			t.Fatalf("local decrement %d: %v", i, res.Status)
		}
	}
	// Site 2 is down to 10; the rebalancer must pull it back above 20
	// out of site 1's idle 30.
	deadline := time.Now().Add(3 * time.Second)
	for s2.DB().Value("flight/A") < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never shipped surplus: site2 holds %d", s2.DB().Value("flight/A"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeadPeerDialRateBounded is the dial-storm regression test: a
// steady stream of sends toward a closed port must cost one timed
// probe per backoff window, not one dial per frame. The same window
// with backoff disabled (the pre-hardening behavior, kept as an
// ablation knob) shows the storm the state machine prevents.
func TestDeadPeerDialRateBounded(t *testing.T) {
	// Reserve an address with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	run := func(backoffMin time.Duration) uint64 {
		reg := obs.NewRegistry()
		e, err := New(Config{
			Site: 1, Listen: "127.0.0.1:0",
			Peers:          map[ident.SiteID]string{2: deadAddr},
			Metrics:        reg,
			DialBackoffMin: backoffMin,
			DialBackoffMax: 80 * time.Millisecond,
			DialTimeout:    100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			e.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}})
			time.Sleep(time.Millisecond)
		}
		return reg.CounterValue("dvp_net_dial_failures_total", "site", "s1", "peer", "s2")
	}

	dials := run(10 * time.Millisecond)
	// Jittered doubling from 10ms capped at 80ms: worst case ~16
	// attempts in 500ms; 25 leaves room for scheduler noise.
	if dials < 1 || dials > 25 {
		t.Errorf("backoff: %d dial attempts in 500ms toward a dead peer, want 1..25", dials)
	}

	legacy := run(-1)
	if legacy < 50 {
		t.Errorf("ablation (backoff disabled) made only %d dials — the regression test would not catch a storm", legacy)
	}
}

// TestDeadPeerGoesDownAndSheds drives the peer state machine to
// "down" against a closed port and then checks the overflow policy
// frame by frame: the writer parks holding one frame for the backoff
// window, the queue fills, low-priority adverts are dropped (and
// counted) on overflow, and a high-priority ack evicts the oldest
// queued advert instead of being lost itself. Every drop must show up
// in dvp_net_dropped_frames_total and (sampled) the flight recorder.
func TestDeadPeerGoesDownAndSheds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	flight := obs.NewFlight(128)
	e, err := New(Config{
		Site: 1, Listen: "127.0.0.1:0",
		Peers:          map[ident.SiteID]string{2: deadAddr},
		Metrics:        reg,
		Flight:         flight,
		DialBackoffMin: 5 * time.Second, // park the writer after one failed dial
		DialTimeout:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	advert := func() *wire.Envelope {
		return &wire.Envelope{To: 2, Msg: &wire.DemandAdvert{
			Entries: []wire.DemandEntry{{Item: "flight/A", Demand: 1, Have: 1}},
		}}
	}

	// First frame: the writer pops it, fails the dial, and parks for
	// the 5s backoff window still holding it.
	if err := e.Send(advert()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.CounterValue("dvp_net_dial_failures_total", "site", "s1", "peer", "s2") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dial failure never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if st := e.PeerState(2); st != "suspect" {
		t.Errorf("after one failure peer state = %q, want suspect", st)
	}

	// Fill the queue exactly, then overflow it with 5 more adverts.
	for i := 0; i < peerWriterQueue+5; i++ {
		if err := e.Send(advert()); err != nil {
			t.Fatal(err)
		}
	}
	// Three acks arrive at the full queue: each must evict an advert.
	for i := 0; i < 3; i++ {
		if err := e.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}

	dropped := func(kind string) uint64 {
		return reg.CounterValue("dvp_net_dropped_frames_total",
			"site", "s1", "peer", "s2", "reason", "backlog", "kind", kind)
	}
	if n := dropped("demandadvert"); n != 8 {
		t.Errorf("advert backlog drops = %d, want 8 (5 overflow + 3 evicted by acks)", n)
	}
	if n := dropped("vmack"); n != 0 {
		t.Errorf("ack backlog drops = %d, want 0 (acks must displace adverts, not vanish)", n)
	}
	if flight.Recorded() == 0 {
		t.Error("drops left no flight-recorder events")
	}
	var sawDrop bool
	for _, ev := range flight.Last(16) {
		if ev.Kind == "net-drop" {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Error("flight recorder has no net-drop event")
	}
}

// TestNoShedPriorityDropsAcks checks the ablation knob: with priority
// shedding disabled, an ack arriving at a full queue is dropped like
// anything else.
func TestNoShedPriorityDropsAcks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	e, err := New(Config{
		Site: 1, Listen: "127.0.0.1:0",
		Peers:          map[ident.SiteID]string{2: deadAddr},
		Metrics:        reg,
		NoShedPriority: true,
		DialBackoffMin: 5 * time.Second,
		DialTimeout:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 0}})
	deadline := time.Now().Add(2 * time.Second)
	for reg.CounterValue("dvp_net_dial_failures_total", "site", "s1", "peer", "s2") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dial failure never counted")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < peerWriterQueue+2; i++ {
		e.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}})
	}
	n := reg.CounterValue("dvp_net_dropped_frames_total",
		"site", "s1", "peer", "s2", "reason", "backlog", "kind", "vmack")
	if n != 2 {
		t.Errorf("ack backlog drops = %d, want 2 with NoShedPriority", n)
	}
}

// TestDeadPeerRecoversThroughProbe is the heal path: the peer dies
// (nothing bound on its port), the sender's state machine marks it
// down, and when an endpoint binds the port again the half-open probe
// re-admits it — traffic resumes and the state returns to healthy.
func TestDeadPeerRecoversThroughProbe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	e1, err := New(Config{
		Site: 1, Listen: "127.0.0.1:0",
		Peers:          map[ident.SiteID]string{2: addr},
		Metrics:        reg,
		DialBackoffMin: 5 * time.Millisecond,
		DialBackoffMax: 40 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()

	// Drive the peer down.
	deadline := time.Now().Add(3 * time.Second)
	for e1.PeerState(2) != "down" {
		e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}})
		if time.Now().After(deadline) {
			t.Fatalf("peer never marked down (state %q)", e1.PeerState(2))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Heal: bind the reserved address for real.
	e2, err := New(Config{Site: 2, Listen: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	var mu sync.Mutex
	var got int
	e2.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		got++
		mu.Unlock()
	})

	// Keep sending; the probe must re-admit the peer and deliver.
	deadline = time.Now().Add(5 * time.Second)
	for {
		e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 2}})
		mu.Lock()
		c := got
		mu.Unlock()
		if c > 0 && e1.PeerState(2) == "healthy" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never recovered: state %q, delivered %d", e1.PeerState(2), c)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Accounting sanity after the failure/heal cycle: every flush
	// carried at least one message.
	msgs := reg.CounterValue("dvp_net_msgs_out_total", "site", "s1", "peer", "s2")
	flushes := reg.CounterValue("dvp_net_flushes_total", "site", "s1", "peer", "s2")
	if msgs == 0 || flushes == 0 || msgs < flushes {
		t.Errorf("inconsistent counters after heal: msgsOut=%d flushes=%d", msgs, flushes)
	}
}
