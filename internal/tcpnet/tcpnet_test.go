package tcpnet

import (
	"sync"
	"testing"
	"time"

	"dvp/internal/cc"
	"dvp/internal/ident"
	"dvp/internal/obs"
	"dvp/internal/site"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/wal"
	"dvp/internal/wire"

	"dvp/internal/core"
)

// pair builds two connected endpoints on loopback.
func pair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	e1, err := New(Config{Site: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{Site: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	e1.cfg.Peers = map[ident.SiteID]string{2: e2.Addr()}
	e2.cfg.Peers = map[ident.SiteID]string{1: e1.Addr()}
	t.Cleanup(func() { e1.Close(); e2.Close() })
	return e1, e2
}

func TestSendReceive(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan *wire.Envelope, 1)
	e2.SetHandler(func(env *wire.Envelope) { got <- env })
	env := &wire.Envelope{To: 2, Lamport: tstamp.Make(5, 1), Msg: &wire.VmAck{UpTo: 9}}
	if err := e1.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if g.From != 1 || g.Msg.(*wire.VmAck).UpTo != 9 || g.Lamport != tstamp.Make(5, 1) {
			t.Errorf("got %+v", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestLoopback(t *testing.T) {
	e1, _ := pair(t)
	got := make(chan *wire.Envelope, 1)
	e1.SetHandler(func(env *wire.Envelope) { got <- env })
	e1.Send(&wire.Envelope{To: 1, Msg: &wire.VmAck{UpTo: 1}})
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("loopback failed")
	}
}

func TestUnreachablePeerIsSilentLoss(t *testing.T) {
	e1, e2 := pair(t)
	e2.Close()
	env := &wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}}
	if err := e1.Send(env); err != nil {
		t.Errorf("unreachable peer must be silent loss, got %v", err)
	}
}

func TestUnknownSite(t *testing.T) {
	e1, _ := pair(t)
	if err := e1.Send(&wire.Envelope{To: 99, Msg: &wire.VmAck{}}); err == nil {
		t.Error("unknown site must error")
	}
}

func TestCloseReopen(t *testing.T) {
	e1, e2 := pair(t)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Open(); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	e2.SetHandler(func(*wire.Envelope) { got <- struct{}{} })
	// The sender's cached conn died with Close; first send may be
	// dropped, later sends reconnect.
	deadline := time.Now().Add(3 * time.Second)
	for {
		e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: 1}})
		select {
		case <-got:
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("reopened endpoint never received")
		}
	}
}

func TestManyMessagesManyGoroutines(t *testing.T) {
	e1, e2 := pair(t)
	var count int
	var mu sync.Mutex
	e2.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const total = 500
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/5; i++ {
				e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}})
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d (TCP is reliable; all must arrive)", c, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWriterCoalescesBurst is the syscall-batching regression test: a
// burst of envelopes queued before the writer goroutine starts must
// leave as ONE flush (msgsOut counts envelopes, flushes counts syscall
// batches). Pre-filling the queue and then starting the loop makes the
// batch boundary deterministic — the drain loop writes every queued
// frame through the bufio.Writer before its single Flush.
func TestWriterCoalescesBurst(t *testing.T) {
	reg := obs.NewRegistry()
	e2, err := New(Config{Site: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e1, err := New(Config{
		Site: 1, Listen: "127.0.0.1:0",
		Peers:   map[ident.SiteID]string{2: e2.Addr()},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()

	var mu sync.Mutex
	var got int
	e2.SetHandler(func(*wire.Envelope) {
		mu.Lock()
		got++
		mu.Unlock()
	})

	const burst = 10
	w := &peerWriter{site: 2, addr: e2.Addr(), frames: make(chan *wire.Writer, burst)}
	for i := 0; i < burst; i++ {
		env := &wire.Envelope{From: 1, To: 2, Msg: &wire.VmAck{UpTo: uint64(i)}}
		frame := wire.GetWriter()
		frame.U32(0)
		if err := env.MarshalInto(frame); err != nil {
			t.Fatal(err)
		}
		frame.PatchU32(0, uint32(frame.Len()-4))
		w.frames <- frame
	}
	e1.mu.Lock()
	e1.writers[2] = w
	stop := e1.stop
	e1.mu.Unlock()
	e1.wg.Add(1)
	go e1.writerLoop(w, stop)

	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		c := got
		mu.Unlock()
		if c == burst {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d", c, burst)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := reg.CounterValue("dvp_net_msgs_out_total", "site", "s1", "peer", "s2"); n != burst {
		t.Errorf("msgsOut = %d, want %d", n, burst)
	}
	if n := reg.CounterValue("dvp_net_flushes_total", "site", "s1", "peer", "s2"); n != 1 {
		t.Errorf("flushes = %d, want 1 (the whole burst must share one syscall batch)", n)
	}
}

// TestAllocsPerEnvelope is the hot-path allocation regression test:
// one envelope, sender enqueue through receiver delivery, measured
// end to end on a warm connection. The pooled frame writers, the
// per-connection read header and the reusable body buffer together
// keep the steady-state cost to the decode-side allocations
// (envelope + message) plus scheduler noise; the ceiling here fails
// if any layer reintroduces a per-frame buffer.
func TestAllocsPerEnvelope(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan struct{}, 1)
	e2.SetHandler(func(*wire.Envelope) { got <- struct{}{} })
	env := &wire.Envelope{To: 2, Lamport: tstamp.Make(5, 1), Msg: &wire.VmAck{UpTo: 9}}
	send := func() {
		if err := e1.Send(env); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("envelope never arrived")
		}
	}
	send() // warm: dial, writer goroutine, read buffers, pool
	const ceiling = 16.0
	if allocs := testing.AllocsPerRun(200, send); allocs > ceiling {
		t.Errorf("send→deliver allocates %.1f allocs/envelope, ceiling %.0f", allocs, ceiling)
	}
}

// TestConcurrentSendersShareWriterPool hammers the pooled frame path
// from many goroutines at once — the scenario where a pool bug (a
// writer recycled while its bytes are still queued, a missed Reset)
// corrupts frames. Every envelope carries a distinct payload and every
// payload must arrive exactly once, intact. Run under -race this also
// proves the pool handoff is properly synchronized.
func TestConcurrentSendersShareWriterPool(t *testing.T) {
	const senders = 8
	const perSender = 100
	e1, e2 := pair(t)
	var mu sync.Mutex
	seen := make(map[uint64]int)
	e2.SetHandler(func(env *wire.Envelope) {
		mu.Lock()
		seen[env.Msg.(*wire.VmAck).UpTo]++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := uint64(s*perSender + i)
				if err := e1.Send(&wire.Envelope{To: 2, Msg: &wire.VmAck{UpTo: id}}); err != nil {
					t.Errorf("send %d: %v", id, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == senders*perSender {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d distinct payloads", n, senders*perSender)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for id := uint64(0); id < senders*perSender; id++ {
		if seen[id] != 1 {
			t.Errorf("payload %d arrived %d times, want exactly 1 (TCP: no loss, no duplication)", id, seen[id])
		}
	}
}

// TestDvpSitesOverTCP runs the full DvP site engine over real sockets:
// the §3 redistribution flow end to end on localhost.
func TestDvpSitesOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	peers := []ident.SiteID{1, 2}
	mk := func(ep *Endpoint, id ident.SiteID) *site.Site {
		s, err := site.New(site.Config{
			ID: id, Peers: peers,
			Log: wal.NewMemLog(), DB: store.New(),
			Endpoint:        ep,
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 10 * time.Millisecond,
			DefaultTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		return s
	}
	s1 := mk(e1, 1)
	s2 := mk(e2, 2)
	s1.DB().Create("flight/A", 2)
	s2.DB().Create("flight/A", 20)

	// Needs redistribution over real TCP.
	res := s1.Run(&txn.Txn{
		Ops: []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 10}}},
		Ask: txn.AskAll,
	})
	if !res.Committed() {
		t.Fatalf("TCP redistribution txn: %v", res.Status)
	}
	if v := s1.DB().Value("flight/A") + s2.DB().Value("flight/A"); v != 12 {
		t.Errorf("on-site total = %d, want 12", v)
	}
}

// TestDemandAdvertOverTCP exercises the rebalancer's gossip message
// through the real framing path: encode, length-prefix, socket, decode.
func TestDemandAdvertOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	got := make(chan *wire.Envelope, 1)
	e2.SetHandler(func(env *wire.Envelope) { got <- env })
	adv := &wire.DemandAdvert{Entries: []wire.DemandEntry{
		{Item: "flight/A", Demand: 12500, Have: 40},
		{Item: "flight/B", Demand: 0, Have: 3},
	}}
	if err := e1.Send(&wire.Envelope{To: 2, Lamport: tstamp.Make(9, 1), Msg: adv}); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		m, ok := g.Msg.(*wire.DemandAdvert)
		if !ok {
			t.Fatalf("decoded %T, want *wire.DemandAdvert", g.Msg)
		}
		if len(m.Entries) != 2 || m.Entries[0] != adv.Entries[0] || m.Entries[1] != adv.Entries[1] {
			t.Errorf("entries = %+v, want %+v", m.Entries, adv.Entries)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("advert never arrived")
	}
}

// TestDemandRebalanceOverTCP runs the demand-driven rebalancer between
// two real-socket sites: committed consumption at one site builds a
// demand estimate, the adverts cross localhost, and the idle site's
// surplus follows — with no transaction ever asking for it.
func TestDemandRebalanceOverTCP(t *testing.T) {
	e1, e2 := pair(t)
	peers := []ident.SiteID{1, 2}
	mk := func(ep *Endpoint, id ident.SiteID, share core.Value) *site.Site {
		s, err := site.New(site.Config{
			ID: id, Peers: peers,
			Log: wal.NewMemLog(), DB: store.New(),
			Endpoint:        ep,
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 10 * time.Millisecond,
			DefaultTimeout:  500 * time.Millisecond,
			Rebalance: site.RebalanceConfig{
				Enabled:     true,
				Interval:    5 * time.Millisecond,
				MinTransfer: 4,
				Cooldown:    10 * time.Millisecond,
				HalfLife:    200 * time.Millisecond,
				AdvertStale: 25 * time.Millisecond,
				Seed:        int64(id),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.DB().Create("flight/A", share)
		s.Start()
		return s
	}
	mk(e1, 1, 30)
	s2 := mk(e2, 2, 30)

	// All consumption happens at site 2 (purely local commits). Its
	// demand EWMA rises; site 1's stays zero; quota should drift to
	// where it is being spent.
	for i := 0; i < 4; i++ {
		res := s2.Run(&txn.Txn{
			Ops: []txn.ItemOp{{Item: "flight/A", Op: core.Decr{M: 5}}},
		})
		if !res.Committed() {
			t.Fatalf("local decrement %d: %v", i, res.Status)
		}
	}
	// Site 2 is down to 10; the rebalancer must pull it back above 20
	// out of site 1's idle 30.
	deadline := time.Now().Add(3 * time.Second)
	for s2.DB().Value("flight/A") < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never shipped surplus: site2 holds %d", s2.DB().Value("flight/A"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
