// Package tcpnet is the real-network counterpart of internal/simnet:
// the same wire.Endpoint interface over TCP sockets, so the DvP site
// engine runs unchanged as separate OS processes (cmd/dvpnode).
//
// Semantics deliberately match the failure model the protocol assumes:
// Send is best-effort — if the peer is unreachable the message is
// silently dropped (the Vm layer's retransmission owns reliability).
// Connections are dialed lazily, kept for reuse, and torn down on any
// error; frames are length-prefixed envelopes.
//
// Peer failure is first-class: each peer runs a small connection state
// machine (healthy → suspect → down) with exponential backoff + jitter
// between redials, so a dead peer costs one timed probe per backoff
// window — never one dial per frame. A peer recovering from down is
// re-admitted through a half-open probe (one frame, flushed alone)
// before normal batching resumes. When a peer's queue overflows, drops
// are priority-aware: frames that carry or acknowledge value (Vm,
// VmBatch, VmAck) evict queued Requests and adverts rather than being
// lost themselves. Every drop, whatever the path, is counted in
// dvp_net_dropped_frames_total{reason,kind} and surfaced (sampled) in
// the flight recorder.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/wire"
)

// Config assembles an endpoint.
type Config struct {
	// Site is the local site id.
	Site ident.SiteID
	// Listen is the local listen address (e.g. ":7101").
	Listen string
	// Peers maps every other site to its address.
	Peers map[ident.SiteID]string
	// DialTimeout bounds connection attempts (default 500ms).
	DialTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default 1 MiB).
	MaxFrame uint32
	// DialBackoffMin is the delay before the first redial after a
	// failed dial or write (default 25ms). Consecutive failures double
	// it up to DialBackoffMax, with ±50% jitter so peers redialing a
	// recovered site don't arrive in lockstep. Negative disables the
	// backoff machine entirely — every queued frame retries the dial,
	// the pre-hardening behavior — and exists for ablation runs (N1).
	DialBackoffMin time.Duration
	// DialBackoffMax caps the redial backoff (default 2s).
	DialBackoffMax time.Duration
	// DownAfter is how many consecutive failures move a peer from
	// suspect to down (default 3). A down peer's first successful dial
	// runs a half-open probe — one frame, flushed alone — and only the
	// probe's clean flush restores the peer to healthy.
	DownAfter int
	// NoShedPriority makes queue overflow drop the incoming frame
	// regardless of kind (the pre-hardening policy) instead of
	// preferring to evict a queued Request over an ack or Vm.
	// Ablation knob for the N1 experiment.
	NoShedPriority bool
	// Metrics, when set, registers per-peer traffic counters
	// (dvp_net_{bytes,msgs}_{in,out}_total, dvp_net_dial_failures_total,
	// dvp_net_flushes_total), the peer state gauge (dvp_net_peer_state:
	// 0 healthy, 1 suspect, 2 down) and the drop counter
	// (dvp_net_dropped_frames_total{reason,kind}) with the registry,
	// labelled site=<self> and peer=<id>.
	Metrics *obs.Registry
	// Flight, when set, records peer lifecycle transitions
	// (net-peer-down, net-peer-up) and sampled frame drops (net-drop)
	// into the flight recorder.
	Flight *obs.Flight
}

// Peer connection states, exposed via the dvp_net_peer_state gauge and
// PeerState.
const (
	peerHealthy int32 = iota
	peerSuspect
	peerDown
)

func stateName(s int32) string {
	switch s {
	case peerSuspect:
		return "suspect"
	case peerDown:
		return "down"
	default:
		return "healthy"
	}
}

// peerCounters holds one remote site's traffic counters. Outbound
// counts cover frames actually written to a socket (loopback sends are
// excluded); inbound counts cover every decoded envelope delivered to
// the handler, attributed to its From site. flushes counts syscall
// batches: msgsOut/flushes is the write-coalescing factor.
type peerCounters struct {
	bytesOut, msgsOut *metrics.Counter
	bytesIn, msgsIn   *metrics.Counter
	dialFailures      *metrics.Counter
	flushes           *metrics.Counter
}

// outFrame pairs a pooled framed envelope with its message kind — the
// kind drives priority shedding and labels the drop counter.
type outFrame struct {
	w    *wire.Writer
	kind wire.Kind
}

// peerWriter owns one peer's outbound connection: Send enqueues a
// framed envelope; the writer goroutine dials lazily (respecting the
// backoff state machine), streams frames through a bufio.Writer, and
// flushes when the queue goes momentarily idle — so a burst of
// envelopes (a request fan-out, a retransmission sweep) leaves in one
// syscall batch, while a lone envelope still flushes immediately.
type peerWriter struct {
	site ident.SiteID
	addr string

	// q is the bounded outbound queue: frames [head:len) await the
	// writer goroutine, which owns popping; ownership of each pooled
	// writer passes to whoever removes it from the queue (pop, evict,
	// shutdown drain).
	mu   sync.Mutex
	q    []outFrame
	head int

	// wake nudges the writer goroutine after an enqueue (1-buffered:
	// one pending wakeup is enough, the drain loop empties the queue).
	wake chan struct{}

	// state is the connection state machine's current state, atomic so
	// the metrics gauge and PeerState read it without the queue lock.
	state atomic.Int32
	// drops counts this writer's dropped frames (flight sampling).
	drops atomic.Uint64

	// Dial/backoff state, owned exclusively by the writer goroutine.
	failures int
	nextDial time.Time
}

func newPeerWriter(site ident.SiteID, addr string) *peerWriter {
	return &peerWriter{site: site, addr: addr, wake: make(chan struct{}, 1)}
}

// count is the queued-frame count; callers hold w.mu.
func (w *peerWriter) count() int { return len(w.q) - w.head }

// push appends under w.mu, compacting the drained prefix instead of
// letting append grow the backing array past the queue bound.
func (w *peerWriter) push(f outFrame) {
	if w.head > 0 && len(w.q) == cap(w.q) {
		n := copy(w.q, w.q[w.head:])
		w.q = w.q[:n]
		w.head = 0
	}
	w.q = append(w.q, f)
}

// evictLowPriority removes and returns the oldest queued low-priority
// frame, making room for a high-priority one; callers hold w.mu.
func (w *peerWriter) evictLowPriority() (outFrame, bool) {
	for i := w.head; i < len(w.q); i++ {
		if !highPriority(w.q[i].kind) {
			f := w.q[i]
			copy(w.q[i:], w.q[i+1:])
			w.q[len(w.q)-1] = outFrame{}
			w.q = w.q[:len(w.q)-1]
			return f, true
		}
	}
	return outFrame{}, false
}

func (w *peerWriter) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// next blocks until a frame is queued or stop closes.
func (w *peerWriter) next(stop <-chan struct{}) (outFrame, bool) {
	for {
		if f, ok := w.tryNext(); ok {
			return f, true
		}
		select {
		case <-stop:
			return outFrame{}, false
		case <-w.wake:
		}
	}
}

// tryNext pops the oldest queued frame without blocking.
func (w *peerWriter) tryNext() (outFrame, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.q) {
		w.q = w.q[:0]
		w.head = 0
		return outFrame{}, false
	}
	f := w.q[w.head]
	w.q[w.head] = outFrame{}
	w.head++
	return f, true
}

// drainInto returns every still-queued frame to the pool at writer
// shutdown: a Close with frames in flight is loss, and counted as such.
func (w *peerWriter) drainInto(e *Endpoint) {
	w.mu.Lock()
	rest := append([]outFrame(nil), w.q[w.head:]...)
	w.q = nil
	w.head = 0
	w.mu.Unlock()
	for _, f := range rest {
		e.dropFrame(w, f.w, f.kind, "closed")
	}
}

// highPriority marks the frames retained in preference under overflow:
// the redistribution traffic itself (Vm, VmBatch) and the cumulative
// acks that retire it (VmAck) — the messages that unblock remote quota
// (§5, §8). Requests, demand adverts and everything else can be shed:
// the protocol regenerates them (requester timeout and re-ask, next
// gossip interval), while a shed Vm or ack costs a full retransmission
// backoff round trip on an already congested link.
func highPriority(k wire.Kind) bool {
	switch k {
	case wire.KVm, wire.KVmBatch, wire.KVmAck:
		return true
	}
	return false
}

// peerWriterQueue bounds the outbound backlog per peer; overflow sheds
// by priority (the model's message loss — retransmission owns
// reliability).
const peerWriterQueue = 1024

// dropSampleEvery paces flight-recorder drop events: the first drop
// per peer writer is always recorded, then one in every
// dropSampleEvery (the running total rides along, so nothing is lost).
const dropSampleEvery = 64

// Endpoint implements wire.Endpoint over TCP.
type Endpoint struct {
	cfg   Config
	peerm map[ident.SiteID]*peerCounters // mutated only under mu (SetPeers)

	mu       sync.Mutex
	handler  wire.Handler
	listener net.Listener
	conns    map[ident.SiteID]net.Conn
	writers  map[ident.SiteID]*peerWriter
	stop     chan struct{} // closed to stop this generation's writers
	accepted map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates and opens an endpoint: it binds the listen address and
// starts accepting peer connections.
func New(cfg Config) (*Endpoint, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = 1 << 20
	}
	if cfg.DialBackoffMin == 0 {
		cfg.DialBackoffMin = 25 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 2 * time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	e := &Endpoint{
		cfg:      cfg,
		peerm:    make(map[ident.SiteID]*peerCounters, len(cfg.Peers)),
		conns:    make(map[ident.SiteID]net.Conn),
		accepted: make(map[net.Conn]bool),
	}
	if cfg.Metrics != nil {
		for p := range cfg.Peers {
			e.registerPeer(p)
		}
	}
	if err := e.Open(); err != nil {
		return nil, err
	}
	return e, nil
}

// registerPeer installs one peer's counters and state gauge. Callers
// hold e.mu (or run before the endpoint is shared) and have checked
// that cfg.Metrics is set and the peer is not yet registered.
func (e *Endpoint) registerPeer(p ident.SiteID) {
	self := e.cfg.Site.String()
	pl := p.String()
	e.peerm[p] = &peerCounters{
		bytesOut:     e.cfg.Metrics.Counter("dvp_net_bytes_out_total", "site", self, "peer", pl),
		msgsOut:      e.cfg.Metrics.Counter("dvp_net_msgs_out_total", "site", self, "peer", pl),
		bytesIn:      e.cfg.Metrics.Counter("dvp_net_bytes_in_total", "site", self, "peer", pl),
		msgsIn:       e.cfg.Metrics.Counter("dvp_net_msgs_in_total", "site", self, "peer", pl),
		dialFailures: e.cfg.Metrics.Counter("dvp_net_dial_failures_total", "site", self, "peer", pl),
		flushes:      e.cfg.Metrics.Counter("dvp_net_flushes_total", "site", self, "peer", pl),
	}
	peer := p
	e.cfg.Metrics.GaugeFunc("dvp_net_peer_state",
		func() float64 { return float64(e.peerStateValue(peer)) },
		"site", self, "peer", pl)
}

// Site implements wire.Endpoint.
func (e *Endpoint) Site() ident.SiteID { return e.cfg.Site }

// Addr returns the bound listen address (useful with ":0").
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// SetPeers installs the peer address map after construction, for
// callers that bind every endpoint on an ephemeral port first and only
// then know the full mesh (in-process clusters, tests). Must be called
// before any traffic flows.
func (e *Endpoint) SetPeers(addrs map[ident.SiteID]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Peers = addrs
	if e.cfg.Metrics == nil {
		return
	}
	for p := range addrs {
		if _, ok := e.peerm[p]; ok {
			continue
		}
		e.registerPeer(p)
	}
}

// peerStateValue reads peer's connection state for the gauge: a peer
// with no writer yet has never failed, i.e. healthy.
func (e *Endpoint) peerStateValue(peer ident.SiteID) int32 {
	e.mu.Lock()
	w := e.writers[peer]
	e.mu.Unlock()
	if w == nil {
		return peerHealthy
	}
	return w.state.Load()
}

// PeerState reports the connection state machine's view of peer:
// "healthy", "suspect" or "down".
func (e *Endpoint) PeerState(peer ident.SiteID) string {
	return stateName(e.peerStateValue(peer))
}

// SetHandler implements wire.Endpoint.
func (e *Endpoint) SetHandler(h wire.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Open implements wire.Endpoint: bind and accept. Reopening after
// Close rebinds the same address.
func (e *Endpoint) Open() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener != nil && !e.closed {
		return nil
	}
	ln, err := net.Listen("tcp", e.cfg.Listen)
	if err != nil {
		return fmt.Errorf("tcpnet: listen %s: %w", e.cfg.Listen, err)
	}
	// Remember the concrete address so ":0" survives reopen.
	e.cfg.Listen = ln.Addr().String()
	e.listener = ln
	e.closed = false
	e.stop = make(chan struct{})
	e.writers = make(map[ident.SiteID]*peerWriter)
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return nil
}

// Close implements wire.Endpoint: stop listening, drop connections.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ln := e.listener
	conns := e.conns
	e.conns = make(map[ident.SiteID]net.Conn)
	accepted := e.accepted
	e.accepted = make(map[net.Conn]bool)
	if e.stop != nil {
		close(e.stop) // writers of this generation exit
		e.stop = nil
	}
	e.writers = nil
	e.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Accepted connections must be closed too, or their read loops
	// (blocked in ReadFull) would never exit and Close would hang.
	for c := range accepted {
		c.Close()
	}
	e.wg.Wait()
	e.mu.Lock()
	e.listener = nil
	e.mu.Unlock()
	return nil
}

// Send implements wire.Endpoint: best-effort framed write; the frame
// is handed to the peer's writer goroutine, which coalesces queued
// frames into one buffered write + flush. A full queue sheds by
// priority (loss, per the model) and Send never blocks on the network.
func (e *Endpoint) Send(env *wire.Envelope) error {
	env.From = e.cfg.Site
	if env.To == e.cfg.Site {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return wire.ErrClosed
		}
		// Loopback without touching the network. deliver decodes the
		// frame synchronously and Unmarshal copies everything the
		// handler may retain, so the pooled encode scratch is free for
		// reuse the moment it returns.
		w := wire.GetWriter()
		err := env.MarshalInto(w)
		if err == nil {
			e.deliver(w.Bytes())
		}
		wire.PutWriter(w)
		return err
	}
	addr, ok := e.cfg.Peers[env.To]
	if !ok {
		return fmt.Errorf("%w: %v", wire.ErrUnknownSite, env.To)
	}
	// Encode [u32 length][envelope] straight into a pooled writer; on
	// a successful enqueue its ownership passes to the writer goroutine.
	frame := wire.GetWriter()
	frame.U32(0)
	if err := env.MarshalInto(frame); err != nil {
		wire.PutWriter(frame)
		return err
	}
	frame.PatchU32(0, uint32(frame.Len()-4))

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		wire.PutWriter(frame)
		return wire.ErrClosed
	}
	w, ok := e.writers[env.To]
	if !ok {
		w = newPeerWriter(env.To, addr)
		e.writers[env.To] = w
		stop := e.stop
		e.wg.Add(1)
		go e.writerLoop(w, stop)
	}
	e.mu.Unlock()

	e.enqueue(w, frame, env.Msg.Kind())
	return nil
}

// enqueue hands a framed envelope to the peer's writer, shedding by
// priority on overflow: a high-priority frame (see highPriority)
// evicts the oldest queued low-priority frame rather than being
// dropped itself; a low-priority arrival at a full queue is dropped
// outright. Every drop is counted by reason and kind.
func (e *Endpoint) enqueue(w *peerWriter, frame *wire.Writer, kind wire.Kind) {
	w.mu.Lock()
	if w.count() < peerWriterQueue {
		w.push(outFrame{frame, kind})
		w.mu.Unlock()
		w.signal()
		return
	}
	if e.cfg.NoShedPriority || !highPriority(kind) {
		w.mu.Unlock()
		e.dropFrame(w, frame, kind, "backlog")
		return
	}
	victim, ok := w.evictLowPriority()
	if !ok {
		// Queue full of equally important frames: the newest loses.
		w.mu.Unlock()
		e.dropFrame(w, frame, kind, "backlog")
		return
	}
	w.push(outFrame{frame, kind})
	w.mu.Unlock()
	w.signal()
	e.dropFrame(w, victim.w, victim.kind, "backlog")
}

// dropFrame returns a frame to the pool and accounts for the loss:
// the drop counter always, the flight recorder on a sample (first drop
// per writer, then one in dropSampleEvery, running total attached).
func (e *Endpoint) dropFrame(w *peerWriter, frame *wire.Writer, kind wire.Kind, reason string) {
	wire.PutWriter(frame)
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Counter("dvp_net_dropped_frames_total",
			"site", e.cfg.Site.String(), "peer", w.site.String(),
			"reason", reason, "kind", kind.String()).Inc()
	}
	n := w.drops.Add(1)
	if n == 1 || n%dropSampleEvery == 0 {
		e.cfg.Flight.Recordf(e.cfg.Site.String(), "net-drop",
			"peer=%v reason=%s kind=%v dropped=%d", w.site, reason, kind, n)
	}
}

// noteFailure advances the peer state machine after a failed dial or a
// write/flush error: consecutive failures escalate healthy → suspect →
// down (at DownAfter) and stretch the redial backoff exponentially
// with ±50% jitter, up to DialBackoffMax. Writer goroutine only.
func (e *Endpoint) noteFailure(w *peerWriter) {
	w.failures++
	prev := w.state.Load()
	next := peerSuspect
	if w.failures >= e.cfg.DownAfter {
		next = peerDown
	}
	w.state.Store(next)
	if e.cfg.DialBackoffMin >= 0 {
		backoff := e.cfg.DialBackoffMax
		if shift := w.failures - 1; shift < 20 {
			if b := e.cfg.DialBackoffMin << shift; b < backoff {
				backoff = b
			}
		}
		backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		w.nextDial = time.Now().Add(backoff)
	}
	if next == peerDown && prev != peerDown {
		e.cfg.Flight.Recordf(e.cfg.Site.String(), "net-peer-down",
			"peer=%v failures=%d", w.site, w.failures)
	}
}

// noteHealthy resets the peer state machine after a clean flush.
// Writer goroutine only.
func (e *Endpoint) noteHealthy(w *peerWriter) {
	if w.state.Load() == peerHealthy {
		return
	}
	w.state.Store(peerHealthy)
	w.failures = 0
	w.nextDial = time.Time{}
	e.cfg.Flight.Recordf(e.cfg.Site.String(), "net-peer-up", "peer=%v", w.site)
}

// writerLoop streams one peer's frames: lazy dial behind the backoff
// state machine, buffered writes, flush when the queue goes idle. A
// dial failure holds the frame and waits out the backoff window (at
// most one dial in flight per peer, one timed probe per window); a
// write error drops the connection and the in-flight frames (loss).
// With backoff disabled (DialBackoffMin < 0, ablations only) a dial
// failure drops the frame and the next frame redials — the
// pre-hardening dial-per-frame behavior.
func (e *Endpoint) writerLoop(w *peerWriter, stop <-chan struct{}) {
	defer e.wg.Done()
	defer w.drainInto(e)
	var conn net.Conn
	var bw *bufio.Writer
	pc := e.peerm[w.site]
	drop := func() {
		if conn != nil {
			e.forgetConn(w.site, conn)
			conn = nil
			bw = nil
		}
	}
	defer drop()
	for {
		f, ok := w.next(stop)
		if !ok {
			return
		}
		probe := false
		for conn == nil {
			// Honor the backoff window before redialing; frames keep
			// queueing (and shedding) behind the held one meanwhile.
			if wait := time.Until(w.nextDial); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-stop:
					t.Stop()
					e.dropFrame(w, f.w, f.kind, "closed")
					return
				case <-t.C:
				}
			}
			c, err := net.DialTimeout("tcp", w.addr, e.cfg.DialTimeout)
			if err != nil {
				if pc != nil {
					pc.dialFailures.Inc()
				}
				e.noteFailure(w)
				if e.cfg.DialBackoffMin < 0 {
					e.dropFrame(w, f.w, f.kind, "dial-fail")
					f = outFrame{}
					break
				}
				continue
			}
			if !e.rememberConn(w.site, c) {
				c.Close()
				e.dropFrame(w, f.w, f.kind, "closed")
				return // endpoint closed under us
			}
			// Coming back from down runs half-open: the held frame goes
			// out alone, and only its clean flush restores healthy.
			probe = w.state.Load() == peerDown
			conn = c
			bw = bufio.NewWriterSize(conn, 64<<10)
		}
		if f.w == nil {
			continue // backoff-disabled dial failure dropped it
		}
		// Write the frame plus everything already queued behind it,
		// then flush the batch with one syscall (well, one Flush).
		batched := 0
		var batchBytes uint64
		failed := false
		for {
			// bufio consumes the bytes before Write returns (copied or
			// written through), so the frame goes back to the pool
			// either way.
			n := f.w.Len()
			_, err := bw.Write(f.w.Bytes())
			if err != nil {
				e.dropFrame(w, f.w, f.kind, "write-error")
				drop()
				e.noteFailure(w)
				failed = true
				break
			}
			wire.PutWriter(f.w)
			batched++
			batchBytes += uint64(n)
			if probe {
				break
			}
			var more bool
			if f, more = w.tryNext(); !more {
				break
			}
		}
		if !failed && bw != nil && bw.Buffered() > 0 {
			if err := bw.Flush(); err != nil {
				drop()
				e.noteFailure(w)
				failed = true
			}
		}
		// The batch counters must agree with what was handed to bufio
		// even when the flush fails: bytes it already wrote through hit
		// the socket, and the failure itself is visible in the drop
		// counter and the peer state — not as vanished accounting.
		if pc != nil && batched > 0 {
			pc.msgsOut.Add(uint64(batched))
			pc.bytesOut.Add(batchBytes)
			pc.flushes.Inc()
		}
		if !failed && batched > 0 {
			e.noteHealthy(w)
		}
	}
}

// rememberConn registers a writer's live connection so Close can
// unblock it; reports false if the endpoint is already closed.
func (e *Endpoint) rememberConn(site ident.SiteID, conn net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.conns[site] = conn
	return true
}

// forgetConn drops a writer's dead connection from the registry.
func (e *Endpoint) forgetConn(site ident.SiteID, conn net.Conn) {
	e.mu.Lock()
	if e.conns[site] == conn {
		delete(e.conns, site)
	}
	e.mu.Unlock()
	conn.Close()
}

func (e *Endpoint) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
	}()
	// Both buffers live on the connection, not per frame: deliver
	// decodes synchronously and wire.Unmarshal copies everything the
	// handler retains, so the body buffer is free for the next frame as
	// soon as deliver returns. It grows to the largest frame seen and
	// is reallocated small again after an outsized one, so a single
	// huge frame doesn't pin its memory for the connection's lifetime.
	hdr := make([]byte, 4)
	var buf []byte
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > e.cfg.MaxFrame {
			return // corrupt or hostile peer
		}
		if cap(buf) < int(n) || cap(buf) > readBufRetain && int(n) <= readBufRetain {
			buf = make([]byte, n)
		} else {
			buf = buf[:n]
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		e.deliver(buf)
	}
}

// readBufRetain bounds the per-connection read buffer kept across
// frames; see readLoop.
const readBufRetain = 64 << 10

func (e *Endpoint) deliver(buf []byte) {
	e.mu.Lock()
	h := e.handler
	closed := e.closed
	e.mu.Unlock()
	if h == nil || closed {
		return
	}
	env, err := wire.Unmarshal(buf)
	if err != nil {
		return // corrupt frame: drop, like line noise
	}
	if pc := e.peerm[env.From]; pc != nil {
		pc.msgsIn.Inc()
		pc.bytesIn.Add(uint64(len(buf)))
	}
	h(env)
}

// ErrNotOpen reports operations on an endpoint that failed to open.
var ErrNotOpen = errors.New("tcpnet: endpoint not open")
