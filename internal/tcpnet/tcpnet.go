// Package tcpnet is the real-network counterpart of internal/simnet:
// the same wire.Endpoint interface over TCP sockets, so the DvP site
// engine runs unchanged as separate OS processes (cmd/dvpnode).
//
// Semantics deliberately match the failure model the protocol assumes:
// Send is best-effort — if the peer is unreachable the message is
// silently dropped (the Vm layer's retransmission owns reliability).
// Connections are dialed lazily, kept for reuse, and torn down on any
// error; frames are length-prefixed envelopes.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/wire"
)

// Config assembles an endpoint.
type Config struct {
	// Site is the local site id.
	Site ident.SiteID
	// Listen is the local listen address (e.g. ":7101").
	Listen string
	// Peers maps every other site to its address.
	Peers map[ident.SiteID]string
	// DialTimeout bounds connection attempts (default 500ms).
	DialTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default 1 MiB).
	MaxFrame uint32
	// Metrics, when set, registers per-peer traffic counters
	// (dvp_net_{bytes,msgs}_{in,out}_total, dvp_net_dial_failures_total)
	// with the registry, labelled site=<self> and peer=<id>.
	Metrics *obs.Registry
}

// peerCounters holds one remote site's traffic counters. Outbound
// counts cover frames actually written to a socket (loopback sends are
// excluded); inbound counts cover every decoded envelope delivered to
// the handler, attributed to its From site.
type peerCounters struct {
	bytesOut, msgsOut *metrics.Counter
	bytesIn, msgsIn   *metrics.Counter
	dialFailures      *metrics.Counter
}

// Endpoint implements wire.Endpoint over TCP.
type Endpoint struct {
	cfg   Config
	peerm map[ident.SiteID]*peerCounters // immutable after New

	mu       sync.Mutex
	handler  wire.Handler
	listener net.Listener
	conns    map[ident.SiteID]net.Conn
	accepted map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates and opens an endpoint: it binds the listen address and
// starts accepting peer connections.
func New(cfg Config) (*Endpoint, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = 1 << 20
	}
	e := &Endpoint{
		cfg:      cfg,
		peerm:    make(map[ident.SiteID]*peerCounters, len(cfg.Peers)),
		conns:    make(map[ident.SiteID]net.Conn),
		accepted: make(map[net.Conn]bool),
	}
	if cfg.Metrics != nil {
		self := cfg.Site.String()
		for p := range cfg.Peers {
			pl := p.String()
			e.peerm[p] = &peerCounters{
				bytesOut:     cfg.Metrics.Counter("dvp_net_bytes_out_total", "site", self, "peer", pl),
				msgsOut:      cfg.Metrics.Counter("dvp_net_msgs_out_total", "site", self, "peer", pl),
				bytesIn:      cfg.Metrics.Counter("dvp_net_bytes_in_total", "site", self, "peer", pl),
				msgsIn:       cfg.Metrics.Counter("dvp_net_msgs_in_total", "site", self, "peer", pl),
				dialFailures: cfg.Metrics.Counter("dvp_net_dial_failures_total", "site", self, "peer", pl),
			}
		}
	}
	if err := e.Open(); err != nil {
		return nil, err
	}
	return e, nil
}

// Site implements wire.Endpoint.
func (e *Endpoint) Site() ident.SiteID { return e.cfg.Site }

// Addr returns the bound listen address (useful with ":0").
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// SetHandler implements wire.Endpoint.
func (e *Endpoint) SetHandler(h wire.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Open implements wire.Endpoint: bind and accept. Reopening after
// Close rebinds the same address.
func (e *Endpoint) Open() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener != nil && !e.closed {
		return nil
	}
	ln, err := net.Listen("tcp", e.cfg.Listen)
	if err != nil {
		return fmt.Errorf("tcpnet: listen %s: %w", e.cfg.Listen, err)
	}
	// Remember the concrete address so ":0" survives reopen.
	e.cfg.Listen = ln.Addr().String()
	e.listener = ln
	e.closed = false
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return nil
}

// Close implements wire.Endpoint: stop listening, drop connections.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ln := e.listener
	conns := e.conns
	e.conns = make(map[ident.SiteID]net.Conn)
	accepted := e.accepted
	e.accepted = make(map[net.Conn]bool)
	e.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Accepted connections must be closed too, or their read loops
	// (blocked in ReadFull) would never exit and Close would hang.
	for c := range accepted {
		c.Close()
	}
	e.wg.Wait()
	e.mu.Lock()
	e.listener = nil
	e.mu.Unlock()
	return nil
}

// Send implements wire.Endpoint: best-effort framed write; failures
// drop the message and the cached connection.
func (e *Endpoint) Send(env *wire.Envelope) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return wire.ErrClosed
	}
	e.mu.Unlock()

	env.From = e.cfg.Site
	buf, err := env.Marshal()
	if err != nil {
		return err
	}
	if env.To == e.cfg.Site {
		// Loopback without touching the network.
		e.deliver(buf)
		return nil
	}
	addr, ok := e.cfg.Peers[env.To]
	if !ok {
		return fmt.Errorf("%w: %v", wire.ErrUnknownSite, env.To)
	}
	conn, err := e.connTo(env.To, addr)
	if err != nil {
		if pc := e.peerm[env.To]; pc != nil {
			pc.dialFailures.Inc()
		}
		return nil // unreachable peer == silent loss, per the model
	}
	frame := make([]byte, 4+len(buf))
	binary.BigEndian.PutUint32(frame, uint32(len(buf)))
	copy(frame[4:], buf)
	if _, err := conn.Write(frame); err != nil {
		e.dropConn(env.To, conn)
		return nil // loss
	}
	if pc := e.peerm[env.To]; pc != nil {
		pc.msgsOut.Inc()
		pc.bytesOut.Add(uint64(len(frame)))
	}
	return nil
}

func (e *Endpoint) connTo(site ident.SiteID, addr string) (net.Conn, error) {
	e.mu.Lock()
	if c, ok := e.conns[site]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return nil, wire.ErrClosed
	}
	if prev, ok := e.conns[site]; ok {
		c.Close() // lost the race; reuse the existing one
		return prev, nil
	}
	e.conns[site] = c
	return c, nil
}

func (e *Endpoint) dropConn(site ident.SiteID, conn net.Conn) {
	e.mu.Lock()
	if e.conns[site] == conn {
		delete(e.conns, site)
	}
	e.mu.Unlock()
	conn.Close()
}

func (e *Endpoint) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
	}()
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > e.cfg.MaxFrame {
			return // corrupt or hostile peer
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		e.deliver(buf)
	}
}

func (e *Endpoint) deliver(buf []byte) {
	e.mu.Lock()
	h := e.handler
	closed := e.closed
	e.mu.Unlock()
	if h == nil || closed {
		return
	}
	env, err := wire.Unmarshal(buf)
	if err != nil {
		return // corrupt frame: drop, like line noise
	}
	if pc := e.peerm[env.From]; pc != nil {
		pc.msgsIn.Inc()
		pc.bytesIn.Add(uint64(len(buf)))
	}
	h(env)
}

// ErrNotOpen reports operations on an endpoint that failed to open.
var ErrNotOpen = errors.New("tcpnet: endpoint not open")
