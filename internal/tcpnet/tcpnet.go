// Package tcpnet is the real-network counterpart of internal/simnet:
// the same wire.Endpoint interface over TCP sockets, so the DvP site
// engine runs unchanged as separate OS processes (cmd/dvpnode).
//
// Semantics deliberately match the failure model the protocol assumes:
// Send is best-effort — if the peer is unreachable the message is
// silently dropped (the Vm layer's retransmission owns reliability).
// Connections are dialed lazily, kept for reuse, and torn down on any
// error; frames are length-prefixed envelopes.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/wire"
)

// Config assembles an endpoint.
type Config struct {
	// Site is the local site id.
	Site ident.SiteID
	// Listen is the local listen address (e.g. ":7101").
	Listen string
	// Peers maps every other site to its address.
	Peers map[ident.SiteID]string
	// DialTimeout bounds connection attempts (default 500ms).
	DialTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default 1 MiB).
	MaxFrame uint32
	// Metrics, when set, registers per-peer traffic counters
	// (dvp_net_{bytes,msgs}_{in,out}_total, dvp_net_dial_failures_total)
	// with the registry, labelled site=<self> and peer=<id>.
	Metrics *obs.Registry
}

// peerCounters holds one remote site's traffic counters. Outbound
// counts cover frames actually written to a socket (loopback sends are
// excluded); inbound counts cover every decoded envelope delivered to
// the handler, attributed to its From site. flushes counts syscall
// batches: msgsOut/flushes is the write-coalescing factor.
type peerCounters struct {
	bytesOut, msgsOut *metrics.Counter
	bytesIn, msgsIn   *metrics.Counter
	dialFailures      *metrics.Counter
	flushes           *metrics.Counter
}

// peerWriter owns one peer's outbound connection: Send enqueues a
// framed envelope; the writer goroutine dials lazily, streams frames
// through a bufio.Writer, and flushes when the queue goes momentarily
// idle — so a burst of envelopes (a request fan-out, a retransmission
// sweep) leaves in one syscall batch, while a lone envelope still
// flushes immediately.
type peerWriter struct {
	site ident.SiteID
	addr string
	// frames carries pooled writers holding [u32 length][envelope];
	// ownership passes to the writer goroutine, which returns each to
	// the wire pool once its bytes are handed to bufio (or dropped).
	frames chan *wire.Writer
}

// peerWriterQueue bounds the outbound backlog per peer; overflow is
// dropped (the model's message loss — retransmission owns reliability).
const peerWriterQueue = 1024

// Endpoint implements wire.Endpoint over TCP.
type Endpoint struct {
	cfg   Config
	peerm map[ident.SiteID]*peerCounters // immutable after New

	mu       sync.Mutex
	handler  wire.Handler
	listener net.Listener
	conns    map[ident.SiteID]net.Conn
	writers  map[ident.SiteID]*peerWriter
	stop     chan struct{} // closed to stop this generation's writers
	accepted map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates and opens an endpoint: it binds the listen address and
// starts accepting peer connections.
func New(cfg Config) (*Endpoint, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = 1 << 20
	}
	e := &Endpoint{
		cfg:      cfg,
		peerm:    make(map[ident.SiteID]*peerCounters, len(cfg.Peers)),
		conns:    make(map[ident.SiteID]net.Conn),
		accepted: make(map[net.Conn]bool),
	}
	if cfg.Metrics != nil {
		self := cfg.Site.String()
		for p := range cfg.Peers {
			pl := p.String()
			e.peerm[p] = &peerCounters{
				bytesOut:     cfg.Metrics.Counter("dvp_net_bytes_out_total", "site", self, "peer", pl),
				msgsOut:      cfg.Metrics.Counter("dvp_net_msgs_out_total", "site", self, "peer", pl),
				bytesIn:      cfg.Metrics.Counter("dvp_net_bytes_in_total", "site", self, "peer", pl),
				msgsIn:       cfg.Metrics.Counter("dvp_net_msgs_in_total", "site", self, "peer", pl),
				dialFailures: cfg.Metrics.Counter("dvp_net_dial_failures_total", "site", self, "peer", pl),
				flushes:      cfg.Metrics.Counter("dvp_net_flushes_total", "site", self, "peer", pl),
			}
		}
	}
	if err := e.Open(); err != nil {
		return nil, err
	}
	return e, nil
}

// Site implements wire.Endpoint.
func (e *Endpoint) Site() ident.SiteID { return e.cfg.Site }

// Addr returns the bound listen address (useful with ":0").
func (e *Endpoint) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// SetPeers installs the peer address map after construction, for
// callers that bind every endpoint on an ephemeral port first and only
// then know the full mesh (in-process clusters, tests). Must be called
// before any traffic flows.
func (e *Endpoint) SetPeers(addrs map[ident.SiteID]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Peers = addrs
	if e.cfg.Metrics == nil {
		return
	}
	self := e.cfg.Site.String()
	for p := range addrs {
		if _, ok := e.peerm[p]; ok {
			continue
		}
		pl := p.String()
		e.peerm[p] = &peerCounters{
			bytesOut:     e.cfg.Metrics.Counter("dvp_net_bytes_out_total", "site", self, "peer", pl),
			msgsOut:      e.cfg.Metrics.Counter("dvp_net_msgs_out_total", "site", self, "peer", pl),
			bytesIn:      e.cfg.Metrics.Counter("dvp_net_bytes_in_total", "site", self, "peer", pl),
			msgsIn:       e.cfg.Metrics.Counter("dvp_net_msgs_in_total", "site", self, "peer", pl),
			dialFailures: e.cfg.Metrics.Counter("dvp_net_dial_failures_total", "site", self, "peer", pl),
			flushes:      e.cfg.Metrics.Counter("dvp_net_flushes_total", "site", self, "peer", pl),
		}
	}
}

// SetHandler implements wire.Endpoint.
func (e *Endpoint) SetHandler(h wire.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Open implements wire.Endpoint: bind and accept. Reopening after
// Close rebinds the same address.
func (e *Endpoint) Open() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener != nil && !e.closed {
		return nil
	}
	ln, err := net.Listen("tcp", e.cfg.Listen)
	if err != nil {
		return fmt.Errorf("tcpnet: listen %s: %w", e.cfg.Listen, err)
	}
	// Remember the concrete address so ":0" survives reopen.
	e.cfg.Listen = ln.Addr().String()
	e.listener = ln
	e.closed = false
	e.stop = make(chan struct{})
	e.writers = make(map[ident.SiteID]*peerWriter)
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return nil
}

// Close implements wire.Endpoint: stop listening, drop connections.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	ln := e.listener
	conns := e.conns
	e.conns = make(map[ident.SiteID]net.Conn)
	accepted := e.accepted
	e.accepted = make(map[net.Conn]bool)
	if e.stop != nil {
		close(e.stop) // writers of this generation exit
		e.stop = nil
	}
	e.writers = nil
	e.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Accepted connections must be closed too, or their read loops
	// (blocked in ReadFull) would never exit and Close would hang.
	for c := range accepted {
		c.Close()
	}
	e.wg.Wait()
	e.mu.Lock()
	e.listener = nil
	e.mu.Unlock()
	return nil
}

// Send implements wire.Endpoint: best-effort framed write; the frame
// is handed to the peer's writer goroutine, which coalesces queued
// frames into one buffered write + flush. A full queue drops the
// message (loss, per the model) and Send never blocks on the network.
func (e *Endpoint) Send(env *wire.Envelope) error {
	env.From = e.cfg.Site
	if env.To == e.cfg.Site {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return wire.ErrClosed
		}
		// Loopback without touching the network. deliver decodes the
		// frame synchronously and Unmarshal copies everything the
		// handler may retain, so the pooled encode scratch is free for
		// reuse the moment it returns.
		w := wire.GetWriter()
		err := env.MarshalInto(w)
		if err == nil {
			e.deliver(w.Bytes())
		}
		wire.PutWriter(w)
		return err
	}
	addr, ok := e.cfg.Peers[env.To]
	if !ok {
		return fmt.Errorf("%w: %v", wire.ErrUnknownSite, env.To)
	}
	// Encode [u32 length][envelope] straight into a pooled writer; on
	// a successful enqueue its ownership passes to the writer goroutine.
	frame := wire.GetWriter()
	frame.U32(0)
	if err := env.MarshalInto(frame); err != nil {
		wire.PutWriter(frame)
		return err
	}
	frame.PatchU32(0, uint32(frame.Len()-4))

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		wire.PutWriter(frame)
		return wire.ErrClosed
	}
	w, ok := e.writers[env.To]
	if !ok {
		w = &peerWriter{site: env.To, addr: addr, frames: make(chan *wire.Writer, peerWriterQueue)}
		e.writers[env.To] = w
		stop := e.stop
		e.wg.Add(1)
		go e.writerLoop(w, stop)
	}
	e.mu.Unlock()

	select {
	case w.frames <- frame:
	default:
		// Backlogged peer: drop, like a congested link.
		wire.PutWriter(frame)
	}
	return nil
}

// writerLoop streams one peer's frames: lazy dial, buffered writes,
// flush when the queue goes idle. Any error drops the connection and
// the in-flight frames (loss); the next frame redials.
func (e *Endpoint) writerLoop(w *peerWriter, stop <-chan struct{}) {
	defer e.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	pc := e.peerm[w.site]
	drop := func() {
		if conn != nil {
			e.forgetConn(w.site, conn)
			conn = nil
			bw = nil
		}
	}
	defer drop()
	for {
		var frame *wire.Writer
		select {
		case <-stop:
			return
		case frame = <-w.frames:
		}
		// Write the frame plus everything already queued behind it,
		// then flush the batch with one syscall (well, one Flush).
		batched := 0
		var batchBytes uint64
	writeLoop:
		for frame != nil {
			if conn == nil {
				c, err := net.DialTimeout("tcp", w.addr, e.cfg.DialTimeout)
				if err != nil {
					if pc != nil {
						pc.dialFailures.Inc()
					}
					wire.PutWriter(frame)
					break writeLoop // drop this frame; queued ones retry the dial
				}
				if !e.rememberConn(w.site, c) {
					c.Close()
					wire.PutWriter(frame)
					return // endpoint closed under us
				}
				conn = c
				bw = bufio.NewWriterSize(conn, 64<<10)
			}
			// bufio consumes the bytes before Write returns (copied or
			// written through), so the frame goes back to the pool
			// either way.
			n := frame.Len()
			_, err := bw.Write(frame.Bytes())
			wire.PutWriter(frame)
			if err != nil {
				drop()
				break writeLoop
			}
			batched++
			batchBytes += uint64(n)
			select {
			case frame = <-w.frames:
			case <-stop:
				return
			default:
				frame = nil
			}
		}
		if bw != nil && bw.Buffered() > 0 {
			if err := bw.Flush(); err != nil {
				drop()
				continue
			}
		}
		if pc != nil && batched > 0 {
			pc.msgsOut.Add(uint64(batched))
			pc.bytesOut.Add(batchBytes)
			pc.flushes.Inc()
		}
	}
}

// rememberConn registers a writer's live connection so Close can
// unblock it; reports false if the endpoint is already closed.
func (e *Endpoint) rememberConn(site ident.SiteID, conn net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.conns[site] = conn
	return true
}

// forgetConn drops a writer's dead connection from the registry.
func (e *Endpoint) forgetConn(site ident.SiteID, conn net.Conn) {
	e.mu.Lock()
	if e.conns[site] == conn {
		delete(e.conns, site)
	}
	e.mu.Unlock()
	conn.Close()
}

func (e *Endpoint) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
	}()
	// Both buffers live on the connection, not per frame: deliver
	// decodes synchronously and wire.Unmarshal copies everything the
	// handler retains, so the body buffer is free for the next frame as
	// soon as deliver returns. It grows to the largest frame seen and
	// is reallocated small again after an outsized one, so a single
	// huge frame doesn't pin its memory for the connection's lifetime.
	hdr := make([]byte, 4)
	var buf []byte
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > e.cfg.MaxFrame {
			return // corrupt or hostile peer
		}
		if cap(buf) < int(n) || cap(buf) > readBufRetain && int(n) <= readBufRetain {
			buf = make([]byte, n)
		} else {
			buf = buf[:n]
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		e.deliver(buf)
	}
}

// readBufRetain bounds the per-connection read buffer kept across
// frames; see readLoop.
const readBufRetain = 64 << 10

func (e *Endpoint) deliver(buf []byte) {
	e.mu.Lock()
	h := e.handler
	closed := e.closed
	e.mu.Unlock()
	if h == nil || closed {
		return
	}
	env, err := wire.Unmarshal(buf)
	if err != nil {
		return // corrupt frame: drop, like line noise
	}
	if pc := e.peerm[env.From]; pc != nil {
		pc.msgsIn.Inc()
		pc.bytesIn.Add(uint64(len(buf)))
	}
	h(env)
}

// ErrNotOpen reports operations on an endpoint that failed to open.
var ErrNotOpen = errors.New("tcpnet: endpoint not open")
