package cc

import (
	"testing"

	"dvp/internal/tstamp"
)

func TestConc1AllowLock(t *testing.T) {
	p := New(Conc1)
	newer := tstamp.Make(5, 1)
	older := tstamp.Make(3, 2)
	if !p.AllowLock(newer, older) {
		t.Error("newer txn must be allowed on older value")
	}
	if p.AllowLock(older, newer) {
		t.Error("older txn must be rejected (TS(t) > TS(d) required)")
	}
	if p.AllowLock(newer, newer) {
		t.Error("equal timestamps must be rejected (strict inequality)")
	}
	if !p.StampOnLock() {
		t.Error("Conc1 stamps on lock")
	}
	if p.Scheme() != Conc1 {
		t.Error("scheme identity")
	}
}

func TestConc1ZeroTimestampAlwaysLockable(t *testing.T) {
	p := New(Conc1)
	if !p.AllowLock(tstamp.Make(1, 1), 0) {
		t.Error("fresh data value (TS 0) must be lockable by any txn")
	}
}

func TestConc2AlwaysAllows(t *testing.T) {
	p := New(Conc2)
	if !p.AllowLock(tstamp.Make(1, 1), tstamp.Make(100, 2)) {
		t.Error("Conc2 has no timestamp admission check")
	}
	if p.StampOnLock() {
		t.Error("Conc2 does not stamp")
	}
	if p.Scheme() != Conc2 {
		t.Error("scheme identity")
	}
}

func TestSchemeStrings(t *testing.T) {
	if Conc1.String() != "conc1" || Conc2.String() != "conc2" || Scheme(0).String() != "cc?" {
		t.Error("scheme strings")
	}
}

func TestNewDefaultsToConc1(t *testing.T) {
	if New(Scheme(99)).Scheme() != Conc1 {
		t.Error("unknown scheme must default to Conc1")
	}
}
