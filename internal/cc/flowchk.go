package cc

import (
	"fmt"
	"sort"

	"dvp/internal/core"
	"dvp/internal/ident"
)

// CheckSerializableFlow verifies serializability subject to
// redistribution using *value-flow vectors* (see internal/site's flow
// clocks): every committed writer is identified by (site, local
// index), and every full read carries, per item, the vector of writer
// counts whose effects had flowed into its gathered value. The vector
// is exact — a read observed writer (j, k) iff its vector's component
// for j is ≥ k — so the checker can test the existence of an
// equivalent serial order directly:
//
//  1. Per item, the reads' vectors must be totally ordered
//     (component-wise): two full reads whose observation sets are
//     incomparable cannot both be serial prefixes.
//  2. Each read's observed value must equal the initial value plus
//     the deltas of exactly the writers its vector covers.
//  3. Conservation: initial + all writer deltas = final.
//  4. Across items, the per-item read orders and read/writer
//     observation constraints must embed into one acyclic order.
//
// Unlike CheckSerializable (which replays in timestamp order — the
// Conc1 proof's serial order), this check is scheme-agnostic: it
// verifies Conc2 histories, whose equivalent serial order uses the
// §6.2 proof's hypothetical timestamps that are not observable at
// runtime. Flow vectors are volatile diagnostics, so it applies to
// crash-free histories.
func CheckSerializableFlow(
	initial map[ident.ItemID]core.Value,
	final map[ident.ItemID]core.Value,
	txns []CommittedTxn,
) error {
	type writer struct {
		txn   int // index into txns
		idx   uint64
		delta core.Value
	}
	type reader struct {
		txn  int
		vec  map[ident.SiteID]uint64
		want core.Value
	}
	writersBySite := make(map[ident.ItemID]map[ident.SiteID][]writer)
	readers := make(map[ident.ItemID][]reader)

	for i, t := range txns {
		for item, d := range t.Deltas {
			if d == 0 {
				continue
			}
			idx, ok := t.WriterIdx[item]
			if !ok {
				return fmt.Errorf("flowchk: txn %v missing writer index for %q", t.TS, item)
			}
			m := writersBySite[item]
			if m == nil {
				m = make(map[ident.SiteID][]writer)
				writersBySite[item] = m
			}
			m[t.Site] = append(m[t.Site], writer{txn: i, idx: idx, delta: d})
		}
		for item, want := range t.Reads {
			vec, ok := t.ReadVec[item]
			if !ok {
				return fmt.Errorf("flowchk: txn %v missing read vector for %q", t.TS, item)
			}
			readers[item] = append(readers[item], reader{txn: i, vec: vec, want: want})
		}
	}

	// Constraint edges for the global-order check.
	adj := make(map[int][]int)

	items := make([]ident.ItemID, 0, len(writersBySite)+len(readers))
	seen := map[ident.ItemID]bool{}
	for it := range writersBySite {
		items = append(items, it)
		seen[it] = true
	}
	for it := range readers {
		if !seen[it] {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	for _, item := range items {
		bySite := writersBySite[item]
		for site := range bySite {
			ws := bySite[site]
			sort.Slice(ws, func(a, b int) bool { return ws[a].idx < ws[b].idx })
			// Local writer indices must be dense and unique — each
			// site hands them out under the item's lock.
			for k, w := range ws {
				if w.idx != uint64(k+1) {
					return fmt.Errorf("flowchk: %q writers at %v have non-dense indices", item, site)
				}
			}
			bySite[site] = ws
		}

		// Order the reads by observation-set size; then verify the
		// vectors are actually nested (totally ordered).
		rs := readers[item]
		sort.SliceStable(rs, func(a, b int) bool {
			return vecSum(rs[a].vec) < vecSum(rs[b].vec)
		})
		for i := 1; i < len(rs); i++ {
			if !vecLE(rs[i-1].vec, rs[i].vec) {
				return fmt.Errorf(
					"flowchk: %q reads by txns %v and %v observed incomparable writer sets — not serializable",
					item, txns[rs[i-1].txn].TS, txns[rs[i].txn].TS)
			}
		}

		// Each read's value must equal initial + covered deltas; add
		// order constraints: covered writers → read → uncovered
		// writers, and the read chain itself.
		for i, r := range rs {
			expect := initial[item]
			for site, ws := range bySite {
				covered := r.vec[site]
				for _, w := range ws {
					if w.txn == r.txn {
						// A transaction's own write: the §5 protocol
						// records reads before applying ops, so the
						// read excludes it by construction. No
						// ordering constraint against itself.
						continue
					}
					if w.idx <= covered {
						expect += w.delta
						adj[w.txn] = append(adj[w.txn], r.txn)
					} else {
						adj[r.txn] = append(adj[r.txn], w.txn)
					}
				}
			}
			if expect != r.want {
				return fmt.Errorf(
					"flowchk: txn %v at %v read %q=%d, its observation set sums to %d",
					txns[r.txn].TS, txns[r.txn].Site, item, r.want, expect)
			}
			if i > 0 {
				adj[rs[i-1].txn] = append(adj[rs[i-1].txn], r.txn)
			}
		}

		// Conservation.
		state := initial[item]
		for _, ws := range bySite {
			for _, w := range ws {
				state += w.delta
			}
		}
		if want, ok := final[item]; ok && state != want {
			return fmt.Errorf(
				"flowchk: item %q final total %d, committed deltas yield %d (conservation violated)",
				item, want, state)
		}
	}

	if findCycle(adj, len(txns)) {
		return fmt.Errorf("flowchk: observation constraints are cyclic — no single serial order exists")
	}
	return nil
}

func vecSum(v map[ident.SiteID]uint64) uint64 {
	var s uint64
	for _, c := range v {
		s += c
	}
	return s
}

// vecLE reports a ≤ b component-wise.
func vecLE(a, b map[ident.SiteID]uint64) bool {
	for s, c := range a {
		if c > b[s] {
			return false
		}
	}
	return true
}

// findCycle runs an iterative three-color DFS over the constraint
// graph.
func findCycle(adj map[int][]int, n int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		type frame struct {
			node int
			next int
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			edges := adj[f.node]
			if f.next < len(edges) {
				nxt := edges[f.next]
				f.next++
				switch color[nxt] {
				case white:
					color[nxt] = gray
					stack = append(stack, frame{node: nxt})
				case gray:
					return true
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}
