// Package cc implements the paper's two concurrency control schemes:
//
//   - Conc1 (§6.1): timestamp-based. A transaction t may lock a data
//     value d_j — locally or by remote request — only if
//     TS(t) > TS(d_j); the lock and the timestamp update
//     TS(d_j) := TS(t) happen in one atomic step.
//
//   - Conc2 (§6.2): strict two-phase locking per site, correct under
//     the additional system assumptions the paper lists (order-
//     preserving links, requests broadcast together, messages
//     processed in arrival order). No timestamp check is performed;
//     the assumed synchronicity provides the ordering.
//
// The site layer consults the Policy at the two decision points the
// paper defines: acquiring local locks (§5 step 1, "this is true even
// for i = j") and deciding whether to honor a remote request (§6.1).
package cc

import (
	"dvp/internal/tstamp"
)

// Scheme selects a concurrency control scheme by name.
type Scheme uint8

// Available schemes.
const (
	// Conc1 is the timestamp scheme of §6.1.
	Conc1 Scheme = iota + 1
	// Conc2 is the strict-2PL scheme of §6.2.
	Conc2
)

func (s Scheme) String() string {
	switch s {
	case Conc1:
		return "conc1"
	case Conc2:
		return "conc2"
	default:
		return "cc?"
	}
}

// Policy is consulted by a site at each locking decision.
type Policy interface {
	// AllowLock reports whether a transaction with timestamp txn may
	// lock (and thereby access) a data value whose current timestamp
	// is item. The lock table has already verified the value is
	// unlocked; this is the scheme-specific admission check.
	AllowLock(txn, item tstamp.TS) bool
	// StampOnLock reports whether the data value's timestamp must be
	// advanced to the transaction's at lock time (Conc1's atomic
	// lock-and-stamp).
	StampOnLock() bool
	// Scheme names the policy.
	Scheme() Scheme
}

// New returns the Policy for a scheme.
func New(s Scheme) Policy {
	switch s {
	case Conc2:
		return conc2{}
	default:
		return conc1{}
	}
}

type conc1 struct{}

func (conc1) AllowLock(txn, item tstamp.TS) bool { return txn > item }
func (conc1) StampOnLock() bool                  { return true }
func (conc1) Scheme() Scheme                     { return Conc1 }

type conc2 struct{}

func (conc2) AllowLock(txn, item tstamp.TS) bool { return true }
func (conc2) StampOnLock() bool                  { return false }
func (conc2) Scheme() Scheme                     { return Conc2 }
