package cc

import (
	"strings"
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// Helpers to build flow-instrumented histories tersely.
func fw(ts uint64, site ident.SiteID, item ident.ItemID, delta core.Value, idx uint64) CommittedTxn {
	return CommittedTxn{
		TS: tstamp.Make(ts, site), Site: site,
		Deltas:    map[ident.ItemID]core.Value{item: delta},
		WriterIdx: map[ident.ItemID]uint64{item: idx},
	}
}

func fr(ts uint64, site ident.SiteID, item ident.ItemID, saw core.Value, vec map[ident.SiteID]uint64) CommittedTxn {
	return CommittedTxn{
		TS: tstamp.Make(ts, site), Site: site,
		Reads:   map[ident.ItemID]core.Value{item: saw},
		ReadVec: map[ident.ItemID]map[ident.SiteID]uint64{item: vec},
	}
}

func TestFlowHappyPath(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 100}
	txns := []CommittedTxn{
		fw(1, 1, "x", -10, 1), // writer (1,1)
		fw(2, 2, "x", +5, 1),  // writer (2,1)
		// Read that gathered both effects: 95.
		fr(3, 3, "x", 95, map[ident.SiteID]uint64{1: 1, 2: 1}),
		// Later writer, unobserved.
		fw(4, 1, "x", -20, 2),
	}
	final := map[ident.ItemID]core.Value{"x": 75}
	if err := CheckSerializableFlow(initial, final, txns); err != nil {
		t.Errorf("valid history rejected: %v", err)
	}
}

func TestFlowReadMissingObservedWriter(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 100}
	txns := []CommittedTxn{
		fw(1, 1, "x", -10, 1),
		// Claims to have observed writer (1,1) but reports the
		// pre-write value: inconsistent.
		fr(2, 2, "x", 100, map[ident.SiteID]uint64{1: 1}),
	}
	final := map[ident.ItemID]core.Value{"x": 90}
	err := CheckSerializableFlow(initial, final, txns)
	if err == nil || !strings.Contains(err.Error(), "observation set") {
		t.Errorf("inconsistent read not caught: %v", err)
	}
}

func TestFlowUnobservedWriterSeen(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 100}
	txns := []CommittedTxn{
		fw(1, 1, "x", -10, 1),
		// Reports the post-write value while claiming an empty
		// observation set.
		fr(2, 2, "x", 90, map[ident.SiteID]uint64{}),
	}
	final := map[ident.ItemID]core.Value{"x": 90}
	if err := CheckSerializableFlow(initial, final, txns); err == nil {
		t.Error("phantom observation not caught")
	}
}

func TestFlowIncomparableReads(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 20}
	txns := []CommittedTxn{
		fw(1, 1, "x", -1, 1),
		fw(2, 2, "x", -2, 1),
		// R1 saw only writer (1,1); R2 saw only writer (2,1):
		// incomparable — no serial order has both as prefixes.
		fr(3, 3, "x", 19, map[ident.SiteID]uint64{1: 1}),
		fr(4, 4, "x", 18, map[ident.SiteID]uint64{2: 1}),
	}
	final := map[ident.ItemID]core.Value{"x": 17}
	err := CheckSerializableFlow(initial, final, txns)
	if err == nil || !strings.Contains(err.Error(), "incomparable") {
		t.Errorf("incomparable reads not caught: %v", err)
	}
}

func TestFlowConservationViolation(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 10}
	txns := []CommittedTxn{fw(1, 1, "x", -3, 1)}
	final := map[ident.ItemID]core.Value{"x": 8} // should be 7
	if err := CheckSerializableFlow(initial, final, txns); err == nil {
		t.Error("conservation violation not caught")
	}
}

func TestFlowNonDenseWriterIndices(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 10}
	txns := []CommittedTxn{
		fw(1, 1, "x", -1, 1),
		fw(2, 1, "x", -1, 3), // gap: index 2 missing
	}
	final := map[ident.ItemID]core.Value{"x": 8}
	err := CheckSerializableFlow(initial, final, txns)
	if err == nil || !strings.Contains(err.Error(), "non-dense") {
		t.Errorf("index gap not caught: %v", err)
	}
}

func TestFlowCrossItemCycle(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 10, "b": 10}
	// T1 writes a and b; R_a observed T1 on a; R_b did NOT observe T1
	// on b; and R_a must come after R_b... build a cycle:
	// T1 → Ra (observed on a), Ra reads b too claiming to see a write
	// by T2; T2 reads a claiming NOT to see T1... then
	// T1→Ra, Ra→? Let's build the classic: R1 sees W on a but not X
	// on b; R2 sees X on b but not W on a; W and X are the same txn.
	w := CommittedTxn{
		TS: tstamp.Make(1, 1), Site: 1,
		Deltas:    map[ident.ItemID]core.Value{"a": -1, "b": -1},
		WriterIdx: map[ident.ItemID]uint64{"a": 1, "b": 1},
	}
	r1 := fr(2, 2, "a", 9, map[ident.SiteID]uint64{1: 1}) // saw w on a  → w before r1
	r1.Reads["b"] = 10                                    // did not see w on b → r1 before w
	r1.ReadVec["b"] = map[ident.SiteID]uint64{}
	txns := []CommittedTxn{w, r1}
	final := map[ident.ItemID]core.Value{"a": 9, "b": 9}
	err := CheckSerializableFlow(initial, final, txns)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cross-item cycle not caught: %v", err)
	}
}

func TestFlowSelfReadWrite(t *testing.T) {
	// A transaction that reads and writes the same item: the read
	// excludes its own write (§5 order) — must not self-deadlock the
	// constraint graph.
	initial := map[ident.ItemID]core.Value{"x": 10}
	rw := CommittedTxn{
		TS: tstamp.Make(1, 1), Site: 1,
		Deltas:    map[ident.ItemID]core.Value{"x": -4},
		WriterIdx: map[ident.ItemID]uint64{"x": 1},
		Reads:     map[ident.ItemID]core.Value{"x": 10},
		ReadVec:   map[ident.ItemID]map[ident.SiteID]uint64{"x": {}},
	}
	final := map[ident.ItemID]core.Value{"x": 6}
	if err := CheckSerializableFlow(initial, final, []CommittedTxn{rw}); err != nil {
		t.Errorf("read-write txn rejected: %v", err)
	}
}

func TestFlowMissingInstrumentation(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"x": 10}
	bad := CommittedTxn{
		TS: tstamp.Make(1, 1), Site: 1,
		Deltas: map[ident.ItemID]core.Value{"x": -1},
	}
	if err := CheckSerializableFlow(initial, nil, []CommittedTxn{bad}); err == nil {
		t.Error("missing writer index not caught")
	}
	badRead := CommittedTxn{
		TS: tstamp.Make(2, 1), Site: 1,
		Reads: map[ident.ItemID]core.Value{"x": 10},
	}
	if err := CheckSerializableFlow(initial, nil, []CommittedTxn{badRead}); err == nil {
		t.Error("missing read vector not caught")
	}
}

func TestFlowEmptyHistory(t *testing.T) {
	if err := CheckSerializableFlow(nil, nil, nil); err != nil {
		t.Errorf("empty history: %v", err)
	}
}
