package cc

import (
	"fmt"
	"sort"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// CommittedTxn is the checker's view of one committed transaction:
// its timestamp (the serial position under Conc1's equivalence proof),
// the net value change it applied to each item, and the value each
// full read observed.
type CommittedTxn struct {
	TS     tstamp.TS
	Site   ident.SiteID
	Deltas map[ident.ItemID]core.Value
	Reads  map[ident.ItemID]core.Value
	// WriterIdx and ReadVec carry value-flow instrumentation when the
	// history was recorded with it (see CheckSerializableFlow):
	// WriterIdx is this transaction's local writer index per written
	// item; ReadVec the observation vector per fully-read item.
	WriterIdx map[ident.ItemID]uint64
	ReadVec   map[ident.ItemID]map[ident.SiteID]uint64
}

// CheckSerializable verifies the paper's correctness criterion —
// serializability subject to redistribution (§6) — against a set of
// committed transactions:
//
//  1. Conservation: for every item, the initial total plus the sum of
//     committed deltas equals the supplied final total (redistribution
//     moved values around but no value appeared or vanished).
//  2. Read consistency: replaying the transactions serially in
//     timestamp order, every full read observes exactly the replayed
//     value of its item at that point — i.e. the concurrent execution
//     is equivalent to the serial one the §6.1 proof constructs.
//
// A nil error means the history is serializable under that order.
func CheckSerializable(
	initial map[ident.ItemID]core.Value,
	final map[ident.ItemID]core.Value,
	txns []CommittedTxn,
) error {
	// Serial replay in timestamp order.
	sorted := make([]CommittedTxn, len(txns))
	copy(sorted, txns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	// Duplicate timestamps would make the serial order ambiguous and
	// indicate a broken uniqueness invariant.
	for i := 1; i < len(sorted); i++ {
		if sorted[i].TS == sorted[i-1].TS {
			return fmt.Errorf("serchk: duplicate transaction timestamp %v", sorted[i].TS)
		}
	}

	state := make(map[ident.ItemID]core.Value, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	for _, t := range sorted {
		for item, want := range t.Reads {
			if got := state[item]; got != want {
				return fmt.Errorf(
					"serchk: txn %v at %v read %q=%d, serial replay has %d",
					t.TS, t.Site, item, want, got)
			}
		}
		for item, d := range t.Deltas {
			state[item] += d
			if state[item] < 0 {
				return fmt.Errorf(
					"serchk: txn %v drives %q to %d in serial replay",
					t.TS, item, state[item])
			}
		}
	}
	for item, want := range final {
		if got := state[item]; got != want {
			return fmt.Errorf(
				"serchk: item %q final total %d, serial replay yields %d (conservation violated)",
				item, want, got)
		}
	}
	return nil
}
