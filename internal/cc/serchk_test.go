package cc

import (
	"math/rand"
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

func v(x int64) core.Value { return core.Value(x) }

func TestCheckSerializableHappyPath(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 100}
	txns := []CommittedTxn{
		{TS: tstamp.Make(1, 1), Deltas: map[ident.ItemID]core.Value{"a": -10}},
		{TS: tstamp.Make(2, 2), Deltas: map[ident.ItemID]core.Value{"a": -5}},
		{TS: tstamp.Make(3, 1), Reads: map[ident.ItemID]core.Value{"a": 85}},
		{TS: tstamp.Make(4, 2), Deltas: map[ident.ItemID]core.Value{"a": 7}},
	}
	final := map[ident.ItemID]core.Value{"a": 92}
	if err := CheckSerializable(initial, final, txns); err != nil {
		t.Errorf("valid history rejected: %v", err)
	}
}

func TestCheckSerializableOrderInsensitiveInput(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 10}
	txns := []CommittedTxn{
		{TS: tstamp.Make(2, 1), Reads: map[ident.ItemID]core.Value{"a": 5}},
		{TS: tstamp.Make(1, 1), Deltas: map[ident.ItemID]core.Value{"a": -5}},
	}
	final := map[ident.ItemID]core.Value{"a": 5}
	if err := CheckSerializable(initial, final, txns); err != nil {
		t.Errorf("checker must sort by TS itself: %v", err)
	}
}

func TestCheckSerializableDetectsBadRead(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 100}
	txns := []CommittedTxn{
		{TS: tstamp.Make(1, 1), Deltas: map[ident.ItemID]core.Value{"a": -10}},
		// Read that saw a value inconsistent with the serial order.
		{TS: tstamp.Make(2, 1), Reads: map[ident.ItemID]core.Value{"a": 100}},
	}
	final := map[ident.ItemID]core.Value{"a": 90}
	if err := CheckSerializable(initial, final, txns); err == nil {
		t.Error("stale read must be detected")
	}
}

func TestCheckSerializableDetectsConservationViolation(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 100}
	txns := []CommittedTxn{
		{TS: tstamp.Make(1, 1), Deltas: map[ident.ItemID]core.Value{"a": -10}},
	}
	// Final total claims value appeared from nowhere.
	final := map[ident.ItemID]core.Value{"a": 95}
	if err := CheckSerializable(initial, final, txns); err == nil {
		t.Error("conservation violation must be detected")
	}
}

func TestCheckSerializableDetectsNegativeDip(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 5}
	txns := []CommittedTxn{
		{TS: tstamp.Make(1, 1), Deltas: map[ident.ItemID]core.Value{"a": -10}},
		{TS: tstamp.Make(2, 1), Deltas: map[ident.ItemID]core.Value{"a": 10}},
	}
	final := map[ident.ItemID]core.Value{"a": 5}
	if err := CheckSerializable(initial, final, txns); err == nil {
		t.Error("serial replay dipping below zero must be detected")
	}
}

func TestCheckSerializableDuplicateTS(t *testing.T) {
	initial := map[ident.ItemID]core.Value{}
	ts := tstamp.Make(1, 1)
	txns := []CommittedTxn{{TS: ts}, {TS: ts}}
	if err := CheckSerializable(initial, nil, txns); err == nil {
		t.Error("duplicate timestamps must be detected")
	}
}

func TestCheckSerializableEmptyHistory(t *testing.T) {
	initial := map[ident.ItemID]core.Value{"a": 3}
	final := map[ident.ItemID]core.Value{"a": 3}
	if err := CheckSerializable(initial, final, nil); err != nil {
		t.Errorf("empty history: %v", err)
	}
}

// Randomized soak: simulate a truly serial execution (so it must pass)
// with interleaved reads, many items, many txns.
func TestCheckSerializableRandomSerialHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	items := []ident.ItemID{"a", "b", "c"}
	for trial := 0; trial < 100; trial++ {
		initial := map[ident.ItemID]core.Value{}
		state := map[ident.ItemID]core.Value{}
		for _, it := range items {
			v0 := core.Value(rng.Intn(50))
			initial[it] = v0
			state[it] = v0
		}
		var txns []CommittedTxn
		for i := 1; i <= 30; i++ {
			ts := tstamp.Make(uint64(i), ident.SiteID(rng.Intn(4)+1))
			t1 := CommittedTxn{TS: ts,
				Deltas: map[ident.ItemID]core.Value{},
				Reads:  map[ident.ItemID]core.Value{}}
			it := items[rng.Intn(len(items))]
			switch rng.Intn(3) {
			case 0:
				d := core.Value(rng.Intn(10))
				t1.Deltas[it] = d
				state[it] += d
			case 1:
				d := core.Value(rng.Intn(10))
				if state[it] >= d {
					t1.Deltas[it] = -d
					state[it] -= d
				}
			case 2:
				t1.Reads[it] = state[it]
			}
			txns = append(txns, t1)
		}
		final := map[ident.ItemID]core.Value{}
		for _, it := range items {
			final[it] = state[it]
		}
		if err := CheckSerializable(initial, final, txns); err != nil {
			t.Fatalf("trial %d: serial history rejected: %v", trial, err)
		}
	}
}

func TestValueHelper(t *testing.T) {
	if v(5) != 5 {
		t.Error("helper sanity")
	}
}
