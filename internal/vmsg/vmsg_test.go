package vmsg

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dvp/internal/ident"
	"dvp/internal/wal"
)

func TestAllocSeqDense(t *testing.T) {
	m := NewManager()
	for i := uint64(1); i <= 5; i++ {
		if got := m.AllocSeq(2); got != i {
			t.Fatalf("AllocSeq #%d = %d", i, got)
		}
	}
	if got := m.AllocSeq(3); got != 1 {
		t.Errorf("seq spaces must be per-peer; got %d", got)
	}
}

func TestCreatedPendingAck(t *testing.T) {
	m := NewManager()
	s1 := m.AllocSeq(2)
	s2 := m.AllocSeq(2)
	m.Created([]wal.VmOut{
		{To: 2, Seq: s1, Item: "a", Amount: 5},
		{To: 2, Seq: s2, Item: "a", Amount: 3},
	})
	if p := m.PendingTo(2); len(p) != 2 || p[0].Seq != 1 || p[1].Seq != 2 {
		t.Fatalf("pending = %+v", p)
	}
	m.OnAck(2, 1)
	if p := m.PendingTo(2); len(p) != 1 || p[0].Seq != 2 {
		t.Fatalf("after ack(1): %+v", p)
	}
	// Stale ack is ignored.
	m.OnAck(2, 0)
	if len(m.PendingTo(2)) != 1 {
		t.Error("stale ack changed state")
	}
	m.OnAck(2, 2)
	if len(m.PendingTo(2)) != 0 {
		t.Error("ack(2) should clear all pending")
	}
	if m.CumAck(2) != 2 {
		t.Errorf("CumAck = %d", m.CumAck(2))
	}
}

func TestCreatedBelowAckDropped(t *testing.T) {
	m := NewManager()
	m.OnAck(2, 5)
	m.Created([]wal.VmOut{{To: 2, Seq: 3, Item: "a", Amount: 1}})
	if len(m.PendingTo(2)) != 0 {
		t.Error("recovery replay of an acked Vm must not re-pend it")
	}
	if m.OutSeq(2) < 3 {
		t.Error("Created must advance the seq cursor")
	}
}

func TestRetireHookSeqOrderPerAck(t *testing.T) {
	m := NewManager()
	var retired []wal.VmOut
	m.SetRetireHook(func(peer ident.SiteID, v wal.VmOut) {
		if peer != 2 {
			t.Errorf("retire hook peer = %v, want 2", peer)
		}
		retired = append(retired, v)
	})
	m.Created([]wal.VmOut{
		{To: 2, Seq: 1, Item: "a", Amount: 5},
		{To: 2, Seq: 2, Item: "a", Amount: 3},
		{To: 2, Seq: 3, Item: "b", Amount: 1},
		{To: 3, Seq: 1, Item: "a", Amount: 9},
	})
	// One cumulative ack retires seq 1..2, in seq order, only for peer 2.
	m.OnAck(2, 2)
	if len(retired) != 2 || retired[0].Seq != 1 || retired[1].Seq != 2 {
		t.Fatalf("retired after ack(2,2) = %+v", retired)
	}
	// A stale ack retires nothing; the next advance retires only seq 3.
	m.OnAck(2, 2)
	m.OnAck(2, 3)
	if len(retired) != 3 || retired[2].Seq != 3 || retired[2].Item != "b" {
		t.Fatalf("retired after ack(2,3) = %+v", retired)
	}
	// Unhooking stops observation without disturbing the channel.
	m.SetRetireHook(nil)
	m.OnAck(3, 1)
	if len(retired) != 3 {
		t.Errorf("nil hook still observed a retire: %+v", retired)
	}
	if m.HasOutstanding("a") || m.HasOutstanding("b") {
		t.Error("acked Vm still outstanding")
	}
}

func TestPendingAllAcrossPeers(t *testing.T) {
	m := NewManager()
	m.Created([]wal.VmOut{
		{To: 3, Seq: 1, Item: "a", Amount: 1},
		{To: 2, Seq: 1, Item: "b", Amount: 2},
	})
	all := m.PendingAll()
	if len(all) != 2 || all[0].To != 2 || all[1].To != 3 {
		t.Errorf("PendingAll = %+v", all)
	}
}

func TestHasOutstandingAndValue(t *testing.T) {
	m := NewManager()
	m.Created([]wal.VmOut{
		{To: 2, Seq: 1, Item: "a", Amount: 5},
		{To: 3, Seq: 1, Item: "a", Amount: 2},
		{To: 3, Seq: 2, Item: "b", Amount: 9},
	})
	if !m.HasOutstanding("a") || !m.HasOutstanding("b") || m.HasOutstanding("c") {
		t.Error("HasOutstanding wrong")
	}
	if v := m.OutstandingValue("a"); v != 7 {
		t.Errorf("OutstandingValue(a) = %d", v)
	}
	m.OnAck(3, 2)
	if m.HasOutstanding("b") {
		t.Error("acked Vm still outstanding")
	}
}

func TestInboundExactlyOnce(t *testing.T) {
	m := NewManager()
	if !m.ShouldAccept(1, 1) {
		t.Fatal("fresh seq must be acceptable")
	}
	m.MarkAccepted(1, 1)
	if m.ShouldAccept(1, 1) {
		t.Fatal("duplicate must be rejected")
	}
	if !m.Accepted(1, 1) {
		t.Fatal("Accepted(1,1) should be true")
	}
	if m.AckFor(1) != 1 {
		t.Errorf("AckFor = %d", m.AckFor(1))
	}
}

func TestInboundOutOfOrder(t *testing.T) {
	m := NewManager()
	m.MarkAccepted(1, 3) // gap: 1,2 missing
	if m.AckFor(1) != 0 {
		t.Errorf("cumulative ack must not cover gaps: %d", m.AckFor(1))
	}
	if m.ShouldAccept(1, 3) {
		t.Error("3 already accepted")
	}
	if !m.ShouldAccept(1, 1) || !m.ShouldAccept(1, 2) {
		t.Error("1,2 still acceptable")
	}
	m.MarkAccepted(1, 1)
	if m.AckFor(1) != 1 {
		t.Errorf("AckFor = %d, want 1", m.AckFor(1))
	}
	m.MarkAccepted(1, 2)
	// Low-water mark drains the contiguous run through 3.
	if m.AckFor(1) != 3 {
		t.Errorf("AckFor = %d, want 3", m.AckFor(1))
	}
}

func TestInboundPerPeerIndependence(t *testing.T) {
	m := NewManager()
	m.MarkAccepted(1, 1)
	if m.Accepted(2, 1) {
		t.Error("acceptance leaked across peers")
	}
	if m.AckFor(2) != 0 {
		t.Error("ack leaked across peers")
	}
}

func TestMarkAcceptedIdempotent(t *testing.T) {
	m := NewManager()
	m.MarkAccepted(1, 1)
	m.MarkAccepted(1, 1)
	m.MarkAccepted(1, 2)
	if m.AckFor(1) != 2 {
		t.Errorf("AckFor = %d", m.AckFor(1))
	}
}

func TestSnapshotRestoreChannels(t *testing.T) {
	m := NewManager()
	// Build some state: two created toward peer 2, one acked;
	// inbound from peer 3 with a gap.
	s1 := m.AllocSeq(2)
	s2 := m.AllocSeq(2)
	m.Created([]wal.VmOut{
		{To: 2, Seq: s1, Item: "a", Amount: 5},
		{To: 2, Seq: s2, Item: "a", Amount: 3},
	})
	m.OnAck(2, 1)
	m.MarkAccepted(3, 1)
	m.MarkAccepted(3, 3) // gap at 2

	snap := m.SnapshotChannels()

	m2 := NewManager()
	m2.RestoreChannels(snap)
	if m2.OutSeq(2) != 2 || m2.CumAck(2) != 1 {
		t.Errorf("out cursors: seq=%d ack=%d", m2.OutSeq(2), m2.CumAck(2))
	}
	if p := m2.PendingTo(2); len(p) != 1 || p[0].Seq != 2 || p[0].Amount != 3 {
		t.Errorf("pending = %+v", p)
	}
	if m2.AckFor(3) != 1 {
		t.Errorf("AckFor(3) = %d", m2.AckFor(3))
	}
	if m2.ShouldAccept(3, 3) {
		t.Error("restored manager re-accepts seq 3 (double credit!)")
	}
	if !m2.ShouldAccept(3, 2) {
		t.Error("gap seq 2 must remain acceptable")
	}
	// Filling the gap drains through the sparse tail.
	m2.MarkAccepted(3, 2)
	if m2.AckFor(3) != 3 {
		t.Errorf("AckFor(3) after gap fill = %d", m2.AckFor(3))
	}
	// Allocation continues past the restored cursor.
	if m2.AllocSeq(2) != 3 {
		t.Error("restored cursor not honored by AllocSeq")
	}
	// Restore never regresses.
	m2.RestoreChannels([]wal.VmChannelState{{Peer: 2, OutSeq: 1, CumAck: 0}})
	if m2.OutSeq(2) != 3 || m2.CumAck(2) != 1 {
		t.Error("RestoreChannels regressed state")
	}
}

// Property: any interleaving of deliveries (with duplicates, loss,
// reorder) yields each seq accepted exactly once, and the cumulative
// ack equals the longest contiguous accepted prefix.
func TestChannelPropertyRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		const n = 40
		accepted := make(map[uint64]int)
		// Deliver seqs 1..n in a random multiset order with dups.
		var deliveries []uint64
		for seq := uint64(1); seq <= n; seq++ {
			copies := 1 + rng.Intn(3)
			for c := 0; c < copies; c++ {
				deliveries = append(deliveries, seq)
			}
		}
		rng.Shuffle(len(deliveries), func(i, j int) {
			deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
		})
		for _, seq := range deliveries {
			if m.ShouldAccept(9, seq) {
				m.MarkAccepted(9, seq)
				accepted[seq]++
			}
		}
		for seq := uint64(1); seq <= n; seq++ {
			if accepted[seq] != 1 {
				return false
			}
		}
		return m.AckFor(9) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentChannelUse(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	// Sender side: allocate + create + ack concurrently with the
	// receiver side accepting. Race detector is the assertion.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			seq := m.AllocSeq(2)
			m.Created([]wal.VmOut{{To: 2, Seq: seq, Item: "a", Amount: 1}})
			if i%3 == 0 {
				m.OnAck(2, seq)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 500; i++ {
			if m.ShouldAccept(7, i) {
				m.MarkAccepted(7, i)
			}
			_ = m.AckFor(7)
			_ = m.PendingAll()
		}
	}()
	wg.Wait()
}

// --- adaptive retransmission pacing -----------------------------------------

// TestDueRetransmitBacksOffAndCaps walks the pacing state machine with
// a fabricated clock: the first sweep fires immediately, each fired
// sweep doubles the gap, the gap caps at max, and ticks that land
// inside a gap are suppressed (and counted).
func TestDueRetransmitBacksOffAndCaps(t *testing.T) {
	m := NewManager()
	m.Created([]wal.VmOut{{To: 2, Seq: m.AllocSeq(2), Item: "a", Amount: 1}})
	t0 := time.Now()
	const base = 10 * time.Millisecond
	const cap = 80 * time.Millisecond
	at := func(d time.Duration) bool { return m.DueRetransmit(2, t0.Add(d), base, cap) }

	steps := []struct {
		at   time.Duration
		want bool
	}{
		{0, true}, // first sweep: immediate, gap -> 10ms
		{5 * time.Millisecond, false},
		{10 * time.Millisecond, true}, // gap -> 20ms
		{25 * time.Millisecond, false},
		{30 * time.Millisecond, true}, // gap -> 40ms
		{69 * time.Millisecond, false},
		{70 * time.Millisecond, true}, // gap -> 80ms (cap)
		{149 * time.Millisecond, false},
		{150 * time.Millisecond, true}, // gap stays 80ms
		{229 * time.Millisecond, false},
		{230 * time.Millisecond, true},
	}
	for i, s := range steps {
		if got := at(s.at); got != s.want {
			t.Fatalf("step %d (t+%v): due = %v, want %v", i, s.at, got, s.want)
		}
	}
	fired, skipped := m.RetxStats(2)
	if fired != 6 || skipped != 5 {
		t.Errorf("RetxStats = (%d fired, %d skipped), want (6, 5)", fired, skipped)
	}
}

// TestDueRetransmitNoPending: an empty retransmission set never fires
// a sweep, and costs no pacing state.
func TestDueRetransmitNoPending(t *testing.T) {
	m := NewManager()
	if m.DueRetransmit(2, time.Now(), time.Millisecond, time.Second) {
		t.Error("sweep fired with nothing pending")
	}
	s := m.AllocSeq(2)
	m.Created([]wal.VmOut{{To: 2, Seq: s, Item: "a", Amount: 1}})
	m.OnAck(2, s)
	if m.DueRetransmit(2, time.Now(), time.Millisecond, time.Second) {
		t.Error("sweep fired after everything was acked")
	}
}

// TestAckResetsRetransmitBackoff: a peer deep in backoff snaps back to
// immediate retransmission the moment a cumulative ack advances the
// channel — a heal must not wait out the cap.
func TestAckResetsRetransmitBackoff(t *testing.T) {
	m := NewManager()
	s1 := m.AllocSeq(2)
	s2 := m.AllocSeq(2)
	m.Created([]wal.VmOut{
		{To: 2, Seq: s1, Item: "a", Amount: 1},
		{To: 2, Seq: s2, Item: "a", Amount: 2},
	})
	t0 := time.Now()
	const base = 10 * time.Millisecond
	const cap = 80 * time.Millisecond
	// Drive the gap to the cap.
	for _, d := range []time.Duration{0, 10, 30, 70} {
		if !m.DueRetransmit(2, t0.Add(d*time.Millisecond), base, cap) {
			t.Fatalf("sweep at t+%v should fire", d)
		}
	}
	// Next sweep would be 80ms out; the ack arrives first.
	m.OnAck(2, s1)
	if !m.DueRetransmit(2, t0.Add(71*time.Millisecond), base, cap) {
		t.Error("sweep after an advancing ack must fire immediately")
	}
	// Stale ack (no advance) must NOT reset.
	for _, d := range []time.Duration{81, 101} { // gap is re-seeded at base
		m.DueRetransmit(2, t0.Add(d*time.Millisecond), base, cap)
	}
	m.OnAck(2, s1) // duplicate, upTo == cumAck
	if m.DueRetransmit(2, t0.Add(102*time.Millisecond), base, cap) {
		t.Error("duplicate ack reset the backoff")
	}
}

// TestAckRTTEWMA: the smoothed round trip tracks observed acks without
// requiring instrumentation (no registry attached).
func TestAckRTTEWMA(t *testing.T) {
	m := NewManager()
	s1 := m.AllocSeq(2)
	m.Created([]wal.VmOut{{To: 2, Seq: s1, Item: "a", Amount: 1}})
	if m.AckRTT(2) != 0 {
		t.Error("EWMA must be 0 before the first ack")
	}
	time.Sleep(2 * time.Millisecond)
	m.OnAck(2, s1)
	rtt := m.AckRTT(2)
	if rtt < time.Millisecond {
		t.Errorf("EWMA after a ~2ms round trip = %v, want >= 1ms", rtt)
	}
	// The first gap after an RTT observation is seeded at 2×EWMA when
	// that exceeds base.
	s2 := m.AllocSeq(2)
	m.Created([]wal.VmOut{{To: 2, Seq: s2, Item: "a", Amount: 1}})
	t0 := time.Now()
	if !m.DueRetransmit(2, t0, time.Nanosecond, time.Hour) {
		t.Fatal("first sweep must fire")
	}
	if m.DueRetransmit(2, t0.Add(rtt), time.Nanosecond, time.Hour) {
		t.Error("sweep inside the 2×RTT seed gap must be suppressed")
	}
	if !m.DueRetransmit(2, t0.Add(2*rtt+time.Millisecond), time.Nanosecond, time.Hour) {
		t.Error("sweep past the seed gap must fire")
	}
}

// TestResetClearsRetxState: crash recovery rebuilds channels from the
// log; pacing state must not survive the crash.
func TestResetClearsRetxState(t *testing.T) {
	m := NewManager()
	s1 := m.AllocSeq(2)
	m.Created([]wal.VmOut{{To: 2, Seq: s1, Item: "a", Amount: 1}})
	t0 := time.Now()
	m.DueRetransmit(2, t0, 10*time.Millisecond, 80*time.Millisecond)
	m.Reset()
	m.Created([]wal.VmOut{{To: 2, Seq: s1, Item: "a", Amount: 1}})
	if !m.DueRetransmit(2, t0.Add(time.Millisecond), 10*time.Millisecond, 80*time.Millisecond) {
		t.Error("restored channel must retransmit immediately")
	}
	if fired, skipped := m.RetxStats(2); fired != 1 || skipped != 0 {
		t.Errorf("RetxStats after Reset = (%d, %d), want (1, 0)", fired, skipped)
	}
}
