// Package vmsg implements the paper's Virtual Messages (§4.2).
//
// A virtual message is *defined by log records*, not by packets: it
// comes into existence when the sender's `[database-actions,
// message-sequence]` record reaches stable storage, and ceases to
// exist when the receiver logs its acceptance. In between, any number
// of real messages may carry it; they may all be lost, duplicated or
// reordered — the Vm survives, because the sender's log keeps
// retransmitting it and the receiver's log deduplicates it. "A Vm is
// never lost, although several real messages corresponding to it may
// be sent during its lifespan."
//
// Manager tracks, per peer channel:
//
//   - outbound: the next sequence number, the set of created-but-
//     unacknowledged Vm (the retransmission set), and the cumulative
//     acknowledgement received;
//   - inbound: the set of accepted sequence numbers, as a low-water
//     mark plus sparse out-of-order tail, from which the cumulative
//     ack to piggyback is derived.
//
// The Manager holds protocol state only; logging, database effects,
// and actual sends belong to the site layer, which makes the state
// transitions here purely deterministic and easy to test.
package vmsg

import (
	"sort"
	"sync"
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/wal"
)

// Manager tracks Vm channel state for one site. Safe for concurrent
// use.
type Manager struct {
	mu  sync.Mutex
	out map[ident.SiteID]*outChannel
	in  map[ident.SiteID]*inChannel

	// Observability (see Instrument): nil when not instrumented.
	reg  *obs.Registry
	site string

	// onRetire observes each outbound Vm leaving the retransmission
	// set under a cumulative ack (see SetRetireHook); nil when unset.
	onRetire func(peer ident.SiteID, v wal.VmOut)
}

type outChannel struct {
	nextSeq uint64 // last allocated
	cumAck  uint64 // highest cumulative ack received
	pending map[uint64]wal.VmOut

	// sentAt remembers each pending Vm's creation instant; ackRTT
	// (nil when the manager is not instrumented) additionally exports
	// each Vm's lifespan — creation to cumulative ack, i.e. the full
	// guaranteed-delivery round trip including retransmissions — as a
	// histogram.
	ackRTT *metrics.Histogram
	sentAt map[uint64]time.Time

	// Adaptive retransmission pacing (see DueRetransmit): rttEWMA is
	// the smoothed observed ack round trip; retxAt is when the next
	// sweep toward this peer may fire, retxGap the current backoff
	// between sweeps (0 = fresh channel or just-acked, fire at base
	// pace). retxFired/retxSkipped count sweep decisions.
	rttEWMA     time.Duration
	retxAt      time.Time
	retxGap     time.Duration
	retxFired   uint64
	retxSkipped uint64
}

type inChannel struct {
	low   uint64 // all seq ≤ low accepted
	above map[uint64]bool
}

// NewManager returns an empty channel-state manager.
func NewManager() *Manager {
	return &Manager{
		out: make(map[ident.SiteID]*outChannel),
		in:  make(map[ident.SiteID]*inChannel),
	}
}

// Reset discards all channel state — the volatile state of a crashed
// site, about to be rebuilt from the stable log by recovery. The
// manager object itself stays valid (concurrent readers see an empty
// manager, never a torn one).
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.out = make(map[ident.SiteID]*outChannel)
	m.in = make(map[ident.SiteID]*inChannel)
}

// Instrument registers this manager's channel metrics with reg,
// labelled site=site and peer=<id>: per-peer pending-set depth
// (dvp_vmsg_pending, registered for every peer up front so idle
// channels still expose 0) and Vm ack round-trip
// (dvp_vmsg_ack_seconds, creation to cumulative ack, retransmissions
// included). Event counters (created/accepted/duplicates) live at the
// site layer, which distinguishes live protocol traffic from recovery
// replay.
func (m *Manager) Instrument(reg *obs.Registry, site string, peers []ident.SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	m.site = site
	for _, p := range peers {
		peer := p
		reg.GaugeFunc("dvp_vmsg_pending",
			func() float64 { return float64(m.PendingCount(peer)) },
			"site", site, "peer", peer.String())
	}
	for peer, c := range m.out {
		m.instrumentOutLocked(peer, c)
	}
}

// instrumentOutLocked attaches metric handles to one outbound channel.
// Called with m.mu held; the registered gauge function re-acquires
// m.mu only at exposition time, with no registry lock held.
func (m *Manager) instrumentOutLocked(peer ident.SiteID, c *outChannel) {
	if m.reg == nil {
		return
	}
	c.ackRTT = m.reg.Histogram("dvp_vmsg_ack_seconds", "site", m.site, "peer", peer.String())
	m.reg.GaugeFunc("dvp_vmsg_pending",
		func() float64 { return float64(m.PendingCount(peer)) },
		"site", m.site, "peer", peer.String())
}

// PendingCount returns the number of unacknowledged outbound Vm toward
// peer (the retransmission-set depth).
func (m *Manager) PendingCount(peer ident.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.out[peer]; ok {
		return len(c.pending)
	}
	return 0
}

func (m *Manager) outChan(peer ident.SiteID) *outChannel {
	c, ok := m.out[peer]
	if !ok {
		c = &outChannel{
			pending: make(map[uint64]wal.VmOut),
			sentAt:  make(map[uint64]time.Time),
		}
		m.out[peer] = c
		m.instrumentOutLocked(peer, c)
	}
	return c
}

func (m *Manager) inChan(peer ident.SiteID) *inChannel {
	c, ok := m.in[peer]
	if !ok {
		c = &inChannel{above: make(map[uint64]bool)}
		m.in[peer] = c
	}
	return c
}

// --- outbound --------------------------------------------------------------

// AllocSeq reserves the next sequence number toward peer. The caller
// embeds it in the VmCreate log record before calling Created.
func (m *Manager) AllocSeq(peer ident.SiteID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.outChan(peer)
	c.nextSeq++
	return c.nextSeq
}

// Created registers logged Vm as pending retransmission. Must be
// called only after the VmCreate record is stable — the Vm exists from
// that instant.
func (m *Manager) Created(msgs []wal.VmOut) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range msgs {
		c := m.outChan(v.To)
		if v.Seq > c.nextSeq {
			c.nextSeq = v.Seq // recovery replay can run ahead of alloc
		}
		if v.Seq > c.cumAck {
			c.pending[v.Seq] = v
			c.sentAt[v.Seq] = time.Now()
		}
	}
}

// SetRetireHook installs fn to observe every outbound Vm retired by a
// cumulative acknowledgement (the ack-piggyback hop completing the
// virtual message's lifespan). fn is called outside the manager's lock,
// in seq order per ack; it must not call back into the Manager's
// mutating paths for the same peer synchronously.
func (m *Manager) SetRetireHook(fn func(peer ident.SiteID, v wal.VmOut)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRetire = fn
}

// OnAck processes a cumulative acknowledgement from peer: every Vm
// with seq ≤ upTo is complete and leaves the retransmission set.
func (m *Manager) OnAck(peer ident.SiteID, upTo uint64) {
	m.mu.Lock()
	c := m.outChan(peer)
	if upTo <= c.cumAck {
		m.mu.Unlock()
		return
	}
	c.cumAck = upTo
	// A cumulative ack that advances the channel is proof the peer is
	// back (or never left): snap retransmission pacing to the base
	// interval instead of waiting out the backoff cap.
	c.retxGap = 0
	c.retxAt = time.Time{}
	var retired []wal.VmOut
	for seq, v := range c.pending {
		if seq <= upTo {
			delete(c.pending, seq)
			if m.onRetire != nil {
				retired = append(retired, v)
			}
			if at, ok := c.sentAt[seq]; ok {
				rtt := time.Since(at)
				// EWMA with α = 0.2: smooth enough to ride out one
				// retransmitted straggler, fresh enough to track a
				// congested link within a few acks.
				if c.rttEWMA == 0 {
					c.rttEWMA = rtt
				} else {
					c.rttEWMA = (4*c.rttEWMA + rtt) / 5
				}
				if c.ackRTT != nil {
					c.ackRTT.Record(rtt)
				}
				delete(c.sentAt, seq)
			}
		}
	}
	fn := m.onRetire
	m.mu.Unlock()
	if fn == nil {
		return
	}
	sort.Slice(retired, func(i, j int) bool { return retired[i].Seq < retired[j].Seq })
	for _, v := range retired {
		fn(peer, v)
	}
}

// PendingTo returns the unacknowledged Vm toward peer in seq order —
// the retransmission set.
func (m *Manager) PendingTo(peer ident.SiteID) []wal.VmOut {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.out[peer]
	if !ok {
		return nil
	}
	out := make([]wal.VmOut, 0, len(c.pending))
	for _, v := range c.pending {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// PendingAll returns every unacknowledged outbound Vm, across peers.
func (m *Manager) PendingAll() []wal.VmOut {
	m.mu.Lock()
	peers := make([]ident.SiteID, 0, len(m.out))
	for p := range m.out {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	var out []wal.VmOut
	for _, p := range ident.SortSites(peers) {
		out = append(out, m.PendingTo(p)...)
	}
	return out
}

// HasOutstanding reports whether any unacknowledged outbound Vm
// carries item. A site must decline to honor a full-read request while
// this holds (paper §5: "the fact that no outstanding Vm is there
// assures that the complete Π⁻¹(d) is procured").
func (m *Manager) HasOutstanding(item ident.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.out {
		for _, v := range c.pending {
			if v.Item == item {
				return true
			}
		}
	}
	return false
}

// OutSeq returns the last allocated sequence toward peer.
func (m *Manager) OutSeq(peer ident.SiteID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.out[peer]; ok {
		return c.nextSeq
	}
	return 0
}

// CumAck returns the highest cumulative ack received from peer.
func (m *Manager) CumAck(peer ident.SiteID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.out[peer]; ok {
		return c.cumAck
	}
	return 0
}

// DueRetransmit reports whether a retransmission sweep toward peer
// should fire at now, and advances the per-peer pacing state when it
// does. The first sweep after a channel gains pending Vm — or after
// any cumulative ack advanced it (a heal) — fires immediately; each
// fired sweep then doubles the gap to the next, seeded at
// max(base, 2×ack-RTT EWMA) and capped at max. A peer that never acks
// therefore costs one sweep per cap interval instead of one per tick,
// while a healthy channel keeps the base pace: its acks reset the gap
// before the next tick. Ticks suppressed inside a gap are counted
// (see RetxStats) but change no state.
func (m *Manager) DueRetransmit(peer ident.SiteID, now time.Time, base, max time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.out[peer]
	if !ok || len(c.pending) == 0 {
		return false
	}
	if !c.retxAt.IsZero() && now.Before(c.retxAt) {
		c.retxSkipped++
		return false
	}
	gap := c.retxGap
	if gap == 0 {
		gap = base
		if r := 2 * c.rttEWMA; r > gap {
			gap = r
		}
	} else {
		gap *= 2
	}
	if max > 0 && gap > max {
		gap = max
	}
	c.retxGap = gap
	c.retxAt = now.Add(gap)
	c.retxFired++
	return true
}

// RetxStats returns how many retransmission sweeps fired toward peer
// and how many tick opportunities the adaptive backoff suppressed.
func (m *Manager) RetxStats(peer ident.SiteID) (fired, suppressed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.out[peer]; ok {
		return c.retxFired, c.retxSkipped
	}
	return 0, 0
}

// AckRTT returns the smoothed ack round trip toward peer (0 until the
// first cumulative ack retires a timed Vm).
func (m *Manager) AckRTT(peer ident.SiteID) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.out[peer]; ok {
		return c.rttEWMA
	}
	return 0
}

// --- inbound ---------------------------------------------------------------

// ShouldAccept reports whether the Vm (from, seq) is new. It does not
// mark it: the caller first logs the acceptance record, then calls
// MarkAccepted — crash between the two re-delivers, and the log replay
// marks it, so acceptance stays exactly-once.
func (m *Manager) ShouldAccept(from ident.SiteID, seq uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.inChan(from)
	return seq > c.low && !c.above[seq]
}

// MarkAccepted records the acceptance of (from, seq) and advances the
// cumulative low-water mark over any contiguous run.
func (m *Manager) MarkAccepted(from ident.SiteID, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.inChan(from)
	if seq <= c.low || c.above[seq] {
		return
	}
	c.above[seq] = true
	for c.above[c.low+1] {
		c.low++
		delete(c.above, c.low)
	}
}

// AckFor returns the cumulative acknowledgement to send toward peer:
// every inbound Vm with seq ≤ AckFor(peer) has been accepted and
// logged ("all messages upto and including the message m have been
// received and processed safely", §4.2).
func (m *Manager) AckFor(peer ident.SiteID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.in[peer]; ok {
		return c.low
	}
	return 0
}

// Accepted reports whether (from, seq) has been accepted — the
// receiver-side half of the global conservation check.
func (m *Manager) Accepted(from ident.SiteID, seq uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.in[from]
	if !ok {
		return false
	}
	return seq <= c.low || c.above[seq]
}

// --- recovery --------------------------------------------------------------

// SnapshotChannels captures the complete per-peer channel state for a
// checkpoint record: outbound cursor, cumulative ack, retransmission
// set, and the inbound acceptance set.
func (m *Manager) SnapshotChannels() []wal.VmChannelState {
	m.mu.Lock()
	defer m.mu.Unlock()
	peerSet := make(map[ident.SiteID]bool)
	for p := range m.out {
		peerSet[p] = true
	}
	for p := range m.in {
		peerSet[p] = true
	}
	ids := make([]ident.SiteID, 0, len(peerSet))
	for p := range peerSet {
		ids = append(ids, p)
	}
	out := make([]wal.VmChannelState, 0, len(ids))
	for _, p := range ident.SortSites(ids) {
		ch := wal.VmChannelState{Peer: p}
		if c, ok := m.out[p]; ok {
			ch.OutSeq = c.nextSeq
			ch.CumAck = c.cumAck
			for _, v := range c.pending {
				ch.Pending = append(ch.Pending, v)
			}
			sort.Slice(ch.Pending, func(i, j int) bool { return ch.Pending[i].Seq < ch.Pending[j].Seq })
		}
		if c, ok := m.in[p]; ok {
			ch.InLow = c.low
			for s := range c.above {
				ch.InAbove = append(ch.InAbove, s)
			}
			sort.Slice(ch.InAbove, func(i, j int) bool { return ch.InAbove[i] < ch.InAbove[j] })
		}
		out = append(out, ch)
	}
	return out
}

// RestoreChannels reloads channel state from a checkpoint. Recovery
// calls it before replaying the log suffix, whose VmCreate/VmAccept
// records then advance the restored state idempotently.
func (m *Manager) RestoreChannels(chs []wal.VmChannelState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ch := range chs {
		oc := m.outChan(ch.Peer)
		if ch.OutSeq > oc.nextSeq {
			oc.nextSeq = ch.OutSeq
		}
		if ch.CumAck > oc.cumAck {
			oc.cumAck = ch.CumAck
		}
		for _, v := range ch.Pending {
			if v.Seq > oc.cumAck {
				oc.pending[v.Seq] = v
			}
		}
		ic := m.inChan(ch.Peer)
		if ch.InLow > ic.low {
			ic.low = ch.InLow
		}
		for _, s := range ch.InAbove {
			if s > ic.low {
				ic.above[s] = true
			}
		}
		for ic.above[ic.low+1] {
			ic.low++
			delete(ic.above, ic.low)
		}
	}
}

// OutstandingValue sums the amounts of unacknowledged outbound Vm for
// item, for monitors: an upper bound on the in-flight value N_M.
func (m *Manager) OutstandingValue(item ident.ItemID) core.Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum core.Value
	for _, c := range m.out {
		for _, v := range c.pending {
			if v.Item == item {
				sum += v.Amount
			}
		}
	}
	return sum
}
