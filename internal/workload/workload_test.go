package workload

import (
	"testing"

	"dvp/internal/txn"
)

func TestDeterministicForSeed(t *testing.T) {
	g1 := New(Config{Kind: Airline, Seed: 7, Items: 3})
	g2 := New(Config{Kind: Airline, Seed: 7, Items: 3})
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Label != b.Label {
			t.Fatalf("step %d: labels differ: %s vs %s", i, a.Label, b.Label)
		}
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("step %d: op counts differ", i)
		}
		for j := range a.Ops {
			if a.Ops[j].Item != b.Ops[j].Item || a.Ops[j].Op.Delta() != b.Ops[j].Op.Delta() {
				t.Fatalf("step %d: ops differ", i)
			}
		}
	}
}

func TestItemNamesByKind(t *testing.T) {
	cases := map[Kind]string{
		Airline:   "flight/A0",
		Banking:   "acct/000",
		Inventory: "sku/000",
	}
	for kind, want := range cases {
		g := New(Config{Kind: kind, Items: 2})
		if got := g.ItemIDs()[0]; string(got) != want {
			t.Errorf("%v first item = %q, want %q", kind, got, want)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g := New(Config{Kind: Airline, Seed: 3, Items: 4, ReadFraction: 0.5})
	reads := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if len(g.Next().Reads) > 0 {
			reads++
		}
	}
	if reads < total*40/100 || reads > total*60/100 {
		t.Errorf("read fraction = %d/%d, want ~50%%", reads, total)
	}
}

func TestZeroReadFractionHasNoReads(t *testing.T) {
	g := New(Config{Kind: Inventory, Seed: 4, Items: 4})
	for i := 0; i < 500; i++ {
		if len(g.Next().Reads) != 0 {
			t.Fatal("read generated with ReadFraction=0")
		}
	}
}

func TestAmountsBounded(t *testing.T) {
	g := New(Config{Kind: Airline, Seed: 5, Items: 2, MaxAmount: 3})
	for i := 0; i < 500; i++ {
		tx := g.Next()
		for _, op := range tx.Ops {
			d := op.Op.Delta()
			if d == 0 || d > 3 || d < -3 {
				t.Fatalf("amount out of bounds: %d", d)
			}
		}
	}
}

func TestZipfConcentrates(t *testing.T) {
	g := New(Config{Kind: Inventory, Seed: 6, Items: 10, Zipf: 2.0})
	counts := map[string]int{}
	const total = 3000
	for i := 0; i < total; i++ {
		tx := g.Next()
		if len(tx.Ops) > 0 {
			counts[string(tx.Ops[0].Item)]++
		}
	}
	if counts["sku/000"] < total/2 {
		t.Errorf("zipf 2.0: hottest item got %d/%d, want >half", counts["sku/000"], total)
	}
}

func TestBankingTransfersAreAtomicPairs(t *testing.T) {
	g := New(Config{Kind: Banking, Seed: 8, Items: 5})
	sawTransfer := false
	for i := 0; i < 1000; i++ {
		tx := g.Next()
		if tx.Label != "transfer" {
			continue
		}
		sawTransfer = true
		if len(tx.Ops) != 2 {
			t.Fatalf("transfer with %d ops", len(tx.Ops))
		}
		if tx.Ops[0].Op.Delta()+tx.Ops[1].Op.Delta() != 0 {
			t.Fatal("transfer deltas must net to zero")
		}
		if tx.Ops[0].Item == tx.Ops[1].Item {
			t.Fatal("self-transfer generated")
		}
	}
	if !sawTransfer {
		t.Error("no transfers in 1000 banking txns")
	}
}

func TestAskPolicyPropagates(t *testing.T) {
	g := New(Config{Kind: Airline, Seed: 9, Items: 2, Ask: txn.AskOne})
	if g.Next().Ask != txn.AskOne {
		t.Error("ask policy not propagated")
	}
}

func TestSkewedSiteWeights(t *testing.T) {
	w := SkewedSiteWeights(4, 10)
	if w[0] != 10 || w[1] != 1 || len(w) != 4 {
		t.Errorf("weights = %v", w)
	}
	if w := SkewedSiteWeights(3, -5); w[0] != 0 {
		t.Error("negative hot weight must clamp to 0")
	}
}

func TestKindStrings(t *testing.T) {
	if Airline.String() != "airline" || Banking.String() != "banking" ||
		Inventory.String() != "inventory" || Kind(9).String() != "workload?" {
		t.Error("kind strings")
	}
}
