// Package workload generates the application traffic the paper's §3
// and §8 motivate — airline reservations, banking / electronic funds
// transfer, and inventory control — as streams of transaction
// descriptions for either the DvP system or the baselines.
//
// Generators are deterministic for a given seed, so experiments are
// reproducible and DvP/baseline comparisons see identical demand.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/txn"
)

// Kind names a workload family.
type Kind uint8

// Families.
const (
	// Airline: reserve k seats / cancel k seats / occasional audit
	// (full read) across F flights — the paper's running example.
	Airline Kind = iota + 1
	// Banking: deposits, withdrawals, transfers between accounts,
	// occasional balance audit.
	Banking
	// Inventory: orders (decrement) and restocks (increment) on SKUs
	// with a configurable hot-spot skew.
	Inventory
)

func (k Kind) String() string {
	switch k {
	case Airline:
		return "airline"
	case Banking:
		return "banking"
	case Inventory:
		return "inventory"
	default:
		return "workload?"
	}
}

// Config parameterizes a generator.
type Config struct {
	Kind Kind
	// Seed drives all sampling (0 means 1).
	Seed int64
	// Items is the number of distinct data items (flights, accounts,
	// SKUs). Default 4.
	Items int
	// Zipf skews item popularity; 0 disables (uniform). Values
	// around 1.2–2 concentrate traffic on few items (hot spots).
	Zipf float64
	// MaxAmount bounds per-transaction quantities. Default 5.
	MaxAmount int
	// ReadFraction is the probability a transaction is a full-value
	// audit read (expensive under DvP — experiment T4's sweep).
	ReadFraction float64
	// CancelFraction is the probability of an increment (cancel /
	// deposit / restock) rather than a decrement. Default 0.3.
	CancelFraction float64
	// Ask is the redistribution request policy for DvP transactions.
	Ask txn.AskPolicy
}

// Generator produces transactions.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Items <= 0 {
		cfg.Items = 4
	}
	if cfg.MaxAmount <= 0 {
		cfg.MaxAmount = 5
	}
	if cfg.CancelFraction == 0 {
		cfg.CancelFraction = 0.3
	}
	if cfg.Ask == 0 {
		cfg.Ask = txn.AskAll
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, uint64(cfg.Items-1))
	}
	return g
}

// ItemIDs returns the item identifiers this generator draws from.
func (g *Generator) ItemIDs() []ident.ItemID {
	out := make([]ident.ItemID, g.cfg.Items)
	for i := range out {
		out[i] = g.itemName(i)
	}
	return out
}

func (g *Generator) itemName(i int) ident.ItemID {
	switch g.cfg.Kind {
	case Banking:
		return ident.ItemID(fmt.Sprintf("acct/%03d", i))
	case Inventory:
		return ident.ItemID(fmt.Sprintf("sku/%03d", i))
	default:
		return ident.ItemID(fmt.Sprintf("flight/%c", 'A'+i%26)) + ident.ItemID(fmt.Sprintf("%d", i/26))
	}
}

func (g *Generator) pickItem() ident.ItemID {
	if g.zipf != nil {
		return g.itemName(int(g.zipf.Uint64()))
	}
	return g.itemName(g.rng.Intn(g.cfg.Items))
}

func (g *Generator) amount() core.Value {
	return core.Value(g.rng.Intn(g.cfg.MaxAmount) + 1)
}

// Next produces the next transaction.
func (g *Generator) Next() *txn.Txn {
	if g.cfg.ReadFraction > 0 && g.rng.Float64() < g.cfg.ReadFraction {
		return &txn.Txn{
			Reads: []ident.ItemID{g.pickItem()},
			Ask:   g.cfg.Ask,
			Label: "audit",
		}
	}
	switch g.cfg.Kind {
	case Banking:
		return g.nextBanking()
	default:
		return g.nextReserveCancel()
	}
}

// nextReserveCancel serves airline and inventory: a bounded decrement
// (reserve / order) or an increment (cancel / restock).
func (g *Generator) nextReserveCancel() *txn.Txn {
	item := g.pickItem()
	amt := g.amount()
	if g.rng.Float64() < g.cfg.CancelFraction {
		return &txn.Txn{
			Ops:   []txn.ItemOp{{Item: item, Op: core.Incr{M: amt}}},
			Ask:   g.cfg.Ask,
			Label: "cancel",
		}
	}
	return &txn.Txn{
		Ops:   []txn.ItemOp{{Item: item, Op: core.Decr{M: amt}}},
		Ask:   g.cfg.Ask,
		Label: "reserve",
	}
}

// nextBanking adds transfers: decrement one account, increment
// another, atomically in one transaction.
func (g *Generator) nextBanking() *txn.Txn {
	r := g.rng.Float64()
	item := g.pickItem()
	amt := g.amount()
	switch {
	case r < g.cfg.CancelFraction: // deposit
		return &txn.Txn{
			Ops:   []txn.ItemOp{{Item: item, Op: core.Incr{M: amt}}},
			Ask:   g.cfg.Ask,
			Label: "deposit",
		}
	case r < g.cfg.CancelFraction+0.2 && g.cfg.Items > 1: // transfer
		to := g.pickItem()
		for to == item {
			to = g.itemName(g.rng.Intn(g.cfg.Items))
		}
		return &txn.Txn{
			Ops: []txn.ItemOp{
				{Item: item, Op: core.Decr{M: amt}},
				{Item: to, Op: core.Incr{M: amt}},
			},
			Ask:   g.cfg.Ask,
			Label: "transfer",
		}
	default: // withdrawal
		return &txn.Txn{
			Ops:   []txn.ItemOp{{Item: item, Op: core.Decr{M: amt}}},
			Ask:   g.cfg.Ask,
			Label: "withdraw",
		}
	}
}

// DemandWeights estimates the long-run per-site demand share when n
// sites draw from this generator round-robin — used to seed
// WeightedShares initial distributions in experiments.
func DemandWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// SkewedSiteWeights returns per-site demand weights where site 0
// receives `hot` times the demand of the others (experiment F6's
// all-demand-at-one-site shape as hot → ∞).
func SkewedSiteWeights(n int, hot float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	if n > 0 {
		w[0] = math.Max(hot, 0)
	}
	return w
}
