package ident

import (
	"testing"
	"testing/quick"
)

func TestSiteString(t *testing.T) {
	if got := SiteID(3).String(); got != "s3" {
		t.Errorf("SiteID(3).String() = %q, want %q", got, "s3")
	}
	if got := NoSite.String(); got != "s?" {
		t.Errorf("NoSite.String() = %q, want %q", got, "s?")
	}
}

func TestSortSitesSortsCopy(t *testing.T) {
	in := []SiteID{4, 1, 3, 2}
	out := SortSites(in)
	want := []SiteID{1, 2, 3, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SortSites = %v, want %v", out, want)
		}
	}
	if in[0] != 4 {
		t.Errorf("SortSites mutated its input: %v", in)
	}
}

func TestSortSitesEmpty(t *testing.T) {
	if got := SortSites(nil); len(got) != 0 {
		t.Errorf("SortSites(nil) = %v, want empty", got)
	}
}

func TestSortItemsSortsCopy(t *testing.T) {
	in := []ItemID{"flight/B", "acct/z", "acct/a"}
	out := SortItems(in)
	want := []ItemID{"acct/a", "acct/z", "flight/B"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SortItems = %v, want %v", out, want)
		}
	}
	if in[0] != "flight/B" {
		t.Errorf("SortItems mutated its input: %v", in)
	}
}

func TestSortSitesIsSortedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		in := make([]SiteID, len(raw))
		for i, r := range raw {
			in[i] = SiteID(r)
		}
		out := SortSites(in)
		if len(out) != len(in) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
