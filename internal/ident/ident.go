// Package ident defines the identifier types shared by every layer of
// the DvP/Vm system: sites, data items, and transactions.
//
// Keeping these in a leaf package avoids import cycles between the
// storage, networking, and transaction layers.
package ident

import (
	"fmt"
	"sort"
)

// SiteID names one site (one "automaton" in the paper's model). Site
// ids are small dense integers assigned at cluster construction; they
// double as the low-order bits of timestamps (see internal/tstamp).
type SiteID uint16

// NoSite is the zero SiteID used to mean "no site" / "unset". Valid
// sites are numbered starting at 1.
const NoSite SiteID = 0

// String implements fmt.Stringer ("s3" style, matching the paper's s_i).
func (s SiteID) String() string {
	if s == NoSite {
		return "s?"
	}
	return fmt.Sprintf("s%d", uint16(s))
}

// ItemID names one logical data item d whose value is partitioned
// across sites as the multiset Π⁻¹(d). Examples: "flight/A",
// "acct/alice", "sku/1234".
type ItemID string

// TxnID is a transaction's unique identifier. Per the paper (§6.1) the
// timestamp TS(t) "also serves as its identifier", so TxnID is the
// packed Lamport timestamp produced by internal/tstamp: the high bits
// are a logical counter and the low bits the initiating site.
type TxnID uint64

// Zero TxnID means "no transaction" (e.g. an unlocked data value).
const NoTxn TxnID = 0

// SortSites returns a sorted copy of the given site ids. Several
// protocols (ordered broadcast tie-breaks, deterministic iteration for
// reproducible experiments) need a canonical site order.
func SortSites(sites []SiteID) []SiteID {
	out := make([]SiteID, len(sites))
	copy(out, sites)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortItems returns a sorted copy of item ids. Transactions lock their
// local values atomically (paper §5 step 1); acquiring in canonical
// order is how the implementation realizes atomic acquisition without
// deadlock even in the blocking baselines.
func SortItems(items []ItemID) []ItemID {
	out := make([]ItemID, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
