package harness

import (
	"fmt"

	"dvp/internal/chaos"
	"dvp/internal/metrics"
)

// expC1 runs the seeded chaos harness as an experiment: each seed is a
// distinct crash/partition schedule whose five global invariants —
// conservation, non-negativity, exactly-once Vm application,
// WAL-replay idempotence, serializability — are checked at every round
// barrier. The "result" is the fault coverage achieved with zero
// violations.
func expC1() Experiment {
	return Experiment{
		ID:    "C1",
		Title: "chaos: invariants under crash/partition schedules",
		Claim: "no data-values are lost (or duplicated) due to failures; the effect is serializable (§4, §6, §7)",
		Run: func(opts Options) (*Result, error) {
			n := opts.scale(5, 20)
			table := metrics.NewTable("chaos invariant coverage",
				"seed", "sites", "crashes", "restarts", "partitions", "flaps", "ckpts",
				"committed", "aborted", "checks")
			totalChecks := 0
			for s := opts.seed(); s < opts.seed()+int64(n); s++ {
				sched := chaos.Build(s)
				rep, err := chaos.Run(sched, chaos.Options{})
				if err != nil {
					return nil, fmt.Errorf("invariant violation (replay with dvpsim chaos -seed %d -v): %w", s, err)
				}
				table.AddRow(s, rep.Sites, rep.Crashes, rep.Restarts, rep.Partitions,
					rep.LinkFlaps, rep.Checkpoints, rep.Committed, rep.Aborted, rep.InvariantChecks)
				totalChecks += rep.InvariantChecks
			}
			return &Result{ID: "C1", Title: "chaos invariants", Table: table,
				Notes: []string{
					fmt.Sprintf("all 5 invariant families held at all %d barriers across %d seeds: PASS", totalChecks, n),
				}}, nil
		},
	}
}
