package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dvp"
	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/simnet"
	"dvp/internal/tstamp"
	"dvp/internal/txn"
	"dvp/internal/workload"
)

// expT1: normal-case scaling. The paper's design premise is that a
// transaction touches one site in the common case, so adding sites
// adds capacity, while a traditional system pays replica locks + 2PC
// on every write at every scale (§2, §5).
func expT1() Experiment {
	return Experiment{
		ID:    "T1",
		Title: "Normal-case throughput and message cost vs cluster size",
		Claim: "§5: transactions execute at a single site with only locally stored data and infrequent requests; traditional replication pays write-all + 2PC per transaction.",
		Run: func(o Options) (*Result, error) {
			// Both systems pay the same simulated stable-storage
			// latency per forced log write, so throughput reflects
			// protocol structure (how many forced writes and round
			// trips per transaction), not host CPU count.
			const storage = 200 * time.Microsecond
			table := metrics.NewTable("T1 — no failures, airline workload, 200µs forced-write latency",
				"sites", "system", "tps", "msg/txn", "abort%", "p50", "p99")
			siteCounts := []int{2, 4, 8}
			if !o.Quick {
				siteCounts = []int{2, 4, 8, 16}
			}
			perSite := o.scale(60, 250)
			for _, n := range siteCounts {
				// DvP: generous quotas so redistribution is rare (the
				// intended operating point).
				c, err := dvp.NewCluster(dvp.Config{
					Sites: n, Seed: o.seed(),
					MaxDelay: time.Millisecond, LogAppendDelay: storage,
				})
				if err != nil {
					return nil, err
				}
				wcfg := workload.Config{
					Kind: workload.Airline, Seed: o.seed(),
					Items: n, MaxAmount: 3,
				}
				for _, item := range workload.New(wcfg).ItemIDs() {
					if err := c.CreateItem(string(item), core.Value(400*n)); err != nil {
						return nil, err
					}
				}
				st := drive(dvpRunner{c}, gensFor(n, wcfg), perSite*4, 100*time.Millisecond)
				c.Close()
				table.AddRow(n, "dvp", st.tps(), st.msgsPerTxn(), st.abortPct(),
					st.latency.Quantile(0.5), st.latency.Quantile(0.99))

				// 2PC baseline, identical demand.
				tc, err := newTwopcClusterDelay(n, simnet.Config{Seed: o.seed(), MaxDelay: time.Millisecond}, storage)
				if err != nil {
					return nil, err
				}
				for _, item := range workload.New(wcfg).ItemIDs() {
					if err := tc.createItem(item, core.Value(400*n)); err != nil {
						return nil, err
					}
				}
				st2 := drive(tc, gensFor(n, wcfg), perSite, 0)
				tc.close()
				table.AddRow(n, "2pc", st2.tps(), st2.msgsPerTxn(), st2.abortPct(),
					st2.latency.Quantile(0.5), st2.latency.Quantile(0.99))
			}
			return &Result{ID: "T1", Title: "normal-case scaling", Table: table,
				Notes: []string{
					"expected shape: dvp msg/txn ≈ 0 and tps grows with sites;",
					"2pc pays O(sites) messages per write and its tps stays flat or degrades.",
				}}, nil
		},
	}
}

// expT2: availability under a clean partition, the paper's headline
// scenario (§1–§3).
func expT2() Experiment {
	return Experiment{
		ID:    "T2",
		Title: "Transaction success rate during a network partition",
		Claim: "§3: in case of network partitions, each site is able to access at least its local quota — processing continues; traditional schemes stop some or all groups.",
		Run: func(o Options) (*Result, error) {
			const n = 8
			table := metrics.NewTable("T2 — success% during a clean 2-way partition (8 sites)",
				"minority", "system", "success%", "committed", "attempted")
			perSite := o.scale(25, 100)
			for _, minority := range []int{1, 2, 3, 4} {
				groupA := make([]int, 0, minority)
				groupB := make([]int, 0, n-minority)
				for i := 1; i <= n; i++ {
					if i <= minority {
						groupA = append(groupA, i)
					} else {
						groupB = append(groupB, i)
					}
				}

				// DvP. Supply scales with demand (perSite attempts × 2
				// seats each, with retries) so aborts measure the
				// partition, not a sell-out.
				{
					c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed()})
					if err != nil {
						return nil, err
					}
					c.CreateItem("flight/A", core.Value(perSite*n*3))
					c.PartitionGroups(groupA, groupB)
					ok, total := successCount(o.seed(), func(i int, rng *rand.Rand) bool {
						return retry(rng, 3, func() bool {
							res := c.At(i).Run(dvp.NewTxn().Sub("flight/A", 2).
								Timeout(40 * time.Millisecond))
							return res.Committed()
						})
					}, n, perSite)
					c.Close()
					table.AddRow(minority, "dvp", pct(ok, total), ok, total)
				}

				// 2PC (full replication, write-all): zero during split.
				{
					tc, err := newTwopcCluster(n, simnet.Config{Seed: o.seed()})
					if err != nil {
						return nil, err
					}
					tc.createItem("flight/A", core.Value(perSite*n*3))
					tc.net.Partition(toSiteIDs(groupA), toSiteIDs(groupB))
					ok, total := successCount(o.seed(), func(i int, rng *rand.Rand) bool {
						return retry(rng, 2, func() bool {
							return tc.Run(i, &txn.Txn{Ops: []txn.ItemOp{
								{Item: "flight/A", Op: core.Decr{M: 2}},
							}}).Committed()
						})
					}, n, perSite/5+1) // fewer attempts: each costs two timeouts
					tc.close()
					table.AddRow(minority, "2pc", pct(ok, total), ok, total)
				}

				// Quorum: the majority group lives, the minority dies.
				{
					rc := newReplicaCluster(n, 1 /*Quorum*/, simnet.Config{Seed: o.seed()})
					rc.createItem("flight/A", core.Value(perSite*n*3))
					rc.net.Partition(toSiteIDs(groupA), toSiteIDs(groupB))
					ok, total := successCount(o.seed(), func(i int, rng *rand.Rand) bool {
						return retry(rng, 3, func() bool {
							return rc.Run(i, &txn.Txn{Ops: []txn.ItemOp{
								{Item: "flight/A", Op: core.Decr{M: 2}},
							}}).Committed()
						})
					}, n, perSite/5+1)
					rc.close()
					table.AddRow(minority, "quorum", pct(ok, total), ok, total)
				}

				// Primary copy: only the primary's group lives.
				{
					rc := newReplicaCluster(n, 2 /*PrimaryCopy*/, simnet.Config{Seed: o.seed()})
					rc.createItem("flight/A", core.Value(perSite*n*3))
					rc.net.Partition(toSiteIDs(groupA), toSiteIDs(groupB))
					ok, total := successCount(o.seed(), func(i int, rng *rand.Rand) bool {
						return retry(rng, 3, func() bool {
							return rc.Run(i, &txn.Txn{Ops: []txn.ItemOp{
								{Item: "flight/A", Op: core.Decr{M: 2}},
							}}).Committed()
						})
					}, n, perSite/5+1)
					rc.close()
					table.AddRow(minority, "primary", pct(ok, total), ok, total)
				}
			}
			return &Result{ID: "T2", Title: "partition availability", Table: table,
				Notes: []string{
					"expected shape: dvp ≈ 100% at every split; 2pc ≈ 0%;",
					"quorum ≈ majority-group share; primary ≈ primary-group share.",
				}}, nil
		},
	}
}

// expT3: independent recovery (§7).
func expT3() Experiment {
	return Experiment{
		ID:    "T3",
		Title: "Recovery independence and cost after crashing k of 8 sites",
		Claim: "§7: recovery is independent — other sites need not be queried; outstanding Vm resend in the normal course of processing.",
		Run: func(o Options) (*Result, error) {
			const n = 8
			table := metrics.NewTable("T3 — crash k sites, restart under full partition",
				"k", "restart-ms(max)", "records-scanned(max)", "redone(max)", "net-calls", "first-commit-ok")
			history := o.scale(120, 600)
			for _, k := range []int{1, 2, 4, 8} {
				c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
				if err != nil {
					return nil, err
				}
				c.CreateItem("acct", core.Value(200*n))
				wcfg := workload.Config{Kind: workload.Banking, Seed: o.seed(), Items: 1, MaxAmount: 3}
				drive(dvpRunner{c}, gensFor(n, wcfg), history/n, 60*time.Millisecond)
				c.Quiesce(2 * time.Second)

				for i := 1; i <= k; i++ {
					c.Crash(i)
				}
				// Isolate every site: recovery must still work (§7).
				groups := make([][]int, n)
				for i := range groups {
					groups[i] = []int{i + 1}
				}
				c.PartitionGroups(groups...)

				var maxMs float64
				var maxScanned, maxRedone, netCalls int
				for i := 1; i <= k; i++ {
					t0 := time.Now()
					if err := c.Restart(i); err != nil {
						return nil, err
					}
					if ms := float64(time.Since(t0).Microseconds()) / 1000; ms > maxMs {
						maxMs = ms
					}
					sum := c.LastRecovery(i)
					if sum.RecordsScanned > maxScanned {
						maxScanned = sum.RecordsScanned
					}
					if sum.ActionsRedone > maxRedone {
						maxRedone = sum.ActionsRedone
					}
					netCalls += sum.NetworkCalls
				}
				// First post-recovery transaction (still partitioned,
				// purely local).
				firstOK := true
				for i := 1; i <= k; i++ {
					if res := c.At(i).Cancel("acct", 1); !res.Committed() {
						firstOK = false
					}
				}
				c.Close()
				table.AddRow(k, fmt.Sprintf("%.2f", maxMs), maxScanned, maxRedone, netCalls, firstOK)
			}
			return &Result{ID: "T3", Title: "independent recovery", Table: table,
				Notes: []string{
					"net-calls must be 0 at every k (type-enforced: recovery never sees a transport);",
					"first-commit-ok must be true even fully partitioned.",
				}}, nil
		},
	}
}

// expT4: the read cost the paper concedes (§8).
func expT4() Experiment {
	return Experiment{
		ID:    "T4",
		Title: "Message overhead and aborts vs full-read fraction",
		Claim: "§8: there is a high overhead in reading the entire value of a particular data item — the price of partitioned values.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("T4 — airline + audit reads (4 sites)",
				"read%", "system", "tps", "msg/txn", "abort%")
			perSite := o.scale(50, 250)
			for _, rf := range []float64{0, 0.05, 0.10, 0.20, 0.50} {
				wcfg := workload.Config{
					Kind: workload.Airline, Seed: o.seed(),
					Items: n, MaxAmount: 3, ReadFraction: rf,
				}
				c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
				if err != nil {
					return nil, err
				}
				for _, item := range workload.New(wcfg).ItemIDs() {
					c.CreateItem(string(item), 2000)
				}
				st := drive(dvpRunner{c}, gensFor(n, wcfg), perSite, 120*time.Millisecond)
				c.Close()
				table.AddRow(int(rf*100), "dvp", st.tps(), st.msgsPerTxn(), st.abortPct())

				tc, err := newTwopcCluster(n, simnet.Config{Seed: o.seed(), MaxDelay: time.Millisecond})
				if err != nil {
					return nil, err
				}
				for _, item := range workload.New(wcfg).ItemIDs() {
					tc.createItem(item, 2000)
				}
				st2 := drive(tc, gensFor(n, wcfg), perSite, 0)
				tc.close()
				table.AddRow(int(rf*100), "2pc", st2.tps(), st2.msgsPerTxn(), st2.abortPct())
			}
			return &Result{ID: "T4", Title: "read cost", Table: table,
				Notes: []string{
					"expected shape: dvp msg/txn and abort% climb with read%;",
					"2pc reads stay cheap (read-one) — the crossover the paper concedes.",
				}}, nil
		},
	}
}

// expT5: Conc1 vs Conc2 (§6).
func expT5() Experiment {
	return Experiment{
		ID:    "T5",
		Title: "Concurrency control schemes under rising contention",
		Claim: "§6: Conc1 (timestamps) needs no network assumptions; Conc2 (strict 2PL) is correct given order-preserving links; both ensure serializability subject to redistribution.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("T5 — Conc1 vs Conc2 (order-preserving links)",
				"items", "scheme", "tps", "abort%", "correctness")
			perSite := o.scale(40, 200)
			for _, items := range []int{8, 2, 1} {
				for _, scheme := range []cc.Scheme{cc.Conc1, cc.Conc2} {
					var mu sync.Mutex
					var commits []cc.CommittedTxn
					c, err := dvp.NewCluster(dvp.Config{
						Sites: n, Seed: o.seed(), CC: scheme,
						OrderPreserving: true, MaxDelay: time.Millisecond,
						OnCommit: func(ci dvp.CommitInfo) {
							t := cc.CommittedTxn{
								TS:        tstamp.TS(ci.TS),
								Site:      ident.SiteID(ci.Site),
								Deltas:    map[ident.ItemID]core.Value{},
								Reads:     map[ident.ItemID]core.Value{},
								WriterIdx: map[ident.ItemID]uint64{},
								ReadVec:   map[ident.ItemID]map[ident.SiteID]uint64{},
							}
							for k, v := range ci.Deltas {
								t.Deltas[ident.ItemID(k)] = core.Value(v)
							}
							for k, v := range ci.Reads {
								t.Reads[ident.ItemID(k)] = core.Value(v)
							}
							for k, v := range ci.WriterIdx {
								t.WriterIdx[ident.ItemID(k)] = v
							}
							for k, vec := range ci.ReadVec {
								m := map[ident.SiteID]uint64{}
								for st, c := range vec {
									m[ident.SiteID(st)] = c
								}
								t.ReadVec[ident.ItemID(k)] = m
							}
							mu.Lock()
							commits = append(commits, t)
							mu.Unlock()
						},
					})
					if err != nil {
						return nil, err
					}
					wcfg := workload.Config{
						Kind: workload.Inventory, Seed: o.seed(),
						Items: items, MaxAmount: 3, ReadFraction: 0.05,
					}
					// Tight supply: redistribution (and its admission
					// checks) happen constantly; 3 clients per site
					// create intra-site lock conflicts.
					supply := core.Value(perSite * n)
					initial := map[ident.ItemID]core.Value{}
					for _, item := range workload.New(wcfg).ItemIDs() {
						c.CreateItem(string(item), supply)
						initial[item] = supply
					}
					st := driveClients(dvpRunner{c}, wcfg, 3, perSite, 60*time.Millisecond)
					c.Quiesce(2 * time.Second)
					final := map[ident.ItemID]core.Value{}
					for item := range initial {
						final[item] = core.Value(c.GlobalTotal(string(item)))
					}
					c.Close()
					mu.Lock()
					var serErr error
					label := "serializable(TS)"
					if scheme == cc.Conc2 {
						// The TS-replay order is the Conc1 proof's
						// serial order; Conc2's equivalent order uses
						// hypothetical timestamps not observable at
						// runtime (§6.2). The flow checker replays in
						// value-flow order instead, which is exact
						// for any scheme on crash-free histories.
						label = "serializable(flow)"
						serErr = cc.CheckSerializableFlow(initial, final, commits)
					} else {
						serErr = cc.CheckSerializable(initial, final, commits)
					}
					mu.Unlock()
					ser := label + ":PASS"
					if serErr != nil {
						ser = label + ":FAIL " + serErr.Error()
					}
					table.AddRow(items, scheme.String(), st.tps(), st.abortPct(), ser)
				}
			}
			return &Result{ID: "T5", Title: "cc schemes", Table: table,
				Notes: []string{
					"serializable must be PASS in every row;",
					"Conc1 shows extra cc-rejection aborts under contention; Conc2 avoids them but needs FIFO links.",
				}}, nil
		},
	}
}

// --- small helpers -----------------------------------------------------------

func successCount(seed int64, attempt func(site int, rng *rand.Rand) bool, sites, perSite int) (ok, total int) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= sites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-goroutine seeded stream: backoff jitter is
			// reproducible per (seed, site) and goroutines never
			// contend on a shared rand source.
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for k := 0; k < perSite; k++ {
				good := attempt(i, rng)
				mu.Lock()
				total++
				if good {
					ok++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return ok, total
}

// retry runs attempt up to n times with jittered backoff, reporting
// whether any succeeded — the client-level retry loop every
// availability number assumes. Jitter breaks symmetric livelock among
// coordinators contending for the same quorum.
func retry(rng *rand.Rand, n int, attempt func() bool) bool {
	for i := 0; i < n; i++ {
		if attempt() {
			return true
		}
		time.Sleep(time.Duration(1+rng.Intn(12*(i+1))) * time.Millisecond)
	}
	return false
}

func pct(ok, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(ok) / float64(total)
}

func toSiteIDs(xs []int) []ident.SiteID {
	out := make([]ident.SiteID, len(xs))
	for i, x := range xs {
		out[i] = ident.SiteID(x)
	}
	return out
}
