package harness

import (
	"fmt"
	"sync"
	"time"

	"dvp"
	"dvp/internal/core"
	"dvp/internal/metrics"
)

// expP1: performance — the group-commit WAL pipeline. §5 makes the
// stability of the commit record the commit point; nothing says each
// transaction must pay its own force-write. P1 sweeps site count,
// committers per site and the flusher's linger, with a fixed simulated
// force-write cost per flush (LogAppendDelay), so the batching win is
// deterministic and visible regardless of host disk speed.
func expP1() Experiment {
	return Experiment{
		ID:    "P1",
		Title: "Group commit: local-commit throughput vs sites, committers and linger",
		Claim: "§5: 'the stability of the record commit(t)' is the commit point — whose force-write made it stable is immaterial, so concurrent commit records can share one.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("P1 — disjoint local reserves, 200µs simulated force-write per flush",
				"sites", "committers/site", "group-commit", "linger", "tps", "mean-batch")
			sitesSweep := []int{1, 3}
			clientSweep := []int{1, 8}
			if !o.Quick {
				sitesSweep = []int{1, 2, 4}
				clientSweep = []int{1, 2, 4, 8}
			}
			type mode struct {
				group  bool
				linger time.Duration
			}
			modes := []mode{{false, 0}, {true, 0}, {true, 200 * time.Microsecond}}
			perClient := o.scale(40, 150)
			for _, n := range sitesSweep {
				for _, clients := range clientSweep {
					for _, m := range modes {
						c, err := dvp.NewCluster(dvp.Config{
							Sites:             n,
							Seed:              o.seed(),
							LogAppendDelay:    200 * time.Microsecond,
							GroupCommit:       m.group,
							GroupCommitLinger: m.linger,
						})
						if err != nil {
							return nil, err
						}
						// One private item per (site, committer) with all of
						// its value at the owning site: pure local commits,
						// no redistribution inside the measurement.
						item := func(i, cl int) string { return fmt.Sprintf("p1/s%d/c%d", i, cl) }
						for i := 1; i <= n; i++ {
							for cl := 0; cl < clients; cl++ {
								shares := make([]dvp.Value, n)
								shares[i-1] = core.Value(perClient) + 1
								if err := c.CreateItemShares(item(i, cl), shares); err != nil {
									c.Close()
									return nil, err
								}
							}
						}
						var mu sync.Mutex
						var committed uint64
						start := time.Now()
						var wg sync.WaitGroup
						for i := 1; i <= n; i++ {
							for cl := 0; cl < clients; cl++ {
								wg.Add(1)
								go func(i, cl int) {
									defer wg.Done()
									it := item(i, cl)
									for k := 0; k < perClient; k++ {
										if c.At(i).Reserve(it, 1).Committed() {
											mu.Lock()
											committed++
											mu.Unlock()
										}
									}
								}(i, cl)
							}
						}
						wg.Wait()
						elapsed := time.Since(start)
						meanBatch := 0.0
						if flushes := c.Metrics().SumCounters("dvp_wal_group_flushes_total"); flushes > 0 {
							meanBatch = float64(c.Metrics().SumCounters("dvp_wal_group_records_total")) /
								float64(flushes)
						}
						c.Close()
						table.AddRow(n, clients, m.group, m.linger.String(),
							float64(committed)/elapsed.Seconds(), meanBatch)
					}
				}
			}
			return &Result{ID: "P1", Title: "group-commit throughput", Table: table,
				Notes: []string{
					"expected shape: unbatched, committers at one site serialize on the 200µs",
					"force, so per-site tps is flat as committers grow; grouped, one force",
					"covers the whole batch and tps scales with committers (mean-batch tracks",
					"the committer count). Sites scale throughput linearly in both modes —",
					"each site owns its log. Linger trades single-committer latency for",
					"larger batches when arrivals are sparse.",
				}}, nil
		},
	}
}
