package harness

import (
	"fmt"
	"sync"
	"time"

	"dvp"
	"dvp/internal/core"
	"dvp/internal/metrics"
)

// expP1: performance — the group-commit WAL pipeline. §5 makes the
// stability of the commit record the commit point; nothing says each
// transaction must pay its own force-write. P1 sweeps site count,
// committers per site and the flusher's linger, with a fixed simulated
// force-write cost per flush (LogAppendDelay), so the batching win is
// deterministic and visible regardless of host disk speed.
func expP1() Experiment {
	return Experiment{
		ID:    "P1",
		Title: "Group commit: local-commit throughput vs sites, committers and linger",
		Claim: "§5: 'the stability of the record commit(t)' is the commit point — whose force-write made it stable is immaterial, so concurrent commit records can share one.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("P1 — disjoint local reserves, 200µs simulated force-write per flush",
				"sites", "committers/site", "group-commit", "linger", "tps", "mean-batch")
			sitesSweep := []int{1, 3}
			clientSweep := []int{1, 8}
			if !o.Quick {
				sitesSweep = []int{1, 2, 4}
				clientSweep = []int{1, 2, 4, 8}
			}
			type mode struct {
				group  bool
				linger time.Duration
			}
			modes := []mode{{false, 0}, {true, 0}, {true, 200 * time.Microsecond}}
			perClient := o.scale(40, 150)
			for _, n := range sitesSweep {
				for _, clients := range clientSweep {
					for _, m := range modes {
						c, err := dvp.NewCluster(dvp.Config{
							Sites:             n,
							Seed:              o.seed(),
							LogAppendDelay:    200 * time.Microsecond,
							GroupCommit:       m.group,
							GroupCommitLinger: m.linger,
						})
						if err != nil {
							return nil, err
						}
						// One private item per (site, committer) with all of
						// its value at the owning site: pure local commits,
						// no redistribution inside the measurement.
						item := func(i, cl int) string { return fmt.Sprintf("p1/s%d/c%d", i, cl) }
						for i := 1; i <= n; i++ {
							for cl := 0; cl < clients; cl++ {
								shares := make([]dvp.Value, n)
								shares[i-1] = core.Value(perClient) + 1
								if err := c.CreateItemShares(item(i, cl), shares); err != nil {
									c.Close()
									return nil, err
								}
							}
						}
						var mu sync.Mutex
						var committed uint64
						start := time.Now()
						var wg sync.WaitGroup
						for i := 1; i <= n; i++ {
							for cl := 0; cl < clients; cl++ {
								wg.Add(1)
								go func(i, cl int) {
									defer wg.Done()
									it := item(i, cl)
									for k := 0; k < perClient; k++ {
										if c.At(i).Reserve(it, 1).Committed() {
											mu.Lock()
											committed++
											mu.Unlock()
										}
									}
								}(i, cl)
							}
						}
						wg.Wait()
						elapsed := time.Since(start)
						meanBatch := 0.0
						if flushes := c.Metrics().SumCounters("dvp_wal_group_flushes_total"); flushes > 0 {
							meanBatch = float64(c.Metrics().SumCounters("dvp_wal_group_records_total")) /
								float64(flushes)
						}
						c.Close()
						table.AddRow(n, clients, m.group, m.linger.String(),
							float64(committed)/elapsed.Seconds(), meanBatch)
					}
				}
			}
			return &Result{ID: "P1", Title: "group-commit throughput", Table: table,
				Notes: []string{
					"expected shape: unbatched, committers at one site serialize on the 200µs",
					"force, so per-site tps is flat as committers grow; grouped, one force",
					"covers the whole batch and tps scales with committers (mean-batch tracks",
					"the committer count). Sites scale throughput linearly in both modes —",
					"each site owns its log. Linger trades single-committer latency for",
					"larger batches when arrivals are sparse.",
				}}, nil
		},
	}
}

// expP2: performance — the zero-allocation local-commit fast path. §5
// observes that write-only transactions with adequate local quota need
// none of the redistribution machinery; the fast path commits them
// through pooled buffers and lock-free quota hints. P2 sweeps the
// fraction of an item's value held at the executing site and reports
// the fast-path hit rate: with everything local the fast path carries
// the whole workload, and as the local share shrinks, transactions
// increasingly overrun the local quota and fall back to the full
// protocol (whose redistribution then feeds later hits).
func expP2() Experiment {
	return Experiment{
		ID:    "P2",
		Title: "Fast path: local-commit hit rate vs quota distribution",
		Claim: "§5: 'in case of write-only transactions, the initial steps of data redistribution can be ignored' — when local quota suffices, the entire redistribution apparatus (and its allocations) is skippable.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("P2 — single-unit reserves at site 1, varying site 1's initial share",
				"local-share", "committed", "fast-commits", "fallbacks", "hit-rate", "tps")
			shares := []float64{1.0, 0.5, 0.1}
			if !o.Quick {
				shares = []float64{1.0, 0.75, 0.5, 0.25, 0.1}
			}
			const sites = 4
			txns := o.scale(150, 800)
			for _, frac := range shares {
				c, err := dvp.NewCluster(dvp.Config{
					Sites:       sites,
					Seed:        o.seed(),
					GroupCommit: true,
				})
				if err != nil {
					return nil, err
				}
				// Twice the workload's demand in total value, frac of it
				// at the executing site: the run never exhausts the item
				// globally, but the local share does run dry when frac is
				// small — exactly the redistribution pressure being swept.
				total := core.Value(2 * txns)
				local := core.Value(float64(total) * frac)
				sh := make([]dvp.Value, sites)
				sh[0] = local
				rest := core.EvenShares(total-local, sites-1)
				copy(sh[1:], rest)
				if err := c.CreateItemShares("p2/item", sh); err != nil {
					c.Close()
					return nil, err
				}
				var committed uint64
				start := time.Now()
				for k := 0; k < txns; k++ {
					if c.At(1).RunRetry(dvp.NewTxn().Sub("p2/item", 1).Label("reserve"), 3).Committed() {
						committed++
					}
				}
				elapsed := time.Since(start)
				fast := c.Metrics().SumCounters("dvp_fastpath_commits_total")
				fb := c.Metrics().SumCounters("dvp_fastpath_fallback_total")
				hitRate := 0.0
				if fast+fb > 0 {
					hitRate = float64(fast) / float64(fast+fb)
				}
				c.Close()
				table.AddRow(fmt.Sprintf("%.0f%%", frac*100), committed, fast, fb,
					hitRate, float64(committed)/elapsed.Seconds())
			}
			return &Result{ID: "P2", Title: "fast-path hit rate", Table: table,
				Notes: []string{
					"expected shape: at 100% local share the hit rate is ~1.0 — every reserve",
					"commits on the fast path, no messages. As the share shrinks the local",
					"quota runs dry sooner, the hint gate declines, and the slow path pulls",
					"peer quota; each redistribution refills the local share, so the hit rate",
					"degrades gracefully rather than cliffing. tps tracks the hit rate: fast",
					"commits cost no network round trip and no per-txn allocations.",
				}}, nil
		},
	}
}
