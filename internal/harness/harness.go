// Package harness defines and runs the repository's evaluation: the
// tables (T1–T5) and figures (F1–F6) indexed in DESIGN.md §3. The
// paper itself published no measurements ("we have not addressed the
// issues of performance", §8); each experiment here quantifies one
// claim the paper makes in prose, against the baselines it cites.
//
// Every experiment is deterministic for a given seed up to goroutine
// scheduling, runs in seconds in Quick mode (bench/CI) and tens of
// seconds in full mode (cmd/dvpsim), and emits a metrics.Table whose
// rows are the "published" result.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dvp"
	"dvp/internal/metrics"
	"dvp/internal/txn"
	"dvp/internal/workload"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks sweeps and transaction counts for benchmarks and
	// CI; the shapes remain, the precision drops.
	Quick bool
	// Seed drives workloads and fault schedules (0 means 1).
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// scale returns q in Quick mode and f otherwise.
func (o Options) scale(q, f int) int {
	if o.Quick {
		return q
	}
	return f
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Table *metrics.Table
	// Notes carry pass/fail checks and caveats printed under the
	// table (e.g. "conservation: PASS").
	Notes []string
}

// Experiment is one entry in the evaluation.
type Experiment struct {
	ID    string
	Title string
	// Claim quotes the paper statement the experiment tests.
	Claim string
	Run   func(Options) (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		expT1(), expT2(), expT3(), expT4(), expT5(),
		expF1(), expF2(), expF3(), expF4(), expF5(), expF6(),
		expA1(), expA2(), expA3(),
		expP1(), expP2(),
		expN1(),
		expC1(),
	}
}

// ByID finds an experiment by its identifier (case-sensitive, e.g.
// "T2").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// --- shared drivers ----------------------------------------------------------

// runStats aggregates one workload run.
type runStats struct {
	committed uint64
	aborted   uint64
	latency   *metrics.Histogram
	elapsed   time.Duration
	msgs      uint64 // network messages sent during the run
	requests  uint64 // redistribution requests
}

func (r runStats) tps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.committed) / r.elapsed.Seconds()
}

func (r runStats) abortPct() float64 {
	total := r.committed + r.aborted
	if total == 0 {
		return 0
	}
	return 100 * float64(r.aborted) / float64(total)
}

func (r runStats) msgsPerTxn() float64 {
	if r.committed == 0 {
		return 0
	}
	return float64(r.msgs) / float64(r.committed)
}

// runner abstracts "a system that executes transactions at a site" so
// one driver loads DvP and every baseline identically.
type runner interface {
	// Run executes tx at 1-based site index i.
	Run(i int, tx *txn.Txn) *txn.Result
	// Sites is the number of sites.
	Sites() int
	// MessagesSent reads the network's sent counter.
	MessagesSent() uint64
}

// drive issues perSite transactions at every site concurrently (one
// client goroutine per site), drawing from per-site generators (equal
// seeds offset by site so demand is balanced unless weights say
// otherwise).
func drive(r runner, gens []*workload.Generator, perSite int, timeout time.Duration) runStats {
	stats := runStats{latency: &metrics.Histogram{}}
	var mu sync.Mutex
	m0 := r.MessagesSent()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 1; i <= r.Sites(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := gens[i-1]
			for k := 0; k < perSite; k++ {
				tx := g.Next()
				if timeout > 0 {
					tx.Timeout = timeout
				}
				res := r.Run(i, tx)
				mu.Lock()
				if res.Committed() {
					stats.committed++
					stats.latency.Record(res.Latency)
				} else {
					stats.aborted++
				}
				stats.requests += uint64(res.RequestsSent)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	stats.elapsed = time.Since(start)
	stats.msgs = r.MessagesSent() - m0
	return stats
}

// driveClients is drive with `clients` goroutines per site, each with
// its own generator — intra-site concurrency for contention studies.
func driveClients(r runner, wcfg workload.Config, clients, perClient int, timeout time.Duration) runStats {
	stats := runStats{latency: &metrics.Histogram{}}
	var mu sync.Mutex
	m0 := r.MessagesSent()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 1; i <= r.Sites(); i++ {
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			g := func() *workload.Generator {
				c := wcfg
				c.Seed = wcfg.Seed + int64(i)*101 + int64(cl)*10007
				return workload.New(c)
			}()
			go func(i int, g *workload.Generator) {
				defer wg.Done()
				for k := 0; k < perClient; k++ {
					tx := g.Next()
					if timeout > 0 {
						tx.Timeout = timeout
					}
					res := r.Run(i, tx)
					mu.Lock()
					if res.Committed() {
						stats.committed++
						stats.latency.Record(res.Latency)
					} else {
						stats.aborted++
					}
					stats.requests += uint64(res.RequestsSent)
					mu.Unlock()
				}
			}(i, g)
		}
	}
	wg.Wait()
	stats.elapsed = time.Since(start)
	stats.msgs = r.MessagesSent() - m0
	return stats
}

// gensFor builds one generator per site with distinct seeds.
func gensFor(n int, cfg workload.Config) []*workload.Generator {
	out := make([]*workload.Generator, n)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*101
		out[i] = workload.New(c)
	}
	return out
}

// dvpRunner adapts a dvp.Cluster to the runner interface.
type dvpRunner struct{ c *dvp.Cluster }

func (r dvpRunner) Run(i int, tx *txn.Txn) *txn.Result {
	b := builderFromTxn(tx)
	return r.c.At(i).Run(b)
}
func (r dvpRunner) Sites() int           { return r.c.Sites() }
func (r dvpRunner) MessagesSent() uint64 { return r.c.NetStats().Sent }

// builderFromTxn rebuilds a public TxnBuilder from an internal txn
// description (the generators speak internal txn; the public API
// speaks builders).
func builderFromTxn(tx *txn.Txn) *dvp.TxnBuilder {
	b := dvp.NewTxn().Ask(tx.Ask).Timeout(tx.Timeout).Label(tx.Label)
	for _, op := range tx.Ops {
		if d := op.Op.Delta(); d >= 0 {
			b.Add(string(op.Item), d)
		} else {
			b.Sub(string(op.Item), -d)
		}
	}
	for _, item := range tx.Reads {
		b.Read(string(item))
	}
	return b
}

// sortedKeys returns map keys in stable order for deterministic rows.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
