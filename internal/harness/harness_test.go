package harness

import (
	"strings"
	"testing"
)

func TestRegistryCompleteAndUnique(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "F1", "F2", "F3", "F4", "F5", "F6", "A1", "A2", "A3", "P1", "P2", "N1", "C1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d id = %s, want %s", i, e.ID, want[i])
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
		if !strings.Contains(e.Claim, "§") {
			t.Errorf("%s: claim does not cite a paper section: %q", e.ID, e.Claim)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("T2")
	if err != nil || e.ID != "T2" {
		t.Errorf("ByID(T2) = %v, %v", e.ID, err)
	}
	if _, err := ByID("T99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{}
	if o.seed() != 1 {
		t.Error("zero seed must default to 1")
	}
	if (Options{Seed: 7}).seed() != 7 {
		t.Error("explicit seed ignored")
	}
	if (Options{Quick: true}).scale(3, 9) != 3 || (Options{}).scale(3, 9) != 9 {
		t.Error("scale helper wrong")
	}
}
