package harness

import (
	"time"

	"dvp/internal/baseline/replica"
	"dvp/internal/baseline/twopc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/simnet"
	"dvp/internal/store"
	"dvp/internal/txn"
	"dvp/internal/wal"
)

// twopcCluster assembles the traditional 2PC baseline over a simnet.
type twopcCluster struct {
	net   *simnet.Net
	sites []*twopc.Site
}

func newTwopcCluster(n int, netCfg simnet.Config) (*twopcCluster, error) {
	return newTwopcClusterDelay(n, netCfg, 0)
}

// newTwopcClusterDelay adds simulated stable-storage latency to every
// force-write (prepare and decision records), matching what the DvP
// side pays per append when configured with the same delay.
func newTwopcClusterDelay(n int, netCfg simnet.Config, appendDelay time.Duration) (*twopcCluster, error) {
	c := &twopcCluster{net: simnet.New(netCfg)}
	peers := make([]ident.SiteID, n)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}
	for i := 0; i < n; i++ {
		s, err := twopc.New(twopc.Config{
			ID:          peers[i],
			Peers:       peers,
			Log:         wal.NewSlowDevice(wal.NewMemLog(), appendDelay, nil),
			DB:          store.New(),
			Endpoint:    c.net.Endpoint(peers[i]),
			LockTimeout: 40 * time.Millisecond,
			VoteTimeout: 80 * time.Millisecond,
			RetryEvery:  15 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		c.sites = append(c.sites, s)
	}
	for _, s := range c.sites {
		s.Start()
	}
	return c, nil
}

func (c *twopcCluster) createItem(item ident.ItemID, total core.Value) error {
	// Full replication: every site holds the whole value.
	for _, s := range c.sites {
		if err := s.DB().Create(item, total); err != nil {
			return err
		}
	}
	return nil
}

func (c *twopcCluster) close() { c.net.Close() }

func (c *twopcCluster) Run(i int, tx *txn.Txn) *txn.Result { return c.sites[i-1].Run(tx) }
func (c *twopcCluster) Sites() int                         { return len(c.sites) }
func (c *twopcCluster) MessagesSent() uint64               { return c.net.Stats().Sent }

// replicaCluster assembles the quorum / primary-copy baseline.
type replicaCluster struct {
	net   *simnet.Net
	sites []*replica.Site
}

func newReplicaCluster(n int, mode replica.Mode, netCfg simnet.Config) *replicaCluster {
	c := &replicaCluster{net: simnet.New(netCfg)}
	peers := make([]ident.SiteID, n)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}
	for i := 0; i < n; i++ {
		c.sites = append(c.sites, replica.New(replica.Config{
			ID:          peers[i],
			Peers:       peers,
			Endpoint:    c.net.Endpoint(peers[i]),
			Mode:        mode,
			Timeout:     60 * time.Millisecond,
			LockTimeout: 30 * time.Millisecond,
		}))
	}
	for _, s := range c.sites {
		s.Start()
	}
	return c
}

func (c *replicaCluster) createItem(item ident.ItemID, total core.Value) {
	for _, s := range c.sites {
		s.Create(item, total)
	}
}

func (c *replicaCluster) close() { c.net.Close() }

func (c *replicaCluster) Run(i int, tx *txn.Txn) *txn.Result { return c.sites[i-1].Run(tx) }
func (c *replicaCluster) Sites() int                         { return len(c.sites) }
func (c *replicaCluster) MessagesSent() uint64               { return c.net.Stats().Sent }
