package harness

import (
	"strings"
	"testing"
)

// runQuick executes one experiment in Quick mode and applies generic
// sanity checks: rows exist, notes exist, no FAIL marker in any cell.
func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	rows := res.Table.Rows()
	if len(rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range rows {
		for _, cell := range row {
			if strings.Contains(cell, "FAIL") {
				t.Errorf("%s row contains FAIL: %v", id, row)
			}
		}
	}
	if len(res.Notes) == 0 {
		t.Errorf("%s has no interpretation notes", id)
	}
	return res
}

// The cheap experiments run end to end in CI; the expensive ones are
// exercised by `go test -bench` and cmd/dvpsim.
func TestRunF6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "F6")
	// Conservation column: N must strictly decrease by 10 per step.
	rows := res.Table.Rows()
	if rows[0][6] != "100" {
		t.Errorf("F6 initial N = %s, want 100", rows[0][6])
	}
}

func TestRunA2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "A2")
	// 3 Zipf skews × 3 rebalancer modes.
	if len(res.Table.Rows()) != 9 {
		t.Errorf("A2 rows = %d, want 9 (3 skews × 3 modes)", len(res.Table.Rows()))
	}
}

func TestRunA3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "A3")
	if len(res.Table.Rows()) != 3 {
		t.Errorf("A3 rows = %d, want 3 policies", len(res.Table.Rows()))
	}
}

func TestRunA1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "A1")
	if len(res.Table.Rows()) != 2 {
		t.Errorf("A1 rows = %d, want 2 (off/on)", len(res.Table.Rows()))
	}
}

func TestRunP1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "P1")
	// Quick sweep: 2 site counts × 2 committer counts × 3 modes.
	if got := len(res.Table.Rows()); got != 12 {
		t.Errorf("P1 rows = %d, want 12", got)
	}
}

func TestRunP2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "P2")
	rows := res.Table.Rows()
	if len(rows) != 3 {
		t.Fatalf("P2 rows = %d, want 3 shares", len(rows))
	}
	// First row is the 100% local share: the fast path must carry
	// essentially the whole workload (hit-rate is column 4).
	if hit := rows[0][4]; !strings.HasPrefix(hit, "1") && !strings.HasPrefix(hit, "0.9") {
		t.Errorf("P2 all-local hit rate = %s, want ≥ 0.9", hit)
	}
}

func TestRunN1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "N1")
	rows := res.Table.Rows()
	if len(rows) != 2 {
		t.Fatalf("N1 rows = %d, want 2 (hardened, legacy)", len(rows))
	}
	// Both modes must actually commit through both windows; the mode
	// label is column 0, throughput columns 1–2.
	for _, row := range rows {
		for col := 1; col <= 2; col++ {
			if row[col] == "0" || row[col] == "0.0" {
				t.Errorf("N1 %s window tps = %s, want > 0 (row %v)", row[0], row[col], row)
			}
		}
	}
}

func TestRunT5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res := runQuick(t, "T5")
	// Every row must carry an explicit serializability PASS.
	for _, row := range res.Table.Rows() {
		if !strings.Contains(row[4], "PASS") {
			t.Errorf("T5 row without PASS: %v", row)
		}
	}
}
