package harness

import (
	"fmt"
	"sync"
	"time"

	"dvp"
	"dvp/internal/baseline/escrow"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/simnet"
	"dvp/internal/txn"
	"dvp/internal/wire"
)

// expF1: abort rate vs demand pressure and request policy (§3 leaves
// the "one or more sites" choice open; §8 calls for exactly this
// study). A single client at site 1 — so no intra-site lock conflicts
// pollute the measurement — reserves seats it mostly does not hold
// locally; peers drain unevenly as the run progresses, and the ask
// policy decides whether a request finds a peer that still has value
// before the timeout.
func expF1() Experiment {
	return Experiment{
		ID:    "F1",
		Title: "Abort rate vs demand pressure, by ask policy",
		Claim: "§3/§5: when the local value is inadequate, requests are sent to one or more sites; failing responses abort the transaction — the policy sets how often that happens.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("F1 — supply concentration → abort% per ask policy",
				"skew-%", "policy", "abort%", "msg/txn", "tps")
			perRun := o.scale(150, 600)
			// skewPct% of the remote supply sits at one peer; a policy
			// that asks few sites often asks a near-empty one.
			for _, skewPct := range []int{34, 70, 95} {
				for _, ask := range []txn.AskPolicy{txn.AskOne, txn.AskTwo, txn.AskAll} {
					c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
					if err != nil {
						return nil, err
					}
					// Demand = perRun × 2 seats; supply ×2 headroom;
					// site 1 starts with nothing, so every transaction
					// redistributes.
					supply := core.Value(perRun * 4)
					rich := supply * core.Value(skewPct) / 100
					rest := (supply - rich) / 2
					c.CreateItemShares("flight/A", []dvp.Value{
						0, rich, rest, supply - rich - rest,
					})
					m0 := c.NetStats().Sent
					var committed, aborted int
					start := time.Now()
					for k := 0; k < perRun; k++ {
						res := c.At(1).Run(dvp.NewTxn().
							Sub("flight/A", 2).Ask(ask).
							Timeout(40 * time.Millisecond))
						if res.Committed() {
							committed++
						} else {
							aborted++
						}
					}
					elapsed := time.Since(start)
					msgs := c.NetStats().Sent - m0
					c.Close()
					total := committed + aborted
					table.AddRow(skewPct, ask.String(),
						100*float64(aborted)/float64(total),
						float64(msgs)/float64(max(committed, 1)),
						float64(committed)/elapsed.Seconds())
				}
			}
			return &Result{ID: "F1", Title: "demand pressure vs policy", Table: table,
				Notes: []string{
					"expected shape: ask-one aborts most (its rotating single request often lands",
					"on a drained peer) and cheapest in messages; ask-all the reverse.",
				}}, nil
		},
	}
}

// expF2: the non-blocking bound (§2, §5) against 2PC's in-doubt
// window.
func expF2() Experiment {
	return Experiment{
		ID:    "F2",
		Title: "Worst-case item unavailability when a commit is interrupted",
		Claim: "§2: non-blocking means a decision in a bounded number of locally-measured steps; 2PC's in-doubt participant holds locks until the failure heals.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("F2 — outage duration D → observed block/abort time",
				"outage-ms", "system", "item-blocked-ms", "txn-decided-ms")
			outages := []int{25, 50, 100, 200}
			if !o.Quick {
				outages = []int{25, 50, 100, 200, 400, 800}
			}
			for _, d := range outages {
				D := time.Duration(d) * time.Millisecond

				// DvP: cut the granting site mid-redistribution for D.
				// The waiting transaction aborts at its own timeout —
				// independent of D — and the item at the healthy site
				// is locked only until then.
				{
					c, err := dvp.NewCluster(dvp.Config{Sites: 2, Seed: o.seed()})
					if err != nil {
						return nil, err
					}
					c.CreateItemShares("x", []dvp.Value{0, 100})
					c.SetLink(2, 1, false) // grants can't return
					t0 := time.Now()
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 5).Timeout(40 * time.Millisecond))
					decided := time.Since(t0)
					blocked := decided // item at site 1 locked until abort
					if res.Committed() {
						return nil, fmt.Errorf("F2: impossible commit")
					}
					time.Sleep(D) // outage persists; nothing else blocks
					c.Heal()
					c.Close()
					table.AddRow(d, "dvp", ms(blocked), ms(decided))
				}

				// 2PC: participants prepare, then votes/decisions are
				// dropped for D. Their items stay locked the whole
				// outage.
				{
					tc, err := newTwopcCluster(3, simnet.Config{Seed: o.seed()})
					if err != nil {
						return nil, err
					}
					tc.createItem("x", 100)
					tc.net.SetFilter(func(from, to ident.SiteID, kind wire.Kind) bool {
						return kind != wire.KVote && kind != wire.KDecision
					})
					t0 := time.Now()
					res := tc.Run(1, &txn.Txn{Ops: []txn.ItemOp{{Item: "x", Op: core.Decr{M: 5}}}})
					decided := time.Since(t0)
					if res.Committed() {
						return nil, fmt.Errorf("F2: impossible 2pc commit")
					}
					time.Sleep(D)
					tc.net.SetFilter(nil)
					// Wait until the in-doubt window actually closes.
					deadline := time.Now().Add(5 * time.Second)
					for time.Now().Before(deadline) {
						if tc.sites[1].Stats().InDoubtNow == 0 {
							break
						}
						time.Sleep(2 * time.Millisecond)
					}
					blocked := tc.sites[1].Stats().BlockedTime
					tc.close()
					table.AddRow(d, "2pc", ms(blocked), ms(decided))
				}
			}
			return &Result{ID: "F2", Title: "blocking bound", Table: table,
				Notes: []string{
					"expected shape: dvp item-blocked-ms stays ≈ its timeout whatever the outage;",
					"2pc item-blocked-ms grows ≈ linearly with the outage (the in-doubt window).",
				}}, nil
		},
	}
}

// expF3: hot-spot aggregate relief (§8, escrow comparison).
func expF3() Experiment {
	return Experiment{
		ID:    "F3",
		Title: "Hot-spot aggregate throughput vs client concurrency",
		Claim: "§8: DvP may alleviate hot-spot contention by letting several processes access a quantity simultaneously; escrow [7] is the single-site state of the art; naive locking serializes.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("F3 — withdrawals/s against one aggregate field",
				"clients", "naive-lock", "escrow", "dvp-4site")
			concurrencies := []int{1, 2, 4, 8, 16}
			if !o.Quick {
				concurrencies = []int{1, 2, 4, 8, 16, 32, 64}
			}
			perClient := o.scale(60, 150)
			// Every design pays the same per-transaction commit cost:
			// a 500µs stable-storage force-write (a wait, not CPU, so
			// the comparison is core-count independent). Naive holds
			// its exclusive lock across the write — that is its
			// design; escrow and DvP do not.
			const work = 500 * time.Microsecond
			for _, clients := range concurrencies {
				naive := f3Naive(clients, perClient, work)
				esc := f3Escrow(clients, perClient, work)
				dvpTps, err := f3Dvp(o, clients, perClient, work)
				if err != nil {
					return nil, err
				}
				table.AddRow(clients, naive, esc, dvpTps)
			}
			return &Result{ID: "F3", Title: "hot spot", Table: table,
				Notes: []string{
					"expected shape: naive flat (serialized); escrow scales with clients on one site;",
					"dvp scales like escrow while also distributing the field across sites.",
				}}, nil
		},
	}
}

// expF4: guaranteed delivery under loss (§4.2).
func expF4() Experiment {
	return Experiment{
		ID:    "F4",
		Title: "Vm delivery latency and conservation under message loss",
		Claim: "§4.2: a Vm is never lost; if a message is resent often enough it is eventually delivered — at the cost of latency, never of value.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("F4 — loss% → redistribution latency and conservation",
				"loss%", "commit%", "p50", "p99", "retransmits/txn", "conserved")
			perRun := o.scale(40, 150)
			for _, loss := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
				c, err := dvp.NewCluster(dvp.Config{
					Sites: 2, Seed: o.seed(), LossProb: loss,
					MaxDelay: time.Millisecond, RetransmitEvery: 5 * time.Millisecond,
				})
				if err != nil {
					return nil, err
				}
				total := dvp.Value(perRun * 4)
				c.CreateItemShares("x", []dvp.Value{0, total})
				lat := &metrics.Histogram{}
				committed := 0
				for k := 0; k < perRun; k++ {
					// Site 1 always needs redistribution: its quota is
					// drained by construction (every grant is spent).
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 2).
						Timeout(500 * time.Millisecond))
					if res.Committed() {
						committed++
						lat.Record(res.Latency)
					}
				}
				c.Quiesce(5 * time.Second)
				conserved := c.GlobalTotal("x") == total-dvp.Value(committed*2)
				retx := float64(c.SiteStats(2).Retransmissions) / float64(max(committed, 1))
				c.Close()
				table.AddRow(int(loss*100), pct(committed, perRun),
					lat.Quantile(0.5), lat.Quantile(0.99), retx, conserved)
			}
			return &Result{ID: "F4", Title: "Vm under loss", Table: table,
				Notes: []string{
					"conserved must be true in every row;",
					"expected shape: latency and retransmissions grow with loss; value never disappears.",
				}}, nil
		},
	}
}

// expF5: the partition/heal timeline (§3).
func expF5() Experiment {
	return Experiment{
		ID:    "F5",
		Title: "Committed throughput across a partition/heal timeline",
		Claim: "§3/§8: in the case of network partitions there is still the possibility of continuing with normal operations — high accessibility through the outage.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			tick := 50 * time.Millisecond
			ticks := o.scale(24, 48)
			partFrom, partTo := ticks/3, 2*ticks/3
			table := metrics.NewTable(
				fmt.Sprintf("F5 — commits per %v tick; partition during [%d,%d)", tick, partFrom, partTo),
				"tick", "dvp", "2pc", "partitioned")

			// Both systems pay a 200µs forced-write latency, and every
			// client paces itself ~1ms between transactions: without
			// pacing, DvP's sub-millisecond local commits monopolize
			// the scheduler and starve the 2PC protocol goroutines of
			// CPU, which would show as a false 2PC outage.
			const storage = 200 * time.Microsecond
			const pace = time.Millisecond
			c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), LogAppendDelay: storage})
			if err != nil {
				return nil, err
			}
			c.CreateItem("flight/A", 1_000_000)
			// 2PC side, same demand.
			tc, err := newTwopcClusterDelay(n, simnet.Config{Seed: o.seed()}, storage)
			if err != nil {
				return nil, err
			}
			tc.createItem("flight/A", 1_000_000)

			dvpTicks := make([]uint64, ticks)
			tpcTicks := make([]uint64, ticks)
			var tickNow int64
			var mu sync.Mutex
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 1; i <= n; i++ {
				wg.Add(2)
				go func(i int) { // DvP clients
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res := c.At(i).Run(dvp.NewTxn().Sub("flight/A", 1).
							Timeout(30 * time.Millisecond))
						if res.Committed() {
							mu.Lock()
							if t := int(tickNow); t < ticks {
								dvpTicks[t]++
							}
							mu.Unlock()
						}
						time.Sleep(pace)
					}
				}(i)
				go func(i int) { // 2PC clients
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res := tc.Run(i, &txn.Txn{Ops: []txn.ItemOp{
							{Item: "flight/A", Op: core.Decr{M: 1}},
						}})
						if res.Committed() {
							mu.Lock()
							if t := int(tickNow); t < ticks {
								tpcTicks[t]++
							}
							mu.Unlock()
						}
						time.Sleep(pace)
					}
				}(i)
			}
			for t := 0; t < ticks; t++ {
				if t == partFrom {
					c.PartitionGroups([]int{1, 2}, []int{3, 4})
					tc.net.Partition([]ident.SiteID{1, 2}, []ident.SiteID{3, 4})
				}
				if t == partTo {
					c.Heal()
					tc.net.Heal()
				}
				time.Sleep(tick)
				mu.Lock()
				tickNow++
				mu.Unlock()
			}
			close(stop)
			wg.Wait()
			c.Close()
			tc.close()
			for t := 0; t < ticks; t++ {
				table.AddRow(t, dvpTicks[t], tpcTicks[t], t >= partFrom && t < partTo)
			}
			return &Result{ID: "F5", Title: "partition timeline", Table: table,
				Notes: []string{
					"expected shape: dvp throughput continues through the partition window;",
					"2pc throughput drops to ~0 inside it and resumes after heal.",
				}}, nil
		},
	}
}

// expF6: quota flow toward demand — the paper's §3 worked example as
// a time series.
func expF6() Experiment {
	return Experiment{
		ID:    "F6",
		Title: "Per-site quota dynamics with demand at one site",
		Claim: "§3: the motivation for sending requests is to redistribute the value so the demanding site can proceed — value flows to demand while N is conserved.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("F6 — N_1..N_4 after every 10 one-seat reservations at site 1",
				"step", "N1", "N2", "N3", "N4", "in-flight", "N")
			c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
			if err != nil {
				return nil, err
			}
			c.CreateItem("flight/A", 100) // 25/25/25/25, the paper's opening state
			steps := o.scale(6, 9)
			row := func(step int) {
				c.Quiesce(time.Second)
				var onSite dvp.Value
				var qs [n]dvp.Value
				for i := 1; i <= n; i++ {
					qs[i-1] = c.Quota(i, "flight/A")
					onSite += qs[i-1]
				}
				total := c.GlobalTotal("flight/A")
				table.AddRow(step, qs[0], qs[1], qs[2], qs[3], total-onSite, total)
			}
			row(0)
			for step := 1; step <= steps; step++ {
				for k := 0; k < 10; k++ {
					c.At(1).RunRetry(dvp.NewTxn().Sub("flight/A", 1).
						Timeout(80*time.Millisecond), 3)
				}
				row(step)
			}
			c.Close()
			return &Result{ID: "F6", Title: "quota dynamics", Table: table,
				Notes: []string{
					"expected shape: N_2..N_4 drain toward site 1 as its demand exhausts local quota;",
					"N falls by exactly the committed reservations; in-flight returns to 0 at each step.",
				}}, nil
		},
	}
}

// --- F3 helpers ---------------------------------------------------------------

// f3Naive measures the lock-held-for-the-transaction design.
func f3Naive(clients, perClient int, work time.Duration) float64 {
	acct := escrow.NewLockedAccount(core.Value(clients*perClient) * 2)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, commit, _ := acct.Begin()
				time.Sleep(work) // force-write INSIDE the exclusive lock
				commit(-1)
			}
		}()
	}
	wg.Wait()
	return float64(clients*perClient) / time.Since(start).Seconds()
}

// f3Escrow measures O'Neil's method: the account lock is held only
// for the escrow test; the commit work happens outside it.
func f3Escrow(clients, perClient int, work time.Duration) float64 {
	acct, _ := escrow.NewAccount(core.Value(clients*perClient) * 2)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				h, err := acct.EscrowDecr(1)
				if err != nil {
					continue
				}
				time.Sleep(work) // force-write OUTSIDE the account lock
				h.Commit()
			}
		}()
	}
	wg.Wait()
	return float64(clients*perClient) / time.Since(start).Seconds()
}

// f3Dvp measures DvP with the field partitioned over 4 sites; clients
// round-robin across sites. Its commit pays the same force-write
// latency through the site's (slow) stable log.
func f3Dvp(o Options, clients, perClient int, work time.Duration) (float64, error) {
	const n = 4
	c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), LogAppendDelay: work})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	c.CreateItem("agg", core.Value(clients*perClient)*2)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			at := w%n + 1
			for i := 0; i < perClient; i++ {
				c.At(at).Run(dvp.NewTxn().Sub("agg", 1).Timeout(50 * time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	return float64(clients*perClient) / time.Since(start).Seconds(), nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
