package harness

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"dvp"
	"dvp/internal/core"
	"dvp/internal/metrics"
)

// expA1: ablation — proactive rebalancing (Rds transactions, §5/§8).
// The paper's demand-driven requests are reactive; §8 asks for
// "performance studies to find the best ways to distribute the data".
// A1 measures the abort-rate effect of a simple proactive policy
// (periodically even out quotas) under concentrated demand.
func expA1() Experiment {
	return Experiment{
		ID:    "A1",
		Title: "Ablation: proactive rebalancing vs demand-driven only",
		Claim: "§5/§8: Rds transactions may redistribute value ahead of demand; the paper leaves the distribution policy to future study.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("A1 — all demand at site 1, ask-one requests",
				"rebalancer", "abort%", "tps", "rds-transfers")
			perRun := o.scale(120, 500)
			for _, rebalance := range []bool{false, true} {
				c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
				if err != nil {
					return nil, err
				}
				c.CreateItem("x", core.Value(perRun*3))
				transfers := 0
				var tmu sync.Mutex
				stopRebal := func() {}
				if rebalance {
					// Count transfers via a manual loop (the public
					// StartRebalancer doesn't report counts).
					done := make(chan struct{})
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						tick := time.NewTicker(8 * time.Millisecond)
						defer tick.Stop()
						for {
							select {
							case <-done:
								return
							case <-tick.C:
								m := c.Rebalance("x")
								tmu.Lock()
								transfers += m
								tmu.Unlock()
							}
						}
					}()
					stopRebal = func() { close(done); wg.Wait() }
				}
				var committed, aborted int
				start := time.Now()
				for k := 0; k < perRun; k++ {
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 2).
						Ask(dvp.AskOne).Timeout(40 * time.Millisecond))
					if res.Committed() {
						committed++
					} else {
						aborted++
					}
				}
				elapsed := time.Since(start)
				stopRebal()
				c.Close()
				tmu.Lock()
				tr := transfers
				tmu.Unlock()
				table.AddRow(rebalance,
					100*float64(aborted)/float64(committed+aborted),
					float64(committed)/elapsed.Seconds(), tr)
			}
			return &Result{ID: "A1", Title: "rebalancer ablation", Table: table,
				Notes: []string{
					"expected shape: with the rebalancer, abort% drops sharply and tps rises —",
					"value arrives at the hot site before demand does.",
				}}, nil
		},
	}
}

// expA3: ablation — grant policy (§3 leaves "how much to send" open;
// core.SplitPolicy implements the candidates).
func expA3() Experiment {
	return Experiment{
		ID:    "A3",
		Title: "Ablation: quota grant policy under repeated shortfall",
		Claim: "§3: 'site Z decides to send 5 seats' — the grant size is a policy; generous grants amortize future requests, stingy ones keep value where it was.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("A3 — drained site 1 reserving repeatedly (ask-all)",
				"grant-policy", "abort%", "msg/txn", "requests-honored")
			perRun := o.scale(120, 500)
			policies := []dvp.GrantPolicy{
				dvp.GrantExact, dvp.GrantHalfExcess, dvp.GrantAll,
			}
			for _, pol := range policies {
				c, err := dvp.NewCluster(dvp.Config{
					Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond, Grant: pol,
				})
				if err != nil {
					return nil, err
				}
				c.CreateItemShares("x", []dvp.Value{0,
					core.Value(perRun), core.Value(perRun), core.Value(perRun)})
				m0 := c.NetStats().Sent
				var committed, aborted int
				for k := 0; k < perRun; k++ {
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 2).
						Ask(dvp.AskAll).Timeout(50 * time.Millisecond))
					if res.Committed() {
						committed++
					} else {
						aborted++
					}
				}
				msgs := c.NetStats().Sent - m0
				honored := uint64(0)
				for i := 1; i <= n; i++ {
					honored += c.SiteStats(i).RequestsHonored
				}
				c.Close()
				table.AddRow(pol.String(),
					100*float64(aborted)/float64(committed+aborted),
					float64(msgs)/float64(max(committed, 1)), honored)
			}
			return &Result{ID: "A3", Title: "grant policy ablation", Table: table,
				Notes: []string{
					"expected shape: generous policies (half-excess, all) need fewer honored",
					"requests and fewer messages per committed transaction than exact grants.",
				}}, nil
		},
	}
}

// expA2: ablation — the decentralized demand-driven rebalancer vs the
// centralized even-share round vs no rebalancing, under Zipf-skewed
// bursty demand. §8 leaves "the best ways to distribute the data
// values among the sites" to performance studies; this is that study.
//
// The workload is a storefront economy: each round, every site's
// storefront sells a burst of seats (burst sizes Zipf-skewed across
// sites, site 1 hottest), then producers at the cold sites restock
// what sold, keeping total supply roughly constant. The burst is
// where placement policy shows: a site can only serve a burst from
// the buffer it holds when the burst starts — mid-burst asks ride a
// lossy network on a tight timeout. Even-share caps every buffer at
// the even share no matter who sells; the demand-driven policy sizes
// the hot site's buffer to its observed burst rate.
func expA2() Experiment {
	return Experiment{
		ID:    "A2",
		Title: "Ablation: demand-driven vs even-share rebalancing under Zipf-skewed bursts",
		Claim: "§8: performance studies are required to determine the best ways to distribute the data values among the sites.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("A2 — Zipf burst demand, producer restock, ask-one, 25% loss, 6ms timeouts",
				"zipf-s", "rebalancer", "deficit-abort%", "abort%", "tps", "transfers")
			rounds := o.scale(8, 24)
			const supply = core.Value(240) // total value in the economy
			const roundUnits = 120         // units sold per round across all sites
			for _, skew := range []float64{0.5, 1.5, 3.0} {
				// Zipf site weights: site i sells ∝ 1/i^s of each round.
				weights := make([]float64, n)
				var wsum float64
				for i := range weights {
					weights[i] = 1 / math.Pow(float64(i+1), skew)
					wsum += weights[i]
				}
				burst := make([]int, n) // Sub-8 transactions per site per round
				for i := range burst {
					burst[i] = int(float64(roundUnits) / 8 * weights[i] / wsum)
				}
				for _, mode := range []string{"off", "even-share", "demand"} {
					cfg := dvp.Config{Sites: n, Seed: o.seed(),
						MinDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond,
						LogAppendDelay: 300 * time.Microsecond,
						LossProb:       0.25}
					if mode == "demand" {
						cfg.Rebalance = dvp.RebalanceOptions{
							Enabled:     true,
							Interval:    5 * time.Millisecond,
							MinTransfer: 4,
							Cooldown:    10 * time.Millisecond,
							HalfLife:    100 * time.Millisecond,
							AdvertStale: 25 * time.Millisecond,
						}
					}
					c, err := dvp.NewCluster(cfg)
					if err != nil {
						return nil, err
					}
					c.CreateItem("x", supply)
					var transfers uint64
					stopRebal := func() {}
					if mode == "even-share" {
						// Cluster.StartRebalancer's loop, inlined so the
						// transfer count is observable.
						done := make(chan struct{})
						var wg sync.WaitGroup
						var tmu sync.Mutex
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(o.seed()))
							for {
								d := 4*time.Millisecond + time.Duration(rng.Int63n(int64(8*time.Millisecond)))
								select {
								case <-done:
									return
								case <-time.After(d):
									m := c.Rebalance("x")
									tmu.Lock()
									transfers += uint64(m)
									tmu.Unlock()
								}
							}
						}()
						stopRebal = func() { close(done); wg.Wait() }
					}
					var mu sync.Mutex
					var committed, aborted int
					start := time.Now()
					for r := 0; r < rounds; r++ {
						// Sell: concurrent bursts at every storefront.
						var sold int64
						var wg sync.WaitGroup
						for i := 1; i <= n; i++ {
							wg.Add(1)
							go func(i int) {
								defer wg.Done()
								for k := 0; k < burst[i-1]; k++ {
									res := c.At(i).Run(dvp.NewTxn().Sub("x", 8).
										Ask(dvp.AskOne).Timeout(6 * time.Millisecond))
									mu.Lock()
									if res.Committed() {
										committed++
										sold += 8
									} else {
										aborted++
									}
									mu.Unlock()
								}
							}(i)
						}
						wg.Wait()
						// Restock: producers at the cold sites put back
						// what sold (local write-only commits).
						for i := 0; sold > 0; i++ {
							site := 2 + i%(n-1) // sites 2..n
							if res := c.At(site).Run(dvp.NewTxn().Add("x", 4)); res.Committed() {
								mu.Lock()
								committed++
								mu.Unlock()
								sold -= 4
							}
						}
						// Lull between bursts: the rebalancers place the
						// restocked value for the next round.
						time.Sleep(25 * time.Millisecond)
					}
					elapsed := time.Since(start)
					stopRebal()
					var deficits uint64
					for i := 1; i <= n; i++ {
						deficits += c.SiteStats(i).AbortTimeout
					}
					if mode == "demand" {
						transfers = c.Metrics().SumCounters("dvp_rebalance_transfers_total")
					}
					c.Close()
					total := committed + aborted
					table.AddRow(skew, mode,
						100*float64(deficits)/float64(total),
						100*float64(aborted)/float64(total),
						float64(committed)/elapsed.Seconds(), transfers)
				}
			}
			return &Result{ID: "A2", Title: "demand-rebalancing ablation", Table: table,
				Notes: []string{
					"expected shape: as skew rises past the point where the hot site's burst",
					"exceeds its even share, even-share and off both abort on the burst tail;",
					"the demand-driven rebalancer sizes the hot buffer to demand and stays low.",
				}}, nil
		},
	}
}
