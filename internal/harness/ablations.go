package harness

import (
	"sync"
	"time"

	"dvp"
	"dvp/internal/core"
	"dvp/internal/metrics"
)

// expA1: ablation — proactive rebalancing (Rds transactions, §5/§8).
// The paper's demand-driven requests are reactive; §8 asks for
// "performance studies to find the best ways to distribute the data".
// A1 measures the abort-rate effect of a simple proactive policy
// (periodically even out quotas) under concentrated demand.
func expA1() Experiment {
	return Experiment{
		ID:    "A1",
		Title: "Ablation: proactive rebalancing vs demand-driven only",
		Claim: "§5/§8: Rds transactions may redistribute value ahead of demand; the paper leaves the distribution policy to future study.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("A1 — all demand at site 1, ask-one requests",
				"rebalancer", "abort%", "tps", "rds-transfers")
			perRun := o.scale(120, 500)
			for _, rebalance := range []bool{false, true} {
				c, err := dvp.NewCluster(dvp.Config{Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond})
				if err != nil {
					return nil, err
				}
				c.CreateItem("x", core.Value(perRun*3))
				transfers := 0
				var tmu sync.Mutex
				stopRebal := func() {}
				if rebalance {
					// Count transfers via a manual loop (the public
					// StartRebalancer doesn't report counts).
					done := make(chan struct{})
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						tick := time.NewTicker(8 * time.Millisecond)
						defer tick.Stop()
						for {
							select {
							case <-done:
								return
							case <-tick.C:
								m := c.Rebalance("x")
								tmu.Lock()
								transfers += m
								tmu.Unlock()
							}
						}
					}()
					stopRebal = func() { close(done); wg.Wait() }
				}
				var committed, aborted int
				start := time.Now()
				for k := 0; k < perRun; k++ {
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 2).
						Ask(dvp.AskOne).Timeout(40 * time.Millisecond))
					if res.Committed() {
						committed++
					} else {
						aborted++
					}
				}
				elapsed := time.Since(start)
				stopRebal()
				c.Close()
				tmu.Lock()
				tr := transfers
				tmu.Unlock()
				table.AddRow(rebalance,
					100*float64(aborted)/float64(committed+aborted),
					float64(committed)/elapsed.Seconds(), tr)
			}
			return &Result{ID: "A1", Title: "rebalancer ablation", Table: table,
				Notes: []string{
					"expected shape: with the rebalancer, abort% drops sharply and tps rises —",
					"value arrives at the hot site before demand does.",
				}}, nil
		},
	}
}

// expA2: ablation — grant policy (§3 leaves "how much to send" open;
// core.SplitPolicy implements the candidates).
func expA2() Experiment {
	return Experiment{
		ID:    "A2",
		Title: "Ablation: quota grant policy under repeated shortfall",
		Claim: "§3: 'site Z decides to send 5 seats' — the grant size is a policy; generous grants amortize future requests, stingy ones keep value where it was.",
		Run: func(o Options) (*Result, error) {
			const n = 4
			table := metrics.NewTable("A2 — drained site 1 reserving repeatedly (ask-all)",
				"grant-policy", "abort%", "msg/txn", "requests-honored")
			perRun := o.scale(120, 500)
			policies := []dvp.GrantPolicy{
				dvp.GrantExact, dvp.GrantHalfExcess, dvp.GrantAll,
			}
			for _, pol := range policies {
				c, err := dvp.NewCluster(dvp.Config{
					Sites: n, Seed: o.seed(), MaxDelay: time.Millisecond, Grant: pol,
				})
				if err != nil {
					return nil, err
				}
				c.CreateItemShares("x", []dvp.Value{0,
					core.Value(perRun), core.Value(perRun), core.Value(perRun)})
				m0 := c.NetStats().Sent
				var committed, aborted int
				for k := 0; k < perRun; k++ {
					res := c.At(1).Run(dvp.NewTxn().Sub("x", 2).
						Ask(dvp.AskAll).Timeout(50 * time.Millisecond))
					if res.Committed() {
						committed++
					} else {
						aborted++
					}
				}
				msgs := c.NetStats().Sent - m0
				honored := uint64(0)
				for i := 1; i <= n; i++ {
					honored += c.SiteStats(i).RequestsHonored
				}
				c.Close()
				table.AddRow(pol.String(),
					100*float64(aborted)/float64(committed+aborted),
					float64(msgs)/float64(max(committed, 1)), honored)
			}
			return &Result{ID: "A2", Title: "grant policy ablation", Table: table,
				Notes: []string{
					"expected shape: generous policies (half-excess, all) need fewer honored",
					"requests and fewer messages per committed transaction than exact grants.",
				}}, nil
		},
	}
}
