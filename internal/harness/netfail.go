package harness

import (
	"fmt"
	"sync"
	"time"

	"dvp/internal/cc"
	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/metrics"
	"dvp/internal/obs"
	"dvp/internal/site"
	"dvp/internal/store"
	"dvp/internal/tcpnet"
	"dvp/internal/txn"
	"dvp/internal/wal"
)

// n1Sites is the N1 cluster size: 4 real-socket sites, one of which
// dies mid-experiment. The paper's loss model (§4.2: Send is
// best-effort, retransmission owns reliability) is exactly what makes
// a silent peer death survivable — N1 measures what surviving it costs.
const n1Sites = 4

// expN1: peer-failure resilience over real sockets. The §4.2 failure
// model says a dead peer must cost the survivors nothing but the value
// parked in flight toward it — not their own throughput. N1 runs four
// DvP sites over loopback TCP, measures survivor throughput with all
// peers up, then kills one site and measures again, in two network
// configurations: hardened (the tcpnet peer state machine — dial
// backoff with jitter, priority shedding, adaptive Vm retransmission)
// and legacy (every queued frame redials the corpse, overflow drops
// whatever arrives — the pre-hardening ablation). The headline numbers
// are the throughput ratio and the dial-attempt count toward the dead
// peer over the outage window.
func expN1() Experiment {
	return Experiment{
		ID:    "N1",
		Title: "Peer outage: survivor throughput and dial pressure, hardened vs legacy",
		Claim: "§4.2: loss of messages is tolerated by the Vm mechanism — a dead peer should degrade only the value routed through it, not the survivors' local throughput.",
		Run: func(o Options) (*Result, error) {
			table := metrics.NewTable("N1 — 4 sites over loopback TCP, site 4 killed between windows",
				"mode", "baseline-tps", "outage-tps", "ratio", "dials→dead", "drops")
			baseline := time.Duration(o.scale(250, 3000)) * time.Millisecond
			outage := time.Duration(o.scale(250, 10000)) * time.Millisecond
			notes := []string{}
			for _, mode := range []string{"hardened", "legacy"} {
				r, err := runN1Mode(o, mode, baseline, outage)
				if err != nil {
					return nil, err
				}
				table.AddRow(mode, r.baseTPS, r.outTPS, r.ratio(), r.dials, r.drops)
				notes = append(notes, fmt.Sprintf(
					"%s: outage/baseline ratio %.2f (acceptance target ≥ 0.90 hardened), %d dial attempts toward the dead peer in %v",
					mode, r.ratio(), r.dials, outage.Round(time.Millisecond)))
			}
			notes = append(notes,
				"the dial columns carry the mechanism: hardened, each survivor pays one",
				"timed probe per backoff window (capped at 2s), so attempts stay rate-",
				"bounded however long the outage runs; legacy redials once per queued",
				"frame — adverts, requests and retransmissions each trigger a connect().",
				"caveat: on loopback a refused connect is ~microseconds, so the legacy",
				"throughput penalty here underestimates a real WAN (where each attempt",
				"burns a dial timeout); the attempt counts are the portable signal.")
			return &Result{ID: "N1", Title: "peer-outage resilience", Table: table, Notes: notes}, nil
		},
	}
}

// n1Stats is one mode's measurement.
type n1Stats struct {
	baseTPS, outTPS float64
	dials, drops    uint64
}

func (s n1Stats) ratio() float64 {
	if s.baseTPS <= 0 {
		return 0
	}
	return s.outTPS / s.baseTPS
}

// runN1Mode builds a fresh 4-site cluster over real sockets in the
// given network configuration, runs the baseline window at sites 1–3
// (site 4 up and serving), kills site 4, and runs the outage window at
// the same three survivors.
func runN1Mode(o Options, mode string, baseline, outage time.Duration) (n1Stats, error) {
	reg := obs.NewRegistry()
	peers := make([]ident.SiteID, n1Sites)
	for i := range peers {
		peers[i] = ident.SiteID(i + 1)
	}

	// Endpoints first: all listen on ephemeral loopback ports, then the
	// full address map is installed everywhere.
	eps := make([]*tcpnet.Endpoint, n1Sites)
	addrs := make(map[ident.SiteID]string, n1Sites)
	for i := 0; i < n1Sites; i++ {
		cfg := tcpnet.Config{
			Site:    ident.SiteID(i + 1),
			Listen:  "127.0.0.1:0",
			Metrics: reg,
		}
		if mode == "legacy" {
			cfg.DialBackoffMin = -1 // pre-hardening: dial per frame
			cfg.NoShedPriority = true
		}
		ep, err := tcpnet.New(cfg)
		if err != nil {
			return n1Stats{}, err
		}
		eps[i] = ep
		addrs[ident.SiteID(i+1)] = ep.Addr()
	}
	for _, ep := range eps {
		ep.SetPeers(addrs)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	sites := make([]*site.Site, n1Sites)
	for i := 0; i < n1Sites; i++ {
		s, err := site.New(site.Config{
			ID: ident.SiteID(i + 1), Peers: peers,
			Log: wal.NewMemLog(), DB: store.New(),
			Endpoint:        eps[i],
			CC:              cc.New(cc.Conc1),
			RetransmitEvery: 5 * time.Millisecond,
			DefaultTimeout:  200 * time.Millisecond,
			Rebalance: site.RebalanceConfig{
				// The rebalancer gossips adverts to every peer each tick:
				// during the outage that is a steady frame stream toward
				// the corpse — the realistic background load the dial
				// backoff exists for.
				Enabled:  true,
				Interval: 5 * time.Millisecond,
				Seed:     o.seed() + int64(i),
			},
		})
		if err != nil {
			return n1Stats{}, err
		}
		s.Start()
		sites[i] = s
	}
	defer func() {
		for _, s := range sites {
			if s.Up() {
				s.Crash()
			}
		}
	}()

	// Stock: each site fully owns its local item (the fast-path local
	// workload), and the cross-site pool lives only at sites 2 and 4 —
	// so survivors 1 and 3 must redistribute over the wire, and during
	// the outage half the pool's supply is parked at a corpse.
	for i := 0; i < n1Sites; i++ {
		sites[i].DB().Create(n1Item(i+1), 1)
		if i%2 == 1 {
			sites[i].DB().Create("n1/pool", 1<<30)
		} else {
			sites[i].DB().Create("n1/pool", 0)
		}
	}

	survivors := sites[:n1Sites-1]
	base := driveN1(survivors, baseline)
	d0 := reg.SumCounters("dvp_net_dial_failures_total")
	p0 := reg.SumCounters("dvp_net_dropped_frames_total")

	// Kill site 4: engine first (stops its loops), then the endpoint
	// (closes the listener, so survivor dials are refused, not queued).
	sites[n1Sites-1].Crash()
	eps[n1Sites-1].Close()

	out := driveN1(survivors, outage)
	return n1Stats{
		baseTPS: base.tps(),
		outTPS:  out.tps(),
		dials:   reg.SumCounters("dvp_net_dial_failures_total") - d0,
		drops:   reg.SumCounters("dvp_net_dropped_frames_total") - p0,
	}, nil
}

func n1Item(site int) ident.ItemID {
	return ident.ItemID(fmt.Sprintf("n1/site%d", site))
}

// driveN1 runs one client per survivor site for the window: mostly
// local increments on the site's own item (fast-path commits, the
// throughput carrier), with every 16th transaction a cross-site pool
// draw under AskAll — the request fan-out that keeps real frames (and,
// during the outage, dial pressure) flowing toward every peer. A short
// pacing sleep bounds the WAL growth over long windows without hiding
// the outage's latency effects.
func driveN1(survivors []*site.Site, window time.Duration) runStats {
	stats := runStats{latency: &metrics.Histogram{}}
	var mu sync.Mutex
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range survivors {
		wg.Add(1)
		go func(s *site.Site) {
			defer wg.Done()
			own := n1Item(int(s.ID()))
			for k := 0; time.Now().Before(deadline); k++ {
				var t *txn.Txn
				if k%16 == 15 {
					t = &txn.Txn{
						Ops:     []txn.ItemOp{{Item: "n1/pool", Op: core.Decr{M: 1}}},
						Ask:     txn.AskAll,
						Timeout: 50 * time.Millisecond,
					}
				} else {
					t = &txn.Txn{Ops: []txn.ItemOp{{Item: own, Op: core.Incr{M: 1}}}}
				}
				res := s.Run(t)
				mu.Lock()
				if res.Committed() {
					stats.committed++
					stats.latency.Record(res.Latency)
				} else {
					stats.aborted++
				}
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
			}
		}(s)
	}
	wg.Wait()
	stats.elapsed = time.Since(start)
	return stats
}
