package lock

import (
	"sync"
	"testing"

	"dvp/internal/ident"
)

func TestNoWaitBasicConflict(t *testing.T) {
	l := NewNoWait()
	if !l.TryLock(1, "a") {
		t.Fatal("first lock must succeed")
	}
	if l.TryLock(2, "a") {
		t.Fatal("conflicting lock must fail immediately (no-wait)")
	}
	if !l.TryLock(1, "a") {
		t.Fatal("re-lock by holder must succeed")
	}
	l.Unlock(1, "a")
	if !l.TryLock(2, "a") {
		t.Fatal("lock after release must succeed")
	}
}

func TestNoWaitHolder(t *testing.T) {
	l := NewNoWait()
	if l.Holder("a") != ident.NoTxn {
		t.Error("unlocked item must report NoTxn")
	}
	l.TryLock(7, "a")
	if l.Holder("a") != 7 {
		t.Errorf("Holder = %v", l.Holder("a"))
	}
}

func TestNoWaitTryLockAllAtomic(t *testing.T) {
	l := NewNoWait()
	l.TryLock(9, "b")
	// Txn 1 wants a,b,c — b is taken, so nothing must be acquired.
	if l.TryLockAll(1, []ident.ItemID{"a", "b", "c"}) {
		t.Fatal("TryLockAll must fail when any item conflicts")
	}
	if l.Holder("a") != ident.NoTxn || l.Holder("c") != ident.NoTxn {
		t.Fatal("failed TryLockAll must acquire nothing (atomicity)")
	}
	l.Unlock(9, "b")
	if !l.TryLockAll(1, []ident.ItemID{"a", "b", "c"}) {
		t.Fatal("TryLockAll must succeed on free items")
	}
	for _, it := range []ident.ItemID{"a", "b", "c"} {
		if l.Holder(it) != 1 {
			t.Errorf("%s holder = %v", it, l.Holder(it))
		}
	}
}

func TestNoWaitTryLockAllWithDuplicatesAndOwned(t *testing.T) {
	l := NewNoWait()
	l.TryLock(1, "a")
	if !l.TryLockAll(1, []ident.ItemID{"a", "a", "b"}) {
		t.Fatal("TryLockAll with items already held by self must succeed")
	}
	l.ReleaseAll(1)
	if l.Locked() != 0 {
		t.Errorf("Locked = %d after ReleaseAll", l.Locked())
	}
}

func TestNoWaitUnlockWrongTxnIgnored(t *testing.T) {
	l := NewNoWait()
	l.TryLock(1, "a")
	l.Unlock(2, "a") // not the holder
	if l.Holder("a") != 1 {
		t.Error("unlock by non-holder must be ignored")
	}
}

func TestNoWaitReleaseAll(t *testing.T) {
	l := NewNoWait()
	l.TryLockAll(3, []ident.ItemID{"x", "y", "z"})
	l.TryLock(4, "w")
	l.ReleaseAll(3)
	if l.Holder("x") != ident.NoTxn || l.Holder("y") != ident.NoTxn {
		t.Error("ReleaseAll left locks behind")
	}
	if l.Holder("w") != 4 {
		t.Error("ReleaseAll released another txn's lock")
	}
}

func TestNoWaitClear(t *testing.T) {
	l := NewNoWait()
	l.TryLock(1, "a")
	l.TryLock(2, "b")
	l.Clear()
	if l.Locked() != 0 {
		t.Error("Clear left locks behind (§7 step 1)")
	}
	if !l.TryLock(3, "a") {
		t.Error("lock after Clear must succeed")
	}
}

func TestNoWaitConcurrentExclusion(t *testing.T) {
	l := NewNoWait()
	const workers = 16
	var acquired int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if l.TryLock(ident.TxnID(w+1), "hot") {
				mu.Lock()
				acquired++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if acquired != 1 {
		t.Errorf("%d goroutines acquired an exclusive lock", acquired)
	}
}

func TestNoWaitPartialUnlockKeepsOthers(t *testing.T) {
	l := NewNoWait()
	l.TryLockAll(1, []ident.ItemID{"a", "b"})
	l.Unlock(1, "a")
	if l.Holder("a") != ident.NoTxn {
		t.Error("a should be free")
	}
	if l.Holder("b") != 1 {
		t.Error("b should still be held")
	}
	// ReleaseAll afterwards must not panic or release a's new holder.
	l.TryLock(2, "a")
	l.ReleaseAll(1)
	if l.Holder("a") != 2 {
		t.Error("ReleaseAll touched a lock it no longer held")
	}
}
