package lock

import (
	"sync"
	"time"

	"dvp/internal/ident"
	"dvp/internal/vclock"
)

// Mode is a Queue lock mode.
type Mode uint8

// Lock modes for the blocking manager.
const (
	Shared Mode = iota + 1
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Queue is a conventional blocking lock manager: shared/exclusive
// modes, strict FIFO wait queues, timeout-bounded waits. It is used by
// the traditional baseline, whose blocking behaviour under failures is
// exactly what the paper argues against.
//
// Deadlocks are resolved by timeout (a waiter gives up), the common
// practice in the systems the paper cites.
type Queue struct {
	mu    sync.Mutex
	items map[ident.ItemID]*qentry
	held  map[ident.TxnID]map[ident.ItemID]Mode
	clock vclock.Clock
}

type qentry struct {
	mode    Mode
	holders map[ident.TxnID]bool
	waiters []*qwaiter
}

type qwaiter struct {
	txn  ident.TxnID
	mode Mode
	ch   chan bool // closed-with-value: true granted, false cancelled
	done bool
}

// NewQueue returns a blocking lock manager on the given clock.
func NewQueue(clock vclock.Clock) *Queue {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Queue{
		items: make(map[ident.ItemID]*qentry),
		held:  make(map[ident.TxnID]map[ident.ItemID]Mode),
		clock: clock,
	}
}

// Lock acquires item in mode for txn, waiting up to timeout. It
// returns true on grant, false on timeout (the waiter is removed) or
// if the manager was cleared while waiting. Upgrades (S held, X
// requested) are supported when txn is the sole holder.
func (q *Queue) Lock(txn ident.TxnID, item ident.ItemID, mode Mode, timeout time.Duration) bool {
	q.mu.Lock()
	e, ok := q.items[item]
	if !ok {
		e = &qentry{holders: make(map[ident.TxnID]bool)}
		q.items[item] = e
	}
	if q.grantableLocked(e, txn, mode) {
		q.grantLocked(e, txn, item, mode)
		q.mu.Unlock()
		return true
	}
	w := &qwaiter{txn: txn, mode: mode, ch: make(chan bool, 1)}
	e.waiters = append(e.waiters, w)
	q.mu.Unlock()

	select {
	case granted := <-w.ch:
		return granted
	case <-q.clock.After(timeout):
		q.mu.Lock()
		defer q.mu.Unlock()
		if w.done {
			// Race: grant arrived as the timer fired; honor it.
			return <-w.ch
		}
		q.removeWaiterLocked(e, w)
		return false
	}
}

// grantableLocked reports whether txn can take item in mode right now.
func (q *Queue) grantableLocked(e *qentry, txn ident.TxnID, mode Mode) bool {
	if len(e.holders) == 0 {
		return true
	}
	if e.holders[txn] {
		if e.mode == mode || mode == Shared {
			return true // re-entrant / downgrade-as-noop
		}
		// Upgrade: only if sole holder.
		return len(e.holders) == 1
	}
	// FIFO fairness: a new shared request must queue behind waiting
	// writers rather than starve them.
	if mode == Shared && e.mode == Shared {
		for _, w := range e.waiters {
			if w.mode == Exclusive {
				return false
			}
		}
		return true
	}
	return false
}

func (q *Queue) grantLocked(e *qentry, txn ident.TxnID, item ident.ItemID, mode Mode) {
	e.holders[txn] = true
	if mode == Exclusive || len(e.holders) == 1 {
		if e.mode != Exclusive {
			e.mode = mode
		}
		if mode == Exclusive {
			e.mode = Exclusive
		}
	}
	hm := q.held[txn]
	if hm == nil {
		hm = make(map[ident.ItemID]Mode)
		q.held[txn] = hm
	}
	if hm[item] != Exclusive {
		hm[item] = mode
	}
}

func (q *Queue) removeWaiterLocked(e *qentry, w *qwaiter) {
	for i, x := range e.waiters {
		if x == w {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// Unlock releases txn's lock on item and promotes waiters FIFO.
func (q *Queue) Unlock(txn ident.TxnID, item ident.ItemID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.unlockLocked(txn, item)
}

func (q *Queue) unlockLocked(txn ident.TxnID, item ident.ItemID) {
	e, ok := q.items[item]
	if !ok || !e.holders[txn] {
		return
	}
	delete(e.holders, txn)
	if hm := q.held[txn]; hm != nil {
		delete(hm, item)
		if len(hm) == 0 {
			delete(q.held, txn)
		}
	}
	if len(e.holders) == 0 {
		e.mode = 0
	}
	q.promoteLocked(e, item)
}

// promoteLocked grants as many queued waiters as compatibility allows,
// in FIFO order.
func (q *Queue) promoteLocked(e *qentry, item ident.ItemID) {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if !q.grantableLocked(e, w.txn, w.mode) {
			return
		}
		e.waiters = e.waiters[1:]
		q.grantLocked(e, w.txn, item, w.mode)
		w.done = true
		w.ch <- true
	}
}

// ReleaseAll releases every lock txn holds.
func (q *Queue) ReleaseAll(txn ident.TxnID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	hm := q.held[txn]
	items := make([]ident.ItemID, 0, len(hm))
	for it := range hm {
		items = append(items, it)
	}
	for _, it := range items {
		q.unlockLocked(txn, it)
	}
}

// Clear drops all lock state, cancelling every waiter (they observe a
// false grant). Models the crash of the site holding the table.
func (q *Queue) Clear() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range q.items {
		for _, w := range e.waiters {
			w.done = true
			w.ch <- false
		}
	}
	q.items = make(map[ident.ItemID]*qentry)
	q.held = make(map[ident.TxnID]map[ident.ItemID]Mode)
}

// HeldBy returns the mode txn holds on item (0 if none).
func (q *Queue) HeldBy(txn ident.TxnID, item ident.ItemID) Mode {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.held[txn][item]
}

// Waiters reports the number of queued waiters on item.
func (q *Queue) Waiters(item ident.ItemID) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.items[item]; ok {
		return len(e.waiters)
	}
	return 0
}
