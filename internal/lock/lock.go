// Package lock provides the two lock managers the system needs:
//
//   - NoWait: the paper's conservative protocol (§5–§6). Locks are
//     exclusive and never waited for — a conflict is answered
//     immediately with failure, the requester aborts or declines the
//     request, and the system is trivially deadlock-free ("there is no
//     situation where an indefinite amount of waiting is involved",
//     §8).
//
//   - Queue: a conventional blocking manager with shared/exclusive
//     modes and FIFO queues, used by the traditional 2PL+2PC baseline.
//     Waiting is bounded by a caller-supplied timeout; it is the
//     baseline's blocking behaviour that the experiments measure.
//
// Lock state is volatile by design: the paper's recovery (§7) begins
// by discarding the lock table, and concludes lock information "need
// not survive a failure".
package lock

import (
	"sync"

	"dvp/internal/ident"
)

// NoWait is the paper's no-wait exclusive lock table. All methods are
// safe for concurrent use.
type NoWait struct {
	mu     sync.Mutex
	holder map[ident.ItemID]ident.TxnID
	held   map[ident.TxnID][]ident.ItemID
}

// NewNoWait returns an empty no-wait lock table.
func NewNoWait() *NoWait {
	return &NoWait{
		holder: make(map[ident.ItemID]ident.TxnID),
		held:   make(map[ident.TxnID][]ident.ItemID),
	}
}

// TryLock attempts to lock item for txn. It never blocks: the result
// is immediate. Re-locking an item already held by the same txn
// succeeds (idempotent).
func (l *NoWait) TryLock(txn ident.TxnID, item ident.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h, ok := l.holder[item]; ok {
		return h == txn
	}
	l.holder[item] = txn
	l.held[txn] = append(l.held[txn], item)
	return true
}

// TryLockAll atomically acquires every item for txn (paper §5 step 1:
// "these locks are obtained atomically"): either all are acquired or
// none are. Items are deduplicated; order does not matter because the
// acquisition is atomic under the table mutex.
func (l *NoWait) TryLockAll(txn ident.TxnID, items []ident.ItemID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, it := range items {
		if h, ok := l.holder[it]; ok && h != txn {
			return false
		}
	}
	for _, it := range items {
		if _, ok := l.holder[it]; !ok {
			l.holder[it] = txn
			l.held[txn] = append(l.held[txn], it)
		}
	}
	return true
}

// Holder returns the transaction holding item (NoTxn if unlocked).
func (l *NoWait) Holder(item ident.ItemID) ident.TxnID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.holder[item]
}

// Unlock releases one item if txn holds it.
func (l *NoWait) Unlock(txn ident.TxnID, item ident.ItemID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holder[item] != txn {
		return
	}
	delete(l.holder, item)
	items := l.held[txn]
	for i, it := range items {
		if it == item {
			l.held[txn] = append(items[:i], items[i+1:]...)
			break
		}
	}
	if len(l.held[txn]) == 0 {
		delete(l.held, txn)
	}
}

// ReleaseAll releases every lock held by txn (§5 step 7).
func (l *NoWait) ReleaseAll(txn ident.TxnID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, it := range l.held[txn] {
		delete(l.holder, it)
	}
	delete(l.held, txn)
}

// Clear drops the entire lock table — the first step of §7 recovery.
func (l *NoWait) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.holder = make(map[ident.ItemID]ident.TxnID)
	l.held = make(map[ident.TxnID][]ident.ItemID)
}

// Locked reports how many items are currently locked.
func (l *NoWait) Locked() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.holder)
}
