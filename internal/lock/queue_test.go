package lock

import (
	"sync"
	"testing"
	"time"

	"dvp/internal/ident"
)

func TestQueueSharedCompatible(t *testing.T) {
	q := NewQueue(nil)
	if !q.Lock(1, "a", Shared, time.Second) {
		t.Fatal("S lock on free item")
	}
	if !q.Lock(2, "a", Shared, time.Second) {
		t.Fatal("second S lock must be compatible")
	}
	if q.HeldBy(1, "a") != Shared || q.HeldBy(2, "a") != Shared {
		t.Error("both txns should hold S")
	}
}

func TestQueueExclusiveConflictTimesOut(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	start := time.Now()
	if q.Lock(2, "a", Exclusive, 20*time.Millisecond) {
		t.Fatal("conflicting X lock must time out")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("timed out too early: %v", elapsed)
	}
	if q.Waiters("a") != 0 {
		t.Error("timed-out waiter must be dequeued")
	}
}

func TestQueueGrantOnRelease(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	done := make(chan bool)
	go func() {
		done <- q.Lock(2, "a", Exclusive, time.Second)
	}()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	q.Unlock(1, "a")
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter must be granted on release")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if q.HeldBy(2, "a") != Exclusive {
		t.Error("waiter should hold X now")
	}
}

func TestQueueFIFOWritersNotStarved(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Shared, time.Second)
	// Writer queues.
	writerDone := make(chan bool)
	go func() { writerDone <- q.Lock(2, "a", Exclusive, time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	// A later shared request must NOT jump the queued writer.
	if q.Lock(3, "a", Shared, 20*time.Millisecond) {
		t.Fatal("shared request starved a waiting writer")
	}
	q.Unlock(1, "a")
	if ok := <-writerDone; !ok {
		t.Fatal("writer not granted")
	}
}

func TestQueueUpgradeSoleHolder(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Shared, time.Second)
	if !q.Lock(1, "a", Exclusive, 50*time.Millisecond) {
		t.Fatal("sole S holder must be able to upgrade")
	}
	if q.HeldBy(1, "a") != Exclusive {
		t.Error("upgrade not recorded")
	}
	// With two S holders upgrade must fail (would deadlock; timeout).
	q2 := NewQueue(nil)
	q2.Lock(1, "b", Shared, time.Second)
	q2.Lock(2, "b", Shared, time.Second)
	if q2.Lock(1, "b", Exclusive, 20*time.Millisecond) {
		t.Fatal("upgrade with co-holders must time out")
	}
}

func TestQueueReleaseAll(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	q.Lock(1, "b", Shared, time.Second)
	q.ReleaseAll(1)
	if !q.Lock(2, "a", Exclusive, 10*time.Millisecond) {
		t.Error("a not released")
	}
	if !q.Lock(2, "b", Exclusive, 10*time.Millisecond) {
		t.Error("b not released")
	}
}

func TestQueueClearCancelsWaiters(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	done := make(chan bool)
	go func() { done <- q.Lock(2, "a", Exclusive, 5*time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	q.Clear()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cleared waiter must observe failure")
		}
	case <-time.After(time.Second):
		t.Fatal("cleared waiter never woke")
	}
}

func TestQueueDeadlockResolvedByTimeout(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	q.Lock(2, "b", Exclusive, time.Second)
	var wg sync.WaitGroup
	results := make([]bool, 2)
	wg.Add(2)
	go func() { defer wg.Done(); results[0] = q.Lock(1, "b", Exclusive, 30*time.Millisecond) }()
	go func() { defer wg.Done(); results[1] = q.Lock(2, "a", Exclusive, 30*time.Millisecond) }()
	wg.Wait()
	if results[0] && results[1] {
		t.Fatal("both sides of a deadlock were granted")
	}
	// At least one timed out — the deadlock resolved, nothing hangs.
}

func TestQueueManyReadersThenWriter(t *testing.T) {
	q := NewQueue(nil)
	const readers = 10
	for i := 1; i <= readers; i++ {
		if !q.Lock(ident.TxnID(i), "a", Shared, time.Second) {
			t.Fatalf("reader %d denied", i)
		}
	}
	writerDone := make(chan bool)
	go func() { writerDone <- q.Lock(99, "a", Exclusive, 5*time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	for i := 1; i <= readers; i++ {
		q.Unlock(ident.TxnID(i), "a")
	}
	select {
	case ok := <-writerDone:
		if !ok {
			t.Fatal("writer denied after all readers left")
		}
	case <-time.After(time.Second):
		t.Fatal("writer never granted")
	}
}

func TestQueueModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
}
