package lock

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"dvp/internal/ident"
	"dvp/internal/vclock"
)

func TestQueueSharedCompatible(t *testing.T) {
	q := NewQueue(nil)
	if !q.Lock(1, "a", Shared, time.Second) {
		t.Fatal("S lock on free item")
	}
	if !q.Lock(2, "a", Shared, time.Second) {
		t.Fatal("second S lock must be compatible")
	}
	if q.HeldBy(1, "a") != Shared || q.HeldBy(2, "a") != Shared {
		t.Error("both txns should hold S")
	}
}

func TestQueueExclusiveConflictTimesOut(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	start := time.Now()
	if q.Lock(2, "a", Exclusive, 20*time.Millisecond) {
		t.Fatal("conflicting X lock must time out")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("timed out too early: %v", elapsed)
	}
	if q.Waiters("a") != 0 {
		t.Error("timed-out waiter must be dequeued")
	}
}

func TestQueueGrantOnRelease(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	done := make(chan bool)
	go func() {
		done <- q.Lock(2, "a", Exclusive, time.Second)
	}()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	q.Unlock(1, "a")
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter must be granted on release")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
	if q.HeldBy(2, "a") != Exclusive {
		t.Error("waiter should hold X now")
	}
}

func TestQueueFIFOWritersNotStarved(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Shared, time.Second)
	// Writer queues.
	writerDone := make(chan bool)
	go func() { writerDone <- q.Lock(2, "a", Exclusive, time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	// A later shared request must NOT jump the queued writer.
	if q.Lock(3, "a", Shared, 20*time.Millisecond) {
		t.Fatal("shared request starved a waiting writer")
	}
	q.Unlock(1, "a")
	if ok := <-writerDone; !ok {
		t.Fatal("writer not granted")
	}
}

func TestQueueUpgradeSoleHolder(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Shared, time.Second)
	if !q.Lock(1, "a", Exclusive, 50*time.Millisecond) {
		t.Fatal("sole S holder must be able to upgrade")
	}
	if q.HeldBy(1, "a") != Exclusive {
		t.Error("upgrade not recorded")
	}
	// With two S holders upgrade must fail (would deadlock; timeout).
	q2 := NewQueue(nil)
	q2.Lock(1, "b", Shared, time.Second)
	q2.Lock(2, "b", Shared, time.Second)
	if q2.Lock(1, "b", Exclusive, 20*time.Millisecond) {
		t.Fatal("upgrade with co-holders must time out")
	}
}

func TestQueueReleaseAll(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	q.Lock(1, "b", Shared, time.Second)
	q.ReleaseAll(1)
	if !q.Lock(2, "a", Exclusive, 10*time.Millisecond) {
		t.Error("a not released")
	}
	if !q.Lock(2, "b", Exclusive, 10*time.Millisecond) {
		t.Error("b not released")
	}
}

func TestQueueClearCancelsWaiters(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	done := make(chan bool)
	go func() { done <- q.Lock(2, "a", Exclusive, 5*time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	q.Clear()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cleared waiter must observe failure")
		}
	case <-time.After(time.Second):
		t.Fatal("cleared waiter never woke")
	}
}

func TestQueueDeadlockResolvedByTimeout(t *testing.T) {
	q := NewQueue(nil)
	q.Lock(1, "a", Exclusive, time.Second)
	q.Lock(2, "b", Exclusive, time.Second)
	var wg sync.WaitGroup
	results := make([]bool, 2)
	wg.Add(2)
	go func() { defer wg.Done(); results[0] = q.Lock(1, "b", Exclusive, 30*time.Millisecond) }()
	go func() { defer wg.Done(); results[1] = q.Lock(2, "a", Exclusive, 30*time.Millisecond) }()
	wg.Wait()
	if results[0] && results[1] {
		t.Fatal("both sides of a deadlock were granted")
	}
	// At least one timed out — the deadlock resolved, nothing hangs.
}

func TestQueueManyReadersThenWriter(t *testing.T) {
	q := NewQueue(nil)
	const readers = 10
	for i := 1; i <= readers; i++ {
		if !q.Lock(ident.TxnID(i), "a", Shared, time.Second) {
			t.Fatalf("reader %d denied", i)
		}
	}
	writerDone := make(chan bool)
	go func() { writerDone <- q.Lock(99, "a", Exclusive, 5*time.Second) }()
	for q.Waiters("a") == 0 {
		time.Sleep(time.Microsecond)
	}
	for i := 1; i <= readers; i++ {
		q.Unlock(ident.TxnID(i), "a")
	}
	select {
	case ok := <-writerDone:
		if !ok {
			t.Fatal("writer denied after all readers left")
		}
	case <-time.After(time.Second):
		t.Fatal("writer never granted")
	}
}

func TestQueueModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
}

// The two tests below pin the grant-vs-timeout race in Lock's timeout
// branch: a waiter's timer can fire in the same instant a release
// promotes it. The queue resolves the race under q.mu — whoever gets
// the mutex first decides — and the w.done check makes the loser's
// path safe in both orders. Both tests run on a vclock.Virtual, so the
// interleavings are driven, not slept for.

// waitParked spins (no sleeps) until cond holds — used to park the
// test until the waiter goroutine has enqueued itself.
func waitParked(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("%s: never reached", what)
}

// TestQueueGrantBeatsTimeoutRace drives the order where the grant
// lands first: the timer has fired, but before the waiter can take the
// timeout path the holder releases and promotion marks the waiter
// done. The waiter must honor the grant (return true, hold the lock) —
// the pre-done-check code would instead "time out" a transaction that
// the table already records as the holder, stranding the lock forever.
func TestQueueGrantBeatsTimeoutRace(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	q := NewQueue(clk)
	if !q.Lock(1, "a", Exclusive, time.Second) {
		t.Fatal("setup lock")
	}
	got := make(chan bool, 1)
	go func() { got <- q.Lock(2, "a", Exclusive, 100*time.Millisecond) }()
	waitParked(t, "waiter enqueued", func() bool {
		return q.Waiters("a") == 1 && clk.PendingTimers() == 1
	})

	// Freeze the queue, then fire the timer: the waiter's select has
	// exactly one ready case (its grant channel is empty), so it
	// commits to the timeout branch and blocks on q.mu — which we
	// hold. Yield until it has had every chance to get there.
	q.mu.Lock()
	clk.Advance(200 * time.Millisecond)
	waitParked(t, "timer consumed", func() bool { return clk.PendingTimers() == 0 })
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	// Now the release promotes the waiter while it is stuck at the
	// mutex: done is set and the grant is buffered before the waiter
	// re-checks.
	q.unlockLocked(1, "a")
	q.mu.Unlock()

	if granted := <-got; !granted {
		t.Fatal("grant that raced the timer was dropped — waiter returned false while holding the lock")
	}
	if q.HeldBy(2, "a") != Exclusive {
		t.Errorf("waiter granted but not recorded as holder: mode %v", q.HeldBy(2, "a"))
	}
	// The honored grant must be releasable like any other.
	q.Unlock(2, "a")
	if !q.Lock(3, "a", Exclusive, time.Second) {
		t.Error("lock stranded after the raced grant was released")
	}
}

// TestQueueTimeoutBeatsGrantRace drives the other order: the waiter
// wins the mutex, sees done unset, dequeues itself and returns false.
// The subsequent release must not grant the departed waiter — the item
// must be cleanly free for the next transaction (no phantom holder, no
// stuck queue).
func TestQueueTimeoutBeatsGrantRace(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	q := NewQueue(clk)
	if !q.Lock(1, "a", Exclusive, time.Second) {
		t.Fatal("setup lock")
	}
	got := make(chan bool, 1)
	go func() { got <- q.Lock(2, "a", Exclusive, 100*time.Millisecond) }()
	waitParked(t, "waiter enqueued", func() bool {
		return q.Waiters("a") == 1 && clk.PendingTimers() == 1
	})

	clk.Advance(200 * time.Millisecond)
	if granted := <-got; granted {
		t.Fatal("waiter granted without a release")
	}
	if q.Waiters("a") != 0 {
		t.Fatal("timed-out waiter still queued")
	}

	// The release happens strictly after the timeout completed: no one
	// is promoted, and txn 2 must not appear as a holder.
	q.Unlock(1, "a")
	if q.HeldBy(2, "a") != 0 {
		t.Errorf("departed waiter holds the lock: mode %v", q.HeldBy(2, "a"))
	}
	if !q.Lock(3, "a", Exclusive, time.Second) {
		t.Error("item not grantable after timeout+release")
	}
}
