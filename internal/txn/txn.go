// Package txn defines transactions as data: the operations a client
// hands to a site for single-site execution (paper §5). The execution
// engine lives in internal/site; keeping descriptions separate lets
// workloads, examples and tests build transactions without pulling in
// the runtime.
package txn

import (
	"time"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// ItemOp applies one partitionable operator to one data item.
type ItemOp struct {
	Item ident.ItemID
	Op   core.Op
}

// AskPolicy chooses which remote sites receive quota requests when the
// local value is inadequate (§3: "a request for at least three seats
// is sent by site X to one or more sites among W, Y and Z" — the
// choice is a policy the paper leaves open; experiment F1 sweeps it).
type AskPolicy uint8

// Ask policies.
const (
	// AskAll broadcasts the request to every other site. Fastest to
	// satisfy, most message traffic, and can over-drain peers.
	AskAll AskPolicy = iota + 1
	// AskOne asks a single (rotating) peer, retries are left to the
	// timeout. Minimal traffic, highest abort risk.
	AskOne
	// AskTwo asks two rotating peers: a middle ground.
	AskTwo
)

func (p AskPolicy) String() string {
	switch p {
	case AskAll:
		return "ask-all"
	case AskOne:
		return "ask-one"
	case AskTwo:
		return "ask-two"
	default:
		return "ask?"
	}
}

// Fanout returns how many peers the policy addresses out of n.
func (p AskPolicy) Fanout(n int) int {
	switch p {
	case AskOne:
		if n < 1 {
			return n
		}
		return 1
	case AskTwo:
		if n < 2 {
			return n
		}
		return 2
	default:
		return n
	}
}

// Txn describes one transaction. Ops are applied in order; Reads are
// full reads in the traditional sense (they gather all of Π⁻¹(d)
// locally first). The zero Timeout selects the site's default.
type Txn struct {
	Ops     []ItemOp
	Reads   []ident.ItemID
	Timeout time.Duration
	Ask     AskPolicy
	// Label tags the transaction for metrics ("reserve", "cancel",
	// "audit", ...). Purely observational.
	Label string
}

// Items returns the full access set A(t), deduplicated and sorted.
func (t *Txn) Items() []ident.ItemID {
	seen := make(map[ident.ItemID]bool, len(t.Ops)+len(t.Reads))
	var items []ident.ItemID
	for _, op := range t.Ops {
		if !seen[op.Item] {
			seen[op.Item] = true
			items = append(items, op.Item)
		}
	}
	for _, it := range t.Reads {
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	return ident.SortItems(items)
}

// Needs aggregates, per item, the minimum local quota required to
// apply the transaction's operators effectively (the §5 step-2
// adequacy test). Multiple ops on one item compose in order.
func (t *Txn) Needs() map[ident.ItemID]core.Value {
	byItem := make(map[ident.ItemID][]core.Op)
	for _, op := range t.Ops {
		byItem[op.Item] = append(byItem[op.Item], op.Op)
	}
	needs := make(map[ident.ItemID]core.Value, len(byItem))
	for item, ops := range byItem {
		needs[item] = core.Compose(ops...).Needs()
	}
	return needs
}

// Deltas aggregates, per item, the net value change the transaction
// applies when it commits.
func (t *Txn) Deltas() map[ident.ItemID]core.Value {
	deltas := make(map[ident.ItemID]core.Value)
	for _, op := range t.Ops {
		deltas[op.Item] += op.Op.Delta()
	}
	return deltas
}

// IsWriteOnly reports whether the transaction needs no data gathering:
// no full reads and no local shortfall possible (all ops have zero
// Needs). Write-only transactions skip the redistribution phase
// entirely (§5: "in case of write-only transactions, the initial
// steps of data redistribution can be ignored").
func (t *Txn) IsWriteOnly() bool {
	if len(t.Reads) > 0 {
		return false
	}
	for _, op := range t.Ops {
		if op.Op.Needs() > 0 {
			return false
		}
	}
	return true
}

// Status is a transaction outcome.
type Status uint8

// Outcomes. Everything except StatusCommitted is an abort; the paper's
// protocol never blocks, so every transaction reaches one of these
// within its timeout bound.
const (
	// StatusCommitted: the §5 step-5 log record is stable.
	StatusCommitted Status = iota + 1
	// StatusLockConflict: a local value in A(t) was locked (no-wait).
	StatusLockConflict
	// StatusCCRejected: Conc1 refused the lock (TS(t) ≤ TS(d_i)).
	StatusCCRejected
	// StatusTimeout: required Vm did not arrive in time (§5 step 3).
	StatusTimeout
	// StatusSiteDown: the executing site crashed before commit.
	StatusSiteDown
)

func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusLockConflict:
		return "lock-conflict"
	case StatusCCRejected:
		return "cc-rejected"
	case StatusTimeout:
		return "timeout"
	case StatusSiteDown:
		return "site-down"
	default:
		return "status?"
	}
}

// Result reports the outcome of running a transaction.
type Result struct {
	Status Status
	// TS is the transaction's timestamp/identifier (zero if the
	// transaction never got far enough to draw one).
	TS tstamp.TS
	// Reads holds the observed value of each full read (committed
	// transactions only).
	Reads map[ident.ItemID]core.Value
	// Latency is the local wall time from initiation to decision —
	// the §2 "bounded number of steps as measured locally".
	Latency time.Duration
	// RequestsSent counts quota requests dispatched in step 2.
	RequestsSent int
	// VmAccepted counts virtual messages this transaction accepted
	// while holding its locks.
	VmAccepted int
}

// Committed reports whether the transaction committed.
func (r *Result) Committed() bool { return r.Status == StatusCommitted }
