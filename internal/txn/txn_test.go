package txn

import (
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
)

func TestItemsDedupSorted(t *testing.T) {
	tx := &Txn{
		Ops: []ItemOp{
			{Item: "b", Op: core.Decr{M: 1}},
			{Item: "a", Op: core.Incr{M: 2}},
			{Item: "b", Op: core.Incr{M: 1}},
		},
		Reads: []ident.ItemID{"c", "a"},
	}
	got := tx.Items()
	want := []ident.ItemID{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Items = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
}

func TestNeedsComposesPerItem(t *testing.T) {
	tx := &Txn{Ops: []ItemOp{
		{Item: "a", Op: core.Incr{M: 1}},
		{Item: "a", Op: core.Decr{M: 5}}, // dip: needs 4 up front
		{Item: "b", Op: core.Decr{M: 2}},
		{Item: "c", Op: core.Incr{M: 9}},
	}}
	needs := tx.Needs()
	if needs["a"] != 4 || needs["b"] != 2 || needs["c"] != 0 {
		t.Errorf("Needs = %v", needs)
	}
}

func TestDeltasNet(t *testing.T) {
	tx := &Txn{Ops: []ItemOp{
		{Item: "a", Op: core.Decr{M: 3}},
		{Item: "a", Op: core.Incr{M: 1}},
		{Item: "b", Op: core.Incr{M: 7}},
	}}
	d := tx.Deltas()
	if d["a"] != -2 || d["b"] != 7 {
		t.Errorf("Deltas = %v", d)
	}
}

func TestIsWriteOnly(t *testing.T) {
	pure := &Txn{Ops: []ItemOp{{Item: "a", Op: core.Incr{M: 5}}}}
	if !pure.IsWriteOnly() {
		t.Error("pure increment must be write-only")
	}
	needy := &Txn{Ops: []ItemOp{{Item: "a", Op: core.Decr{M: 5}}}}
	if needy.IsWriteOnly() {
		t.Error("decrement may need redistribution; not write-only")
	}
	reader := &Txn{Reads: []ident.ItemID{"a"}}
	if reader.IsWriteOnly() {
		t.Error("reads are never write-only")
	}
}

func TestAskPolicyFanout(t *testing.T) {
	if AskAll.Fanout(7) != 7 {
		t.Error("AskAll fanout")
	}
	if AskOne.Fanout(7) != 1 || AskOne.Fanout(0) != 0 {
		t.Error("AskOne fanout")
	}
	if AskTwo.Fanout(7) != 2 || AskTwo.Fanout(1) != 1 {
		t.Error("AskTwo fanout")
	}
}

func TestStatusStrings(t *testing.T) {
	statuses := []Status{StatusCommitted, StatusLockConflict, StatusCCRejected, StatusTimeout, StatusSiteDown}
	seen := map[string]bool{}
	for _, s := range statuses {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("status %d: bad/dup string %q", s, str)
		}
		seen[str] = true
	}
	if Status(99).String() != "status?" {
		t.Error("unknown status")
	}
}

func TestAskPolicyStrings(t *testing.T) {
	if AskAll.String() != "ask-all" || AskOne.String() != "ask-one" ||
		AskTwo.String() != "ask-two" || AskPolicy(9).String() != "ask?" {
		t.Error("ask policy strings")
	}
}

func TestResultCommitted(t *testing.T) {
	r := &Result{Status: StatusCommitted}
	if !r.Committed() {
		t.Error("Committed() false for committed result")
	}
	r.Status = StatusTimeout
	if r.Committed() {
		t.Error("Committed() true for timeout")
	}
}
