package recovery

// The recovery-equivalence oracle: for randomized histories containing
// checkpoints at arbitrary positions (including between a commit and
// its applied marker, and between a Vm's creation and its acceptance),
// recovering from the latest checkpoint plus the log suffix — at any
// worker count — must produce state byte-identical to a serial scan of
// the entire log that ignores checkpoints. The comparison is on the
// encoded checkpoint payload of the final state, which covers every
// item's value, timestamp and applied-LSN, every Vm channel's cursors,
// pending set and acceptance set, and the Lamport counter.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
)

// snapshotBytes canonically encodes recovered state for comparison.
// Both Snapshot and SnapshotChannels sort deterministically, so equal
// states encode to equal bytes.
func snapshotBytes(db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock) []byte {
	return (&wal.CheckpointRec{
		Items:    db.Snapshot(),
		Channels: vm.SnapshotChannels(),
		Clock:    clock.Current(),
	}).Encode()
}

// histGen grows one randomized log history while mirroring every data
// record into a live writer state — exactly the way serial replay
// would — so the checkpoint records it interleaves are consistent cuts
// by construction.
type histGen struct {
	t     *testing.T
	rng   *rand.Rand
	log   *wal.MemLog
	db    *store.Durable
	vm    *vmsg.Manager
	clock *tstamp.Clock
	items []ident.ItemID

	ctr         uint64                  // writer timestamp counter
	outSeq      map[ident.SiteID]uint64 // per-peer outbound Vm seq
	inSeq       map[ident.SiteID]uint64 // per-peer inbound Vm seq
	lastCommit  uint64                  // LSN of the last commit record
	checkpoints int
	sum         Summary // sink for bookkeep counters
}

func newHistGen(t *testing.T, seed int64) *histGen {
	g := &histGen{
		t:      t,
		rng:    rand.New(rand.NewSource(seed)),
		log:    wal.NewMemLog(),
		db:     store.New(),
		vm:     vmsg.NewManager(),
		clock:  tstamp.NewClock(1),
		outSeq: make(map[ident.SiteID]uint64),
		inSeq:  make(map[ident.SiteID]uint64),
	}
	// Enough distinct items that every worker count in the oracle sees
	// several stripes with real contention on each.
	n := 6 + g.rng.Intn(10)
	for i := 0; i < n; i++ {
		g.items = append(g.items, ident.ItemID(fmt.Sprintf("item/%d", i)))
	}
	return g
}

// appendData appends one data record and applies it to the writer
// state through the same decode/apply/bookkeep path serial replay uses.
func (g *histGen) appendData(kind wal.RecordKind, payload []byte) uint64 {
	lsn, err := g.log.Append(kind, payload)
	if err != nil {
		g.t.Fatal(err)
	}
	d := decodeRecord(wal.Record{LSN: lsn, Kind: kind, Data: payload})
	if d.err != nil {
		g.t.Fatalf("generator produced an undecodable record: %v", d.err)
	}
	if _, err := g.db.ApplyAll(d.lsn, d.actions); err != nil {
		g.t.Fatalf("generator action rejected: %v", err)
	}
	bookkeep(&d, g.vm, g.clock, &g.sum)
	return lsn
}

// checkpoint writes the writer state as a checkpoint record.
func (g *histGen) checkpoint() {
	cp := &wal.CheckpointRec{
		Items:    g.db.Snapshot(),
		Channels: g.vm.SnapshotChannels(),
		Clock:    g.clock.Current(),
	}
	if _, err := g.log.Append(wal.RecCheckpoint, cp.Encode()); err != nil {
		g.t.Fatal(err)
	}
	g.checkpoints++
}

func (g *histGen) stamp() tstamp.TS {
	g.ctr++
	return tstamp.Make(g.ctr, 1)
}

// step appends one random history element.
func (g *histGen) step() {
	switch p := g.rng.Float64(); {
	case p < 0.55: // local commit, sometimes multi-item
		nacts := 1 + g.rng.Intn(3)
		ts := g.stamp()
		var acts []wal.Action
		seen := map[ident.ItemID]bool{}
		for i := 0; i < nacts; i++ {
			item := g.items[g.rng.Intn(len(g.items))]
			if seen[item] {
				continue
			}
			seen[item] = true
			delta := core.Value(g.rng.Intn(11)) - 5
			if bal := g.db.Value(item); delta < -bal {
				delta = -bal
			}
			if delta == 0 {
				delta = 1
			}
			acts = append(acts, wal.Action{Item: item, Delta: delta, SetTS: ts})
		}
		g.lastCommit = g.appendData(wal.RecCommit, (&wal.CommitRec{Txn: ts, Actions: acts}).Encode())
	case p < 0.70: // grant quota away as a Vm
		item := g.items[g.rng.Intn(len(g.items))]
		amt := core.Value(1 + g.rng.Intn(4))
		if bal := g.db.Value(item); bal < amt {
			return // nothing to grant
		}
		to := ident.SiteID(2 + g.rng.Intn(3))
		g.outSeq[to]++
		g.appendData(wal.RecVmCreate, (&wal.VmCreateRec{
			Actions: []wal.Action{{Item: item, Delta: -amt, SetTS: g.stamp()}},
			Msgs: []wal.VmOut{{
				To: to, Seq: g.outSeq[to], Item: item,
				Amount: amt, ReqTxn: tstamp.Make(g.ctr, to),
			}},
		}).Encode())
	case p < 0.85: // accept a Vm from a peer
		item := g.items[g.rng.Intn(len(g.items))]
		from := ident.SiteID(2 + g.rng.Intn(3))
		g.inSeq[from]++
		g.appendData(wal.RecVmAccept, (&wal.VmAcceptRec{
			From: from, Seq: g.inSeq[from],
			Actions: []wal.Action{{Item: item, Delta: core.Value(1 + g.rng.Intn(4))}},
		}).Encode())
	case p < 0.93: // applied marker, occasionally split from its commit
		if g.lastCommit == 0 {
			return
		}
		if g.rng.Float64() < 0.3 {
			// The "mid-batch" cut: a checkpoint landing between a commit
			// and its applied marker must not confuse either replay path.
			g.checkpoint()
		}
		g.appendData(wal.RecApplied, (&wal.AppliedRec{CommitLSN: g.lastCommit}).Encode())
	default:
		g.checkpoint()
	}
}

// build generates the full history: initial quota, a random body, and
// at least one checkpoint at a random interior position.
func (g *histGen) build() {
	for _, item := range g.items {
		ts := g.stamp()
		g.appendData(wal.RecCommit, (&wal.CommitRec{
			Txn:     ts,
			Actions: []wal.Action{{Item: item, Delta: core.Value(20 + g.rng.Intn(100)), SetTS: ts}},
		}).Encode())
	}
	steps := 80 + g.rng.Intn(160)
	forced := 1 + g.rng.Intn(steps) // guarantee an interior checkpoint
	for i := 0; i < steps; i++ {
		if i == forced {
			g.checkpoint()
		}
		g.step()
	}
}

// TestRecoveryEquivalenceOracle holds the checkpoint-plus-suffix replay
// paths, serial and parallel, to the full-log serial reference across
// randomized histories.
func TestRecoveryEquivalenceOracle(t *testing.T) {
	const histories = 60
	for seed := int64(1); seed <= histories; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("history=%d", seed), func(t *testing.T) {
			t.Parallel()
			g := newHistGen(t, seed*911)
			g.build()

			// Reference: serial scan of the whole log, checkpoints
			// ignored (replaySerial treats RecCheckpoint as a no-op).
			refDB, refVM, refClock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
			var refSum Summary
			if err := replaySerial(g.log, refDB, refVM, refClock, 1, &refSum); err != nil {
				t.Fatalf("reference replay: %v", err)
			}
			ref := snapshotBytes(refDB, refVM, refClock)

			// The generator's writer state must agree with its own
			// history — a failure here is a bug in the oracle itself.
			if got := snapshotBytes(g.db, g.vm, g.clock); !bytes.Equal(got, ref) {
				t.Fatalf("generator state diverges from serial replay of its own log")
			}

			for _, workers := range []int{1, 4, 8} {
				db, vm, clock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
				sum, err := RecoverOpts(g.log, db, vm, clock, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := snapshotBytes(db, vm, clock); !bytes.Equal(got, ref) {
					t.Errorf("workers=%d: recovered state differs from full-log serial replay\n  checkpoints=%d records=%d summary=%+v",
						workers, g.checkpoints, g.log.LastLSN(), sum)
				}
				if sum.CheckpointLSN == 0 {
					t.Errorf("workers=%d: checkpoint not used (history has %d)", workers, g.checkpoints)
				}
				if sum.NetworkCalls != 0 {
					t.Errorf("workers=%d: recovery made network calls", workers)
				}
				if sum.Workers != workers {
					t.Errorf("summary workers = %d, want %d", sum.Workers, workers)
				}
			}
		})
	}
}

// TestRecoverFallsBackToEarlierCheckpoint corrupts the latest
// checkpoint: recovery must skip it, start from the previous valid one,
// and still reach the reference state.
func TestRecoverFallsBackToEarlierCheckpoint(t *testing.T) {
	g := newHistGen(t, 17)
	g.build()
	goodLSN := uint64(0)
	if err := g.log.Scan(1, func(r wal.Record) error {
		if r.Kind == wal.RecCheckpoint {
			goodLSN = r.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A few more records, then a checkpoint that cannot decode, then a
	// suffix the fallback path must replay from the earlier cut.
	g.step()
	if _, err := g.log.Append(wal.RecCheckpoint, []byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.step()
	}

	ref := snapshotBytes(g.db, g.vm, g.clock)
	for _, workers := range []int{1, 8} {
		db, vm, clock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
		sum, err := RecoverOpts(g.log, db, vm, clock, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.CheckpointsSkipped != 1 {
			t.Errorf("workers=%d: skipped = %d, want 1", workers, sum.CheckpointsSkipped)
		}
		if sum.CheckpointLSN != goodLSN {
			t.Errorf("workers=%d: used checkpoint %d, want earlier valid %d",
				workers, sum.CheckpointLSN, goodLSN)
		}
		if got := snapshotBytes(db, vm, clock); !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: fallback recovery diverged from writer state", workers)
		}
	}
}

// TestRecoverFallsBackToFullScan damages every checkpoint: recovery
// must degrade to a full-log scan — never error, never lose state.
func TestRecoverFallsBackToFullScan(t *testing.T) {
	l := wal.NewMemLog()
	appendRec := func(kind wal.RecordKind, data []byte) {
		if _, err := l.Append(kind, data); err != nil {
			t.Fatal(err)
		}
	}
	ts1 := tstamp.Make(3, 1)
	appendRec(wal.RecCommit, (&wal.CommitRec{
		Txn: ts1, Actions: []wal.Action{{Item: "a", Delta: 30, SetTS: ts1}},
	}).Encode())
	appendRec(wal.RecCheckpoint, []byte{0xFF})
	ts2 := tstamp.Make(5, 1)
	appendRec(wal.RecCommit, (&wal.CommitRec{
		Txn: ts2, Actions: []wal.Action{{Item: "a", Delta: -4, SetTS: ts2}},
	}).Encode())
	appendRec(wal.RecCheckpoint, []byte{})

	db, vm, clock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
	sum, err := RecoverOpts(l, db, vm, clock, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum.CheckpointLSN != 0 {
		t.Errorf("checkpoint LSN = %d, want 0 (full scan)", sum.CheckpointLSN)
	}
	if sum.CheckpointsSkipped != 2 {
		t.Errorf("skipped = %d, want 2", sum.CheckpointsSkipped)
	}
	if db.Value("a") != 26 {
		t.Errorf("value = %d, want 26", db.Value("a"))
	}
	if clock.Current() != 5 {
		t.Errorf("clock = %d, want 5", clock.Current())
	}
}

// TestRecoverParallelRejectsCorruptRecord mirrors the serial corrupt-
// record test on the parallel path: a suffix record that fails to
// decode must surface as an error from every worker count, not a panic
// or a partial silent replay.
func TestRecoverParallelRejectsCorruptRecord(t *testing.T) {
	for _, workers := range []int{2, 8} {
		l := wal.NewMemLog()
		ts := tstamp.Make(2, 1)
		l.Append(wal.RecCommit, (&wal.CommitRec{
			Txn: ts, Actions: []wal.Action{{Item: "x", Delta: 9, SetTS: ts}},
		}).Encode())
		l.Append(wal.RecCommit, []byte{0xFF}) // undecodable
		_, err := RecoverOpts(l, store.New(), vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: workers})
		if err == nil {
			t.Errorf("workers=%d: corrupt record accepted", workers)
		}
	}
}

// TestRecoverParallelMoreWorkersThanRecords exercises the degenerate
// shapes: empty suffix and fewer records than workers.
func TestRecoverParallelMoreWorkersThanRecords(t *testing.T) {
	sum, err := RecoverOpts(wal.NewMemLog(), store.New(), vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sum.RecordsScanned != 0 {
		t.Errorf("summary = %+v", sum)
	}

	l := wal.NewMemLog()
	ts := tstamp.Make(4, 1)
	l.Append(wal.RecCommit, (&wal.CommitRec{
		Txn: ts, Actions: []wal.Action{{Item: "only", Delta: 12, SetTS: ts}},
	}).Encode())
	db := store.New()
	sum, err = RecoverOpts(l, db, vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if db.Value("only") != 12 || sum.ActionsRedone != 1 {
		t.Errorf("value=%d summary=%+v", db.Value("only"), sum)
	}
}
