package recovery

import (
	"strings"
	"testing"

	"dvp/internal/core"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
)

// buildLog writes a representative history: quota creation (commit),
// a grant (vm-create), an acceptance (vm-accept), a commit, an
// applied marker.
func buildLog(t *testing.T) *wal.MemLog {
	t.Helper()
	l := wal.NewMemLog()
	appendRec := func(kind wal.RecordKind, data []byte) uint64 {
		lsn, err := l.Append(kind, data)
		if err != nil {
			t.Fatal(err)
		}
		return lsn
	}
	// Initial quota: +50 to "x".
	appendRec(wal.RecCommit, (&wal.CommitRec{
		Txn:     tstamp.Make(1, 1),
		Actions: []wal.Action{{Item: "x", Delta: 50, SetTS: tstamp.Make(1, 1)}},
	}).Encode())
	// Grant 10 to site 2 as Vm seq 1.
	appendRec(wal.RecVmCreate, (&wal.VmCreateRec{
		Actions: []wal.Action{{Item: "x", Delta: -10, SetTS: tstamp.Make(2, 2)}},
		Msgs:    []wal.VmOut{{To: 2, Seq: 1, Item: "x", Amount: 10, ReqTxn: tstamp.Make(2, 2)}},
	}).Encode())
	// Accept a Vm from site 3 (seq 4) carrying 7.
	appendRec(wal.RecVmAccept, (&wal.VmAcceptRec{
		From: 3, Seq: 4,
		Actions: []wal.Action{{Item: "x", Delta: 7}},
	}).Encode())
	// A local commit: -5.
	lsn := appendRec(wal.RecCommit, (&wal.CommitRec{
		Txn:     tstamp.Make(9, 1),
		Actions: []wal.Action{{Item: "x", Delta: -5, SetTS: tstamp.Make(9, 1)}},
	}).Encode())
	appendRec(wal.RecApplied, (&wal.AppliedRec{CommitLSN: lsn}).Encode())
	return l
}

func TestRecoverRebuildsEverything(t *testing.T) {
	l := buildLog(t)
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	sum, err := Recover(l, db, vm, clock)
	if err != nil {
		t.Fatal(err)
	}
	if db.Value("x") != 42 { // 50 -10 +7 -5
		t.Errorf("value = %d, want 42", db.Value("x"))
	}
	if sum.RecordsScanned != 5 || sum.ActionsRedone != 4 || sum.VmRestored != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.NetworkCalls != 0 {
		t.Error("recovery must make zero network calls")
	}
	// Outbound Vm re-pending for retransmission.
	if p := vm.PendingTo(2); len(p) != 1 || p[0].Amount != 10 {
		t.Errorf("pending = %+v", p)
	}
	// Inbound dedup state restored: seq 4 from site 3 must not
	// re-accept.
	if vm.ShouldAccept(3, 4) {
		t.Error("accepted Vm would be double-credited after recovery")
	}
	// Clock beyond every durable stamp this site issued.
	if ts := clock.Next(); ts.Counter() <= 9 {
		t.Errorf("clock not restored: next = %v", ts)
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	l := buildLog(t)
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	if _, err := Recover(l, db, vm, clock); err != nil {
		t.Fatal(err)
	}
	// Crash during recovery: run it again over the same state.
	sum2, err := Recover(l, db, vm, clock)
	if err != nil {
		t.Fatal(err)
	}
	if db.Value("x") != 42 {
		t.Errorf("double recovery changed the value: %d", db.Value("x"))
	}
	if sum2.ActionsRedone != 0 {
		t.Errorf("second pass redid %d actions (not idempotent)", sum2.ActionsRedone)
	}
}

func TestRecoverUsesCheckpoint(t *testing.T) {
	l := buildLog(t)
	// Snapshot current state into a checkpoint, then more history.
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	if _, err := Recover(l, db, vm, clock); err != nil {
		t.Fatal(err)
	}
	cp := &wal.CheckpointRec{
		Items:    db.Snapshot(),
		Channels: vm.SnapshotChannels(),
		Clock:    clock.Current(),
	}
	if _, err := l.Append(wal.RecCheckpoint, cp.Encode()); err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(wal.RecCommit, (&wal.CommitRec{
		Txn:     tstamp.Make(11, 1),
		Actions: []wal.Action{{Item: "x", Delta: 1, SetTS: tstamp.Make(11, 1)}},
	}).Encode())
	_ = lsn

	db2 := store.New()
	vm2 := vmsg.NewManager()
	clock2 := tstamp.NewClock(1)
	sum, err := Recover(l, db2, vm2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.CheckpointLSN == 0 {
		t.Error("checkpoint not used")
	}
	if sum.RecordsScanned != 1 {
		t.Errorf("scanned %d records after checkpoint, want 1", sum.RecordsScanned)
	}
	if db2.Value("x") != 43 {
		t.Errorf("value = %d, want 43", db2.Value("x"))
	}
	if vm2.ShouldAccept(3, 4) {
		t.Error("checkpointed dedup state lost")
	}
	if p := vm2.PendingTo(2); len(p) != 1 {
		t.Errorf("checkpointed pending lost: %+v", p)
	}
}

func TestRecoverRejectsBaselineRecords(t *testing.T) {
	l := wal.NewMemLog()
	l.Append(wal.RecPrepare, (&wal.PrepareRec{Txn: tstamp.Make(1, 1)}).Encode())
	_, err := Recover(l, store.New(), vmsg.NewManager(), tstamp.NewClock(1))
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("baseline record accepted: %v", err)
	}
}

func TestRecoverRejectsCorruptRecord(t *testing.T) {
	l := wal.NewMemLog()
	l.Append(wal.RecCommit, []byte{0xFF}) // undecodable
	if _, err := Recover(l, store.New(), vmsg.NewManager(), tstamp.NewClock(1)); err == nil {
		t.Error("corrupt record accepted")
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	sum, err := Recover(wal.NewMemLog(), store.New(), vmsg.NewManager(), tstamp.NewClock(1))
	if err != nil {
		t.Fatal(err)
	}
	if sum.RecordsScanned != 0 || sum.CheckpointLSN != 0 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestRecoverFromCompactedLogWithEmptyStore models a real process
// restart (cmd/dvpnode): the store is rebuilt from scratch and the log
// has been compacted down to [checkpoint, tail]. The checkpoint's item
// snapshot must reconstruct the store.
func TestRecoverFromCompactedLogWithEmptyStore(t *testing.T) {
	l := buildLog(t)
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	if _, err := Recover(l, db, vm, clock); err != nil {
		t.Fatal(err)
	}
	cp := &wal.CheckpointRec{
		Items:    db.Snapshot(),
		Channels: vm.SnapshotChannels(),
		Clock:    clock.Current(),
	}
	cpLSN, err := l.Append(wal.RecCheckpoint, cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(cpLSN - 1); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint history.
	l.Append(wal.RecCommit, (&wal.CommitRec{
		Txn:     tstamp.Make(20, 1),
		Actions: []wal.Action{{Item: "x", Delta: -2, SetTS: tstamp.Make(20, 1)}},
	}).Encode())

	// Fresh process: empty store, everything from the log.
	db2 := store.New()
	vm2 := vmsg.NewManager()
	clock2 := tstamp.NewClock(1)
	sum, err := Recover(l, db2, vm2, clock2)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Value("x") != 40 { // 42 from snapshot, -2 after
		t.Errorf("value = %d, want 40", db2.Value("x"))
	}
	if sum.CheckpointLSN != cpLSN || sum.RecordsScanned != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if p := vm2.PendingTo(2); len(p) != 1 {
		t.Errorf("checkpointed pending Vm lost across compaction: %+v", p)
	}
	if vm2.ShouldAccept(3, 4) {
		t.Error("dedup state lost across compaction (double credit)")
	}
	if ts := clock2.Next(); ts.Counter() <= 20 {
		t.Errorf("clock = %v", ts)
	}
}

func TestRebuildMatchesIncrementalRecovery(t *testing.T) {
	l := buildLog(t)
	// Incremental path: the store survived the crash and replay skips.
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(1)
	if _, err := Recover(l, db, vm, clock); err != nil {
		t.Fatal(err)
	}
	// Rebuild path: brand-new everything from the log alone.
	db2, vm2, sum, err := Rebuild(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.NetworkCalls != 0 {
		t.Error("rebuild must make zero network calls")
	}
	for _, item := range db.Items() {
		if db2.Value(item) != db.Value(item) {
			t.Errorf("item %q: rebuilt=%d live=%d", item, db2.Value(item), db.Value(item))
		}
	}
	if len(vm2.PendingTo(2)) != len(vm.PendingTo(2)) {
		t.Errorf("rebuilt pending = %+v, live = %+v", vm2.PendingTo(2), vm.PendingTo(2))
	}
	if vm2.ShouldAccept(3, 4) {
		t.Error("rebuilt dedup state would double-credit")
	}
}

// TestRecoverParallelRejectsBaselineAndNegative drives the parallel
// pipeline's fatal-error paths: a baseline record stops the walk
// mid-chunk (the prefix before it still replays), and an action that
// would drive a quota negative poisons the stripe scratches so the
// store keeps its pre-replay image.
func TestRecoverParallelRejectsBaselineAndNegative(t *testing.T) {
	t.Run("baseline", func(t *testing.T) {
		l := wal.NewMemLog()
		l.Append(wal.RecCommit, (&wal.CommitRec{
			Txn:     tstamp.Make(1, 1),
			Actions: []wal.Action{{Item: "x", Delta: 9, SetTS: tstamp.Make(1, 1)}},
		}).Encode())
		l.Append(wal.RecPrepare, (&wal.PrepareRec{Txn: tstamp.Make(2, 1)}).Encode())
		db := store.New()
		_, err := RecoverOpts(l, db, vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: 4})
		if err == nil || !strings.Contains(err.Error(), "baseline") {
			t.Fatalf("baseline record accepted by parallel replay: %v", err)
		}
		if got := db.Value("x"); got != 9 {
			t.Errorf("prefix before baseline record not replayed: x = %d, want 9", got)
		}
	})
	t.Run("negative", func(t *testing.T) {
		l := wal.NewMemLog()
		l.Append(wal.RecCommit, (&wal.CommitRec{
			Txn:     tstamp.Make(1, 1),
			Actions: []wal.Action{{Item: "x", Delta: -5, SetTS: tstamp.Make(1, 1)}},
		}).Encode())
		db := store.New()
		_, err := RecoverOpts(l, db, vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: 4})
		if err == nil || !strings.Contains(err.Error(), "negative") {
			t.Fatalf("negative apply accepted by parallel replay: %v", err)
		}
		if got := db.Value("x"); got != 0 {
			t.Errorf("poisoned scratch installed anyway: x = %d", got)
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		l := wal.NewMemLog()
		l.Append(wal.RecordKind(250), nil)
		for _, workers := range []int{1, 4} {
			_, err := RecoverOpts(l, store.New(), vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: workers})
			if err == nil || !strings.Contains(err.Error(), "unknown") {
				t.Errorf("workers=%d: unknown record kind accepted: %v", workers, err)
			}
		}
	})
}

// TestRecoverParallelMultiChunk pushes the suffix past one pipeline
// chunk so the arena and stripe-run buffers are reused, and plants a
// corrupt record deep in the second chunk: every record before it must
// replay, the error must still surface, and a clean multi-chunk log
// must agree with serial replay exactly.
func TestRecoverParallelMultiChunk(t *testing.T) {
	build := func(n int) *wal.MemLog {
		l := wal.NewMemLog()
		for i := 0; i < n; i++ {
			ts := tstamp.Make(uint64(i+1), 1)
			l.Append(wal.RecCommit, (&wal.CommitRec{
				Txn:     ts,
				Actions: []wal.Action{{Item: "x", Delta: 1, SetTS: ts}},
			}).Encode())
		}
		return l
	}
	n := replayChunk + replayChunk/2
	t.Run("clean", func(t *testing.T) {
		l := build(n)
		ref := store.New()
		refSum := Summary{}
		if err := replaySerial(l, ref, vmsg.NewManager(), tstamp.NewClock(1), 1, &refSum); err != nil {
			t.Fatal(err)
		}
		db, clock := store.New(), tstamp.NewClock(1)
		sum, err := RecoverOpts(l, db, vmsg.NewManager(), clock, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := db.Value("x"), ref.Value("x"); got != want {
			t.Errorf("x = %d, want %d", got, want)
		}
		if sum.RecordsScanned != n || sum.ActionsRedone != n {
			t.Errorf("scanned %d redone %d, want %d/%d", sum.RecordsScanned, sum.ActionsRedone, n, n)
		}
		if got, want := clock.Current(), uint64(n); got != want {
			t.Errorf("clock = %v, want %v", got, want)
		}
	})
	t.Run("corrupt-in-second-chunk", func(t *testing.T) {
		l := build(n)
		l.Append(wal.RecCommit, []byte{0xFF})
		db := store.New()
		_, err := RecoverOpts(l, db, vmsg.NewManager(), tstamp.NewClock(1), Options{Workers: 4})
		if err == nil {
			t.Fatal("corrupt record in second chunk accepted")
		}
		if got := db.Value("x"); got != core.Value(n) {
			t.Errorf("prefix chunks lost: x = %d, want %d", got, n)
		}
	})
}
