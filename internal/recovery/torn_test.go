package recovery

// Torn-checkpoint recovery: a crash while the checkpoint record itself
// is being force-written leaves a torn tail. Opening the file log
// truncates the tear, and recovery must fall back — to the previous
// valid checkpoint if one survives, else to a full-log scan — without
// panicking and without losing any acknowledged commit (every record
// whose Append returned before the crash).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
)

// buildFileHistory writes a history of acked commits to a file log,
// optionally with a valid interior checkpoint, and finishes with a
// final checkpoint record. It returns the log path, the interior
// checkpoint's LSN (0 if none), the on-disk size of the final
// checkpoint record including framing, and the expected item values.
func buildFileHistory(t *testing.T, dir string, interiorCkpt bool) (path string, cp1LSN uint64, finalRecSize int, want map[string]core.Value) {
	t.Helper()
	path = filepath.Join(dir, "site.wal")
	l, err := wal.OpenFileLog(path, wal.FileLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	db, vm, clock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
	var ctr uint64
	commit := func(item string, delta core.Value) {
		ctr++
		ts := tstamp.Make(ctr, 1)
		rec := &wal.CommitRec{
			Txn:     ts,
			Actions: []wal.Action{{Item: ident.ItemID(item), Delta: delta, SetTS: ts}},
		}
		lsn, err := l.Append(wal.RecCommit, rec.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.ApplyAll(lsn, rec.Actions); err != nil {
			t.Fatal(err)
		}
		clock.Observe(ts)
	}
	checkpoint := func() (uint64, int) {
		payload := (&wal.CheckpointRec{
			Items:    db.Snapshot(),
			Channels: vm.SnapshotChannels(),
			Clock:    clock.Current(),
		}).Encode()
		lsn, err := l.Append(wal.RecCheckpoint, payload)
		if err != nil {
			t.Fatal(err)
		}
		return lsn, len(payload) + 17 // [len][crc][lsn][kind] framing
	}

	commit("a", 30)
	commit("b", 20)
	commit("a", -4)
	if interiorCkpt {
		cp1LSN, _ = checkpoint()
	}
	commit("b", -3)
	commit("c", 12)
	_, finalRecSize = checkpoint()

	want = map[string]core.Value{"a": 26, "b": 17, "c": 12}
	return path, cp1LSN, finalRecSize, want
}

// TestTornCheckpointFallsBack tears the final checkpoint record at
// several offsets — header, mid-payload, last byte — and recovers. With
// an interior checkpoint it must be used; without one, recovery must
// degrade to a full scan. Either way every acked commit survives.
func TestTornCheckpointFallsBack(t *testing.T) {
	for _, interior := range []bool{true, false} {
		interior := interior
		t.Run(fmt.Sprintf("interiorCkpt=%v", interior), func(t *testing.T) {
			base := t.TempDir()
			path, cp1LSN, finalRec, want := buildFileHistory(t, base, interior)
			img, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cuts := []int{1, finalRec / 2, finalRec - 1}
			for ci, cut := range cuts {
				for _, workers := range []int{1, 4} {
					tornPath := filepath.Join(base, fmt.Sprintf("torn-%d-%d.wal", ci, workers))
					if err := os.WriteFile(tornPath, img[:len(img)-cut], 0o644); err != nil {
						t.Fatal(err)
					}
					l, err := wal.OpenFileLog(tornPath, wal.FileLogOptions{})
					if err != nil {
						t.Fatalf("cut=%d: torn tail must recover on open: %v", cut, err)
					}
					db, vm, clock := store.New(), vmsg.NewManager(), tstamp.NewClock(1)
					sum, err := RecoverOpts(l, db, vm, clock, Options{Workers: workers})
					if err != nil {
						l.Close()
						t.Fatalf("cut=%d workers=%d: %v", cut, workers, err)
					}
					if sum.CheckpointLSN != cp1LSN {
						t.Errorf("cut=%d workers=%d: recovered from checkpoint %d, want %d",
							cut, workers, sum.CheckpointLSN, cp1LSN)
					}
					for item, v := range want {
						if got := db.Value(ident.ItemID(item)); got != v {
							t.Errorf("cut=%d workers=%d: %s = %d, want %d (acked commit lost)",
								cut, workers, item, got, v)
						}
					}
					// The torn log must keep working: append, reopen, rescan.
					if _, err := l.Append(wal.RecCommit, (&wal.CommitRec{
						Txn:     tstamp.Make(100, 1),
						Actions: []wal.Action{{Item: "a", Delta: 1, SetTS: tstamp.Make(100, 1)}},
					}).Encode()); err != nil {
						t.Errorf("cut=%d: append after torn recovery: %v", cut, err)
					}
					l.Close()
				}
			}
		})
	}
}

// TestTornCheckpointImageMatchesCorpusShape keeps the fuzz seed shape
// honest: tearing a real checkpointed file-log image mid-record and
// reopening exercises the same code path FuzzFileLogRecovery drives
// with chaos-captured images.
func TestTornCheckpointImageMatchesCorpusShape(t *testing.T) {
	base := t.TempDir()
	path, _, finalRec, _ := buildFileHistory(t, base, true)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if finalRec <= 17 {
		t.Fatalf("final checkpoint record implausibly small: %d bytes", finalRec)
	}
	torn := img[:len(img)-finalRec/2]
	if bytes.Equal(torn, img) {
		t.Fatal("tear did not shorten the image")
	}
	p2 := filepath.Join(base, "reopen.wal")
	if err := os.WriteFile(p2, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenFileLog(p2, wal.FileLogOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	n := 0
	if err := l.Scan(1, func(wal.Record) error { n++; return nil }); err != nil {
		t.Fatalf("scan after tear: %v", err)
	}
	if n == 0 {
		t.Error("tear dropped the whole log, not just the torn record")
	}
}
