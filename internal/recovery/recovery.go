// Package recovery implements the paper's §7 recovery algorithm. It
// is deliberately *independent*: it takes only the recovering site's
// own stable log and durable store — never a network handle — so the
// type system itself enforces "other sites need not be queried to find
// out any information to allow normal processing to begin".
//
// The algorithm:
//
//  1. Lock state is volatile and simply does not survive (the caller
//     starts with an empty lock table) — §7 argues this is safe.
//  2. Find the last *valid* checkpoint, restore Vm channel cursors and
//     the Lamport counter from it. A checkpoint that fails to decode is
//     skipped, falling back to the previous valid one, and finally to a
//     full-log scan — a damaged checkpoint must degrade restart time,
//     never correctness.
//  3. Replay the log suffix: every VmCreate / VmAccept / Commit
//     record's database actions are redone idempotently (the store's
//     per-item applied-LSN makes replay safe even if recovery itself
//     crashes and reruns), Vm channel state is rebuilt, and the
//     highest transaction timestamp is folded into the clock. With
//     Options.Workers > 1 the suffix is decoded in parallel and the
//     actions are applied by per-item-stripe workers; each item's
//     actions stay on one worker in LSN order, so the applied-LSN skip
//     rule sees exactly the serial order per item.
//  4. Outstanding Vm are NOT retransmitted here: they re-enter the
//     normal retransmission loop once the site is up ("the system
//     eventually sends the outstanding Vm in the normal course of
//     processing").
package recovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dvp/internal/ident"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
)

// Options tune how the log suffix is replayed. The zero value is the
// serial full-compatibility path.
type Options struct {
	// Workers is the number of replay workers. Values <= 1 replay
	// serially in a single streaming pass; values > 1 stream the
	// suffix in fixed-size chunks, decode each chunk in parallel, and
	// apply actions on per-item-stripe scratches.
	Workers int
}

// Summary reports what recovery did, for tests and the T3 experiment.
type Summary struct {
	// CheckpointLSN is the LSN of the checkpoint used (0 if none).
	CheckpointLSN uint64
	// CheckpointsSkipped counts checkpoint records that failed to
	// decode and were passed over in favour of an earlier one (or a
	// full scan).
	CheckpointsSkipped int
	// RecordsScanned counts log records visited after the checkpoint.
	RecordsScanned int
	// ActionsRedone counts database actions actually re-applied (not
	// skipped by the applied-LSN check).
	ActionsRedone int
	// VmRestored counts outbound Vm re-registered for retransmission.
	VmRestored int
	// Workers is the worker count the replay actually used.
	Workers int
	// Elapsed is the wall-clock duration of the whole recovery.
	Elapsed time.Duration
	// NetworkCalls is always zero; it exists so the independence
	// claim is an explicit, asserted output rather than a comment.
	NetworkCalls int
}

// Recover rebuilds volatile state from the stable log using the serial
// replay path. db, vm and clock must be freshly constructed (or
// checkpoint-restored) empties; the durable db may also carry
// pre-crash state — replay is idempotent either way.
func Recover(log wal.Log, db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock) (Summary, error) {
	return RecoverOpts(log, db, vm, clock, Options{})
}

// RecoverOpts is Recover with explicit replay options.
func RecoverOpts(log wal.Log, db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock, opts Options) (Summary, error) {
	start := time.Now()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	sum := Summary{Workers: workers}

	// Pass 1: locate the last checkpoint that decodes. Later damaged
	// checkpoints are skipped, not fatal: the fallback ladder is
	// latest-valid checkpoint → earlier valid checkpoint → full scan.
	var cpLSN uint64
	var cp *wal.CheckpointRec
	err := log.Scan(1, func(r wal.Record) error {
		if r.Kind == wal.RecCheckpoint {
			rec, err := wal.DecodeCheckpoint(r.Data)
			if err != nil {
				sum.CheckpointsSkipped++
				return nil
			}
			cp, cpLSN = rec, r.LSN
		}
		return nil
	})
	if err != nil {
		return sum, err
	}
	if cp != nil {
		sum.CheckpointLSN = cpLSN
		vm.RestoreChannels(cp.Channels)
		clock.Restore(cp.Clock)
		// The durable store survives on its own; the checkpoint's
		// item snapshot is only needed when rebuilding a store from
		// the log alone (e.g. disk replacement).
		if len(db.Items()) == 0 && len(cp.Items) > 0 {
			db.RestoreCheckpoint(cp.Items)
		}
	}

	// Pass 2: replay the suffix.
	if workers > 1 {
		err = replayParallel(log, db, vm, clock, cpLSN+1, workers, &sum)
	} else {
		err = replaySerial(log, db, vm, clock, cpLSN+1, &sum)
	}
	if err != nil {
		return sum, err
	}

	// Fold the durable store's own stamps into the clock: a timestamp
	// this site issued (as a transaction TS or a Conc1 lock stamp)
	// must never be reissued. Without this, a recovered site's first
	// transactions would be cc-rejected even when purely local,
	// contradicting §7's "write-only transactions could always be
	// processed at the local site".
	for _, item := range db.Items() {
		if it, ok := db.Get(item); ok && it.TS.Site() == clock.Site() {
			clock.Observe(it.TS)
		}
	}
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// decoded is one suffix record after payload decoding, normalized so
// both replay paths share one shape: the actions to redo plus the
// kind-specific Vm/clock bookkeeping.
type decoded struct {
	lsn     uint64
	kind    wal.RecordKind
	actions []wal.Action
	msgs    []wal.VmOut  // RecVmCreate
	from    ident.SiteID // RecVmAccept
	seq     uint64       // RecVmAccept
	txn     tstamp.TS    // RecCommit
	err     error
}

// decodeRecord parses one record into its replay-relevant parts. It
// never touches shared state, so it can run on any worker.
func decodeRecord(r wal.Record) decoded {
	d := decoded{lsn: r.LSN, kind: r.Kind}
	switch r.Kind {
	case wal.RecVmCreate:
		rec, err := wal.DecodeVmCreate(r.Data)
		if err != nil {
			d.err = fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			return d
		}
		d.actions, d.msgs = rec.Actions, rec.Msgs
	case wal.RecVmAccept:
		rec, err := wal.DecodeVmAccept(r.Data)
		if err != nil {
			d.err = fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			return d
		}
		d.actions, d.from, d.seq = rec.Actions, rec.From, rec.Seq
	case wal.RecCommit:
		rec, err := wal.DecodeCommit(r.Data)
		if err != nil {
			d.err = fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			return d
		}
		d.actions, d.txn = rec.Actions, rec.Txn
	case wal.RecApplied, wal.RecCheckpoint:
		// RecApplied bounds redo in systems whose store can regress;
		// our store's applied-LSN already skips, so nothing to do.
		// Checkpoints were handled in pass 1 (including damaged ones,
		// which the fallback ladder skipped).
	case wal.RecPrepare, wal.RecDecision, wal.RecBaseApplied:
		// Baseline records never appear in a DvP site's log.
		d.err = fmt.Errorf("recovery: unexpected baseline record %v at LSN %d", r.Kind, r.LSN)
	default:
		d.err = fmt.Errorf("recovery: unknown record kind %v at LSN %d", r.Kind, r.LSN)
	}
	return d
}

// bookkeep performs the non-store side effects of one replayed record:
// Vm channel rebuild and Lamport clock restoration. Both replay paths
// call it in LSN order.
func bookkeep(d *decoded, vm *vmsg.Manager, clock *tstamp.Clock, sum *Summary) {
	switch d.kind {
	case wal.RecVmCreate:
		vm.Created(d.msgs)
		sum.VmRestored += len(d.msgs)
	case wal.RecVmAccept:
		vm.MarkAccepted(d.from, d.seq)
	case wal.RecCommit:
		clock.Observe(d.txn)
	}
	observeActions(clock, d.actions)
}

// replaySerial is the streaming single-pass replay: decode and apply
// each record in turn, never buffering the suffix.
func replaySerial(log wal.Log, db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock, from uint64, sum *Summary) error {
	return log.Scan(from, func(r wal.Record) error {
		sum.RecordsScanned++
		d := decodeRecord(r)
		if d.err != nil {
			return d.err
		}
		n, err := db.ApplyAll(d.lsn, d.actions)
		if err != nil {
			return fmt.Errorf("recovery: LSN %d: %w", d.lsn, err)
		}
		sum.ActionsRedone += n
		bookkeep(&d, vm, clock, sum)
		return nil
	})
}

// replayChunk is the number of suffix records processed per pipeline
// round. Chunking bounds replay memory to O(chunk) instead of
// O(suffix) and keeps each round's garbage young; the chunk is large
// enough that the per-round fan-out/join cost is noise.
const replayChunk = 4096

// errStopReplay is the Scan-callback sentinel used to stop the suffix
// scan once a chunk has failed; the real error travels separately.
var errStopReplay = errors.New("recovery: stop replay")

// stripeOp is one database action tagged with the LSN of the record
// that logged it, queued for a per-item-stripe apply worker.
type stripeOp struct {
	lsn uint64
	a   wal.Action
}

// replayParallel streams the suffix in chunks; each chunk runs three
// passes: parallel decode, an ordered dispatcher walk, and parallel
// apply.
//
// The walk validates records in LSN order, rebuilds Vm channel state
// (sequenced side effects stay single-threaded), folds the suffix's
// maximum timestamp into one clock observation — Observe is a pure
// max-fold, so observing the maximum once equals observing every
// stamp in order — and partitions the actions into per-item-stripe
// runs. One item always lands on one stripe, runs preserve LSN order,
// and each stripe's scratch persists across chunks, so a stripe
// worker replaying its runs against a private store.Scratch sees
// exactly the serial per-item order: the applied-LSN skip rule cannot
// silently drop a delta. Stripes touch disjoint items, so installing
// the scratches back is race-free and costs one lock acquisition per
// stripe instead of one per action — the store's single mutex never
// becomes the parallel bottleneck.
func replayParallel(log wal.Log, db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock, from uint64, workers int, sum *Summary) error {
	scratches := make([]*store.Scratch, workers)
	for w := range scratches {
		scratches[w] = db.NewScratch()
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	runs := make([][]stripeOp, workers)
	dec := make([]decoded, replayChunk)
	recs := make([]wal.Record, 0, replayChunk)
	var arena []byte // chunk payload buffer, reused: decode copies what it keeps
	var maxTS tstamp.TS
	var walkErr error

	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		sum.RecordsScanned += len(recs)

		// Parallel decode: worker w owns indices w, w+W, w+2W... so
		// the writes into dec are disjoint.
		dcur := dec[:len(recs)]
		var dwg sync.WaitGroup
		for w := 0; w < workers; w++ {
			dwg.Add(1)
			go func(w int) {
				defer dwg.Done()
				for i := w; i < len(dcur); i += workers {
					dcur[i] = decodeRecord(recs[i])
				}
			}(w)
		}
		dwg.Wait()

		// Ordered dispatcher walk — validate, Vm bookkeeping, clock
		// fold, stripe partition. A record that failed to decode stops
		// the walk; the prefix before it still replays, matching the
		// serial path.
		for i := range dcur {
			d := &dcur[i]
			if d.err != nil {
				walkErr = d.err
				break
			}
			switch d.kind {
			case wal.RecVmCreate:
				vm.Created(d.msgs)
				sum.VmRestored += len(d.msgs)
			case wal.RecVmAccept:
				vm.MarkAccepted(d.from, d.seq)
			case wal.RecCommit:
				if d.txn > maxTS {
					maxTS = d.txn
				}
			}
			for _, a := range d.actions {
				if a.SetTS > maxTS {
					maxTS = a.SetTS
				}
				w := itemStripe(a.Item, workers)
				runs[w] = append(runs[w], stripeOp{lsn: d.lsn, a: a})
			}
		}

		// Parallel apply, each stripe against its private scratch.
		var awg sync.WaitGroup
		for w := 0; w < workers; w++ {
			if len(runs[w]) == 0 {
				continue
			}
			awg.Add(1)
			go func(w int) {
				defer awg.Done()
				for _, op := range runs[w] {
					applied, err := scratches[w].Apply(op.lsn, op.a)
					if err != nil {
						errs[w] = fmt.Errorf("recovery: LSN %d: %w", op.lsn, err)
						return
					}
					if applied {
						counts[w]++
					}
				}
			}(w)
		}
		awg.Wait()
		for w := range runs {
			runs[w] = runs[w][:0]
		}
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return walkErr
	}

	var flushErr error
	err := log.Scan(from, func(r wal.Record) error {
		// Copy the payload into the chunk arena: Scan implementations
		// may reuse buffers, and the decode workers outlive the
		// callback. Arena growth leaves earlier sub-slices pointing at
		// the old backing array, which still holds their copies.
		off := len(arena)
		arena = append(arena, r.Data...)
		recs = append(recs, wal.Record{LSN: r.LSN, Kind: r.Kind, Data: arena[off:len(arena):len(arena)]})
		if len(recs) == replayChunk {
			if e := flush(); e != nil {
				flushErr = e
				return errStopReplay
			}
			recs, arena = recs[:0], arena[:0]
		}
		return nil
	})
	switch {
	case errors.Is(err, errStopReplay):
		err = flushErr
	case err == nil:
		err = flush()
	}
	if !maxTS.IsZero() {
		clock.Observe(maxTS)
	}
	for _, n := range counts {
		sum.ActionsRedone += n
	}
	// An apply error poisons the scratches: leave the store at the
	// checkpoint image rather than install a half-failed stripe.
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	for _, sc := range scratches {
		sc.Install()
	}
	return err
}

// itemStripe hashes an item to its apply worker (FNV-1a, matching the
// admission-stripe hash in internal/site).
func itemStripe(item ident.ItemID, workers int) int {
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return int(h % uint32(workers))
}

// Rebuild replays a site's stable log into brand-new volatile and
// durable state, as if the site's disk (minus the log and its last
// checkpoint) had been replaced. Invariant checkers use it to verify
// WAL-replay idempotence: the rebuilt store must agree with the live
// one on every item value, however many crashes interleaved the
// history. The log is only read, never written; the replay is the
// serial reference path, which the recovery-equivalence oracle holds
// the parallel path to.
//
// Note the rebuilt state reflects logged history only: the initial
// quota placement and Conc1 lock stamps are not logged, so a rebuild
// is exact only from the first checkpoint onward (checkpoints carry
// the full store snapshot).
func Rebuild(log wal.Log, site ident.SiteID) (*store.Durable, *vmsg.Manager, Summary, error) {
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(site)
	sum, err := Recover(log, db, vm, clock)
	return db, vm, sum, err
}

// observeActions folds the timestamps a record carries into the clock
// so that a recovered site never reissues a timestamp it already used
// durably (the §7 "outdated timestamps" are then healed further by the
// Lamport bump on the first messages received).
func observeActions(clock *tstamp.Clock, actions []wal.Action) {
	for _, a := range actions {
		if !a.SetTS.IsZero() {
			clock.Observe(a.SetTS)
		}
	}
}
