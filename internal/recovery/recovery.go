// Package recovery implements the paper's §7 recovery algorithm. It
// is deliberately *independent*: it takes only the recovering site's
// own stable log and durable store — never a network handle — so the
// type system itself enforces "other sites need not be queried to find
// out any information to allow normal processing to begin".
//
// The algorithm:
//
//  1. Lock state is volatile and simply does not survive (the caller
//     starts with an empty lock table) — §7 argues this is safe.
//  2. Find the last checkpoint, restore Vm channel cursors and the
//     Lamport counter from it.
//  3. Replay the log suffix: every VmCreate / VmAccept / Commit
//     record's database actions are redone idempotently (the store's
//     per-item applied-LSN makes replay safe even if recovery itself
//     crashes and reruns), Vm channel state is rebuilt, and the
//     highest transaction timestamp is folded into the clock.
//  4. Outstanding Vm are NOT retransmitted here: they re-enter the
//     normal retransmission loop once the site is up ("the system
//     eventually sends the outstanding Vm in the normal course of
//     processing").
package recovery

import (
	"fmt"

	"dvp/internal/ident"
	"dvp/internal/store"
	"dvp/internal/tstamp"
	"dvp/internal/vmsg"
	"dvp/internal/wal"
)

// Summary reports what recovery did, for tests and the T3 experiment.
type Summary struct {
	// CheckpointLSN is the LSN of the checkpoint used (0 if none).
	CheckpointLSN uint64
	// RecordsScanned counts log records visited after the checkpoint.
	RecordsScanned int
	// ActionsRedone counts database actions actually re-applied (not
	// skipped by the applied-LSN check).
	ActionsRedone int
	// VmRestored counts outbound Vm re-registered for retransmission.
	VmRestored int
	// NetworkCalls is always zero; it exists so the independence
	// claim is an explicit, asserted output rather than a comment.
	NetworkCalls int
}

// Recover rebuilds volatile state from the stable log. db, vm and
// clock must be freshly constructed (or checkpoint-restored) empties;
// the durable db may also carry pre-crash state — replay is idempotent
// either way.
func Recover(log wal.Log, db *store.Durable, vm *vmsg.Manager, clock *tstamp.Clock) (Summary, error) {
	var sum Summary

	// Pass 1: locate the last checkpoint.
	var cpLSN uint64
	var cp *wal.CheckpointRec
	err := log.Scan(1, func(r wal.Record) error {
		if r.Kind == wal.RecCheckpoint {
			rec, err := wal.DecodeCheckpoint(r.Data)
			if err != nil {
				return fmt.Errorf("recovery: checkpoint at LSN %d: %w", r.LSN, err)
			}
			cp, cpLSN = rec, r.LSN
		}
		return nil
	})
	if err != nil {
		return sum, err
	}
	if cp != nil {
		sum.CheckpointLSN = cpLSN
		vm.RestoreChannels(cp.Channels)
		clock.Restore(cp.Clock)
		// The durable store survives on its own; the checkpoint's
		// item snapshot is only needed when rebuilding a store from
		// the log alone (e.g. disk replacement).
		if len(db.Items()) == 0 && len(cp.Items) > 0 {
			db.RestoreCheckpoint(cp.Items)
		}
	}

	// Pass 2: replay the suffix.
	err = log.Scan(cpLSN+1, func(r wal.Record) error {
		sum.RecordsScanned++
		switch r.Kind {
		case wal.RecVmCreate:
			rec, err := wal.DecodeVmCreate(r.Data)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			n, err := db.ApplyAll(r.LSN, rec.Actions)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			sum.ActionsRedone += n
			vm.Created(rec.Msgs)
			sum.VmRestored += len(rec.Msgs)
			observeActions(clock, rec.Actions)
		case wal.RecVmAccept:
			rec, err := wal.DecodeVmAccept(r.Data)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			n, err := db.ApplyAll(r.LSN, rec.Actions)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			sum.ActionsRedone += n
			vm.MarkAccepted(rec.From, rec.Seq)
			observeActions(clock, rec.Actions)
		case wal.RecCommit:
			rec, err := wal.DecodeCommit(r.Data)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			n, err := db.ApplyAll(r.LSN, rec.Actions)
			if err != nil {
				return fmt.Errorf("recovery: LSN %d: %w", r.LSN, err)
			}
			sum.ActionsRedone += n
			clock.Observe(rec.Txn)
			observeActions(clock, rec.Actions)
		case wal.RecApplied, wal.RecCheckpoint:
			// RecApplied bounds redo in systems whose store can
			// regress; our store's applied-LSN already skips, so
			// nothing to do. Checkpoints were handled in pass 1.
		case wal.RecPrepare, wal.RecDecision, wal.RecBaseApplied:
			// Baseline records never appear in a DvP site's log.
			return fmt.Errorf("recovery: unexpected baseline record %v at LSN %d", r.Kind, r.LSN)
		default:
			return fmt.Errorf("recovery: unknown record kind %v at LSN %d", r.Kind, r.LSN)
		}
		return nil
	})
	if err != nil {
		return sum, err
	}

	// Fold the durable store's own stamps into the clock: a timestamp
	// this site issued (as a transaction TS or a Conc1 lock stamp)
	// must never be reissued. Without this, a recovered site's first
	// transactions would be cc-rejected even when purely local,
	// contradicting §7's "write-only transactions could always be
	// processed at the local site".
	for _, item := range db.Items() {
		if it, ok := db.Get(item); ok && it.TS.Site() == clock.Site() {
			clock.Observe(it.TS)
		}
	}
	return sum, nil
}

// Rebuild replays a site's stable log into brand-new volatile and
// durable state, as if the site's disk (minus the log and its last
// checkpoint) had been replaced. Invariant checkers use it to verify
// WAL-replay idempotence: the rebuilt store must agree with the live
// one on every item value, however many crashes interleaved the
// history. The log is only read, never written.
//
// Note the rebuilt state reflects logged history only: the initial
// quota placement and Conc1 lock stamps are not logged, so a rebuild
// is exact only from the first checkpoint onward (checkpoints carry
// the full store snapshot).
func Rebuild(log wal.Log, site ident.SiteID) (*store.Durable, *vmsg.Manager, Summary, error) {
	db := store.New()
	vm := vmsg.NewManager()
	clock := tstamp.NewClock(site)
	sum, err := Recover(log, db, vm, clock)
	return db, vm, sum, err
}

// observeActions folds the timestamps a record carries into the clock
// so that a recovered site never reissues a timestamp it already used
// durably (the §7 "outdated timestamps" are then healed further by the
// Lamport bump on the first messages received).
func observeActions(clock *tstamp.Clock, actions []wal.Action) {
	for _, a := range actions {
		if !a.SetTS.IsZero() {
			clock.Observe(a.SetTS)
		}
	}
}
