package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Errorf("real clock did not advance: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	var c Real
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestVirtualNowStartsAtStart(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now() = %v, want %v", v.Now(), start)
	}
}

func TestVirtualAfterDoesNotFireEarly(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch := v.After(10 * time.Millisecond)
	v.Advance(9 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Advance(1 * time.Millisecond)
	select {
	case got := <-ch:
		want := time.Unix(0, 0).Add(10 * time.Millisecond)
		if !got.Equal(want) {
			t.Errorf("timer delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Microsecond)
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never woke after Advance")
	}
}

func TestVirtualSleepNonPositiveReturns(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Sleep(0)
	v.Sleep(-time.Second) // must not block
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	v.AdvanceTo(start.Add(-time.Second))
	if !v.Now().Equal(start) {
		t.Errorf("AdvanceTo backwards moved the clock to %v", v.Now())
	}
}

func TestVirtualFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			<-v.After(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	for v.PendingTimers() < 3 {
		time.Sleep(time.Microsecond)
	}
	// Advance step by step so wake order is observable.
	for i := 0; i < 3; i++ {
		v.Advance(10 * time.Millisecond)
		time.Sleep(5 * time.Millisecond) // let woken goroutine record
	}
	wg.Wait()
	want := []int{1, 2, 0}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a timer on an idle clock")
	}
	_ = v.After(20 * time.Millisecond)
	_ = v.After(10 * time.Millisecond)
	dl, ok := v.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline found no timer")
	}
	want := time.Unix(0, 0).Add(10 * time.Millisecond)
	if !dl.Equal(want) {
		t.Errorf("NextDeadline = %v, want %v", dl, want)
	}
}

func TestVirtualManyWaitersOneAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 100
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = v.After(time.Duration(i+1) * time.Millisecond)
	}
	v.Advance(time.Duration(n) * time.Millisecond)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %d did not fire", i)
		}
	}
	if v.PendingTimers() != 0 {
		t.Errorf("%d timers still pending after full advance", v.PendingTimers())
	}
}
