// Package vclock abstracts time so that every timeout in the system —
// the paper's §5 "timeout counter", Vm retransmission intervals, and
// the baselines' lock-wait timeouts — can run against either the real
// wall clock or a virtual clock that tests advance by hand.
//
// The paper's non-blocking guarantee is a statement about local time
// bounds ("a decision in a bounded number of steps as measured
// locally"); the virtual clock lets tests assert that bound exactly,
// with no flakiness from scheduler jitter.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time surface the system needs.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time
	// once d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the calling goroutine for d on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. It never moves on its own:
// goroutines blocked in After/Sleep wake only when Advance (or
// AdvanceTo) moves the clock past their deadline. This gives tests
// deterministic control over every timeout in the system.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter // kept sorted by deadline
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewVirtual returns a virtual clock starting at the given time.
// A zero start is fine; tests usually care only about durations.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 so the
// clock never blocks delivering a tick.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	w := &waiter{deadline: deadline, ch: ch}
	v.waiters = append(v.waiters, w)
	sort.SliceStable(v.waiters, func(i, j int) bool {
		return v.waiters[i].deadline.Before(v.waiters[j].deadline)
	})
	return ch
}

// Sleep implements Clock: it blocks until the clock is advanced past
// the deadline by another goroutine.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock to t (no-op if t is not after now),
// firing timers in deadline order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !t.After(v.now) {
		return
	}
	v.now = t
	kept := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.deadline.After(v.now) {
			w.ch <- v.now
		} else {
			kept = append(kept, w)
		}
	}
	v.waiters = kept
}

// PendingTimers reports how many goroutines are currently waiting on
// this clock. Useful for tests that advance "until quiescent".
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// NextDeadline returns the earliest pending timer deadline and true,
// or a zero time and false if no timer is pending. Drivers use it to
// advance a simulation straight to the next interesting instant.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.waiters) == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].deadline, true
}
