package core

import (
	"testing"
	"testing/quick"
)

func TestIncrAlwaysEffective(t *testing.T) {
	op := Incr{M: 5}
	got, ok := op.Apply(0)
	if !ok || got != 5 {
		t.Errorf("Incr{5}.Apply(0) = (%d,%v), want (5,true)", got, ok)
	}
	if op.Delta() != 5 || op.Needs() != 0 {
		t.Errorf("Incr{5}: Delta=%d Needs=%d", op.Delta(), op.Needs())
	}
}

func TestIncrNegativeIneffective(t *testing.T) {
	op := Incr{M: -1}
	got, ok := op.Apply(7)
	if ok || got != 7 {
		t.Errorf("Incr{-1}.Apply(7) = (%d,%v), want (7,false)", got, ok)
	}
}

func TestDecrBounded(t *testing.T) {
	op := Decr{M: 5}
	if got, ok := op.Apply(13); !ok || got != 8 {
		t.Errorf("Decr{5}.Apply(13) = (%d,%v), want (8,true)", got, ok)
	}
	// The defining case: effective application must not go below zero.
	if got, ok := op.Apply(3); ok || got != 3 {
		t.Errorf("Decr{5}.Apply(3) = (%d,%v), want ineffective no-op", got, ok)
	}
	if got, ok := op.Apply(5); !ok || got != 0 {
		t.Errorf("Decr{5}.Apply(5) = (%d,%v), want (0,true)", got, ok)
	}
	if op.Needs() != 5 {
		t.Errorf("Decr{5}.Needs() = %d, want 5", op.Needs())
	}
}

func TestDecrNeverNegativeProperty(t *testing.T) {
	f := func(v, m int64) bool {
		v &= 1<<40 - 1 // non-negative holdings
		if m < 0 {
			m = -m
		}
		m &= 1<<40 - 1
		got, ok := Decr{M: Value(m)}.Apply(Value(v))
		if ok {
			return got >= 0 && got == Value(v-m)
		}
		return got == Value(v) && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoop(t *testing.T) {
	got, ok := Noop{}.Apply(42)
	if !ok || got != 42 {
		t.Errorf("Noop.Apply(42) = (%d,%v)", got, ok)
	}
	if (Noop{}).Delta() != 0 || (Noop{}).Needs() != 0 {
		t.Error("Noop must have zero delta and zero needs")
	}
}

func TestComposeSequence(t *testing.T) {
	// decr 3 then incr 10 then decr 5: net +2, needs 3 locally.
	op := Compose(Decr{3}, Incr{10}, Decr{5})
	if op.Delta() != 2 {
		t.Errorf("Delta = %d, want 2", op.Delta())
	}
	if op.Needs() != 3 {
		t.Errorf("Needs = %d, want 3", op.Needs())
	}
	if got, ok := op.Apply(3); !ok || got != 5 {
		t.Errorf("Apply(3) = (%d,%v), want (5,true)", got, ok)
	}
	if got, ok := op.Apply(2); ok || got != 2 {
		t.Errorf("Apply(2) = (%d,%v), want ineffective", got, ok)
	}
}

func TestComposeNeedsIntermediateDip(t *testing.T) {
	// incr 1 then decr 5: the dip means we need 4 up front.
	op := Compose(Incr{1}, Decr{5})
	if op.Needs() != 4 {
		t.Errorf("Needs = %d, want 4", op.Needs())
	}
	if _, ok := op.Apply(4); !ok {
		t.Error("Apply(4) should be effective")
	}
	if _, ok := op.Apply(3); ok {
		t.Error("Apply(3) should be ineffective (dips below zero)")
	}
}

func TestComposeIneffectiveLeavesValue(t *testing.T) {
	op := Compose(Decr{1}, Decr{100})
	got, ok := op.Apply(50)
	if ok || got != 50 {
		t.Errorf("Apply(50) = (%d,%v), want unchanged no-op", got, ok)
	}
}

func TestComposeEmptyIsNoop(t *testing.T) {
	op := Compose()
	if got, ok := op.Apply(9); !ok || got != 9 {
		t.Errorf("empty Compose.Apply(9) = (%d,%v)", got, ok)
	}
}

// TestComposeNeedsMatchesApply cross-checks Needs() against Apply():
// the sequence is effective exactly on values ≥ Needs().
func TestComposeNeedsMatchesApplyProperty(t *testing.T) {
	f := func(ops []int8, probe uint16) bool {
		seq := make([]Op, 0, len(ops))
		for _, m := range ops {
			if m >= 0 {
				seq = append(seq, Incr{Value(m)})
			} else {
				seq = append(seq, Decr{Value(-int64(m))})
			}
		}
		op := Compose(seq...)
		need := op.Needs()
		v := Value(probe)
		_, ok := op.Apply(v)
		return ok == (v >= need)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The paper's central commutativity claim (§4.1): two partitionable
// operators applied to separate portions commute, g(h(d)) = h(g(d)).
func TestOperatorCommutativityProperty(t *testing.T) {
	f := func(d uint16, g, h int8) bool {
		mk := func(m int8) Op {
			if m >= 0 {
				return Incr{Value(m)}
			}
			return Decr{Value(-int64(m))}
		}
		gOp, hOp := mk(g), mk(h)
		v := Value(d)
		// Apply in both orders to the whole value; where both orders
		// are effective, results must agree.
		gh, ok1a := gOp.Apply(v)
		if ok1a {
			gh, ok1a = hOp.Apply(gh)
		}
		hg, ok2a := hOp.Apply(v)
		if ok2a {
			hg, ok2a = gOp.Apply(hg)
		}
		if ok1a && ok2a && gh != hg {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOpStrings(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Incr{3}, "incr(3)"},
		{Decr{4}, "decr(4)"},
		{Noop{}, "noop"},
		{Compose(Incr{1}, Decr{2}), "seq(incr(1);decr(2))"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
