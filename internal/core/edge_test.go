package core

import "testing"

// Table-driven edge cases at the boundaries of the §4.1 formalism:
// zero-valued partitions, the degenerate single-site Γ, decrements
// that land exactly on the bound, and redistribution/effectiveness
// corner cases. The property tests elsewhere sweep the interior of the
// space; these pin the edges where off-by-ones live.

func TestZeroValuePartitionEdges(t *testing.T) {
	cases := []struct {
		name  string
		elems []Value
		split int
		want  Value // Π
	}{
		{"all zero", []Value{0, 0, 0}, 2, 0},
		{"zero among values", []Value{0, 100, 0}, 3, 100},
		{"single zero", []Value{0}, 1, 0},
		{"zeros outnumber pieces", []Value{0, 0, 0, 0, 7}, 2, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := MustMultiset(tc.elems...)
			if got := b.Pi(); got != tc.want {
				t.Fatalf("Π = %d, want %d", got, tc.want)
			}
			// Zero-valued constituents are legitimate members of Γ⁺:
			// the partitionable property must hold through them.
			pieces := b.Split(tc.split)
			collapsed, err := Collapse(pieces)
			if err != nil {
				t.Fatalf("collapse: %v", err)
			}
			if got := collapsed.Pi(); got != tc.want {
				t.Errorf("Π after split/collapse = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRedistributeZeroEdges(t *testing.T) {
	cases := []struct {
		name   string
		elems  []Value
		i, j   int
		amount Value
		ok     bool
		wantI  Value
		wantJ  Value
	}{
		{"move zero amount", []Value{5, 3}, 0, 1, 0, true, 5, 3},
		{"move zero from zero", []Value{0, 3}, 0, 1, 0, true, 0, 3},
		{"drain element to zero", []Value{5, 3}, 0, 1, 5, true, 0, 8},
		{"from zero element", []Value{0, 3}, 0, 1, 1, false, 0, 3},
		{"into zero element", []Value{4, 0}, 0, 1, 4, true, 0, 4},
		{"negative amount", []Value{5, 3}, 0, 1, -1, false, 5, 3},
		{"one more than held", []Value{5, 3}, 0, 1, 6, false, 5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := MustMultiset(tc.elems...)
			before := b.Pi()
			out, ok := b.Redistribute(tc.i, tc.j, tc.amount)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if got := out.Pi(); got != before {
				t.Errorf("Π changed %d→%d under redistribution", before, got)
			}
			if got := out.At(tc.i); got != tc.wantI {
				t.Errorf("elem %d = %d, want %d", tc.i, got, tc.wantI)
			}
			if got := out.At(tc.j); got != tc.wantJ {
				t.Errorf("elem %d = %d, want %d", tc.j, got, tc.wantJ)
			}
		})
	}
}

func TestSingleSiteGamma(t *testing.T) {
	// One site holds all of Γ: shares collapse to the total, every
	// operator acts as it would on the undistributed item.
	cases := []struct {
		name  string
		total Value
	}{
		{"zero total", 0},
		{"unit total", 1},
		{"large total", 1 << 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shares := EvenShares(tc.total, 1)
			if len(shares) != 1 || shares[0] != tc.total {
				t.Fatalf("EvenShares(%d, 1) = %v, want [%d]", tc.total, shares, tc.total)
			}
			ws := WeightedShares(tc.total, []float64{3.7})
			if len(ws) != 1 || ws[0] != tc.total {
				t.Fatalf("WeightedShares(%d, [w]) = %v, want [%d]", tc.total, ws, tc.total)
			}
			b := MustMultiset(shares...)
			if pieces := b.Split(1); len(pieces) != 1 || pieces[0].Pi() != tc.total {
				t.Errorf("singleton split lost value")
			}
			// A full decrement is effective exactly once.
			out, ok := b.ApplyAt(0, Decr{M: tc.total})
			if !ok || out.Pi() != 0 {
				t.Fatalf("decrement of full holding: ok=%v Π=%d", ok, out.Pi())
			}
			if _, ok := out.ApplyAt(0, Decr{M: 1}); ok {
				t.Error("decrement below empty holding was effective")
			}
		})
	}
}

func TestDecrExactlyToBound(t *testing.T) {
	cases := []struct {
		name string
		v, m Value
		ok   bool
		want Value
	}{
		{"exactly to zero", 10, 10, true, 0},
		{"one short", 10, 11, false, 10},
		{"one spare", 10, 9, true, 1},
		{"zero from zero", 0, 0, true, 0},
		{"one from zero", 0, 1, false, 0},
		{"decr by zero", 7, 0, true, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := Decr{M: tc.m}.Apply(tc.v)
			if ok != tc.ok || got != tc.want {
				t.Errorf("decr(%d) on %d = (%d, %v), want (%d, %v)",
					tc.m, tc.v, got, ok, tc.want, tc.ok)
			}
			if need := (Decr{M: tc.m}).Needs(); (tc.v >= need) != tc.ok {
				t.Errorf("Needs()=%d disagrees with effectiveness on %d", need, tc.v)
			}
		})
	}
}

func TestComposeBoundEdges(t *testing.T) {
	// Compositions whose intermediate states touch the bound exactly.
	cases := []struct {
		name string
		ops  []Op
		v    Value
		ok   bool
		want Value
	}{
		{"drain then refill", []Op{Decr{M: 5}, Incr{M: 5}}, 5, true, 5},
		{"refill then overdrain", []Op{Incr{M: 2}, Decr{M: 8}}, 5, false, 5},
		{"touch zero twice", []Op{Decr{M: 5}, Incr{M: 3}, Decr{M: 3}}, 5, true, 0},
		{"needs met by prefix incr", []Op{Incr{M: 10}, Decr{M: 10}}, 0, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op := Compose(tc.ops...)
			got, ok := op.Apply(tc.v)
			if ok != tc.ok || got != tc.want {
				t.Errorf("%v on %d = (%d, %v), want (%d, %v)",
					op, tc.v, got, ok, tc.want, tc.ok)
			}
			if need := op.Needs(); (tc.v >= need) != tc.ok {
				t.Errorf("Needs()=%d disagrees with effectiveness on %d", need, tc.v)
			}
		})
	}
}

func TestGrantPolicyZeroEdges(t *testing.T) {
	policies := []SplitPolicy{GrantExact{}, GrantAll{}, GrantHalfExcess{}, GrantFraction{Num: 1, Den: 4}}
	cases := []struct {
		name       string
		have, want Value
	}{
		{"nothing held", 0, 5},
		{"nothing wanted", 9, 0},
		{"both zero", 0, 0},
		{"want equals have", 6, 6},
		{"negative want", 6, -3},
	}
	for _, p := range policies {
		for _, tc := range cases {
			t.Run(p.String()+"/"+tc.name, func(t *testing.T) {
				g := p.Grant(tc.have, tc.want)
				// The SplitPolicy contract: 0 ≤ grant ≤ have, whatever
				// the inputs. (GrantAll legitimately grants everything
				// even for want=0: full reads need the entire holding.)
				if g < 0 || g > tc.have {
					t.Errorf("%s.Grant(%d, %d) = %d out of [0, %d]",
						p, tc.have, tc.want, g, tc.have)
				}
			})
		}
	}
}

func TestEvenSharesEdges(t *testing.T) {
	cases := []struct {
		name  string
		total Value
		n     int
		want  []Value
	}{
		{"zero total many sites", 0, 4, []Value{0, 0, 0, 0}},
		{"fewer units than sites", 2, 4, []Value{1, 1, 0, 0}},
		{"one unit", 1, 3, []Value{1, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EvenShares(tc.total, tc.n)
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			var sum Value
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("share %d = %d, want %d", i, got[i], tc.want[i])
				}
				sum += got[i]
			}
			if sum != tc.total {
				t.Errorf("shares sum to %d, want %d", sum, tc.total)
			}
		})
	}
}
