// Package core implements the paper's §4.1 formalism: Data-value
// Partitioning (DvP).
//
// A data item d is drawn from a domain Γ. The system never stores d
// itself; it stores a non-empty multiset b ∈ Γ⁺ of constituent values
// whose image under a surjective mapping Π : Γ⁺ → Γ is d. The paper's
// running example — and the domain this package makes concrete — is
// quantities (seats, money, inventory units) with Π = summation.
//
// The package states three algebraic notions and provides them for the
// summation domain:
//
//   - the partitionable property of Π: partitioning a multiset and
//     re-collapsing the pieces preserves its image (Π(b′) = Π(b));
//   - partitionable operators f whose effective application to one
//     element of the multiset acts on the whole item
//     (f(Π(b)) = Π(b′)), with "ineffective" applications behaving as
//     no-ops;
//   - redistribution operators h that reshuffle the multiset without
//     changing the item's value (Π(h(b)) = Π(b)).
//
// These laws are what make single-site, non-blocking transaction
// processing sound; they are verified exhaustively by property tests.
package core

import (
	"errors"
	"fmt"
)

// Value is an element of the domain Γ: a quantity of some divisible,
// interchangeable resource (seats on a flight, cents in an account,
// units of stock). The system maintains the invariant that every
// stored constituent value is non-negative; quantities model resources
// and a site cannot hold a negative amount of a resource.
type Value int64

// ErrNotEffective reports that a partitionable operator could not be
// effectively applied to the given value (paper §4.1: "ineffective
// applications result when, for reasons particular to the argument,
// the result is equivalent to a 'no-operation'"). The canonical case
// is decrementing below zero.
var ErrNotEffective = errors.New("core: operator not effectively applicable")

// ErrNegative reports an attempt to construct a negative quantity.
var ErrNegative = errors.New("core: negative quantity")

// Op is a partitionable operator for the summation domain. Apply
// attempts an effective application to a single constituent value and
// reports the new value, or ok=false when the application would be
// ineffective on this value (in which case the value is unchanged).
//
// Implementations must satisfy the partitionable-operator law: if
// Apply(x) = (x′, true) then for any multiset b containing x, replacing
// x by x′ yields b′ with Π(b′) = f(Π(b)) where f is the operator's
// effect on whole values. Delta reports that effect as a signed
// change, which is what the law reduces to under summation.
type Op interface {
	// Apply attempts the operator on one constituent value.
	Apply(v Value) (Value, bool)
	// Delta is the signed change to Π the operator causes when
	// effectively applied.
	Delta() Value
	// Needs reports the minimum constituent value required for the
	// application to be effective. Transactions use it to decide
	// whether local quota suffices or redistribution is needed
	// (paper §5 step 2).
	Needs() Value
	// String describes the operator for logs and traces.
	String() string
}

// Incr is the paper's "increment the argument by m" operator. It is
// effective on every value (m ≥ 0).
type Incr struct{ M Value }

// Apply implements Op.
func (o Incr) Apply(v Value) (Value, bool) {
	if o.M < 0 {
		return v, false
	}
	return v + o.M, true
}

// Delta implements Op.
func (o Incr) Delta() Value { return o.M }

// Needs implements Op: increments never need local quota.
func (o Incr) Needs() Value { return 0 }

func (o Incr) String() string { return fmt.Sprintf("incr(%d)", o.M) }

// Decr is the paper's "decrement the argument by m if the result does
// not fall below 0" operator — the operator that motivates the
// effectiveness condition. It is effective exactly when v ≥ m.
type Decr struct{ M Value }

// Apply implements Op.
func (o Decr) Apply(v Value) (Value, bool) {
	if o.M < 0 || v < o.M {
		return v, false
	}
	return v - o.M, true
}

// Delta implements Op.
func (o Decr) Delta() Value { return -o.M }

// Needs implements Op: a bounded decrement needs at least M locally.
func (o Decr) Needs() Value { return o.M }

func (o Decr) String() string { return fmt.Sprintf("decr(%d)", o.M) }

// Noop is the identity operator; it is how an aborted transaction
// appears to the data item (paper §6: "aborted transactions can be
// regarded as Rds transactions").
type Noop struct{}

// Apply implements Op.
func (Noop) Apply(v Value) (Value, bool) { return v, true }

// Delta implements Op.
func (Noop) Delta() Value { return 0 }

// Needs implements Op.
func (Noop) Needs() Value { return 0 }

func (Noop) String() string { return "noop" }

// Compose returns the operator that applies ops left to right as one
// effective unit: it is effective iff the sequence can be applied with
// every intermediate result staying in the domain. Composition of
// partitionable operators is partitionable (the paper applies several
// operators within one transaction).
func Compose(ops ...Op) Op { return composite(ops) }

type composite []Op

func (c composite) Apply(v Value) (Value, bool) {
	cur := v
	for _, op := range c {
		next, ok := op.Apply(cur)
		if !ok {
			return v, false
		}
		cur = next
	}
	return cur, true
}

func (c composite) Delta() Value {
	var d Value
	for _, op := range c {
		d += op.Delta()
	}
	return d
}

func (c composite) Needs() Value {
	// Worst-case running requirement: the sequence is effective on v
	// iff v + prefixDelta never dips below the next op's Needs.
	var need, run Value
	for _, op := range c {
		if n := op.Needs() - run; n > need {
			need = n
		}
		run += op.Delta()
	}
	if need < 0 {
		need = 0
	}
	return need
}

func (c composite) String() string {
	s := "seq("
	for i, op := range c {
		if i > 0 {
			s += ";"
		}
		s += op.String()
	}
	return s + ")"
}
