package core

import "fmt"

// SplitPolicy decides how much of its local quota a site surrenders
// when honoring a redistribution request for `want` units while
// holding `have` (paper §3: "Suppose that site Z decides to send 5
// seats as a response" — how much to send is a policy choice the paper
// leaves open; §8 calls for exactly this kind of performance study).
//
// The returned grant must satisfy 0 ≤ grant ≤ have; the conservation
// invariant does not care which policy is used, only experiments F1/T4
// do.
type SplitPolicy interface {
	// Grant returns how much to surrender for a request of want
	// against a local holding of have.
	Grant(have, want Value) Value
	// String names the policy for experiment output.
	String() string
}

// GrantExact surrenders min(have, want): just enough to satisfy the
// request, keeping the rest local. Minimizes value motion; maximizes
// future remote requests.
type GrantExact struct{}

// Grant implements SplitPolicy.
func (GrantExact) Grant(have, want Value) Value {
	if want < 0 {
		return 0
	}
	if have < want {
		return have
	}
	return want
}

func (GrantExact) String() string { return "exact" }

// GrantAll surrenders the entire local holding. This is the behaviour
// required when honoring a full read: the requester must assemble all
// of Π⁻¹(d) (paper §5), so partial grants are useless.
type GrantAll struct{}

// Grant implements SplitPolicy.
func (GrantAll) Grant(have, want Value) Value { return have }

func (GrantAll) String() string { return "all" }

// GrantHalfExcess surrenders the request plus half the surplus beyond
// it, anticipating that a requester short of quota now is likely to be
// short again. A middle ground between exact and all.
type GrantHalfExcess struct{}

// Grant implements SplitPolicy.
func (GrantHalfExcess) Grant(have, want Value) Value {
	if want < 0 {
		want = 0
	}
	if have <= want {
		return have
	}
	return want + (have-want)/2
}

func (GrantHalfExcess) String() string { return "half-excess" }

// GrantFraction surrenders a fixed fraction of the holding (at least
// the request if possible). Num/Den is the fraction; e.g. 1/4.
type GrantFraction struct {
	Num, Den Value
}

// Grant implements SplitPolicy.
func (g GrantFraction) Grant(have, want Value) Value {
	if g.Den <= 0 || g.Num < 0 {
		return 0
	}
	grant := have * g.Num / g.Den
	if grant < want {
		grant = want
	}
	if grant > have {
		grant = have
	}
	if grant < 0 {
		grant = 0
	}
	return grant
}

func (g GrantFraction) String() string { return fmt.Sprintf("frac(%d/%d)", g.Num, g.Den) }

// EvenShares computes the initial partitioning of a total value into n
// site quotas, as in the paper's §3 example (N=100 over four sites →
// 25/25/25/25). Remainders go to the lowest-indexed sites, so the
// shares always sum to total exactly.
func EvenShares(total Value, n int) []Value {
	if n <= 0 || total < 0 {
		return nil
	}
	base := total / Value(n)
	rem := total % Value(n)
	out := make([]Value, n)
	for i := range out {
		out[i] = base
		if Value(i) < rem {
			out[i]++
		}
	}
	return out
}

// DemandShares partitions total toward observed per-site demand while
// guaranteeing every site a floor fraction of its even share — the
// demand-driven rebalancer's target function (§8's open question of
// "the best ways to distribute the data values among the sites").
//
// floor ∈ [0,1] is the fraction of the even share each site keeps
// regardless of demand: 0 chases demand completely (a cold site can be
// drained to nothing), 1 degenerates to EvenShares. The reserved part
// is carved out first; the remainder is split proportionally to the
// demand weights (falling back to even when no demand is observed
// anywhere). The shares always sum to total exactly.
func DemandShares(total Value, demands []float64, floor float64) []Value {
	n := len(demands)
	if n == 0 || total < 0 {
		return nil
	}
	if floor < 0 {
		floor = 0
	}
	if floor > 1 {
		floor = 1
	}
	even := EvenShares(total, n)
	out := make([]Value, n)
	var reserved Value
	for i := range out {
		out[i] = Value(float64(even[i]) * floor)
		reserved += out[i]
	}
	for i, w := range WeightedShares(total-reserved, demands) {
		out[i] += w
	}
	return out
}

// WeightedShares partitions total proportionally to non-negative
// weights (e.g. expected per-site demand), distributing rounding
// remainders to the largest fractional parts first and then by index.
// The shares always sum to total exactly. A zero weight vector falls
// back to even shares.
func WeightedShares(total Value, weights []float64) []Value {
	n := len(weights)
	if n == 0 || total < 0 {
		return nil
	}
	var wsum float64
	for _, w := range weights {
		if w > 0 {
			wsum += w
		}
	}
	if wsum == 0 {
		return EvenShares(total, n)
	}
	out := make([]Value, n)
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, n)
	var used Value
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(total) * w / wsum
		fl := Value(exact)
		out[i] = fl
		used += fl
		fracs[i] = frac{i, exact - float64(fl)}
	}
	// Hand out the remainder to the largest fractional parts.
	rem := total - used
	for k := Value(0); k < rem; k++ {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].f > fracs[best].f {
				best = i
			}
		}
		out[fracs[best].i]++
		fracs[best].f = -1
	}
	return out
}
