package core

import (
	"fmt"
	"sort"
	"strings"
)

// Multiset is an element of Γ⁺: a finite multiset of constituent
// values. The stored representation of a data item d is a multiset b
// with Pi(b) = d, its elements scattered across sites and in-flight
// virtual messages.
//
// Multiset is a value type; operations return new multisets and never
// alias the receiver's backing array, so concurrent readers are safe.
type Multiset struct {
	elems []Value
}

// NewMultiset builds a multiset from the given values. It returns an
// error if any value is negative (quantities are non-negative) or the
// multiset would be empty (Γ⁺ contains non-empty multisets only).
func NewMultiset(vals ...Value) (Multiset, error) {
	if len(vals) == 0 {
		return Multiset{}, fmt.Errorf("core: multiset must be non-empty")
	}
	elems := make([]Value, len(vals))
	for i, v := range vals {
		if v < 0 {
			return Multiset{}, fmt.Errorf("%w: %d", ErrNegative, v)
		}
		elems[i] = v
	}
	return Multiset{elems: elems}, nil
}

// MustMultiset is NewMultiset for tests and examples with known-good
// literals; it panics on invalid input.
func MustMultiset(vals ...Value) Multiset {
	b, err := NewMultiset(vals...)
	if err != nil {
		panic(err)
	}
	return b
}

// Pi is the mapping Π : Γ⁺ → Γ for the summation domain: the value of
// the data item the multiset represents. Π is surjective (every
// quantity d is Π of the singleton {d}) and trivially "easily
// computed" as the paper requires.
func (b Multiset) Pi() Value {
	var sum Value
	for _, v := range b.elems {
		sum += v
	}
	return sum
}

// Len returns the number of constituent values.
func (b Multiset) Len() int { return len(b.elems) }

// Elems returns a copy of the constituent values.
func (b Multiset) Elems() []Value {
	out := make([]Value, len(b.elems))
	copy(out, b.elems)
	return out
}

// At returns the i-th constituent value.
func (b Multiset) At(i int) Value { return b.elems[i] }

// Split partitions the multiset into m pieces round-robin, returning
// the pieces b_1..b_m (empty pieces are dropped, keeping every piece in
// Γ⁺). It is the entry point for checking the partitionable property.
func (b Multiset) Split(m int) []Multiset {
	if m < 1 {
		m = 1
	}
	parts := make([][]Value, m)
	for i, v := range b.elems {
		parts[i%m] = append(parts[i%m], v)
	}
	out := make([]Multiset, 0, m)
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, Multiset{elems: p})
		}
	}
	return out
}

// Collapse applies the paper's partitionable-property construction:
// given pieces b_1..b_m it forms the multiset b′ whose elements are
// Π(b_1), …, Π(b_m). The property Π(b′) = Π(b) is what lets each site
// treat its local share as a single value.
func Collapse(pieces []Multiset) (Multiset, error) {
	if len(pieces) == 0 {
		return Multiset{}, fmt.Errorf("core: collapse of zero pieces")
	}
	vals := make([]Value, len(pieces))
	for i, p := range pieces {
		vals[i] = p.Pi()
	}
	return NewMultiset(vals...)
}

// ApplyAt applies a partitionable operator to the i-th element,
// returning the new multiset and whether the application was
// effective. An ineffective application leaves the multiset unchanged
// (no-operation), matching the paper's definition.
func (b Multiset) ApplyAt(i int, op Op) (Multiset, bool) {
	if i < 0 || i >= len(b.elems) {
		return b, false
	}
	nv, ok := op.Apply(b.elems[i])
	if !ok {
		return b, false
	}
	out := make([]Value, len(b.elems))
	copy(out, b.elems)
	out[i] = nv
	return Multiset{elems: out}, true
}

// Redistribute is a redistribution operator h: it moves amount from
// element i to element j. Π(h(b)) = Π(b) by construction; it fails
// (ineffective) if element i holds less than amount. Virtual-message
// transfer between sites is exactly this operator with i on the sender
// and j on the receiver.
func (b Multiset) Redistribute(i, j int, amount Value) (Multiset, bool) {
	if i < 0 || j < 0 || i >= len(b.elems) || j >= len(b.elems) || amount < 0 {
		return b, false
	}
	if b.elems[i] < amount {
		return b, false
	}
	out := make([]Value, len(b.elems))
	copy(out, b.elems)
	out[i] -= amount
	out[j] += amount
	return Multiset{elems: out}, true
}

// Equal reports whether two multisets contain the same values with the
// same multiplicities (order-insensitive).
func (b Multiset) Equal(o Multiset) bool {
	if len(b.elems) != len(o.elems) {
		return false
	}
	x := append([]Value(nil), b.elems...)
	y := append([]Value(nil), o.elems...)
	sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
	sort.Slice(y, func(i, j int) bool { return y[i] < y[j] })
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// String renders "{2 3 10 15}".
func (b Multiset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range b.elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteByte('}')
	return sb.String()
}
