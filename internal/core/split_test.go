package core

import (
	"testing"
	"testing/quick"
)

func TestEvenSharesPaperExample(t *testing.T) {
	got := EvenShares(100, 4)
	for i, v := range got {
		if v != 25 {
			t.Fatalf("share %d = %d, want 25 (paper §3)", i, v)
		}
	}
}

func TestEvenSharesRemainder(t *testing.T) {
	got := EvenShares(10, 3)
	want := []Value{4, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvenShares(10,3) = %v, want %v", got, want)
		}
	}
}

func TestEvenSharesSumProperty(t *testing.T) {
	f := func(total uint32, n uint8) bool {
		nn := int(n%32) + 1
		shares := EvenShares(Value(total), nn)
		if len(shares) != nn {
			return false
		}
		var sum Value
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == Value(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvenSharesDegenerate(t *testing.T) {
	if EvenShares(5, 0) != nil {
		t.Error("n=0 must yield nil")
	}
	if EvenShares(-1, 3) != nil {
		t.Error("negative total must yield nil")
	}
}

func TestWeightedSharesProportional(t *testing.T) {
	got := WeightedShares(100, []float64{1, 1, 2})
	want := []Value{25, 25, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WeightedShares = %v, want %v", got, want)
		}
	}
}

func TestWeightedSharesSumProperty(t *testing.T) {
	f := func(total uint16, w1, w2, w3 uint8) bool {
		shares := WeightedShares(Value(total), []float64{float64(w1), float64(w2), float64(w3)})
		var sum Value
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == Value(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSharesZeroWeightsFallsBack(t *testing.T) {
	got := WeightedShares(9, []float64{0, 0, 0})
	want := EvenShares(9, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zero weights: got %v, want even %v", got, want)
		}
	}
}

func TestWeightedSharesNegativeWeightTreatedZero(t *testing.T) {
	got := WeightedShares(10, []float64{-5, 1})
	if got[0] != 0 || got[1] != 10 {
		t.Errorf("negative weight should get nothing: %v", got)
	}
}

func TestDemandSharesChasesDemand(t *testing.T) {
	// One hot site, floor 0: everything follows demand.
	got := DemandShares(100, []float64{3, 1, 0, 0}, 0)
	want := []Value{75, 25, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DemandShares floor=0: got %v, want %v", got, want)
		}
	}
}

func TestDemandSharesFloorKeepsMinimum(t *testing.T) {
	// floor 0.5 over even share 25 reserves 12 each (truncated); the
	// remaining 52 chase demand entirely toward site 1.
	got := DemandShares(100, []float64{1, 0, 0, 0}, 0.5)
	if got[0] != 64 {
		t.Fatalf("hot site share = %d, want 64", got[0])
	}
	for i := 1; i < 4; i++ {
		if got[i] != 12 {
			t.Fatalf("cold site %d share = %d, want the 12-unit floor", i, got[i])
		}
	}
}

func TestDemandSharesFloorOneIsEven(t *testing.T) {
	got := DemandShares(101, []float64{9, 0, 1}, 1)
	want := EvenShares(101, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("floor=1: got %v, want even %v", got, want)
		}
	}
}

func TestDemandSharesNoDemandFallsBackEven(t *testing.T) {
	got := DemandShares(100, []float64{0, 0, 0, 0}, 0.25)
	want := EvenShares(100, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("no demand: got %v, want even %v", got, want)
		}
	}
}

func TestDemandSharesSumProperty(t *testing.T) {
	f := func(total uint16, w1, w2, w3 uint8, floorRaw uint8) bool {
		floor := float64(floorRaw) / 128 // covers out-of-range > 1 too
		shares := DemandShares(Value(total), []float64{float64(w1), float64(w2), float64(w3)}, floor)
		var sum Value
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == Value(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDemandSharesDegenerate(t *testing.T) {
	if DemandShares(5, nil, 0.5) != nil {
		t.Error("no sites must yield nil")
	}
	if DemandShares(-1, []float64{1}, 0.5) != nil {
		t.Error("negative total must yield nil")
	}
}

func TestGrantExact(t *testing.T) {
	p := GrantExact{}
	if g := p.Grant(10, 4); g != 4 {
		t.Errorf("Grant(10,4) = %d, want 4", g)
	}
	if g := p.Grant(3, 4); g != 3 {
		t.Errorf("Grant(3,4) = %d, want 3", g)
	}
	if g := p.Grant(3, -1); g != 0 {
		t.Errorf("Grant(3,-1) = %d, want 0", g)
	}
}

func TestGrantAll(t *testing.T) {
	if g := (GrantAll{}).Grant(7, 1); g != 7 {
		t.Errorf("GrantAll.Grant(7,1) = %d, want 7", g)
	}
}

func TestGrantHalfExcess(t *testing.T) {
	p := GrantHalfExcess{}
	if g := p.Grant(20, 4); g != 12 { // 4 + (16)/2
		t.Errorf("Grant(20,4) = %d, want 12", g)
	}
	if g := p.Grant(3, 4); g != 3 {
		t.Errorf("Grant(3,4) = %d, want 3", g)
	}
}

func TestGrantFraction(t *testing.T) {
	p := GrantFraction{Num: 1, Den: 4}
	if g := p.Grant(40, 2); g != 10 {
		t.Errorf("Grant(40,2) = %d, want 10", g)
	}
	if g := p.Grant(40, 15); g != 15 { // at least the request
		t.Errorf("Grant(40,15) = %d, want 15", g)
	}
	if g := p.Grant(8, 100); g != 8 { // capped at holding
		t.Errorf("Grant(8,100) = %d, want 8", g)
	}
	if g := (GrantFraction{Num: 1, Den: 0}).Grant(8, 1); g != 0 {
		t.Errorf("zero denominator must grant 0, got %d", g)
	}
}

// All policies obey the fundamental bound 0 ≤ grant ≤ have.
func TestPolicyBoundsProperty(t *testing.T) {
	policies := []SplitPolicy{GrantExact{}, GrantAll{}, GrantHalfExcess{}, GrantFraction{1, 4}, GrantFraction{3, 4}}
	f := func(have uint16, want int16) bool {
		for _, p := range policies {
			g := p.Grant(Value(have), Value(want))
			if g < 0 || g > Value(have) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[string]SplitPolicy{
		"exact":       GrantExact{},
		"all":         GrantAll{},
		"half-excess": GrantHalfExcess{},
		"frac(1/4)":   GrantFraction{1, 4},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
