package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMultisetRejectsEmpty(t *testing.T) {
	if _, err := NewMultiset(); err == nil {
		t.Error("empty multiset must be rejected (Γ⁺ is non-empty multisets)")
	}
}

func TestNewMultisetRejectsNegative(t *testing.T) {
	if _, err := NewMultiset(1, -2, 3); err == nil {
		t.Error("negative constituent value must be rejected")
	}
}

func TestPiSums(t *testing.T) {
	// The paper's §3 state: N_W=2, N_X=3, N_Y=10, N_Z=15 → N=30.
	b := MustMultiset(2, 3, 10, 15)
	if b.Pi() != 30 {
		t.Errorf("Pi = %d, want 30", b.Pi())
	}
}

func TestPiSurjectiveViaSingleton(t *testing.T) {
	// Every d ∈ Γ is Π of the singleton {d}.
	f := func(d uint32) bool {
		return MustMultiset(Value(d)).Pi() == Value(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemsIsCopy(t *testing.T) {
	b := MustMultiset(1, 2, 3)
	e := b.Elems()
	e[0] = 99
	if b.At(0) != 1 {
		t.Error("Elems must return a copy, not alias the multiset")
	}
}

// TestPartitionableProperty verifies the paper's defining law for Π:
// for any multiset b partitioned into b_1..b_m, the multiset b′ of the
// images Π(b_i) satisfies Π(b′) = Π(b).
func TestPartitionablePropertyQuick(t *testing.T) {
	f := func(raw []uint16, m uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]Value, len(raw))
		for i, r := range raw {
			vals[i] = Value(r)
		}
		b := MustMultiset(vals...)
		pieces := b.Split(int(m%8) + 1)
		collapsed, err := Collapse(pieces)
		if err != nil {
			return false
		}
		return collapsed.Pi() == b.Pi()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSplitDropsNoValue(t *testing.T) {
	b := MustMultiset(5, 7, 11)
	pieces := b.Split(10) // more pieces than elements
	var total Value
	var count int
	for _, p := range pieces {
		total += p.Pi()
		count += p.Len()
	}
	if total != b.Pi() || count != b.Len() {
		t.Errorf("Split lost value: total=%d count=%d", total, count)
	}
	for _, p := range pieces {
		if p.Len() == 0 {
			t.Error("Split produced an empty piece (not in Γ⁺)")
		}
	}
}

func TestCollapseEmptyRejected(t *testing.T) {
	if _, err := Collapse(nil); err == nil {
		t.Error("Collapse of zero pieces must error")
	}
}

// TestPartitionableOperatorLaw verifies f(Π(b)) = Π(b′) where b′ is b
// with f effectively applied to one element (§4.1's derivation).
func TestPartitionableOperatorLawQuick(t *testing.T) {
	f := func(raw []uint16, idx uint8, m int8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]Value, len(raw))
		for i, r := range raw {
			vals[i] = Value(r)
		}
		b := MustMultiset(vals...)
		i := int(idx) % b.Len()
		var op Op
		if m >= 0 {
			op = Incr{Value(m)}
		} else {
			op = Decr{Value(-int64(m))}
		}
		b2, ok := b.ApplyAt(i, op)
		if !ok {
			// Ineffective: must be a no-op on the multiset.
			return b2.Equal(b)
		}
		want, wok := op.Apply(b.Pi())
		// If effective on one element it is effective on the whole
		// (the whole is at least as large for our domain).
		return wok && b2.Pi() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestRedistributionLaw verifies Π(h(b)) = Π(b) for the transfer
// redistribution operator.
func TestRedistributionLawQuick(t *testing.T) {
	f := func(raw []uint16, i8, j8, amt8 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]Value, len(raw))
		for k, r := range raw {
			vals[k] = Value(r)
		}
		b := MustMultiset(vals...)
		i := int(i8) % b.Len()
		j := int(j8) % b.Len()
		b2, ok := b.Redistribute(i, j, Value(amt8))
		if !ok {
			return b2.Equal(b)
		}
		if b2.Pi() != b.Pi() {
			return false
		}
		for _, v := range b2.Elems() {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRedistributeInsufficient(t *testing.T) {
	b := MustMultiset(3, 9)
	if _, ok := b.Redistribute(0, 1, 4); ok {
		t.Error("Redistribute must fail when the source holds too little")
	}
}

func TestRedistributeSelfTransfer(t *testing.T) {
	b := MustMultiset(3, 9)
	b2, ok := b.Redistribute(1, 1, 5)
	if !ok || !b2.Equal(b) {
		t.Errorf("self transfer should be an effective no-op, got %v ok=%v", b2, ok)
	}
}

func TestApplyAtOutOfRange(t *testing.T) {
	b := MustMultiset(1)
	if _, ok := b.ApplyAt(5, Incr{1}); ok {
		t.Error("ApplyAt out of range must be ineffective")
	}
	if _, ok := b.ApplyAt(-1, Incr{1}); ok {
		t.Error("ApplyAt negative index must be ineffective")
	}
}

func TestApplyAtDoesNotMutateOriginal(t *testing.T) {
	b := MustMultiset(10, 20)
	b2, ok := b.ApplyAt(0, Decr{5})
	if !ok || b2.At(0) != 5 {
		t.Fatalf("ApplyAt = %v ok=%v", b2, ok)
	}
	if b.At(0) != 10 {
		t.Error("ApplyAt mutated the original multiset")
	}
}

func TestEqualOrderInsensitive(t *testing.T) {
	a := MustMultiset(1, 2, 2, 3)
	b := MustMultiset(3, 2, 1, 2)
	if !a.Equal(b) {
		t.Error("multiset equality must ignore order")
	}
	c := MustMultiset(1, 2, 3, 3)
	if a.Equal(c) {
		t.Error("different multiplicities must not be equal")
	}
	d := MustMultiset(1, 2, 2)
	if a.Equal(d) {
		t.Error("different sizes must not be equal")
	}
}

func TestString(t *testing.T) {
	if got := MustMultiset(2, 3, 10, 15).String(); got != "{2 3 10 15}" {
		t.Errorf("String = %q", got)
	}
}

// TestSection3Worked replays the paper's §3 worked example end to end
// on the algebra: 100 seats split 25/25/25/25; reservations of 3, 4, 5
// at W; later state (2,3,10,15); X needs 5, Z grants 5; X allocates.
func TestSection3Worked(t *testing.T) {
	b := MustMultiset(EvenShares(100, 4)...)
	if b.Pi() != 100 {
		t.Fatalf("initial Pi = %d", b.Pi())
	}
	const W, X, Z = 0, 1, 3
	for _, m := range []Value{3, 4, 5} {
		var ok bool
		b, ok = b.ApplyAt(W, Decr{m})
		if !ok {
			t.Fatalf("reserving %d seats at W should be effective", m)
		}
	}
	if b.At(W) != 13 {
		t.Fatalf("N_W = %d, want 13", b.At(W))
	}
	// Jump to the paper's later state.
	b = MustMultiset(2, 3, 10, 15)
	// Customer wants 5 at X; local value 3 is inadequate.
	if _, ok := b.ApplyAt(X, Decr{5}); ok {
		t.Fatal("allocation at X must be ineffective before redistribution")
	}
	// Z sends 5 (a redistribution operator): N_Z 15→10, N_X 3→8.
	b2, ok := b.Redistribute(Z, X, 5)
	if !ok {
		t.Fatal("Z must be able to grant 5")
	}
	if b2.Pi() != b.Pi() {
		t.Fatalf("redistribution changed N: %d → %d", b.Pi(), b2.Pi())
	}
	b3, ok := b2.ApplyAt(X, Decr{5})
	if !ok {
		t.Fatal("allocation at X must succeed after redistribution")
	}
	want := MustMultiset(2, 3, 10, 10)
	if !b3.Equal(want) {
		t.Errorf("final state %v, want %v", b3, want)
	}
	if b3.Pi() != 25 {
		t.Errorf("final N = %d, want 25", b3.Pi())
	}
}

// Fuzz-style randomized soak: arbitrary interleavings of partitionable
// and redistribution operators conserve exactly the serial delta sum.
func TestConservationUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(6) + 1
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Value(rng.Intn(100))
		}
		b := MustMultiset(vals...)
		expect := b.Pi()
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0: // incr
				m := Value(rng.Intn(10))
				if nb, ok := b.ApplyAt(rng.Intn(n), Incr{m}); ok {
					b = nb
					expect += m
				}
			case 1: // bounded decr
				m := Value(rng.Intn(10))
				if nb, ok := b.ApplyAt(rng.Intn(n), Decr{m}); ok {
					b = nb
					expect -= m
				}
			case 2: // redistribute
				if nb, ok := b.Redistribute(rng.Intn(n), rng.Intn(n), Value(rng.Intn(20))); ok {
					b = nb
				}
			}
			if b.Pi() != expect {
				t.Fatalf("trial %d step %d: Pi=%d expect=%d", trial, step, b.Pi(), expect)
			}
		}
	}
}
