package wire

import (
	"bytes"
	"testing"

	"dvp/internal/tstamp"
)

func TestGetWriterIsEmpty(t *testing.T) {
	w := GetWriter()
	w.String("leftover state from a previous user")
	PutWriter(w)
	for i := 0; i < 100; i++ {
		got := GetWriter()
		if got.Len() != 0 {
			t.Fatalf("GetWriter returned non-empty writer: %d bytes", got.Len())
		}
		got.U64(uint64(i)) // dirty it so the next Get has to reset
		PutWriter(got)
	}
}

func TestPutWriterDropsOversized(t *testing.T) {
	w := new(Writer)
	w.buf = make([]byte, 0, maxPooledWriterCap+1)
	PutWriter(w) // oversized: dropped, not pooled
	PutWriter(nil)
}

// TestMarshalIntoReusedWriterAllocs pins the hot-path property the pool
// exists for: once a Writer has warmed its capacity, encoding an
// envelope into it allocates nothing.
func TestMarshalIntoReusedWriterAllocs(t *testing.T) {
	env := &Envelope{
		From: 1, To: 2, Lamport: tstamp.Make(12345, 1), AckUpTo: 99,
		Msg: &Vm{Seq: 7, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(42, 2),
			FlowVec: []FlowEntry{{Site: 1, Count: 3}}},
	}
	w := GetWriter()
	defer PutWriter(w)
	if err := env.MarshalInto(w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.Reset()
		if err := env.MarshalInto(w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MarshalInto with warm writer: %.1f allocs/op, want 0", allocs)
	}
}

// FuzzReusedWriter proves pool hygiene: an envelope encoded into a
// reused, previously poisoned Writer is byte-identical to one encoded
// fresh. If Reset or the pool ever leaked stale bytes into a frame,
// this is the test that catches it.
func FuzzReusedWriter(f *testing.F) {
	seeds := []Msg{
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3, FullRead: true},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2),
			FlowVec: []FlowEntry{{Site: 1, Count: 3}}},
		&VmAck{UpTo: 42},
		&VmBatch{Vms: []Vm{{Seq: 4, Item: "a", Amount: 1}, {Seq: 5, Item: "b", Amount: 2}}},
		&QuotaReply{Nonce: 7, Item: "x", Value: 9, Known: true},
	}
	for _, m := range seeds {
		env := &Envelope{From: 1, To: 2, Lamport: tstamp.Make(9, 1), AckUpTo: 3, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf, []byte("poison"))
	}
	f.Fuzz(func(t *testing.T, frame, poison []byte) {
		env, err := Unmarshal(frame)
		if err != nil {
			return
		}
		want, err := env.Marshal()
		if err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}

		// Poison a writer with arbitrary bytes, cycle it through the
		// pool, and encode into whatever comes back out.
		dirty := GetWriter()
		dirty.Bytes2(poison)
		dirty.U64(0xdeadbeefdeadbeef)
		PutWriter(dirty)
		w := GetWriter()
		if err := env.MarshalInto(w); err != nil {
			t.Fatalf("MarshalInto: %v", err)
		}
		got := w.Bytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("reused-writer encoding differs:\n got %x\nwant %x", got, want)
		}
		// And again into the same writer after a Reset — a second user
		// of the same scratch.
		w.Reset()
		if err := env.MarshalInto(w); err != nil {
			t.Fatalf("MarshalInto after Reset: %v", err)
		}
		if !bytes.Equal(w.Bytes(), want) {
			t.Fatalf("second encoding into same writer differs")
		}
		PutWriter(w)
	})
}
