package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(1 << 40)
	w.I64(-123456789)
	w.Bool(true)
	w.Bool(false)
	w.String("hello, Γ⁺")
	w.Bytes2([]byte{1, 2, 3})
	w.F64(3.25)

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.I64(); v != -123456789 {
		t.Errorf("I64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.String(); v != "hello, Γ⁺" {
		t.Errorf("String = %q", v)
	}
	if v := r.Bytes2(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes2 = %v", v)
	}
	if v := r.F64(); v != 3.25 {
		t.Errorf("F64 = %v", v)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes remaining", r.Remaining())
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, s string) bool {
		var w Writer
		w.U64(u)
		w.I64(i)
		w.String(s)
		r := NewReader(w.Bytes())
		return r.U64() == u && r.I64() == i && r.String() == s && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32()
	if r.Err() == nil {
		t.Error("U32 on 1 byte must fail")
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.U8()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Error("error must be sticky (first error wins)")
	}
	if v := r.U64(); v != 0 {
		t.Errorf("reads after error must return zero, got %d", v)
	}
}

func TestStringTooLong(t *testing.T) {
	var w Writer
	w.U64(maxStringLen + 1)
	r := NewReader(w.Bytes())
	_ = r.String()
	if r.Err() == nil {
		t.Error("oversized string length must be rejected")
	}
}

func TestBytes2Copied(t *testing.T) {
	var w Writer
	w.Bytes2([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes2()
	buf[len(buf)-1] = 0
	if got[2] != 9 {
		t.Error("Bytes2 must copy out of the underlying buffer")
	}
}

func TestEmptyStringAndBytes(t *testing.T) {
	var w Writer
	w.String("")
	w.Bytes2(nil)
	r := NewReader(w.Bytes())
	if s := r.String(); s != "" {
		t.Errorf("String = %q", s)
	}
	if b := r.Bytes2(); len(b) != 0 {
		t.Errorf("Bytes2 = %v", b)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}

// Decoding random garbage must never panic, only error.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		r := NewReader(garbage)
		_ = r.U64()
		_ = r.String()
		_ = r.I64()
		_ = r.Bytes2()
		_ = r.F64()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
