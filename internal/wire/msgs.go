package wire

import (
	"fmt"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// Kind discriminates the message types carried in an Envelope.
type Kind uint8

// Message kinds. The first group is the DvP/Vm protocol of the paper;
// the second group serves the traditional baselines (strict 2PL +
// two-phase commit, quorum and primary-copy replica control); the
// third group is cluster control/introspection traffic.
const (
	// KRequest asks a remote site to surrender part (or, for a full
	// read, all) of its quota for an item (paper §5 step 2).
	KRequest Kind = iota + 1
	// KVm carries value between sites: the real message realizing a
	// virtual message (paper §4.2).
	KVm
	// KVmAck is a standalone cumulative acknowledgement; normally
	// acks ride piggybacked in the Envelope, this exists for idle
	// links (paper §4.2 assumes piggybacked acks plus standard
	// window-protocol machinery).
	KVmAck

	// KLockReq / KLockReply: baseline replica lock traffic.
	KLockReq
	KLockReply
	// KWrite ships a baseline write to a replica holder (applied at
	// commit, after 2PC decides).
	KWrite
	// KPrepare / KVote / KDecision / KDecisionAck: two-phase commit.
	KPrepare
	KVote
	KDecision
	KDecisionAck
	// KReadReq / KReadReply: baseline versioned replica reads
	// (quorum consensus needs version numbers).
	KReadReq
	KReadReply

	// KQWrite / KQWriteAck: quorum-consensus replica writes
	// (absolute value + version, applied at a write quorum).
	KQWrite
	KQWriteAck
	// KForward / KForwardReply: primary-copy operation forwarding.
	KForward
	KForwardReply

	// KQuotaQuery / KQuotaReply: introspection — ask a site for its
	// current local quota of an item (used by monitors and dvpctl,
	// never by transaction processing).
	KQuotaQuery
	KQuotaReply

	// KVmBatch coalesces several pending Vm toward one site into a
	// single envelope (retransmission piggybacking) — the virtual
	// messages stay individually sequenced; only their carriage
	// shares a frame. Appended at the enum tail to keep existing
	// frames and fuzz corpora stable.
	KVmBatch

	// KDemandAdvert carries a site's per-item demand estimate and
	// current holding to a peer — the gossip feeding demand-driven
	// rebalancing. Advisory only: losing one costs nothing (the next
	// interval resends), so it needs no ack or retransmission state.
	// Appended at the enum tail like KVmBatch.
	KDemandAdvert
)

func (k Kind) String() string {
	switch k {
	case KRequest:
		return "request"
	case KVm:
		return "vm"
	case KVmAck:
		return "vmack"
	case KLockReq:
		return "lockreq"
	case KLockReply:
		return "lockreply"
	case KWrite:
		return "write"
	case KPrepare:
		return "prepare"
	case KVote:
		return "vote"
	case KDecision:
		return "decision"
	case KDecisionAck:
		return "decisionack"
	case KReadReq:
		return "readreq"
	case KReadReply:
		return "readreply"
	case KQWrite:
		return "qwrite"
	case KQWriteAck:
		return "qwriteack"
	case KForward:
		return "forward"
	case KForwardReply:
		return "forwardreply"
	case KQuotaQuery:
		return "quotaquery"
	case KQuotaReply:
		return "quotareply"
	case KVmBatch:
		return "vmbatch"
	case KDemandAdvert:
		return "demandadvert"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Msg is one protocol message. Encode appends the body to w; decode is
// dispatched by Kind in DecodeMsg.
type Msg interface {
	Kind() Kind
	Encode(w *Writer)
}

// --- DvP protocol messages -------------------------------------------------

// Request asks the receiver to surrender quota for Item. Want is the
// shortfall the requester needs; FullRead requests the receiver's
// entire holding and additionally requires the receiver to have no
// outstanding Vm for the item (paper §5). Txn identifies (and
// timestamps, under Conc1) the requesting transaction.
type Request struct {
	Txn      tstamp.TS
	Item     ident.ItemID
	Want     core.Value
	FullRead bool
	// Trace is the optional causal-tracing context (zero when the
	// origin site runs untraced). Encoded as a trailer; see TraceCtx.
	Trace TraceCtx
}

// Kind implements Msg.
func (*Request) Kind() Kind { return KRequest }

// Encode implements Msg.
func (m *Request) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.I64(int64(m.Want))
	w.Bool(m.FullRead)
	encodeTraceTail(w, m.Trace)
}

func decodeRequest(r *Reader) *Request {
	return &Request{
		Txn:      tstamp.TS(r.U64()),
		Item:     ident.ItemID(r.String()),
		Want:     core.Value(r.I64()),
		FullRead: r.Bool(),
		Trace:    decodeTraceTail(r),
	}
}

// Vm is the real message realizing a virtual message: Amount units of
// Item moving from the sender to the receiver. Seq is the position in
// the sender→receiver Vm channel (dense, starting at 1); the receiver
// accepts Vm exactly once, in any order, by tracking accepted seqs.
// ReqTxn echoes the transaction whose Request prompted this Vm (zero
// for proactive/redistribution transfers), letting the receiver wake
// the right waiting transaction.
// FlowEntry is one component of a value-flow vector: Count writers at
// Site are embodied in the carried value (serializability
// instrumentation; see internal/site's flow clocks).
type FlowEntry struct {
	Site  ident.SiteID
	Count uint64
}

// Vm is the real message realizing a virtual message.
type Vm struct {
	Seq    uint64
	Item   ident.ItemID
	Amount core.Value
	ReqTxn tstamp.TS
	// FlowVec is the sender's value-flow vector for Item at grant
	// time. It rides with the value so the receiver's vector merges
	// everything its quota now embodies.
	FlowVec []FlowEntry
	// Trace is the optional causal-tracing context of the transfer
	// (zero when untraced). Encoded as a trailer on standalone Vm
	// frames and as a parallel list on VmBatch; see TraceCtx.
	Trace TraceCtx
}

// Kind implements Msg.
func (*Vm) Kind() Kind { return KVm }

// Encode implements Msg.
func (m *Vm) Encode(w *Writer) {
	m.encodeBase(w)
	encodeTraceTail(w, m.Trace)
}

// encodeBase writes the pre-tracing Vm body (shared with VmBatch,
// whose trace contexts travel in a batch-level trailer instead).
func (m *Vm) encodeBase(w *Writer) {
	w.U64(m.Seq)
	w.String(string(m.Item))
	w.I64(int64(m.Amount))
	w.U64(uint64(m.ReqTxn))
	EncodeFlowVec(w, m.FlowVec)
}

func decodeVm(r *Reader) *Vm {
	v := decodeVmBase(r)
	v.Trace = decodeTraceTail(r)
	return v
}

func decodeVmBase(r *Reader) *Vm {
	return &Vm{
		Seq:     r.U64(),
		Item:    ident.ItemID(r.String()),
		Amount:  core.Value(r.I64()),
		ReqTxn:  tstamp.TS(r.U64()),
		FlowVec: DecodeFlowVec(r),
	}
}

// EncodeFlowVec appends a flow vector (length-prefixed site/count
// pairs).
func EncodeFlowVec(w *Writer, vec []FlowEntry) {
	w.U64(uint64(len(vec)))
	for _, e := range vec {
		w.U16(uint16(e.Site))
		w.U64(e.Count)
	}
}

// DecodeFlowVec parses a flow vector.
func DecodeFlowVec(r *Reader) []FlowEntry {
	n := r.U64()
	if r.Err() != nil || n == 0 || n > 1<<16 {
		return nil
	}
	out := make([]FlowEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, FlowEntry{Site: ident.SiteID(r.U16()), Count: r.U64()})
	}
	return out
}

// VmBatch carries several Vm toward the same receiver in one envelope.
// Each carried Vm keeps its own channel sequence number and is
// accepted (or deduplicated) independently; batching is purely a
// carriage optimization for the retransmission path, where every
// pending Vm toward a peer fires at once anyway.
type VmBatch struct {
	Vms []Vm
}

// maxVmBatch bounds decoded batch length (a frame is ≤ maxFrame bytes
// anyway; this keeps hostile length prefixes from over-allocating).
const maxVmBatch = 1 << 12

// Kind implements Msg.
func (*VmBatch) Kind() Kind { return KVmBatch }

// Encode implements Msg.
func (m *VmBatch) Encode(w *Writer) {
	w.U64(uint64(len(m.Vms)))
	for i := range m.Vms {
		m.Vms[i].encodeBase(w)
	}
	// Trace contexts travel as a batch-level trailer (one per Vm, in
	// order) so untraced batches encode exactly as before tracing.
	traced := false
	for i := range m.Vms {
		if m.Vms[i].Trace.Valid() {
			traced = true
			break
		}
	}
	if !traced {
		return
	}
	w.U64(uint64(len(m.Vms)))
	for i := range m.Vms {
		encodeTraceCtx(w, m.Vms[i].Trace)
	}
}

func decodeVmBatch(r *Reader) *VmBatch {
	n := r.U64()
	if r.Err() != nil || n > maxVmBatch {
		r.fail(ErrTooLong)
		return &VmBatch{}
	}
	out := make([]Vm, 0, n)
	for i := uint64(0); i < n; i++ {
		v := decodeVmBase(r)
		if r.Err() != nil {
			break
		}
		out = append(out, *v)
	}
	if r.Err() == nil && r.Remaining() > 0 {
		// Trailer: the trace-context list must pair off exactly with
		// the Vms it annotates.
		if m := r.U64(); m != uint64(len(out)) {
			r.fail(ErrTooLong)
			return &VmBatch{}
		}
		for i := range out {
			out[i].Trace = decodeTraceCtx(r)
		}
	}
	return &VmBatch{Vms: out}
}

// DemandEntry is one item's advertised state: the sender's demand
// estimate (EWMA of consumption plus deficit aborts, in milli-units so
// fractional decay survives the wire) and its current local quota.
type DemandEntry struct {
	Item ident.ItemID
	// Demand is the sender's demand-rate estimate ×1000.
	Demand uint64
	// Have is the sender's current local quota of Item.
	Have core.Value
}

// DemandAdvert gossips the sender's per-item demand and holdings to a
// peer. Receivers fold it into their peer-demand view; advert
// freshness doubles as the reachability signal (a partitioned peer's
// adverts stop arriving, so its entries age out of rebalancing
// decisions).
type DemandAdvert struct {
	Entries []DemandEntry
}

// maxDemandEntries bounds decoded advert length (same rationale as
// maxVmBatch: frames are already bounded, this stops hostile length
// prefixes from over-allocating).
const maxDemandEntries = 1 << 12

// Kind implements Msg.
func (*DemandAdvert) Kind() Kind { return KDemandAdvert }

// Encode implements Msg.
func (m *DemandAdvert) Encode(w *Writer) {
	w.U64(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.String(string(e.Item))
		w.U64(e.Demand)
		w.I64(int64(e.Have))
	}
}

func decodeDemandAdvert(r *Reader) *DemandAdvert {
	n := r.U64()
	if r.Err() != nil || n > maxDemandEntries {
		r.fail(ErrTooLong)
		return &DemandAdvert{}
	}
	out := make([]DemandEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		e := DemandEntry{
			Item:   ident.ItemID(r.String()),
			Demand: r.U64(),
			Have:   core.Value(r.I64()),
		}
		if r.Err() != nil {
			break
		}
		out = append(out, e)
	}
	return &DemandAdvert{Entries: out}
}

// VmAck acknowledges all Vm with Seq ≤ UpTo on the sender→receiver
// channel (cumulative, like a window protocol).
type VmAck struct {
	UpTo uint64
}

// Kind implements Msg.
func (*VmAck) Kind() Kind { return KVmAck }

// Encode implements Msg.
func (m *VmAck) Encode(w *Writer) { w.U64(m.UpTo) }

func decodeVmAck(r *Reader) *VmAck { return &VmAck{UpTo: r.U64()} }

// --- Baseline (traditional distributed DB) messages ------------------------

// LockMode distinguishes shared and exclusive baseline locks.
type LockMode uint8

// Lock modes.
const (
	LockShared LockMode = iota + 1
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// LockReq asks a replica holder to lock its copy of Item for Txn.
type LockReq struct {
	Txn  tstamp.TS
	Item ident.ItemID
	Mode LockMode
}

// Kind implements Msg.
func (*LockReq) Kind() Kind { return KLockReq }

// Encode implements Msg.
func (m *LockReq) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.U8(uint8(m.Mode))
}

func decodeLockReq(r *Reader) *LockReq {
	return &LockReq{
		Txn:  tstamp.TS(r.U64()),
		Item: ident.ItemID(r.String()),
		Mode: LockMode(r.U8()),
	}
}

// LockReply reports whether the lock was granted.
type LockReply struct {
	Txn     tstamp.TS
	Item    ident.ItemID
	Granted bool
}

// Kind implements Msg.
func (*LockReply) Kind() Kind { return KLockReply }

// Encode implements Msg.
func (m *LockReply) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.Bool(m.Granted)
}

func decodeLockReply(r *Reader) *LockReply {
	return &LockReply{
		Txn:     tstamp.TS(r.U64()),
		Item:    ident.ItemID(r.String()),
		Granted: r.Bool(),
	}
}

// ItemDelta is one write in a baseline transaction: apply Delta to
// the replica of Item (bounded below by zero, like the DvP ops).
type ItemDelta struct {
	Item  ident.ItemID
	Delta core.Value
}

// Write ships a pending write set to a replica holder for Txn; the
// participant applies it only when the commit decision arrives.
type Write struct {
	Txn    tstamp.TS
	Writes []ItemDelta
}

// Kind implements Msg.
func (*Write) Kind() Kind { return KWrite }

// Encode implements Msg.
func (m *Write) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	encodeDeltas(w, m.Writes)
}

func decodeWrite(r *Reader) *Write {
	return &Write{Txn: tstamp.TS(r.U64()), Writes: decodeDeltas(r)}
}

func encodeDeltas(w *Writer, ds []ItemDelta) {
	w.U64(uint64(len(ds)))
	for _, d := range ds {
		w.String(string(d.Item))
		w.I64(int64(d.Delta))
	}
}

func decodeDeltas(r *Reader) []ItemDelta {
	n := r.U64()
	if r.Err() != nil || n > maxStringLen {
		r.fail(ErrTooLong)
		return nil
	}
	ds := make([]ItemDelta, 0, n)
	for i := uint64(0); i < n; i++ {
		ds = append(ds, ItemDelta{
			Item:  ident.ItemID(r.String()),
			Delta: core.Value(r.I64()),
		})
	}
	return ds
}

// Prepare is the 2PC phase-1 message. The participant force-writes a
// prepare record (entering the in-doubt window) and votes.
type Prepare struct {
	Txn    tstamp.TS
	Writes []ItemDelta
}

// Kind implements Msg.
func (*Prepare) Kind() Kind { return KPrepare }

// Encode implements Msg.
func (m *Prepare) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	encodeDeltas(w, m.Writes)
}

func decodePrepare(r *Reader) *Prepare {
	return &Prepare{Txn: tstamp.TS(r.U64()), Writes: decodeDeltas(r)}
}

// Vote is the 2PC phase-1 reply.
type Vote struct {
	Txn tstamp.TS
	Yes bool
}

// Kind implements Msg.
func (*Vote) Kind() Kind { return KVote }

// Encode implements Msg.
func (m *Vote) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.Bool(m.Yes)
}

func decodeVote(r *Reader) *Vote {
	return &Vote{Txn: tstamp.TS(r.U64()), Yes: r.Bool()}
}

// Decision is the 2PC phase-2 message.
type Decision struct {
	Txn    tstamp.TS
	Commit bool
}

// Kind implements Msg.
func (*Decision) Kind() Kind { return KDecision }

// Encode implements Msg.
func (m *Decision) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.Bool(m.Commit)
}

func decodeDecision(r *Reader) *Decision {
	return &Decision{Txn: tstamp.TS(r.U64()), Commit: r.Bool()}
}

// DecisionAck completes 2PC phase 2 (lets the coordinator forget).
type DecisionAck struct {
	Txn tstamp.TS
}

// Kind implements Msg.
func (*DecisionAck) Kind() Kind { return KDecisionAck }

// Encode implements Msg.
func (m *DecisionAck) Encode(w *Writer) { w.U64(uint64(m.Txn)) }

func decodeDecisionAck(r *Reader) *DecisionAck {
	return &DecisionAck{Txn: tstamp.TS(r.U64())}
}

// ReadReq asks a replica holder for its copy's value and version.
type ReadReq struct {
	Txn  tstamp.TS
	Item ident.ItemID
}

// Kind implements Msg.
func (*ReadReq) Kind() Kind { return KReadReq }

// Encode implements Msg.
func (m *ReadReq) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
}

func decodeReadReq(r *Reader) *ReadReq {
	return &ReadReq{Txn: tstamp.TS(r.U64()), Item: ident.ItemID(r.String())}
}

// ReadReply returns a replica's value and version (for quorum reads,
// the highest-version reply is current).
type ReadReply struct {
	Txn     tstamp.TS
	Item    ident.ItemID
	Value   core.Value
	Version uint64
	OK      bool
}

// Kind implements Msg.
func (*ReadReply) Kind() Kind { return KReadReply }

// Encode implements Msg.
func (m *ReadReply) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.I64(int64(m.Value))
	w.U64(m.Version)
	w.Bool(m.OK)
}

func decodeReadReply(r *Reader) *ReadReply {
	return &ReadReply{
		Txn:     tstamp.TS(r.U64()),
		Item:    ident.ItemID(r.String()),
		Value:   core.Value(r.I64()),
		Version: r.U64(),
		OK:      r.Bool(),
	}
}

// QWrite installs an absolute (value, version) pair on a replica —
// quorum-consensus write. The replica applies it only if Version
// exceeds its current version, then releases the transaction's lock.
type QWrite struct {
	Txn     tstamp.TS
	Item    ident.ItemID
	Value   core.Value
	Version uint64
}

// Kind implements Msg.
func (*QWrite) Kind() Kind { return KQWrite }

// Encode implements Msg.
func (m *QWrite) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.I64(int64(m.Value))
	w.U64(m.Version)
}

func decodeQWrite(r *Reader) *QWrite {
	return &QWrite{
		Txn:     tstamp.TS(r.U64()),
		Item:    ident.ItemID(r.String()),
		Value:   core.Value(r.I64()),
		Version: r.U64(),
	}
}

// QWriteAck confirms a quorum write at one replica.
type QWriteAck struct {
	Txn  tstamp.TS
	Item ident.ItemID
	OK   bool
}

// Kind implements Msg.
func (*QWriteAck) Kind() Kind { return KQWriteAck }

// Encode implements Msg.
func (m *QWriteAck) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.Bool(m.OK)
}

func decodeQWriteAck(r *Reader) *QWriteAck {
	return &QWriteAck{
		Txn:  tstamp.TS(r.U64()),
		Item: ident.ItemID(r.String()),
		OK:   r.Bool(),
	}
}

// Forward ships one operation to an item's primary site (primary-copy
// replica control): apply Delta (bounded at zero), or read when Read
// is set.
type Forward struct {
	Txn   tstamp.TS
	Item  ident.ItemID
	Delta core.Value
	Read  bool
}

// Kind implements Msg.
func (*Forward) Kind() Kind { return KForward }

// Encode implements Msg.
func (m *Forward) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.I64(int64(m.Delta))
	w.Bool(m.Read)
}

func decodeForward(r *Reader) *Forward {
	return &Forward{
		Txn:   tstamp.TS(r.U64()),
		Item:  ident.ItemID(r.String()),
		Delta: core.Value(r.I64()),
		Read:  r.Bool(),
	}
}

// ForwardReply answers a primary-copy forward.
type ForwardReply struct {
	Txn   tstamp.TS
	Item  ident.ItemID
	OK    bool
	Value core.Value
}

// Kind implements Msg.
func (*ForwardReply) Kind() Kind { return KForwardReply }

// Encode implements Msg.
func (m *ForwardReply) Encode(w *Writer) {
	w.U64(uint64(m.Txn))
	w.String(string(m.Item))
	w.Bool(m.OK)
	w.I64(int64(m.Value))
}

func decodeForwardReply(r *Reader) *ForwardReply {
	return &ForwardReply{
		Txn:   tstamp.TS(r.U64()),
		Item:  ident.ItemID(r.String()),
		OK:    r.Bool(),
		Value: core.Value(r.I64()),
	}
}

// --- Introspection ----------------------------------------------------------

// QuotaQuery asks a site for its local quota of Item.
type QuotaQuery struct {
	Nonce uint64
	Item  ident.ItemID
}

// Kind implements Msg.
func (*QuotaQuery) Kind() Kind { return KQuotaQuery }

// Encode implements Msg.
func (m *QuotaQuery) Encode(w *Writer) {
	w.U64(m.Nonce)
	w.String(string(m.Item))
}

func decodeQuotaQuery(r *Reader) *QuotaQuery {
	return &QuotaQuery{Nonce: r.U64(), Item: ident.ItemID(r.String())}
}

// QuotaReply reports a site's local quota of Item.
type QuotaReply struct {
	Nonce uint64
	Item  ident.ItemID
	Value core.Value
	Known bool
}

// Kind implements Msg.
func (*QuotaReply) Kind() Kind { return KQuotaReply }

// Encode implements Msg.
func (m *QuotaReply) Encode(w *Writer) {
	w.U64(m.Nonce)
	w.String(string(m.Item))
	w.I64(int64(m.Value))
	w.Bool(m.Known)
}

func decodeQuotaReply(r *Reader) *QuotaReply {
	return &QuotaReply{
		Nonce: r.U64(),
		Item:  ident.ItemID(r.String()),
		Value: core.Value(r.I64()),
		Known: r.Bool(),
	}
}

// DecodeMsg decodes a message body of the given kind.
func DecodeMsg(kind Kind, r *Reader) (Msg, error) {
	var m Msg
	switch kind {
	case KRequest:
		m = decodeRequest(r)
	case KVm:
		m = decodeVm(r)
	case KVmAck:
		m = decodeVmAck(r)
	case KLockReq:
		m = decodeLockReq(r)
	case KLockReply:
		m = decodeLockReply(r)
	case KWrite:
		m = decodeWrite(r)
	case KPrepare:
		m = decodePrepare(r)
	case KVote:
		m = decodeVote(r)
	case KDecision:
		m = decodeDecision(r)
	case KDecisionAck:
		m = decodeDecisionAck(r)
	case KReadReq:
		m = decodeReadReq(r)
	case KReadReply:
		m = decodeReadReply(r)
	case KQWrite:
		m = decodeQWrite(r)
	case KQWriteAck:
		m = decodeQWriteAck(r)
	case KForward:
		m = decodeForward(r)
	case KForwardReply:
		m = decodeForwardReply(r)
	case KQuotaQuery:
		m = decodeQuotaQuery(r)
	case KQuotaReply:
		m = decodeQuotaReply(r)
	case KVmBatch:
		m = decodeVmBatch(r)
	case KDemandAdvert:
		m = decodeDemandAdvert(r)
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	return m, nil
}
