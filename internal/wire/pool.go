package wire

import "sync"

// Writer pool: the per-envelope and per-WAL-record encode scratch on
// the hot path. Ownership rules (DESIGN §2.11):
//
//   - GetWriter returns a Writer with Len()==0; any capacity may be
//     carried over from a previous user.
//   - The caller owns the Writer and every slice obtained from
//     Bytes() until it calls PutWriter. After PutWriter both the
//     Writer and its bytes may be concurrently rewritten — callers
//     that need the encoding past that point must copy first.
//   - PutWriter drops oversized buffers instead of pooling them, so
//     one giant checkpoint encode cannot pin megabytes in the pool.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledWriterCap bounds the capacity a Writer may keep when it is
// returned to the pool. Steady-state envelopes and WAL records are
// well under this.
const maxPooledWriterCap = 64 << 10

// GetWriter returns an empty Writer from the pool.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the pool. The caller must not use w or any
// slice obtained from w.Bytes() afterwards.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledWriterCap {
		return
	}
	writerPool.Put(w)
}
