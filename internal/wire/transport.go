package wire

import (
	"errors"

	"dvp/internal/ident"
)

// Handler consumes an inbound envelope. Implementations must be safe
// for concurrent invocation; the transport may deliver from multiple
// goroutines.
type Handler func(env *Envelope)

// Endpoint is one site's attachment to the network. Both the
// fault-injecting simulator (internal/simnet) and the real TCP
// transport (internal/tcpnet) implement it.
//
// Send is asynchronous and unreliable by contract: it may drop,
// duplicate, delay, or reorder — exactly the §2.2 failure model. The
// DvP layer builds guaranteed delivery (virtual messages) on top; a
// nil error means only that the message was handed to the network.
type Endpoint interface {
	// Site returns the local site id.
	Site() ident.SiteID
	// Send dispatches env (env.From is stamped by the endpoint).
	Send(env *Envelope) error
	// SetHandler installs the inbound delivery callback. It must be
	// called before any traffic arrives and may be called again
	// after Crash/restart cycles.
	SetHandler(h Handler)
	// Open (re-)attaches after a Close — the recovered site rejoining
	// the network at its old address. Opening an open endpoint is a
	// no-op.
	Open() error
	// Close detaches from the network; subsequent Sends fail.
	Close() error
}

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("wire: endpoint closed")

// ErrUnknownSite reports a send to a site the transport has never
// heard of (distinct from an unreachable-but-known site, which is
// silent loss per the failure model).
var ErrUnknownSite = errors.New("wire: unknown destination site")
