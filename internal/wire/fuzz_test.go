package wire

import (
	"testing"

	"dvp/internal/tstamp"
)

// FuzzUnmarshal drives the envelope decoder with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to a form
// it accepts again (decode/encode/decode fixed point).
func FuzzUnmarshal(f *testing.F) {
	seedMsgs := []Msg{
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3, FullRead: true},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2),
			FlowVec: []FlowEntry{{Site: 1, Count: 3}}},
		&VmAck{UpTo: 42},
		&Prepare{Txn: tstamp.Make(4, 1), Writes: []ItemDelta{{"a", -2}}},
		&Decision{Txn: tstamp.Make(4, 1), Commit: true},
		&QuotaReply{Nonce: 7, Item: "x", Value: 9, Known: true},
		&Request{Txn: tstamp.Make(6, 1), Item: "flight/A", Want: 2,
			Trace: TraceCtx{Origin: 1, TS: tstamp.Make(6, 1), Span: 1<<40 | 9}},
		&Vm{Seq: 3, Item: "flight/A", Amount: 4, ReqTxn: tstamp.Make(6, 1),
			Trace: TraceCtx{Origin: 2, TS: tstamp.Make(6, 1), Span: 2<<40 | 5}},
		&VmBatch{Vms: []Vm{
			{Seq: 4, Item: "a", Amount: 1, Trace: TraceCtx{Origin: 3, TS: tstamp.Make(7, 2), Span: 3<<40 | 1}},
			{Seq: 5, Item: "b", Amount: 2},
		}},
	}
	for _, m := range seedMsgs {
		env := &Envelope{From: 1, To: 2, Lamport: tstamp.Make(9, 1), AckUpTo: 3, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xD7})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		buf, err := env.Marshal()
		if err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		if _, err := Unmarshal(buf); err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
	})
}
