package wire

import (
	"testing"

	"dvp/internal/tstamp"
)

// FuzzUnmarshal drives the envelope decoder with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to a form
// it accepts again (decode/encode/decode fixed point).
func FuzzUnmarshal(f *testing.F) {
	seedMsgs := []Msg{
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3, FullRead: true},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2),
			FlowVec: []FlowEntry{{Site: 1, Count: 3}}},
		&VmAck{UpTo: 42},
		&Prepare{Txn: tstamp.Make(4, 1), Writes: []ItemDelta{{"a", -2}}},
		&Decision{Txn: tstamp.Make(4, 1), Commit: true},
		&QuotaReply{Nonce: 7, Item: "x", Value: 9, Known: true},
	}
	for _, m := range seedMsgs {
		env := &Envelope{From: 1, To: 2, Lamport: tstamp.Make(9, 1), AckUpTo: 3, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xD7})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		buf, err := env.Marshal()
		if err != nil {
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		if _, err := Unmarshal(buf); err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
	})
}
