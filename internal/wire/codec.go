// Package wire defines the message vocabulary of the system — the DvP
// requests and virtual messages of §3–§5, plus the lock/prepare/vote
// traffic of the traditional baselines — together with a compact,
// hand-rolled binary codec and the Endpoint abstraction that both the
// simulated network (internal/simnet) and the real TCP transport
// (internal/tcpnet) implement.
//
// Everything that crosses a site boundary is serialized through this
// package, even in-process, so every test exercises the codec.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShort reports a truncated buffer during decode.
var ErrShort = errors.New("wire: short buffer")

// ErrTooLong reports a length field exceeding sane bounds.
var ErrTooLong = errors.New("wire: length out of range")

// maxStringLen bounds decoded strings/byte slices; nothing in the
// system sends large blobs, so a tight bound catches corruption early.
const maxStringLen = 1 << 20

// Writer accumulates a binary encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the accumulated encoding but keeps the underlying
// capacity, so a Writer can be reused across encodes without
// re-allocating its buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// PatchU32 overwrites the 4 bytes at off with a fixed-width big-endian
// uint32. The bytes must already have been written (e.g. as a length
// placeholder via U32(0)); patching past the end panics, like any
// out-of-range slice write.
func (w *Writer) PatchU32(off int, v uint32) {
	binary.BigEndian.PutUint32(w.buf[off:off+4], v)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a fixed-width big-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a fixed-width big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// I64 appends a zigzag-encoded signed varint.
func (w *Writer) I64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes2 appends a length-prefixed byte slice.
func (w *Writer) Bytes2(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// F64 appends a float64 as fixed 8 bytes.
func (w *Writer) F64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Reader consumes a binary encoding produced by Writer. Decode errors
// are sticky: after the first error every subsequent read returns the
// zero value and Err() reports the failure, so decoders can be written
// without per-field error checks.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrShort)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a fixed-width big-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.off+2 > len(r.buf) {
		r.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a fixed-width big-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShort)
		return 0
	}
	r.off += n
	return v
}

// I64 reads a zigzag-encoded signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShort)
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("%w: string of %d bytes", ErrTooLong, n))
		return ""
	}
	if r.off+int(n) > len(r.buf) {
		r.fail(ErrShort)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes2 reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Bytes2() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("%w: blob of %d bytes", ErrTooLong, n))
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.fail(ErrShort)
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:])
	r.off += int(n)
	return b
}

// Bytes2View reads a length-prefixed byte slice without copying: the
// returned slice aliases the Reader's buffer. Only for consumers that
// fully process the bytes before the buffer is reused (e.g. a transport
// read loop that decodes each frame synchronously); anyone retaining
// the data past that point must use Bytes2 or copy explicitly.
func (r *Reader) Bytes2View() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > maxStringLen {
		r.fail(fmt.Errorf("%w: blob of %d bytes", ErrTooLong, n))
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.fail(ErrShort)
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// F64 reads a fixed 8-byte float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(ErrShort)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}
