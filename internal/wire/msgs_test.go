package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"dvp/internal/core"
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// roundTrip marshals an envelope around msg and decodes it back.
func roundTrip(t *testing.T, msg Msg) Msg {
	t.Helper()
	env := &Envelope{
		From:    1,
		To:      2,
		Lamport: tstamp.Make(7, 1),
		AckUpTo: 9,
		Msg:     msg,
	}
	buf, err := env.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.From != env.From || got.To != env.To || got.Lamport != env.Lamport || got.AckUpTo != env.AckUpTo {
		t.Fatalf("header mismatch: %+v vs %+v", got, env)
	}
	return got.Msg
}

func TestAllMessagesRoundTrip(t *testing.T) {
	msgs := []Msg{
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3, FullRead: true},
		&Request{Txn: tstamp.Make(6, 1), Item: "acct/x", Want: 0, FullRead: false},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2)},
		&Vm{Seq: 1, Item: "sku/9", Amount: 0, ReqTxn: 0},
		&VmAck{UpTo: 42},
		&LockReq{Txn: tstamp.Make(3, 3), Item: "i", Mode: LockExclusive},
		&LockReply{Txn: tstamp.Make(3, 3), Item: "i", Granted: true},
		&Write{Txn: tstamp.Make(4, 1), Writes: []ItemDelta{{"a", -2}, {"b", 7}}},
		&Prepare{Txn: tstamp.Make(4, 1), Writes: []ItemDelta{{"a", -2}}},
		&Prepare{Txn: tstamp.Make(4, 1), Writes: nil},
		&Vote{Txn: tstamp.Make(4, 1), Yes: true},
		&Decision{Txn: tstamp.Make(4, 1), Commit: false},
		&DecisionAck{Txn: tstamp.Make(4, 1)},
		&ReadReq{Txn: tstamp.Make(8, 2), Item: "q"},
		&ReadReply{Txn: tstamp.Make(8, 2), Item: "q", Value: 19, Version: 3, OK: true},
		&QuotaQuery{Nonce: 77, Item: "flight/A"},
		&QuotaReply{Nonce: 77, Item: "flight/A", Value: 25, Known: true},
		&DemandAdvert{Entries: []DemandEntry{
			{Item: "flight/A", Demand: 12500, Have: 25},
			{Item: "acct/x", Demand: 0, Have: 0},
		}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Writes []ItemDelta{} vs nil: normalize via DeepEqual on
		// decoded form only when lengths differ from nil-ness.
		if !reflect.DeepEqual(got, m) && !equivalentEmptySlices(got, m) {
			t.Errorf("%v round trip: got %+v, want %+v", m.Kind(), got, m)
		}
	}
}

// equivalentEmptySlices tolerates nil-vs-empty slice differences that
// DeepEqual treats as distinct.
func equivalentEmptySlices(a, b Msg) bool {
	pa, ok1 := a.(*Prepare)
	pb, ok2 := b.(*Prepare)
	if ok1 && ok2 {
		return pa.Txn == pb.Txn && len(pa.Writes) == 0 && len(pb.Writes) == 0
	}
	da, ok1 := a.(*DemandAdvert)
	db, ok2 := b.(*DemandAdvert)
	if ok1 && ok2 {
		return len(da.Entries) == 0 && len(db.Entries) == 0
	}
	return false
}

func TestDemandAdvertRoundTripProperty(t *testing.T) {
	f := func(item string, demand uint64, have int64, item2 string) bool {
		m := &DemandAdvert{Entries: []DemandEntry{
			{Item: ident.ItemID(item), Demand: demand, Have: core.Value(have)},
			{Item: ident.ItemID(item2), Demand: demand / 2, Have: 0},
		}}
		env := &Envelope{From: 2, To: 3, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Msg, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDemandAdvertHostileLength(t *testing.T) {
	var w Writer
	w.U8(envelopeMagic)
	w.U16(1)
	w.U16(2)
	w.U64(0)
	w.U64(0)
	w.U8(uint8(KDemandAdvert))
	w.U64(1 << 40) // hostile entry count
	if _, err := Unmarshal(w.Bytes()); err == nil {
		t.Error("hostile demand-advert length must be rejected")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(txn uint64, item string, want int64, full bool) bool {
		m := &Request{Txn: tstamp.TS(txn), Item: ident.ItemID(item), Want: core.Value(want), FullRead: full}
		env := &Envelope{From: 1, To: 2, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Msg, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVmRoundTripProperty(t *testing.T) {
	f := func(seq uint64, item string, amt int64, req uint64) bool {
		m := &Vm{Seq: seq, Item: ident.ItemID(item), Amount: core.Value(amt), ReqTxn: tstamp.TS(req)}
		env := &Envelope{From: 3, To: 1, Msg: m}
		buf, err := env.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Msg, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	env := &Envelope{From: 1, To: 2, Msg: &VmAck{UpTo: 1}}
	buf, _ := env.Marshal()
	buf[0] = 0x00
	if _, err := Unmarshal(buf); err == nil {
		t.Error("bad magic must be rejected")
	}
}

func TestUnmarshalUnknownKind(t *testing.T) {
	env := &Envelope{From: 1, To: 2, Msg: &VmAck{UpTo: 1}}
	buf, _ := env.Marshal()
	// Kind byte sits right after magic(1)+from(2)+to(2)+lamport(varint:1 for 0)+ack(varint:1 for 1... careful)
	// Safer: craft a minimal envelope by hand.
	var w Writer
	w.U8(envelopeMagic)
	w.U16(1)
	w.U16(2)
	w.U64(0)
	w.U64(0)
	w.U8(200) // unknown kind
	if _, err := Unmarshal(w.Bytes()); err == nil {
		t.Error("unknown kind must be rejected")
	}
	_ = buf
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	env := &Envelope{From: 1, To: 2, Msg: &VmAck{UpTo: 1}}
	buf, _ := env.Marshal()
	buf = append(buf, 0xFF)
	if _, err := Unmarshal(buf); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestUnmarshalTruncations(t *testing.T) {
	env := &Envelope{
		From: 1, To: 2, Lamport: tstamp.Make(3, 1), AckUpTo: 5,
		Msg: &Request{Txn: tstamp.Make(9, 2), Item: "flight/A", Want: 4, FullRead: true},
	}
	buf, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(buf); n++ {
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestMarshalNilMsg(t *testing.T) {
	env := &Envelope{From: 1, To: 2}
	if _, err := env.Marshal(); err == nil {
		t.Error("envelope without message must fail to marshal")
	}
}

func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = Unmarshal(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KRequest, KVm, KVmAck, KLockReq, KLockReply, KWrite,
		KPrepare, KVote, KDecision, KDecisionAck, KReadReq, KReadReply,
		KQuotaQuery, KQuotaReply, KVmBatch, KDemandAdvert}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestEnvelopeString(t *testing.T) {
	env := &Envelope{From: 1, To: 2, Msg: &VmAck{}}
	if got := env.String(); got != "s1→s2 vmack" {
		t.Errorf("String = %q", got)
	}
}

func TestLockModeString(t *testing.T) {
	if LockShared.String() != "S" || LockExclusive.String() != "X" {
		t.Error("lock mode strings wrong")
	}
}
