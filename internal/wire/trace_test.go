package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// TestTraceCtxRoundTrip covers the trace-context trailers: traced and
// untraced variants of every envelope that can carry one.
func TestTraceCtxRoundTrip(t *testing.T) {
	ctx := TraceCtx{Origin: 3, TS: tstamp.Make(41, 3), Span: 3<<40 | 7}
	msgs := []Msg{
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3, Trace: ctx},
		&Request{Txn: tstamp.Make(5, 2), Item: "flight/A", Want: 3},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2), Trace: ctx},
		&Vm{Seq: 12, Item: "flight/A", Amount: 5, ReqTxn: tstamp.Make(5, 2)},
		&VmBatch{Vms: []Vm{
			{Seq: 1, Item: "a", Amount: 2, Trace: ctx},
			{Seq: 2, Item: "b", Amount: 3, Trace: TraceCtx{Origin: 1, TS: tstamp.Make(9, 1), Span: 1<<40 | 2}},
		}},
		// Mixed batch: the trailer still carries one slot per Vm, so an
		// untraced member decodes back to its zero context.
		&VmBatch{Vms: []Vm{
			{Seq: 1, Item: "a", Amount: 2, Trace: ctx},
			{Seq: 2, Item: "b", Amount: 3},
		}},
		&VmBatch{Vms: []Vm{
			{Seq: 1, Item: "a", Amount: 2},
			{Seq: 2, Item: "b", Amount: 3},
		}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v round trip: got %+v, want %+v", m.Kind(), got, m)
		}
	}
}

// TestTraceCtxLegacyFramesDecode pins backward compatibility in both
// directions: a pre-tracing frame (no trailer) decodes to a zero
// context, and a zero context encodes to the byte-identical
// pre-tracing frame.
func TestTraceCtxLegacyFramesDecode(t *testing.T) {
	legacyRequest := func() []byte {
		var w Writer
		w.U8(envelopeMagic)
		w.U16(1)
		w.U16(2)
		w.U64(0)
		w.U64(0)
		w.U8(uint8(KRequest))
		w.U64(uint64(tstamp.Make(5, 2)))
		w.String("flight/A")
		w.I64(3)
		w.Bool(false)
		return w.Bytes()
	}()
	env, err := Unmarshal(legacyRequest)
	if err != nil {
		t.Fatalf("legacy request frame rejected: %v", err)
	}
	req := env.Msg.(*Request)
	if req.Trace.Valid() || req.Trace != (TraceCtx{}) {
		t.Errorf("legacy frame decoded with non-zero trace: %+v", req.Trace)
	}
	reEnc, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reEnc, legacyRequest) {
		t.Errorf("zero-trace encoding differs from legacy frame:\n got %x\nwant %x", reEnc, legacyRequest)
	}

	legacyVm := func() []byte {
		var w Writer
		w.U8(envelopeMagic)
		w.U16(3)
		w.U16(1)
		w.U64(0)
		w.U64(7)
		w.U8(uint8(KVm))
		w.U64(12)
		w.String("flight/A")
		w.I64(5)
		w.U64(uint64(tstamp.Make(5, 2)))
		EncodeFlowVec(&w, nil)
		return w.Bytes()
	}()
	env, err = Unmarshal(legacyVm)
	if err != nil {
		t.Fatalf("legacy vm frame rejected: %v", err)
	}
	if vm := env.Msg.(*Vm); vm.Trace.Valid() {
		t.Errorf("legacy vm decoded with non-zero trace: %+v", vm.Trace)
	}
	reEnc, err = env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reEnc, legacyVm) {
		t.Errorf("zero-trace vm encoding differs from legacy frame:\n got %x\nwant %x", reEnc, legacyVm)
	}
}

// TestVmBatchTrailerCountMismatch rejects a hostile batch trailer
// whose slot count disagrees with the Vm count.
func TestVmBatchTrailerCountMismatch(t *testing.T) {
	var w Writer
	w.U8(envelopeMagic)
	w.U16(1)
	w.U16(2)
	w.U64(0)
	w.U64(0)
	w.U8(uint8(KVmBatch))
	w.U64(1)
	(&Vm{Seq: 1, Item: "a", Amount: 2}).encodeBase(&w)
	w.U64(9) // trailer claims nine contexts for one Vm
	encodeTraceCtx(&w, TraceCtx{Origin: 1, TS: 5, Span: 6})
	if _, err := Unmarshal(w.Bytes()); err == nil {
		t.Error("mismatched batch trace trailer must be rejected")
	}
}

// TestTraceCtxRoundTripProperty: any context survives Request and Vm
// trailers; contexts with TS==0 are invalid by definition and decode
// as zero (the trailer is simply absent).
func TestTraceCtxRoundTripProperty(t *testing.T) {
	f := func(origin uint16, ts, span uint64) bool {
		ctx := TraceCtx{Origin: ident.SiteID(origin), TS: tstamp.TS(ts), Span: span}
		req := &Request{Txn: tstamp.Make(1, 1), Item: "i", Want: 1, Trace: ctx}
		vm := &Vm{Seq: 1, Item: "i", Amount: 1, Trace: ctx}
		for _, m := range []Msg{req, vm} {
			env := &Envelope{From: 1, To: 2, Msg: m}
			buf, err := env.Marshal()
			if err != nil {
				return false
			}
			got, err := Unmarshal(buf)
			if err != nil {
				return false
			}
			var dec TraceCtx
			switch g := got.Msg.(type) {
			case *Request:
				dec = g.Trace
			case *Vm:
				dec = g.Trace
			}
			if ctx.Valid() {
				if dec != ctx {
					return false
				}
			} else if dec != (TraceCtx{}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
