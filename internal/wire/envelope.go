package wire

import (
	"fmt"

	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// Envelope frames one message on the wire. Besides addressing it
// carries the two piggybacked fields the paper relies on:
//
//   - Lamport: the sender's logical clock, folded into the receiver's
//     clock on arrival (the §7 "bump-up" that heals outdated counters
//     after recovery);
//   - AckUpTo: a cumulative acknowledgement of the receiver's
//     Vm channel toward the sender ("every message ... should carry a
//     piggybacked acknowledgement", §4.2).
type Envelope struct {
	From    ident.SiteID
	To      ident.SiteID
	Lamport tstamp.TS
	AckUpTo uint64
	Msg     Msg
}

// envelopeMagic guards against framing bugs and foreign traffic.
const envelopeMagic = 0xD7

// Marshal encodes the envelope to a fresh byte slice.
func (e *Envelope) Marshal() ([]byte, error) {
	var w Writer
	if err := e.MarshalInto(&w); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// MarshalInto appends the envelope encoding to w, so callers on the
// hot path can reuse a pooled Writer (and prepend transport framing)
// instead of allocating per envelope. The bytes appended are identical
// to Marshal's output.
func (e *Envelope) MarshalInto(w *Writer) error {
	if e.Msg == nil {
		return fmt.Errorf("wire: envelope without message")
	}
	w.U8(envelopeMagic)
	w.U16(uint16(e.From))
	w.U16(uint16(e.To))
	w.U64(uint64(e.Lamport))
	w.U64(e.AckUpTo)
	w.U8(uint8(e.Msg.Kind()))
	e.Msg.Encode(w)
	return nil
}

// Unmarshal decodes an envelope from bytes.
func Unmarshal(buf []byte) (*Envelope, error) {
	r := NewReader(buf)
	if magic := r.U8(); magic != envelopeMagic {
		return nil, fmt.Errorf("wire: bad magic byte 0x%02x", magic)
	}
	e := &Envelope{
		From:    ident.SiteID(r.U16()),
		To:      ident.SiteID(r.U16()),
		Lamport: tstamp.TS(r.U64()),
		AckUpTo: r.U64(),
	}
	kind := Kind(r.U8())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: envelope header: %w", err)
	}
	msg, err := DecodeMsg(kind, r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", r.Remaining(), kind)
	}
	e.Msg = msg
	return e, nil
}

// String renders a compact trace line ("s1→s2 vm seq=3 ...").
func (e *Envelope) String() string {
	return fmt.Sprintf("%v→%v %v", e.From, e.To, e.Msg.Kind())
}
