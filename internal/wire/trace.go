package wire

import (
	"dvp/internal/ident"
	"dvp/internal/tstamp"
)

// TraceCtx is the compact causal-tracing context that rides inside
// protocol envelopes. Origin is the site whose transaction started the
// causal chain, TS that transaction's timestamp (the stitch key), and
// Span the sender-side span id the receiver's spans point back to as
// their parent.
//
// Encoding is a backward-compatible trailer: a message that carries a
// zero context encodes exactly as it did before tracing existed, and a
// decoder that finds no bytes after the base body leaves the context
// zero. That keeps old frames, mixed-version clusters, and the
// checked-in fuzz corpus all decoding unchanged.
type TraceCtx struct {
	Origin ident.SiteID
	TS     tstamp.TS
	Span   uint64
}

// Valid reports whether the context carries a real trace (TS is the
// stitch key; no traced chain has a zero timestamp).
func (c TraceCtx) Valid() bool { return c.TS != 0 }

// encodeTraceTail appends the context iff it is valid. Must only be
// used for fields that sit at the very end of a message body.
func encodeTraceTail(w *Writer, c TraceCtx) {
	if !c.Valid() {
		return
	}
	encodeTraceCtx(w, c)
}

// decodeTraceTail consumes a trailing context iff bytes remain. Must
// mirror encodeTraceTail: only call at the very end of a message body.
func decodeTraceTail(r *Reader) TraceCtx {
	if r.Err() != nil || r.Remaining() == 0 {
		return TraceCtx{}
	}
	return decodeTraceCtx(r)
}

func encodeTraceCtx(w *Writer, c TraceCtx) {
	w.U16(uint16(c.Origin))
	w.U64(uint64(c.TS))
	w.U64(c.Span)
}

func decodeTraceCtx(r *Reader) TraceCtx {
	return TraceCtx{
		Origin: ident.SiteID(r.U16()),
		TS:     tstamp.TS(r.U64()),
		Span:   r.U64(),
	}
}
